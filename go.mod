module mdcc

go 1.21
