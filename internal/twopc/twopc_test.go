package twopc

import (
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

type world struct {
	net    *simnet.Net
	cl     *topology.Cluster
	parts  []*Participant
	coords []*Coordinator
}

func newWorld(t *testing.T, clients int, seed int64, cons []record.Constraint) *world {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: clients, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), JitterFrac: 0.05, Seed: seed})
	w := &world{net: net, cl: cl}
	for _, n := range cl.Storage {
		w.parts = append(w.parts, NewParticipant(n.ID, net, kv.NewMemory(), cons, 10*time.Second))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, 3*time.Second))
	}
	return w
}

func (w *world) commit(t *testing.T, ci int, ups ...record.Update) bool {
	t.Helper()
	var res *bool
	w.coords[ci].Commit(ups, func(ok bool) { res = &ok })
	if !w.net.RunUntil(func() bool { return res != nil }, time.Minute) {
		t.Fatal("2PC transaction never settled")
	}
	return *res
}

func TestCommitAppliesEverywhere(t *testing.T) {
	w := newWorld(t, 1, 1, nil)
	if !w.commit(t, 0, record.Insert("k1", record.Value{Attrs: map[string]int64{"x": 5}})) {
		t.Fatal("2PC insert aborted")
	}
	w.net.RunFor(2 * time.Second)
	for i, p := range w.parts {
		v, ver, ok := p.Store().Get("k1")
		if !ok || ver != 1 || v.Attr("x") != 5 {
			t.Fatalf("participant %d state = %v v%d %v", i, v, ver, ok)
		}
	}
}

func TestTwoRoundTripLatency(t *testing.T) {
	w := newWorld(t, 1, 2, nil)
	start := w.net.Now()
	if !w.commit(t, 0, record.Insert("k2", record.Value{})) {
		t.Fatal("insert aborted")
	}
	elapsed := w.net.Now().Sub(start)
	// Client 0 in us-west waits for ALL five DCs twice: the farthest
	// is ap-sg at 90ms one-way → ≥ 2 × 180ms = 360ms.
	if elapsed < 340*time.Millisecond {
		t.Fatalf("2PC commit took %v, expected ≥ ~360ms (two full round trips)", elapsed)
	}
}

func TestStaleVreadAborts(t *testing.T) {
	w := newWorld(t, 2, 3, nil)
	if !w.commit(t, 0, record.Insert("k3", record.Value{Attrs: map[string]int64{"x": 1}})) {
		t.Fatal("insert aborted")
	}
	w.net.RunFor(time.Second)
	if !w.commit(t, 1, record.Physical("k3", 1, record.Value{Attrs: map[string]int64{"x": 2}})) {
		t.Fatal("valid update aborted")
	}
	w.net.RunFor(time.Second)
	if w.commit(t, 0, record.Physical("k3", 1, record.Value{Attrs: map[string]int64{"x": 99}})) {
		t.Fatal("stale update committed")
	}
	w.net.RunFor(time.Second)
	v, _, _ := w.parts[0].Store().Get("k3")
	if v.Attr("x") != 2 {
		t.Fatalf("value = %d, want 2", v.Attr("x"))
	}
}

func TestAtomicityAcrossRecords(t *testing.T) {
	w := newWorld(t, 1, 4, nil)
	if !w.commit(t, 0,
		record.Insert("a", record.Value{Attrs: map[string]int64{"x": 1}}),
		record.Insert("b", record.Value{Attrs: map[string]int64{"x": 1}}),
	) {
		t.Fatal("setup aborted")
	}
	w.net.RunFor(time.Second)
	if w.commit(t, 0,
		record.Physical("a", 1, record.Value{Attrs: map[string]int64{"x": 2}}),
		record.Physical("b", 42, record.Value{Attrs: map[string]int64{"x": 2}}), // stale
	) {
		t.Fatal("partially-valid transaction committed")
	}
	w.net.RunFor(time.Second)
	for _, p := range w.parts {
		a, _, _ := p.Store().Get("a")
		if a.Attr("x") != 1 {
			t.Fatalf("aborted transaction leaked a write: %v", a)
		}
	}
}

func TestConcurrentConflictOneWins(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := newWorld(t, 2, 100+seed, nil)
		if !w.commit(t, 0, record.Insert("k4", record.Value{Attrs: map[string]int64{"x": 0}})) {
			t.Fatal("insert aborted")
		}
		w.net.RunFor(time.Second)
		results := 0
		commits := 0
		for i := 0; i < 2; i++ {
			v := int64(i + 10)
			w.coords[i].Commit([]record.Update{
				record.Physical("k4", 1, record.Value{Attrs: map[string]int64{"x": v}}),
			}, func(ok bool) {
				results++
				if ok {
					commits++
				}
			})
		}
		if !w.net.RunUntil(func() bool { return results == 2 }, time.Minute) {
			t.Fatal("racing transactions never settled")
		}
		if commits > 1 {
			t.Fatalf("seed %d: both conflicting 2PC transactions committed", seed)
		}
	}
}

func TestConstraintEnforced(t *testing.T) {
	cons := []record.Constraint{record.MinBound("stock", 0)}
	w := newWorld(t, 1, 5, cons)
	if !w.commit(t, 0, record.Insert("item", record.Value{Attrs: map[string]int64{"stock": 2}})) {
		t.Fatal("insert aborted")
	}
	w.net.RunFor(time.Second)
	if !w.commit(t, 0, record.Commutative("item", map[string]int64{"stock": -2})) {
		t.Fatal("valid decrement aborted")
	}
	w.net.RunFor(time.Second)
	if w.commit(t, 0, record.Commutative("item", map[string]int64{"stock": -1})) {
		t.Fatal("decrement below zero committed")
	}
	w.net.RunFor(time.Second)
	v, _, _ := w.parts[0].Store().Get("item")
	if v.Attr("stock") != 0 {
		t.Fatalf("stock = %d, want 0", v.Attr("stock"))
	}
}

func TestDeadDataCenterAborts(t *testing.T) {
	// 2PC needs ALL participants; a dead DC forces a timeout abort —
	// the availability weakness the paper contrasts against.
	w := newWorld(t, 1, 6, nil)
	if !w.commit(t, 0, record.Insert("k5", record.Value{Attrs: map[string]int64{"x": 0}})) {
		t.Fatal("insert aborted")
	}
	w.net.RunFor(time.Second)
	w.net.Fail(topology.StorageID(topology.APTokyo, 0))
	if w.commit(t, 0, record.Physical("k5", 1, record.Value{Attrs: map[string]int64{"x": 1}})) {
		t.Fatal("2PC committed without a participant")
	}
	c, a := w.coords[0].Metrics()
	if c != 1 || a != 1 {
		t.Fatalf("metrics = %d commits %d aborts, want 1/1", c, a)
	}
}

func TestLockTimeoutReleases(t *testing.T) {
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 2, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), Seed: 7})
	var parts []*Participant
	for _, n := range cl.Storage {
		parts = append(parts, NewParticipant(n.ID, net, kv.NewMemory(), nil, 2*time.Second))
	}
	c0 := NewCoordinator(cl.Clients[0].ID, cl.Clients[0].DC, net, cl, 0) // no prepare timeout
	c1 := NewCoordinator(cl.Clients[1].ID, cl.Clients[1].DC, net, cl, 3*time.Second)

	var setup *bool
	c0.Commit([]record.Update{record.Insert("k6", record.Value{Attrs: map[string]int64{"x": 0}})},
		func(ok bool) { setup = &ok })
	net.RunUntil(func() bool { return setup != nil }, time.Minute)
	net.RunFor(time.Second)

	// Coordinator 0 prepares, then dies before deciding: locks stay.
	// (At 100ms every participant has locked — prepares arrive within
	// ~90ms one-way — but the farthest votes have not returned, so no
	// decision was made.)
	c0.Commit([]record.Update{record.Physical("k6", 1, record.Value{Attrs: map[string]int64{"x": 1}})},
		func(bool) {})
	net.RunFor(100 * time.Millisecond)
	net.Fail(cl.Clients[0].ID)

	// Within the lock window, coordinator 1 is rejected.
	var r1 *bool
	c1.Commit([]record.Update{record.Physical("k6", 1, record.Value{Attrs: map[string]int64{"x": 2}})},
		func(ok bool) { r1 = &ok })
	net.RunUntil(func() bool { return r1 != nil }, time.Minute)
	if *r1 {
		t.Fatal("transaction committed while records were locked")
	}
	// After the lock timeout, writes flow again.
	net.RunFor(3 * time.Second)
	var r2 *bool
	c1.Commit([]record.Update{record.Physical("k6", 1, record.Value{Attrs: map[string]int64{"x": 2}})},
		func(ok bool) { r2 = &ok })
	net.RunUntil(func() bool { return r2 != nil }, time.Minute)
	if !*r2 {
		t.Fatal("locks were never released after coordinator death")
	}
}
