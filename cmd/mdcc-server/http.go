// HTTP operational endpoints.
//
//	GET /healthz  — liveness probe ("ok")
//	GET /metrics  — JSON snapshot of this server's counters
//	GET /trace    — flight-recorder diagnosis bundle (with -trace):
//	                recent retained transaction traces, slowest first,
//	                one Compact timeline per line; ?full=1 switches to
//	                the multi-line per-event rendering
//	GET /debug/pprof/*  — standard Go profiling endpoints (with
//	                -profile): profile, heap, goroutine, block, mutex,
//	                cmdline, symbol, trace. Block and mutex profiling
//	                rates are enabled by the flag.
//
// Once shutdown begins every endpoint answers 503 instead of racing
// the closing stores (a request in flight when SIGTERM landed used to
// read half-closed state and emit partial JSON).
//
// /metrics schema (fields are stable; additions are
// backwards-compatible):
//
//	{
//	  "dc": "us-west",                    // this server's data center
//	  "ringEpoch": 1,                     // published shard-ring epoch this
//	                                      // server routes under (bumps on
//	                                      // every live shard move)
//	  "shards": [{                        // one entry per hosted shard
//	    "node": "us-west/store0",         // storage node ID
//	    "keys": 123,                      // records in the committed store
//	    "puts": 456,                      // store writes since boot
//	    "protocol": { ... }               // core.Metrics: votes, Phase1/2,
//	                                      // executed/discarded options,
//	                                      // demarcation rejects, sweeps,
//	                                      // BatchEnvelopes/BatchItems
//	                                      // (gateway batch fan-in),
//	                                      // VoteBatchEnvelopes/Items
//	                                      // (acceptor→coordinator vote
//	                                      // batching fan-in),
//	                                      // FeedMsgs/FeedItems (visibility
//	                                      // feed published to the DC's
//	                                      // gateway read tier)
//	    "durability": {                   // present only with -data:
//	      "degraded": false,              // durability failure latched —
//	                                      // the node has stopped acking
//	      "snapshotSeq": 3,               // newest on-disk checkpoint
//	      "checkpoints": 2,               // taken by this incarnation
//	      "appendsSinceCheckpoint": 120,  // snapshot age in WAL records:
//	                                      // the tail a crash right now
//	                                      // would replay
//	      "walAppends": 456,              // store + oplog WAL records
//	      "walSyncs": 40,                 // fsync batches issued
//	      "syncBatchMean": 11.4,          // group-commit fan-in
//	      "syncBatchMax": 32,
//	      "walSegments": 3,               // on-disk footprint not yet
//	      "walLiveBytes": 81920,          // reclaimed by checkpoints
//	      "replayMs": 12.5,               // last recovery: wall time,
//	      "replayUsedSnapshot": true,     // seeded from a snapshot,
//	      "replayTail": 66                // records replayed past its cut
//	    }
//	  }],
//	  "transport": {                      // transport.Stats, whole process
//	    "msgsSent": 0, "msgsReceived": 0, // envelopes in/out (TCP+local)
//	    "batchesSent": 0,                 // batch envelopes sent
//	    "batchesReceived": 0,
//	    "batchedSent": 0,                 // messages carried inside them
//	    "batchedReceived": 0,
//	    "bytesSent": 0,                   // wire bytes (gob-encoded)
//	    "bytesReceived": 0
//	  },
//	  "gateway": {                        // present only with -gateway:
//	    "commits": 0, "aborts": 0,        // settled client transactions
//	    "submitted": 0,                   // transactions entering the tier
//	    "passthrough": 0,                 // dispatched unmodified
//	    "coalesced": 0,                   // updates that joined a window
//	    "mergedOptions": 0,               // merged proposals issued
//	    "mergedUpdates": 0,               // client updates inside them
//	    "mergeSplits": 0,                 // rejected merges re-run singly
//	    "coalesceRatio": 0.0,             // mergedUpdates / submitted
//	    "escrowUpdates": 0,               // piggybacked escrow snapshots
//	                                      // folded into headroom accounts
//	    "escrowStale": 0,                 // snapshots dropped as stale
//	    "trackedKeys": 0,                 // gauge: keys with a live
//	                                      // headroom account
//	    "minHeadroom": -1,                // gauge: tightest remaining
//	                                      // shared demarcation headroom
//	                                      // (-1 = none tracked; 0 = merge
//	                                      // admission currently bypassing)
//	    "localReads": 0,                  // read tier: reads served from
//	                                      // feed-materialized memory
//	                                      // (zero RPCs)
//	    "readRPCs": 0,                    // single-flight fallback reads
//	                                      // (cold keys, dead feeds,
//	                                      // floor outruns)
//	    "readCoalesced": 0,               // readers who shared an
//	                                      // in-flight fallback
//	    "readQuorums": 0,                 // quorum escalations for
//	                                      // session floors the local
//	                                      // replica lagged
//	    "localReadFrac": 0.0,             // localReads / all reads served
//	    "feedMsgs": 0, "feedItems": 0,    // consumed in-order visibility
//	                                      // feed messages / key states
//	    "feedGaps": 0,                    // sequence holes detected (each
//	                                      // triggers a catch-up resync)
//	    "feedDrops": 0,                   // feeds marked dead after
//	                                      // FeedTTL of silence
//	    "feedResubs": 0,                  // subscriptions sent (initial
//	                                      // + resyncs)
//	    "feedStaleMsgs": 0,               // duplicate / dead-epoch feed
//	                                      // messages discarded
//	    "materializedKeys": 0,            // gauge: keys holding a served
//	                                      // value
//	    "feedsLive": 0,                   // gauge: local shard streams
//	                                      // currently bounding staleness
//	    "admissionRejects": 0,            // shed with ErrOverloaded
//	    "inflight": 0, "queueDepth": 0,   // current admission state
//	    "queuePeak": 0,
//	    "batchEnvelopes": 0,              // outbound cross-txn batching
//	    "batchedMsgs": 0, "batchSingles": 0,
//	    "batchFanIn": 0.0,                // batchedMsgs / batchEnvelopes
//	    "wrongShardRetries": 0,           // commits refused with
//	                                      // ErrWrongShard (stale ring
//	                                      // epoch or frozen moving shard)
//	    "ringEpoch": 0                    // gauge: ring epoch the gateway
//	                                      // last observed
//	  },
//	  "phases": [{                        // present only with -trace:
//	    "phase": "vote[dc2]",             // pipeline phase, split per DC
//	                                      // where meaningful (gateway-
//	                                      // queue, quorum, vote,
//	                                      // visibility, end-to-end)
//	    "n": 0,                           // samples
//	    "p50Ms": 0.0, "p99Ms": 0.0,       // log-bucketed quantiles
//	    "maxMs": 0.0, "meanMs": 0.0
//	  }],
//	  "traceEvents": 0,                   // flight-recorder events since
//	                                      // boot (with -trace)
//	  "traceRetained": 0                  // assembled timelines held for
//	                                      // /trace (with -trace)
//	}
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// opsState gates the operational endpoints across shutdown. Handlers
// hold the read lock for their whole body, so Close() — taken before
// main tears down the stores, transport and gateway — both flips the
// flag and waits out any request already reading them.
type opsState struct {
	mu     sync.RWMutex
	closed bool
}

// Close marks the server as shutting down and waits for in-flight
// handlers to drain. Safe to call on a nil receiver (no -http).
func (s *opsState) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// guard wraps a handler with the shutdown gate: after Close(), the
// endpoint answers 503 instead of racing the closing stores.
func (s *opsState) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if s.closed {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		h(w, r)
	}
}

// serveHTTP starts the operational endpoints documented above on their
// own goroutine and returns the shutdown gate.
func serveHTTP(addr string, dc topology.DC, cl *topology.Cluster, nodes []*core.StorageNode,
	stores []*kv.Store, net *transport.TCP, gw *gateway.Gateway,
	rec *trace.Recorder, profile, durable bool) *opsState {
	state := &opsState{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", state.guard(func(w http.ResponseWriter, r *http.Request) {
		type durOut struct {
			Degraded               bool    `json:"degraded"`
			SnapshotSeq            int     `json:"snapshotSeq"`
			Checkpoints            int64   `json:"checkpoints"`
			AppendsSinceCheckpoint int64   `json:"appendsSinceCheckpoint"`
			WalAppends             int64   `json:"walAppends"`
			WalSyncs               int64   `json:"walSyncs"`
			SyncBatchMean          float64 `json:"syncBatchMean"`
			SyncBatchMax           int64   `json:"syncBatchMax"`
			WalSegments            int     `json:"walSegments"`
			WalLiveBytes           int64   `json:"walLiveBytes"`
			ReplayMs               float64 `json:"replayMs"`
			ReplayUsedSnapshot     bool    `json:"replayUsedSnapshot"`
			ReplayTail             int64   `json:"replayTail"`
		}
		type shard struct {
			Node       string       `json:"node"`
			Keys       int          `json:"keys"`
			Puts       int64        `json:"puts"`
			Metrics    core.Metrics `json:"protocol"`
			Durability *durOut      `json:"durability,omitempty"`
		}
		type phaseOut struct {
			Phase  string  `json:"phase"`
			N      int64   `json:"n"`
			P50Ms  float64 `json:"p50Ms"`
			P99Ms  float64 `json:"p99Ms"`
			MaxMs  float64 `json:"maxMs"`
			MeanMs float64 `json:"meanMs"`
		}
		out := struct {
			DC            string           `json:"dc"`
			RingEpoch     uint64           `json:"ringEpoch"`
			Shards        []shard          `json:"shards"`
			Transport     transport.Stats  `json:"transport"`
			Gateway       *gateway.Metrics `json:"gateway,omitempty"`
			Phases        []phaseOut       `json:"phases,omitempty"`
			TraceEvents   uint64           `json:"traceEvents,omitempty"`
			TraceRetained int              `json:"traceRetained,omitempty"`
		}{DC: dc.String(), RingEpoch: uint64(cl.Ring().Epoch()), Transport: net.Stats()}
		for i, n := range nodes {
			sh := shard{
				Node:    string(n.ID()),
				Keys:    stores[i].Len(),
				Puts:    stores[i].Puts(),
				Metrics: n.Metrics(),
			}
			if durable {
				d := n.Durability()
				do := &durOut{
					Degraded:               d.Degraded,
					SnapshotSeq:            d.SnapshotSeq,
					Checkpoints:            d.Checkpoints,
					AppendsSinceCheckpoint: d.AppendsSinceCheckpoint,
					WalAppends:             d.Store.Appends + d.Oplog.Appends,
					WalSyncs:               d.Store.Syncs + d.Oplog.Syncs,
					SyncBatchMax:           max(d.Store.MaxBatch, d.Oplog.MaxBatch),
					WalSegments:            d.Store.Segments + d.Oplog.Segments,
					WalLiveBytes:           d.Store.LiveBytes + d.Oplog.LiveBytes,
					ReplayMs:               float64(d.Replay.Duration) / float64(time.Millisecond),
					ReplayUsedSnapshot:     d.Replay.UsedSnapshot,
					ReplayTail:             d.Replay.TailStore + d.Replay.TailOplog,
				}
				if synced := d.Store.SyncedAppends + d.Oplog.SyncedAppends; do.WalSyncs > 0 {
					do.SyncBatchMean = float64(synced) / float64(do.WalSyncs)
				}
				sh.Durability = do
			}
			out.Shards = append(out.Shards, sh)
		}
		if gw != nil {
			m := gw.Metrics()
			out.Gateway = &m
		}
		if rec != nil {
			ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
			for _, p := range rec.Phases() {
				out.Phases = append(out.Phases, phaseOut{
					Phase:  p.Key.String(),
					N:      p.Hist.N,
					P50Ms:  ms(p.Hist.Quantile(0.50)),
					P99Ms:  ms(p.Hist.Quantile(0.99)),
					MaxMs:  ms(p.Hist.Max),
					MeanMs: p.Hist.Mean() / float64(time.Millisecond),
				})
			}
			out.TraceEvents = rec.Events()
			out.TraceRetained = len(rec.Retained()) + len(rec.Slowest())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	}))
	mux.HandleFunc("/trace", state.guard(func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "flight recorder off (start mdcc-server with -trace)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		full := r.URL.Query().Get("full") != ""
		seen := make(map[string]bool)
		emit := func(t *trace.Trace) {
			if t == nil || (t.Tx != "" && t.Tx != "?" && seen[t.Tx]) {
				return
			}
			seen[t.Tx] = true
			if full {
				fmt.Fprintln(w, t.Timeline())
			} else {
				fmt.Fprintln(w, t.Compact())
			}
		}
		// Slowest-N first (always populated), then the interesting set:
		// aborted, outcome-unknown, recovered, wrong-shard-retried, slow.
		for _, t := range rec.Slowest() {
			emit(t)
		}
		for _, t := range rec.Retained() {
			emit(t)
		}
		if len(seen) == 0 {
			fmt.Fprintln(w, "(no traces retained yet)")
		}
	}))
	endpoints := "/healthz, /metrics, /trace"
	if profile {
		// The standard pprof handlers, mounted explicitly because this
		// mux is not http.DefaultServeMux. Index serves the named
		// profiles (heap, goroutine, block, mutex, threadcreate, ...).
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		endpoints += ", /debug/pprof/*"
	}
	go func() {
		log.Printf("http endpoints on %s (%s)", addr, endpoints)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("http: %v", err)
		}
	}()
	return state
}
