package core

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors")

// Canonical samples, one per hot message. "Canonical" means the
// encode-side conventions hold (nil for empty maps/slices, guarded
// fields zero when their guard is false) so gob and the binary codec
// agree byte-for-nothing and value-for-value.

func sampleValue() record.Value {
	return record.Value{
		Attrs: map[string]int64{"bal": -3, "qty": 41},
		Blob:  []byte{0xde, 0xad},
	}
}

func sampleOption() Option {
	return Option{
		Tx:    "tx-7",
		Coord: "dc1/app0",
		Update: record.Update{
			Kind:   record.KindCommutative,
			Key:    "item#9",
			Deltas: map[string]int64{"stock": -1},
			Merged: 2,
		},
		WriteSet:  []record.Key{"item#9", "cart#3"},
		KeySeq:    19,
		WriteSeqs: []uint64{19, 4},
	}
}

func samplePhysicalOption() Option {
	return Option{
		Tx:    "tx-8",
		Coord: "dc2/app1",
		Update: record.Update{
			Kind:        record.KindPhysical,
			Key:         "cust#2",
			ReadVersion: 11,
			NewValue:    sampleValue(),
		},
		WriteSet: []record.Key{"cust#2"},
		KeySeq:   12,
	}
}

func sampleEscrow() EscrowSnap {
	return EscrowSnap{
		Valid:   true,
		Version: 30,
		Attrs: []AttrEscrow{
			{Attr: "stock", Base: 90, PendDown: -5, PendUp: 2},
		},
		Contenders: 3,
	}
}

func sampleBallot() paxos.Ballot {
	return paxos.Ballot{N: 6, Fast: true, Leader: "dc1/store0"}
}

func sampleWireVote() MsgVote {
	return MsgVote{
		OptID:     OptionID{Tx: "tx-7", Key: "item#9"},
		Ballot:    sampleBallot(),
		Decision:  DecAccept,
		Forwarded: true,
		Leader:    "dc1/store0",
		Escrow:    sampleEscrow(),
	}
}

func sampleLineage() LineageSummary {
	return LineageSummary{
		Lanes: []LaneLineage{
			{Lane: "dc1/app0", Done: []SeqRange{{Lo: 1, Hi: 17}}, Rejected: []SeqRange{{Lo: 9, Hi: 9}}},
			{Lane: "dc2/app1", Done: []SeqRange{{Lo: 1, Hi: 4}}},
		},
		Deltas: true,
	}
}

// wireSamples lists every hand-serialized core message with a
// representative value; golden vectors, round-trip and parity tests
// all iterate it.
func wireSamples() map[string]transport.Message {
	return map[string]transport.Message{
		"MsgRead":         MsgRead{ReqID: 99, Key: "cust#2"},
		"MsgReadReply":    MsgReadReply{ReqID: 99, Key: "cust#2", Value: sampleValue(), Version: 11, Exists: true, Escrow: sampleEscrow()},
		"MsgProposeFast":  MsgProposeFast{Opt: sampleOption()},
		"MsgProposeBatch": MsgProposeBatch{Opts: []Option{sampleOption(), samplePhysicalOption()}},
		"MsgVote":         sampleWireVote(),
		"MsgVoteBatch":    MsgVoteBatch{Votes: []MsgVote{sampleWireVote(), {OptID: OptionID{Tx: "tx-8", Key: "cust#2"}, Ballot: paxos.Ballot{N: 7, Leader: "dc2/store1"}, Decision: DecReject, Reason: ReasonMixedKinds, WrongGroup: true}}},
		"MsgLearned":      MsgLearned{OptID: OptionID{Tx: "tx-7", Key: "item#9"}, Decision: DecAccept, Escrow: sampleEscrow()},
		"MsgVisibility":   MsgVisibility{Opt: sampleOption(), Commit: true},
		"MsgVisibilityBatch": MsgVisibilityBatch{Items: []MsgVisibility{
			{Opt: sampleOption(), Commit: true}, {Opt: samplePhysicalOption()},
		}},
		"MsgPhase2a": MsgPhase2a{
			Key:    "item#9",
			Ballot: paxos.Ballot{N: 8, Leader: "dc1/store0"},
			Seq:    3,
			CStruct: []VotedOption{
				{Opt: sampleOption(), Decision: DecAccept},
				{Opt: samplePhysicalOption(), Decision: DecReject, Reason: ReasonMixedKinds},
			},
			HasBase:     true,
			BaseVersion: 17,
			BaseValue:   sampleValue(),
			BaseExists:  true,
			BaseLineage: sampleLineage(),
			LegacyDecided: []DecidedOption{
				{ID: OptionID{Tx: "tx-5", Key: "item#9"}, Decision: DecAccept, Opt: sampleOption(), HasOpt: true},
				{ID: OptionID{Tx: "tx-6", Key: "item#9"}, Decision: DecReject},
			},
		},
		"MsgPhase2b_ok":     MsgPhase2b{Key: "item#9", Ballot: paxos.Ballot{N: 8, Leader: "dc1/store0"}, Seq: 3, OK: true},
		"MsgPhase2b_nacked": MsgPhase2b{Key: "item#9", Ballot: paxos.Ballot{N: 8, Leader: "dc1/store0"}, Seq: 3, Promised: paxos.Ballot{N: 12, Leader: "dc3/store2"}},
		"MsgVisibilitySub":  MsgVisibilitySub{Epoch: 2, CatchUp: []record.Key{"item#9", "cust#2"}},
		"MsgVisibilityFeed": MsgVisibilityFeed{Epoch: 2, Seq: 44, Boot: 1, Items: []FeedItem{
			{Key: "item#9", Value: sampleValue(), Version: 20, Exists: true, Escrow: sampleEscrow()},
			{Key: "gone#1", Version: 5},
		}},
	}
}

// TestWireGolden pins every message's encoded bytes to a committed
// vector, so an accidental field reorder or encoding change — which
// would break mixed-version deployments without bumping
// transport.WireVersion — fails loudly. Regenerate deliberately with
// `go test -run Golden -update ./internal/core/`.
func TestWireGolden(t *testing.T) {
	for name, msg := range wireSamples() {
		wm := msg.(transport.WireMessage)
		got := hex.EncodeToString(wm.AppendWire(nil))
		path := filepath.Join("testdata", "wire_golden", name+".hex")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if got != string(bytes.TrimSpace(want)) {
			t.Errorf("%s: encoding changed\n got %s\nwant %s\nwire format changes require a WireVersion bump and -update", name, got, string(bytes.TrimSpace(want)))
		}
	}
}

// binaryRoundTrip encodes msg in an envelope with the binary codec
// and decodes it back.
func binaryRoundTrip(t *testing.T, msg transport.Message) transport.Message {
	t.Helper()
	in := transport.Envelope{From: "a", To: "b", TraceClk: 5, Msg: msg}
	b, err := transport.AppendEnvelope(nil, in)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	out, err := transport.DecodeEnvelope(transport.NewWireReader(b))
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	if out.From != in.From || out.To != in.To || out.TraceClk != in.TraceClk {
		t.Fatalf("envelope header mangled: %+v", out)
	}
	return out.Msg
}

// gobRoundTrip pushes the same envelope through gob, the legacy codec.
func gobRoundTrip(t *testing.T, msg transport.Message) transport.Message {
	t.Helper()
	var buf bytes.Buffer
	in := transport.Envelope{From: "a", To: "b", Msg: msg}
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("gob encode %T: %v", msg, err)
	}
	var out transport.Envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode %T: %v", msg, err)
	}
	return out.Msg
}

// TestWireRoundTripParity is the deterministic arm of the parity
// check: binary decode(encode(m)) == m, and == what gob produces for
// the same message.
func TestWireRoundTripParity(t *testing.T) {
	for name, msg := range wireSamples() {
		bin := binaryRoundTrip(t, msg)
		if !reflect.DeepEqual(bin, msg) {
			t.Errorf("%s: binary round trip mismatch\n got %#v\nwant %#v", name, bin, msg)
		}
		gb := gobRoundTrip(t, msg)
		if !reflect.DeepEqual(bin, gb) {
			t.Errorf("%s: binary and gob decode disagree\n bin %#v\n gob %#v", name, bin, gb)
		}
	}
}

// TestWireSmallerThanGob asserts the headline the live benchmark
// reports: the hand-rolled encoding is strictly smaller than a fresh
// gob stream for the hot messages named in the acceptance criteria.
func TestWireSmallerThanGob(t *testing.T) {
	samples := wireSamples()
	must := []string{"MsgPhase2a", "MsgPhase2b_ok", "MsgVoteBatch", "MsgVisibilityFeed"}
	for _, name := range must {
		msg := samples[name]
		binN, err := transport.EncodedSize(msg)
		if err != nil {
			t.Fatal(err)
		}
		gobN, err := transport.GobEncodedSize(msg)
		if err != nil {
			t.Fatal(err)
		}
		if binN >= gobN {
			t.Errorf("%s: binary %dB not smaller than gob %dB", name, binN, gobN)
		}
	}
}

// ---- randomized parity ----

func randString(r *rand.Rand) string {
	n := r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func randAttrs(r *rand.Rand) map[string]int64 {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		m[fmt.Sprintf("a%d%s", i, randString(r))] = r.Int63n(2001) - 1000
	}
	return m
}

func randWireValue(r *rand.Rand) record.Value {
	v := record.Value{Attrs: randAttrs(r), Tombstone: r.Intn(4) == 0}
	if n := r.Intn(6); n > 0 {
		v.Blob = make([]byte, n)
		r.Read(v.Blob)
	}
	return v
}

func randUpdate(r *rand.Rand) record.Update {
	u := record.Update{Key: record.Key(randString(r))}
	switch r.Intn(3) {
	case 0:
		u.Kind = record.KindPhysical
		u.ReadVersion = record.Version(r.Uint64() >> 32)
		u.NewValue = randWireValue(r)
	case 1:
		u.Kind = record.KindCommutative
		u.Deltas = randAttrs(r)
		u.Merged = r.Intn(5)
	default:
		u.Kind = record.KindReadCheck
		u.ReadVersion = record.Version(r.Uint64() >> 32)
	}
	return u
}

func randWireOption(r *rand.Rand) Option {
	o := Option{
		Tx:     TxID(randString(r)),
		Coord:  transport.NodeID(randString(r)),
		Update: randUpdate(r),
		KeySeq: r.Uint64() >> 40,
	}
	if n := r.Intn(3); n > 0 {
		o.WriteSet = make([]record.Key, n)
		o.WriteSeqs = make([]uint64, n)
		for i := 0; i < n; i++ {
			o.WriteSet[i] = record.Key(randString(r))
			o.WriteSeqs[i] = r.Uint64() >> 40
		}
	}
	return o
}

func randWireEscrow(r *rand.Rand) EscrowSnap {
	if r.Intn(3) == 0 {
		return EscrowSnap{}
	}
	e := EscrowSnap{Valid: true, Version: record.Version(r.Uint64() >> 32), Contenders: r.Intn(9)}
	for i, n := 0, r.Intn(3); i < n; i++ {
		e.Attrs = append(e.Attrs, AttrEscrow{
			Attr: randString(r), Base: r.Int63n(1000),
			PendDown: -r.Int63n(100), PendUp: r.Int63n(100),
		})
	}
	return e
}

func randWireBallot(r *rand.Rand) paxos.Ballot {
	return paxos.Ballot{N: r.Uint64() >> 40, Fast: r.Intn(2) == 0, Leader: randString(r)}
}

func randWireVote(r *rand.Rand) MsgVote {
	return MsgVote{
		OptID:      OptionID{Tx: TxID(randString(r)), Key: record.Key(randString(r))},
		Ballot:     randWireBallot(r),
		Decision:   Decision(r.Intn(3)),
		Reason:     RejectReason(r.Intn(2)),
		Forwarded:  r.Intn(2) == 0,
		WrongGroup: r.Intn(4) == 0,
		Leader:     transport.NodeID(randString(r)),
		Escrow:     randWireEscrow(r),
	}
}

func randWireRanges(r *rand.Rand) []SeqRange {
	n := r.Intn(3)
	if n == 0 {
		return nil
	}
	rs := make([]SeqRange, n)
	for i := range rs {
		lo := r.Uint64() >> 40
		rs[i] = SeqRange{Lo: lo, Hi: lo + uint64(r.Intn(10))}
	}
	return rs
}

func randWireLineage(r *rand.Rand) LineageSummary {
	s := LineageSummary{Deltas: r.Intn(2) == 0, Physical: r.Intn(2) == 0}
	for i, n := 0, r.Intn(3); i < n; i++ {
		s.Lanes = append(s.Lanes, LaneLineage{
			Lane: randString(r), Done: randWireRanges(r), Rejected: randWireRanges(r),
		})
	}
	return s
}

// randWireMessage generates a canonical random hot message; pick
// selects the type so the fuzzer can steer coverage.
func randWireMessage(r *rand.Rand, pick uint8) transport.Message {
	switch pick % 13 {
	case 0:
		return MsgRead{ReqID: r.Uint64() >> 40, Key: record.Key(randString(r))}
	case 1:
		return MsgReadReply{
			ReqID: r.Uint64() >> 40, Key: record.Key(randString(r)),
			Value: randWireValue(r), Version: record.Version(r.Uint64() >> 32),
			Exists: r.Intn(2) == 0, Escrow: randWireEscrow(r),
		}
	case 2:
		return MsgProposeFast{Opt: randWireOption(r)}
	case 3:
		var m MsgProposeBatch
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Opts = append(m.Opts, randWireOption(r))
		}
		return m
	case 4:
		return randWireVote(r)
	case 5:
		var m MsgVoteBatch
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Votes = append(m.Votes, randWireVote(r))
		}
		return m
	case 6:
		return MsgLearned{
			OptID:    OptionID{Tx: TxID(randString(r)), Key: record.Key(randString(r))},
			Decision: Decision(r.Intn(3)), Reason: RejectReason(r.Intn(2)),
			Escrow: randWireEscrow(r),
		}
	case 7:
		return MsgVisibility{Opt: randWireOption(r), Commit: r.Intn(2) == 0}
	case 8:
		var m MsgVisibilityBatch
		for i, n := 0, r.Intn(4); i < n; i++ {
			m.Items = append(m.Items, MsgVisibility{Opt: randWireOption(r), Commit: r.Intn(2) == 0})
		}
		return m
	case 9:
		m := MsgPhase2a{
			Key: record.Key(randString(r)), Ballot: randWireBallot(r), Seq: r.Uint64() >> 40,
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.CStruct = append(m.CStruct, VotedOption{
				Opt: randWireOption(r), Decision: Decision(r.Intn(3)), Reason: RejectReason(r.Intn(2)),
			})
		}
		if r.Intn(4) > 0 {
			m.HasBase = true
			m.BaseVersion = record.Version(r.Uint64() >> 32)
			m.BaseValue = randWireValue(r)
			m.BaseExists = r.Intn(2) == 0
			m.BaseLineage = randWireLineage(r)
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			d := DecidedOption{
				ID:       OptionID{Tx: TxID(randString(r)), Key: record.Key(randString(r))},
				Decision: Decision(r.Intn(3)),
			}
			if r.Intn(2) == 0 {
				d.Opt, d.HasOpt = randWireOption(r), true
			}
			m.LegacyDecided = append(m.LegacyDecided, d)
		}
		return m
	case 10:
		m := MsgPhase2b{
			Key: record.Key(randString(r)), Ballot: randWireBallot(r),
			Seq: r.Uint64() >> 40, OK: r.Intn(2) == 0,
		}
		if !m.OK {
			m.Promised = randWireBallot(r)
		}
		return m
	case 11:
		m := MsgVisibilitySub{Epoch: r.Uint64() >> 40}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.CatchUp = append(m.CatchUp, record.Key(randString(r)))
		}
		return m
	default:
		m := MsgVisibilityFeed{Epoch: r.Uint64() >> 40, Seq: r.Uint64() >> 40, Boot: r.Uint64() >> 40}
		for i, n := 0, r.Intn(3); i < n; i++ {
			m.Items = append(m.Items, FeedItem{
				Key: record.Key(randString(r)), Value: randWireValue(r),
				Version: record.Version(r.Uint64() >> 32),
				Exists:  r.Intn(2) == 0, Escrow: randWireEscrow(r),
			})
		}
		return m
	}
}

// FuzzWireParity drives random canonical messages through both codecs
// and demands agreement: decode(encode(m)) == m and binary-decoded ==
// gob-decoded. Runs its seed corpus under plain `go test`; `go test
// -fuzz=FuzzWireParity ./internal/core/` explores further.
func FuzzWireParity(f *testing.F) {
	for pick := uint8(0); pick < 13; pick++ {
		f.Add(int64(pick)*7919, pick)
	}
	f.Fuzz(func(t *testing.T, seed int64, pick uint8) {
		r := rand.New(rand.NewSource(seed))
		msg := randWireMessage(r, pick)
		in := transport.Envelope{From: "a", To: "b", Msg: msg}
		b, err := transport.AppendEnvelope(nil, in)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		out, err := transport.DecodeEnvelope(transport.NewWireReader(b))
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(out.Msg, msg) {
			t.Fatalf("binary round trip mismatch\n got %#v\nwant %#v", out.Msg, msg)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var ge transport.Envelope
		if err := gob.NewDecoder(&buf).Decode(&ge); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if !reflect.DeepEqual(out.Msg, ge.Msg) {
			t.Fatalf("binary and gob decode disagree\n bin %#v\n gob %#v", out.Msg, ge.Msg)
		}
	})
}

// FuzzWireDecode throws raw bytes at the frame decoder: it must
// return an error or a message, never panic or over-allocate.
func FuzzWireDecode(f *testing.F) {
	for _, msg := range wireSamples() {
		b, err := transport.AppendEnvelope(nil, transport.Envelope{From: "a", To: "b", Msg: msg})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = transport.DecodeEnvelope(transport.NewWireReader(b))
	})
}
