package transport

import (
	"math/rand"
	"sync"
	"time"

	"mdcc/internal/clock"
)

// LatencyFunc returns the one-way delay for a message between two
// nodes. It may consult a topology matrix and add jitter.
type LatencyFunc func(from, to NodeID) time.Duration

// Local is a real-time in-process Network: every node gets a mailbox
// goroutine that executes its handler and timer callbacks serially.
// An optional LatencyFunc injects wide-area delays (used by examples
// to demo geo-behaviour at compressed time scales).
type Local struct {
	mu      sync.RWMutex
	nodes   map[NodeID]*mailbox
	failed  map[NodeID]bool
	latency LatencyFunc
	clk     clock.Clock
	closed  bool
	tracer  WireTracer
	stats   statCounters
}

// SetTracer installs the flight-recorder wire hook. Call before
// traffic starts; a nil tracer (the default) costs one nil check per
// message.
func (l *Local) SetTracer(tr WireTracer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tracer = tr
}

// mailbox serializes all work (message handling and timer callbacks)
// for one node on a single goroutine.
type mailbox struct {
	ch   chan func(Handler)
	done chan struct{}
}

// NewLocal returns a Local network. latency may be nil for immediate
// delivery.
func NewLocal(latency LatencyFunc) *Local {
	return &Local{
		nodes:   make(map[NodeID]*mailbox),
		failed:  make(map[NodeID]bool),
		latency: latency,
		clk:     clock.NewReal(),
	}
}

// Fail makes a node unreachable (messages to and from it are
// dropped) until Recover — used to demonstrate data-center outages
// on the real-time transport.
func (l *Local) Fail(id NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failed[id] = true
}

// Recover reverses Fail.
func (l *Local) Recover(id NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.failed, id)
}

// Register installs the node's handler and starts its mailbox loop.
func (l *Local) Register(id NodeID, h Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mb, ok := l.nodes[id]; ok {
		close(mb.done)
	}
	mb := &mailbox{ch: make(chan func(Handler), 4096), done: make(chan struct{})}
	l.nodes[id] = mb
	go func() {
		for {
			select {
			case f := <-mb.ch:
				f(h)
			case <-mb.done:
				return
			}
		}
	}()
}

func (l *Local) enqueue(to NodeID, f func(Handler)) {
	l.mu.RLock()
	mb, ok := l.nodes[to]
	closed := l.closed
	l.mu.RUnlock()
	if !ok || closed {
		return // unroutable: drop, like a dead host
	}
	select {
	case mb.ch <- f:
	case <-mb.done:
	}
}

// Send routes the message after the configured latency.
func (l *Local) Send(from, to NodeID, msg Message) {
	l.mu.RLock()
	fromFailed := l.failed[from]
	tracer := l.tracer
	l.mu.RUnlock()
	if fromFailed {
		return
	}
	l.stats.countSend(msg)
	e := Envelope{From: from, To: to, Msg: msg}
	if tracer != nil {
		e.TraceClk = tracer.StampSend()
	}
	deliver := func() {
		l.mu.RLock()
		toFailed := l.failed[to]
		l.mu.RUnlock()
		if toFailed {
			return
		}
		if tracer != nil {
			tracer.ObserveRecv(e.TraceClk)
		}
		l.stats.countReceive(e.Msg)
		l.enqueue(to, func(h Handler) { h(e) })
	}
	var d time.Duration
	if l.latency != nil {
		d = l.latency(from, to)
	}
	if d <= 0 {
		go deliver()
		return
	}
	l.clk.After(d, deliver)
}

// After schedules f serialized with node on's handler.
func (l *Local) After(on NodeID, d time.Duration, f func()) clock.Timer {
	return l.clk.After(d, func() {
		l.enqueue(on, func(Handler) { f() })
	})
}

// Now returns wall-clock time.
func (l *Local) Now() time.Time { return l.clk.Now() }

// Stats snapshots the transport counters.
func (l *Local) Stats() Stats { return l.stats.snapshot() }

// Close stops all mailbox loops; subsequent sends are dropped.
func (l *Local) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, mb := range l.nodes {
		close(mb.done)
	}
	l.nodes = make(map[NodeID]*mailbox)
}

// UniformJitter wraps a base latency function with ±frac multiplicative
// uniform jitter drawn from r (guarded by an internal mutex so the
// result is safe for concurrent use).
func UniformJitter(base LatencyFunc, frac float64, r *rand.Rand) LatencyFunc {
	if base == nil || frac <= 0 {
		return base
	}
	var mu sync.Mutex
	return func(from, to NodeID) time.Duration {
		d := base(from, to)
		mu.Lock()
		j := 1 + frac*(2*r.Float64()-1)
		mu.Unlock()
		return time.Duration(float64(d) * j)
	}
}
