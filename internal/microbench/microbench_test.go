package microbench

import (
	"math/rand"
	"testing"

	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

func TestDefaults(t *testing.T) {
	o := Defaults()
	if o.Items != 10000 || o.ItemsPerTxn != 3 || o.MaxDecrement != 3 {
		t.Fatalf("paper defaults wrong: %+v", o)
	}
}

func TestPreload(t *testing.T) {
	w := New(Options{Items: 100, InitialStockMin: 5, InitialStockMax: 9, LocalMasterFrac: -1})
	entries := w.Preload(rand.New(rand.NewSource(1)))
	if len(entries) != 100 {
		t.Fatalf("preload %d entries", len(entries))
	}
	for _, e := range entries {
		s := e.Value.Attr(StockAttr)
		if s < 5 || s > 9 {
			t.Fatalf("stock %d out of range", s)
		}
		if e.Version != 1 {
			t.Fatalf("version %d", e.Version)
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	w := New(Options{Items: 1000, HotspotFrac: 0.1, HotProb: 0.9, LocalMasterFrac: -1})
	rng := rand.New(rand.NewSource(2))
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.pickItem(rng) < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction %.3f, want ≈0.9", frac)
	}
}

func TestUniformWithoutHotspot(t *testing.T) {
	w := New(Options{Items: 1000, LocalMasterFrac: -1})
	rng := rand.New(rand.NewSource(3))
	lowHalf := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.pickItem(rng) < 500 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("uniform fraction %.3f, want ≈0.5", frac)
	}
}

func TestBasketDistinctItems(t *testing.T) {
	w := New(Options{Items: 10, ItemsPerTxn: 3, LocalMasterFrac: -1})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		b := w.basket(rng, topology.USWest)
		if len(b) != 3 {
			t.Fatalf("basket size %d", len(b))
		}
		seen := map[int]bool{}
		for _, it := range b {
			if seen[it] {
				t.Fatalf("duplicate item in basket: %v", b)
			}
			seen[it] = true
		}
	}
}

func TestLocalityPicksLocalMasters(t *testing.T) {
	w := New(Options{Items: 1000, LocalMasterFrac: 1.0})
	rng := rand.New(rand.NewSource(5))
	for _, dc := range topology.AllDCs() {
		if len(w.byDC[dc]) == 0 {
			t.Fatalf("no items mastered in %v", dc)
		}
	}
	for i := 0; i < 500; i++ {
		it := w.pickItemLocality(rng, topology.APTokyo, true)
		if w.masterOf[it] != topology.APTokyo {
			t.Fatalf("local pick returned remote-mastered item %d (%v)", it, w.masterOf[it])
		}
	}
	for i := 0; i < 500; i++ {
		it := w.pickItemLocality(rng, topology.APTokyo, false)
		if w.masterOf[it] == topology.APTokyo {
			t.Fatalf("remote pick returned local-mastered item %d", it)
		}
	}
}

func TestLocalityFraction(t *testing.T) {
	w := New(Options{Items: 1000, ItemsPerTxn: 3, LocalMasterFrac: 0.8})
	rng := rand.New(rand.NewSource(6))
	localBaskets := 0
	const n = 5000
	for i := 0; i < n; i++ {
		b := w.basket(rng, topology.USEast)
		allLocal := true
		for _, it := range b {
			if w.masterOf[it] != topology.USEast {
				allLocal = false
				break
			}
		}
		if allLocal {
			localBaskets++
		}
	}
	frac := float64(localBaskets) / n
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("local basket fraction %.3f, want ≈0.8", frac)
	}
}

func TestItemKeyStable(t *testing.T) {
	if ItemKey(42) != "item/000042" {
		t.Fatalf("ItemKey = %q", ItemKey(42))
	}
	if Constraint().Attr != StockAttr {
		t.Fatal("constraint attr mismatch")
	}
	if New(Options{}).Name() != "microbench" {
		t.Fatal("name")
	}
}

// fakeClient drives Next paths synchronously without a cluster.
type fakeClient struct {
	vals map[record.Key]record.Value
	vers map[record.Key]record.Version
	comm bool
}

func newFake(w *Workload, comm bool) *fakeClient {
	f := &fakeClient{
		vals: make(map[record.Key]record.Value),
		vers: make(map[record.Key]record.Version),
		comm: comm,
	}
	for _, e := range w.Preload(rand.New(rand.NewSource(1))) {
		f.vals[e.Key] = e.Value
		f.vers[e.Key] = e.Version
	}
	return f
}

func (f *fakeClient) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	v, ok := f.vals[key]
	cb(v.Clone(), f.vers[key], ok)
}

func (f *fakeClient) Commit(updates []record.Update, done func(bool)) {
	for _, up := range updates {
		if up.Kind == record.KindPhysical && up.ReadVersion != f.vers[up.Key] {
			done(false)
			return
		}
		after := up.Apply(f.vals[up.Key])
		if after.Attr(StockAttr) < 0 {
			done(false)
			return
		}
	}
	for _, up := range updates {
		f.vals[up.Key] = up.Apply(f.vals[up.Key])
		f.vers[up.Key]++
	}
	done(true)
}

func (f *fakeClient) SupportsCommutative() bool { return f.comm }

func TestNextCommutativePath(t *testing.T) {
	w := New(Options{Items: 20, ItemsPerTxn: 3, MaxDecrement: 2,
		InitialStockMin: 100, InitialStockMax: 100, LocalMasterFrac: -1})
	f := newFake(w, true)
	rng := rand.New(rand.NewSource(2))
	var total int64
	for i := 0; i < 50; i++ {
		txn := w.Next(0, topology.USWest, rng)
		committed := false
		txn(f, rng, func(r mtx.TxnResult) {
			if !r.Write {
				t.Fatal("buy txn not marked as a write")
			}
			committed = r.Committed
		})
		if !committed {
			t.Fatalf("uncontended buy %d aborted", i)
		}
	}
	for i := 0; i < 20; i++ {
		s := f.vals[ItemKey(i)].Attr(StockAttr)
		if s > 100 {
			t.Fatalf("stock grew: %d", s)
		}
		total += 100 - s
	}
	if total == 0 {
		t.Fatal("no stock was decremented")
	}
}

func TestNextRMWPath(t *testing.T) {
	w := New(Options{Items: 20, ItemsPerTxn: 2, MaxDecrement: 2,
		InitialStockMin: 50, InitialStockMax: 50, LocalMasterFrac: -1})
	f := newFake(w, false)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		txn := w.Next(0, topology.USWest, rng)
		done := false
		txn(f, rng, func(r mtx.TxnResult) { done = true })
		if !done {
			t.Fatalf("RMW txn %d never completed", i)
		}
	}
	for i := 0; i < 20; i++ {
		if f.vals[ItemKey(i)].Attr(StockAttr) > 50 {
			t.Fatal("RMW increased stock")
		}
	}
}

func TestNextRMWOutOfStockAborts(t *testing.T) {
	w := New(Options{Items: 2, ItemsPerTxn: 2, MaxDecrement: 3,
		InitialStockMin: 1, InitialStockMax: 1, LocalMasterFrac: -1})
	f := newFake(w, false)
	rng := rand.New(rand.NewSource(4))
	aborted := false
	for i := 0; i < 20 && !aborted; i++ {
		txn := w.Next(0, topology.USWest, rng)
		txn(f, rng, func(r mtx.TxnResult) { aborted = !r.Committed })
	}
	if !aborted {
		t.Fatal("depleted stock never aborted an RMW buy")
	}
}
