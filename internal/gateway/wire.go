package gateway

import (
	"fmt"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// Binary wire codecs for the client ⇄ gateway RPC surface (tag block
// 48..63; see internal/transport/codec.go). Same rules as
// internal/core's: field order frozen per transport.WireVersion,
// sorted-map and nil-for-empty conventions shared via core's exported
// Value/Update helpers.

const (
	tagMsgTx uint8 = 48 + iota
	tagMsgTxReply
	tagMsgRead
	tagMsgReadReply
)

// MsgTxReply flags byte.
const (
	txFlagCommitted  = 1 << 0
	txFlagOverloaded = 1 << 1
	txFlagMixedKinds = 1 << 2
)

// WireTag implements transport.WireMessage.
func (m MsgTx) WireTag() uint8 { return tagMsgTx }

// AppendWire implements transport.WireMessage.
func (m MsgTx) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	b = transport.AppendUvarint(b, uint64(len(m.Updates)))
	for _, u := range m.Updates {
		b = core.AppendUpdateWire(b, u)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgTxReply) WireTag() uint8 { return tagMsgTxReply }

// AppendWire implements transport.WireMessage.
func (m MsgTxReply) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	var flags uint8
	if m.Committed {
		flags |= txFlagCommitted
	}
	if m.Overloaded {
		flags |= txFlagOverloaded
	}
	if m.MixedKinds {
		flags |= txFlagMixedKinds
	}
	return append(b, flags)
}

// WireTag implements transport.WireMessage.
func (m MsgRead) WireTag() uint8 { return tagMsgRead }

// AppendWire implements transport.WireMessage.
func (m MsgRead) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	b = transport.AppendString(b, string(m.Key))
	b = transport.AppendBool(b, m.Quorum)
	return transport.AppendUvarint(b, uint64(m.Floor))
}

// WireTag implements transport.WireMessage.
func (m MsgReadReply) WireTag() uint8 { return tagMsgReadReply }

// AppendWire implements transport.WireMessage.
func (m MsgReadReply) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	b = transport.AppendString(b, string(m.Key))
	b = core.AppendValueWire(b, m.Value)
	b = transport.AppendUvarint(b, uint64(m.Version))
	return transport.AppendBool(b, m.Exists)
}

func init() {
	transport.RegisterWire(tagMsgTx, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgTx
		m.ReqID = r.Uvarint()
		n := r.Uvarint()
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("gateway: wire update count %d exceeds frame", n)
		}
		if n > 0 {
			m.Updates = make([]record.Update, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Updates = append(m.Updates, core.ReadUpdateWire(r))
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgTxReply, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgTxReply
		m.ReqID = r.Uvarint()
		flags := r.Byte()
		m.Committed = flags&txFlagCommitted != 0
		m.Overloaded = flags&txFlagOverloaded != 0
		m.MixedKinds = flags&txFlagMixedKinds != 0
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgRead, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgRead
		m.ReqID = r.Uvarint()
		m.Key = record.Key(r.String())
		m.Quorum = r.Bool()
		m.Floor = record.Version(r.Uvarint())
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgReadReply, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgReadReply
		m.ReqID = r.Uvarint()
		m.Key = record.Key(r.String())
		m.Value = core.ReadValueWire(r)
		m.Version = record.Version(r.Uvarint())
		m.Exists = r.Bool()
		return m, r.Err()
	})
}
