// Package gateway implements a data-center-local transaction gateway
// tier for MDCC. The paper places a coordinator library in every
// application server; at "millions of users" scale that means a
// per-session coordinator and per-transaction messages melting the
// acceptors. A Gateway instead:
//
//   - pools a bounded set of core.Coordinators and multiplexes all
//     attached client sessions across them (sessions are stateless
//     with respect to the protocol, so any pooled coordinator can
//     carry any transaction);
//   - coalesces outbound protocol messages bound for the same
//     acceptor within a small time/size window into one
//     transport.Batch envelope (cross-transaction batching — the
//     §7 optimization generalized beyond one transaction);
//   - merges *commutative* updates to the same hot key from
//     concurrent transactions into one merged option per coalescing
//     window, so a stock-decrement stampede costs O(windows) Paxos
//     work instead of O(transactions). Each client delta is still
//     individually accounted: admission into a window is checked
//     delta-by-delta against an exact headroom account fed by the
//     escrow snapshots acceptors piggyback on every vote and read
//     reply (base value + pending escrow sums per constrained
//     attribute — the same inputs the acceptor's own demarcation
//     check uses, so the gateway is never looser than the acceptor).
//     The merged update carries the number of client updates it
//     represents (record.Update.Merged) so version accounting stays
//     exact, and a rejected merge is split and re-run per transaction
//     so over-aggregation can never abort a transaction that would
//     have committed alone. Because the piggybacked pending sums
//     include every gateway's in-flight deltas, the per-DC gateways
//     share demarcation headroom through the same channel (each
//     additionally caps its locally-unconfirmed outstanding deltas at
//     a 1/HeadroomShare slice of the snapshot headroom instead of
//     assuming the full local slice);
//   - applies admission control: a bounded in-flight window plus a
//     bounded FIFO backlog, beyond which transactions fail fast with
//     ErrOverloaded instead of stacking unbounded queues onto the
//     acceptors.
//
// Correctness envelope: coalescing is an optimization only. Merged
// options travel the unmodified MDCC commit path (fast ballots,
// demarcation, recovery), acceptors remain the arbiter of every
// constraint, and the gateway's demarcation accounting merely decides
// how much to merge. Atomicity is preserved because only
// single-update commutative transactions are merged; multi-update
// transactions pass through untouched.
package gateway

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/core"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// ErrOverloaded is reported when admission control sheds a
// transaction: the in-flight window and the backlog are both full.
var ErrOverloaded = errors.New("gateway: overloaded, transaction shed")

// ErrClosed is reported for transactions submitted to (or queued in)
// a gateway that has shut down.
var ErrClosed = errors.New("gateway: closed")

// ErrOutcomeUnknown is reported for transactions a killed gateway had
// already dispatched into the protocol: their options may have been
// proposed (and may still commit via the dangling-option sweep), but
// the acknowledgement died with the process. See Kill. Callers map it
// to the public mdcc.ErrOutcomeUnknown.
var ErrOutcomeUnknown = errors.New("gateway: transaction outcome unknown (gateway crashed before acknowledgement)")

// Tuning shapes one gateway. The zero value means defaults.
type Tuning struct {
	// Pool is the number of pooled coordinators (default 4).
	Pool int
	// BatchWindow is how long an outbound message may wait for
	// same-destination company; 0 disables cross-transaction batching.
	// Default 2ms.
	BatchWindow time.Duration
	// BatchMax caps messages per batch envelope (default 64).
	BatchMax int
	// CoalesceWindow is how long a hot-key commutative update may wait
	// to be merged with others; 0 disables coalescing. Default 5ms.
	CoalesceWindow time.Duration
	// CoalesceMax caps client updates merged into one option
	// (default 64).
	CoalesceMax int
	// MaxInflight bounds concurrently executing transactions
	// (default 4096).
	MaxInflight int
	// MaxQueue bounds the backlog beyond MaxInflight; overflow is shed
	// with ErrOverloaded (default 16384).
	MaxQueue int
	// HeadroomShare divides the piggybacked demarcation headroom among
	// the deployment's concurrently-admitting gateways: a gateway only
	// holds locally-admitted unresolved deltas up to a 1/HeadroomShare
	// slice of the snapshot headroom, so the per-DC gateways cannot
	// collectively over-admit between snapshots. Default: one share
	// per data center; 1 gives a lone gateway the whole slice.
	HeadroomShare int
	// DisableReadTier turns the learned-replica read tier off: reads
	// go through a pooled coordinator as one RPC each (the pre-tier
	// behavior; also the read benchmark's baseline arm).
	DisableReadTier bool
	// FeedTTL is how long a shard's visibility feed may go silent
	// before its materialized state stops being served and the
	// subscription is renewed — the tier's worst-case staleness bound
	// across failures (default 2s; steady-state staleness is one
	// dispatch flush, see internal/core/feed.go).
	FeedTTL time.Duration
}

func (t Tuning) withDefaults() Tuning {
	if t.Pool <= 0 {
		t.Pool = 4
	}
	if t.BatchWindow == 0 {
		t.BatchWindow = 2 * time.Millisecond
	}
	if t.BatchMax <= 0 {
		t.BatchMax = 64
	}
	if t.CoalesceWindow == 0 {
		t.CoalesceWindow = 5 * time.Millisecond
	}
	if t.CoalesceMax <= 0 {
		t.CoalesceMax = 64
	}
	if t.MaxInflight <= 0 {
		t.MaxInflight = 4096
	}
	if t.MaxQueue <= 0 {
		t.MaxQueue = 16384
	}
	if t.HeadroomShare <= 0 {
		t.HeadroomShare = topology.NumDCs
	}
	if t.FeedTTL <= 0 {
		t.FeedTTL = feedTTLDefault
	}
	return t
}

// snapTTL bounds how long a headroom account may go without a fresh
// piggybacked escrow snapshot before a read is issued to refresh it
// (hot keys refresh for free on every vote; this is the idle-key
// fallback).
const snapTTL = time.Second

// GatewayID names the gateway node of a data center.
func GatewayID(dc topology.DC) transport.NodeID {
	return transport.NodeID("gw/" + dc.String())
}

func coordID(dc topology.DC, i int) transport.NodeID {
	return transport.NodeID(fmt.Sprintf("gw/%s/c%d", dc, i))
}

// NodeIDs lists every transport node a gateway for dc will register
// (the gateway itself plus its pooled coordinators) so deployments
// can place them in latency maps before the gateway exists.
func NodeIDs(dc topology.DC, t Tuning) []transport.NodeID {
	t = t.withDefaults()
	out := []transport.NodeID{GatewayID(dc)}
	for i := 0; i < t.Pool; i++ {
		out = append(out, coordID(dc, i))
	}
	return out
}

// MaxRoutedPool is the largest coordinator pool whose node IDs peer
// servers pre-install routes for (RouteIDs). Pools are bounded by
// design — the tier's whole point is a small coordinator set — so a
// static cap keeps cross-server routing coordination-free.
const MaxRoutedPool = 64

// RouteIDs lists every transport id a *peer* process must be able to
// route back to a gateway possibly hosted in dc: acceptor votes,
// leader decisions and read replies all flow directly to the pooled
// coordinators, which live on the gateway DC's server. Pool sizes are
// a local tuning choice, so peers route the maximum.
func RouteIDs(dc topology.DC) []transport.NodeID {
	return NodeIDs(dc, Tuning{Pool: MaxRoutedPool})
}

// Metrics is a gateway's operational snapshot.
type Metrics struct {
	// Commits / Aborts count settled client transactions (aborts
	// include admission sheds).
	Commits int64 `json:"commits"`
	Aborts  int64 `json:"aborts"`

	// Submitted counts client transactions entering the gateway;
	// Passthrough those dispatched unmodified; Coalesced the client
	// updates that joined a hot-key merge window; CoalesceBypass the
	// coalescible updates sent individually because the gateway's
	// demarcation view had no headroom for a merge.
	Submitted      int64 `json:"submitted"`
	Passthrough    int64 `json:"passthrough"`
	Coalesced      int64 `json:"coalesced"`
	CoalesceBypass int64 `json:"coalesceBypass"`
	// MergedOptions counts merged proposals issued (windows flushed
	// with >= 2 waiters), MergedUpdates the client updates inside
	// them, MergeSplits merged proposals that were rejected and re-run
	// per transaction.
	MergedOptions int64 `json:"mergedOptions"`
	MergedUpdates int64 `json:"mergedUpdates"`
	MergeSplits   int64 `json:"mergeSplits"`
	// CoalesceRatio is MergedUpdates / Submitted.
	CoalesceRatio float64 `json:"coalesceRatio"`

	// Exact escrow accounting (acceptor-piggybacked). EscrowUpdates
	// counts snapshots folded into headroom accounts, EscrowStale
	// snapshots ignored because a fresher version was already held.
	EscrowUpdates int64 `json:"escrowUpdates"`
	EscrowStale   int64 `json:"escrowStale"`
	// TrackedKeys (gauge) is the number of keys with a live headroom
	// account; MinHeadroom (gauge) is the tightest remaining shared
	// demarcation headroom across them (-1 = no constrained key
	// tracked). MinHeadroom at 0 with traffic flowing means admission
	// is bypassing merges and letting acceptors arbitrate.
	TrackedKeys int64 `json:"trackedKeys"`
	MinHeadroom int64 `json:"minHeadroom"`

	// Learned-replica read tier. LocalReads counts reads served from
	// the materialized store with zero RPCs; ReadRPCs single-flight
	// fallback reads dispatched (cold keys, dead feeds, floor
	// outruns); ReadCoalesced callers who shared an already-in-flight
	// fallback; ReadQuorums quorum escalations for floors the local
	// replica could not meet. LocalReadFrac is LocalReads over all
	// reads served.
	LocalReads    int64   `json:"localReads"`
	ReadRPCs      int64   `json:"readRPCs"`
	ReadCoalesced int64   `json:"readCoalesced"`
	ReadQuorums   int64   `json:"readQuorums"`
	LocalReadFrac float64 `json:"localReadFrac"`
	// Feed stream health. FeedMsgs/FeedItems count consumed in-order
	// feed messages and the key states inside them; FeedGaps sequence
	// holes detected (each triggers a resync); FeedDrops feeds marked
	// dead after FeedTTL of silence; FeedResubs subscriptions sent
	// (initial + resyncs); FeedStaleMsgs duplicates and dead-epoch
	// messages discarded. MaterializedKeys (gauge) is how many keys
	// hold a served value; FeedsLive (gauge) how many local shard
	// streams currently bound staleness.
	FeedMsgs         int64 `json:"feedMsgs"`
	FeedItems        int64 `json:"feedItems"`
	FeedGaps         int64 `json:"feedGaps"`
	FeedDrops        int64 `json:"feedDrops"`
	FeedResubs       int64 `json:"feedResubs"`
	FeedStaleMsgs    int64 `json:"feedStaleMsgs"`
	MaterializedKeys int64 `json:"materializedKeys"`
	FeedsLive        int64 `json:"feedsLive"`

	// Admission control.
	AdmissionRejects int64 `json:"admissionRejects"`
	Inflight         int64 `json:"inflight"`
	QueueDepth       int64 `json:"queueDepth"`
	QueuePeak        int64 `json:"queuePeak"`

	// Cross-transaction batching (outbound, from the pooled
	// coordinators). BatchFanIn is BatchedMsgs / BatchEnvelopes.
	BatchEnvelopes int64   `json:"batchEnvelopes"`
	BatchedMsgs    int64   `json:"batchedMsgs"`
	BatchSingles   int64   `json:"batchSingles"`
	BatchFanIn     float64 `json:"batchFanIn"`

	// Shard ring. WrongShardRetries counts commits refused with
	// ring.ErrWrongShard (admission frozen for a live move, or a stale
	// caller epoch) — each refusal is a client retry, never a
	// duplicated transaction. RingEpoch (gauge) is the ring epoch this
	// gateway routes under; Add keeps the max.
	WrongShardRetries int64 `json:"wrongShardRetries"`
	RingEpoch         int64 `json:"ringEpoch"`
}

// Add accumulates another gateway's counters into m (QueuePeak takes
// the max, gauges sum); call Finalize after the last Add to recompute
// the derived ratios.
func (m *Metrics) Add(o Metrics) {
	m.Commits += o.Commits
	m.Aborts += o.Aborts
	m.Submitted += o.Submitted
	m.Passthrough += o.Passthrough
	m.Coalesced += o.Coalesced
	m.CoalesceBypass += o.CoalesceBypass
	m.MergedOptions += o.MergedOptions
	m.MergedUpdates += o.MergedUpdates
	m.MergeSplits += o.MergeSplits
	m.EscrowUpdates += o.EscrowUpdates
	m.EscrowStale += o.EscrowStale
	switch {
	case m.TrackedKeys == 0:
		m.MinHeadroom = o.MinHeadroom // m had no accounts; take o's gauge verbatim
	case o.TrackedKeys > 0 && o.MinHeadroom >= 0 &&
		(m.MinHeadroom < 0 || o.MinHeadroom < m.MinHeadroom):
		m.MinHeadroom = o.MinHeadroom
	}
	m.TrackedKeys += o.TrackedKeys
	m.LocalReads += o.LocalReads
	m.ReadRPCs += o.ReadRPCs
	m.ReadCoalesced += o.ReadCoalesced
	m.ReadQuorums += o.ReadQuorums
	m.FeedMsgs += o.FeedMsgs
	m.FeedItems += o.FeedItems
	m.FeedGaps += o.FeedGaps
	m.FeedDrops += o.FeedDrops
	m.FeedResubs += o.FeedResubs
	m.FeedStaleMsgs += o.FeedStaleMsgs
	m.MaterializedKeys += o.MaterializedKeys
	m.FeedsLive += o.FeedsLive
	m.AdmissionRejects += o.AdmissionRejects
	m.Inflight += o.Inflight
	m.QueueDepth += o.QueueDepth
	if o.QueuePeak > m.QueuePeak {
		m.QueuePeak = o.QueuePeak
	}
	m.BatchEnvelopes += o.BatchEnvelopes
	m.BatchedMsgs += o.BatchedMsgs
	m.BatchSingles += o.BatchSingles
	m.WrongShardRetries += o.WrongShardRetries
	if o.RingEpoch > m.RingEpoch {
		m.RingEpoch = o.RingEpoch
	}
}

// Finalize recomputes the derived ratios from the summed counters.
func (m *Metrics) Finalize() {
	m.CoalesceRatio = 0
	if m.Submitted > 0 {
		m.CoalesceRatio = float64(m.MergedUpdates) / float64(m.Submitted)
	}
	m.BatchFanIn = 0
	if m.BatchEnvelopes > 0 {
		m.BatchFanIn = float64(m.BatchedMsgs) / float64(m.BatchEnvelopes)
	}
	m.LocalReadFrac = 0
	if served := m.LocalReads + m.ReadRPCs + m.ReadCoalesced; served > 0 {
		m.LocalReadFrac = float64(m.LocalReads) / float64(served)
	}
}

// waiter is one client transaction parked in a merge window.
type waiter struct {
	up    record.Update
	track []outTrack
	done  func(committed bool, err error)
	span  *gwSpan
}

// mergeWindow accumulates commutative deltas for one hot key.
type mergeWindow struct {
	sum     map[string]int64
	waiters []waiter
	timer   clock.Timer
}

// attrAccount is the gateway's mirror of one constrained attribute's
// escrow state at the last adopted snapshot: committed base plus the
// acceptor-side worst-case pending sums (which include every
// gateway's in-flight deltas — the shared-headroom channel).
type attrAccount struct {
	base     int64
	pendDown int64 // <= 0
	pendUp   int64 // >= 0
}

// keyState is the gateway's per-key accounting: the current merge
// window plus the exact headroom account — the freshest piggybacked
// escrow snapshot and the deltas this gateway admitted on top of it
// that are not yet resolved. Until the first valid snapshot arrives
// (seen) admission is conservative: no merging, acceptors arbitrate.
type keyState struct {
	win        *mergeWindow
	seen       bool
	ver        record.Version // version of the adopted snapshot
	acc        map[string]attrAccount
	fetched    time.Time // when the snapshot arrived (snapTTL refresh)
	pendSetAt  time.Time // when the pending sums were last set wholesale
	refreshing bool
	// contenders is the freshest observed count of distinct gateway
	// groups with pending votes on the key (piggybacked on escrow
	// snapshots). It adapts fitsLocked's headroom-share divisor: a
	// lone gateway takes the whole slice instead of 1/NumDCs, and the
	// divisor grows back as contention is observed.
	contenders int
	// Materialized committed state (the learned-replica read tier):
	// the freshest (value, version) observed for the key via the
	// visibility feed or fallback read replies, unified with the
	// escrow account so value and headroom freshness ride the same
	// stream and the same GC. confirmed reports the key is registered
	// in the shard's interest set — proven by the stream echoing the
	// key back — which is what licenses serving it from memory: an
	// RPC-installed value whose interest-add was lost would otherwise
	// go stale silently under a live feed that simply never carries
	// the key.
	hasVal    bool
	confirmed bool
	val       record.Value
	valVer    record.Version
	valExists bool
	readAt    time.Time // last served read (the eviction clock)
	askedAt   time.Time // last interest-add sent (resend throttle)
	askTries  int       // unanswered interest-adds (backoff exponent)
	// outDown/outUp are this gateway's admitted-but-unresolved deltas,
	// split by direction (worst-case accounting mirrors the acceptor).
	// They may double-count deltas already visible in acc's pending
	// sums — conservative by construction, never loose.
	outDown map[string]int64 // <= 0
	outUp   map[string]int64 // >= 0
}

type queuedTx struct {
	updates []record.Update
	done    func(bool, error)
	span    *gwSpan
}

// gwSpan carries one admitted transaction's flight-recorder context
// from submission to settlement. nil whenever tracing is off, so every
// site pays one nil check.
type gwSpan struct {
	subAt int64    // submit wall time (transport clock, UnixNano)
	loSeq uint64   // Lamport seq of the first gateway event for this tx
	keys  []string // write-set keys
}

// Gateway is one data center's transaction gateway. Entry points
// (Commit, Read, ReadQuorum, Metrics) are safe to call from any
// goroutine; completion callbacks fire on pooled-coordinator handler
// goroutines.
type Gateway struct {
	id   transport.NodeID
	dc   topology.DC
	net  transport.Network // the raw network (RPC, timers, reads)
	bnet *batcher          // what the pooled coordinators send through
	cl   *topology.Cluster
	cfg  core.Config
	tun  Tuning
	q    paxos.Quorum
	tr   *trace.Ring // flight-recorder ring (nil when tracing is off)

	mu       sync.Mutex
	coords   []*core.Coordinator
	rr       int
	inflight int
	queue    []queuedTx
	keys     map[record.Key]*keyState
	m        Metrics
	reqSeq   uint64
	closed   bool

	// pending registers every admitted transaction's completion
	// callback (plus its write-set keys, for the shard mover's drain
	// probe) until it settles, so Kill can fail them all with
	// ErrOutcomeUnknown (the in-process analogue of the RPC client's
	// settle deadline). Exactly-once delivery is the map's job: the
	// wrapper only fires a callback it can still remove.
	pendSeq uint64
	pending map[uint64]pendingTx

	// Shard-move admission freeze (see FreezeShards): while a live
	// move drains, commits touching a moving key are refused with
	// ring.ErrWrongShard{frozenNext} before admission.
	frozen     func(record.Key) bool
	frozenNext ring.Epoch

	// Learned-replica read tier (see readtier.go).
	shards   []transport.NodeID // this DC's storage nodes
	feeds    map[transport.NodeID]*feedState
	flights  map[record.Key]*readFlight
	subEpoch uint64
}

// New builds a gateway for dc on net and registers its node (and its
// pooled coordinators') handlers. coreCfg is the same protocol config
// the deployment's storage nodes run.
func New(dc topology.DC, net transport.Network, cl *topology.Cluster, coreCfg core.Config, tun Tuning) *Gateway {
	return NewGen(dc, net, cl, coreCfg, tun, 0)
}

// NewGen builds a gateway with an incarnation generation. A
// supervisor restarting a crashed gateway MUST pass a fresh
// generation: the replacement re-registers the dead incarnation's
// node ids, and without a generation its pooled coordinators would
// re-mint the same transaction ids from zero — stale votes still in
// flight for the dead process's transactions would then count toward
// the new process's unrelated ones (see core.NewCoordinatorGen).
func NewGen(dc topology.DC, net transport.Network, cl *topology.Cluster, coreCfg core.Config, tun Tuning, gen uint64) *Gateway {
	tun = tun.withDefaults()
	g := &Gateway{
		id:      GatewayID(dc),
		dc:      dc,
		net:     net,
		cl:      cl,
		cfg:     coreCfg,
		tun:     tun,
		q:       paxos.NewQuorum(cl.ReplicationFactor()),
		keys:    make(map[record.Key]*keyState),
		pending: make(map[uint64]pendingTx),
	}
	g.bnet = newBatcher(net, g.id, tun.BatchWindow, tun.BatchMax)
	if coreCfg.Tracer != nil {
		g.tr = coreCfg.Tracer.Ring(string(g.id), int(dc))
		// The gateway sees the whole admit→ack life of a transaction
		// (queueing and coalescing included), so it — not the pooled
		// coordinators — owns flight-recorder completion.
		coreCfg.Tracer.ClaimTop()
		// Stamp batched envelope items at buffering time so the Lamport
		// order survives the wire even when inner items are re-dispatched
		// out of the outer envelope by a remote process.
		g.bnet.tracer = coreCfg.Tracer
	}
	for i := 0; i < tun.Pool; i++ {
		co := core.NewCoordinatorGen(coordID(dc, i), dc, g.bnet, cl, coreCfg, gen)
		// Every pooled coordinator feeds the piggybacked escrow
		// snapshots on its votes and read replies into the shared
		// headroom accounts.
		co.SetEscrowObserver(g.observeEscrow)
		g.coords = append(g.coords, co)
	}
	net.Register(g.id, g.handle)
	g.scheduleSweep()
	if !tun.DisableReadTier {
		// Subscribe to every local shard's committed-visibility feed.
		// Epochs must outrank every epoch a dead predecessor left in
		// the shards' subscriber tables — otherwise the stale-epoch
		// guard drops the fresh incarnation's subscriptions until its
		// counter catches up. Deriving the base from construction time
		// guarantees that without generation plumbing (restarts are
		// strictly later, on the real clock and the virtual one), the
		// same trick the publisher side's Boot id uses.
		g.subEpoch = uint64(net.Now().UnixNano())
		g.feeds = make(map[transport.NodeID]*feedState)
		g.flights = make(map[record.Key]*readFlight)
		for _, n := range cl.Storage {
			if n.DC == dc {
				g.shards = append(g.shards, n.ID)
				g.feeds[n.ID] = &feedState{}
			}
		}
		g.mu.Lock()
		g.subscribeFeedsLocked()
		g.mu.Unlock()
		g.scheduleFeedCheck()
	}
	return g
}

// ID returns the gateway's transport node identity.
func (g *Gateway) ID() transport.NodeID { return g.id }

// DC returns the gateway's data center.
func (g *Gateway) DC() topology.DC { return g.dc }

// Tuning returns the gateway's resolved tuning (defaults applied), so
// operators log what actually runs instead of re-deriving defaults.
func (g *Gateway) Tuning() Tuning { return g.tun }

// nextCoordLocked round-robins the pool.
func (g *Gateway) nextCoordLocked() *core.Coordinator {
	co := g.coords[g.rr%len(g.coords)]
	g.rr++
	return co
}

// Read serves a committed read with no version floor: from the
// materialized read tier when live (zero RPCs), else through a pooled
// coordinator. cb may fire synchronously (memory hit) or on a
// coordinator goroutine. See ReadFloor for floor-aware reads.
func (g *Gateway) Read(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	if !g.tun.DisableReadTier {
		g.ReadFloor(key, 0, cb)
		return
	}
	g.mu.Lock()
	co := g.nextCoordLocked()
	g.mu.Unlock()
	g.net.After(co.ID(), 0, func() { co.Read(key, cb) })
}

// ReadQuorum serves an up-to-date quorum read through a pooled
// coordinator.
func (g *Gateway) ReadQuorum(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	g.mu.Lock()
	co := g.nextCoordLocked()
	g.mu.Unlock()
	g.net.After(co.ID(), 0, func() { co.ReadQuorum(key, cb) })
}

// Commit submits a client transaction. done fires exactly once:
// committed reports the protocol outcome; err is non-nil only for
// gateway-level failures (ErrOverloaded, ErrClosed), never for
// protocol aborts.
func (g *Gateway) Commit(updates []record.Update, done func(committed bool, err error)) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		done(false, ErrClosed)
		return
	}
	g.m.Submitted++
	if g.frozen != nil && g.touchesFrozenLocked(updates) {
		g.m.WrongShardRetries++
		next := g.frozenNext
		if g.tr != nil {
			g.tr.Add(trace.Event{At: g.net.Now().UnixNano(), Key: firstKey(updates),
				Stage: trace.StageWrongShard, Arg: int64(next)})
		}
		g.mu.Unlock()
		done(false, ring.ErrWrongShard{Epoch: next})
		return
	}
	var span *gwSpan
	if g.tr != nil {
		span = &gwSpan{subAt: g.net.Now().UnixNano()}
	}
	if g.inflight >= g.tun.MaxInflight {
		if len(g.queue) >= g.tun.MaxQueue {
			g.m.AdmissionRejects++
			g.m.Aborts++
			g.mu.Unlock()
			done(false, ErrOverloaded)
			return
		}
		if span != nil {
			span.loSeq = g.tr.Add(trace.Event{At: span.subAt, Key: firstKey(updates),
				Stage: trace.StageQueue, Arg: int64(len(g.queue) + 1)})
		}
		g.queue = append(g.queue, queuedTx{updates: updates, done: done, span: span})
		if d := int64(len(g.queue)); d > g.m.QueuePeak {
			g.m.QueuePeak = d
		}
		g.mu.Unlock()
		return
	}
	g.startLocked(updates, done, span)
	g.mu.Unlock()
}

// firstKey is the representative key for tx-less gateway trace events
// (multi-key write-sets get their full key list on the completion
// record instead).
func firstKey(updates []record.Update) string {
	if len(updates) == 0 {
		return ""
	}
	return string(updates[0].Key)
}

// startLocked admits one transaction into the in-flight window and
// routes it (coalescing or passthrough). The client callback is
// registered in the pending map until it settles, so a Kill can fail
// every in-flight transaction with ErrOutcomeUnknown.
func (g *Gateway) startLocked(updates []record.Update, done func(bool, error), span *gwSpan) {
	g.inflight++
	if span != nil {
		seq := g.tr.Add(trace.Event{At: g.net.Now().UnixNano(), Key: firstKey(updates),
			Stage: trace.StageAdmit, Arg: int64(len(updates))})
		if span.loSeq == 0 {
			span.loSeq = seq
		}
		for _, up := range updates {
			span.keys = append(span.keys, string(up.Key))
		}
	}
	done = g.registerPendingLocked(updates, done, span)
	if g.coalescible(updates) {
		g.coalesceLocked(updates[0], done, span)
		return
	}
	g.m.Passthrough++
	// Passthrough commutative deltas still consume escrow headroom:
	// account them so window admission on the same keys stays exact.
	tracks := g.trackOutLocked(updates)
	g.dispatchLocked(updates, span, func(r core.CommitResult) {
		g.resolveTracks(tracks, r.Committed)
		g.settle(1, r.Committed)
		g.traceSettle(span, r, 1)
		done(r.Committed, r.Err)
	})
}

// pendingTx is one admitted-but-unsettled transaction: its completion
// callback plus the keys it touches (the shard mover's drain probe
// scans these).
type pendingTx struct {
	keys []record.Key
	done func(bool, error)
	span *gwSpan
}

// registerPendingLocked wraps a client completion callback with
// exactly-once semantics keyed by the pending map: whichever of
// normal settlement and Kill claims the entry first delivers.
func (g *Gateway) registerPendingLocked(updates []record.Update, done func(bool, error), span *gwSpan) func(bool, error) {
	g.pendSeq++
	id := g.pendSeq
	keys := make([]record.Key, len(updates))
	for i, up := range updates {
		keys[i] = up.Key
	}
	g.pending[id] = pendingTx{keys: keys, done: done, span: span}
	return func(ok bool, err error) {
		g.mu.Lock()
		p, live := g.pending[id]
		delete(g.pending, id)
		g.mu.Unlock()
		if live {
			p.done(ok, err)
		}
	}
}

// outTrack is one key's share of a dispatched write-set in the
// outstanding account, remembering which snapshot the account held
// when the deltas were admitted (see resolveTracks).
type outTrack struct {
	key    record.Key
	deltas map[string]int64
	seen   bool
	ver    record.Version
}

// trackOutLocked adds every *constrained* commutative delta of a
// write-set to its key's outstanding account and returns the tracks
// to resolve with. Unconstrained attributes are skipped — admission
// never consults them, so accounting them would only churn keyStates
// and fabricate junk attrAccount entries.
func (g *Gateway) trackOutLocked(updates []record.Update) []outTrack {
	var tracks []outTrack
	for _, up := range updates {
		if up.Kind != record.KindCommutative {
			continue
		}
		var deltas map[string]int64
		for attr, d := range up.Deltas {
			if _, ok := g.constraintFor(attr); !ok {
				continue
			}
			if deltas == nil {
				deltas = make(map[string]int64, len(up.Deltas))
			}
			deltas[attr] = d
		}
		if deltas == nil {
			continue
		}
		ks := g.ks(up.Key)
		for attr, d := range deltas {
			if d < 0 {
				ks.outDown[attr] += d
			} else {
				ks.outUp[attr] += d
			}
		}
		tracks = append(tracks, outTrack{key: up.Key, deltas: deltas, seen: ks.seen, ver: ks.ver})
	}
	return tracks
}

// coalescible: only single-update commutative transactions merge —
// anything else would break atomicity or read-set semantics.
func (g *Gateway) coalescible(updates []record.Update) bool {
	return g.tun.CoalesceWindow > 0 &&
		len(updates) == 1 &&
		updates[0].Kind == record.KindCommutative &&
		updates[0].Merged <= 1
}

// dispatchLocked hands a write-set to a pooled coordinator in its
// handler context; done(ok, rerr) fires on that coordinator's
// goroutine without the gateway lock held (rerr is the protocol's
// typed rejection cause, e.g. core.ErrMixedUpdateKinds, nil for
// commits and plain aborts).
func (g *Gateway) dispatchLocked(updates []record.Update, span *gwSpan, done func(r core.CommitResult)) {
	co := g.nextCoordLocked()
	if span != nil {
		now := g.net.Now().UnixNano()
		g.tr.Add(trace.Event{At: now, Key: firstKey(updates),
			Stage: trace.StageDispatch, Arg: int64(len(updates))})
		g.cfg.Tracer.ObservePhase(trace.PhaseGatewayQueue, int(g.dc),
			time.Duration(now-span.subAt))
	}
	g.net.After(co.ID(), 0, func() { co.Commit(updates, done) })
}

// traceSettle records the client-ack event, the end-to-end latency,
// and closes the transaction's flight record (the gateway owns
// completion — see ClaimTop in NewGen). n > 1 reports a merged window
// settling n client transactions under one protocol transaction.
func (g *Gateway) traceSettle(span *gwSpan, r core.CommitResult, n int) {
	if span == nil {
		return
	}
	now := g.net.Now().UnixNano()
	outcome := uint8(trace.FlagCommit)
	if !r.Committed {
		outcome = trace.FlagAbort
	}
	g.tr.Add(trace.Event{At: now, Tx: string(r.Tx), Stage: trace.StageAck,
		Flags: outcome, Arg: int64(n)})
	g.cfg.Tracer.ObservePhase(trace.PhaseEndToEnd, int(g.dc), time.Duration(now-span.subAt))
	g.cfg.Tracer.CompleteFrom(string(r.Tx), span.keys, span.loSeq,
		span.subAt, now, outcome, r.Recovered, r.Rerouted)
}

// settle returns n in-flight slots, records outcomes, and drains the
// backlog into freed slots.
func (g *Gateway) settle(n int, committed bool) {
	g.mu.Lock()
	g.inflight -= n
	if committed {
		g.m.Commits += int64(n)
	} else {
		g.m.Aborts += int64(n)
	}
	// Backlog drained after a freeze landed is fenced like fresh
	// admissions; refusals fire after unlock (the callback may
	// re-enter Commit).
	var refused []func(bool, error)
	var refusedNext ring.Epoch
	for g.inflight < g.tun.MaxInflight && len(g.queue) > 0 {
		next := g.queue[0]
		g.queue = g.queue[1:]
		if g.frozen != nil && g.touchesFrozenLocked(next.updates) {
			g.m.WrongShardRetries++
			refused = append(refused, next.done)
			refusedNext = g.frozenNext
			continue
		}
		g.startLocked(next.updates, next.done, next.span)
	}
	g.m.QueueDepth = int64(len(g.queue))
	g.mu.Unlock()
	for _, d := range refused {
		d(false, ring.ErrWrongShard{Epoch: refusedNext})
	}
}

// ---- hot-key delta coalescing ----------------------------------------

func (g *Gateway) ks(key record.Key) *keyState {
	s, ok := g.keys[key]
	if !ok {
		s = &keyState{
			outDown: make(map[string]int64),
			outUp:   make(map[string]int64),
		}
		g.keys[key] = s
	}
	return s
}

// observeEscrow folds a piggybacked acceptor snapshot into the key's
// headroom account. Snapshots are ordered by committed version: a
// fresher version replaces the account wholesale; an equal version
// (two replicas, different vote sets) merges conservatively by
// widening the pending sums — except that pendings older than snapTTL
// are replaced instead of widened, since aborts free escrow without
// bumping the committed version and a widen-only account would hold
// worst-case pendings forever on a key that stopped committing. An
// older version is dropped. Fires on pooled coordinator goroutines.
func (g *Gateway) observeEscrow(_ transport.NodeID, key record.Key, snap core.EscrowSnap) {
	if !snap.Valid {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.foldEscrowLocked(g.ks(key), snap, g.net.Now())
}

// foldEscrowLocked merges one escrow snapshot into a headroom account
// (shared by the vote/read-reply observer and the visibility feed, so
// escrow freshness rides whichever channel is fresher).
func (g *Gateway) foldEscrowLocked(ks *keyState, snap core.EscrowSnap, now time.Time) {
	if !snap.Valid {
		return
	}
	switch {
	case !ks.seen || snap.Version > ks.ver:
		ks.acc = make(map[string]attrAccount, len(snap.Attrs))
		for _, a := range snap.Attrs {
			ks.acc[a.Attr] = attrAccount{base: a.Base, pendDown: a.PendDown, pendUp: a.PendUp}
		}
		ks.seen = true
		ks.ver = snap.Version
		ks.fetched = now
		ks.pendSetAt = now
		ks.contenders = snap.Contenders
		g.m.EscrowUpdates++
	case snap.Version == ks.ver:
		replace := now.Sub(ks.pendSetAt) >= snapTTL
		for _, a := range snap.Attrs {
			cur := ks.acc[a.Attr]
			// Same committed version, possibly different vote sets:
			// keep the held base, and widen the pendings (worst case
			// wins) while they are fresh, replace them once stale.
			if replace {
				cur.pendDown, cur.pendUp = a.PendDown, a.PendUp
			} else {
				if a.PendDown < cur.pendDown {
					cur.pendDown = a.PendDown
				}
				if a.PendUp > cur.pendUp {
					cur.pendUp = a.PendUp
				}
			}
			ks.acc[a.Attr] = cur
		}
		if replace {
			ks.pendSetAt = now
			ks.contenders = snap.Contenders
		} else if snap.Contenders > ks.contenders {
			// Widen like the pendings: more observed contention wins
			// while fresh, and the TTL replacement above lets the
			// divisor relax once contention actually recedes.
			ks.contenders = snap.Contenders
		}
		ks.fetched = now
		g.m.EscrowUpdates++
	default:
		g.m.EscrowStale++
	}
}

func (g *Gateway) coalesceLocked(up record.Update, done func(bool, error), span *gwSpan) {
	key := up.Key
	ks := g.ks(key)
	if ks.win != nil && (len(ks.win.waiters) >= g.tun.CoalesceMax || !g.fitsLocked(ks, up)) {
		g.flushLocked(key, ks)
	}
	if ks.win == nil {
		if !g.fitsLocked(ks, up) {
			// No merge headroom — either no escrow snapshot has arrived
			// yet (bootstrap: admit conservatively, never merge blind) or
			// the shared headroom slice is exhausted. Ship individually:
			// the acceptors, not the account, decide, and the vote's
			// piggybacked snapshot refreshes the account for free.
			g.maybeRefreshLocked(key, ks)
			g.m.CoalesceBypass++
			g.m.Passthrough++
			tracks := g.trackOutLocked([]record.Update{up})
			g.dispatchLocked([]record.Update{up}, span, func(r core.CommitResult) {
				g.resolveTracks(tracks, r.Committed)
				g.settle(1, r.Committed)
				g.traceSettle(span, r, 1)
				done(r.Committed, r.Err)
			})
			return
		}
		g.maybeRefreshLocked(key, ks)
		win := &mergeWindow{sum: make(map[string]int64)}
		ks.win = win
		win.timer = g.net.After(g.id, g.tun.CoalesceWindow, func() {
			g.mu.Lock()
			if cur, ok := g.keys[key]; ok && cur.win == win {
				g.flushLocked(key, cur)
			}
			g.mu.Unlock()
		})
	}
	g.m.Coalesced++
	for attr, d := range up.Deltas {
		ks.win.sum[attr] += d
	}
	if span != nil {
		g.tr.Add(trace.Event{At: g.net.Now().UnixNano(), Key: string(key),
			Stage: trace.StageCoalesceJoin, Arg: int64(len(ks.win.waiters) + 1)})
	}
	track := g.trackOutLocked([]record.Update{up})
	ks.win.waiters = append(ks.win.waiters, waiter{up: up, track: track, done: done, span: span})
}

// fitsLocked is the exact headroom admission: may this gateway hold
// one more unresolved delta without ever being looser than the
// acceptor's demarcation check evaluated on the held snapshot?
//
// For a decrement d against min, the snapshot headroom is
//
//	H = (base + pendDown) − L,  L = min + ⌈head·(N−Q_F)/N⌉
//
// — how much worst-case downward movement the acceptors would still
// accept on top of everything already pending there (including other
// gateways' in-flight deltas). This gateway admits unresolved local
// deltas only up to ⌊H / share⌋, so gateways sharing the same key
// cannot collectively over-admit between snapshots. Before the first
// snapshot arrives the answer is no — conservative bootstrap, the
// acceptors arbitrate individual sends.
//
// The share divisor adapts to observed contention: acceptors
// piggyback how many distinct gateway groups actually hold pending
// votes on the key (EscrowSnap.Contenders), so a lone gateway takes
// the full slice instead of the static 1/HeadroomShare, and the
// divisor grows back as other gateways' deltas appear. When
// unobserved, the static divisor applies. Safety never depends on
// this: the DeltaSafe mirror above the cap is what the parity fuzz
// pins, and over-admission in the observation lag is arbitrated by
// the acceptors (split-and-rerun, never a manufactured abort).
func (g *Gateway) fitsLocked(ks *keyState, up record.Update) bool {
	share := g.shareLocked(ks)
	for attr, d := range up.Deltas {
		con, ok := g.constraintFor(attr)
		if !ok {
			continue // unconstrained attributes have no escrow to account
		}
		if !ks.seen {
			return false // constrained delta before the first snapshot
		}
		a := ks.acc[attr]
		// Exact mirror: the acceptor's own predicate, evaluated on the
		// snapshot pendings plus everything this gateway holds
		// unresolved. This checks BOTH bounds for every delta — an
		// acceptor rejects even a decrement while pending increments
		// overdraw the upper limit — so merge admission can never be
		// looser than the acceptor on what the gateway knows.
		if !core.DeltaSafe(a.base,
			a.pendDown+ks.outDown[attr], a.pendUp+ks.outUp[attr],
			d, con, g.q, true) {
			return false
		}
		// Shared-headroom cap: of the headroom the snapshot shows, this
		// gateway may hold at most a 1/share slice in locally-admitted
		// unresolved deltas, so the per-DC gateways cannot collectively
		// over-admit between snapshots.
		low, high := snapHeadroom(a, con, g.q)
		if d < 0 && low >= 0 && -(ks.outDown[attr]+d) > low/share {
			return false
		}
		if d > 0 && high >= 0 && ks.outUp[attr]+d > high/share {
			return false
		}
	}
	return true
}

// shareLocked resolves the headroom-share divisor for a key: the
// observed contender count clamped to the static HeadroomShare
// ceiling, or the static divisor when unobserved. Acceptors count
// the snapshot RECIPIENT's gateway group among the contenders even
// before its votes land (core.contenderGroups), so an observation of
// 1 really means "just you" — without that, two alternating gateways
// would each read the other's solo snapshot as their own and both
// take the full slice. Contenders==0 means the snapshot predates the
// contention signal: fall back to the static divisor.
func (g *Gateway) shareLocked(ks *keyState) int64 {
	share := int64(g.tun.HeadroomShare)
	if !ks.seen || ks.contenders <= 0 {
		return share
	}
	if obs := int64(ks.contenders); obs < share {
		return obs
	}
	return share
}

// snapHeadroom returns the demarcation headroom a snapshot account
// shows on the Min and Max side of con (clamped at >= 0; -1 for an
// absent bound). Shared by admission (fitsLocked) and the gauges so
// the two can never drift apart.
func snapHeadroom(a attrAccount, con record.Constraint, q paxos.Quorum) (low, high int64) {
	low, high = -1, -1
	if con.Min != nil {
		low = a.base + a.pendDown - core.DemarcationLow(*con.Min, a.base, q)
		if low < 0 {
			low = 0
		}
	}
	if con.Max != nil {
		high = core.DemarcationHigh(*con.Max, a.base, q) - (a.base + a.pendUp)
		if high < 0 {
			high = 0
		}
	}
	return low, high
}

func (g *Gateway) constraintFor(attr string) (record.Constraint, bool) {
	for _, con := range g.cfg.Constraints {
		if con.Attr == attr {
			return con, true
		}
	}
	return record.Constraint{}, false
}

// maybeRefreshLocked issues a read when the headroom account is
// missing or its snapshot has aged past snapTTL without vote traffic
// refreshing it; the read's piggybacked snapshot lands via
// observeEscrow. One read per key at a time.
func (g *Gateway) maybeRefreshLocked(key record.Key, ks *keyState) {
	if ks.refreshing {
		return
	}
	if ks.seen && g.net.Now().Sub(ks.fetched) < snapTTL {
		return
	}
	ks.refreshing = true
	co := g.nextCoordLocked()
	g.net.After(co.ID(), 0, func() {
		co.Read(key, func(record.Value, record.Version, bool) {
			// The escrow snapshot (if any) already arrived through the
			// observer; here we only release the refresh slot.
			g.mu.Lock()
			g.ks(key).refreshing = false
			g.mu.Unlock()
		})
	})
}

// flushLocked closes the key's window and dispatches it: one client
// update passes through unchanged; several become a single merged
// option. A rejected merge is split and re-run per transaction, so
// merging can only ever batch work, never manufacture aborts.
func (g *Gateway) flushLocked(key record.Key, ks *keyState) {
	win := ks.win
	if win == nil {
		return
	}
	ks.win = nil
	if win.timer != nil {
		win.timer.Stop()
	}
	if len(win.waiters) == 1 {
		w := win.waiters[0]
		g.dispatchLocked([]record.Update{w.up}, w.span, func(r core.CommitResult) {
			g.resolveTracks(w.track, r.Committed)
			g.settle(1, r.Committed)
			g.traceSettle(w.span, r, 1)
			w.done(r.Committed, r.Err)
		})
		return
	}
	waiters := win.waiters
	g.m.MergedOptions++
	g.m.MergedUpdates += int64(len(waiters))
	// The merged option's flight record is anchored at the oldest
	// waiter's submission — the worst client-perceived latency the
	// window produced.
	anchor := waiters[0].span
	if anchor != nil {
		g.tr.Add(trace.Event{At: g.net.Now().UnixNano(), Key: string(key),
			Stage: trace.StageCoalesceFlush, Arg: int64(len(waiters))})
	}
	merged := record.MergedCommutative(key, win.sum, len(waiters))
	g.dispatchLocked([]record.Update{merged}, anchor, func(r core.CommitResult) {
		if r.Committed {
			// Resolve per waiter, not by the window's net sum: the
			// outstanding account is sign-split, and a mixed window
			// (restock + purchase) nets to a sum that would leave
			// phantom residue in both directions forever.
			for _, w := range waiters {
				g.resolveTracks(w.track, true)
			}
			g.settle(len(waiters), true)
			if anchor != nil {
				// One completion for the merged protocol transaction;
				// every rider still contributes its own end-to-end
				// latency observation.
				now := g.net.Now().UnixNano()
				for _, w := range waiters[1:] {
					if w.span != nil {
						g.cfg.Tracer.ObservePhase(trace.PhaseEndToEnd, int(g.dc),
							time.Duration(now-w.span.subAt))
					}
				}
				g.traceSettle(anchor, r, len(waiters))
			}
			for _, w := range waiters {
				w.done(true, nil)
			}
			return
		}
		// Merged option rejected (demarcation exhausted, or an
		// outstanding physical write blocked the key): split and re-run
		// each client update alone so transactions that fit on their
		// own still commit. Their in-flight slots are still held, and
		// their deltas stay outstanding across the re-run — each
		// individual outcome resolves its own. The rejecting votes
		// carried fresh escrow snapshots, so the account that
		// over-admitted has already been corrected.
		g.mu.Lock()
		g.m.MergeSplits++
		if anchor != nil {
			g.tr.Add(trace.Event{At: g.net.Now().UnixNano(), Key: string(key),
				Stage: trace.StageCoalesceSplit, Arg: int64(len(waiters))})
		}
		for _, w := range waiters {
			w := w
			g.dispatchLocked([]record.Update{w.up}, w.span, func(r core.CommitResult) {
				g.resolveTracks(w.track, r.Committed)
				g.settle(1, r.Committed)
				g.traceSettle(w.span, r, 1)
				w.done(r.Committed, r.Err)
			})
		}
		g.mu.Unlock()
	})
}

// resolveTracks retires settled deltas from the outstanding account.
// A committed delta is folded into the snapshot base — mirroring the
// acceptor, which applies the update and prunes the vote on
// visibility — but ONLY while the account still holds the snapshot it
// held at admission (same seen/version): any snapshot adopted after
// the proposal already represents the delta, either in its pending
// sums (vote not yet pruned) or in its base (visibility executed), so
// folding again would double-count a committed increment and leave
// the account looser than the acceptor.
func (g *Gateway) resolveTracks(tracks []outTrack, committed bool) {
	g.mu.Lock()
	for _, tr := range tracks {
		ks := g.ks(tr.key)
		for attr, d := range tr.deltas {
			if d < 0 {
				ks.outDown[attr] -= d
			} else {
				ks.outUp[attr] -= d
			}
			if committed && ks.seen && tr.seen && ks.ver == tr.ver {
				a := ks.acc[attr]
				a.base += d
				ks.acc[attr] = a
			}
		}
		g.maybeEvictLocked(tr.key, ks)
	}
	g.mu.Unlock()
}

// evictAfter is how long an idle key (no window, nothing outstanding)
// keeps its headroom account before it is retired; hot keys refresh
// their snapshot on every vote and never age out.
const evictAfter = 10 * snapTTL

// idleLocked reports whether a keyState holds nothing live: no open
// window, no refresh in flight, no outstanding deltas.
func idleLocked(ks *keyState) bool {
	if ks.win != nil || ks.refreshing {
		return false
	}
	for _, d := range ks.outDown {
		if d != 0 {
			return false
		}
	}
	for _, d := range ks.outUp {
		if d != 0 {
			return false
		}
	}
	return true
}

// maybeEvictLocked retires a keyState once it is fully idle, its
// snapshot has gone stale, and nobody has read its materialized value
// lately — without this, g.keys grows by one entry per key ever
// touched and the Metrics gauge scan walks them all under the gateway
// lock forever. Eviction also bounds the read tier's memory: feed
// items refresh only tracked keys, so an evicted key stays gone until
// a read re-materializes it.
func (g *Gateway) maybeEvictLocked(key record.Key, ks *keyState) {
	if !idleLocked(ks) {
		return
	}
	now := g.net.Now()
	if ks.seen && now.Sub(ks.fetched) < evictAfter {
		return
	}
	if ks.hasVal && now.Sub(ks.readAt) < evictAfter {
		return
	}
	delete(g.keys, key)
}

// scheduleSweep arms the periodic idle-key sweep. Snapshot-only keys
// (created by read-reply piggybacks) have no resolve path to evict
// them, so GC cannot depend on traffic or on anyone polling Metrics.
func (g *Gateway) scheduleSweep() {
	g.net.After(g.id, evictAfter, func() {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		for key, ks := range g.keys {
			g.maybeEvictLocked(key, ks)
		}
		g.mu.Unlock()
		g.scheduleSweep()
	})
}

// headroomGaugesLocked computes the headroom gauges: how many keys
// have live escrow accounts, and the tightest remaining shared
// headroom among their constrained attributes after this gateway's
// outstanding deltas (-1 when no constrained account is tracked).
func (g *Gateway) headroomGaugesLocked() (tracked, minHeadroom int64) {
	minHeadroom = -1
	for _, ks := range g.keys {
		if !ks.seen {
			continue
		}
		share := g.shareLocked(ks)
		tracked++
		for _, con := range g.cfg.Constraints {
			a, ok := ks.acc[con.Attr]
			if !ok {
				continue
			}
			note := func(rem int64) {
				if rem < 0 {
					rem = 0
				}
				if minHeadroom < 0 || rem < minHeadroom {
					minHeadroom = rem
				}
			}
			low, high := snapHeadroom(a, con, g.q)
			if low >= 0 {
				note(low/share + ks.outDown[con.Attr]) // outDown <= 0
			}
			if high >= 0 {
				note(high/share - ks.outUp[con.Attr])
			}
		}
	}
	return tracked, minHeadroom
}

// ---- shard-ring fencing and live moves --------------------------------

// touchesFrozenLocked reports whether any update's key is in the
// frozen (moving) slice.
func (g *Gateway) touchesFrozenLocked(updates []record.Update) bool {
	for _, up := range updates {
		if g.frozen(up.Key) {
			return true
		}
	}
	return false
}

// CommitAt is Commit with an epoch fence: a caller that routed its
// write-set under ring epoch at is refused with ring.ErrWrongShard
// carrying the current epoch when its view is stale — before the
// transaction enters the protocol, so the retry under the fresh epoch
// can never duplicate work.
func (g *Gateway) CommitAt(at ring.Epoch, updates []record.Update, done func(committed bool, err error)) {
	if cur := g.cl.Ring().Epoch(); at != cur {
		g.mu.Lock()
		g.m.WrongShardRetries++
		g.mu.Unlock()
		done(false, ring.ErrWrongShard{Epoch: cur})
		return
	}
	g.Commit(updates, done)
}

// FreezeShards fences admission for a pending shard move: while
// frozen, any commit touching a key moving selects is refused with
// ring.ErrWrongShard{next}. Idempotent — the mover re-applies the
// freeze on every poll tick so a restarted gateway incarnation is
// re-fenced before it can admit a moving-key write mid-bootstrap.
func (g *Gateway) FreezeShards(moving func(record.Key) bool, next ring.Epoch) {
	g.mu.Lock()
	g.frozen = moving
	g.frozenNext = next
	g.mu.Unlock()
}

// InflightMoving counts admitted-but-unsettled transactions touching
// the frozen slice — the gateway half of the mover's drain gate (the
// acceptor half is core.StorageNode.Unsettled). Zero with the freeze
// applied means this gateway can no longer produce new options on
// moving keys.
func (g *Gateway) InflightMoving() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.frozen == nil {
		return 0
	}
	count := 0
	for _, p := range g.pending {
		for _, k := range p.keys {
			if g.frozen(k) {
				count++
				break
			}
		}
	}
	return count
}

// RingPublished tells the gateway a new ring epoch is live: the
// admission freeze lifts, and every key whose owner changed drops its
// interest confirmation so the read tier re-homes it — the next read
// re-asks interest on the new owner shard's feed instead of trusting
// the old shard's echo. Headroom accounts, coalescing windows and
// materialized values are already per-key, so they carry over
// unchanged; only the feed binding is owner-shaped.
func (g *Gateway) RingPublished() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.frozen = nil
	g.frozenNext = 0
	r := g.cl.Ring()
	for key, ks := range g.keys {
		if ks.confirmed && r.Moved(string(key)) {
			ks.confirmed = false
			ks.askTries = 0
			ks.askedAt = time.Time{}
		}
	}
}

// CoordMetrics sums the pooled coordinators' protocol counters. The
// counters live on the coordinator goroutines; call this from a
// quiesced deployment (after a run, or from the simulator's thread).
func (g *Gateway) CoordMetrics() core.CoordMetrics {
	var total core.CoordMetrics
	for _, c := range g.coords {
		total.Add(c.Metrics())
	}
	return total
}

// Metrics snapshots the gateway's counters.
func (g *Gateway) Metrics() Metrics {
	g.mu.Lock()
	m := g.m
	m.Inflight = int64(g.inflight)
	m.QueueDepth = int64(len(g.queue))
	m.RingEpoch = int64(g.cl.Ring().Epoch())
	m.TrackedKeys, m.MinHeadroom = g.headroomGaugesLocked()
	if !g.tun.DisableReadTier {
		m.MaterializedKeys, m.FeedsLive = g.readTierGaugesLocked()
	}
	g.mu.Unlock()
	m.BatchEnvelopes = g.bnet.envelopes.Load()
	m.BatchedMsgs = g.bnet.batched.Load()
	m.BatchSingles = g.bnet.singles.Load()
	m.Finalize()
	return m
}

// Kill models a gateway process crash for in-process deployments and
// harnesses: the backlog (never admitted — outcome known) fails with
// ErrClosed, while every admitted in-flight transaction fails with
// ErrOutcomeUnknown — its options may already be proposed and the
// protocol will still settle them (dangling-option sweep), but the
// acknowledgement died with the process. Callbacks fire synchronously
// on the caller's goroutine; pair with crashing the gateway's
// transport nodes so no late coordinator callback races (stragglers
// are absorbed by the pending map's exactly-once claim anyway).
func (g *Gateway) Kill() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	queued := g.queue
	g.queue = nil
	for _, ks := range g.keys {
		if ks.win == nil {
			continue
		}
		if ks.win.timer != nil {
			ks.win.timer.Stop()
		}
		// Window waiters were admitted and registered; they fail with
		// the in-flight cohort below (outcome-unknown is conservative
		// for a never-proposed waiter, and matches what the crashed
		// process's clients could actually know).
		ks.win = nil
	}
	ids := make([]uint64, 0, len(g.pending))
	for id := range g.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dones := make([]func(bool, error), 0, len(ids))
	var spans []*gwSpan
	for _, id := range ids {
		dones = append(dones, g.pending[id].done)
		if sp := g.pending[id].span; sp != nil {
			spans = append(spans, sp)
		}
		delete(g.pending, id)
	}
	g.inflight = 0
	g.m.Aborts += int64(len(queued) + len(dones))
	g.mu.Unlock()
	// The killed incarnation's clients never learn these outcomes —
	// exactly the traces worth keeping. The protocol TxID is unknown
	// here (the option may or may not have been proposed), so the
	// assembled timeline rides on the admit seq and the write-set keys.
	for _, sp := range spans {
		now := g.net.Now().UnixNano()
		g.tr.Add(trace.Event{At: now, Key: orFirst(sp.keys), Stage: trace.StageAck,
			Flags: trace.FlagUnknown})
		g.cfg.Tracer.CompleteFrom("?", sp.keys, sp.loSeq, sp.subAt, now,
			trace.FlagUnknown, false, false)
	}
	for _, q := range queued {
		q.done(false, ErrClosed)
	}
	for _, d := range dones {
		d(false, ErrOutcomeUnknown)
	}
}

func orFirst(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// Close rejects the backlog and every parked window with ErrClosed
// and flushes the batcher. Pooled coordinators keep draining what was
// already dispatched (their lifecycle belongs to the network).
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	queued := g.queue
	g.queue = nil
	var parked []waiter
	for key, ks := range g.keys {
		if ks.win == nil {
			continue
		}
		if ks.win.timer != nil {
			ks.win.timer.Stop()
		}
		parked = append(parked, ks.win.waiters...)
		ks.win = nil
		_ = key
	}
	n := len(queued) // queued never held inflight slots
	g.inflight -= len(parked)
	g.m.Aborts += int64(n + len(parked))
	g.mu.Unlock()
	for _, q := range queued {
		q.done(false, ErrClosed)
	}
	for _, w := range parked {
		w.done(false, ErrClosed)
	}
	g.bnet.flushAll()
}
