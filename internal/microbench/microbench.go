// Package microbench implements the paper's micro-benchmark (§5.3):
// a single table of items with randomly chosen stock values and a
// constraint that stock must stay at least 0. The buy transaction
// picks 3 random items and decrements each stock by 1–3 (a
// commutative operation). Knobs reproduce the evaluation's axes:
// hot-spot size (conflict rate, figure 6) and master locality
// (figure 7).
package microbench

import (
	"fmt"
	"math/rand"

	"mdcc/internal/kv"
	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

// StockAttr is the constrained attribute name.
const StockAttr = "stock"

// Constraint returns the stock >= 0 constraint the benchmark declares.
func Constraint() record.Constraint { return record.MinBound(StockAttr, 0) }

// Options shapes the workload.
type Options struct {
	// Items is the table size (paper default 10,000).
	Items int
	// ItemsPerTxn is the basket size (paper: 3).
	ItemsPerTxn int
	// MaxDecrement bounds the per-item decrement (paper: 1..3).
	MaxDecrement int
	// InitialStock draws each item's starting stock uniformly from
	// [InitialStockMin, InitialStockMax].
	InitialStockMin, InitialStockMax int64

	// HotspotFrac is the hot-spot size as a fraction of the table
	// (figure 6's x-axis: 0.02..0.90). Zero disables hot-spotting.
	HotspotFrac float64
	// HotProb is the probability an access goes to the hot-spot
	// (paper: 0.9).
	HotProb float64

	// LocalMasterFrac makes this fraction of transactions choose
	// items whose master is in the client's data center (figure 7's
	// x-axis). Negative disables locality steering. Requires
	// MasterDC to mirror the cluster configuration.
	LocalMasterFrac float64
	MasterDC        func(record.Key) topology.DC
}

// Defaults returns the paper's micro-benchmark parameters.
func Defaults() Options {
	return Options{
		Items:           10000,
		ItemsPerTxn:     3,
		MaxDecrement:    3,
		InitialStockMin: 10000,
		InitialStockMax: 20000,
		HotspotFrac:     0,
		HotProb:         0.9,
		LocalMasterFrac: -1,
	}
}

// Workload implements bench.Workload.
type Workload struct {
	opts Options
	// byDC[d] lists item indices mastered in DC d (locality mode).
	byDC [][]int
	// masterOf[i] is item i's master DC (locality mode).
	masterOf []topology.DC
}

// New builds the workload.
func New(opts Options) *Workload {
	if opts.Items <= 0 {
		opts.Items = 10000
	}
	if opts.ItemsPerTxn <= 0 {
		opts.ItemsPerTxn = 3
	}
	if opts.MaxDecrement <= 0 {
		opts.MaxDecrement = 3
	}
	if opts.InitialStockMax < opts.InitialStockMin {
		opts.InitialStockMax = opts.InitialStockMin
	}
	w := &Workload{opts: opts}
	if opts.LocalMasterFrac >= 0 {
		w.byDC = make([][]int, topology.NumDCs)
		w.masterOf = make([]topology.DC, opts.Items)
		masterOf := opts.MasterDC
		if masterOf == nil {
			masterOf = defaultMaster
		}
		for i := 0; i < opts.Items; i++ {
			dc := masterOf(ItemKey(i))
			w.byDC[dc] = append(w.byDC[dc], i)
			w.masterOf[i] = dc
		}
	}
	return w
}

// defaultMaster mirrors core.DefaultMasterDC without importing core
// (avoids a dependency cycle through bench).
func defaultMaster(key record.Key) topology.DC {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return topology.DC(int(h % uint32(topology.NumDCs)))
}

// ItemKey names item i.
func ItemKey(i int) record.Key {
	return record.Key(fmt.Sprintf("item/%06d", i))
}

// Name implements bench.Workload.
func (w *Workload) Name() string { return "microbench" }

// Preload implements bench.Workload.
func (w *Workload) Preload(rng *rand.Rand) []kv.Entry {
	entries := make([]kv.Entry, 0, w.opts.Items)
	span := w.opts.InitialStockMax - w.opts.InitialStockMin + 1
	for i := 0; i < w.opts.Items; i++ {
		stock := w.opts.InitialStockMin + rng.Int63n(span)
		entries = append(entries, kv.Entry{
			Key:     ItemKey(i),
			Value:   record.Value{Attrs: map[string]int64{StockAttr: stock}},
			Version: 1,
		})
	}
	return entries
}

// pickItem selects one item index honoring the hot-spot setting.
func (w *Workload) pickItem(rng *rand.Rand) int {
	n := w.opts.Items
	if w.opts.HotspotFrac > 0 && w.opts.HotspotFrac < 1 {
		hot := int(float64(n) * w.opts.HotspotFrac)
		if hot < 1 {
			hot = 1
		}
		if rng.Float64() < w.opts.HotProb {
			return rng.Intn(hot)
		}
		return hot + rng.Intn(n-hot)
	}
	return rng.Intn(n)
}

// pickItemLocality selects an item with a local (or explicitly
// remote) master.
func (w *Workload) pickItemLocality(rng *rand.Rand, dc topology.DC, local bool) int {
	if local {
		own := w.byDC[dc]
		if len(own) > 0 {
			return own[rng.Intn(len(own))]
		}
	}
	// Remote: draw until the master is elsewhere (≈4/5 of draws hit).
	for {
		i := rng.Intn(w.opts.Items)
		if w.masterOf[i] != dc {
			return i
		}
	}
}

// basket draws the transaction's distinct items.
func (w *Workload) basket(rng *rand.Rand, dc topology.DC) []int {
	k := w.opts.ItemsPerTxn
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	useLocality := w.opts.LocalMasterFrac >= 0
	local := useLocality && rng.Float64() < w.opts.LocalMasterFrac
	for len(out) < k {
		var i int
		if useLocality {
			i = w.pickItemLocality(rng, dc, local)
		} else {
			i = w.pickItem(rng)
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// Next implements bench.Workload: the buy transaction.
func (w *Workload) Next(client int, dc topology.DC, rng *rand.Rand) mtx.Txn {
	items := w.basket(rng, dc)
	amounts := make([]int64, len(items))
	for i := range amounts {
		amounts[i] = 1 + rng.Int63n(int64(w.opts.MaxDecrement))
	}
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		if mtx.Commutative(c) {
			// Native commutative decrements (MDCC, QW, 2PC).
			updates := make([]record.Update, 0, len(items))
			for i, it := range items {
				updates = append(updates, record.Commutative(ItemKey(it),
					map[string]int64{StockAttr: -amounts[i]}))
			}
			c.Commit(updates, func(ok bool) {
				done(mtx.TxnResult{Committed: ok, Write: true})
			})
			return
		}
		// Read-modify-write for protocols without commutative support
		// (Fast, Multi, Megastore*): read all items, then write
		// absolute values validated against the read versions.
		reads := make([]struct {
			val record.Value
			ver record.Version
			ok  bool
		}, len(items))
		remaining := len(items)
		for i, it := range items {
			i, it := i, it
			c.Read(ItemKey(it), func(val record.Value, ver record.Version, ok bool) {
				reads[i].val, reads[i].ver, reads[i].ok = val, ver, ok
				remaining--
				if remaining > 0 {
					return
				}
				updates := make([]record.Update, 0, len(items))
				for j, jt := range items {
					r := reads[j]
					if !r.ok || r.val.Attr(StockAttr) < amounts[j] {
						// Out of stock (or unreadable): the buy aborts.
						done(mtx.TxnResult{Committed: false, Write: true})
						return
					}
					updates = append(updates, record.Physical(ItemKey(jt), r.ver,
						r.val.WithAttr(StockAttr, r.val.Attr(StockAttr)-amounts[j])))
				}
				c.Commit(updates, func(ok bool) {
					done(mtx.TxnResult{Committed: ok, Write: true})
				})
			})
		}
	}
}
