// Package simnet is a deterministic discrete-event network simulator
// implementing transport.Network on a virtual clock. It stands in for
// the paper's five-data-center EC2 deployment (netem-style WAN
// emulation): messages experience a configurable one-way latency
// matrix with seeded jitter, nodes process messages serially with a
// per-message service time (so queueing effects emerge naturally),
// and whole nodes or data centers can be failed and recovered at
// chosen virtual times.
//
// Concurrency contract: the simulator is single-threaded. Everything
// — handlers, timer callbacks, workload logic — runs on the event
// loop via Run*/Step. Calling Send/After from inside handlers is the
// intended usage; calling them from other goroutines while the loop
// runs is a data race.
//
// Scale: the event queue is sharded per node (see engine.go) so a
// thousand-node cluster pays O(log N_nodes) per push/pop instead of
// O(log E_total) on one global heap, and per-node state (service
// slot, drift, incarnation epoch) lives on a node struct instead of
// global maps. Both engines replay the exact same event order for a
// seed — Options.Engine selects the legacy global heap for
// differential tests and benchmarks.
package simnet

import (
	"math/rand"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/transport"
)

// Options configures a simulated network.
type Options struct {
	// Latency returns the base one-way delay between nodes
	// (typically topology.Cluster.Latency()). Nil means 1ms uniform.
	Latency transport.LatencyFunc
	// JitterFrac adds ±frac multiplicative uniform jitter to each
	// message's latency (paper-world WAN variance). 0 disables.
	JitterFrac float64
	// ServiceTime is how long a node is busy per handled message
	// (models storage-node CPU; creates queueing under load).
	ServiceTime time.Duration
	// DropProb uniformly drops messages (0 disables).
	DropProb float64
	// DupProb delivers a message a second time after an extra
	// ReorderWindow-bounded delay (0 disables). Models retransmitting
	// WANs; protocols must stay idempotent.
	DupProb float64
	// ReorderProb holds a message back by a uniform extra delay in
	// (0, ReorderWindow], letting later sends overtake it (0 disables).
	ReorderProb float64
	// ReorderWindow bounds the extra delay of duplicated and reordered
	// deliveries. Zero means 50ms.
	ReorderWindow time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Start is the virtual epoch; zero means Unix epoch.
	Start time.Time
	// OnDeliver, when set, observes every delivered envelope (after
	// drop/partition filtering, before the handler runs). Pure
	// observation for benchmarks that meter wire costs (e.g. gob
	// sizes per message type); it must not mutate the envelope or
	// touch the simulator.
	OnDeliver func(e transport.Envelope)
	// Engine selects the event-queue implementation: "sharded" (the
	// default — per-node queues under a small top-level heap) or
	// "heap" (the legacy single global heap). Both produce bit-exact
	// identical schedules for a seed; "heap" exists as the
	// differential-testing oracle and the benchmark baseline.
	Engine string
}

// Stats counts network-level events.
type Stats struct {
	Delivered int64
	Dropped   int64 // total of the three drop causes below
	// DroppedProb counts uniform DropProb losses, DroppedEndpoint
	// drops at failed/crashed/unregistered endpoints, and
	// DroppedPartition drops on partitioned links — kept separate so
	// chaos tests can assert on the cause, not just the count.
	DroppedProb      int64
	DroppedEndpoint  int64
	DroppedPartition int64
	Duplicated       int64
	Reordered        int64
	Timers           int64
}

// linkKey identifies one directed link.
type linkKey struct{ from, to transport.NodeID }

// simNode is the per-node simulator state: incarnation epoch, failure
// flags, the service-time slot, clock drift, delivery counters, and
// (under the sharded engine) the node's own event queue. One struct
// replaces what used to be six global maps, and churned-out nodes are
// reaped wholesale once nothing references them (see maybeReap).
type simNode struct {
	id      transport.NodeID
	handler transport.Handler
	// epoch pins queued events to an incarnation; Crash bumps it.
	epoch  int64
	failed bool
	// crashed marks a dead incarnation whose state may be reaped once
	// its queue drains; Register (a restart) clears it.
	crashed bool
	// Service-time slot: the node is busy until freeAtN.
	hasFree bool
	freeAtN int64
	// Clock drift (SetDrift); a drifting node is never reaped so the
	// skew survives crash/restart cycles like the old global map did.
	hasDrift bool
	drift    float64
	// delivered counts envelopes handled by this incarnation chain
	// (folded into deadDelivered on reap).
	delivered int64
	// pending counts events queued for this node across the whole
	// engine — including cancelled timers not yet popped. The struct
	// may only be reaped at zero: queued events hold closures over it.
	pending int
	// q / run / ready belong to the sharded engine: q is the node's
	// future-heap ordered by (atN, seq); run is the ready queue —
	// events already blocked behind the service slot, ordered by seq
	// alone because they all run at freeAtN; ready is the index of the
	// node's entry in the engine's top-level heap (-1 when both are
	// empty).
	q     []nodeEvent
	run   []nodeEvent
	ready int
}

// Net is the simulated network.
type Net struct {
	opts Options
	// Virtual time is kept as nanoseconds since opts.Start (nowN);
	// now caches the equivalent time.Time for Now() callers.
	nowN     int64
	now      time.Time
	serviceN int64
	eng      engine
	seq      int64
	nodes    map[transport.NodeID]*simNode
	// deadFailed / deadDelivered preserve the only observable bits of
	// a reaped node (Failed() and DeliveredTo()) so reaping is
	// invisible to the schedule. Both are bounded by the id catalogue,
	// not by churn count.
	deadFailed    map[transport.NodeID]bool
	deadDelivered map[transport.NodeID]int64
	blocked       map[linkKey]int // refcount: overlapping cuts may share links
	linkLat       map[linkKey]time.Duration
	latScale      float64
	rng           *rand.Rand
	stats         Stats
	stopped       bool
	// free is the event freelist: the steady-state message path
	// recycles event structs instead of allocating per send.
	free []*event
}

func (n *Net) newEvent() *event {
	if k := len(n.free); k > 0 {
		e := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return e
	}
	return &event{}
}

func (n *Net) recycle(e *event) {
	*e = event{}
	n.free = append(n.free, e)
}

// event is one queued occurrence. Events are pooled (Net.free): the
// delivery path allocates nothing per message, which matters as much
// as queue asymptotics at thousand-node scale. Exactly one of
// run/timerF/env is meaningful, keyed off msg and timerF.
type event struct {
	// atN is the scheduled virtual time in nanoseconds since
	// opts.Start. For a ready event on a busy node atN is normalized
	// to the node's free instant — by the legacy engine's physical
	// clamp when the event pops early, by the sharded engine at peek —
	// so by the time the step loop sees a peeked head, atN is always
	// the event's run time.
	atN  int64
	seq  int64
	node *simNode // nil for scheduler-level events (At)
	// run is the scheduler-level callback (At events).
	run func()
	// timerF is the timer callback (After events).
	timerF func()
	// env is the message being delivered (msg events).
	env transport.Envelope
	// cancel is non-nil for timers.
	cancel *bool
	// serialize: message/timer events occupy the node's service
	// slot; pure scheduler events (failures) do not.
	serialize bool
	// epoch pins the event to the target node's incarnation; Crash
	// bumps the incarnation so everything queued for the old process
	// (in-flight deliveries, its timers) silently dies with it.
	epoch int64
	// msg marks message deliveries (for drop accounting when an
	// incarnation dies with deliveries queued).
	msg bool
}

// New builds a simulated network.
func New(opts Options) *Net {
	if opts.Latency == nil {
		opts.Latency = func(from, to transport.NodeID) time.Duration { return time.Millisecond }
	}
	if opts.Start.IsZero() {
		opts.Start = time.Unix(0, 0)
	}
	if opts.ReorderWindow <= 0 {
		opts.ReorderWindow = 50 * time.Millisecond
	}
	n := &Net{
		opts:          opts,
		now:           opts.Start,
		serviceN:      int64(opts.ServiceTime),
		nodes:         make(map[transport.NodeID]*simNode),
		deadFailed:    make(map[transport.NodeID]bool),
		deadDelivered: make(map[transport.NodeID]int64),
		blocked:       make(map[linkKey]int),
		linkLat:       make(map[linkKey]time.Duration),
		latScale:      1,
		rng:           rand.New(rand.NewSource(opts.Seed)),
	}
	switch opts.Engine {
	case "", "sharded":
		n.eng = newShardedEngine(n.serviceN)
	case "heap":
		n.eng = newHeapEngine()
	default:
		panic("simnet: unknown engine " + opts.Engine)
	}
	return n
}

// nodeFor returns the state struct for id, creating it on first
// reference. Recreation after a reap restores the preserved failed
// bit so the reap is invisible.
func (n *Net) nodeFor(id transport.NodeID) *simNode {
	nd := n.nodes[id]
	if nd == nil {
		nd = &simNode{id: id, ready: -1}
		if n.deadFailed[id] {
			nd.failed = true
			delete(n.deadFailed, id)
		}
		n.nodes[id] = nd
	}
	return nd
}

// maybeReap frees a dead incarnation's state once nothing can touch
// it again: the node crashed, its queue fully drained (pending spans
// in-flight deliveries, its timers, and cancelled-but-queued timers),
// and no drift override pins it. The observable remnants — Failed()
// and DeliveredTo() — move to bounded side maps; everything else
// (epoch, handler, service slot) is unreachable once the queue is
// empty, because only queued events compare epochs or occupy the
// slot. A restart (Register) simply recreates the struct.
func (n *Net) maybeReap(nd *simNode) {
	if nd == nil || !nd.crashed || nd.pending != 0 || nd.hasDrift {
		return
	}
	if nd.failed {
		n.deadFailed[nd.id] = true
	}
	if nd.delivered != 0 {
		n.deadDelivered[nd.id] += nd.delivered
	}
	delete(n.nodes, nd.id)
}

// NodeStates reports how many per-node state structs are live — the
// churn scenarios assert this stays flat while nodes join and leave.
func (n *Net) NodeStates() int { return len(n.nodes) }

// Register installs a node handler. Registering is also how a
// restarted incarnation comes back after Crash.
func (n *Net) Register(id transport.NodeID, h transport.Handler) {
	nd := n.nodeFor(id)
	nd.handler = h
	nd.crashed = false
}

// Rand exposes the simulator's seeded RNG so workloads share the
// deterministic stream.
func (n *Net) Rand() *rand.Rand { return n.rng }

// Now returns current virtual time.
func (n *Net) Now() time.Time { return n.now }

func (n *Net) setNow(atN int64) {
	n.nowN = atN
	n.now = n.opts.Start.Add(time.Duration(atN))
}

// Stats returns delivery counters.
func (n *Net) Stats() Stats { return n.stats }

func (n *Net) isFailed(id transport.NodeID) bool {
	if nd := n.nodes[id]; nd != nil {
		return nd.failed
	}
	return n.deadFailed[id]
}

// Send schedules delivery of msg after matrix latency + jitter.
// Messages from or to failed nodes are dropped; so are random drops,
// and messages crossing a partitioned link.
func (n *Net) Send(from, to transport.NodeID, msg transport.Message) {
	if n.isFailed(from) {
		n.dropEndpoint()
		return
	}
	if len(n.blocked) > 0 && n.blocked[linkKey{from, to}] > 0 {
		n.stats.Dropped++
		n.stats.DroppedPartition++
		return
	}
	var d time.Duration
	if len(n.linkLat) > 0 {
		var ok bool
		if d, ok = n.linkLat[linkKey{from, to}]; !ok {
			d = n.opts.Latency(from, to)
		}
	} else {
		d = n.opts.Latency(from, to)
	}
	if n.latScale != 1 {
		d = time.Duration(float64(d) * n.latScale)
	}
	if n.opts.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + n.opts.JitterFrac*(2*n.rng.Float64()-1)))
	}
	if n.opts.DropProb > 0 && n.rng.Float64() < n.opts.DropProb {
		n.stats.Dropped++
		n.stats.DroppedProb++
		return
	}
	if n.opts.ReorderProb > 0 && n.rng.Float64() < n.opts.ReorderProb {
		n.stats.Reordered++
		d += time.Duration(n.rng.Int63n(int64(n.opts.ReorderWindow))) + 1
	}
	n.deliverAfter(from, to, msg, d)
	if n.opts.DupProb > 0 && n.rng.Float64() < n.opts.DupProb {
		n.stats.Duplicated++
		extra := time.Duration(n.rng.Int63n(int64(n.opts.ReorderWindow))) + 1
		n.deliverAfter(from, to, msg, d+extra)
	}
}

func (n *Net) dropEndpoint() {
	n.stats.Dropped++
	n.stats.DroppedEndpoint++
}

func (n *Net) deliverAfter(from, to transport.NodeID, msg transport.Message, d time.Duration) {
	nd := n.nodeFor(to)
	e := n.newEvent()
	e.atN = n.nowN + int64(d)
	e.node = nd
	e.serialize = true
	e.epoch = nd.epoch
	e.msg = true
	e.env = transport.Envelope{From: from, To: to, Msg: msg}
	n.push(e)
}

// deliver runs a message event: the delivery-time endpoint checks,
// counters, and the handler call.
func (n *Net) deliver(e *event) {
	nd := e.node
	if nd.failed {
		n.dropEndpoint()
		return
	}
	if nd.handler == nil {
		n.dropEndpoint()
		return
	}
	n.stats.Delivered++
	nd.delivered++
	if n.opts.OnDeliver != nil {
		n.opts.OnDeliver(e.env)
	}
	nd.handler(e.env)
}

// DeliveredTo returns how many messages were delivered to one node —
// the physical envelope count, so a batch envelope counts once
// (benchmarks use this to measure per-acceptor message load).
func (n *Net) DeliveredTo(id transport.NodeID) int64 {
	total := n.deadDelivered[id]
	if nd := n.nodes[id]; nd != nil {
		total += nd.delivered
	}
	return total
}

// After schedules f on node `on` after d of virtual time, serialized
// with its handler. Timers keep firing on failed nodes: Fail models a
// network partition (the paper's outage "prevented the data center
// from receiving any messages"), not a crash — the isolated node's
// local processing continues but everything it sends is dropped.
func (n *Net) After(on transport.NodeID, d time.Duration, f func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	nd := n.nodeFor(on)
	if nd.hasDrift {
		d = time.Duration(float64(d) * (1 + nd.drift))
		if d < 0 {
			d = 0
		}
	}
	cancelled := false
	e := n.newEvent()
	e.atN = n.nowN + int64(d)
	e.node = nd
	e.cancel = &cancelled
	e.serialize = true
	e.epoch = nd.epoch
	e.timerF = f
	n.push(e)
	return simTimer{&cancelled}
}

type simTimer struct{ cancelled *bool }

func (t simTimer) Stop() bool {
	if *t.cancelled {
		return false
	}
	*t.cancelled = true
	return true
}

// At schedules a scheduler-level callback (failure injection, workload
// phase changes) at an absolute offset from the epoch, not serialized
// with any node.
func (n *Net) At(offset time.Duration, f func()) {
	atN := int64(offset)
	if atN < n.nowN {
		atN = n.nowN
	}
	e := n.newEvent()
	e.atN = atN
	e.run = f
	n.push(e)
}

// Fail makes a node unreachable: messages from and to it are dropped
// and its timers are suppressed until Recover.
func (n *Net) Fail(id transport.NodeID) { n.nodeFor(id).failed = true }

// Recover brings a failed node back (its state is whatever it was;
// storage recovery is the protocol's job).
func (n *Net) Recover(id transport.NodeID) {
	if nd := n.nodes[id]; nd != nil {
		nd.failed = false
	}
	delete(n.deadFailed, id)
}

// Failed reports whether a node is currently failed.
func (n *Net) Failed(id transport.NodeID) bool { return n.isFailed(id) }

// Crash kills a node's process: unlike Fail (a partition — the node
// keeps computing), Crash discards every queued event bound to the
// node, in-flight deliveries and its own timers alike, by bumping the
// node's incarnation. The node stays unreachable until Recover; a
// restarted incarnation must Register a fresh handler and re-arm its
// own timers (internal/core's restart hooks do both).
func (n *Net) Crash(id transport.NodeID) {
	nd := n.nodeFor(id)
	nd.epoch++
	nd.failed = true
	nd.crashed = true
	n.maybeReap(nd)
}

// Partition cuts every link between the two node sets, both
// directions (the paper's data-center outage "prevented the data
// center from receiving any messages"). Nodes keep running; messages
// crossing the cut are dropped and counted as DroppedPartition.
// Links are reference-counted, so overlapping cuts compose: a link
// stays blocked until every cut covering it is healed.
func (n *Net) Partition(a, b []transport.NodeID) {
	for _, x := range a {
		for _, y := range b {
			n.blocked[linkKey{x, y}]++
			n.blocked[linkKey{y, x}]++
		}
	}
}

// Heal removes one cut between two node sets installed by Partition;
// links still covered by another overlapping cut remain blocked.
func (n *Net) Heal(a, b []transport.NodeID) {
	unblock := func(k linkKey) {
		if c := n.blocked[k]; c > 1 {
			n.blocked[k] = c - 1
		} else {
			delete(n.blocked, k)
		}
	}
	for _, x := range a {
		for _, y := range b {
			unblock(linkKey{x, y})
			unblock(linkKey{y, x})
		}
	}
}

// HealAll removes every partition.
func (n *Net) HealAll() { n.blocked = make(map[linkKey]int) }

// SetLinkLatency overrides the base one-way latency of one directed
// link (latency spikes, asymmetric degradation). A non-positive d
// clears the override.
func (n *Net) SetLinkLatency(from, to transport.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.linkLat, linkKey{from, to})
		return
	}
	n.linkLat[linkKey{from, to}] = d
}

// ScaleLatency multiplies every link's base latency by f (a global
// WAN brown-out when f > 1). f <= 0 resets to 1.
func (n *Net) ScaleLatency(f float64) {
	if f <= 0 {
		f = 1
	}
	n.latScale = f
}

// SetDrift skews a node's local clock rate: its timers fire after
// d·(1+frac) instead of d (frac -0.5 halves every timeout, +1 doubles
// them). Only timers armed after the call are affected.
func (n *Net) SetDrift(id transport.NodeID, frac float64) {
	if frac == 0 {
		if nd := n.nodes[id]; nd != nil {
			nd.hasDrift = false
			nd.drift = 0
			n.maybeReap(nd)
		}
		return
	}
	nd := n.nodeFor(id)
	nd.hasDrift = true
	nd.drift = frac
}

// SetDropProb replaces the uniform drop probability at runtime
// (nemesis schedules ramp chaos up and down mid-run).
func (n *Net) SetDropProb(p float64) { n.opts.DropProb = p }

// SetDupProb replaces the duplication probability at runtime.
func (n *Net) SetDupProb(p float64) { n.opts.DupProb = p }

// SetReorder replaces the reorder probability (and window, when
// w > 0) at runtime.
func (n *Net) SetReorder(p float64, w time.Duration) {
	n.opts.ReorderProb = p
	if w > 0 {
		n.opts.ReorderWindow = w
	}
}

// Stop makes the current Run call return after the in-flight event.
func (n *Net) Stop() { n.stopped = true }

func (n *Net) push(e *event) {
	e.seq = n.seq
	n.seq++
	if e.node != nil {
		e.node.pending++
	}
	n.eng.insert(e)
}

// step outcomes: ran one event, next runnable lies past the limit, or
// the queue is empty.
const (
	stepRan = iota
	stepBlocked
	stepEmpty
)

// step executes the next event whose run time is ≤ limitN. Cancelled
// timers and events addressed to crashed incarnations are discarded
// as they surface regardless of the limit — discards are invisible to
// the schedule. Service-time serialization: a busy node's events run
// at the node's free instant, in seq order among those that were due
// — the legacy engine realizes that by physically re-keying the
// popped head (rekeyHead), the sharded engine by parking them in a
// per-node run queue that never re-enters the global ordering. Both
// produce the identical executed schedule (TestEngineEquivalence).
func (n *Net) step(limitN int64) int {
	for {
		e := n.eng.peek()
		if e == nil {
			return stepEmpty
		}
		nd := e.node
		if e.cancel != nil && *e.cancel {
			n.eng.popHead()
			nd.pending--
			n.recycle(e)
			n.maybeReap(nd)
			continue
		}
		if nd != nil && e.epoch != nd.epoch {
			// Addressed to a crashed incarnation.
			n.eng.popHead()
			nd.pending--
			if e.msg {
				n.dropEndpoint()
			}
			n.recycle(e)
			n.maybeReap(nd)
			continue
		}
		if e.serialize && n.serviceN > 0 && nd.hasFree && nd.freeAtN > e.atN {
			// Legacy-engine busy clamp (the sharded engine normalizes
			// run times at peek, so this branch never fires for it).
			e.atN = nd.freeAtN
			n.eng.rekeyHead(e)
			continue
		}
		if e.atN > limitN {
			return stepBlocked
		}
		n.eng.popHead()
		if nd != nil {
			nd.pending--
		}
		if e.atN > n.nowN {
			n.setNow(e.atN)
		}
		if e.serialize && n.serviceN > 0 {
			nd.hasFree = true
			nd.freeAtN = n.nowN + n.serviceN
			n.eng.nodeRan(nd)
		}
		switch {
		case e.msg:
			n.deliver(e)
		case e.timerF != nil:
			n.stats.Timers++
			e.timerF()
		default:
			e.run()
		}
		n.recycle(e)
		n.maybeReap(nd)
		return stepRan
	}
}

// Step executes the next event; it reports false when no events
// remain.
func (n *Net) Step() bool {
	return n.step(1<<63-1) == stepRan
}

// RunFor processes events until `d` of virtual time has elapsed from
// the current instant (or the event queue drains, or Stop is called).
// An event is executed iff its run time is within the window: a
// deadline never truncates the schedule, it only slices it.
func (n *Net) RunFor(d time.Duration) {
	deadlineN := n.nowN + int64(d)
	n.stopped = false
	for !n.stopped && n.step(deadlineN) == stepRan {
	}
	if n.nowN < deadlineN {
		n.setNow(deadlineN)
	}
}

// Run processes events until the queue drains or Stop is called.
func (n *Net) Run() {
	n.stopped = false
	for !n.stopped && n.Step() {
	}
}

// RunUntil steps until cond() is true, giving up after maxVirtual.
// It reports whether the condition was met.
func (n *Net) RunUntil(cond func() bool, maxVirtual time.Duration) bool {
	deadlineN := n.nowN + int64(maxVirtual)
	n.stopped = false
	for !n.stopped {
		if cond() {
			return true
		}
		switch n.step(deadlineN) {
		case stepBlocked:
			return false
		case stepEmpty:
			return cond()
		}
	}
	return cond()
}
