package core

import (
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// ---- Client/coordinator ⇄ storage node messages ----

// MsgRead asks a replica for its committed state of a key (read
// committed: pending options are never visible).
type MsgRead struct {
	ReqID uint64
	Key   record.Key
}

// MsgReadReply answers MsgRead.
type MsgReadReply struct {
	ReqID   uint64
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
	// Escrow piggybacks the replica's demarcation state for the key
	// (set when constraints are configured), bootstrapping gateway
	// headroom accounts without a second read.
	Escrow EscrowSnap
}

// MsgProposeFast proposes an option directly to an acceptor in a fast
// ballot (master-bypassing path, §3.3).
type MsgProposeFast struct {
	Opt Option
}

// MsgVote is an acceptor's Phase2b to the coordinator-as-learner for
// the fast path: its decision on one option.
type MsgVote struct {
	OptID    OptionID
	Ballot   paxos.Ballot
	Decision Decision
	// Reason refines reject decisions with a typed cause (e.g. the
	// kind-disjoint rule), surfaced to the application through the
	// coordinator.
	Reason RejectReason
	// Forwarded reports the acceptor forwarded the proposal to the
	// record's leader instead of voting (record in a classic window);
	// Decision is DecUnknown then and the leader will answer with
	// MsgLearned.
	Forwarded bool
	Leader    transport.NodeID
	// WrongGroup reports the node refused to act because its replica
	// group no longer owns the key under the published shard ring (the
	// proposal followed a route minted before a shard move). Decision
	// is DecUnknown; the coordinator drops its stale leader hint and
	// re-dispatches under the current ring.
	WrongGroup bool
	// Escrow piggybacks the acceptor's demarcation inputs for the
	// voted record (set for commutative options under constraints), so
	// learners — and through them the gateway tier — track true
	// escrow headroom instead of estimating it from stale reads.
	Escrow EscrowSnap
}

// AttrEscrow is an acceptor's escrow snapshot for one constrained
// attribute of one record: the committed base value plus the
// worst-case pending movement of its unresolved accepted votes
// (exactly the inputs of the quorum-demarcation check, §3.4.2).
type AttrEscrow struct {
	Attr     string
	Base     int64
	PendDown int64 // sum of accepted pending decrements (<= 0)
	PendUp   int64 // sum of accepted pending increments (>= 0)
}

// EscrowSnap is the demarcation state an acceptor piggybacks on
// Phase2b votes and read replies. Version is the committed record
// version the snapshot was taken at, so consumers can order snapshots
// from different acceptors without extra coordination.
type EscrowSnap struct {
	Valid   bool
	Version record.Version
	Attrs   []AttrEscrow
	// Contenders counts the distinct gateway groups (coordinator-id
	// prefixes, see GatewayGroup) holding pending accepted commutative
	// votes on the record when the snapshot was taken — the live
	// contention signal gateways use to adapt their headroom-share
	// divisor (0 = nobody pending, which an admitting gateway reads as
	// "just me").
	Contenders int
}

// MsgLearned tells the coordinator an option's final decision
// (from the leader on classic paths and recoveries).
type MsgLearned struct {
	OptID    OptionID
	Decision Decision
	// Reason refines reject decisions (see MsgVote.Reason).
	Reason RejectReason
	// Escrow piggybacks the leader replica's demarcation state for the
	// decided record (set for commutative options under constraints).
	// Classic-path decisions never produce fast-path votes, so without
	// this the gateway tier's headroom accounts would starve on
	// classic-heavy workloads (every record in a γ window).
	Escrow EscrowSnap
}

// MsgVisibility is the coordinator's (or recovery node's) "Learned/
// execute the option" notification (§3.2.1): commit makes the update
// visible, abort discards the option. Opt carries the full option so
// replicas that never saw the proposal can still apply it.
type MsgVisibility struct {
	Opt    Option
	Commit bool
}

// ---- Batched variants (the paper's §7 batching optimization) ----

// MsgProposeBatch carries every option a transaction proposes to one
// storage node in a single message (different records of the
// write-set often share replicas).
type MsgProposeBatch struct {
	Opts []Option
}

// MsgVoteBatch answers a propose batch with one vote per option.
type MsgVoteBatch struct {
	Votes []MsgVote
}

// MsgVisibilityBatch delivers a transaction's visibility for all its
// options on one node at once.
type MsgVisibilityBatch struct {
	Items []MsgVisibility
}

// ---- Coordinator/acceptor ⇄ leader messages ----

// MsgProposeLeader routes an option through the record's master for
// classic ballots (Multi mode, or fast proposals made during a
// classic window and forwarded by acceptors).
type MsgProposeLeader struct {
	Opt Option
}

// MsgStartRecovery asks a leader to run collision/timeout recovery
// for a record. Opt carries the stuck option (if the requester has
// it) so it cannot be lost even if every acceptor dropped it.
type MsgStartRecovery struct {
	Key    record.Key
	Opt    Option
	HasOpt bool
}

// ---- Paxos phase messages (leader ⇄ acceptors) ----

// MsgPhase1a opens a classic ballot for one record.
type MsgPhase1a struct {
	Key    record.Key
	Ballot paxos.Ballot
}

// MsgPhase1b is an acceptor's promise plus everything the leader
// needs to choose safely: its accepted ballot and votes, its
// committed state, and the record's lineage summary — the exact set
// of options whose outcomes its base reflects, replacing the old
// retention-windowed decided list (and its contents) on the wire.
type MsgPhase1b struct {
	Key     record.Key
	Ballot  paxos.Ballot // the promised ballot (echo of Phase1a)
	Bal     paxos.Ballot // ballot of the reported votes
	Votes   []VotedOption
	Version record.Version
	Value   record.Value
	Exists  bool
	Lineage LineageSummary
	// LegacyDecided is populated only under Config.ShipFullLineage —
	// the pre-summary wire format, kept as a measurable ablation
	// baseline for the lineage-bytes benchmark. Consumers ignore it.
	LegacyDecided []DecidedOption `json:",omitempty"`
}

// DecidedOption is the pre-summary wire form of one known final
// decision (contents attached for commutative accepts so the old
// merge path could graft them). It survives only as the
// ShipFullLineage ablation payload; the protocol itself now ships
// LineageSummaries and never needs contents to cross replicas (each
// replica grafts only its own retained applies — see
// StorageNode.adoptBase and decidedLog).
type DecidedOption struct {
	ID       OptionID
	Decision Decision
	Opt      Option
	HasOpt   bool
}

// MsgPhase2a proposes the leader's cstruct (votes with decisions) in
// a classic ballot. Seq identifies this proposal for acknowledgement
// counting. When HasBase is set, acceptors behind BaseVersion adopt
// the leader's committed base (this is also how a classic round
// "writes a new base value" for demarcation, §3.4.2). BaseLineage is
// the summary of options the base already contains, so an adopting
// replica neither re-applies them when their (still in flight)
// visibility notifications arrive later nor loses its own applies the
// base is missing.
type MsgPhase2a struct {
	Key         record.Key
	Ballot      paxos.Ballot
	Seq         uint64
	CStruct     []VotedOption
	HasBase     bool
	BaseVersion record.Version
	BaseValue   record.Value
	BaseExists  bool
	BaseLineage LineageSummary
	// LegacyDecided: see MsgPhase1b.LegacyDecided.
	LegacyDecided []DecidedOption `json:",omitempty"`
}

// MsgPhase2b acknowledges a Phase2a proposal (or reports a higher
// promised ballot, sending the leader back to Phase 1).
type MsgPhase2b struct {
	Key      record.Key
	Ballot   paxos.Ballot
	Seq      uint64
	OK       bool
	Promised paxos.Ballot // set when OK is false
}

// MsgEnableFast re-opens fast ballots after γ classic instances
// (the fast-policy probe, §3.3.2).
type MsgEnableFast struct {
	Key    record.Key
	Ballot paxos.Ballot // a fast ballot outranking the classic one
}

// ---- Dangling-transaction recovery (§3.2.3) ----

// MsgRecoverOpt asks the leader of one key to force a decision for a
// transaction's option on that key (used by the pending-option sweep
// when an app-server died before sending visibility). KeySeq is the
// queried option's lineage identity (from the stuck sibling's
// WriteSeqs), letting the leader answer exactly from its summary even
// after the decided-log entry was released — without it an
// evicted-but-settled option would be re-forced through a classic
// round and could be fiat-rejected against its true decision.
type MsgRecoverOpt struct {
	ReqID  uint64
	Tx     TxID
	Key    record.Key
	KeySeq uint64
	Opt    Option // the requester's copy, if it has one
	HasOpt bool
}

// MsgOptDecided answers MsgRecoverOpt with the final decision and,
// when accepted, the option contents needed to apply visibility.
type MsgOptDecided struct {
	ReqID    uint64
	Tx       TxID
	Key      record.Key
	Decision Decision
	Opt      Option
	HasOpt   bool
}

func init() {
	transport.RegisterMessage(MsgRead{})
	transport.RegisterMessage(MsgReadReply{})
	transport.RegisterMessage(MsgProposeFast{})
	transport.RegisterMessage(MsgProposeBatch{})
	transport.RegisterMessage(MsgVote{})
	transport.RegisterMessage(MsgVoteBatch{})
	transport.RegisterMessage(MsgVisibilityBatch{})
	transport.RegisterMessage(MsgLearned{})
	transport.RegisterMessage(MsgVisibility{})
	transport.RegisterMessage(MsgProposeLeader{})
	transport.RegisterMessage(MsgStartRecovery{})
	transport.RegisterMessage(MsgPhase1a{})
	transport.RegisterMessage(MsgPhase1b{})
	transport.RegisterMessage(MsgPhase2a{})
	transport.RegisterMessage(MsgPhase2b{})
	transport.RegisterMessage(MsgEnableFast{})
	transport.RegisterMessage(MsgRecoverOpt{})
	transport.RegisterMessage(MsgOptDecided{})
}
