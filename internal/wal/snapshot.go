package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint snapshots. A snapshot is one opaque payload (the caller's
// serialized full state plus the log cuts it covers) written as a
// single CRC-framed record in its own file, snap-%08d.snap, numbered
// by a monotone sequence. Writes are atomic — tmp file, fsync, rename,
// directory fsync — so a crash mid-checkpoint can never leave a torn
// file under the final name; a snapshot that fails its CRC anyway
// (bit rot, injected corruption) is reported as ErrCorrupt and callers
// fall back to the previous sequence number. Keeping the last two
// snapshots plus the log tail since the older one is what makes that
// fallback always sound.

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func snapName(seq int) string {
	return fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix)
}

// SnapshotPath returns the file path of snapshot seq in dir (for
// harnesses that corrupt snapshots on purpose).
func SnapshotPath(dir string, seq int) string {
	return filepath.Join(dir, snapName(seq))
}

// ListSnapshots returns the snapshot sequence numbers in dir,
// ascending. A missing dir is an empty list.
func ListSnapshots(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix))
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// WriteSnapshot atomically writes payload as snapshot seq in dir.
// noSync skips the fsyncs (harnesses that model durability).
func WriteSnapshot(dir string, seq int, payload []byte, noSync bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapName(seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(hdr[0:4], payload))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: snapshot sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if !noSync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// ReadSnapshot reads and CRC-verifies snapshot seq, returning
// ErrCorrupt (wrapped) on any frame or checksum mismatch.
func ReadSnapshot(dir string, seq int) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: snapshot %d truncated header", ErrCorrupt, seq)
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	want := binary.LittleEndian.Uint32(data[4:8])
	if int(length) != len(data)-headerSize {
		return nil, fmt.Errorf("%w: snapshot %d length mismatch", ErrCorrupt, seq)
	}
	payload := data[headerSize:]
	if frameCRC(data[0:4], payload) != want {
		return nil, fmt.Errorf("%w: snapshot %d bad crc", ErrCorrupt, seq)
	}
	return payload, nil
}

// RemoveSnapshot deletes snapshot seq (used to discard a snapshot
// proven corrupt, so pruning never preserves it over good ones).
func RemoveSnapshot(dir string, seq int) error {
	err := os.Remove(filepath.Join(dir, snapName(seq)))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: snapshot remove: %w", err)
	}
	return nil
}

// PruneSnapshots deletes all but the newest keep snapshots.
func PruneSnapshots(dir string, keep int) error {
	seqs, err := ListSnapshots(dir)
	if err != nil {
		return err
	}
	if keep < 1 {
		keep = 1
	}
	for len(seqs) > keep {
		if err := RemoveSnapshot(dir, seqs[0]); err != nil {
			return err
		}
		seqs = seqs[1:]
	}
	return nil
}
