package mdcc_test

import (
	"fmt"

	"mdcc"
)

// Example shows the basic transaction lifecycle on an in-process
// five-data-center cluster.
func Example() {
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		LatencyScale: 0.002, // compress WAN latencies for the example
		Constraints:  []mdcc.Constraint{mdcc.MinBound("stock", 0)},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	sess := cluster.Session(mdcc.USWest)

	// Insert, then optimistically update.
	ok, _ := sess.Commit(mdcc.Insert("item/1",
		mdcc.Value{Attrs: map[string]int64{"stock": 10}}))
	fmt.Println("insert committed:", ok)

	// Commutative decrement: single round trip, constraint-checked.
	ok, _ = sess.Commit(mdcc.Commutative("item/1", map[string]int64{"stock": -1}))
	fmt.Println("decrement committed:", ok)

	// Output:
	// insert committed: true
	// decrement committed: true
}

// ExampleSession_Transact shows the optimistic read-modify-write
// retry loop.
func ExampleSession_Transact() {
	cluster, _ := mdcc.StartCluster(mdcc.ClusterConfig{LatencyScale: 0.002})
	defer cluster.Close()
	sess := cluster.Session(mdcc.EUIreland)

	sess.Commit(mdcc.Insert("counter", mdcc.Value{Attrs: map[string]int64{"n": 41}}))

	ok, _ := sess.Transact(5, func(tx *mdcc.TxView) error {
		v, ver, _ := tx.Read("counter")
		tx.Write("counter", ver, v.WithAttr("n", v.Attr("n")+1))
		return nil
	})
	fmt.Println("incremented:", ok)
	// Output:
	// incremented: true
}

// ExampleSession_TransactSerializable shows read-set validation
// (the §4.4 serializability extension).
func ExampleSession_TransactSerializable() {
	cluster, _ := mdcc.StartCluster(mdcc.ClusterConfig{LatencyScale: 0.002})
	defer cluster.Close()
	sess := cluster.Session(mdcc.USEast)

	sess.Commit(
		mdcc.Insert("config/max", mdcc.Value{Attrs: map[string]int64{"limit": 100}}),
		mdcc.Insert("usage", mdcc.Value{Attrs: map[string]int64{"n": 0}}),
	)

	// The write to "usage" is guarded by the read of "config/max":
	// if the limit changes concurrently, the transaction aborts.
	ok, _ := sess.TransactSerializable(5, func(tx *mdcc.TxView) error {
		limit, _, _ := tx.Read("config/max")
		usage, ver, _ := tx.Read("usage")
		if usage.Attr("n") < limit.Attr("limit") {
			tx.Write("usage", ver, usage.WithAttr("n", usage.Attr("n")+1))
		}
		return nil
	})
	fmt.Println("committed:", ok)
	// Output:
	// committed: true
}
