// Package wal implements a write-ahead log: an append-only sequence of
// length-prefixed, CRC32-checksummed records in segment files. Storage
// nodes log learned options and executed updates through it so a node
// restart replays to the pre-crash state (the durability role BDB's
// own log plays in the paper's prototype).
//
// Record framing:
//
//	uint32 length | uint32 crc32(payload) | payload bytes
//
// Torn tails (partial final record after a crash) are detected by
// length/CRC mismatch and truncated on open.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	headerSize = 8
	segPrefix  = "wal-"
	segSuffix  = ".seg"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt is returned when a record fails its CRC in the middle of
// a segment (a torn tail is silently truncated instead).
var ErrCorrupt = errors.New("wal: corrupt record")

// Options configures a Log.
type Options struct {
	// SegmentSize is the byte threshold after which appends roll over
	// to a new segment file. Zero means 4 MiB.
	SegmentSize int64
	// NoSync disables fsync after append (used by tests and by the
	// simulator harness where durability is modeled, not real).
	NoSync bool
}

// Log is an append-only segmented log. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	seg     *os.File
	segIdx  int
	segSize int64
	closed  bool
	appends int64
}

// Open opens (creating if necessary) a log in dir and truncates any
// torn tail in the newest segment.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.rollLocked(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	valid, err := validPrefixLen(filepath.Join(dir, segName(last)))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.seg = f
	l.segIdx = last
	l.segSize = valid
	return l, nil
}

// Append writes one record and (unless NoSync) syncs it to disk.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rollLocked(l.segIdx + 1); err != nil {
			return err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.seg.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append header: %w", err)
	}
	if _, err := l.seg.Write(payload); err != nil {
		return fmt.Errorf("wal: append payload: %w", err)
	}
	l.segSize += int64(headerSize + len(payload))
	l.appends++
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Appends returns the number of records appended through this handle.
func (l *Log) Appends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Replay calls fn for every record in log order. It must not be
// called concurrently with Append.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	dir := l.dir
	l.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := replaySegment(filepath.Join(dir, segName(idx)), idx == segs[len(segs)-1], fn); err != nil {
			return err
		}
	}
	return nil
}

// Truncate discards all log contents (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.seg != nil {
		l.seg.Close()
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return l.rollLocked(0)
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.seg == nil {
		return nil
	}
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			l.seg.Close()
			return err
		}
	}
	return l.seg.Close()
}

func (l *Log) rollLocked(idx int) error {
	if l.seg != nil {
		if !l.opts.NoSync {
			if err := l.seg.Sync(); err != nil {
				return fmt.Errorf("wal: roll sync: %w", err)
			}
		}
		l.seg.Close()
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(idx)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: roll: %w", err)
	}
	l.seg = f
	l.segIdx = idx
	l.segSize = 0
	return nil
}

func segName(idx int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix)
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// validPrefixLen scans a segment and returns the byte length of the
// longest valid record prefix.
func validPrefixLen(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var off int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		buf := make([]byte, length)
		if _, err := io.ReadFull(f, buf); err != nil {
			return off, nil // torn payload
		}
		if crc32.ChecksumIEEE(buf) != want {
			return off, nil // corrupt tail
		}
		off += int64(headerSize) + int64(length)
	}
}

// replaySegment streams records of one segment into fn. For the final
// (active) segment a torn tail is tolerated; for older segments any
// corruption is an error.
func replaySegment(path string, tolerateTail bool, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: torn header in %s", ErrCorrupt, path)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		buf := make([]byte, length)
		if _, err := io.ReadFull(f, buf); err != nil {
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: torn payload in %s", ErrCorrupt, path)
		}
		if crc32.ChecksumIEEE(buf) != want {
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: bad crc in %s", ErrCorrupt, path)
		}
		if err := fn(buf); err != nil {
			return err
		}
	}
}
