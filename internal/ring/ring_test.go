package ring

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, 0, n)
	for i := 0; i < n/3; i++ {
		keys = append(keys, fmt.Sprintf("acct/a%d", i))
		keys = append(keys, fmt.Sprintf("stock/hot%d", i))
		keys = append(keys, fmt.Sprintf("item/i%d", i))
	}
	return keys
}

// TestDeterministicPlacement pins the property epoch fencing relies
// on: two independent compilations of the same map (two "nodes"
// holding the same epoch) agree on the owner of every key.
func TestDeterministicPlacement(t *testing.T) {
	m := New([]int{0, 1, 2, 3}, DefaultVPoints)
	a, b := Compile(m), Compile(m.Clone())
	for _, k := range testKeys(3000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("same epoch, different owner for %q: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestOwnersCoverGroups checks placement actually spreads keys over
// every active group with tolerable imbalance at DefaultVPoints.
func TestOwnersCoverGroups(t *testing.T) {
	m := New([]int{0, 1, 2, 3}, DefaultVPoints)
	r := Compile(m)
	counts := map[int]int{}
	keys := testKeys(6000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d of 4 groups: %v", len(counts), counts)
	}
	fair := len(keys) / 4
	for g, c := range counts {
		if c < fair/3 || c > fair*3 {
			t.Errorf("group %d owns %d keys (fair share %d): imbalance too large", g, c, fair)
		}
	}
}

// TestMinimalMovement pins the consistent-hashing contract: adding a
// group re-homes roughly 1/G of the keyspace onto the new group and
// never shuffles a key between two surviving groups; removing it
// restores every key to its old owner.
func TestMinimalMovement(t *testing.T) {
	keys := testKeys(9000)
	for _, groups := range [][]int{{0}, {0, 1}, {0, 1, 2}} {
		before := Compile(New(groups, DefaultVPoints))
		added := len(groups) // next group index
		afterMap := before.Map().WithGroup(added)
		after := Compile(afterMap)

		moved := 0
		for _, k := range keys {
			was, is := before.Owner(k), after.Owner(k)
			if was != is {
				moved++
				if is != added {
					t.Fatalf("group add shuffled %q between survivors: %d -> %d", k, was, is)
				}
			}
		}
		g := len(groups) + 1
		frac := float64(moved) / float64(len(keys))
		want := 1.0 / float64(g)
		if frac < want/3 || frac > want*3 {
			t.Errorf("add group to %v moved %.3f of keys, want ~%.3f", groups, frac, want)
		}

		// Removing the group again restores exactly the old placement.
		restored := Compile(afterMap.WithoutGroup(added))
		for _, k := range keys {
			if restored.Owner(k) != before.Owner(k) {
				t.Fatalf("remove did not restore %q: %d vs %d", k, restored.Owner(k), before.Owner(k))
			}
		}
	}
}

// TestMapGobRoundTrip pins the wire stability of ring epochs: a map
// gob-encoded on one node decodes on another into an identical ring.
func TestMapGobRoundTrip(t *testing.T) {
	m := New([]int{0, 2, 5}, 48).WithGroup(7).WithoutGroup(2)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Map
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Epoch != m.Epoch || got.VPoints != m.VPoints || len(got.Groups) != len(m.Groups) {
		t.Fatalf("round trip changed the map: %+v vs %+v", got, m)
	}
	a, b := Compile(m), Compile(got)
	for _, k := range testKeys(3000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("round-tripped map places %q differently: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestTableInstallAndMoved pins the table lifecycle: stale installs
// are refused, and Moved reports exactly the keys whose owner changed
// at the last publish.
func TestTableInstallAndMoved(t *testing.T) {
	tb := NewTable(New([]int{0}, DefaultVPoints))
	if tb.Epoch() != 1 {
		t.Fatalf("fresh table epoch = %d, want 1", tb.Epoch())
	}
	next := tb.Current().Map().WithGroup(1)
	if tb.Moved("acct/a1") {
		t.Fatal("Moved true before any publish")
	}
	if tb.Install(tb.Current().Map()) {
		t.Fatal("stale install (same epoch) accepted")
	}
	staged := tb.Stage(next)
	if !tb.Install(next) {
		t.Fatal("install of next epoch refused")
	}
	if tb.Epoch() != 2 || tb.Staged() != nil {
		t.Fatalf("post-install epoch=%d staged=%v", tb.Epoch(), tb.Staged())
	}
	movedSome := false
	for _, k := range testKeys(3000) {
		want := staged.Owner(k) != 0 // previous ring owned everything at group 0
		if tb.Moved(k) != want {
			t.Fatalf("Moved(%q) = %v, want %v", k, tb.Moved(k), want)
		}
		movedSome = movedSome || want
	}
	if !movedSome {
		t.Fatal("no key moved when adding a group")
	}
}

// TestMoverSequence drives a move through its phases with synchronous
// hooks and checks ordering, the epoch fence, and stats.
func TestMoverSequence(t *testing.T) {
	tb := NewTable(New([]int{0}, DefaultVPoints))
	var order []string
	mv := NewMover(tb, Hooks{
		Freeze: func(next *Ring, ready func()) {
			order = append(order, PhaseFreeze)
			if tb.Epoch() != 1 {
				t.Errorf("freeze ran after publish: epoch %d", tb.Epoch())
			}
			ready()
		},
		Bootstrap: func(next *Ring, ready func(int)) {
			order = append(order, PhaseBootstrap)
			ready(42)
		},
		Publish: func(next *Ring) {
			order = append(order, PhasePublish)
			if tb.Epoch() != next.Epoch() {
				t.Errorf("publish hook before install: table epoch %d, next %d", tb.Epoch(), next.Epoch())
			}
		},
	})
	var st MoveStats
	next := tb.Current().Map().WithGroup(1)
	if err := mv.Move(next, func(s MoveStats) { st = s }); err != nil {
		t.Fatalf("move: %v", err)
	}
	if want := []string{PhaseFreeze, PhaseBootstrap, PhasePublish}; fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("phase order %v, want %v", order, want)
	}
	if st.Epoch != 2 || st.MovedKeys != 42 {
		t.Fatalf("stats %+v", st)
	}
	if mv.Phase() != PhaseDone || tb.Epoch() != 2 {
		t.Fatalf("post-move phase=%s epoch=%d", mv.Phase(), tb.Epoch())
	}
	if err := mv.Move(tb.Current().Map(), nil); err == nil {
		t.Fatal("stale second move accepted")
	}
}

// TestErrWrongShard pins the typed fence error carrying the epoch.
func TestErrWrongShard(t *testing.T) {
	err := error(ErrWrongShard{Epoch: 7})
	var ws ErrWrongShard
	if !asWrongShard(err, &ws) || ws.Epoch != 7 {
		t.Fatalf("ErrWrongShard lost its epoch: %v", err)
	}
}

func asWrongShard(err error, out *ErrWrongShard) bool {
	ws, ok := err.(ErrWrongShard)
	if ok {
		*out = ws
	}
	return ok
}
