package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

func TestLineageSummaryRanges(t *testing.T) {
	var s LineageSummary
	for _, seq := range []uint64{2, 4, 3, 1, 1, 7} {
		s.Add("c0", seq, false, true)
	}
	if got := s.String(); got != "Δ{c0:[1-4 7]}" {
		t.Fatalf("canonical form = %q", got)
	}
	if !s.Contains("c0", 3) || s.Contains("c0", 5) || s.Contains("c1", 1) {
		t.Fatal("containment wrong")
	}
	s.Add("c0", 6, true, false)
	s.Add("c0", 5, false, true)
	if got := s.String(); got != "Δ{c0:[1-7]!:[6]}" {
		t.Fatalf("after gap fill = %q", got)
	}
	if d, ok := s.Decision("c0", 6); !ok || d != DecReject {
		t.Fatalf("reject decision = %v %v", d, ok)
	}
	if d, ok := s.Decision("c0", 5); !ok || d != DecAccept {
		t.Fatalf("accept decision = %v %v", d, ok)
	}
	if _, ok := s.Decision("c0", 99); ok {
		t.Fatal("unknown seq answered")
	}
	settled, intervals := s.Spans()
	if settled != 7 || intervals != 2 {
		t.Fatalf("spans = %d/%d, want 7 settled in 2 intervals", settled, intervals)
	}
}

func TestLineageSummaryUnionAndEqual(t *testing.T) {
	var a, b LineageSummary
	a.Add("c0", 1, false, true)
	a.Add("c0", 2, false, true)
	a.Add("c1", 5, true, false)
	b.Add("c0", 3, false, true)
	b.Add("c1", 5, true, false)
	if a.Equal(b) || a.ContainsAll(b) {
		t.Fatal("unequal summaries compared equal")
	}
	u1 := a.Clone()
	u1.Union(b)
	u2 := b.Clone()
	u2.Union(a)
	if !u1.Equal(u2) {
		t.Fatalf("union not commutative: %s vs %s", u1, u2)
	}
	if !u1.ContainsAll(a) || !u1.ContainsAll(b) {
		t.Fatal("union lost entries")
	}
	u3 := u1.Clone()
	u3.Union(b)
	if !u3.Equal(u1) {
		t.Fatal("union not idempotent")
	}
	if u1.String() != "Δ{c0:[1-3];c1:[5]!:[5]}" {
		t.Fatalf("union canonical form = %q", u1.String())
	}
}

func TestLaneOf(t *testing.T) {
	cases := map[TxID]string{
		"app/us-west/0#17":      "app/us-west/0",
		"gw/eu-ie/c3~g2#5":      "gw/eu-ie/c3~g2",
		"raw-tx-without-suffix": "raw-tx-without-suffix",
	}
	for tx, want := range cases {
		if got := laneOf(tx); got != want {
			t.Errorf("laneOf(%q) = %q, want %q", tx, got, want)
		}
	}
}

// Lineage summaries survive the gob wire format exactly (TCP ships
// Phase1b/Phase2a/SyncReply messages carrying them).
func TestLineageSummaryGobRoundTrip(t *testing.T) {
	var s LineageSummary
	s.Add("gw/us-west/c0", 1, false, true)
	s.Add("gw/us-west/c0", 2, true, false)
	s.Add("gw/us-west/c0", 4, false, true)
	s.Add("app/1~g3", 1, false, false)
	msg := MsgSyncReply{Entries: []SyncEntry{{
		Key: "k", Version: 3, Lineage: s.Clone(),
	}}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		t.Fatal(err)
	}
	var got MsgSyncReply
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Entries[0].Lineage.Equal(s) || got.Entries[0].Lineage.String() != s.String() {
		t.Fatalf("gob mangled summary: %s -> %s", s, got.Entries[0].Lineage)
	}
}

// The kind-disjoint rule: once a key's class locks on its first
// non-creating update, the other kind is rejected with the typed
// ErrMixedUpdateKinds — in both directions — while record-creating
// inserts stay class-neutral.
func TestMixedKindTypedReject(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 11)

	// Insert (neutral), then a delta locks the key commutative.
	if !w.commit(0, record.Insert("mk/c", record.Value{Attrs: map[string]int64{"n": 0}})).Committed {
		t.Fatal("insert failed")
	}
	if !w.commit(0, record.Commutative("mk/c", map[string]int64{"n": 1})).Committed {
		t.Fatal("delta after insert failed (inserts must be class-neutral)")
	}
	w.settle()
	_, ver, _ := w.read(0, "mk/c")
	res := w.commit(0, record.Physical("mk/c", ver, record.Value{Attrs: map[string]int64{"n": 99}}))
	if res.Committed || res.Err != ErrMixedUpdateKinds {
		t.Fatalf("physical rewrite of a commutative key: committed=%v err=%v, want typed reject", res.Committed, res.Err)
	}

	// The other direction: a physically rewritten key rejects deltas.
	if !w.commit(0, record.Insert("mk/p", record.Value{Attrs: map[string]int64{"n": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	_, ver, _ = w.read(0, "mk/p")
	if !w.commit(0, record.Physical("mk/p", ver, record.Value{Attrs: map[string]int64{"n": 1}})).Committed {
		t.Fatal("physical rewrite failed")
	}
	w.settle()
	res = w.commit(0, record.Commutative("mk/p", map[string]int64{"n": 1}))
	if res.Committed || res.Err != ErrMixedUpdateKinds {
		t.Fatalf("delta on a physical key: committed=%v err=%v, want typed reject", res.Committed, res.Err)
	}
	// Plain conflicts stay untyped.
	res = w.commit(0, record.Physical("mk/p", ver, record.Value{Attrs: map[string]int64{"n": 2}}))
	if res.Committed || res.Err != nil {
		t.Fatalf("stale-vread conflict: committed=%v err=%v, want plain abort", res.Committed, res.Err)
	}
}

// Released decided-log contents must not cost idempotence: after the
// all-peer ack releases an entry, a duplicated late visibility for it
// is still skipped — the lineage summary answers forever.
func TestReleasedEntryStaysIdempotent(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.SyncInterval = 300 * time.Millisecond
	cfg.DecidedRetention = time.Second
	w := newWorld(t, cfg, 1, 1, 12)
	var opts []Option
	for i := 0; i < 8; i++ {
		if !w.commit(0, record.Commutative("rel/1", map[string]int64{"x": 1})).Committed {
			t.Fatal("delta failed")
		}
	}
	w.settle()
	// Shrink the log limit so the sweep's forced compaction applies,
	// and let anti-entropy exchange summaries (the ack channel).
	w.net.RunFor(5 * time.Second)
	var victim *StorageNode
	for _, n := range w.nodes {
		for _, rep := range w.cl.Replicas("rel/1") {
			if n.ID() == rep {
				victim = n
			}
		}
	}
	r := victim.rs("rel/1")
	if len(r.decided.order) == 0 {
		t.Fatal("no decided entries to release")
	}
	// Keep a copy of a settled option for the late replay below.
	for _, id := range r.decided.order {
		e, _ := r.decided.entry(id)
		if e.HasOpt && e.Decision == DecAccept {
			opts = append(opts, e.Opt)
		}
	}
	if len(opts) == 0 {
		t.Fatal("no applied entries captured")
	}
	r.decided.limit = 1
	victim.compactDecided("rel/1", r, true)
	if victim.Metrics().DecidedReleased == 0 {
		t.Fatal("ack-gated release never fired despite full anti-entropy ack coverage")
	}
	val, ver, _ := victim.Store().Get("rel/1")
	if val.Attr("x") != 8 || ver != 8 {
		t.Fatalf("pre-replay state %v v%d", val, ver)
	}
	// Late duplicated visibility for released options: must be skipped
	// via the summary, not re-applied.
	for _, opt := range opts {
		victim.onVisibility(MsgVisibility{Opt: opt, Commit: true})
	}
	val, ver, _ = victim.Store().Get("rel/1")
	if val.Attr("x") != 8 || ver != 8 {
		t.Fatalf("late visibility double-applied after content release: %v v%d", val, ver)
	}
}

// A WAL restart rebuilds the record's lineage summary exactly,
// including knowledge adopted wholesale from peers (persisted as
// summary snapshots, not per-decision records).
func TestRestartRebuildsLineageExactly(t *testing.T) {
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 1, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), Seed: 13})
	cfg := Defaults(ModeMDCC)
	cfg.PendingTimeout = 0
	dir := t.TempDir()
	fr := newFuzzWorldNode(t, net, cl, cfg, topology.USWest, dir)

	// Direct settles (per-decision oplog records).
	for i := 1; i <= 3; i++ {
		fr.node.onVisibility(MsgVisibility{Opt: Option{
			Tx: TxID(fmt.Sprintf("c0#%d", i)), KeySeq: uint64(i),
			Update: record.Commutative("rs/1", map[string]int64{"x": 1}),
		}, Commit: i != 2}) // seq 2 settles as an abort
	}
	// A wholesale adoption (summary-snapshot oplog record).
	var peer LineageSummary
	peer.Add("c1", 1, false, true)
	peer.Add("c1", 2, false, true)
	val, ver, _ := fr.node.Store().Get("rs/1")
	val = record.Commutative("rs/1", map[string]int64{"x": 2}).Apply(val)
	fr.node.adoptBase("rs/1", val, ver+2, func() LineageSummary {
		s := fr.node.Lineage("rs/1")
		s.Union(peer)
		return s
	}(), "test")

	want := fr.node.LineageFingerprint("rs/1")
	wantVal, wantVer, _ := fr.node.Store().Get("rs/1")
	fr.crashRestart(t, net, cl, cfg, topology.USWest)
	if got := fr.node.LineageFingerprint("rs/1"); got != want {
		t.Fatalf("replayed summary %s != pre-crash %s", got, want)
	}
	if v, vr, _ := fr.node.Store().Get("rs/1"); vr != wantVer || !v.Equal(wantVal) {
		t.Fatalf("replayed state %s v%d != pre-crash %s v%d", v, vr, wantVal, wantVer)
	}
	_ = fr.ds.Close()
}

// fuzzReplica is one replica under the merge fuzz: a real durable
// StorageNode whose crashes are modeled by closing and replaying its
// WALs (exactly the scenario harness's crash path).
type fuzzReplica struct {
	dir  string
	ds   *DurableState
	node *StorageNode
}

func newFuzzWorldNode(t *testing.T, net *simnet.Net, cl *topology.Cluster, cfg Config, dc topology.DC, dir string) *fuzzReplica {
	ds, err := OpenDurable(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	return &fuzzReplica{
		dir:  dir,
		ds:   ds,
		node: NewDurableStorageNode(topology.StorageID(dc, 0), dc, net, cl, cfg, ds),
	}
}

func (fr *fuzzReplica) crashRestart(t *testing.T, net *simnet.Net, cl *topology.Cluster, cfg Config, dc topology.DC) {
	fr.node.Halt()
	_ = fr.ds.Close()
	ds, err := OpenDurable(fr.dir, true)
	if err != nil {
		t.Fatal(err)
	}
	fr.ds = ds
	fr.node = NewDurableStorageNode(topology.StorageID(dc, 0), dc, net, cl, cfg, ds)
}

// FuzzLineageMergeExact drives random forked apply schedules —
// duplicated and reordered visibility deliveries split across two
// real (WAL-backed) replicas, with crash/replay between applies — and
// asserts that summary-diff merging (adoptBase) converges both
// replicas to the sequential reference exactly: same value, same
// version, identical canonical summaries. It also pins that the merge
// is idempotent (re-adopting changes nothing) and commutative
// (merging A→B first or B→A first ends identically).
//
// The seed corpus encodes the DESIGN.md §5 "theoretical corner"
// shapes: equal-version forks whose values coincidentally sum equal,
// which value comparison cannot distinguish but summaries must.
func FuzzLineageMergeExact(f *testing.F) {
	// ops: byte0 = opCount; per op 2 bytes (flags, delta); rest = events.
	// Seed 1: two lanes, same delta, delivered to opposite replicas —
	// the coincidentally-equal equal-version fork.
	f.Add([]byte{2, 0x04, 1, 0x05, 1, 0x00, 0x05})
	// Seed 2: dup + reorder of a single lane's commits.
	f.Add([]byte{3, 0x04, 2, 0x04, 3, 0x04, 251, 0x08, 0x00, 0x04, 0x08, 0x01})
	// Seed 3: rejects interleaved with commits, plus a crash.
	f.Add([]byte{4, 0x04, 1, 0x00, 1, 0x04, 1, 0x00, 2, 0x02, 0x06, 0x03, 0x0a, 0x0e})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		nOps := int(data[0])%16 + 1
		if len(data) < 1+2*nOps {
			return
		}
		type fop struct {
			opt    Option
			commit bool
		}
		laneSeq := map[int]uint64{}
		ops := make([]fop, 0, nOps)
		for i := 0; i < nOps; i++ {
			flags, db := data[1+2*i], data[2+2*i]
			lane := int(flags) % 3
			laneSeq[lane]++
			delta := int64(int8(db))
			merged := 0
			if flags&0x08 != 0 {
				merged = 2 // a gateway-coalesced option (span 2)
			}
			up := record.Commutative("k", map[string]int64{"x": delta})
			up.Merged = merged
			ops = append(ops, fop{
				opt: Option{
					Tx:     TxID(fmt.Sprintf("c%d#%d", lane, laneSeq[lane])),
					KeySeq: laneSeq[lane],
					Update: up,
				},
				commit: flags&0x04 != 0,
			})
		}

		cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 1, ClientDC: -1})
		net := simnet.New(simnet.Options{Latency: cl.Latency(), Seed: 7})
		cfg := Defaults(ModeMDCC)
		cfg.PendingTimeout = 0
		base := t.TempDir()
		reps := []*fuzzReplica{
			newFuzzWorldNode(t, net, cl, cfg, topology.USWest, filepath.Join(base, "a")),
			newFuzzWorldNode(t, net, cl, cfg, topology.USEast, filepath.Join(base, "b")),
		}
		dcs := []topology.DC{topology.USWest, topology.USEast}

		// Schedule: deliver (possibly duplicated, reordered) visibility
		// to either or both replicas; crash/replay replicas in between.
		delivered := make(map[int]bool)
		for _, e := range data[1+2*nOps:] {
			kind := int(e) & 3
			idx := (int(e) >> 2) % nOps
			switch kind {
			case 3:
				ri := (int(e) >> 2) & 1
				reps[ri].crashRestart(t, net, cl, cfg, dcs[ri])
			case 2:
				reps[0].node.onVisibility(MsgVisibility{Opt: ops[idx].opt, Commit: ops[idx].commit})
				reps[1].node.onVisibility(MsgVisibility{Opt: ops[idx].opt, Commit: ops[idx].commit})
				delivered[idx] = true
			default:
				reps[kind].node.onVisibility(MsgVisibility{Opt: ops[idx].opt, Commit: ops[idx].commit})
				delivered[idx] = true
			}
		}

		// Sequential reference over every option either replica saw.
		var refVal record.Value
		var refVer record.Version
		var refSum LineageSummary
		for i, op := range ops {
			if !delivered[i] {
				continue
			}
			refSum.Add(laneOf(op.opt.Tx), op.opt.KeySeq, !op.commit, op.commit)
			if op.commit {
				refVal = op.opt.Update.Apply(refVal)
				refVer += op.opt.Update.Span()
			}
		}

		merge := func(dst, src *fuzzReplica) {
			val, ver, _ := src.node.Store().Get("k")
			dst.node.adoptBase("k", val, ver, src.node.Lineage("k"), "fuzz")
		}
		converge := func(a, b *fuzzReplica) {
			for i := 0; i < 3; i++ {
				merge(a, b)
				merge(b, a)
			}
		}
		state := func(r *fuzzReplica) string {
			val, ver, _ := r.node.Store().Get("k")
			return fmt.Sprintf("%s v%d %s", val, ver, r.node.LineageFingerprint("k"))
		}

		// Commutativity: converge a third pair in the opposite order.
		// (Fresh copies via WAL replay of the current state.)
		wantFromOrder := func(first, second int) string {
			reps[first].crashRestart(t, net, cl, cfg, dcs[first])
			reps[second].crashRestart(t, net, cl, cfg, dcs[second])
			for i := 0; i < 3; i++ {
				merge(reps[first], reps[second])
				merge(reps[second], reps[first])
			}
			return state(reps[first])
		}
		orderAB := wantFromOrder(0, 1)

		converge(reps[0], reps[1])
		sA, sB := state(reps[0]), state(reps[1])
		if sA != sB {
			t.Fatalf("replicas did not converge:\n A=%s\n B=%s", sA, sB)
		}
		valA, verA, _ := reps[0].node.Store().Get("k")
		if verA != refVer || !valA.Equal(refVal) {
			t.Fatalf("merged state diverges from sequential reference:\n got  %s v%d\n want %s v%d\n summary %s",
				valA, verA, refVal, refVer, reps[0].node.LineageFingerprint("k"))
		}
		if got := reps[0].node.LineageFingerprint("k"); got != refSum.String() {
			t.Fatalf("merged summary %s != reference %s", got, refSum.String())
		}
		// Idempotence: merging again changes nothing.
		merge(reps[0], reps[1])
		merge(reps[1], reps[0])
		if s := state(reps[0]); s != sA {
			t.Fatalf("merge not idempotent: %s -> %s", sA, s)
		}
		// Commutativity: the opposite merge order reached the same state.
		if orderAB != sA {
			t.Fatalf("merge order changed the result:\n B-first=%s\n A-first=%s", orderAB, sA)
		}
		for _, r := range reps {
			_ = r.ds.Close()
		}
	})
}
