// mdcc-sim runs deterministic fault-injection scenarios against the
// full MDCC stack on the simulated five-data-center WAN and prints a
// pass/fail invariant report (internal/check: no lost updates,
// version accounting, delta conservation, constraint safety) plus
// commit/abort and latency statistics.
//
// Usage:
//
//	mdcc-sim -scenario dc-outage -seed 1
//	mdcc-sim -scenario all -clients 200 -duration 2m
//	mdcc-sim -scenario gateway-partition -scenario.trace
//	mdcc-sim -list
//
// -scenario.trace additionally runs the transaction flight recorder
// and prints assembled cross-node timelines for the N slowest
// transactions, every retained abort/outcome-unknown, and — on a
// failed run — the transactions touching each violated invariant's
// keys.
//
// Runs are reproducible: the same scenario, seed and sizing always
// produce the same commits, aborts and verdict, so any failure can be
// replayed from its report line alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mdcc/internal/scenario"
)

var (
	name     = flag.String("scenario", "all", "scenario name, or \"all\"")
	seed     = flag.Int64("seed", 1, "simulation seed (reproducible)")
	clients  = flag.Int("clients", 0, "simulated clients (0 = scenario default)")
	nodes    = flag.Int("nodes-per-dc", 0, "storage nodes per data center (0 = scenario default)")
	scnNodes = flag.Int("scenario.nodes", 0, "alias for -nodes-per-dc (takes precedence when set)")
	scnDrop  = flag.Float64("scenario.drop", 0, "ambient uniform message-drop probability for the whole traffic window")
	duration = flag.Duration("duration", 0, "virtual traffic window (0 = scenario default)")
	noFaults = flag.Bool("no-faults", false, "skip the nemesis schedule (happy-path run)")
	list     = flag.Bool("list", false, "list scenarios and exit")
	verbose  = flag.Bool("v", false, "log nemesis events as they fire")

	traceOn      = flag.Bool("scenario.trace", false, "run the transaction flight recorder and print assembled cross-node timelines (slowest-N, every retained abort/unknown, and the transactions behind each invariant violation)")
	traceSlowest = flag.Int("scenario.trace-slowest", 0, "flight recorder: always keep the N slowest transactions (0 = default 5)")
	traceSlow    = flag.Duration("scenario.trace-slow", 0, "flight recorder: retain transactions slower than this (0 = default 1s)")

	sweepOn    = flag.Bool("scenario.sweep", false, "run the scaling-curve sweep (node count x drop%) instead of single scenario runs; -scenario picks the swept scenario (\"all\" means the sweep default)")
	sweepNodes = flag.String("sweep.nodes", "", "comma-separated nodes-per-DC axis for -scenario.sweep (default 1,40,188 = 65/260/1000 processes at 60 clients)")
	sweepDrop  = flag.String("sweep.drop", "", "comma-separated ambient drop%% axis for -scenario.sweep (default 0,2)")
	sweepFault = flag.Bool("sweep.faults", false, "also run the scenario's nemesis schedule at every sweep point (default: drop%% is the only fault, isolating scale)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdcc-sim [-scenario name|all] [-seed N] [-clients N] [-duration D] [-no-faults] [-v]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-24s %s\n", s.Name, s.Description)
		}
		return
	}

	if *sweepOn {
		runSweep()
		return
	}

	var torun []*scenario.Scenario
	if *name == "all" {
		torun = scenario.All()
	} else {
		s, ok := scenario.Find(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdcc-sim: unknown scenario %q; known: %v\n", *name, scenario.Names())
			os.Exit(2)
		}
		torun = []*scenario.Scenario{s}
	}

	opts := scenario.Options{
		Seed:         *seed,
		Clients:      *clients,
		NodesPerDC:   *nodes,
		Duration:     *duration,
		Faults:       !*noFaults,
		DropProb:     *scnDrop,
		Trace:        *traceOn,
		TraceSlowest: *traceSlowest,
		TraceSlow:    *traceSlow,
	}
	if *scnNodes > 0 {
		opts.NodesPerDC = *scnNodes
	}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	failed := 0
	for _, s := range torun {
		start := time.Now()
		res, err := s.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcc-sim: %s: %v\n", s.Name, err)
			failed++
			continue
		}
		fmt.Print(res.Report())
		fmt.Printf("  wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
		// With tracing on, print the diagnosis bundle: one assembled
		// cross-node timeline per retained transaction, plus the
		// transactions behind each invariant violation.
		if len(res.Timelines) > 0 {
			fmt.Printf("--- flight recorder: %d timelines ---\n", len(res.Timelines))
			for _, tl := range res.Timelines {
				fmt.Println(tl)
			}
			fmt.Println()
		}
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdcc-sim: %d of %d scenarios FAILED\n", failed, len(torun))
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios passed\n", len(torun))
}

// runSweep is the -scenario.sweep mode: the scaling curve (cluster
// size x ambient drop%) printed as one table row per grid point.
func runSweep() {
	cfg := scenario.SweepConfig{
		Seed:     *seed,
		Clients:  *clients,
		Duration: *duration,
		Faults:   *sweepFault,
	}
	if *name != "all" {
		cfg.Scenario = *name
	}
	var err error
	if cfg.NodesPerDC, err = parseInts(*sweepNodes); err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-sim: -sweep.nodes: %v\n", err)
		os.Exit(2)
	}
	if cfg.DropPcts, err = parseFloats(*sweepDrop); err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-sim: -sweep.drop: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...interface{}) { fmt.Printf(format+"\n", args...) }
	}
	pts, err := scenario.Sweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdcc-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%7s %8s %6s %9s %9s %12s %11s %10s %9s  %s\n",
		"nodes", "nodes/DC", "drop%", "commits", "tx/s", "converge-ms", "wall-ms", "sim/wall", "events/s", "verdict")
	failed := 0
	for _, p := range pts {
		verdict := "PASS"
		if !p.Passed {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%7d %8d %6.1f %9d %9.1f %12.0f %11.0f %9.0fx %9.0f  %s\n",
			p.ClusterNodes, p.NodesPerDC, p.DropPct, p.Commits, p.TPS,
			p.ConvergeMS, p.WallMS, p.SimWallRatio, p.EventsPerSec, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdcc-sim: %d of %d sweep points FAILED\n", failed, len(pts))
		os.Exit(1)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(csv string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
