package check

import (
	"fmt"
	"time"
)

// RecoveryRecord describes one replica restart's recovery, as the
// harness observed it: what durable state existed before the crash and
// what the reboot actually did. Protocol-agnostic — the storage engine
// reports the numbers, this package judges them.
type RecoveryRecord struct {
	// Node names the restarted replica.
	Node string
	// HadSnapshot is true when at least one checkpoint snapshot existed
	// on disk at crash time, so recovery had no business replaying the
	// whole log.
	HadSnapshot bool
	// UsedSnapshot / FellBack mirror the engine's replay stats: seeded
	// from a snapshot, and whether the newest one was corrupt and an
	// older one was used.
	UsedSnapshot bool
	FellBack     bool
	// Wiped is true when no snapshot was usable and the harness
	// discarded the replica's state to rebuild it from its quorum; the
	// remaining fields are then meaningless.
	Wiped bool
	// TailRecords is the log records replayed past the snapshot cut;
	// ExpectedTail the pre-crash appends-since-checkpoint gauge
	// (0 = not captured).
	TailRecords  int64
	ExpectedTail int64
	// Wall is the real time the reopen+replay took.
	Wall time.Duration
}

// ValidateRecovery checks the bounded-recovery contract over a run's
// restarts: a replica with a checkpoint must recover from it (never a
// full-log replay), the replayed tail must not exceed what had
// accumulated since the last checkpoint (unless recovery legitimately
// fell back a snapshot, whose older cut retains a longer tail), and
// every recovery must complete within maxWall.
func ValidateRecovery(recs []RecoveryRecord, maxWall time.Duration) []error {
	var errs []error
	for _, rr := range recs {
		if rr.Wiped {
			continue
		}
		if rr.HadSnapshot && !rr.UsedSnapshot {
			errs = append(errs, fmt.Errorf(
				"check: %s: recovery ignored an existing checkpoint snapshot (full-log replay)", rr.Node))
		}
		if rr.UsedSnapshot && !rr.FellBack && rr.ExpectedTail > 0 && rr.TailRecords > rr.ExpectedTail {
			errs = append(errs, fmt.Errorf(
				"check: %s: recovery tail %d records exceeds the %d that accumulated since the last checkpoint (replay not bounded)",
				rr.Node, rr.TailRecords, rr.ExpectedTail))
		}
		if maxWall > 0 && rr.Wall > maxWall {
			errs = append(errs, fmt.Errorf(
				"check: %s: recovery took %s, beyond the %s bound", rr.Node, rr.Wall, maxWall))
		}
	}
	return errs
}
