package bench

import (
	"fmt"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// Gateway saturation benchmark: the same hot-key commutative workload
// (a stock-decrement stampede, the paper's motivating TPC-W buy) is
// driven twice — once in the paper's deployment model (one private
// coordinator per client session) and once through per-DC gateways
// (coordinator pooling + cross-transaction batching + hot-key delta
// coalescing). The acceptors carry a per-message service time, so the
// baseline's per-transaction message load saturates them and the
// comparison measures exactly what the gateway tier buys: committed
// transactions per second and acceptor messages per committed
// transaction.

// GatewayScale sizes the saturation experiment.
type GatewayScale struct {
	// Sessions is the number of concurrent closed-loop client
	// sessions (the saturation bench runs >= 1000 at full scale).
	Sessions int
	// HotKeys is how many hot stock records absorb the stampede.
	HotKeys int
	// InitialStock preloads each hot key ("units" >= 0 constrained)
	// high enough that demarcation never starves the run.
	InitialStock int64
	// NodesPerDC is storage shards per data center.
	NodesPerDC int
	// ServiceTime models acceptor CPU per message — the resource the
	// baseline melts.
	ServiceTime time.Duration
	Warmup      time.Duration
	Measure     time.Duration

	// ScarceStock and ScarceMeasure size the scarce-stock arm: the
	// same stampede against stock low enough that the demarcation
	// bound binds, exercising the exact-headroom admission (merges
	// only when shared headroom exists; split-and-rerun stays rare).
	ScarceStock   int64
	ScarceMeasure time.Duration

	// ReadFrac/ReadWarmup/ReadMeasure size the read-mostly arms
	// (see readtier.go): a ReadFrac read mix at Sessions closed-loop
	// clients, RPC reads vs the learned-replica read tier. ReadFrac 0
	// skips them.
	ReadFrac    float64
	ReadWarmup  time.Duration
	ReadMeasure time.Duration

	// LineageSessions/LineageMeasure/LineageStock size the hot-record
	// lineage-bytes arm (see lineage.go): full-window decided lists
	// vs exact summaries on one hot commutative record's
	// anti-entropy and classic-phase messages. 0 sessions skips it;
	// the stock is set to exhaust mid-run so demarcation rejects
	// force classic base-rewrite rounds into the measurement.
	LineageSessions int
	LineageMeasure  time.Duration
	LineageStock    int64

	// MultiGroups/MultiSessions/MultiHotKeys/MultiWarmup/MultiMeasure
	// size the capacity-scaling arm (see multiGroupCapacity): the same
	// per-group offered load (MultiSessions closed-loop sessions on
	// MultiHotKeys hot keys per replica group) driven against 1 and
	// against MultiGroups shard-ring groups per DC. MultiGroups 0
	// skips the arm.
	MultiGroups   int
	MultiSessions int
	MultiHotKeys  int
	MultiWarmup   time.Duration
	MultiMeasure  time.Duration

	// balancePerGroup, when set, replaces the hot-key set with one
	// holding exactly that many keys per active replica group under
	// the run's shard ring, so per-group offered load is uniform by
	// construction (internal to the multi-group arm).
	balancePerGroup int
}

// GatewayPaperScale is the full saturation setting: 1000 sessions.
func GatewayPaperScale() GatewayScale {
	return GatewayScale{
		Sessions:      1000,
		HotKeys:       4,
		InitialStock:  50_000_000,
		NodesPerDC:    2,
		ServiceTime:   time.Millisecond,
		Warmup:        10 * time.Second,
		Measure:       60 * time.Second,
		ScarceStock:   12_000,
		ScarceMeasure: 20 * time.Second,
		ReadFrac:      0.9,
		ReadWarmup:    5 * time.Second,
		ReadMeasure:   30 * time.Second,
		// Modest sizing on purpose: the metric is bytes per message
		// (independent of throughput), and the baseline arm's legacy
		// lists grow to ~1MB/message — gob-metering them at stampede
		// scale would dominate the bench's wall time without adding
		// information.
		LineageSessions: 100,
		LineageMeasure:  20 * time.Second,
		LineageStock:    5_000,
		MultiGroups:     4,
		MultiSessions:   250,
		MultiHotKeys:    4,
		MultiWarmup:     5 * time.Second,
		MultiMeasure:    30 * time.Second,
	}
}

// GatewayQuickScale shrinks the run for CI smoke (~1/5 scale).
func GatewayQuickScale() GatewayScale {
	return GatewayScale{
		Sessions:        200,
		HotKeys:         4,
		InitialStock:    10_000_000,
		NodesPerDC:      2,
		ServiceTime:     time.Millisecond,
		Warmup:          5 * time.Second,
		Measure:         20 * time.Second,
		ScarceStock:     1_200,
		ScarceMeasure:   10 * time.Second,
		ReadFrac:        0.9,
		ReadWarmup:      2 * time.Second,
		ReadMeasure:     10 * time.Second,
		LineageSessions: 60,
		LineageMeasure:  15 * time.Second,
		LineageStock:    3_000,
		MultiGroups:     4,
		MultiSessions:   60,
		MultiHotKeys:    4,
		MultiWarmup:     2 * time.Second,
		MultiMeasure:    10 * time.Second,
	}
}

// GatewayRun is one arm's harvest.
type GatewayRun struct {
	Mode     string  `json:"mode"` // "per-session-coordinators" | "gateway"
	Sessions int     `json:"sessions"`
	Commits  int64   `json:"commits"`
	Aborts   int64   `json:"aborts"`
	TPS      float64 `json:"tps"` // committed transactions / measure second

	// AcceptorMsgs counts physical envelopes delivered to storage
	// nodes during the whole run; AcceptorMsgsPerCommit normalizes.
	AcceptorMsgs          int64   `json:"acceptorMsgs"`
	AcceptorMsgsPerCommit float64 `json:"acceptorMsgsPerCommit"`
	// Acceptor-side counter verification of cross-transaction
	// batching: envelopes unpacked and the messages inside them.
	AcceptorBatchEnvelopes int64 `json:"acceptorBatchEnvelopes"`
	AcceptorBatchItems     int64 `json:"acceptorBatchItems"`
	// Acceptor→coordinator vote batching (the piggyback freshness
	// channel's wire cost amortization).
	VoteBatchEnvelopes int64 `json:"voteBatchEnvelopes"`
	VoteBatchItems     int64 `json:"voteBatchItems"`
	// DemarcationRejects counts fast-path escrow rejections at the
	// acceptors (scarce arm: how often admission was arbitrated there).
	DemarcationRejects int64 `json:"demarcationRejects,omitempty"`

	// Gateway-side metrics (gateway arm only).
	Gateway *gateway.Metrics `json:"gateway,omitempty"`
}

// GatewayComparison is the saturation benchmark result
// (BENCH_gateway.json).
type GatewayComparison struct {
	Seed     int64      `json:"seed"`
	Sessions int        `json:"sessions"`
	HotKeys  int        `json:"hotKeys"`
	Measure  string     `json:"measure"`
	Baseline GatewayRun `json:"baseline"`
	Gateway  GatewayRun `json:"gateway"`
	Speedup  float64    `json:"speedupTPS"`           // gateway.TPS / baseline.TPS
	MsgDrop  float64    `json:"acceptorMsgReduction"` // baseline msgs/commit ÷ gateway msgs/commit
	// Scarce is the gateway arm re-run at ScarceStock, where the
	// demarcation bound binds: exact headroom accounting should merge
	// only inside real shared headroom (low MergeSplits) while the
	// acceptors arbitrate the rest (CoalesceBypass, DemarcationRejects).
	Scarce *GatewayRun `json:"scarce,omitempty"`
	// ReadMostly compares the 90/10 read mix with per-RPC reads vs
	// the learned-replica read tier (see readtier.go).
	ReadMostly *ReadComparison `json:"readMostly,omitempty"`
	// Lineage compares lineage-bearing message bytes on a hot
	// commutative record: the pre-summary full-window decided lists
	// vs exact lineage summaries (see lineage.go).
	Lineage *LineageBytesComparison `json:"lineage,omitempty"`
	// MultiGroup shows committed capacity scaling with shard-ring
	// group count at fixed per-group offered load (the one-replica-
	// group capacity ceiling, broken).
	MultiGroup *MultiGroupResult `json:"multiGroup,omitempty"`
	// Recorder is the flight-recorder overhead ablation on the
	// headline gateway arm (tracing must cost <1% committed tx/s).
	Recorder *RecorderAblation `json:"recorder,omitempty"`
	Quick    bool              `json:"quick,omitempty"`
}

// MultiGroupResult is the capacity-scaling arm's harvest: the same
// per-group stampede at 1 vs Groups replica groups per DC.
type MultiGroupResult struct {
	Groups           int        `json:"groups"`
	SessionsPerGroup int        `json:"sessionsPerGroup"`
	HotKeysPerGroup  int        `json:"hotKeysPerGroup"`
	Single           GatewayRun `json:"singleGroup"`
	Multi            GatewayRun `json:"multiGroup"`
	// ScalingTPS is Multi.TPS / Single.TPS — ideally ≈ Groups, since
	// the groups' acceptors are independent service-time pools.
	ScalingTPS float64 `json:"scalingTPS"`
}

// RecorderAblation proves the flight recorder's overhead bound on the
// headline gateway arm: the identical seed and sizing run with the
// recorder off and on. The recorder performs no virtual-time
// operations and never touches the RNG stream, so virtual committed
// tx/s must match exactly — TPSDeltaPct is the deterministic CI gate.
// The recorder's real cost is host CPU, reported as the wall-clock
// delta (noisy on shared runners; informational).
type RecorderAblation struct {
	Off             GatewayRun `json:"off"`
	On              GatewayRun `json:"on"`
	TPSDeltaPct     float64    `json:"tpsDeltaPct"` // (on−off)/off × 100, virtual time
	WallOff         string     `json:"wallOff"`
	WallOn          string     `json:"wallOn"`
	WallOverheadPct float64    `json:"wallOverheadPct"`
	RecorderEvents  uint64     `json:"recorderEvents"`
}

// GatewaySaturation runs both arms (plus the scarce-stock gateway
// arm and the flight-recorder ablation) and compares.
func GatewaySaturation(seed int64, sc GatewayScale) *GatewayComparison {
	base := runGatewayArm(seed, sc, false, nil)
	wall0 := time.Now()
	gw := runGatewayArm(seed, sc, true, nil)
	gwWall := time.Since(wall0)
	cmp := &GatewayComparison{
		Seed:     seed,
		Sessions: sc.Sessions,
		HotKeys:  sc.HotKeys,
		Measure:  sc.Measure.String(),
		Baseline: base,
		Gateway:  gw,
	}
	if base.TPS > 0 {
		cmp.Speedup = gw.TPS / base.TPS
	}
	if gw.AcceptorMsgsPerCommit > 0 {
		cmp.MsgDrop = base.AcceptorMsgsPerCommit / gw.AcceptorMsgsPerCommit
	}
	// Flight-recorder ablation: re-run the headline gateway arm with
	// the recorder wired through the full stack. Virtual TPS must be
	// bit-identical (the recorder never touches simulated time or the
	// RNG); wall-clock captures the real CPU cost.
	{
		rec := trace.New(trace.Config{})
		wall1 := time.Now()
		traced := runGatewayArm(seed, sc, true, rec)
		tracedWall := time.Since(wall1)
		traced.Mode = "gateway-traced"
		abl := &RecorderAblation{
			Off:            gw,
			On:             traced,
			WallOff:        gwWall.Round(time.Millisecond).String(),
			WallOn:         tracedWall.Round(time.Millisecond).String(),
			RecorderEvents: rec.Events(),
		}
		if gw.TPS > 0 {
			abl.TPSDeltaPct = (traced.TPS - gw.TPS) / gw.TPS * 100
		}
		if gwWall > 0 {
			abl.WallOverheadPct = (tracedWall.Seconds() - gwWall.Seconds()) / gwWall.Seconds() * 100
		}
		cmp.Recorder = abl
	}
	if sc.ScarceStock > 0 {
		scarce := sc
		scarce.InitialStock = sc.ScarceStock
		scarce.Warmup = 0 // measure the whole burn-down to exhaustion
		if sc.ScarceMeasure > 0 {
			scarce.Measure = sc.ScarceMeasure
		}
		run := runGatewayArm(seed, scarce, true, nil)
		run.Mode = "gateway-scarce"
		cmp.Scarce = &run
	}
	if sc.ReadFrac > 0 && sc.ReadMeasure > 0 {
		cmp.ReadMostly = ReadMostly(seed, sc)
	}
	if sc.LineageSessions > 0 && sc.LineageMeasure > 0 {
		cmp.Lineage = LineageHotRecord(seed, LineageScale{
			Sessions: sc.LineageSessions, Measure: sc.LineageMeasure,
			Stock: sc.LineageStock,
		})
	}
	if sc.MultiGroups > 1 {
		cmp.MultiGroup = multiGroupCapacity(seed, sc)
	}
	return cmp
}

// multiGroupCapacity drives the same per-group offered load against a
// single replica group and against sc.MultiGroups groups per DC. Both
// arms use the gateway tier; sessions and hot keys scale with the
// group count (the hot-key set is balanced per group under the shard
// ring) so each group sees an identical stampede, and the acceptors'
// per-message service time is the bottleneck — committed tx/s then
// measures capacity, which a single replica group caps and the ring
// lets grow with groups.
func multiGroupCapacity(seed int64, sc GatewayScale) *MultiGroupResult {
	run := func(groups int) GatewayRun {
		arm := sc
		arm.NodesPerDC = groups
		arm.Sessions = sc.MultiSessions * groups
		arm.HotKeys = sc.MultiHotKeys * groups
		arm.balancePerGroup = sc.MultiHotKeys
		arm.Warmup = sc.MultiWarmup
		arm.Measure = sc.MultiMeasure
		r := runGatewayArm(seed, arm, true, nil)
		r.Mode = fmt.Sprintf("gateway-%dgroups", groups)
		return r
	}
	out := &MultiGroupResult{
		Groups:           sc.MultiGroups,
		SessionsPerGroup: sc.MultiSessions,
		HotKeysPerGroup:  sc.MultiHotKeys,
		Single:           run(1),
		Multi:            run(sc.MultiGroups),
	}
	if out.Single.TPS > 0 {
		out.ScalingTPS = out.Multi.TPS / out.Single.TPS
	}
	return out
}

func hotKey(i int) record.Key {
	if i < 10 {
		return record.Key("stock/hot" + string(rune('0'+i)))
	}
	return record.Key(fmt.Sprintf("stock/hot%d", i))
}

// balancedHotKeys picks perGroup hot keys owned by each of the
// cluster's active replica groups (deterministic: first matches in
// hotKey index order), so multi-group arms offer uniform per-group
// load regardless of ring placement skew.
func balancedHotKeys(cl *topology.Cluster, perGroup int) []record.Key {
	groups := cl.Ring().Current().Groups()
	want := perGroup * len(groups)
	count := make(map[int]int, len(groups))
	keys := make([]record.Key, 0, want)
	for i := 0; len(keys) < want && i < 100000; i++ {
		k := hotKey(i)
		if g := cl.Shard(k); count[g] < perGroup {
			count[g]++
			keys = append(keys, k)
		}
	}
	return keys
}

// runGatewayArm drives one closed-loop arm. rec, when non-nil, wires
// the flight recorder through the whole stack (the recorder-overhead
// ablation); all production arms pass nil.
func runGatewayArm(seed int64, sc GatewayScale, useGateway bool, rec *trace.Recorder) GatewayRun {
	cl := topology.NewCluster(topology.Layout{
		NodesPerDC: sc.NodesPerDC,
		Clients:    sc.Sessions,
		ClientDC:   -1,
	})
	tun := gateway.Tuning{MaxInflight: 1 << 16, MaxQueue: 1 << 16}
	extra := map[transport.NodeID]topology.DC{}
	if useGateway {
		for _, dc := range topology.AllDCs() {
			for _, id := range gateway.NodeIDs(dc, tun) {
				extra[id] = dc
			}
		}
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.LatencyWith(extra),
		JitterFrac:  0.10,
		ServiceTime: sc.ServiceTime,
		Seed:        seed,
	})
	cfg := core.Defaults(core.ModeMDCC)
	cfg.Tracer = rec
	cfg.Constraints = []record.Constraint{record.MinBound("units", 0)}
	// Saturation pushes commit latency past the WAN-tuned defaults;
	// widen the recovery timeouts (identically for both arms) so the
	// comparison measures queueing, not recovery-storm amplification.
	cfg.OptionTimeout = 10 * time.Second
	cfg.RecoveryRetry = 5 * time.Second
	cfg.PendingTimeout = 30 * time.Second

	stores := make([]*kv.Store, 0, len(cl.Storage))
	nodes := make([]*core.StorageNode, 0, len(cl.Storage))
	for _, n := range cl.Storage {
		store := kv.NewMemory()
		stores = append(stores, store)
		nodes = append(nodes, core.NewStorageNode(n.ID, n.DC, net, cl, cfg, store))
	}
	// Preload the hot keys on their replicas.
	hot := make([]record.Key, sc.HotKeys)
	for i := range hot {
		hot[i] = hotKey(i)
	}
	if sc.balancePerGroup > 0 {
		hot = balancedHotKeys(cl, sc.balancePerGroup)
	}
	for _, key := range hot {
		shard := cl.Shard(key)
		for j, n := range cl.Storage {
			if n.Index == shard {
				_ = stores[j].Put(key, record.Value{Attrs: map[string]int64{"units": sc.InitialStock}}, 1)
			}
		}
	}

	// Commit entry point per client: a private coordinator (baseline)
	// or the client DC's shared gateway.
	commit := make([]func([]record.Update, func(bool)), sc.Sessions)
	var gws map[topology.DC]*gateway.Gateway
	if useGateway {
		gws = make(map[topology.DC]*gateway.Gateway)
		for _, dc := range topology.AllDCs() {
			gws[dc] = gateway.New(dc, net, cl, cfg, tun)
		}
		for i, c := range cl.Clients {
			g := gws[c.DC]
			commit[i] = func(ups []record.Update, done func(bool)) {
				g.Commit(ups, func(ok bool, err error) { done(ok && err == nil) })
			}
		}
	} else {
		for i, c := range cl.Clients {
			co := core.NewCoordinator(c.ID, c.DC, net, cl, cfg)
			commit[i] = func(ups []record.Update, done func(bool)) {
				co.Commit(ups, func(r core.CommitResult) { done(r.Committed) })
			}
		}
	}

	res := GatewayRun{Mode: "per-session-coordinators", Sessions: sc.Sessions}
	if useGateway {
		res.Mode = "gateway"
	}
	rng := net.Rand()
	start := net.Now()
	measureFrom := start.Add(sc.Warmup)
	measureTo := measureFrom.Add(sc.Measure)

	// Closed loop: each session decrements a random hot key, waits
	// for the outcome, repeats — the flash-sale stampede.
	for ci := range commit {
		ci := ci
		var loop func()
		loop = func() {
			now := net.Now()
			if !now.Before(measureTo) {
				return
			}
			key := hot[rng.Intn(len(hot))]
			commit[ci]([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool) {
					end := net.Now()
					if !end.Before(measureFrom) && end.Before(measureTo) {
						if ok {
							res.Commits++
						} else {
							res.Aborts++
						}
					}
					loop()
				})
		}
		net.At(0, loop)
	}
	net.RunFor(sc.Warmup + sc.Measure + 10*time.Second)

	if secs := sc.Measure.Seconds(); secs > 0 {
		res.TPS = float64(res.Commits) / secs
	}
	for _, n := range cl.Storage {
		res.AcceptorMsgs += net.DeliveredTo(n.ID)
	}
	if res.Commits > 0 {
		res.AcceptorMsgsPerCommit = float64(res.AcceptorMsgs) / float64(res.Commits)
	}
	for _, n := range nodes {
		m := n.Metrics()
		res.AcceptorBatchEnvelopes += m.BatchEnvelopes
		res.AcceptorBatchItems += m.BatchItems
		res.VoteBatchEnvelopes += m.VoteBatchEnvelopes
		res.VoteBatchItems += m.VoteBatchItems
		res.DemarcationRejects += m.DemarcationRejects
	}
	if useGateway {
		var agg gateway.Metrics
		for _, dc := range topology.AllDCs() {
			agg.Add(gws[dc].Metrics())
		}
		agg.Finalize()
		res.Gateway = &agg
	}
	return res
}
