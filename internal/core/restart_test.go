package core

import (
	"path/filepath"
	"testing"
	"time"

	"mdcc/internal/check"
	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

// durableWorld is the crash/restart test harness: a 5-DC cluster
// whose storage nodes live on WALs so they can be killed and rebooted
// mid-protocol.
type durableWorld struct {
	t        *testing.T
	net      *simnet.Net
	cl       *topology.Cluster
	cfg      Config
	dir      string
	nodes    []*StorageNode
	durables []*DurableState
	coords   []*Coordinator
}

func newDurableWorld(t *testing.T, seed int64) *durableWorld {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 3, ClientDC: -1})
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.05,
		ServiceTime: 100 * time.Microsecond,
		Seed:        seed,
	})
	cfg := Defaults(ModeMDCC)
	cfg.PendingTimeout = 2 * time.Second
	cfg.SyncInterval = 500 * time.Millisecond
	w := &durableWorld{t: t, net: net, cl: cl, cfg: cfg, dir: t.TempDir()}
	for _, n := range cl.Storage {
		ds, err := OpenDurable(filepath.Join(w.dir, string(n.ID)), true)
		if err != nil {
			t.Fatalf("open durable: %v", err)
		}
		w.durables = append(w.durables, ds)
		w.nodes = append(w.nodes, NewDurableStorageNode(n.ID, n.DC, net, cl, cfg, ds))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, cfg))
	}
	return w
}

func (w *durableWorld) crash(i int) {
	w.net.Crash(w.cl.Storage[i].ID)
	w.nodes[i].Halt()
	if err := w.durables[i].Close(); err != nil {
		w.t.Fatalf("close durable: %v", err)
	}
}

func (w *durableWorld) restart(i int) {
	n := w.cl.Storage[i]
	ds, err := OpenDurable(filepath.Join(w.dir, string(n.ID)), true)
	if err != nil {
		w.t.Fatalf("reopen durable: %v", err)
	}
	w.durables[i] = ds
	w.net.Recover(n.ID)
	w.nodes[i] = NewDurableStorageNode(n.ID, n.DC, w.net, w.cl, w.cfg, ds)
}

// coordMtx adapts a Coordinator to mtx.Client for check.History.
type coordMtx struct{ c *Coordinator }

func (cm coordMtx) Read(key record.Key, cb mtx.ReadFunc) { cm.c.Read(key, cb) }
func (cm coordMtx) Commit(ups []record.Update, done func(bool)) {
	cm.c.Commit(ups, func(r CommitResult) { done(r.Committed) })
}
func (cm coordMtx) SupportsCommutative() bool { return true }

// TestCrashRestartFromWALMidPhase2 kills an acceptor while a stream
// of transactions is mid-protocol (Phase2 messages and visibility in
// flight), restarts it from its WALs, and asserts that no
// acknowledged commit is lost and every internal/check invariant
// holds over the full history.
func TestCrashRestartFromWALMidPhase2(t *testing.T) {
	w := newDurableWorld(t, 7)
	hist := check.New()
	clients := make([]mtx.Client, len(w.coords))
	for i, c := range w.coords {
		clients[i] = hist.Client(i, coordMtx{c})
	}

	// Preload one commutative counter on every replica (version 1, as
	// check expects for preloaded keys).
	key := record.Key("acct/x")
	initial := map[record.Key]record.Value{
		key: {Attrs: map[string]int64{"bal": 100}},
	}
	for _, ds := range w.durables {
		if err := ds.Store.Put(key, initial[key], 1); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}

	// Closed-loop traffic from every client for 20 virtual seconds:
	// enough that the crash at t=4s lands mid-Phase2 for several
	// transactions and recovery has to finish them.
	deadline := w.net.Now().Add(20 * time.Second)
	acked := 0
	var loop func(ci int)
	loop = func(ci int) {
		if !w.net.Now().Before(deadline) {
			return
		}
		clients[ci].Commit([]record.Update{
			record.Commutative(key, map[string]int64{"bal": 1}),
		}, func(bool) {
			acked++
			loop(ci)
		})
	}
	for ci := range clients {
		ci := ci
		w.net.At(0, func() { loop(ci) })
	}

	const victim = 1 // us-east replica
	w.net.At(4*time.Second, func() { w.crash(victim) })
	w.net.At(10*time.Second, func() { w.restart(victim) })

	w.net.RunFor(20 * time.Second)
	// Quiesce: in-flight commits settle, sweeps rebroadcast lost
	// visibility, anti-entropy catches the restarted replica up.
	w.net.RunFor(20 * time.Second)

	commits, aborts := hist.Summary()
	if commits == 0 {
		t.Fatal("no transaction committed")
	}
	t.Logf("acked=%d commits=%d aborts=%d", acked, commits, aborts)

	// The WAL must have restored committed state at reboot: the
	// restarted replica's version can only have grown from what it
	// crashed with, and after anti-entropy it matches its peers.
	final := func(k record.Key) (record.Value, record.Version, bool) {
		var bv record.Value
		var bver record.Version
		found := false
		for _, ds := range w.durables {
			v, ver, ok := ds.Store.Get(k)
			if ok && (!found || ver > bver) {
				bv, bver, found = v, ver, true
			}
		}
		return bv, bver, found
	}
	if errs := hist.Validate(initial, final, nil); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("invariant: %v", e)
		}
	}
	_, wantVer, _ := final(key)
	v, ver, ok := w.durables[victim].Store.Get(key)
	if !ok || ver != wantVer {
		t.Errorf("restarted replica did not catch up: ver=%d want %d (ok=%v)", ver, wantVer, ok)
	}
	if want := int64(100) + int64(commits); v.Attr("bal") != want {
		t.Errorf("restarted replica bal=%d, want %d", v.Attr("bal"), want)
	}
}

// TestRestartReplaysDecisionLog asserts the restart-idempotence the
// decision oplog exists for: a commutative option executed before the
// crash must not be applied a second time when its visibility is
// re-delivered to the restarted incarnation.
func TestRestartReplaysDecisionLog(t *testing.T) {
	w := newDurableWorld(t, 3)
	key := record.Key("acct/y")
	for _, ds := range w.durables {
		if err := ds.Store.Put(key, record.Value{Attrs: map[string]int64{"bal": 10}}, 1); err != nil {
			t.Fatalf("preload: %v", err)
		}
	}
	var res *CommitResult
	opt := record.Commutative(key, map[string]int64{"bal": 5})
	w.coords[0].Commit([]record.Update{opt}, func(r CommitResult) { res = &r })
	if !w.net.RunUntil(func() bool { return res != nil }, time.Minute) || !res.Committed {
		t.Fatalf("commit did not settle: %+v", res)
	}
	w.net.RunFor(3 * time.Second) // visibility lands everywhere

	const victim = 2
	v, ver, _ := w.durables[victim].Store.Get(key)
	if v.Attr("bal") != 15 || ver != 2 {
		t.Fatalf("pre-crash state bal=%d ver=%d, want 15/2", v.Attr("bal"), ver)
	}
	w.crash(victim)
	w.restart(victim)

	// Replayed from WAL: committed value and version survive.
	v, ver, _ = w.durables[victim].Store.Get(key)
	if v.Attr("bal") != 15 || ver != 2 {
		t.Fatalf("WAL replay lost state: bal=%d ver=%d, want 15/2", v.Attr("bal"), ver)
	}

	// Re-deliver the visibility the incarnation already executed; the
	// replayed decision log must swallow it.
	id := w.cl.Storage[victim].ID
	w.net.Send(w.cl.Clients[0].ID, id, MsgVisibility{
		Opt:    Option{Tx: res.Tx, Coord: w.cl.Clients[0].ID, Update: opt},
		Commit: true,
	})
	w.net.RunFor(2 * time.Second)
	v, ver, _ = w.durables[victim].Store.Get(key)
	if v.Attr("bal") != 15 || ver != 2 {
		t.Errorf("duplicate visibility re-applied after restart: bal=%d ver=%d, want 15/2", v.Attr("bal"), ver)
	}
}
