// Package wal implements a write-ahead log: an append-only sequence of
// length-prefixed, CRC32-checksummed records in segment files. Storage
// nodes log learned options and executed updates through it so a node
// restart replays to the pre-crash state (the durability role BDB's
// own log plays in the paper's prototype).
//
// Record framing:
//
//	uint32 length | uint32 crc32(length‖payload) | payload bytes
//
// The CRC covers the length prefix so an all-zero frame (zeroed
// garbage after a crash) can never parse as a valid empty record.
// Torn tails (partial final record after a crash) are detected by
// length/CRC mismatch and truncated on open.
//
// Durability modes: by default every Append fsyncs before returning.
// With Options.GroupCommit concurrent appenders coalesce into one
// fsync (leader/follower batching: the first appender of a batch runs
// the sync, everyone who wrote while it was in flight rides the next
// one), each Append still returning only once its record is durable.
// Options.NoSync drops fsync entirely for harnesses that model
// durability instead of paying for it. A failed fsync poisons the log
// (fsyncgate semantics): the kernel may have dropped the dirty pages,
// so no later sync can retroactively make the lost writes durable —
// every subsequent Append fails with the original error until the log
// is reopened.
//
// Checkpoint support: Cut() seals the active segment so a snapshot can
// name "everything below segment N", TruncateBefore(n) deletes sealed
// segments once a snapshot covers them, and ReplayFrom(n) replays only
// the tail a snapshot does not cover. Options.Faults injects disk
// faults (sync failure, torn write, bit flip, stuck-disk latency)
// under all of it for crash-recovery testing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	headerSize = 8
	segPrefix  = "wal-"
	segSuffix  = ".seg"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt is returned when a record fails its CRC in the middle of
// a segment (a torn tail is silently truncated instead).
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrDiskFault marks an injected disk failure (see Faults). Callers
// must treat it exactly like a real I/O error: the append was not made
// durable and must not be acknowledged.
var ErrDiskFault = errors.New("wal: disk fault")

// frameCRC checksums the length prefix together with the payload, so
// zeroed garbage (length 0, crc 0) never validates as an empty record.
func frameCRC(lengthLE []byte, payload []byte) uint32 {
	return crc32.Update(crc32.ChecksumIEEE(lengthLE[:4]), crc32.IEEETable, payload)
}

// Options configures a Log.
type Options struct {
	// SegmentSize is the byte threshold after which appends roll over
	// to a new segment file. Zero means 4 MiB.
	SegmentSize int64
	// NoSync disables fsync after append (used by tests and by the
	// simulator harness where durability is modeled, not real).
	NoSync bool
	// GroupCommit coalesces concurrent appends into one fsync: the
	// first appender of a batch becomes the sync leader, appenders that
	// write while its fsync is in flight are acknowledged by the next
	// one. Each Append still returns only after a sync covering its
	// record. No effect under NoSync.
	GroupCommit bool
	// MaxStall is an optional bounded wait the group-commit leader adds
	// before syncing, trading that much commit latency for larger
	// batches under light concurrency. Zero means sync immediately
	// (batches then form only from appends that arrive while a sync is
	// already in flight, which is the right default under load).
	MaxStall time.Duration
	// Faults, when non-nil, injects disk faults under this log (shared
	// between several logs to model one failing disk). See Faults.
	Faults *Faults
}

// Log is an append-only segmented log. Safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast when a group-commit sync batch drains
	dir     string
	opts    Options
	seg     *os.File
	segIdx  int
	segSize int64
	closed  bool
	failed  error // sticky first durability failure; cleared only by reopening
	appends int64
	frame   []byte // reused frame build buffer

	// Group-commit state: appenders queue an ack channel in pending;
	// syncing is true while a leader goroutine owns the fsync.
	pending        []chan error
	syncing        bool
	nSyncs         int64
	nSyncedAppends int64
	maxBatch       int64
}

// Open opens (creating if necessary) a log in dir and truncates any
// torn tail in the newest segment. Only an invalid region that runs to
// end-of-file is a torn tail: a checksum-failing record with data
// after it is bit rot mid-segment and reported as ErrCorrupt —
// truncating there would silently drop the valid records behind it.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	if len(segs) == 0 {
		if err := l.rollLocked(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	valid, err := validPrefixLen(filepath.Join(dir, segName(last)))
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.seg = f
	l.segIdx = last
	l.segSize = valid
	return l, nil
}

// Append writes one record and (unless NoSync) returns only once a
// sync covering it has completed. After any durability failure the log
// is poisoned: every later Append returns the original error until the
// log is reopened.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	// Roll only while no sync is in flight: the leader fsyncs l.seg
	// outside the lock, so the file must not be swapped under it
	// (segments may overshoot SegmentSize by one in-flight batch).
	if l.segSize >= l.opts.SegmentSize && !l.syncing && len(l.pending) == 0 {
		if err := l.rollLocked(l.segIdx + 1); err != nil {
			l.mu.Unlock()
			return err
		}
	}
	// Build the whole frame in one reused buffer: one write syscall,
	// and fault injection needs byte-level control over what reaches
	// the file.
	f := l.opts.Faults
	need := headerSize + len(payload)
	if cap(l.frame) < need {
		l.frame = make([]byte, need)
	}
	frame := l.frame[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], frameCRC(frame[0:4], payload))
	copy(frame[headerSize:], payload)
	if f.takeFlip() && len(payload) > 0 {
		// The CRC above was computed on the clean payload, so the flip
		// is silent now and a typed ErrCorrupt on replay.
		frame[headerSize+len(payload)/2] ^= 0x10
	}
	if n, ok := f.takeTorn(); ok {
		// A torn write models the disk dying mid-frame: part of the
		// record reaches the file, the append fails, and the log is
		// poisoned exactly like a failed sync.
		if n > len(frame) {
			n = len(frame)
		}
		l.seg.Write(frame[:n])
		l.segSize += int64(n)
		l.failed = fmt.Errorf("wal: torn write (%d of %d bytes): %w", n, len(frame), ErrDiskFault)
		err := l.failed
		l.mu.Unlock()
		return err
	}
	if _, err := l.seg.Write(frame); err != nil {
		l.failed = fmt.Errorf("wal: append: %w", err)
		err = l.failed
		l.mu.Unlock()
		return err
	}
	l.segSize += int64(need)
	l.appends++
	switch {
	case l.opts.NoSync:
		// Durability is modeled, but faults still apply: a disk whose
		// syncs fail must refuse the append loudly even when the
		// harness never pays for real fsync.
		if f.failSyncNow() {
			l.failed = fmt.Errorf("wal: sync: %w", ErrDiskFault)
			err := l.failed
			l.mu.Unlock()
			return err
		}
		d := f.delay()
		l.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		return nil
	case l.opts.GroupCommit:
		ch := make(chan error, 1)
		l.pending = append(l.pending, ch)
		if !l.syncing {
			l.syncing = true
			go l.syncLeader()
		}
		l.mu.Unlock()
		return <-ch
	default:
		err := l.syncLocked()
		l.mu.Unlock()
		return err
	}
}

// syncLocked runs the unbatched fsync path (mu held). The fault
// delay sleeps with mu held — exactly what a stuck disk does to a
// log whose committers all funnel through one fsync.
func (l *Log) syncLocked() error {
	f := l.opts.Faults
	if d := f.delay(); d > 0 {
		time.Sleep(d)
	}
	var err error
	if f.failSyncNow() {
		err = fmt.Errorf("wal: sync: %w", ErrDiskFault)
	} else if serr := l.seg.Sync(); serr != nil {
		err = fmt.Errorf("wal: sync: %w", serr)
	}
	l.nSyncs++
	l.nSyncedAppends++
	if l.maxBatch < 1 {
		l.maxBatch = 1
	}
	if err != nil {
		l.failed = err
	}
	return err
}

// syncLeader is the group-commit leader: it snapshots the waiters that
// queued so far, fsyncs once for all of them, and hands the baton to a
// new leader if more appends arrived while its fsync was in flight.
func (l *Log) syncLeader() {
	if l.opts.MaxStall > 0 {
		time.Sleep(l.opts.MaxStall)
	}
	l.mu.Lock()
	waiters := l.pending
	l.pending = nil
	seg := l.seg
	f := l.opts.Faults
	l.mu.Unlock()

	var err error
	if f.failSyncNow() {
		err = fmt.Errorf("wal: sync: %w", ErrDiskFault)
	} else {
		if d := f.delay(); d > 0 {
			time.Sleep(d)
		}
		if serr := seg.Sync(); serr != nil {
			err = fmt.Errorf("wal: sync: %w", serr)
		}
	}

	l.mu.Lock()
	l.nSyncs++
	l.nSyncedAppends += int64(len(waiters))
	if int64(len(waiters)) > l.maxBatch {
		l.maxBatch = int64(len(waiters))
	}
	if err != nil {
		l.failed = err
		// Poisoned: records queued behind the failed sync were never
		// made durable either; fail them all rather than pretend a
		// later fsync could cover them.
		waiters = append(waiters, l.pending...)
		l.pending = nil
	}
	if len(l.pending) > 0 {
		go l.syncLeader()
	} else {
		l.syncing = false
		l.cond.Broadcast()
	}
	l.mu.Unlock()

	for _, ch := range waiters {
		ch <- err
	}
}

// drainSyncLocked blocks (mu held, via cond) until no group-commit
// sync is in flight.
func (l *Log) drainSyncLocked() {
	for l.syncing {
		l.cond.Wait()
	}
}

// Appends returns the number of records appended through this handle.
func (l *Log) Appends() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}

// Stats is a point-in-time snapshot of the log's durability counters
// and on-disk footprint.
type Stats struct {
	Appends int64
	// Syncs counts fsync batches; SyncedAppends the appends they
	// covered (SyncedAppends/Syncs is the group-commit fan-in);
	// MaxBatch the largest single batch.
	Syncs         int64
	SyncedAppends int64
	MaxBatch      int64
	// ActiveSegment is the index appends currently go to; Segments and
	// LiveBytes the on-disk footprint (what TruncateBefore has not yet
	// reclaimed).
	ActiveSegment int
	Segments      int
	LiveBytes     int64
	// Failed reports the poisoned state (a durability failure latched
	// until reopen).
	Failed bool
}

// Stats reports the log's counters and on-disk footprint.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Appends:       l.appends,
		Syncs:         l.nSyncs,
		SyncedAppends: l.nSyncedAppends,
		MaxBatch:      l.maxBatch,
		ActiveSegment: l.segIdx,
		Failed:        l.failed != nil,
	}
	dir := l.dir
	l.mu.Unlock()
	if segs, err := listSegments(dir); err == nil {
		s.Segments = len(segs)
		for _, idx := range segs {
			if fi, err := os.Stat(filepath.Join(dir, segName(idx))); err == nil {
				s.LiveBytes += fi.Size()
			}
		}
	}
	return s
}

// Replay calls fn for every record in log order. It must not be
// called concurrently with Append.
func (l *Log) Replay(fn func(payload []byte) error) error {
	return l.ReplayFrom(0, fn)
}

// ReplayFrom calls fn for every record in segments >= from, in log
// order — the bounded tail replay after recovering from a snapshot
// whose cut is from. It must not be called concurrently with Append.
func (l *Log) ReplayFrom(from int, fn func(payload []byte) error) error {
	l.mu.Lock()
	l.drainSyncLocked()
	dir := l.dir
	l.mu.Unlock()
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx < from {
			continue
		}
		if err := replaySegment(filepath.Join(dir, segName(idx)), idx == segs[len(segs)-1], fn); err != nil {
			return err
		}
	}
	return nil
}

// Cut seals the active segment and starts a new one, returning the new
// active segment index: every record appended so far lives in segments
// below it. A snapshot taken after Cut covers exactly those segments,
// making TruncateBefore(cut-of-an-older-snapshot) safe. An empty
// active segment is reused as the cut.
func (l *Log) Cut() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	l.drainSyncLocked()
	if l.closed {
		return 0, ErrClosed
	}
	if l.segSize == 0 {
		return l.segIdx, nil
	}
	if err := l.rollLocked(l.segIdx + 1); err != nil {
		return 0, err
	}
	return l.segIdx, nil
}

// TruncateBefore deletes sealed segments with index < seg (never the
// active one). Call it only once a durable snapshot covers them.
func (l *Log) TruncateBefore(seg int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if idx >= seg || idx == l.segIdx {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil {
			return fmt.Errorf("wal: truncate-before: %w", err)
		}
	}
	return nil
}

// Truncate discards all log contents (after a checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.drainSyncLocked()
	if l.seg != nil {
		l.seg.Close()
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := os.Remove(filepath.Join(l.dir, segName(idx))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return l.rollLocked(0)
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.drainSyncLocked()
	if l.seg == nil {
		return nil
	}
	if !l.opts.NoSync && l.failed == nil {
		if err := l.seg.Sync(); err != nil {
			l.seg.Close()
			return err
		}
	}
	return l.seg.Close()
}

func (l *Log) rollLocked(idx int) error {
	if l.seg != nil {
		if !l.opts.NoSync && l.failed == nil {
			if err := l.seg.Sync(); err != nil {
				return fmt.Errorf("wal: roll sync: %w", err)
			}
		}
		l.seg.Close()
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(idx)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: roll: %w", err)
	}
	l.seg = f
	l.segIdx = idx
	l.segSize = 0
	return nil
}

func segName(idx int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, idx, segSuffix)
}

// Segments returns the segment indexes present in dir, ascending
// (exported for harnesses that corrupt segments on purpose).
func Segments(dir string) ([]int, error) {
	return listSegments(dir)
}

// SegmentPath returns the file path of segment idx in dir.
func SegmentPath(dir string, idx int) string {
	return filepath.Join(dir, segName(idx))
}

func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// validPrefixLen scans a segment and returns the byte length of the
// longest valid record prefix.
func validPrefixLen(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	var off int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		// A length beyond the file is a torn or garbage header — never
		// allocate on its say-so.
		if off+headerSize+int64(length) > size {
			return off, nil
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(f, buf); err != nil {
			return off, nil // torn payload
		}
		if frameCRC(hdr[0:4], buf) != want {
			// A complete frame with a bad checksum and data after it
			// cannot be a torn append (a tear only ever shortens the
			// file): it is bit rot mid-segment. Truncating here would
			// silently drop the valid records behind it, so surface the
			// typed corruption instead.
			if off+headerSize+int64(length) < size {
				return 0, fmt.Errorf("%w: bad crc mid-segment in %s", ErrCorrupt, path)
			}
			return off, nil // corrupt final record: torn tail
		}
		off += int64(headerSize) + int64(length)
	}
}

// replaySegment streams records of one segment into fn. For the final
// (active) segment a torn tail is tolerated; for older segments any
// corruption is an error.
func replaySegment(path string, tolerateTail bool, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	var off int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: torn header in %s", ErrCorrupt, path)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if off+headerSize+int64(length) > size {
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: oversized record length in %s", ErrCorrupt, path)
		}
		buf := make([]byte, length)
		if _, err := io.ReadFull(f, buf); err != nil {
			if tolerateTail {
				return nil
			}
			return fmt.Errorf("%w: torn payload in %s", ErrCorrupt, path)
		}
		if frameCRC(hdr[0:4], buf) != want {
			// Same rule as validPrefixLen: in the active segment only a
			// corrupt FINAL record is a tolerable torn tail; a bad
			// checksum with records behind it is mid-segment bit rot.
			if tolerateTail && off+headerSize+int64(length) == size {
				return nil
			}
			return fmt.Errorf("%w: bad crc in %s", ErrCorrupt, path)
		}
		off += headerSize + int64(length)
		if err := fn(buf); err != nil {
			return err
		}
	}
}
