//go:build notrace

package trace

// Built is false under `-tags notrace`: recording bodies compile to
// nothing and the recorder becomes a pure pass-through.
const Built = false
