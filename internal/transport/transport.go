// Package transport defines how protocol nodes exchange messages and
// schedule timers, independent of whether the network is the
// discrete-event simulator (internal/simnet), in-process channels with
// injected latency (this package's Local), or real TCP sockets
// (this package's tcp.go).
//
// Concurrency contract: each node's handler and its After callbacks
// are invoked serially, so node state needs no internal locking as
// long as it is only touched from handlers/timers. This matches the
// single-threaded simulator and is enforced with per-node run loops
// in the real-time transports.
package transport

import (
	"sync/atomic"
	"time"

	"mdcc/internal/clock"
)

// NodeID names an endpoint ("dc1/store0", "client17", ...).
type NodeID string

// Message is a protocol payload. Concrete message types used over TCP
// must be registered with RegisterMessage.
type Message interface{}

// Envelope is a routed message.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  Message
	// TraceClk is the sender's flight-recorder Lamport stamp, taken at
	// Send (or, for Batch items, when the item was buffered). Zero when
	// tracing is off. Receivers merge it into their own recorder's
	// clock so cross-process timelines stay causally ordered; gob
	// ships it like any other field.
	TraceClk uint64
}

// WireTracer is the hook a flight recorder (internal/trace.Recorder)
// implements so transports can propagate causal clocks on the wire:
// StampSend ticks the local Lamport clock and returns the stamp for an
// outgoing envelope; ObserveRecv folds a received stamp back in
// (clock = max(clock, stamp)). Implementations must be safe for
// concurrent use and cheap enough for every message.
type WireTracer interface {
	StampSend() uint64
	ObserveRecv(clk uint64)
}

// Handler consumes messages delivered to one node.
type Handler func(env Envelope)

// Network routes messages between registered nodes and schedules
// timers serialized with a node's handler.
type Network interface {
	// Register installs the handler for a node. Must be called before
	// messages are sent to it. Re-registering replaces the handler.
	Register(id NodeID, h Handler)

	// Send routes msg from one node to another. Delivery is
	// asynchronous, unordered across pairs, and may silently drop
	// (simnet failure injection; closed TCP peers).
	Send(from, to NodeID, msg Message)

	// After schedules f to run on node `on` after d, serialized with
	// that node's handler.
	After(on NodeID, d time.Duration, f func()) clock.Timer

	// Now returns the network's current (possibly virtual) time.
	Now() time.Time
}

// Batch is a coalesced envelope: independent protocol messages —
// often from different senders and different transactions — bound for
// the same destination node, shipped as one wire message. The gateway
// tier's batching layer produces these (generalizing the paper's §7
// per-transaction batching across transactions); internal/core's
// message dispatch unpacks them, delivering each item with its own
// original From. Items preserve send order.
type Batch struct {
	Items []Envelope
}

// Stats counts transport-level activity. The real-time transports
// (Local, TCP) maintain these; byte counts are TCP-only (Local never
// serializes).
type Stats struct {
	// MsgsSent / MsgsReceived count envelopes handed to Send and
	// delivered to local handlers (a Batch counts once; its contents
	// are the Batched* counters).
	MsgsSent     int64 `json:"msgsSent"`
	MsgsReceived int64 `json:"msgsReceived"`
	// BatchesSent / BatchesReceived count Batch envelopes, and
	// BatchedSent / BatchedReceived the messages carried inside them.
	BatchesSent     int64 `json:"batchesSent"`
	BatchesReceived int64 `json:"batchesReceived"`
	BatchedSent     int64 `json:"batchedSent"`
	BatchedReceived int64 `json:"batchedReceived"`
	// BytesSent / BytesReceived count wire bytes (TCP only).
	BytesSent     int64 `json:"bytesSent"`
	BytesReceived int64 `json:"bytesReceived"`
	// Dropped* count messages Send discarded instead of enqueueing
	// (TCP only): no routing-table entry, the peer's outbound queue
	// full, or its connection torn down. Dropped messages are NOT
	// counted in MsgsSent — only what actually reached a queue or a
	// local mailbox is.
	DroppedNoRoute   int64 `json:"droppedNoRoute"`
	DroppedQueueFull int64 `json:"droppedQueueFull"`
	DroppedConnDown  int64 `json:"droppedConnDown"`
}

// statCounters is the internal atomic mirror of Stats shared by the
// real-time transports.
type statCounters struct {
	msgsSent, msgsReceived           atomic.Int64
	batchesSent, batchesReceived     atomic.Int64
	batchedSent, batchedReceived     atomic.Int64
	bytesSent, bytesReceived         atomic.Int64
	droppedNoRoute, droppedQueueFull atomic.Int64
	droppedConnDown                  atomic.Int64
}

func (c *statCounters) countSend(msg Message) {
	c.msgsSent.Add(1)
	if b, ok := msg.(Batch); ok {
		c.batchesSent.Add(1)
		c.batchedSent.Add(int64(len(b.Items)))
	}
}

func (c *statCounters) countReceive(msg Message) {
	c.msgsReceived.Add(1)
	if b, ok := msg.(Batch); ok {
		c.batchesReceived.Add(1)
		c.batchedReceived.Add(int64(len(b.Items)))
	}
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		MsgsSent:         c.msgsSent.Load(),
		MsgsReceived:     c.msgsReceived.Load(),
		BatchesSent:      c.batchesSent.Load(),
		BatchesReceived:  c.batchesReceived.Load(),
		BatchedSent:      c.batchedSent.Load(),
		BatchedReceived:  c.batchedReceived.Load(),
		BytesSent:        c.bytesSent.Load(),
		BytesReceived:    c.bytesReceived.Load(),
		DroppedNoRoute:   c.droppedNoRoute.Load(),
		DroppedQueueFull: c.droppedQueueFull.Load(),
		DroppedConnDown:  c.droppedConnDown.Load(),
	}
}
