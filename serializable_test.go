package mdcc

import (
	"sync"
	"testing"
)

// The classic write-skew anomaly: two doctors are on call; each
// transaction reads both records and, if the other is still on call,
// takes itself off. Under read committed both can commit (leaving
// nobody on call); with read-set validation (§4.4) at most one may.
func TestWriteSkewPreventedBySerializable(t *testing.T) {
	offCalls := 0 // anti-vacuity: someone must actually go off call
	for seed := int64(0); seed < 6; seed++ {
		c := startTestCluster(t, ClusterConfig{Seed: seed})
		s := c.Session(USWest)
		ok, err := s.Commit(
			Insert("oncall/alice", Value{Attrs: map[string]int64{"oncall": 1}}),
			Insert("oncall/bob", Value{Attrs: map[string]int64{"oncall": 1}}),
		)
		if err != nil || !ok {
			t.Fatalf("setup: %v %v", ok, err)
		}
		// Event-driven setup wait (a fixed spin count flakes under -race
		// load when asynchronous visibility takes longer than the spins).
		waitFor(t, "on-call setup visibility", func() bool {
			a, _, okA, _ := s.Read("oncall/alice")
			b, _, okB, _ := s.Read("oncall/bob")
			return okA && okB && a.Attr("oncall") == 1 && b.Attr("oncall") == 1
		})

		// goOffCall reports whether the doctor actually went off call:
		// the transaction committed AND contained the self-write. A
		// racer that loses the race cleanly — it reads the peer already
		// off call and declines to write — still commits (a read-check-
		// only transaction), which is NOT the anomaly; counting bare
		// commit success here was this test's historic flake: under
		// -race scheduling the two "racers" often run back to back, the
		// second legitimately commits empty, and the test cried write
		// skew with the database in a perfectly legal state.
		goOffCall := func(sess *Session, self, other Key) bool {
			wrote := false
			ok, err := sess.TransactSerializable(1, func(tx *TxView) error {
				wrote = false
				me, myVer, _ := tx.Read(self)
				peer, _, _ := tx.Read(other)
				if peer.Attr("oncall") == 1 {
					tx.Write(self, myVer, me.WithAttr("oncall", 0))
					wrote = true
				}
				return nil
			})
			if err != nil {
				// A transient timeout under heavy machine load reports an
				// unknown outcome, not a committed one; it cannot witness
				// the write-skew anomaly, so treat it as "did not go off
				// call" rather than failing the harness.
				t.Logf("seed %d: transient commit error: %v", seed, err)
				return false
			}
			return ok && wrote
		}

		var wg sync.WaitGroup
		var okAlice, okBob bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			okAlice = goOffCall(c.Session(USWest), "oncall/alice", "oncall/bob")
		}()
		go func() {
			defer wg.Done()
			okBob = goOffCall(c.Session(APTokyo), "oncall/bob", "oncall/alice")
		}()
		wg.Wait()

		if okAlice && okBob {
			t.Fatalf("seed %d: write skew — both doctors went off call", seed)
		}
		// Check the database itself too, not just the reported
		// outcomes: even if a slow commit was reported as a timeout
		// above, the final state must never show both off call.
		waitFor(t, "post-run visibility", func() bool {
			_, verA, okA, _ := s.Read("oncall/alice")
			_, verB, okB, _ := s.Read("oncall/bob")
			wantA, wantB := Version(1), Version(1)
			if okAlice {
				wantA = 2
			}
			if okBob {
				wantB = 2
			}
			return okA && okB && verA >= wantA && verB >= wantB
		})
		a, _, _, _ := s.Read("oncall/alice")
		b, _, _, _ := s.Read("oncall/bob")
		if a.Attr("oncall") == 0 && b.Attr("oncall") == 0 {
			t.Fatalf("seed %d: write skew in final state — nobody on call", seed)
		}
		if okAlice || okBob {
			offCalls++
		}
		c.Close()
	}
	// Tolerating transient commit errors above must not let a
	// regression that fails EVERY serializable commit pass vacuously:
	// across six seeds, at least one racer must have actually won.
	if offCalls == 0 {
		t.Fatal("no racer ever went off call across all seeds — serializable commits may be failing wholesale")
	}
}

// Read checks commit when nothing changed and abort when the read-set
// was invalidated.
func TestReadCheckSemantics(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("rc/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	var ver Version
	for i := 0; i < 200; i++ {
		var exists bool
		_, ver, exists, _ = s.Read("rc/1")
		if exists {
			break
		}
	}
	// Valid read check commits (and does not bump the version).
	if ok, err := s.Commit(ReadCheck("rc/1", ver)); err != nil || !ok {
		t.Fatalf("valid read check: %v %v", ok, err)
	}
	_, ver2, _, _ := s.Read("rc/1")
	if ver2 != ver {
		t.Fatalf("read check bumped version %d -> %d", ver, ver2)
	}
	// Invalidate and recheck.
	v, _, _, _ := s.Read("rc/1")
	if ok, _ := s.Commit(Physical("rc/1", ver, v.WithAttr("x", 2))); !ok {
		t.Fatal("update failed")
	}
	for i := 0; i < 200; i++ {
		if _, nv, _, _ := s.Read("rc/1"); nv > ver {
			break
		}
	}
	if ok, _ := s.Commit(ReadCheck("rc/1", ver)); ok {
		t.Fatal("stale read check committed")
	}
}

// A transaction mixing a read check with a write is atomic: the write
// must not apply when the check fails.
func TestReadCheckGuardsWrites(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USEast)
	if ok, _ := s.Commit(
		Insert("g/data", Value{Attrs: map[string]int64{"x": 1}}),
		Insert("g/out", Value{Attrs: map[string]int64{"sum": 0}}),
	); !ok {
		t.Fatal("setup failed")
	}
	var dataVer, outVer Version
	for i := 0; i < 200; i++ {
		var ok1, ok2 bool
		_, dataVer, ok1, _ = s.Read("g/data")
		_, outVer, ok2, _ = s.Read("g/out")
		if ok1 && ok2 {
			break
		}
	}
	// Invalidate g/data.
	v, _, _, _ := s.Read("g/data")
	if ok, _ := s.Commit(Physical("g/data", dataVer, v.WithAttr("x", 2))); !ok {
		t.Fatal("invalidation failed")
	}
	for i := 0; i < 200; i++ {
		if _, nv, _, _ := s.Read("g/data"); nv > dataVer {
			break
		}
	}
	// Now try to write g/out guarded by the stale read of g/data.
	out, _, _, _ := s.Read("g/out")
	ok, _ := s.Commit(
		ReadCheck("g/data", dataVer),
		Physical("g/out", outVer, out.WithAttr("sum", 99)),
	)
	if ok {
		t.Fatal("transaction with a failed read check committed")
	}
	for i := 0; i < 50; i++ {
		if o, _, _, _ := s.Read("g/out"); o.Attr("sum") == 99 {
			t.Fatal("guarded write leaked despite failed read check")
		}
	}
}
