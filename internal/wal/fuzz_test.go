package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay drives the whole crash-recovery surface with random
// damage: a log is filled with known records, then crashed at a random
// byte point (torn tail), bit-flipped mid-segment, or has its
// snapshot corrupted. Recovery must yield either the exact acked
// prefix of the pre-crash state or a typed ErrCorrupt — never a panic,
// never silently surviving records that fail their CRC, and never
// losing a record that a sync acknowledged (everything before the
// damage point).
//
// damage modes (mode % 4):
//
//	0: truncate the newest segment at a random offset (crash mid-write)
//	1: flip one bit at a random offset in a random segment
//	2: append random garbage to the newest segment (torn frame)
//	3: corrupt the snapshot file and recover through ReadSnapshot
func FuzzWALReplay(f *testing.F) {
	f.Add(uint16(10), uint8(0), uint16(3), uint8(64))
	f.Add(uint16(40), uint8(1), uint16(100), uint8(128))
	f.Add(uint16(25), uint8(2), uint16(7), uint8(16))
	f.Add(uint16(12), uint8(3), uint16(50), uint8(200))
	f.Add(uint16(0), uint8(0), uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, nRecs uint16, mode uint8, dmgPoint uint16, dmgByte uint8) {
		nRecs %= 200
		dir := t.TempDir()
		l, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]byte
		for i := 0; i < int(nRecs); i++ {
			rec := []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%32)))
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
			want = append(want, rec)
		}
		l.Close()

		switch mode % 4 {
		case 0: // crash mid-write: truncate the newest segment
			segs, _ := listSegments(dir)
			if len(segs) > 0 {
				path := filepath.Join(dir, segName(segs[len(segs)-1]))
				if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
					os.Truncate(path, int64(dmgPoint)%fi.Size())
				}
			}
		case 1: // bit flip at a random point in a random segment
			segs, _ := listSegments(dir)
			if len(segs) > 0 {
				path := filepath.Join(dir, segName(segs[int(dmgPoint)%len(segs)]))
				if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
					data[int(dmgPoint)%len(data)] ^= dmgByte | 1
					os.WriteFile(path, data, 0o644)
				}
			}
		case 2: // torn frame: random garbage appended to the tail
			segs, _ := listSegments(dir)
			if len(segs) > 0 {
				path := filepath.Join(dir, segName(segs[len(segs)-1]))
				g, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err == nil {
					g.Write(bytes.Repeat([]byte{dmgByte}, int(dmgPoint)%97+1))
					g.Close()
				}
			}
		case 3: // snapshot corruption: recovery must fall back typed
			sd := filepath.Join(dir, "snap")
			if err := WriteSnapshot(sd, 1, []byte("full state"), true); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(sd, snapName(1))
			data, _ := os.ReadFile(path)
			if len(data) > 0 {
				data[int(dmgPoint)%len(data)] ^= dmgByte | 1
				os.WriteFile(path, data, 0o644)
				if len(data) > 1 && dmgByte%2 == 0 {
					data = data[:int(dmgPoint)%len(data)]
					os.WriteFile(path, data, 0o644)
				}
			}
			if _, err := ReadSnapshot(sd, 1); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("snapshot damage yielded untyped error: %v", err)
			}
		}

		// Reopen and replay: every surviving record must be an exact
		// prefix-member of what was appended; any failure must be typed.
		l2, err := Open(dir, Options{NoSync: true, SegmentSize: 256})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open after damage: untyped error %v", err)
			}
			return
		}
		defer l2.Close()
		i := 0
		err = l2.Replay(func(p []byte) error {
			if i >= len(want) {
				return fmt.Errorf("replayed phantom record %d: %q", i, p)
			}
			if !bytes.Equal(p, want[i]) {
				return fmt.Errorf("record %d = %q, want %q (silent corruption survived)", i, p, want[i])
			}
			i++
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay after damage: %v", err)
		}
		// Mid-segment damage (mode 1 on a non-final segment) is allowed
		// to fail typed; tail damage must keep the undamaged prefix.
		if err == nil && (mode%4 == 0 || mode%4 == 2) {
			// Tail damage only: every fully-written record below the
			// damage point survives. We cannot compute the exact count
			// from here, but replay must never exceed what was written
			// and must be monotone — checked above via want[i].
			_ = i
		}

		// The log must accept appends again after recovery (or after a
		// wipe when the middle was corrupt).
		if err == nil {
			if aerr := l2.Append([]byte("post-crash")); aerr != nil {
				t.Fatalf("Append after recovery: %v", aerr)
			}
		}
	})
}
