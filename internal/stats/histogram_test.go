package stats

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"sort"
	"testing"
)

// TestHistogramBucketBoundaries pins the indexing scheme: unit buckets
// below 2^subBits, then power-of-two majors split into 2^subBits
// sub-buckets, upper edges consistent with the mapping.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(5)
	// Unit region is exact.
	for v := int64(0); v < 32; v++ {
		if got := h.bucket(v); got != int(v) {
			t.Fatalf("bucket(%d) = %d, want %d", v, got, v)
		}
		if got := h.bucketHigh(int(v)); got != v {
			t.Fatalf("bucketHigh(%d) = %d, want %d", v, got, v)
		}
	}
	// Every value maps into a bucket whose [.., high] range contains it
	// with relative width ≤ 1/2^subBits.
	for _, v := range []int64{32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := h.bucket(v)
		high := h.bucketHigh(i)
		if high < v {
			t.Fatalf("value %d: bucket %d upper edge %d < value", v, i, high)
		}
		if float64(high-v) > float64(v)/32+1 {
			t.Fatalf("value %d: bucket %d upper edge %d exceeds relative error bound", v, i, high)
		}
		// Monotone: the next bucket's upper edge is strictly larger.
		if i+1 < len(h.Counts) && h.bucketHigh(i+1) <= high {
			t.Fatalf("bucketHigh not monotone at %d", i)
		}
	}
	if h.bucket(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestHistogramQuantileErrorBound checks quantiles against the exact
// order statistics of a random population: always ≥ the true value and
// within the geometry's relative error.
func TestHistogramQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(5)
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1 << uint(10+rng.Intn(30)))
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(q*float64(len(vals)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q%.3f: histogram %d under-reports exact %d", q, got, exact)
		}
		bound := float64(exact)*(1+1.0/32) + 1
		if float64(got) > bound {
			t.Fatalf("q%.3f: histogram %d exceeds error bound %.0f (exact %d)", q, got, bound, exact)
		}
	}
	if h.Quantile(0) < vals[0] || h.Quantile(1) != h.Max {
		t.Fatalf("extreme quantiles broken: q0=%d q1=%d min=%d max=%d", h.Quantile(0), h.Quantile(1), vals[0], h.Max)
	}
}

// TestHistogramMergeAssociative verifies (a+b)+c == a+(b+c) == the
// histogram of the concatenated populations.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pop := func(n int) (*Histogram, []int64) {
		h := NewHistogram(5)
		var vs []int64
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << 24)
			vs = append(vs, v)
			h.Add(v)
		}
		return h, vs
	}
	a, va := pop(1000)
	b, vb := pop(500)
	c, vc := pop(1500)

	left := a.Clone()
	if err := left.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := a.Clone()
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	all := NewHistogram(5)
	for _, v := range append(append(append([]int64(nil), va...), vb...), vc...) {
		all.Add(v)
	}
	for name, h := range map[string]*Histogram{"left": left, "right": right} {
		if h.N != all.N || h.Sum != all.Sum || h.Min != all.Min || h.Max != all.Max {
			t.Fatalf("%s summary diverges: %+v vs %+v", name, h, all)
		}
		for i := range h.Counts {
			if h.Counts[i] != all.Counts[i] {
				t.Fatalf("%s bucket %d: %d != %d", name, i, h.Counts[i], all.Counts[i])
			}
		}
	}
	bad := NewHistogram(6)
	bad.Add(1)
	if err := a.Merge(bad); err == nil {
		t.Fatalf("merging different geometries must error")
	}
}

// TestHistogramGobRoundTrip ships a histogram through gob and checks
// it answers identically.
func TestHistogramGobRoundTrip(t *testing.T) {
	h := NewHistogram(5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Add(rng.Int63n(1 << 30))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.N != h.N || back.Sum != h.Sum || back.Min != h.Min || back.Max != h.Max {
		t.Fatalf("summary fields lost: %+v vs %+v", back, *h)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Fatalf("quantile %v diverges after round trip", q)
		}
	}
	if err := back.Merge(h); err != nil {
		t.Fatalf("round-tripped histogram must stay mergeable: %v", err)
	}
	if back.N != 2*h.N {
		t.Fatalf("merge after round trip: N=%d want %d", back.N, 2*h.N)
	}
}
