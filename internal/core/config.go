package core

import (
	"time"

	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
)

// Mode selects which protocol variant runs — the configurations
// compared in the paper's §5.3 ("MDCC", "Fast", "Multi").
type Mode int

// Protocol variants.
const (
	// ModeMDCC is the full protocol: fast ballots plus commutative
	// updates with quorum demarcation.
	ModeMDCC Mode = iota
	// ModeFast uses fast ballots but no commutative support;
	// workloads express deltas as physical read-modify-writes.
	ModeFast
	// ModeMulti runs everything through classic ballots with stable
	// per-record masters (Multi-Paxos; Phase 1 skipped).
	ModeMulti
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeMDCC:
		return "MDCC"
	case ModeFast:
		return "Fast"
	case ModeMulti:
		return "Multi"
	default:
		return "mode?"
	}
}

// Config parameterizes coordinators and storage nodes. The zero value
// is not usable; call Defaults or fill every field.
type Config struct {
	Mode Mode

	// Gamma is the number of instances forced classic after a
	// collision before fast ballots are retried (paper default 100).
	Gamma int

	// MasterDC maps a record to the data center whose replica acts
	// as the record's master (leader). Nil means uniform by key hash.
	MasterDC func(record.Key) topology.DC

	// Constraints are the value constraints acceptors enforce
	// (matched to attributes by name across all records).
	Constraints []record.Constraint

	// OptionTimeout is how long a coordinator waits for an option to
	// be learned before asking the record's leader to recover.
	OptionTimeout time.Duration

	// RecoveryRetry is the spacing of repeated recovery attempts
	// (also switching to fallback leaders in other DCs).
	RecoveryRetry time.Duration

	// PendingTimeout is how old an unresolved option must be before
	// a storage node starts dangling-transaction recovery (§3.2.3).
	// Zero disables the sweep.
	PendingTimeout time.Duration

	// ReadTimeout bounds local reads before retrying another DC.
	ReadTimeout time.Duration

	// DisableBatching turns off the §7 batching optimization
	// (grouping a transaction's proposals and visibility messages per
	// destination node); used by the batching ablation bench.
	DisableBatching bool

	// SyncInterval is the anti-entropy period: how often a storage
	// node exchanges a chunk of committed state with a random peer
	// replica to catch up after outages (§3.2.3's background
	// bulk-copy). Zero disables.
	SyncInterval time.Duration

	// FeedKeepAlive is how often a storage node proves its
	// committed-visibility feed alive to quiet subscribers (see
	// feed.go); it is the node-side half of the gateway read tier's
	// staleness bound. Zero means the 500ms default.
	FeedKeepAlive time.Duration

	// FeedFlushInterval rate-limits visibility-feed flushes: at most
	// one feed message per subscriber per interval under sustained
	// write load (the first flush after quiet goes immediately), so
	// the feed cannot tax a saturated write path. It is the feed's
	// steady-state staleness bound under load. Zero means the 10ms
	// default.
	FeedFlushInterval time.Duration

	// DecidedRetention is how long a settled option's contents stay
	// cached in the per-record decided log before becoming eligible
	// for release (zero = 2 min). Since the lineage-summary refactor
	// this is a pure cache knob: entries with a lineage identity are
	// additionally held until every peer replica's summary is known to
	// contain them, so shrinking it can cost a recovery round trip but
	// can never lose a forked apply (the seed design's §5 limitation).
	DecidedRetention time.Duration

	// KeySeqWords bounds the coordinator's per-(lane, key) sequence
	// counter map: when a coordinator has minted sequences for this
	// many distinct keys it retires the lane (bumping the TxID era) and
	// starts a fresh counter map, keeping lineage bookkeeping O(live
	// keys) instead of O(keys ever written). Zero means 4096.
	KeySeqWords int

	// ShipFullLineage additionally attaches the pre-summary decided
	// lists (with option contents) to anti-entropy and classic-phase
	// messages. The protocol ignores them on receipt; the flag exists
	// so the lineage-bytes benchmark can measure the old wire format
	// against the summary one on identical runs.
	ShipFullLineage bool

	// Tracer, when non-nil, is the transaction flight recorder every
	// coordinator and storage node appends span events to (see
	// internal/trace). Nil disables recording at the cost of one nil
	// check per instrumentation point.
	Tracer *trace.Recorder

	// CheckpointInterval is how often a durable storage node writes a
	// full-state snapshot (kv + escrow bases + lineage summaries +
	// decided cache) and truncates WAL segments an older snapshot
	// covers, bounding crash-recovery replay to the tail since the last
	// checkpoint (see checkpoint.go / DESIGN.md §12). Zero disables:
	// recovery then replays the whole log. Memory-only nodes ignore it.
	CheckpointInterval time.Duration
}

// feedKeepAlive resolves the keepalive interval.
func (c Config) feedKeepAlive() time.Duration {
	if c.FeedKeepAlive > 0 {
		return c.FeedKeepAlive
	}
	return 500 * time.Millisecond
}

// Defaults returns a Config tuned for the simulated 5-DC WAN: option
// timeouts comfortably above the worst round trip (~540 ms).
func Defaults(mode Mode) Config {
	return Config{
		Mode:           mode,
		Gamma:          100,
		OptionTimeout:  1200 * time.Millisecond,
		RecoveryRetry:  800 * time.Millisecond,
		PendingTimeout: 5 * time.Second,
		ReadTimeout:    600 * time.Millisecond,
	}
}

// masterDC resolves the master data center for a key.
func (c Config) masterDC(key record.Key) topology.DC {
	if c.MasterDC != nil {
		return c.MasterDC(key)
	}
	return DefaultMasterDC(key)
}

// DefaultMasterDC distributes masters uniformly across data centers
// by key hash (the paper's Multi experiments use uniformly
// distributed masters).
func DefaultMasterDC(key record.Key) topology.DC {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return topology.DC(int(h % uint32(topology.NumDCs)))
}

// constraintFor returns the constraint on an attribute name, if any.
func (c Config) constraintFor(attr string) (record.Constraint, bool) {
	for _, con := range c.Constraints {
		if con.Attr == attr {
			return con, true
		}
	}
	return record.Constraint{}, false
}
