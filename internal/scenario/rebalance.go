package scenario

import (
	"fmt"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Live shard moves: the harness is the move's control plane. It drives
// a ring.Mover through freeze → bootstrap → publish with poll loops
// that survive every fault the nemesis throws at the window — crashed
// and restarted storage nodes (pull chains re-issue per incarnation),
// crashed and restarted gateways (the freeze fence re-applies every
// tick, and RestartGateway re-applies it immediately), partitions and
// drops (the drain gate simply passes later; pulls retry internally).
// Control decisions run in-process — an out-of-band operator — but
// every byte of shard data moves over the simulated network through
// the same anti-entropy path background sync uses.
//
// Moves are queued and run strictly one at a time (the Mover enforces
// single-flight; the queue is what lets a churn nemesis script joins
// and leaves back to back). A move may add groups (capacity growth:
// keys re-home onto the newcomers) or remove them (a leave: the
// departing group's slice scatters across every survivor, each pulling
// its share — including from the leaver — before the epoch publishes).
const (
	rebFreezePoll    = 250 * time.Millisecond
	rebBootstrapPoll = 500 * time.Millisecond
)

// queuedMove is one pending ring-membership change; target derives the
// next map from whatever the current map is when the move starts (so
// queued churn composes: a leave queued behind a join sees the joined
// ring).
type queuedMove struct {
	label  string
	target func(cur ring.Map) ring.Map
}

// ctrl is the node whose event queue carries the mover's poll timers.
// Clients are never crashed by the nemesis, so the control loop cannot
// die mid-move.
func (r *Run) ctrl() transport.NodeID { return r.Cluster.Clients[0].ID }

// startRebalance stages the scenario's declarative move (the
// capacity-growth operation Scenario.Rebalance describes).
func (r *Run) startRebalance() {
	rb := r.scn.Rebalance
	if rb.AddGroup <= 0 || rb.AddGroup >= r.Opts.NodesPerDC {
		r.events = append(r.events, fmt.Sprintf(
			"shard move skipped: group %d not provisioned (nodes per DC: %d)", rb.AddGroup, r.Opts.NodesPerDC))
		return
	}
	r.QueueMove(fmt.Sprintf("activate group %d", rb.AddGroup),
		func(cur ring.Map) ring.Map { return cur.WithGroup(rb.AddGroup) })
}

// QueueMove enqueues a ring membership change (a churn join or leave).
// Moves run FIFO, one at a time; each target sees the map the previous
// move published. Gateway runs only — the freeze fence lives there.
func (r *Run) QueueMove(label string, target func(cur ring.Map) ring.Map) {
	if r.gws == nil {
		r.events = append(r.events, "shard move skipped: moves require the gateway tier")
		return
	}
	r.moveQueue = append(r.moveQueue, queuedMove{label: label, target: target})
	r.maybeStartMove()
}

// maybeStartMove starts the next queued move unless one is in flight.
// Called at queue time and from each move's completion callback.
func (r *Run) maybeStartMove() {
	if len(r.moveQueue) == 0 {
		return
	}
	if r.mover != nil {
		if ph := r.mover.Phase(); ph != ring.PhaseIdle && ph != ring.PhaseDone {
			return
		}
	}
	mv := r.moveQueue[0]
	r.moveQueue = r.moveQueue[1:]
	tbl := r.Cluster.Ring()
	cur := tbl.Current().Map()
	next := mv.target(cur)
	if len(next.Groups) == 0 {
		r.events = append(r.events, fmt.Sprintf("shard move %q skipped: would empty the ring", mv.label))
		r.maybeStartMove()
		return
	}
	for _, g := range next.Groups {
		if g < 0 || g >= r.Opts.NodesPerDC {
			r.events = append(r.events, fmt.Sprintf(
				"shard move %q skipped: group %d not provisioned (nodes per DC: %d)", mv.label, g, r.Opts.NodesPerDC))
			r.maybeStartMove()
			return
		}
	}
	if r.mover == nil {
		r.mover = ring.NewMover(tbl, ring.Hooks{
			Freeze:    r.rebFreeze,
			Bootstrap: r.rebBootstrap,
			Publish:   r.rebPublish,
		})
	}
	r.rebIssued = make(map[int]*core.StorageNode)
	r.rebDone = make(map[int]bool)
	r.rebAdopted = make(map[int]int)
	label := mv.label
	err := r.mover.Move(next, func(st ring.MoveStats) {
		r.moves++
		r.events = append(r.events, fmt.Sprintf(
			"shard move %q published: epoch %d, %d keys re-homed, %d wrong-shard refusals retried so far",
			label, st.Epoch, st.MovedKeys, r.wrongShard))
		r.Opts.Logf("[%s] shard move %q published: epoch %d, %d keys", r.scn.Name, label, st.Epoch, st.MovedKeys)
		r.maybeStartMove()
	})
	if err != nil {
		r.events = append(r.events, fmt.Sprintf("shard move %q failed to start: %v", label, err))
		r.maybeStartMove()
	}
}

// rebFreeze fences admission for moving keys at every gateway, then
// polls the two-part drain gate: no live gateway holds an in-flight
// transaction touching a moving key, and no live source replica holds
// an unsettled vote on one. Votes held only by crashed replicas are
// fine — gate soundness needs every *decided* option applied on the
// live copies the bootstrap pulls from; a crashed replica's replayed
// vote re-settles through the sweep and reconciles among the new
// owners' own anti-entropy after publish.
func (r *Run) rebFreeze(next *ring.Ring, ready func()) {
	cur := r.Cluster.Ring().Current()
	r.rebMoving = func(k record.Key) bool { return next.Owner(string(k)) != cur.Owner(string(k)) }
	r.rebNext = next.Epoch()
	r.rebFrozen = true
	var poll func()
	poll = func() {
		if r.mover == nil || r.mover.Phase() != ring.PhaseFreeze {
			return
		}
		// Re-apply every tick: a gateway restarted since the last tick
		// has a fresh, unfenced incarnation (FreezeShards is idempotent).
		r.rebApplyFreeze()
		if r.rebDrained() {
			ready()
			return
		}
		r.Net.After(r.ctrl(), rebFreezePoll, poll)
	}
	poll()
}

// rebApplyFreeze (re-)fences every live gateway.
func (r *Run) rebApplyFreeze() {
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] {
			g.FreezeShards(r.rebMoving, r.rebNext)
		}
	}
}

// rebDrained is the freeze gate.
func (r *Run) rebDrained() bool {
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] && g.InflightMoving() > 0 {
			return false
		}
	}
	for i, n := range r.nodes {
		if r.crashed[i] {
			continue
		}
		if n.Unsettled(r.rebMoving) > 0 {
			return false
		}
	}
	return true
}

// rebBootstrap brings every destination replica of the move to the
// moving shards' settled state by pulling a full directed anti-entropy
// walk — filtered to the keys its group gains — from EVERY replica of
// every other current group, across all five DCs. Destinations: for a
// join, keys re-home only onto the added groups (consistent hashing
// moves nothing between survivors); for a leave, the departing group's
// slice scatters, so every surviving group is a destination and the
// leaver is among the sources pulled from. The union of walks matters
// for soundness: the drain gate proves every live source settled its
// votes, but a write decided by a 3-of-5 classic quorum leaves up to
// two non-voting sources stale with no votes to gate on, and
// partitions/crashes can widen that set. Any committed write is
// applied on at least a quorum of sources, so the union of all five
// DCs' walks always contains it (adoption takes the max version per
// key and grafts lineage, so stale walks can never roll a fresher one
// back). Chains are re-issued from scratch whenever a destination node
// restarts as a fresh incarnation — including a churn replace that
// wiped its disks (adoption is WAL-durable, so a completed chain
// survives ordinary crashes; a wiped replacement re-pulls everything);
// pulls to a crashed source simply retry until it returns.
func (r *Run) rebBootstrap(next *ring.Ring, ready func(moved int)) {
	cur := r.Cluster.Ring().Current() // still the pre-move ring: Install runs at publish
	curHas := make(map[int]bool)
	for _, g := range cur.Groups() {
		curHas[g] = true
	}
	dests := make(map[int]bool)
	for _, g := range next.Groups() {
		if !curHas[g] {
			dests[g] = true
		}
	}
	if len(dests) == 0 { // pure leave: every survivor gains a share
		for _, g := range next.Groups() {
			dests[g] = true
		}
	}
	acceptFor := func(g int) func(record.Key) bool {
		return func(k record.Key) bool {
			return next.Owner(string(k)) == g && cur.Owner(string(k)) != g
		}
	}
	srcFor := func(g int) []int {
		var out []int
		for _, s := range cur.Groups() {
			if s != g {
				out = append(out, s)
			}
		}
		return out
	}
	var poll func()
	poll = func() {
		if r.mover == nil || r.mover.Phase() != ring.PhaseBootstrap {
			return
		}
		r.rebApplyFreeze() // keep restarted gateways fenced through bootstrap
		allDone := true
		for i, sn := range r.Cluster.Storage {
			if !dests[sn.Index] {
				continue
			}
			if r.rebDone[i] {
				continue
			}
			allDone = false
			if r.crashed[i] || r.rebIssued[i] == r.nodes[i] {
				continue
			}
			r.rebIssued[i] = r.nodes[i]
			r.rebIssueChain(i, srcFor(sn.Index), acceptFor(sn.Index))
		}
		if allDone {
			total := 0
			for _, a := range r.rebAdopted {
				total += a
			}
			ready(total)
			return
		}
		r.Net.After(r.ctrl(), rebBootstrapPoll, poll)
	}
	poll()
}

// rebIssueChain walks destination node i through one AdoptShard pull
// per source replica (every source group in every DC, own DC first),
// sequentially. The chain belongs to one storage incarnation: if that
// incarnation crashes its callbacks die with it (halted nodes process
// nothing), and the bootstrap poll issues a fresh chain on the
// restarted node.
func (r *Run) rebIssueChain(i int, srcGroups []int, accept func(record.Key) bool) {
	node := r.nodes[i]
	own := r.Cluster.Storage[i].DC
	var srcs []transport.NodeID
	for _, g := range srcGroups {
		srcs = append(srcs, topology.StorageID(own, g))
		for _, dc := range topology.AllDCs() {
			if dc != own {
				srcs = append(srcs, topology.StorageID(dc, g))
			}
		}
	}
	var step func(si, total int)
	step = func(si, total int) {
		if si >= len(srcs) {
			r.rebDone[i] = true
			r.rebAdopted[i] = total
			return
		}
		node.AdoptShard(srcs[si], accept, func(adopted int) { step(si+1, total+adopted) })
	}
	step(0, 0)
}

// rebPublish lifts the freeze and re-homes per-key routing state at
// every live gateway. The mover has already installed the next map in
// the shared ring table, so Shard() answers with the new owners from
// here on; a gateway restarted after publish starts fresh against the
// new ring and needs nothing.
func (r *Run) rebPublish(next *ring.Ring) {
	r.rebFrozen = false
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] {
			g.RingPublished()
		}
	}
}
