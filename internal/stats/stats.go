// Package stats provides the small statistics toolkit used by the
// benchmark harness: latency samples, percentiles, CDFs, boxplot
// summaries, time-series bucketing and counters. Everything is plain
// in-memory computation; nothing here is concurrency-safe unless
// stated otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations (we use milliseconds for
// latencies throughout the harness).
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capHint int) *Sample {
	return &Sample{xs: make([]float64, 0, capHint)}
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration records a duration in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	s.ensureSorted()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	s.ensureSorted()
	if len(s.xs) == 0 {
		return 0
	}
	return s.xs[len(s.xs)-1]
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	s.ensureSorted()
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return s.xs[0]
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// CDFPoint is one (x, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64 // in (0, 1]
}

// CDF returns up to points evenly spaced points of the empirical CDF,
// suitable for plotting. The last point is always (max, 1).
func (s *Sample) CDF(points int) []CDFPoint {
	s.ensureSorted()
	n := len(s.xs)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		idx := i*n/points - 1
		out = append(out, CDFPoint{X: s.xs[idx], Frac: float64(idx+1) / float64(n)})
	}
	return out
}

// FracBelow returns the fraction of observations <= x.
func (s *Sample) FracBelow(x float64) float64 {
	s.ensureSorted()
	if len(s.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.xs, x)
	// Include equal values.
	for i < len(s.xs) && s.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(s.xs))
}

// Boxplot is the five-number summary plus mean, as plotted in Figure 7.
type Boxplot struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Box returns the boxplot summary of the sample.
func (s *Sample) Box() Boxplot {
	return Boxplot{
		Min:    s.Min(),
		Q1:     s.Percentile(25),
		Median: s.Median(),
		Q3:     s.Percentile(75),
		Max:    s.Max(),
		Mean:   s.Mean(),
		N:      s.N(),
	}
}

// String formats the boxplot as a compact single line.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f mean=%.1f",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// Summary formats the common latency digest used in harness output.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d p50=%.1f p90=%.1f p99=%.1f mean=%.1f max=%.1f",
		s.N(), s.Percentile(50), s.Percentile(90), s.Percentile(99), s.Mean(), s.Max())
}

// TimeSeries buckets observations by time offset, producing the
// per-interval averages plotted in Figure 8.
type TimeSeries struct {
	bucket time.Duration
	sums   []float64
	counts []int
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("stats: non-positive time series bucket")
	}
	return &TimeSeries{bucket: bucket}
}

// Add records value v observed at offset t from the series origin.
// Negative offsets are dropped.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if t < 0 {
		return
	}
	i := int(t / ts.bucket)
	for len(ts.sums) <= i {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[i] += v
	ts.counts[i]++
}

// TSPoint is one bucket of a TimeSeries.
type TSPoint struct {
	Start time.Duration
	Mean  float64
	N     int
}

// Points returns all non-empty buckets in time order.
func (ts *TimeSeries) Points() []TSPoint {
	var out []TSPoint
	for i := range ts.sums {
		if ts.counts[i] == 0 {
			continue
		}
		out = append(out, TSPoint{
			Start: time.Duration(i) * ts.bucket,
			Mean:  ts.sums[i] / float64(ts.counts[i]),
			N:     ts.counts[i],
		})
	}
	return out
}

// MeanBetween returns the mean of all observations in buckets whose
// start lies in [from, to), and the count, for before/after comparisons.
func (ts *TimeSeries) MeanBetween(from, to time.Duration) (float64, int) {
	var sum float64
	var n int
	for i := range ts.sums {
		start := time.Duration(i) * ts.bucket
		if start >= from && start < to {
			sum += ts.sums[i]
			n += ts.counts[i]
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Counter is a named monotonically increasing tally.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the named counter value.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns all counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders all counters as "name=value" pairs.
func (c *Counter) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.counts[n])
	}
	return b.String()
}

// ASCIICDF renders a crude terminal CDF plot (log-x optional) used by
// cmd/mdcc-bench so the figures can be eyeballed without a plotting
// tool. Lines are percentage rows from 0..100 in steps.
func ASCIICDF(series map[string]*Sample, width int, logX bool) string {
	if width <= 10 {
		width = 60
	}
	// Establish global x range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	names := make([]string, 0, len(series))
	for name, s := range series {
		if s.N() == 0 {
			continue
		}
		names = append(names, name)
		if s.Min() < minX {
			minX = s.Min()
		}
		if s.Max() > maxX {
			maxX = s.Max()
		}
	}
	sort.Strings(names)
	if len(names) == 0 || minX >= maxX {
		return "(no data)\n"
	}
	xform := func(x float64) float64 { return x }
	if logX {
		if minX <= 0 {
			minX = 0.1
		}
		xform = math.Log10
	}
	lo, hi := xform(minX), xform(maxX)
	var b strings.Builder
	marks := "abcdefghijklmnopqrstuvwxyz"
	for pct := 10; pct <= 90; pct += 20 {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for i, name := range names {
			v := series[name].Percentile(float64(pct))
			pos := int((xform(v) - lo) / (hi - lo) * float64(width-1))
			if pos < 0 {
				pos = 0
			}
			if pos >= width {
				pos = width - 1
			}
			row[pos] = marks[i%len(marks)]
		}
		fmt.Fprintf(&b, "%3d%% |%s|\n", pct, string(row))
	}
	fmt.Fprintf(&b, "     x: %.0f .. %.0f ms (logX=%v)\n", minX, maxX, logX)
	for i, name := range names {
		fmt.Fprintf(&b, "     %c = %s\n", marks[i%len(marks)], name)
	}
	return b.String()
}
