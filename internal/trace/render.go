package trace

import (
	"fmt"
	"strings"
	"time"
)

// annot renders an event's flag bits in stage context: votes come out
// as "fast-accept" / "classic-reject+demarcation", outcomes as
// "commit" / "abort" / "unknown".
func (ev Event) annot() string {
	var parts []string
	switch {
	case ev.Flags&FlagFast != 0:
		parts = append(parts, "fast")
	case ev.Stage == StageVote || ev.Stage == StageLearn || ev.Stage == StagePropose:
		parts = append(parts, "classic")
	}
	if ev.Flags&FlagAccept != 0 {
		parts = append(parts, "accept")
	}
	if ev.Flags&FlagReject != 0 {
		parts = append(parts, "reject")
	}
	s := strings.Join(parts, "-")
	if ev.Flags&FlagDemarcation != 0 {
		s += "+demarcation"
	}
	if ev.Flags&FlagBatched != 0 {
		s += "+batched"
	}
	if ev.Flags&FlagCommit != 0 {
		s = joinAnnot(s, "commit")
	}
	if ev.Flags&FlagAbort != 0 {
		s = joinAnnot(s, "abort")
	}
	if ev.Flags&FlagUnknown != 0 {
		s = joinAnnot(s, "unknown")
	}
	return s
}

func joinAnnot(s, w string) string {
	if s == "" {
		return w
	}
	return s + "," + w
}

func outcomeName(o uint8) string {
	switch {
	case o&FlagCommit != 0:
		return "commit"
	case o&FlagAbort != 0:
		return "abort"
	default:
		return "unknown"
	}
}

func dcName(dc int8) string {
	if dc < 0 {
		return "-"
	}
	return fmt.Sprintf("dc%d", dc)
}

// Compact renders the whole timeline as one line — the /trace
// endpoint's one-timeline-per-line format:
//
//	tx=gw0#42 commit 18.2ms [slow] admit@gw0 … vote@us-2(dc0,fast-accept) … ack@gw0
func (t *Trace) Compact() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx=%s %s %s", orDash(t.Tx), outcomeName(t.Outcome), t.Dur.Round(time.Microsecond))
	if len(t.Reasons) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(t.Reasons, ","))
	}
	for i, ev := range t.Events {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(" → ")
		}
		fmt.Fprintf(&b, "%s@%s", ev.Stage, ev.Node)
		extra := ev.annot()
		if ev.DC >= 0 || extra != "" {
			b.WriteByte('(')
			b.WriteString(dcName(ev.DC))
			if extra != "" {
				b.WriteByte(',')
				b.WriteString(extra)
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}

// Timeline renders the trace as a multi-line causal story: a header
// followed by one event per line, offset from the first event.
//
//	tx gw0#42: commit in 18.2ms, keys [x] — retained: slow
//	  +0        gw0    dc0  admit          key=x
//	  +310µs    us-2   dc0  vote           key=x fast-accept
func (t *Trace) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx %s: %s in %s", orDash(t.Tx), outcomeName(t.Outcome), t.Dur.Round(time.Microsecond))
	if len(t.Keys) > 0 {
		fmt.Fprintf(&b, ", keys [%s]", strings.Join(t.Keys, " "))
	}
	if len(t.Reasons) > 0 {
		fmt.Fprintf(&b, " — retained: %s", strings.Join(t.Reasons, ","))
	}
	b.WriteByte('\n')
	if len(t.Events) == 0 {
		b.WriteString("  (no events in rings — aged out)\n")
		return b.String()
	}
	base := t.Events[0].At
	for _, ev := range t.Events {
		off := time.Duration(ev.At - base).Round(time.Microsecond)
		fmt.Fprintf(&b, "  +%-10s %-12s %-4s %-14s", off, ev.Node, dcName(ev.DC), ev.Stage)
		if ev.Key != "" {
			fmt.Fprintf(&b, " key=%s", ev.Key)
		}
		if extra := ev.annot(); extra != "" {
			fmt.Fprintf(&b, " %s", extra)
		}
		if ev.Arg != 0 {
			fmt.Fprintf(&b, " arg=%d", ev.Arg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
