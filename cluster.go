package mdcc

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// ClusterConfig shapes an in-process cluster.
type ClusterConfig struct {
	// Mode selects the protocol variant (default ModeMDCC).
	Mode Mode
	// NodesPerDC is the number of storage nodes (shards) per data
	// center (default 1).
	NodesPerDC int
	// Constraints are enforced on commutative updates cluster-wide.
	Constraints []Constraint
	// LatencyScale multiplies the realistic inter-DC latencies
	// (hundreds of ms). 1.0 feels like the real WAN; 0.02 makes
	// examples snappy while preserving relative geometry. Default 0.05.
	LatencyScale float64
	// DataDir, when set, gives every storage node a WAL-backed
	// durable store under DataDir/<node>; empty means in-memory.
	DataDir string
	// Gamma overrides the fast-policy window (default 100).
	Gamma int
	// SyncInterval enables background anti-entropy between replicas
	// (catch-up after outages); zero disables.
	SyncInterval time.Duration
	// Seed randomizes latency jitter.
	Seed int64
}

// Cluster is an in-process five-data-center MDCC deployment running
// on the real-time transport.
type Cluster struct {
	cfg     ClusterConfig
	net     *transport.Local
	cl      *topology.Cluster
	nodes   []*core.StorageNode
	stores  []*kv.Store
	mu      sync.Mutex
	nextCli atomic.Int64
	closed  bool
}

// StartCluster builds and starts an in-process cluster.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NodesPerDC < 1 {
		cfg.NodesPerDC = 1
	}
	if cfg.LatencyScale <= 0 {
		cfg.LatencyScale = 0.05
	}
	cl := topology.NewCluster(topology.Layout{NodesPerDC: cfg.NodesPerDC, Clients: 0, ClientDC: -1})

	base := cl.Latency()
	scale := cfg.LatencyScale
	scaled := func(from, to transport.NodeID) time.Duration {
		return time.Duration(float64(base(from, to)) * scale)
	}
	lat := transport.UniformJitter(scaled, 0.1, rand.New(rand.NewSource(cfg.Seed)))
	net := transport.NewLocal(lat)

	coreCfg := clusterCoreConfig(cfg)

	c := &Cluster{cfg: cfg, net: net, cl: cl}
	for _, n := range cl.Storage {
		var store *kv.Store
		if cfg.DataDir != "" {
			dir := filepath.Join(cfg.DataDir, string(n.ID))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				net.Close()
				return nil, fmt.Errorf("mdcc: %w", err)
			}
			s, err := kv.Open(dir, false)
			if err != nil {
				net.Close()
				return nil, err
			}
			store = s
		} else {
			store = kv.NewMemory()
		}
		c.stores = append(c.stores, store)
		c.nodes = append(c.nodes, core.NewStorageNode(n.ID, n.DC, net, cl, coreCfg, store))
	}
	return c, nil
}

// clusterCoreConfig derives the protocol configuration, scaling the
// timeouts with the latency scale so compressed clusters stay snappy.
func clusterCoreConfig(cfg ClusterConfig) core.Config {
	coreCfg := core.Defaults(cfg.Mode)
	coreCfg.Constraints = cfg.Constraints
	coreCfg.SyncInterval = cfg.SyncInterval
	if cfg.Gamma > 0 {
		coreCfg.Gamma = cfg.Gamma
	}
	s := cfg.LatencyScale
	if s < 1 {
		floor := func(d, min time.Duration) time.Duration {
			d = time.Duration(float64(d) * s)
			if d < min {
				return min
			}
			return d
		}
		coreCfg.OptionTimeout = floor(coreCfg.OptionTimeout, 100*time.Millisecond)
		coreCfg.RecoveryRetry = floor(coreCfg.RecoveryRetry, 80*time.Millisecond)
		coreCfg.PendingTimeout = floor(coreCfg.PendingTimeout, 500*time.Millisecond)
		coreCfg.ReadTimeout = floor(coreCfg.ReadTimeout, 60*time.Millisecond)
	}
	return coreCfg
}

// Session opens a client session homed in the given data center.
func (c *Cluster) Session(dc DC) *Session {
	id := transport.NodeID(fmt.Sprintf("session%d", c.nextCli.Add(1)))
	coreCfg := clusterCoreConfig(c.cfg)
	coord := core.NewCoordinator(id, dc, c.net, c.cl, coreCfg)
	return newSession(id, c.net, coord, coreCfg)
}

// FailDC simulates a data-center outage: every storage node in dc
// stops sending and receiving until RecoverDC.
func (c *Cluster) FailDC(dc DC) {
	for _, n := range c.cl.Storage {
		if n.DC == dc {
			c.net.Fail(n.ID)
		}
	}
}

// RecoverDC ends a simulated outage.
func (c *Cluster) RecoverDC(dc DC) {
	for _, n := range c.cl.Storage {
		if n.DC == dc {
			c.net.Recover(n.ID)
		}
	}
}

// Close shuts the cluster down and closes durable stores.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.net.Close()
	for _, s := range c.stores {
		_ = s.Close()
	}
}
