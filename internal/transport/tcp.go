package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mdcc/internal/clock"
)

// RegisterMessage registers a concrete message type for the gob wire
// codec. Every protocol package registers its message types in init so
// they can cross TCP transports.
func RegisterMessage(m Message) { gob.Register(m) }

// helloMsg announces a dialing peer's node and reachable address so
// the receiver can route replies back (clients are not in the static
// routing table servers start with).
type helloMsg struct {
	ID   NodeID
	Addr string
}

func init() {
	gob.Register(helloMsg{})
	gob.Register(Batch{})
}

// TCP is a Network whose nodes may live in different processes.
// Locally registered nodes receive messages directly; remote nodes
// are reached via persistent gob-encoded TCP connections using a
// static NodeID→address routing table.
//
// Delivery is best-effort: connection failures and full outbound
// queues drop messages, exactly as the protocol layers expect from a
// WAN. What IS guaranteed is per-pair ordering: messages between one
// (from, to) pair that are delivered arrive in send order — all
// traffic to one peer address flows through a single FIFO queue and
// one writer goroutine (batch envelopes additionally preserve the
// order of their items).
type TCP struct {
	mu     sync.RWMutex
	local  map[NodeID]*mailbox
	routes map[NodeID]string // node → "host:port"
	conns  map[string]*tcpConn
	ln     net.Listener
	clk    clock.Clock
	closed bool
	tracer WireTracer
	stats  statCounters

	// Logf, if set, receives connection diagnostics.
	Logf func(format string, args ...interface{})
}

// SetTracer installs the flight-recorder wire hook: outgoing envelopes
// are stamped with the local Lamport clock and incoming stamps are
// folded back in, so timelines assembled across processes stay
// causally ordered. Call before traffic starts.
func (t *TCP) SetTracer(tr WireTracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracer = tr
}

// outboundDepth bounds each peer's send queue; overflow drops (WAN
// loss semantics) rather than blocking protocol goroutines.
const outboundDepth = 8192

// tcpConn is one peer's ordered outbound queue. The writer goroutine
// dials lazily, then drains the queue over a single connection, which
// is what preserves per-(from,to) send order.
type tcpConn struct {
	addr string
	ch   chan Envelope
	done chan struct{}
	once sync.Once // closes done exactly once

	mu   sync.Mutex
	conn net.Conn // set by the writer after dialing (for Close)
}

func (c *tcpConn) close() {
	c.once.Do(func() { close(c.done) })
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
}

// countingWriter / countingReader count wire bytes into the shared
// transport stats.
type countingWriter struct {
	w io.Writer
	n *statCounters
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.bytesSent.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *statCounters
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.bytesReceived.Add(int64(n))
	return n, err
}

// NewTCP returns a TCP network with the given routing table (may be
// extended later with AddRoute).
func NewTCP(routes map[NodeID]string) *TCP {
	t := &TCP{
		local:  make(map[NodeID]*mailbox),
		routes: make(map[NodeID]string),
		conns:  make(map[string]*tcpConn),
		clk:    clock.NewReal(),
	}
	for id, addr := range routes {
		t.routes[id] = addr
	}
	return t
}

// AddRoute maps a node to a remote address.
func (t *TCP) AddRoute(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[id] = addr
}

// Listen starts accepting peer connections on addr and returns the
// bound address (useful with ":0").
func (t *TCP) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(countingReader{r: conn, n: &t.stats})
	for {
		var e Envelope
		if err := dec.Decode(&e); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				t.logf("transport: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		t.deliverLocal(e)
	}
}

func (t *TCP) deliverLocal(e Envelope) {
	if h, ok := e.Msg.(helloMsg); ok {
		t.AddRoute(h.ID, h.Addr)
		return
	}
	t.mu.RLock()
	mb, ok := t.local[e.To]
	tracer := t.tracer
	t.mu.RUnlock()
	if tracer != nil {
		tracer.ObserveRecv(e.TraceClk)
	}
	if !ok {
		t.logf("transport: no local node %s, dropping %T", e.To, e.Msg)
		return
	}
	t.stats.countReceive(e.Msg)
	select {
	case mb.ch <- func(h Handler) { h(e) }:
	case <-mb.done:
	}
}

// Register installs a handler for a node hosted in this process.
func (t *TCP) Register(id NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mb, ok := t.local[id]; ok {
		close(mb.done)
	}
	mb := &mailbox{ch: make(chan func(Handler), 4096), done: make(chan struct{})}
	t.local[id] = mb
	go func() {
		for {
			select {
			case f := <-mb.ch:
				f(h)
			case <-mb.done:
				return
			}
		}
	}()
}

// Send routes msg to a local mailbox or over TCP. Remote sends to the
// same destination are FIFO through one per-peer queue, so messages
// of a (from, to) pair never reorder (they may still drop).
func (t *TCP) Send(from, to NodeID, msg Message) {
	e := Envelope{From: from, To: to, Msg: msg}
	t.mu.RLock()
	_, isLocal := t.local[to]
	addr, hasRoute := t.routes[to]
	closed := t.closed
	tracer := t.tracer
	t.mu.RUnlock()
	if closed {
		return
	}
	if tracer != nil {
		e.TraceClk = tracer.StampSend()
	}
	t.stats.countSend(msg)
	if isLocal {
		t.deliverLocal(e)
		return
	}
	if !hasRoute {
		t.logf("transport: no route to %s, dropping %T", to, msg)
		return
	}
	c := t.connTo(addr)
	select {
	case c.ch <- e:
	case <-c.done:
		t.logf("transport: conn to %s down, dropping %T", addr, msg)
	default:
		t.logf("transport: queue to %s full, dropping %T", addr, msg)
	}
}

// connTo returns the peer's outbound queue, creating it (and its
// writer goroutine) on first use. Returns a dead (done-closed) queue
// when racing Close, so callers simply observe a down connection.
func (t *TCP) connTo(addr string) *tcpConn {
	t.mu.RLock()
	c, ok := t.conns[addr]
	t.mu.RUnlock()
	if ok {
		return c
	}
	t.mu.Lock()
	if exist, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return exist
	}
	c = &tcpConn{addr: addr, ch: make(chan Envelope, outboundDepth), done: make(chan struct{})}
	if t.closed {
		t.mu.Unlock()
		c.close()
		return c
	}
	t.conns[addr] = c
	t.mu.Unlock()
	go t.writeLoop(c)
	return c
}

// writeLoop dials the peer and drains its queue in order. Any dial or
// encode error tears the queue down; queued and future messages drop
// until a new Send re-creates the connection.
func (t *TCP) writeLoop(c *tcpConn) {
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		t.logf("transport: dial %s: %v", c.addr, err)
		t.dropConn(c.addr, c)
		return
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	select {
	case <-c.done: // closed while dialing
		conn.Close()
		return
	default:
	}
	// Responses flow over separately dialed connections from the
	// peer; this connection is send-only, but drain it so the peer
	// closing is noticed promptly.
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				t.dropConn(c.addr, c)
				return
			}
		}
	}()
	enc := gob.NewEncoder(countingWriter{w: conn, n: &t.stats})
	for {
		select {
		case e := <-c.ch:
			if err := enc.Encode(&e); err != nil {
				t.logf("transport: send to %s: %v", c.addr, err)
				t.dropConn(c.addr, c)
				return
			}
		case <-c.done:
			return
		}
	}
}

func (t *TCP) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.close()
}

// DropPeerConns tears down every open outbound connection; the next
// Send to an affected peer dials a fresh one. Test hook for
// reconnect-ordering coverage (per-pair FIFO must survive teardown).
func (t *TCP) DropPeerConns() {
	t.mu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		t.dropConn(c.addr, c)
	}
}

// Hello announces a locally hosted node's listen address to a remote
// peer so the peer can route replies back. Call after Listen, before
// sending requests.
func (t *TCP) Hello(peerAddr string, self NodeID, selfAddr string) {
	c := t.connTo(peerAddr)
	select {
	case c.ch <- Envelope{From: self, Msg: helloMsg{ID: self, Addr: selfAddr}}:
	case <-c.done:
	default:
	}
}

// After schedules f serialized with node on's mailbox.
func (t *TCP) After(on NodeID, d time.Duration, f func()) clock.Timer {
	return t.clk.After(d, func() {
		t.mu.RLock()
		mb, ok := t.local[on]
		t.mu.RUnlock()
		if !ok {
			return
		}
		select {
		case mb.ch <- func(Handler) { f() }:
		case <-mb.done:
		}
	})
}

// Now returns wall-clock time.
func (t *TCP) Now() time.Time { return t.clk.Now() }

// Stats snapshots the transport counters (messages, batch envelopes,
// wire bytes) — served by cmd/mdcc-server /metrics.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close shuts the listener, connections and mailboxes.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	conns := t.conns
	local := t.local
	t.local = make(map[NodeID]*mailbox)
	t.conns = make(map[string]*tcpConn)
	t.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	for _, mb := range local {
		close(mb.done)
	}
}

// logf reports a diagnostic if the owner installed a logger; the
// default is silence because message drops are expected behaviour.
func (t *TCP) logf(format string, args ...interface{}) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}
