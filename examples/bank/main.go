// Bank: escrow-style money transfers under a non-negative balance
// constraint, exercising MDCC's commutative updates with quorum
// demarcation (§3.4 of the paper). Many geo-distributed tellers
// transfer concurrently; the invariant "no account ever goes
// negative, and money is conserved" holds throughout — with
// single-round-trip commits and no masters.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mdcc"
)

const (
	accounts       = 20
	initialBalance = 1000
	tellers        = 10
	transfers      = 20 // per teller
)

func acctKey(i int) mdcc.Key { return mdcc.Key(fmt.Sprintf("acct/%03d", i)) }

func main() {
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		Mode:         mdcc.ModeMDCC,
		LatencyScale: 0.02,
		Constraints:  []mdcc.Constraint{mdcc.MinBound("balance", 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Open the accounts.
	setup := cluster.Session(mdcc.USWest)
	var ups []mdcc.Update
	for i := 0; i < accounts; i++ {
		ups = append(ups, mdcc.Insert(acctKey(i),
			mdcc.Value{Attrs: map[string]int64{"balance": initialBalance}}))
	}
	if ok, err := setup.Commit(ups...); err != nil || !ok {
		log.Fatalf("opening accounts: ok=%v err=%v", ok, err)
	}
	fmt.Printf("opened %d accounts with %d each (total %d)\n",
		accounts, initialBalance, accounts*initialBalance)

	// Geo-distributed tellers transfer concurrently. A transfer is a
	// single transaction with two commutative updates: -amount on the
	// source (bounded below by 0 via escrow/demarcation) and +amount
	// on the destination. Either both apply or neither.
	var wg sync.WaitGroup
	var committed, aborted int64
	var mu sync.Mutex
	for tl := 0; tl < tellers; tl++ {
		wg.Add(1)
		go func(tl int) {
			defer wg.Done()
			sess := cluster.Session(mdcc.DC(tl % 5))
			rng := rand.New(rand.NewSource(int64(tl)))
			for n := 0; n < transfers; n++ {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(1 + rng.Intn(300))
				ok, err := sess.Commit(
					mdcc.Commutative(acctKey(from), map[string]int64{"balance": -amount}),
					mdcc.Commutative(acctKey(to), map[string]int64{"balance": +amount}),
				)
				if err != nil {
					log.Printf("teller %d: %v", tl, err)
					continue
				}
				mu.Lock()
				if ok {
					committed++
				} else {
					aborted++ // insufficient escrowed funds
				}
				mu.Unlock()
			}
		}(tl)
	}
	wg.Wait()
	fmt.Printf("transfers: %d committed, %d aborted (insufficient funds under escrow)\n",
		committed, aborted)

	// Audit: total money must be conserved and no balance negative.
	audit := cluster.Session(mdcc.EUIreland)
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := int64(0)
		negative := false
		for i := 0; i < accounts; i++ {
			v, _, ok, err := audit.Read(acctKey(i))
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				continue
			}
			b := v.Attr("balance")
			if b < 0 {
				negative = true
			}
			total += b
		}
		if negative {
			log.Fatal("INVARIANT VIOLATED: negative balance")
		}
		if total == accounts*initialBalance {
			fmt.Printf("audit OK: total=%d, no negative balances\n", total)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("INVARIANT VIOLATED: total=%d, want %d", total, accounts*initialBalance)
		}
		time.Sleep(50 * time.Millisecond) // visibility still landing
	}
}
