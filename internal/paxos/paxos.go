// Package paxos provides the consensus primitives under MDCC's commit
// protocol: ballot numbers with the fast/classic ranking the paper
// requires (§3.3.1: "classic ballot numbers are always higher ranked
// than fast ballot numbers"), quorum arithmetic, and the Fast Paxos
// value-selection rule used during collision recovery (which option
// values may already have been chosen by a fast quorum and therefore
// must be carried into the new classic ballot).
package paxos

import "fmt"

// Ballot identifies a voting round for one record's current instance.
// Ordering is lexicographic over (N, classic-over-fast, Leader):
// within the same number a classic ballot outranks a fast one, and a
// leader identity string breaks symmetry between competing masters
// (the paper concatenates the requester's IP address for uniqueness).
type Ballot struct {
	N      uint64
	Fast   bool
	Leader string // proposer identity; empty for the implicit default fast ballot
}

// DefaultFast is the implicit initial ballot every record starts in:
// fast, number 0, no owner — "accept the next options from any
// proposer" (§3.3.1).
var DefaultFast = Ballot{N: 0, Fast: true}

// Classic builds a classic ballot owned by a leader.
func Classic(n uint64, leader string) Ballot {
	return Ballot{N: n, Fast: false, Leader: leader}
}

// FastBallot builds a fast ballot (used when a leader re-opens fast
// mode after γ classic instances).
func FastBallot(n uint64) Ballot {
	return Ballot{N: n, Fast: true}
}

// Cmp returns -1, 0, or +1 comparing b against o.
func (b Ballot) Cmp(o Ballot) int {
	if b.N != o.N {
		if b.N < o.N {
			return -1
		}
		return 1
	}
	// Classic (Fast=false) ranks above fast at the same number.
	if b.Fast != o.Fast {
		if b.Fast {
			return -1
		}
		return 1
	}
	if b.Leader != o.Leader {
		if b.Leader < o.Leader {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports b < o.
func (b Ballot) Less(o Ballot) bool { return b.Cmp(o) < 0 }

// Next returns the smallest classic ballot owned by leader that
// outranks b.
func (b Ballot) Next(leader string) Ballot {
	if b.Fast {
		// classic(N) already outranks fast(N).
		return Classic(b.N, leader)
	}
	return Classic(b.N+1, leader)
}

// NextFast returns a fast ballot outranking b (fast N+1 outranks
// classic N).
func (b Ballot) NextFast() Ballot { return FastBallot(b.N + 1) }

// String renders "fast:3" or "classic:3@dc1/store0".
func (b Ballot) String() string {
	if b.Fast {
		return fmt.Sprintf("fast:%d", b.N)
	}
	return fmt.Sprintf("classic:%d@%s", b.N, b.Leader)
}

// Quorum holds the sizes for one replica group.
type Quorum struct {
	N       int // replicas
	Classic int // majority
	Fast    int // fast quorum
}

// NewQuorum computes classic and fast quorum sizes for n replicas:
// classic = ⌊n/2⌋+1, fast = ⌈3n/4⌉. For n=5 this is the paper's 3/4.
func NewQuorum(n int) Quorum {
	f := (3*n + 3) / 4
	if f > n {
		f = n
	}
	return Quorum{N: n, Classic: n/2 + 1, Fast: f}
}

// PossiblyChosen reports whether a value with `votes` supporting
// acceptors among `responded` distinct replies could have been chosen
// by a fast quorum: the non-responding N-responded acceptors might
// all have voted for it too.
func (q Quorum) PossiblyChosen(votes, responded int) bool {
	return votes+(q.N-responded) >= q.Fast
}

// FastLearned reports whether `votes` identical votes suffice to
// learn in a fast ballot.
func (q Quorum) FastLearned(votes int) bool { return votes >= q.Fast }

// ClassicLearned reports whether `votes` identical votes suffice to
// learn in a classic ballot.
func (q Quorum) ClassicLearned(votes int) bool { return votes >= q.Classic }

// Valid checks the Fast Paxos quorum requirements: any two quorums
// intersect, and any two fast quorums intersect with every classic
// quorum.
func (q Quorum) Valid() bool {
	if q.Classic < 1 || q.Fast < q.Classic || q.Fast > q.N {
		return false
	}
	// (i) two classic quorums intersect.
	if 2*q.Classic <= q.N {
		return false
	}
	// (ii) two fast quorums and a classic quorum intersect.
	return 2*q.Fast+q.Classic > 2*q.N
}
