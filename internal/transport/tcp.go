package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mdcc/internal/clock"
)

// RegisterMessage registers a concrete message type for the gob wire
// codec. Every protocol package registers its message types in init so
// they can cross TCP transports.
func RegisterMessage(m Message) { gob.Register(m) }

// helloMsg announces a dialing peer's node and reachable address so
// the receiver can route replies back (clients are not in the static
// routing table servers start with).
type helloMsg struct {
	ID   NodeID
	Addr string
}

func init() { gob.Register(helloMsg{}) }

// TCP is a Network whose nodes may live in different processes.
// Locally registered nodes receive messages directly; remote nodes
// are reached via persistent gob-encoded TCP connections using a
// static NodeID→address routing table.
//
// Delivery is best-effort: connection failures drop messages, exactly
// as the protocol layers expect from a WAN.
type TCP struct {
	mu     sync.RWMutex
	local  map[NodeID]*mailbox
	routes map[NodeID]string // node → "host:port"
	conns  map[string]*tcpConn
	ln     net.Listener
	clk    clock.Clock
	closed bool

	// Logf, if set, receives connection diagnostics.
	Logf func(format string, args ...interface{})
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// NewTCP returns a TCP network with the given routing table (may be
// extended later with AddRoute).
func NewTCP(routes map[NodeID]string) *TCP {
	t := &TCP{
		local:  make(map[NodeID]*mailbox),
		routes: make(map[NodeID]string),
		conns:  make(map[string]*tcpConn),
		clk:    clock.NewReal(),
	}
	for id, addr := range routes {
		t.routes[id] = addr
	}
	return t
}

// AddRoute maps a node to a remote address.
func (t *TCP) AddRoute(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[id] = addr
}

// Listen starts accepting peer connections on addr and returns the
// bound address (useful with ":0").
func (t *TCP) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.readLoop(conn)
	}
}

func (t *TCP) readLoop(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var e Envelope
		if err := dec.Decode(&e); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				t.logf("transport: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		t.deliverLocal(e)
	}
}

func (t *TCP) deliverLocal(e Envelope) {
	if h, ok := e.Msg.(helloMsg); ok {
		t.AddRoute(h.ID, h.Addr)
		return
	}
	t.mu.RLock()
	mb, ok := t.local[e.To]
	t.mu.RUnlock()
	if !ok {
		t.logf("transport: no local node %s, dropping %T", e.To, e.Msg)
		return
	}
	select {
	case mb.ch <- func(h Handler) { h(e) }:
	case <-mb.done:
	}
}

// Register installs a handler for a node hosted in this process.
func (t *TCP) Register(id NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mb, ok := t.local[id]; ok {
		close(mb.done)
	}
	mb := &mailbox{ch: make(chan func(Handler), 4096), done: make(chan struct{})}
	t.local[id] = mb
	go func() {
		for {
			select {
			case f := <-mb.ch:
				f(h)
			case <-mb.done:
				return
			}
		}
	}()
}

// Send routes msg to a local mailbox or over TCP.
func (t *TCP) Send(from, to NodeID, msg Message) {
	e := Envelope{From: from, To: to, Msg: msg}
	t.mu.RLock()
	_, isLocal := t.local[to]
	addr, hasRoute := t.routes[to]
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return
	}
	if isLocal {
		t.deliverLocal(e)
		return
	}
	if !hasRoute {
		t.logf("transport: no route to %s, dropping %T", to, msg)
		return
	}
	go t.sendRemote(addr, e)
}

func (t *TCP) sendRemote(addr string, e Envelope) {
	c, err := t.connTo(addr)
	if err != nil {
		t.logf("transport: dial %s: %v", addr, err)
		return
	}
	c.mu.Lock()
	err = c.enc.Encode(&e)
	c.mu.Unlock()
	if err != nil {
		t.logf("transport: send to %s: %v", addr, err)
		t.dropConn(addr, c)
	}
}

func (t *TCP) connTo(addr string) (*tcpConn, error) {
	t.mu.RLock()
	c, ok := t.conns[addr]
	t.mu.RUnlock()
	if ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c = &tcpConn{conn: conn, enc: gob.NewEncoder(conn)}
	t.mu.Lock()
	if exist, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		conn.Close()
		return exist, nil
	}
	t.conns[addr] = c
	t.mu.Unlock()
	// Responses flow over separately dialed connections from the
	// peer; this connection is send-only, but drain it so the peer
	// closing is noticed promptly.
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				t.dropConn(addr, c)
				return
			}
		}
	}()
	return c, nil
}

func (t *TCP) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.conn.Close()
}

// Hello announces a locally hosted node's listen address to a remote
// peer so the peer can route replies back. Call after Listen, before
// sending requests.
func (t *TCP) Hello(peerAddr string, self NodeID, selfAddr string) {
	t.sendRemote(peerAddr, Envelope{From: self, Msg: helloMsg{ID: self, Addr: selfAddr}})
}

// After schedules f serialized with node on's mailbox.
func (t *TCP) After(on NodeID, d time.Duration, f func()) clock.Timer {
	return t.clk.After(d, func() {
		t.mu.RLock()
		mb, ok := t.local[on]
		t.mu.RUnlock()
		if !ok {
			return
		}
		select {
		case mb.ch <- func(Handler) { f() }:
		case <-mb.done:
		}
	})
}

// Now returns wall-clock time.
func (t *TCP) Now() time.Time { return t.clk.Now() }

// Close shuts the listener, connections and mailboxes.
func (t *TCP) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range t.conns {
		c.conn.Close()
	}
	for _, mb := range t.local {
		close(mb.done)
	}
	t.local = make(map[NodeID]*mailbox)
	t.conns = make(map[string]*tcpConn)
}

// logf reports a diagnostic if the owner installed a logger; the
// default is silence because message drops are expected behaviour.
func (t *TCP) logf(format string, args ...interface{}) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}
