package paxos

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBallotOrdering(t *testing.T) {
	cases := []struct {
		a, b Ballot
		want int
	}{
		{DefaultFast, DefaultFast, 0},
		{DefaultFast, Classic(0, "x"), -1},        // classic outranks fast at same N
		{Classic(0, "x"), FastBallot(1), -1},      // higher N outranks classic bit
		{Classic(1, "a"), Classic(1, "b"), -1},    // leader id breaks ties
		{Classic(2, "a"), Classic(1, "b"), 1},     // N dominates
		{FastBallot(3), FastBallot(3), 0},         // equal fast
		{Classic(3, "dc1"), Classic(3, "dc1"), 0}, // equal classic
		{FastBallot(2), Classic(2, ""), -1},       // fast < classic even with empty leader
	}
	for i, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("case %d: Cmp(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Cmp(c.a); got != -c.want {
			t.Errorf("case %d: Cmp reversed not antisymmetric", i)
		}
		if (c.a.Cmp(c.b) < 0) != c.a.Less(c.b) {
			t.Errorf("case %d: Less disagrees with Cmp", i)
		}
	}
}

func TestBallotNext(t *testing.T) {
	// Next classic from the default fast ballot outranks it.
	n := DefaultFast.Next("ldr")
	if !DefaultFast.Less(n) {
		t.Fatalf("Next(%v) = %v does not outrank", DefaultFast, n)
	}
	if n.Fast {
		t.Fatal("Next should be classic")
	}
	// Next from classic bumps N.
	n2 := n.Next("ldr")
	if !n.Less(n2) || n2.N != n.N+1 {
		t.Fatalf("Next from classic = %v", n2)
	}
	// NextFast outranks the classic it follows.
	f := n.NextFast()
	if !n.Less(f) || !f.Fast {
		t.Fatalf("NextFast(%v) = %v", n, f)
	}
}

func TestBallotOrderingTotal(t *testing.T) {
	f := func(n1, n2 uint64, f1, f2 bool, l1, l2 string) bool {
		a := Ballot{N: n1 % 8, Fast: f1, Leader: l1}
		b := Ballot{N: n2 % 8, Fast: f2, Leader: l2}
		// Antisymmetry and totality.
		if a.Cmp(b) != -b.Cmp(a) {
			return false
		}
		if a.Cmp(b) == 0 && (a != b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBallotSortTransitive(t *testing.T) {
	bs := []Ballot{
		Classic(2, "b"), DefaultFast, FastBallot(2), Classic(0, "a"),
		Classic(2, "a"), FastBallot(1), Classic(1, "z"),
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].Less(bs[j]) })
	for i := 1; i < len(bs); i++ {
		if bs[i].Less(bs[i-1]) {
			t.Fatalf("sort order violated at %d: %v > %v", i, bs[i-1], bs[i])
		}
	}
	if bs[0] != DefaultFast {
		t.Fatalf("DefaultFast should sort first, got %v", bs[0])
	}
}

func TestQuorumSizes(t *testing.T) {
	q := NewQuorum(5)
	if q.Classic != 3 || q.Fast != 4 {
		t.Fatalf("NewQuorum(5) = %+v, want classic 3 fast 4", q)
	}
	if !q.Valid() {
		t.Fatal("5-replica quorum invalid")
	}
	for n := 3; n <= 12; n++ {
		if !NewQuorum(n).Valid() {
			t.Errorf("NewQuorum(%d) invalid", n)
		}
	}
}

func TestQuorumInvalid(t *testing.T) {
	bad := []Quorum{
		{N: 5, Classic: 2, Fast: 4}, // two classics may not intersect
		{N: 5, Classic: 3, Fast: 3}, // two fasts + classic may not intersect
		{N: 5, Classic: 3, Fast: 6}, // fast larger than N
		{N: 5, Classic: 0, Fast: 4},
	}
	for i, q := range bad {
		if q.Valid() {
			t.Errorf("case %d: %+v should be invalid", i, q)
		}
	}
}

func TestPossiblyChosen(t *testing.T) {
	q := NewQuorum(5) // fast = 4
	cases := []struct {
		votes, responded int
		want             bool
	}{
		{4, 4, true},  // already a fast quorum
		{3, 4, true},  // the 5th might agree
		{2, 4, false}, // at most 3 total
		{3, 3, true},  // two silent nodes might both agree
		{2, 3, true},
		{1, 3, false},
		{0, 5, false},
		{2, 5, false}, // everyone responded, only 2 agree
	}
	for i, c := range cases {
		if got := q.PossiblyChosen(c.votes, c.responded); got != c.want {
			t.Errorf("case %d: PossiblyChosen(%d,%d) = %v, want %v", i, c.votes, c.responded, got, c.want)
		}
	}
}

// At most one decision of a binary vote can be possibly-chosen once a
// classic quorum has responded — the property collision recovery
// relies on.
func TestPossiblyChosenExclusive(t *testing.T) {
	for n := 3; n <= 11; n++ {
		q := NewQuorum(n)
		for responded := q.Classic; responded <= n; responded++ {
			for accepts := 0; accepts <= responded; accepts++ {
				rejects := responded - accepts
				a := q.PossiblyChosen(accepts, responded)
				r := q.PossiblyChosen(rejects, responded)
				if a && r {
					t.Fatalf("n=%d responded=%d accepts=%d: both decisions possibly chosen", n, responded, accepts)
				}
			}
		}
	}
}

func TestLearnedThresholds(t *testing.T) {
	q := NewQuorum(5)
	if q.FastLearned(3) || !q.FastLearned(4) {
		t.Fatal("FastLearned thresholds wrong")
	}
	if q.ClassicLearned(2) || !q.ClassicLearned(3) {
		t.Fatal("ClassicLearned thresholds wrong")
	}
}

func TestBallotString(t *testing.T) {
	if DefaultFast.String() != "fast:0" {
		t.Fatalf("DefaultFast.String() = %q", DefaultFast.String())
	}
	if Classic(3, "n1").String() != "classic:3@n1" {
		t.Fatalf("Classic String = %q", Classic(3, "n1").String())
	}
}
