// Hand-rolled binary wire codec for the TCP transport.
//
// The hot protocol messages (Phase2a/2b, vote batches, gateway batch
// envelopes, the visibility feed, the client RPC surface) dominate
// wire traffic, and gob's per-message overhead — field names on the
// first transmission, type ids and field numbers on every one —
// dominated their encoded size. Those messages now hand-serialize
// into a length-prefixed frame; everything else (cold message types
// registered with RegisterMessage) still rides gob, nested inside the
// same framing, so third-party message types keep working unchanged.
//
// Frame layout (after the one-time connection preamble, see tcp.go):
//
//	u32 big-endian payload length | payload
//
// Payload = envelope:
//
//	string From | string To | uvarint TraceClk | u8 tag | body
//
// tag 0 is the gob fallback: body is a uvarint-length-prefixed gob
// stream of the message (self-contained — every fallback frame
// carries its own type descriptors). Any other tag names a message
// type registered with RegisterWire; body is that type's AppendWire
// output, decoded by its registered decoder.
//
// Primitive encodings: uvarint/varint are encoding/binary's; bools
// are one byte (0/1); strings and byte slices are uvarint length +
// raw bytes. Envelopes nest (transport.Batch carries inner
// envelopes), so the envelope encoder is itself a primitive.
//
// Versioning rule: the connection preamble carries a wire version
// byte. Tags, field order, and primitive encodings are frozen for a
// given version; any incompatible change bumps the version, and a
// reader that sees an unknown version drops the connection (peers
// within one deployment run the same build, so this is a guard
// against accidents, not a negotiation).
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
)

// WireVersion is the binary framing version byte in the connection
// preamble. Bump on any incompatible change to tags or encodings.
const WireVersion = 1

// wireMagic announces binary framing at connection open. The first
// byte is deliberately outside the range a gob stream can start with
// (gob opens with a small uvarint message length), so a receiver can
// tell the codecs apart from the first byte.
var wireMagic = [4]byte{0xD7, 'M', 'D', 'C'}

// maxFrame bounds a single wire frame; larger frames indicate a
// corrupt or hostile stream and drop the connection.
const maxFrame = 1 << 26 // 64 MiB

// Wire tag space. Tag 0 is reserved for the gob fallback; transport
// owns 1..15, internal/core 16..47, internal/gateway 48..63.
const (
	tagGob   = 0
	TagHello = 1
	TagBatch = 2
)

// WireMessage is a message type that hand-serializes onto the binary
// wire. AppendWire appends the message body (no tag, no length) to b
// and returns the extended slice, in the exact form the decoder
// registered for WireTag consumes.
type WireMessage interface {
	Message
	WireTag() uint8
	AppendWire(b []byte) []byte
}

// WireDecoder decodes one message body previously produced by the
// matching AppendWire. Decoders must copy what they keep: the input
// reader's backing buffer is reused for the next frame.
type WireDecoder func(r *WireReader) (Message, error)

var (
	wireMu       sync.RWMutex
	wireDecoders [64]WireDecoder
)

// RegisterWire installs the decoder for a wire tag. Protocol packages
// call it from init alongside RegisterMessage (the gob registration
// stays: it serves mixed-codec peers and the fallback path).
func RegisterWire(tag uint8, dec WireDecoder) {
	if tag == tagGob || int(tag) >= len(wireDecoders) {
		panic(fmt.Sprintf("transport: wire tag %d out of range", tag))
	}
	wireMu.Lock()
	defer wireMu.Unlock()
	if wireDecoders[tag] != nil {
		panic(fmt.Sprintf("transport: wire tag %d registered twice", tag))
	}
	wireDecoders[tag] = dec
}

func wireDecoder(tag uint8) WireDecoder {
	if int(tag) >= len(wireDecoders) {
		return nil
	}
	wireMu.RLock()
	defer wireMu.RUnlock()
	return wireDecoders[tag]
}

// ---- append-side primitives ----

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag signed varint form.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a uvarint length followed by the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length followed by the raw bytes.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// ---- read-side primitives ----

// WireReader consumes a message body sequentially. The first
// malformed read latches an error; subsequent reads return zero
// values, so decoders check Err once at the end.
type WireReader struct {
	b   []byte
	off int
	err error
}

// NewWireReader reads from b (not copied; see WireDecoder on copying
// what outlives the call).
func NewWireReader(b []byte) *WireReader { return &WireReader{b: b} }

// fail latches the first error.
func (r *WireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: wire decode: truncated or corrupt %s at offset %d", what, r.off)
	}
}

// Err returns the latched decode error, if any.
func (r *WireReader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *WireReader) Len() int { return len(r.b) - r.off }

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Byte reads one byte.
func (r *WireReader) Byte() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads one byte as a bool.
func (r *WireReader) Bool() bool { return r.Byte() != 0 }

// String reads a length-prefixed string (copied out of the buffer).
func (r *WireReader) String() string {
	p := r.take("string")
	return string(p)
}

// InternString reads a length-prefixed string through the bounded
// intern table: for hot low-cardinality wire strings (node ids, record
// keys, attribute and lane names) the steady-state decode path stops
// allocating one string copy per occurrence. Do NOT use it for
// unbounded-cardinality strings (transaction ids): they would only
// churn the table until it pins at capacity full of dead entries.
func (r *WireReader) InternString() string {
	return internBytes(r.take("string"))
}

// The intern table. Lookup keyed by string(p) compiles to a
// no-allocation map access; a miss copies once and remembers the copy.
// The table is append-only and capped — under a hostile or pathological
// stream it stops admitting new entries rather than growing without
// bound, and decoding stays correct either way (a full table just
// means misses allocate, as they did before interning).
const internCap = 8192

var (
	internMu  sync.RWMutex
	internTab = make(map[string]string, 256)
)

func internBytes(p []byte) string {
	if len(p) == 0 || len(p) > 128 {
		return string(p) // oversized strings are not worth pinning
	}
	internMu.RLock()
	s, ok := internTab[string(p)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(p)
	internMu.Lock()
	if len(internTab) < internCap {
		internTab[s] = s
	}
	internMu.Unlock()
	return s
}

// Bytes reads a length-prefixed byte slice, copied out of the buffer
// (nil for length 0, matching the common nil-slice encode side).
func (r *WireReader) Bytes() []byte {
	p := r.take("bytes")
	if len(p) == 0 {
		return nil
	}
	return append([]byte(nil), p...)
}

// take consumes a length-prefixed region in place (no copy).
func (r *WireReader) take(what string) []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(what)
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// ---- envelope encode/decode ----

// gobPayload wraps the fallback message so gob serializes the
// interface (the concrete type travels by its RegisterMessage name).
type gobPayload struct{ M Message }

// AppendEnvelope appends e in binary wire form: header, tag, body.
// Messages that implement WireMessage with a registered decoder use
// their hand-rolled body; everything else gets a self-contained gob
// stream under tag 0.
func AppendEnvelope(b []byte, e Envelope) ([]byte, error) {
	b = AppendString(b, string(e.From))
	b = AppendString(b, string(e.To))
	b = AppendUvarint(b, e.TraceClk)
	if wm, ok := e.Msg.(WireMessage); ok {
		if tag := wm.WireTag(); wireDecoder(tag) != nil {
			b = append(b, tag)
			return wm.AppendWire(b), nil
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobPayload{M: e.Msg}); err != nil {
		return b, fmt.Errorf("transport: gob fallback encode %T: %w", e.Msg, err)
	}
	b = append(b, tagGob)
	return AppendBytes(b, buf.Bytes()), nil
}

// DecodeEnvelope parses one envelope from r.
func DecodeEnvelope(r *WireReader) (Envelope, error) {
	var e Envelope
	e.From = NodeID(r.InternString())
	e.To = NodeID(r.InternString())
	e.TraceClk = r.Uvarint()
	tag := r.Byte()
	if err := r.Err(); err != nil {
		return e, err
	}
	if tag == tagGob {
		raw := r.take("gob payload")
		if err := r.Err(); err != nil {
			return e, err
		}
		var p gobPayload
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
			return e, fmt.Errorf("transport: gob fallback decode: %w", err)
		}
		e.Msg = p.M
		return e, nil
	}
	dec := wireDecoder(tag)
	if dec == nil {
		return e, fmt.Errorf("transport: unknown wire tag %d", tag)
	}
	msg, err := dec(r)
	if err != nil {
		return e, err
	}
	if err := r.Err(); err != nil {
		return e, err
	}
	e.Msg = msg
	return e, nil
}

// wireReaderPool recycles WireReaders across frames. The TCP read
// loop decodes exactly one frame per reader, and with the payload
// buffer already reused the reader struct itself was the last
// per-frame allocation on the steady-state read path.
var wireReaderPool = sync.Pool{New: func() interface{} { return new(WireReader) }}

// DecodeFrame parses one framed envelope payload using a pooled
// reader — the TCP read path's per-frame entry point. The payload
// buffer may be reused by the caller as soon as DecodeFrame returns
// (decoders copy what they keep, and the pooled reader drops its
// reference before going back to the pool).
func DecodeFrame(payload []byte) (Envelope, error) {
	r := wireReaderPool.Get().(*WireReader)
	r.b, r.off, r.err = payload, 0, nil
	e, err := DecodeEnvelope(r)
	r.b = nil // don't pin the caller's buffer from the pool
	wireReaderPool.Put(r)
	return e, err
}

// EncodedSize returns the binary wire size of one envelope carrying
// msg (frame length prefix included) — the per-type bytes/msg the
// live benchmark reports for the gob-vs-binary comparison.
func EncodedSize(msg Message) (int, error) {
	b, err := AppendEnvelope(nil, Envelope{From: "a", To: "b", Msg: msg})
	if err != nil {
		return 0, err
	}
	return 4 + len(b), nil
}

// GobEncodedSize returns the size of the same envelope on a fresh gob
// stream (descriptors included, as a reconnecting gob peer pays them).
func GobEncodedSize(msg Message) (int, error) {
	var buf bytes.Buffer
	e := Envelope{From: "a", To: "b", Msg: msg}
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// ---- transport's own wire messages ----

// WireTag implements WireMessage.
func (h helloMsg) WireTag() uint8 { return TagHello }

// AppendWire implements WireMessage.
func (h helloMsg) AppendWire(b []byte) []byte {
	b = AppendString(b, string(h.ID))
	return AppendString(b, h.Addr)
}

// WireTag implements WireMessage.
func (bt Batch) WireTag() uint8 { return TagBatch }

// AppendWire implements WireMessage. Inner envelopes reuse the
// envelope encoding recursively; an item whose encode fails (a gob
// fallback of an unregistered type — a programming error surfaced
// loudly elsewhere) is skipped rather than corrupting the frame.
func (bt Batch) AppendWire(b []byte) []byte {
	b = AppendUvarint(b, uint64(len(bt.Items)))
	for _, item := range bt.Items {
		b, _ = AppendEnvelope(b, item)
	}
	return b
}

func init() {
	RegisterWire(TagHello, func(r *WireReader) (Message, error) {
		var h helloMsg
		h.ID = NodeID(r.InternString())
		h.Addr = r.String()
		return h, r.Err()
	})
	RegisterWire(TagBatch, func(r *WireReader) (Message, error) {
		n := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n > uint64(r.Len()) { // each item costs >= 1 byte
			return nil, fmt.Errorf("transport: batch count %d exceeds frame", n)
		}
		items := make([]Envelope, 0, n)
		for i := uint64(0); i < n; i++ {
			item, err := DecodeEnvelope(r)
			if err != nil {
				return nil, err
			}
			items = append(items, item)
		}
		return Batch{Items: items}, nil
	})
}
