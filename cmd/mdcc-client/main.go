// mdcc-client is a command-line client for a TCP MDCC deployment.
//
//	mdcc-client -topology cluster.json -dc us-west get item/42
//	mdcc-client -topology cluster.json -dc us-west set item/42 stock=10 price=1999
//	mdcc-client -topology cluster.json -dc ap-tk   inc item/42 stock=-1
//	mdcc-client -topology cluster.json -dc us-west del item/42
//
// set and del perform an optimistic read-modify-write (retried on
// conflict); inc issues a commutative delta that commits in one
// wide-area round trip.
//
// -timing prints each operation's end-to-end latency; -n repeats a
// get or inc and summarizes the latency distribution (log-bucketed
// p50/p99/max) — the client-side end of the server's /trace and
// /metrics phase histograms when chasing a slow deployment.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"mdcc"
	"mdcc/internal/stats"
)

var (
	topoPath = flag.String("topology", "cluster.json", "topology JSON file")
	dcName   = flag.String("dc", "us-west", "home data center")
	clientID = flag.String("id", fmt.Sprintf("cli-%d", os.Getpid()), "unique client id")
	listen   = flag.String("listen", "127.0.0.1:0", "local reply address")
	retries  = flag.Int("retries", 5, "optimistic retry attempts for set/del")
	timing   = flag.Bool("timing", false, "print each operation's end-to-end latency")
	repeat   = flag.Int("n", 1, "repeat a get or inc N times and print a latency summary (p50/p99/max)")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdcc-client [flags] get|set|inc|del KEY [attr=value ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	log.SetFlags(0)

	topo, err := mdcc.LoadRemoteTopology(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	dc, err := mdcc.ParseDC(*dcName)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := mdcc.Dial(topo, dc, *clientID, *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	cmd, key := flag.Arg(0), mdcc.Key(flag.Arg(1))
	switch cmd {
	case "get":
		var hist *stats.Histogram
		if *repeat > 1 {
			hist = stats.NewHistogram(0)
		}
		for i := 0; i < *repeat; i++ {
			t0 := time.Now()
			val, ver, exists, err := sess.Read(key)
			took := time.Since(t0)
			if err != nil {
				log.Fatal(err)
			}
			if hist != nil {
				hist.Add(int64(took))
				continue
			}
			if *timing {
				log.Printf("read took %s", took.Round(time.Microsecond))
			}
			if !exists {
				fmt.Printf("%s: not found (version %d)\n", key, ver)
				os.Exit(1)
			}
			fmt.Printf("%s = %s (version %d)\n", key, val, ver)
		}
		summarize("read", hist)

	case "set":
		attrs, err := parseAttrs(flag.Args()[2:])
		if err != nil {
			log.Fatal(err)
		}
		ok, err := sess.Transact(*retries, func(tx *mdcc.TxView) error {
			old, ver, _ := tx.Read(key)
			next := old.Clone()
			if next.Attrs == nil {
				next.Attrs = map[string]int64{}
			}
			next.Tombstone = false
			for k, v := range attrs {
				next.Attrs[k] = v
			}
			tx.Write(key, ver, next)
			return nil
		})
		report(ok, err)

	case "inc":
		deltas, err := parseAttrs(flag.Args()[2:])
		if err != nil {
			log.Fatal(err)
		}
		if len(deltas) == 0 {
			log.Fatal("inc needs at least one attr=delta")
		}
		var hist *stats.Histogram
		if *repeat > 1 {
			hist = stats.NewHistogram(0)
		}
		var ok bool
		for i := 0; i < *repeat; i++ {
			t0 := time.Now()
			ok, err = sess.Commit(mdcc.Commutative(key, deltas))
			took := time.Since(t0)
			if err != nil {
				log.Fatal(err)
			}
			if hist != nil {
				if !ok {
					log.Fatalf("inc %d/%d ABORTED; stopping the latency run", i+1, *repeat)
				}
				hist.Add(int64(took))
				continue
			}
			if *timing {
				log.Printf("commit took %s", took.Round(time.Microsecond))
			}
		}
		summarize("commit", hist)
		report(ok, err)

	case "del":
		ok, err := sess.Transact(*retries, func(tx *mdcc.TxView) error {
			_, ver, exists := tx.Read(key)
			if !exists {
				return fmt.Errorf("%s: not found", key)
			}
			tx.Delete(key, ver)
			return nil
		})
		report(ok, err)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseAttrs(args []string) (map[string]int64, error) {
	out := make(map[string]int64, len(args))
	for _, a := range args {
		name, valStr, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("bad attribute %q (want name=int)", a)
		}
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad attribute %q: %v", a, err)
		}
		out[name] = v
	}
	return out, nil
}

// summarize prints the -n latency run's distribution. Nil hist (a
// single-shot invocation) is a no-op.
func summarize(op string, hist *stats.Histogram) {
	if hist == nil {
		return
	}
	ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	fmt.Printf("%s latency over %d ops: p50=%.1fms p99=%.1fms max=%.1fms mean=%.1fms\n",
		op, hist.N, ms(hist.Quantile(0.50)), ms(hist.Quantile(0.99)), ms(hist.Max),
		hist.Mean()/float64(time.Millisecond))
}

func report(ok bool, err error) {
	if err != nil {
		log.Fatal(err)
	}
	// Visibility notifications are asynchronous; give the transport a
	// beat to flush them before the process exits (otherwise the
	// storage nodes' dangling-transaction sweep has to finish the
	// transaction seconds later).
	time.Sleep(250 * time.Millisecond)
	if !ok {
		fmt.Println("ABORTED (write-write conflict or constraint violation)")
		os.Exit(1)
	}
	fmt.Println("COMMITTED")
}
