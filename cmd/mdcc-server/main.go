// mdcc-server hosts one data center's MDCC storage nodes over TCP.
// Run one per data center with the same topology file:
//
//	mdcc-server -topology cluster.json -dc us-west -listen :7420 -data /var/lib/mdcc
//
// The topology file maps data centers to addresses (see
// mdcc.RemoteTopology). Each server hosts every shard of its data
// center, with WAL-backed durable stores when -data is set.
//
// With -gateway the server additionally hosts the data center's
// transaction gateway tier on the same listener: thin clients
// (mdcc.DialGateway) submit transactions as RPCs and the gateway
// pools coordinators, batches outbound messages across transactions,
// and coalesces hot-key commutative updates into merged options.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"mdcc"
	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

var (
	topoPath = flag.String("topology", "cluster.json", "topology JSON file")
	dcName   = flag.String("dc", "", "this server's data center (us-west, us-east, eu-ie, ap-sg, ap-tk)")
	listen   = flag.String("listen", "", "listen address (default: this DC's address from the topology)")
	dataDir  = flag.String("data", "", "durable store directory (empty = in-memory)")
	httpAddr = flag.String("http", "", "optional HTTP endpoint serving /metrics and /healthz")

	walGroup  = flag.Bool("wal-group-commit", true, "coalesce concurrent WAL appends under one fsync (with -data)")
	walStall  = flag.Duration("wal-max-stall", 0, "optional wait that grows group-commit batches (0 = sync immediately; with -data)")
	ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second, "how often durable nodes snapshot full state and truncate the WAL; 0 disables and recovery replays the whole log (with -data)")

	gwMode     = flag.Bool("gateway", false, "host this DC's transaction gateway tier (mdcc.DialGateway clients)")
	gwPool     = flag.Int("gateway-pool", 0, "pooled coordinators in the gateway (0 = default)")
	gwBatch    = flag.Duration("gateway-batch-window", 0, "outbound cross-transaction batching window (0 = default)")
	gwCoalesce = flag.Duration("gateway-coalesce-window", 0, "hot-key delta coalescing window (0 = default)")
	gwInflight = flag.Int("gateway-max-inflight", 0, "admission: max in-flight transactions (0 = default)")
	gwReadTier = flag.Bool("gateway-read-tier", true, "serve gateway reads from the DC-local learned replica (visibility-feed materialized memory); false = one RPC per read")
	gwFeedTTL  = flag.Duration("gateway-feed-ttl", 0, "read tier: max visibility-feed silence before memory reads fall back to RPC (0 = default 2s)")

	codecName = flag.String("codec", "", "send-side wire codec: binary or gob (default: topology's codec, else binary; receive always auto-detects)")

	profile      = flag.Bool("profile", false, "serve Go pprof endpoints under /debug/pprof/ on -http and enable block/mutex profiling")
	traceOn      = flag.Bool("trace", false, "run the transaction flight recorder; retained timelines serve on /trace")
	traceSlow    = flag.Duration("trace-slow", 0, "flight recorder: retain transactions slower than this (0 = default 1s)")
	traceSlowest = flag.Int("trace-slowest", 0, "flight recorder: always keep the N slowest transactions (0 = default 5)")
)

func main() {
	flag.Parse()
	log.SetPrefix("mdcc-server: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	topo, err := mdcc.LoadRemoteTopology(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	dc, err := mdcc.ParseDC(*dcName)
	if err != nil {
		log.Fatal(err)
	}
	mode, err := topo.ModeValue()
	if err != nil {
		log.Fatal(err)
	}
	addr := *listen
	if addr == "" {
		addr = topo.Addrs[dc.String()]
	}
	if addr == "" {
		log.Fatalf("no listen address for %s in %s", dc, *topoPath)
	}

	if *gwPool > gateway.MaxRoutedPool {
		log.Fatalf("-gateway-pool %d exceeds the cross-server routing cap of %d", *gwPool, gateway.MaxRoutedPool)
	}

	// Routes to the other data centers' servers: their storage nodes
	// and — in case a peer hosts a gateway tier — its gateway nodes
	// (votes, learned decisions and read replies flow directly back to
	// the pooled coordinators living on that peer).
	routes := make(map[transport.NodeID]string)
	for name, a := range topo.Addrs {
		peer, err := mdcc.ParseDC(name)
		if err != nil {
			log.Fatal(err)
		}
		if peer == dc {
			continue
		}
		for i := 0; i < topo.NodesPerDC; i++ {
			routes[topology.StorageID(peer, i)] = a
		}
		for _, id := range gateway.RouteIDs(peer) {
			routes[id] = a
		}
	}
	net := transport.NewTCP(routes)
	net.Logf = log.Printf
	codecStr := *codecName
	if codecStr == "" {
		codecStr = topo.Codec
	}
	codec, err := transport.ParseCodec(codecStr)
	if err != nil {
		log.Fatal(err)
	}
	net.SetCodec(codec)
	bound, err := net.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}

	if *profile {
		// Sample every mutex contention event and block events >= 1ms
		// so /debug/pprof/{mutex,block} have data without a rebuild.
		runtime.SetMutexProfileFraction(1)
		runtime.SetBlockProfileRate(int(time.Millisecond))
		log.Printf("profiling on (mutex fraction 1, block rate 1ms)")
	}

	cfg := core.Defaults(mode)
	cfg.Constraints = topo.ConstraintList()
	var rec *trace.Recorder
	if *traceOn {
		rec = trace.New(trace.Config{SlowThreshold: *traceSlow, SlowestN: *traceSlowest})
		cfg.Tracer = rec
		// Stamp outbound envelopes and merge inbound stamps so the
		// Lamport order spans servers, not just this process.
		net.SetTracer(rec)
		if !trace.Built {
			log.Printf("flight recorder requested but compiled out (notrace build tag); /trace will be empty")
		} else {
			log.Printf("flight recorder on (slow threshold %s)", rec.SlowThreshold())
		}
	}
	cl := topology.NewCluster(topology.Layout{NodesPerDC: topo.NodesPerDC, Clients: 0, ClientDC: -1})

	if *dataDir != "" {
		cfg.CheckpointInterval = *ckptEvery
	}
	var stores []*kv.Store
	var durables []*core.DurableState
	var nodes []*core.StorageNode
	for i := 0; i < topo.NodesPerDC; i++ {
		id := topology.StorageID(dc, i)
		if *dataDir != "" {
			dir := filepath.Join(*dataDir, fmt.Sprintf("shard%d", i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
			ds, err := core.OpenDurableOpts(dir, core.DurableOptions{
				GroupCommit: *walGroup,
				MaxStall:    *walStall,
			})
			if err != nil {
				log.Fatal(err)
			}
			stores = append(stores, ds.Store)
			durables = append(durables, ds)
			nodes = append(nodes, core.NewDurableStorageNode(id, dc, net, cl, cfg, ds))
			rs := ds.RecoveryStats()
			from := "empty log"
			switch {
			case rs.UsedSnapshot:
				from = fmt.Sprintf("snapshot %d + %d-record tail", rs.SnapshotSeq, rs.TailStore+rs.TailOplog)
				if rs.FellBack {
					from += " (fell back one snapshot)"
				}
			case rs.TailStore+rs.TailOplog > 0:
				from = fmt.Sprintf("full replay of %d records", rs.TailStore+rs.TailOplog)
			}
			log.Printf("storage node %s up (shard %d/%d, mode %s, recovered from %s in %s)",
				id, i+1, topo.NodesPerDC, mode, from, rs.Duration.Round(time.Millisecond))
		} else {
			store := kv.NewMemory()
			stores = append(stores, store)
			nodes = append(nodes, core.NewStorageNode(id, dc, net, cl, cfg, store))
			log.Printf("storage node %s up (shard %d/%d, mode %s)", id, i+1, topo.NodesPerDC, mode)
		}
	}
	if *dataDir != "" {
		gc := "group-commit"
		if !*walGroup {
			gc = "fsync-per-append"
		}
		ckpt := "off (full-log recovery)"
		if *ckptEvery > 0 {
			ckpt = ckptEvery.String()
		}
		log.Printf("durable engine: %s, checkpoints every %s", gc, ckpt)
	}
	var gw *gateway.Gateway
	if *gwMode {
		tun := mdcc.GatewayTuning{
			Pool:            *gwPool,
			BatchWindow:     *gwBatch,
			CoalesceWindow:  *gwCoalesce,
			MaxInflight:     *gwInflight,
			DisableReadTier: !*gwReadTier,
			FeedTTL:         *gwFeedTTL,
		}
		gw = gateway.New(dc, net, cl, cfg, tun)
		resolved := gw.Tuning()
		readTier := "off (per-RPC reads)"
		if !resolved.DisableReadTier {
			readTier = fmt.Sprintf("on (feed ttl %s)", resolved.FeedTTL)
		}
		log.Printf("gateway tier up as %s (pool %d, batch %s, coalesce %s, headroom share 1/%d, read tier %s)",
			gw.ID(), resolved.Pool, resolved.BatchWindow, resolved.CoalesceWindow, resolved.HeadroomShare, readTier)
	}
	log.Printf("%s serving on %s (shard ring epoch %d, %d active groups)",
		dc, bound, cl.Ring().Epoch(), len(cl.Ring().Current().Groups()))
	var ops *opsState
	if *httpAddr != "" {
		ops = serveHTTP(*httpAddr, dc, cl, nodes, stores, net, gw, rec, *profile, len(durables) > 0)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	// Gate the HTTP endpoints first: Close waits out in-flight handlers
	// and flips them to 503, so nothing below races a /metrics scrape.
	ops.Close()
	if gw != nil {
		gw.Close()
	}
	net.Close()
	if len(durables) > 0 {
		// Durable close flushes and releases both WALs per shard (the
		// committed store's and the decision oplog's).
		for _, ds := range durables {
			_ = ds.Close()
		}
	} else {
		for _, s := range stores {
			_ = s.Close()
		}
	}
}
