package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mdcc/internal/stats"
)

// Phase identifies a pipeline interval whose latency is histogrammed.
type Phase uint8

const (
	// PhaseGatewayQueue is admit → dispatch at the gateway: time spent
	// queued behind the inflight cap and inside coalesce windows.
	PhaseGatewayQueue Phase = iota + 1
	// PhaseQuorum is propose → learned outcome at the coordinator:
	// quorum assembly, including recovery hops.
	PhaseQuorum
	// PhaseVote is propose → each voter's reply, labeled by the
	// voter's DC: the per-DC round trip the paper's fast/classic
	// latency argument is about.
	PhaseVote
	// PhaseVisibility is vote → execution at the acceptor: how long a
	// learned option waits before its side effects become readable.
	PhaseVisibility
	// PhaseEndToEnd is admit → ack as the client saw it.
	PhaseEndToEnd
)

var phaseNames = [...]string{
	PhaseGatewayQueue: "gateway-queue",
	PhaseQuorum:       "quorum",
	PhaseVote:         "vote",
	PhaseVisibility:   "visibility",
	PhaseEndToEnd:     "end-to-end",
}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) && phaseNames[p] != "" {
		return phaseNames[p]
	}
	return "phase?"
}

// PhaseKey identifies one histogram: a phase, split by data center
// where the split is meaningful (DC is -1 for unsplit phases).
type PhaseKey struct {
	Phase Phase
	DC    int8
}

// String renders "vote[dc2]" / "quorum".
func (k PhaseKey) String() string {
	if k.DC < 0 {
		return k.Phase.String()
	}
	return fmt.Sprintf("%s[dc%d]", k.Phase, k.DC)
}

type phaseSet struct {
	mu sync.Mutex
	m  map[PhaseKey]*stats.Histogram
}

// ObservePhase records one latency sample (in nanoseconds, as a
// Duration) for a phase; dc < 0 for phases not split by DC.
func (rec *Recorder) ObservePhase(p Phase, dc int, d time.Duration) {
	if !Built || rec == nil {
		return
	}
	if dc > 127 {
		dc = 127
	}
	k := PhaseKey{Phase: p, DC: int8(dc)}
	ps := &rec.phases
	ps.mu.Lock()
	h := ps.m[k]
	if h == nil {
		if ps.m == nil {
			ps.m = make(map[PhaseKey]*stats.Histogram)
		}
		h = stats.NewHistogram(0)
		ps.m[k] = h
	}
	h.Add(int64(d))
	ps.mu.Unlock()
}

// PhaseHistogram returns a copy of one phase's histogram, merged
// across DCs when dc < 0 and the phase is DC-split. Returns nil when
// nothing was recorded.
func (rec *Recorder) PhaseHistogram(p Phase, dc int) *stats.Histogram {
	if rec == nil {
		return nil
	}
	ps := &rec.phases
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if dc >= 0 {
		if h := ps.m[PhaseKey{Phase: p, DC: int8(dc)}]; h != nil {
			return h.Clone()
		}
		return nil
	}
	var out *stats.Histogram
	for k, h := range ps.m {
		if k.Phase != p {
			continue
		}
		if out == nil {
			out = h.Clone()
		} else {
			_ = out.Merge(h) // same geometry by construction
		}
	}
	return out
}

// Phases snapshots every histogram, keyed and sorted stably
// (phase order, then DC), for /metrics export and report tables.
func (rec *Recorder) Phases() []PhaseSnapshot {
	if rec == nil {
		return nil
	}
	ps := &rec.phases
	ps.mu.Lock()
	out := make([]PhaseSnapshot, 0, len(ps.m))
	for k, h := range ps.m {
		out = append(out, PhaseSnapshot{Key: k, Hist: h.Clone()})
	}
	ps.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Phase != out[j].Key.Phase {
			return out[i].Key.Phase < out[j].Key.Phase
		}
		return out[i].Key.DC < out[j].Key.DC
	})
	return out
}

// PhaseSnapshot is one exported phase histogram.
type PhaseSnapshot struct {
	Key  PhaseKey
	Hist *stats.Histogram
}
