package qw

import (
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

type world struct {
	net     *simnet.Net
	cl      *topology.Cluster
	nodes   []*StorageNode
	clients []*Client
}

func newWorld(t *testing.T, w int, clients int, seed int64) *world {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: clients, ClientDC: -1})
	net := simnet.New(simnet.Options{Latency: cl.Latency(), JitterFrac: 0.05, Seed: seed})
	wd := &world{net: net, cl: cl}
	for _, n := range cl.Storage {
		wd.nodes = append(wd.nodes, NewStorageNode(n.ID, net, kv.NewMemory()))
	}
	for _, c := range cl.Clients {
		wd.clients = append(wd.clients, NewClient(c.ID, c.DC, net, cl, w))
	}
	return wd
}

func TestWriteWaitsForQuorum(t *testing.T) {
	w := newWorld(t, 3, 1, 1)
	start := w.net.Now()
	var done bool
	w.clients[0].Commit([]record.Update{
		record.Insert("k1", record.Value{Attrs: map[string]int64{"x": 1}}),
	}, func(ok bool) { done = ok })
	if !w.net.RunUntil(func() bool { return done }, time.Minute) {
		t.Fatal("write never acknowledged")
	}
	// Client 0 is us-west; 3rd ack (self + 2 closest) ≈ RTT to
	// ap-tokyo = 120ms; must be well under the 4th (eu at 170ms).
	elapsed := w.net.Now().Sub(start)
	if elapsed < 100*time.Millisecond || elapsed > 165*time.Millisecond {
		t.Fatalf("QW-3 ack after %v, want ~120-130ms", elapsed)
	}
}

func TestQW4SlowerThanQW3(t *testing.T) {
	run := func(wq int) time.Duration {
		w := newWorld(t, wq, 1, 2)
		start := w.net.Now()
		var done bool
		w.clients[0].Commit([]record.Update{
			record.Insert("k1", record.Value{Attrs: map[string]int64{"x": 1}}),
		}, func(ok bool) { done = ok })
		w.net.RunUntil(func() bool { return done }, time.Minute)
		return w.net.Now().Sub(start)
	}
	if d3, d4 := run(3), run(4); d4 <= d3 {
		t.Fatalf("QW-4 (%v) should wait longer than QW-3 (%v)", d4, d3)
	}
}

func TestEventualConvergenceAndRead(t *testing.T) {
	w := newWorld(t, 3, 2, 3)
	var done bool
	w.clients[0].Commit([]record.Update{
		record.Insert("k2", record.Value{Attrs: map[string]int64{"x": 7}}),
	}, func(bool) { done = true })
	w.net.RunUntil(func() bool { return done }, time.Minute)
	w.net.RunFor(time.Second) // let the slow replicas catch up
	for i, n := range w.nodes {
		v, _, ok := n.Store().Get("k2")
		if !ok || v.Attr("x") != 7 {
			t.Fatalf("replica %d did not converge: %v %v", i, v, ok)
		}
	}
	var got record.Value
	var exists, rdone bool
	w.clients[1].Read("k2", func(v record.Value, _ record.Version, ok bool) {
		got, exists, rdone = v, ok, true
	})
	w.net.RunUntil(func() bool { return rdone }, time.Minute)
	if !exists || got.Attr("x") != 7 {
		t.Fatalf("read = %v %v", got, exists)
	}
}

func TestLastWriterWins(t *testing.T) {
	w := newWorld(t, 3, 2, 4)
	var done1 bool
	w.clients[0].Commit([]record.Update{
		record.Insert("k3", record.Value{Attrs: map[string]int64{"x": 1}}),
	}, func(bool) { done1 = true })
	w.net.RunUntil(func() bool { return done1 }, time.Minute)
	w.net.RunFor(time.Second)
	var done2 bool
	w.clients[1].Commit([]record.Update{
		record.Physical("k3", 1, record.Value{Attrs: map[string]int64{"x": 2}}),
	}, func(bool) { done2 = true })
	w.net.RunUntil(func() bool { return done2 }, time.Minute)
	w.net.RunFor(time.Second)
	for i, n := range w.nodes {
		v, _, _ := n.Store().Get("k3")
		if v.Attr("x") != 2 {
			t.Fatalf("replica %d kept the older write: %v", i, v)
		}
	}
}

func TestCommutativeApplied(t *testing.T) {
	w := newWorld(t, 4, 2, 5)
	var done bool
	w.clients[0].Commit([]record.Update{
		record.Insert("k4", record.Value{Attrs: map[string]int64{"stock": 10}}),
	}, func(bool) { done = true })
	w.net.RunUntil(func() bool { return done }, time.Minute)
	w.net.RunFor(time.Second)
	results := 0
	for i := 0; i < 2; i++ {
		w.clients[i].Commit([]record.Update{
			record.Commutative("k4", map[string]int64{"stock": -3}),
		}, func(bool) { results++ })
	}
	w.net.RunUntil(func() bool { return results == 2 }, time.Minute)
	w.net.RunFor(time.Second)
	for i, n := range w.nodes {
		v, _, _ := n.Store().Get("k4")
		if v.Attr("stock") != 4 {
			t.Fatalf("replica %d stock = %d, want 4", i, v.Attr("stock"))
		}
	}
	if !w.clients[0].SupportsCommutative() {
		t.Fatal("qw should support commutative updates")
	}
}

func TestNoIsolationDocumented(t *testing.T) {
	// Quorum writes provide no write-write conflict detection: two
	// "transactions" writing with the same read version both "commit".
	w := newWorld(t, 3, 2, 6)
	results := 0
	for i := 0; i < 2; i++ {
		v := int64(i + 1)
		w.clients[i].Commit([]record.Update{
			record.Physical("k5", 0, record.Value{Attrs: map[string]int64{"x": v}}),
		}, func(ok bool) {
			if !ok {
				t.Error("qw write reported failure")
			}
			results++
		})
	}
	if !w.net.RunUntil(func() bool { return results == 2 }, time.Minute) {
		t.Fatal("writes never settled")
	}
	// Both committed — the lost-update anomaly MDCC prevents.
}

func TestMultiKeyWrite(t *testing.T) {
	w := newWorld(t, 3, 1, 7)
	var done bool
	w.clients[0].Commit([]record.Update{
		record.Insert("a", record.Value{Attrs: map[string]int64{"x": 1}}),
		record.Insert("b", record.Value{Attrs: map[string]int64{"x": 2}}),
		record.Insert("c", record.Value{Attrs: map[string]int64{"x": 3}}),
	}, func(bool) { done = true })
	if !w.net.RunUntil(func() bool { return done }, time.Minute) {
		t.Fatal("multi-key write never acknowledged")
	}
}
