package mdcc

import (
	"errors"
	"os"
	"testing"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// startTCPDeployment boots a real five-data-center deployment over
// loopback TCP (one transport per DC, as cmd/mdcc-server does) and
// returns its topology. withGateways additionally hosts each DC's
// gateway tier on its server transport (cmd/mdcc-server -gateway).
func startTCPDeployment(t *testing.T, mode Mode, cons []Constraint, withGateways bool) *RemoteTopology {
	t.Helper()
	// First pass: bind listeners so we know every address.
	nets := make(map[DC]*transport.TCP)
	addrs := make(map[string]string)
	for _, dc := range topology.AllDCs() {
		net := transport.NewTCP(nil)
		addr, err := net.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nets[dc] = net
		addrs[dc.String()] = addr
		t.Cleanup(net.Close)
	}
	// Second pass: install routes, storage nodes and gateways.
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 0, ClientDC: -1})
	for _, dc := range topology.AllDCs() {
		net := nets[dc]
		for _, peer := range topology.AllDCs() {
			if peer != dc {
				net.AddRoute(topology.StorageID(peer, 0), addrs[peer.String()])
				for _, id := range gateway.RouteIDs(peer) {
					net.AddRoute(id, addrs[peer.String()])
				}
			}
		}
		cfg := core.Defaults(mode)
		cfg.Constraints = cons
		// Loopback "WAN": tighten timeouts so recovery paths stay fast.
		cfg.OptionTimeout = 300 * time.Millisecond
		cfg.RecoveryRetry = 200 * time.Millisecond
		core.NewStorageNode(topology.StorageID(dc, 0), dc, net, cl, cfg, kv.NewMemory())
		if withGateways {
			gw := gateway.New(dc, net, cl, cfg, GatewayTuning{})
			t.Cleanup(gw.Close)
		}
	}
	modeName := map[Mode]string{ModeMDCC: "mdcc", ModeFast: "fast", ModeMulti: "multi"}[mode]
	topo := &RemoteTopology{NodesPerDC: 1, Mode: modeName, Addrs: addrs}
	return topo
}

func TestTCPDeploymentEndToEnd(t *testing.T) {
	topo := startTCPDeployment(t, ModeMDCC, []Constraint{MinBound("stock", 0)}, false)
	sess, err := Dial(topo, USWest, "t1", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	ok, err := sess.Commit(Insert("tcp/1", Value{Attrs: map[string]int64{"stock": 5}}))
	if err != nil || !ok {
		t.Fatalf("insert over TCP: ok=%v err=%v", ok, err)
	}
	var val Value
	var exists bool
	for i := 0; i < 100 && !exists; i++ {
		val, _, exists, err = sess.Read("tcp/1")
		if err != nil {
			t.Fatal(err)
		}
		if !exists {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !exists || val.Attr("stock") != 5 {
		t.Fatalf("read over TCP: %v %v", val, exists)
	}

	// Commutative decrement from a second client in another DC.
	sess2, err := Dial(topo, APTokyo, "t2", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	ok, err = sess2.Commit(Commutative("tcp/1", map[string]int64{"stock": -2}))
	if err != nil || !ok {
		t.Fatalf("decrement over TCP: ok=%v err=%v", ok, err)
	}
	for i := 0; i < 100; i++ {
		val, _, _, err = sess.Read("tcp/1")
		if err != nil {
			t.Fatal(err)
		}
		if val.Attr("stock") == 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stock never converged to 3: %v", val)
}

func TestTCPConflictDetection(t *testing.T) {
	topo := startTCPDeployment(t, ModeMDCC, nil, false)
	a, err := Dial(topo, USWest, "a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(topo, USEast, "b", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if ok, err := a.Commit(Insert("tcp/c", Value{Attrs: map[string]int64{"x": 0}})); err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	var ver Version
	for i := 0; i < 100; i++ {
		var exists bool
		_, ver, exists, _ = a.Read("tcp/c")
		if exists {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	okA, _ := a.Commit(Physical("tcp/c", ver, Value{Attrs: map[string]int64{"x": 1}}))
	okB, _ := b.Commit(Physical("tcp/c", ver, Value{Attrs: map[string]int64{"x": 2}}))
	if okA && okB {
		t.Fatal("both conflicting writers committed over TCP")
	}
}

// TestGatewayRPCOutcomeUnknown pins the client-visible unknown-outcome
// surface: a gateway that accepts a transaction and never acknowledges
// it (crash, partition, lost reply) must fail the session's Commit
// with the typed *OutcomeUnknownError — carrying the submission id —
// after the settle deadline, well before the generic session timeout
// would fire. Blind retries are unsafe on this error (the transaction
// may still commit), which is why it is distinct from ErrTimeout.
func TestGatewayRPCOutcomeUnknown(t *testing.T) {
	srv := transport.NewTCP(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	gwID := gateway.GatewayID(USWest)
	// Black-hole gateway: accepts every RPC, replies to none — the
	// observable behavior of a gateway that crashed with the
	// transaction in hand.
	srv.Register(gwID, func(transport.Envelope) {})

	cli := transport.NewTCP(map[transport.NodeID]string{gwID: addr})
	selfAddr, err := cli.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	id := transport.NodeID("client/unknown-outcome-test")
	cli.Hello(addr, id, selfAddr)

	cfg := core.Defaults(ModeMDCC)
	b := &gatewayRPCBackend{id: id, gwID: gwID, net: cli, unknownAfter: 200 * time.Millisecond}
	cli.Register(id, b.handle)
	s := newSession(b, cfg)

	start := time.Now()
	ok, err := s.Commit(Commutative("unk/1", map[string]int64{"x": 1}))
	if ok {
		t.Fatal("black-holed commit reported committed")
	}
	if !errors.Is(err, ErrOutcomeUnknown) {
		t.Fatalf("want ErrOutcomeUnknown, got %v", err)
	}
	var oe *OutcomeUnknownError
	if !errors.As(err, &oe) || oe.TxID == "" {
		t.Fatalf("typed error without a transaction id: %#v", err)
	}
	if elapsed := time.Since(start); elapsed >= s.timeout {
		t.Fatalf("typed error took %v, not faster than the generic session timeout %v", elapsed, s.timeout)
	}
}

func TestRemoteTopologyParsing(t *testing.T) {
	path := t.TempDir() + "/topo.json"
	blob := `{
	  "nodesPerDC": 2,
	  "mode": "multi",
	  "addrs": {"us-west": "a:1", "us-east": "b:2", "eu-ie": "c:3", "ap-sg": "d:4", "ap-tk": "e:5"},
	  "constraints": [{"attr": "stock", "min": 0}]
	}`
	if err := writeFile(path, blob); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadRemoteTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NodesPerDC != 2 {
		t.Fatalf("nodesPerDC = %d", topo.NodesPerDC)
	}
	mode, err := topo.ModeValue()
	if err != nil || mode != ModeMulti {
		t.Fatalf("mode = %v %v", mode, err)
	}
	cons := topo.ConstraintList()
	if len(cons) != 1 || cons[0].Attr != "stock" || *cons[0].Min != 0 {
		t.Fatalf("constraints = %+v", cons)
	}
	routes, err := topo.routes()
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 10 {
		t.Fatalf("routes = %d entries, want 10", len(routes))
	}
	if _, err := ParseDC("mars"); err == nil {
		t.Fatal("ParseDC accepted nonsense")
	}
	if _, err := ParseMode("nonsense"); err == nil {
		t.Fatal("ParseMode accepted nonsense")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
