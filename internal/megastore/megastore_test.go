package megastore

import (
	"fmt"
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

type world struct {
	net      *simnet.Net
	cl       *topology.Cluster
	replicas []*Replica
	master   *Master
	clients  []*Client
}

func newWorld(t *testing.T, clients int, clientDC int, seed int64) *world {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: clients, ClientDC: clientDC})
	extra := make(map[transport.NodeID]topology.DC)
	for _, dc := range topology.AllDCs() {
		extra[ReplicaIDFor(dc)] = dc
	}
	net := simnet.New(simnet.Options{Latency: cl.LatencyWith(extra), JitterFrac: 0.05, Seed: seed})
	w := &world{net: net, cl: cl}
	var west *Replica
	for _, dc := range topology.AllDCs() {
		r := NewReplica(ReplicaIDFor(dc), net, kv.NewMemory())
		w.replicas = append(w.replicas, r)
		if dc == topology.USWest {
			west = r
		}
	}
	w.master = NewMaster(net, cl, west)
	for _, c := range cl.Clients {
		w.clients = append(w.clients, NewClient(c.ID, c.DC, net, cl))
	}
	return w
}

func (w *world) commit(t *testing.T, ci int, ups ...record.Update) bool {
	t.Helper()
	var res *bool
	w.clients[ci].Commit(ups, func(ok bool) { res = &ok })
	if !w.net.RunUntil(func() bool { return res != nil }, time.Minute) {
		t.Fatal("megastore transaction never settled")
	}
	return *res
}

func TestCommitReplicatesInOrder(t *testing.T) {
	w := newWorld(t, 1, int(topology.USWest), 1)
	for i := 0; i < 5; i++ {
		if !w.commit(t, 0, record.Insert(record.Key(fmt.Sprintf("k%d", i)),
			record.Value{Attrs: map[string]int64{"x": int64(i)}})) {
			t.Fatalf("insert %d aborted", i)
		}
	}
	w.net.RunFor(2 * time.Second)
	for ri, r := range w.replicas {
		for i := 0; i < 5; i++ {
			v, _, ok := r.Store().Get(record.Key(fmt.Sprintf("k%d", i)))
			if !ok || v.Attr("x") != int64(i) {
				t.Fatalf("replica %d missing k%d", ri, i)
			}
		}
	}
}

func TestLocalMasterSingleRoundTrip(t *testing.T) {
	// Clients and master in us-west: a commit is one Paxos round
	// from us-west (majority: self + 2 closest ≈ RTT to ap-tk 120ms).
	w := newWorld(t, 1, int(topology.USWest), 2)
	start := w.net.Now()
	if !w.commit(t, 0, record.Insert("k", record.Value{})) {
		t.Fatal("insert aborted")
	}
	elapsed := w.net.Now().Sub(start)
	if elapsed < 100*time.Millisecond || elapsed > 200*time.Millisecond {
		t.Fatalf("local-master commit took %v, want ~120-130ms", elapsed)
	}
}

func TestSerializationQueueing(t *testing.T) {
	// 10 simultaneous transactions serialize through one log: the
	// last should wait roughly 10 positions ≈ 10×120ms.
	w := newWorld(t, 10, int(topology.USWest), 3)
	start := w.net.Now()
	var finishTimes []time.Duration
	for i := 0; i < 10; i++ {
		w.clients[i].Commit([]record.Update{
			record.Insert(record.Key(fmt.Sprintf("q%d", i)), record.Value{}),
		}, func(ok bool) {
			finishTimes = append(finishTimes, w.net.Now().Sub(start))
		})
	}
	if !w.net.RunUntil(func() bool { return len(finishTimes) == 10 }, 2*time.Minute) {
		t.Fatal("queued transactions never settled")
	}
	last := finishTimes[len(finishTimes)-1]
	if last < 900*time.Millisecond {
		t.Fatalf("10 serialized txs finished in %v — the log position queue is not serializing", last)
	}
}

func TestConflictAborts(t *testing.T) {
	w := newWorld(t, 2, int(topology.USWest), 4)
	if !w.commit(t, 0, record.Insert("c", record.Value{Attrs: map[string]int64{"x": 0}})) {
		t.Fatal("insert aborted")
	}
	w.net.RunFor(time.Second)
	results, commits := 0, 0
	for i := 0; i < 2; i++ {
		v := int64(i + 1)
		w.clients[i].Commit([]record.Update{
			record.Physical("c", 1, record.Value{Attrs: map[string]int64{"x": v}}),
		}, func(ok bool) {
			results++
			if ok {
				commits++
			}
		})
	}
	if !w.net.RunUntil(func() bool { return results == 2 }, time.Minute) {
		t.Fatal("transactions never settled")
	}
	if commits != 1 {
		t.Fatalf("conflicting megastore txs: %d commits, want 1", commits)
	}
	mc, ma := w.master.Metrics()
	if mc < 2 || ma != 1 {
		t.Fatalf("master metrics commits=%d aborts=%d", mc, ma)
	}
}

func TestRemoteClientPaysMasterTrip(t *testing.T) {
	// A Singapore client must cross to the us-west master and back on
	// top of the Paxos round.
	w := newWorld(t, 1, int(topology.APSingapore), 5)
	start := w.net.Now()
	if !w.commit(t, 0, record.Insert("r", record.Value{})) {
		t.Fatal("insert aborted")
	}
	elapsed := w.net.Now().Sub(start)
	// ≈ RTT(sg,west) 180ms + paxos ~120ms.
	if elapsed < 280*time.Millisecond {
		t.Fatalf("remote commit took %v, want ≥ ~300ms (master trip + Paxos)", elapsed)
	}
}

func TestLocalReads(t *testing.T) {
	w := newWorld(t, 2, -1, 6)
	if !w.commit(t, 0, record.Insert("rd", record.Value{Attrs: map[string]int64{"x": 3}})) {
		t.Fatal("insert aborted")
	}
	w.net.RunFor(2 * time.Second)
	var got *record.Value
	w.clients[1].Read("rd", func(v record.Value, _ record.Version, ok bool) {
		if ok {
			got = &v
		}
	})
	w.net.RunUntil(func() bool { return got != nil }, time.Minute)
	if got.Attr("x") != 3 {
		t.Fatalf("read = %v", got)
	}
}
