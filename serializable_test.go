package mdcc

import (
	"sync"
	"testing"
)

// The classic write-skew anomaly: two doctors are on call; each
// transaction reads both records and, if the other is still on call,
// takes itself off. Under read committed both can commit (leaving
// nobody on call); with read-set validation (§4.4) at most one may.
func TestWriteSkewPreventedBySerializable(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		c := startTestCluster(t, ClusterConfig{Seed: seed})
		s := c.Session(USWest)
		ok, err := s.Commit(
			Insert("oncall/alice", Value{Attrs: map[string]int64{"oncall": 1}}),
			Insert("oncall/bob", Value{Attrs: map[string]int64{"oncall": 1}}),
		)
		if err != nil || !ok {
			t.Fatalf("setup: %v %v", ok, err)
		}
		waitOnCall := func(sess *Session) {
			for i := 0; i < 200; i++ {
				a, _, okA, _ := sess.Read("oncall/alice")
				b, _, okB, _ := sess.Read("oncall/bob")
				if okA && okB && a.Attr("oncall") == 1 && b.Attr("oncall") == 1 {
					return
				}
			}
			t.Fatal("setup never became visible")
		}
		waitOnCall(s)

		goOffCall := func(sess *Session, self, other Key) bool {
			ok, err := sess.TransactSerializable(1, func(tx *TxView) error {
				me, myVer, _ := tx.Read(self)
				peer, _, _ := tx.Read(other)
				if peer.Attr("oncall") == 1 {
					tx.Write(self, myVer, me.WithAttr("oncall", 0))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return ok
		}

		var wg sync.WaitGroup
		var okAlice, okBob bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			okAlice = goOffCall(c.Session(USWest), "oncall/alice", "oncall/bob")
		}()
		go func() {
			defer wg.Done()
			okBob = goOffCall(c.Session(APTokyo), "oncall/bob", "oncall/alice")
		}()
		wg.Wait()

		if okAlice && okBob {
			t.Fatalf("seed %d: write skew — both doctors went off call", seed)
		}
		c.Close()
	}
}

// Read checks commit when nothing changed and abort when the read-set
// was invalidated.
func TestReadCheckSemantics(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("rc/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	var ver Version
	for i := 0; i < 200; i++ {
		var exists bool
		_, ver, exists, _ = s.Read("rc/1")
		if exists {
			break
		}
	}
	// Valid read check commits (and does not bump the version).
	if ok, err := s.Commit(ReadCheck("rc/1", ver)); err != nil || !ok {
		t.Fatalf("valid read check: %v %v", ok, err)
	}
	_, ver2, _, _ := s.Read("rc/1")
	if ver2 != ver {
		t.Fatalf("read check bumped version %d -> %d", ver, ver2)
	}
	// Invalidate and recheck.
	v, _, _, _ := s.Read("rc/1")
	if ok, _ := s.Commit(Physical("rc/1", ver, v.WithAttr("x", 2))); !ok {
		t.Fatal("update failed")
	}
	for i := 0; i < 200; i++ {
		if _, nv, _, _ := s.Read("rc/1"); nv > ver {
			break
		}
	}
	if ok, _ := s.Commit(ReadCheck("rc/1", ver)); ok {
		t.Fatal("stale read check committed")
	}
}

// A transaction mixing a read check with a write is atomic: the write
// must not apply when the check fails.
func TestReadCheckGuardsWrites(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USEast)
	if ok, _ := s.Commit(
		Insert("g/data", Value{Attrs: map[string]int64{"x": 1}}),
		Insert("g/out", Value{Attrs: map[string]int64{"sum": 0}}),
	); !ok {
		t.Fatal("setup failed")
	}
	var dataVer, outVer Version
	for i := 0; i < 200; i++ {
		var ok1, ok2 bool
		_, dataVer, ok1, _ = s.Read("g/data")
		_, outVer, ok2, _ = s.Read("g/out")
		if ok1 && ok2 {
			break
		}
	}
	// Invalidate g/data.
	v, _, _, _ := s.Read("g/data")
	if ok, _ := s.Commit(Physical("g/data", dataVer, v.WithAttr("x", 2))); !ok {
		t.Fatal("invalidation failed")
	}
	for i := 0; i < 200; i++ {
		if _, nv, _, _ := s.Read("g/data"); nv > dataVer {
			break
		}
	}
	// Now try to write g/out guarded by the stale read of g/data.
	out, _, _, _ := s.Read("g/out")
	ok, _ := s.Commit(
		ReadCheck("g/data", dataVer),
		Physical("g/out", outVer, out.WithAttr("sum", 99)),
	)
	if ok {
		t.Fatal("transaction with a failed read check committed")
	}
	for i := 0; i < 50; i++ {
		if o, _, _, _ := s.Read("g/out"); o.Attr("sum") == 99 {
			t.Fatal("guarded write leaked despite failed read check")
		}
	}
}
