package trace

import (
	"sort"
	"time"
)

// watchWindow is how many Lamport ticks after retention a trace keeps
// absorbing trailing events (visibility execution, feed publishes for
// its keys). Count-based — never wall-clock — so retention is
// deterministic under the simulator.
const watchWindow = 4096

// Trace is one transaction's assembled cross-node timeline.
type Trace struct {
	Tx      string
	Keys    []string
	Start   int64 // transport-clock nanos at admit/propose
	End     int64 // transport-clock nanos at completion
	Dur     time.Duration
	Outcome uint8    // FlagCommit / FlagAbort / FlagUnknown
	Reasons []string // why it was retained: slow, aborted, unknown, recovered, wrong-shard, slowest
	Events  []Event  // causally ordered (by Seq)

	maxSeq uint64 // highest assembled Seq, for trailing-event dedup
}

func (t *Trace) hasKey(k string) bool {
	for _, tk := range t.Keys {
		if tk == k {
			return true
		}
	}
	return false
}

func (t *Trace) hasReason(r string) bool {
	for _, tr := range t.Reasons {
		if tr == r {
			return true
		}
	}
	return false
}

// watchEnt is a retained trace still absorbing trailing events.
type watchEnt struct {
	t        *Trace
	deadline uint64 // Lamport seq after which the watch expires
}

// Complete reports a transaction's end of life. keys is its write set
// (or read key), start/end are transport-clock nanos, outcome is one
// of FlagCommit/FlagAbort/FlagUnknown, and recovered/rerouted say
// whether it took a recovery hop or a wrong-shard retry. top marks a
// gateway-level completion: when a gateway has called ClaimTop,
// coordinator-level completions (top=false) are ignored for retention
// so each transaction is considered exactly once, at the tier that
// saw its whole admit→ack life.
//
// The common case — a committed, unremarkable transaction faster than
// both the slow threshold and the current slowest-N bar — returns
// after a few atomic loads without taking any lock.
func (rec *Recorder) Complete(tx string, keys []string, start, end int64, outcome uint8, recovered, rerouted bool, top bool) {
	rec.completeAt(tx, keys, 0, start, end, outcome, recovered, rerouted, top)
}

// CompleteFrom is the gateway-tier Complete (top is implied): loSeq —
// the Lamport sequence of the gateway's admit event — is the explicit
// lower bound for tx-less event matching, so queue and coalesce events
// recorded before the transaction had an id still join the assembled
// timeline.
func (rec *Recorder) CompleteFrom(tx string, keys []string, loSeq uint64, start, end int64, outcome uint8, recovered, rerouted bool) {
	rec.completeAt(tx, keys, loSeq, start, end, outcome, recovered, rerouted, true)
}

func (rec *Recorder) completeAt(tx string, keys []string, loSeq uint64, start, end int64, outcome uint8, recovered, rerouted bool, top bool) {
	if !Built || rec == nil {
		return
	}
	if rec.gwTop.Load() && !top {
		return
	}
	dur := time.Duration(end - start)
	interesting := outcome != FlagCommit || recovered || rerouted || dur > rec.cfg.SlowThreshold
	if !interesting {
		bar := rec.slowBar.Load()
		if bar >= 0 && int64(dur) <= bar {
			return // fast, boring, and not among the N slowest
		}
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()

	var reasons []string
	switch outcome {
	case FlagAbort:
		reasons = append(reasons, "aborted")
	case FlagUnknown:
		reasons = append(reasons, "unknown")
	}
	if recovered {
		reasons = append(reasons, "recovered")
	}
	if rerouted {
		reasons = append(reasons, "wrong-shard")
	}
	if dur > rec.cfg.SlowThreshold {
		reasons = append(reasons, "slow")
	}

	slowCandidate := rec.beatsSlowestLocked(dur)
	if len(reasons) == 0 && !slowCandidate {
		return // bar moved between the atomic check and the lock
	}
	retain := len(reasons) > 0
	if retain && rec.budget <= 0 {
		rec.dropped++
		retain = false
	}
	if !retain && !slowCandidate {
		return
	}

	t := rec.assembleLocked(tx, keys, loSeq)
	t.Start, t.End, t.Dur, t.Outcome, t.Reasons = start, end, dur, outcome, reasons
	if retain {
		rec.budget--
		rec.retainLocked(t)
	}
	if slowCandidate {
		rec.insertSlowestLocked(t)
	}
}

// beatsSlowestLocked reports whether dur belongs in the slowest-N list.
func (rec *Recorder) beatsSlowestLocked(dur time.Duration) bool {
	if len(rec.slowest) < rec.cfg.SlowestN {
		return true
	}
	return dur > rec.slowest[len(rec.slowest)-1].Dur
}

// insertSlowestLocked places t into the duration-sorted slowest list,
// evicting the fastest member when over capacity, and refreshes the
// lock-free admission bar.
func (rec *Recorder) insertSlowestLocked(t *Trace) {
	i := sort.Search(len(rec.slowest), func(i int) bool { return rec.slowest[i].Dur < t.Dur })
	rec.slowest = append(rec.slowest, nil)
	copy(rec.slowest[i+1:], rec.slowest[i:])
	rec.slowest[i] = t
	if len(rec.slowest) > rec.cfg.SlowestN {
		rec.slowest = rec.slowest[:rec.cfg.SlowestN]
	}
	if len(rec.slowest) == rec.cfg.SlowestN {
		rec.slowBar.Store(int64(rec.slowest[len(rec.slowest)-1].Dur))
	}
}

// retainLocked appends t to the bounded retained FIFO and registers a
// trailing-event watch for it.
func (rec *Recorder) retainLocked(t *Trace) {
	rec.retained = append(rec.retained, t)
	if len(rec.retained) > rec.cfg.RetainLimit {
		rec.retained = rec.retained[1:]
	}
	rec.watch = append(rec.watch, watchEnt{t: t, deadline: rec.clk.Load() + watchWindow})
	rec.watchN.Store(int32(len(rec.watch)))
}

// assembleLocked gathers tx's events from every ring into one
// causally ordered Trace: events carrying the TxID, plus tx-less
// events (gateway admit/queue/coalesce, feed publishes, visibility
// keep-alives) on its keys from loSeq onward. A zero loSeq falls back
// to the transaction's first tx-stamped event.
func (rec *Recorder) assembleLocked(tx string, keys []string, loSeq uint64) *Trace {
	t := &Trace{Tx: tx, Keys: append([]string(nil), keys...)}
	var evs []Event
	minSeq := ^uint64(0)
	for _, r := range rec.rings {
		for _, ev := range r.Snapshot() {
			if ev.Tx == tx && tx != "" {
				evs = append(evs, ev)
				if ev.Seq < minSeq {
					minSeq = ev.Seq
				}
			}
		}
	}
	if loSeq > 0 {
		minSeq = loSeq
	}
	if len(keys) > 0 {
		for _, r := range rec.rings {
			for _, ev := range r.Snapshot() {
				if ev.Tx == "" && ev.Seq >= minSeq && t.hasKey(ev.Key) {
					evs = append(evs, ev)
				}
			}
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	t.Events = evs
	if n := len(evs); n > 0 {
		t.maxSeq = evs[n-1].Seq
	}
	return t
}

// observe is the trailing-event hook called from Ring.Add while any
// watch is live: it appends matching events to retained traces and
// expires watches whose Lamport window has passed.
func (rec *Recorder) observe(ev Event) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	live := rec.watch[:0]
	for _, w := range rec.watch {
		if ev.Seq > w.deadline {
			continue // expired
		}
		live = append(live, w)
		match := ev.Tx != "" && ev.Tx == w.t.Tx
		if !match && ev.Tx == "" && w.t.hasKey(ev.Key) {
			match = true
		}
		if match && ev.Seq > w.t.maxSeq {
			w.t.Events = append(w.t.Events, ev)
			w.t.maxSeq = ev.Seq
		}
	}
	rec.watch = live
	rec.watchN.Store(int32(len(rec.watch)))
}

// Retained returns copies of the retained traces, oldest first.
func (rec *Recorder) Retained() []*Trace {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]*Trace, 0, len(rec.retained))
	for _, t := range rec.retained {
		out = append(out, t.copyLocked())
	}
	return out
}

// Slowest returns copies of the N slowest completed transactions,
// slowest first.
func (rec *Recorder) Slowest() []*Trace {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]*Trace, 0, len(rec.slowest))
	for _, t := range rec.slowest {
		c := t.copyLocked()
		if !c.hasReason("slowest") {
			c.Reasons = append(c.Reasons, "slowest")
		}
		out = append(out, c)
	}
	return out
}

// Dropped reports how many retain-worthy transactions were not
// assembled because the deterministic assembly budget ran out.
func (rec *Recorder) Dropped() int {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.dropped
}

func (t *Trace) copyLocked() *Trace {
	c := *t
	c.Keys = append([]string(nil), t.Keys...)
	c.Reasons = append([]string(nil), t.Reasons...)
	c.Events = append([]Event(nil), t.Events...)
	return &c
}

// Assemble builds a timeline for an arbitrary transaction id from
// whatever is still in the rings (diagnosis of transactions that were
// never retained). Keys widen the match to tx-less feed events.
func (rec *Recorder) Assemble(tx string, keys []string) *Trace {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.assembleLocked(tx, keys, 0)
}

// TxsTouching scans the rings for distinct transactions with an event
// on any of the given keys, newest-first, up to max. Used to turn a
// key-level invariant violation into candidate timelines.
func (rec *Recorder) TxsTouching(keys []string, max int) []string {
	if rec == nil || len(keys) == 0 || max <= 0 {
		return nil
	}
	in := make(map[string]bool, len(keys))
	for _, k := range keys {
		in[k] = true
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	type hit struct {
		tx  string
		seq uint64
	}
	latest := make(map[string]uint64)
	for _, r := range rec.rings {
		for _, ev := range r.Snapshot() {
			if ev.Tx != "" && in[ev.Key] {
				if ev.Seq > latest[ev.Tx] {
					latest[ev.Tx] = ev.Seq
				}
			}
		}
	}
	hits := make([]hit, 0, len(latest))
	for tx, seq := range latest {
		hits = append(hits, hit{tx, seq})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq > hits[j].seq })
	if len(hits) > max {
		hits = hits[:max]
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.tx
	}
	return out
}
