// Package twopc implements the two-phase-commit baseline of the
// paper's evaluation: the transaction manager (client library)
// prepares every replica of every written record, and commits only if
// all of them vote yes — requiring two wide-area round trips and
// responses from all five data centers, and blocking on coordinator
// failure (participants hold locks until told the outcome; a lock
// timeout merely bounds the damage in this implementation).
//
// Prepared participants lock the record and validate the update's
// read version; conflicting or locked records vote no. Commutative
// updates validate value constraints while holding the lock, which is
// safe because 2PC contacts all replicas (no quorum divergence).
package twopc

import (
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// TxID names a 2PC transaction.
type TxID string

// MsgPrepare asks a participant to prepare one update.
type MsgPrepare struct {
	Tx     TxID
	Update record.Update
}

// MsgVote answers a prepare.
type MsgVote struct {
	Tx  TxID
	Key record.Key
	Yes bool
}

// MsgDecision distributes the outcome (second phase).
type MsgDecision struct {
	Tx     TxID
	Key    record.Key
	Commit bool
}

// MsgDecisionAck confirms a participant applied the outcome.
type MsgDecisionAck struct {
	Tx  TxID
	Key record.Key
}

// MsgRead / MsgReadReply serve local reads.
type MsgRead struct {
	ReqID uint64
	Key   record.Key
}

// MsgReadReply answers MsgRead.
type MsgReadReply struct {
	ReqID   uint64
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
}

func init() {
	transport.RegisterMessage(MsgPrepare{})
	transport.RegisterMessage(MsgVote{})
	transport.RegisterMessage(MsgDecision{})
	transport.RegisterMessage(MsgDecisionAck{})
	transport.RegisterMessage(MsgRead{})
	transport.RegisterMessage(MsgReadReply{})
}

// lockState is a participant's prepared transaction on one record.
type lockState struct {
	tx     TxID
	update record.Update
	since  time.Time
}

// Participant is a 2PC storage replica.
type Participant struct {
	id    transport.NodeID
	net   transport.Network
	store *kv.Store
	locks map[record.Key]*lockState
	cons  []record.Constraint

	// LockTimeout releases abandoned locks (coordinator death). Zero
	// disables — the textbook blocking behaviour.
	lockTimeout time.Duration
}

// NewParticipant builds and registers a participant replica.
func NewParticipant(id transport.NodeID, net transport.Network, store *kv.Store,
	cons []record.Constraint, lockTimeout time.Duration) *Participant {
	p := &Participant{
		id: id, net: net, store: store,
		locks:       make(map[record.Key]*lockState),
		cons:        cons,
		lockTimeout: lockTimeout,
	}
	net.Register(id, p.handle)
	return p
}

// ID returns the node identity.
func (p *Participant) ID() transport.NodeID { return p.id }

// Store exposes the local store.
func (p *Participant) Store() *kv.Store { return p.store }

func (p *Participant) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgPrepare:
		p.onPrepare(env.From, m)
	case MsgDecision:
		p.onDecision(env.From, m)
	case MsgRead:
		val, ver, ok := p.store.Get(m.Key)
		p.net.Send(p.id, env.From, MsgReadReply{
			ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver,
			Exists: ok && !val.Tombstone,
		})
	}
}

func (p *Participant) onPrepare(from transport.NodeID, m MsgPrepare) {
	key := m.Update.Key
	if ls, locked := p.locks[key]; locked {
		if ls.tx != m.Tx {
			p.net.Send(p.id, from, MsgVote{Tx: m.Tx, Key: key, Yes: false})
			return
		}
		// Duplicate prepare for the already-locked transaction.
		p.net.Send(p.id, from, MsgVote{Tx: m.Tx, Key: key, Yes: true})
		return
	}
	if !p.validate(m.Update) {
		p.net.Send(p.id, from, MsgVote{Tx: m.Tx, Key: key, Yes: false})
		return
	}
	p.locks[key] = &lockState{tx: m.Tx, update: m.Update, since: p.net.Now()}
	if p.lockTimeout > 0 {
		tx := m.Tx
		p.net.After(p.id, p.lockTimeout, func() {
			if ls, ok := p.locks[key]; ok && ls.tx == tx {
				delete(p.locks, key)
			}
		})
	}
	p.net.Send(p.id, from, MsgVote{Tx: m.Tx, Key: key, Yes: true})
}

func (p *Participant) validate(up record.Update) bool {
	_, ver, _ := p.store.Get(up.Key)
	switch up.Kind {
	case record.KindPhysical:
		if up.ReadVersion != ver {
			return false
		}
		for _, con := range p.cons {
			if x, ok := up.NewValue.Attrs[con.Attr]; ok && !con.Satisfied(x) {
				return false
			}
		}
		return true
	case record.KindCommutative:
		cur, _, _ := p.store.Get(up.Key)
		after := up.Apply(cur)
		for _, con := range p.cons {
			if x, ok := after.Attrs[con.Attr]; ok && !con.Satisfied(x) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (p *Participant) onDecision(from transport.NodeID, m MsgDecision) {
	ls, ok := p.locks[m.Key]
	if ok && ls.tx == m.Tx {
		delete(p.locks, m.Key)
		if m.Commit {
			p.apply(ls.update)
		}
	}
	p.net.Send(p.id, from, MsgDecisionAck{Tx: m.Tx, Key: m.Key})
}

func (p *Participant) apply(up record.Update) {
	cur, ver, _ := p.store.Get(up.Key)
	switch up.Kind {
	case record.KindPhysical:
		_ = p.store.Put(up.Key, up.NewValue, ver+1)
	case record.KindCommutative:
		_ = p.store.Put(up.Key, up.Apply(cur), ver+1)
	}
}

// Coordinator is the 2PC transaction manager (client side).
type Coordinator struct {
	id  transport.NodeID
	dc  topology.DC
	net transport.Network
	cl  *topology.Cluster

	txSeq  uint64
	reqSeq uint64
	txs    map[TxID]*txCtx
	reads  map[uint64]func(record.Value, record.Version, bool)

	// PrepareTimeout aborts transactions whose participants never
	// answer (failed data center): 2PC cannot survive a silent
	// participant, which the paper calls out ("not resilient to
	// single node failures") — the timeout lets the benchmark
	// continue and counts the transaction aborted.
	prepareTimeout time.Duration

	nCommits, nAborts int64
}

type txCtx struct {
	id       TxID
	updates  map[record.Key]record.Update
	votes    map[record.Key]int // yes votes per key
	voteFail bool
	want     int // replicas per key (all of them)
	voted    map[record.Key]map[transport.NodeID]bool
	acks     int
	ackWant  int
	decided  bool
	commit   bool
	done     func(bool)
}

// NewCoordinator builds a 2PC transaction manager.
func NewCoordinator(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, prepareTimeout time.Duration) *Coordinator {
	c := &Coordinator{
		id: id, dc: dc, net: net, cl: cl,
		txs:            make(map[TxID]*txCtx),
		reads:          make(map[uint64]func(record.Value, record.Version, bool)),
		prepareTimeout: prepareTimeout,
	}
	net.Register(id, c.handle)
	return c
}

func (c *Coordinator) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgVote:
		c.onVote(env.From, m)
	case MsgDecisionAck:
		c.onAck(m)
	case MsgReadReply:
		if cb, ok := c.reads[m.ReqID]; ok {
			delete(c.reads, m.ReqID)
			cb(m.Value, m.Version, m.Exists)
		}
	}
}

// Read reads the local replica.
func (c *Coordinator) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	c.reqSeq++
	c.reads[c.reqSeq] = cb
	c.net.Send(c.id, c.cl.ReplicaIn(key, c.dc), MsgRead{ReqID: c.reqSeq, Key: key})
}

// Commit runs two-phase commit over all replicas of all written
// records: phase 1 prepares (requiring unanimous yes from every
// replica), phase 2 distributes the outcome and waits for the acks.
func (c *Coordinator) Commit(updates []record.Update, done func(bool)) {
	c.txSeq++
	tx := TxID(string(c.id) + "#2pc#" + itoa(c.txSeq))
	if len(updates) == 0 {
		c.nCommits++
		done(true)
		return
	}
	t := &txCtx{
		id:      tx,
		updates: make(map[record.Key]record.Update, len(updates)),
		votes:   make(map[record.Key]int, len(updates)),
		voted:   make(map[record.Key]map[transport.NodeID]bool, len(updates)),
		want:    c.cl.ReplicationFactor(),
		done:    done,
	}
	c.txs[tx] = t
	for _, up := range updates {
		t.updates[up.Key] = up
		t.voted[up.Key] = make(map[transport.NodeID]bool, t.want)
		for _, rep := range c.cl.Replicas(up.Key) {
			c.net.Send(c.id, rep, MsgPrepare{Tx: tx, Update: up})
		}
	}
	if c.prepareTimeout > 0 {
		c.net.After(c.id, c.prepareTimeout, func() {
			cur, ok := c.txs[tx]
			if !ok || cur != t || t.decided {
				return
			}
			c.decide(t, false)
		})
	}
}

func (c *Coordinator) onVote(from transport.NodeID, m MsgVote) {
	t, ok := c.txs[m.Tx]
	if !ok || t.decided {
		return
	}
	seen, ok := t.voted[m.Key]
	if !ok || seen[from] {
		return
	}
	seen[from] = true
	if !m.Yes {
		c.decide(t, false)
		return
	}
	t.votes[m.Key]++
	if t.votes[m.Key] < t.want {
		return
	}
	// This key fully prepared; all keys fully prepared → commit.
	for k := range t.updates {
		if t.votes[k] < t.want {
			return
		}
	}
	c.decide(t, true)
}

// decide runs phase 2.
func (c *Coordinator) decide(t *txCtx, commit bool) {
	t.decided = true
	t.commit = commit
	t.ackWant = len(t.updates) * t.want
	for k := range t.updates {
		for _, rep := range c.cl.Replicas(k) {
			c.net.Send(c.id, rep, MsgDecision{Tx: t.id, Key: k, Commit: commit})
		}
	}
	// The caller's latency includes the second round: completion is
	// reported when all decision acks arrive (or, for aborts after a
	// vote-no, when the abort acks arrive — same message count).
	if t.ackWant == 0 {
		c.finish(t)
		return
	}
	if c.prepareTimeout > 0 {
		// A dead participant would otherwise hang phase 2 forever.
		id := t.id
		c.net.After(c.id, c.prepareTimeout, func() {
			if cur, ok := c.txs[id]; ok && cur == t {
				c.finish(t)
			}
		})
	}
}

func (c *Coordinator) onAck(m MsgDecisionAck) {
	t, ok := c.txs[m.Tx]
	if !ok || !t.decided {
		return
	}
	t.acks++
	if t.acks >= t.ackWant {
		c.finish(t)
	}
}

func (c *Coordinator) finish(t *txCtx) {
	delete(c.txs, t.id)
	if t.commit {
		c.nCommits++
	} else {
		c.nAborts++
	}
	t.done(t.commit)
}

// Metrics reports commit/abort counts.
func (c *Coordinator) Metrics() (commits, aborts int64) {
	return c.nCommits, c.nAborts
}

// SupportsCommutative: constraints are validated under locks at all
// replicas, so deltas are safe.
func (c *Coordinator) SupportsCommutative() bool { return true }

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
