package mdcc

// One testing.B benchmark per figure of the paper's evaluation, plus
// the ablation benches DESIGN.md calls out. Each iteration runs a
// compressed experiment on the discrete-event simulator and reports
// *virtual-time* protocol metrics (p50_ms, vtps) alongside Go's
// wall-clock numbers: the virtual metrics are the reproduction
// results, the wall numbers just measure the simulator.
//
// Full-scale runs (paper parameters) live in cmd/mdcc-bench.

import (
	"testing"
	"time"

	"mdcc/internal/bench"
	"mdcc/internal/microbench"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/tpcw"
)

// benchScale is small enough for tight bench loops.
func benchScale() bench.Scale {
	return bench.Scale{Clients: 10, Items: 1000, NodesPerDC: 2,
		Warmup: 2 * time.Second, Measure: 10 * time.Second}
}

func reportRun(b *testing.B, res *bench.Result) {
	b.Helper()
	b.ReportMetric(res.WriteLat.Median(), "p50_ms")
	b.ReportMetric(res.WriteLat.Percentile(99), "p99_ms")
	b.ReportMetric(res.WriteTPS, "vtps")
	if res.Commits+res.Aborts > 0 {
		b.ReportMetric(float64(res.Aborts)/float64(res.Commits+res.Aborts), "abort_frac")
	}
}

func tpcwRun(b *testing.B, proto bench.Protocol) {
	sc := benchScale()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		clientDC := -1
		if proto == bench.ProtoMegastore {
			clientDC = int(topology.USWest)
		}
		w := bench.NewWorld(bench.Options{
			Protocol:    proto,
			NodesPerDC:  sc.NodesPerDC,
			Clients:     sc.Clients,
			ClientDC:    clientDC,
			Seed:        int64(i + 1),
			Constraints: []record.Constraint{tpcw.Constraint()},
		})
		last = bench.Run(w, tpcw.New(tpcw.Options{Items: sc.Items}),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	reportRun(b, last)
}

// ---- Figure 3: TPC-W response-time CDF, one bench per protocol ----

func BenchmarkFig3TPCW_QW3(b *testing.B)       { tpcwRun(b, bench.ProtoQW3) }
func BenchmarkFig3TPCW_QW4(b *testing.B)       { tpcwRun(b, bench.ProtoQW4) }
func BenchmarkFig3TPCW_MDCC(b *testing.B)      { tpcwRun(b, bench.ProtoMDCC) }
func BenchmarkFig3TPCW_2PC(b *testing.B)       { tpcwRun(b, bench.Proto2PC) }
func BenchmarkFig3TPCW_Megastore(b *testing.B) { tpcwRun(b, bench.ProtoMegastore) }

// ---- Figure 4: TPC-W scale-out ----

func BenchmarkFig4Scaling(b *testing.B) {
	var lastHigh *bench.Result
	for i := 0; i < b.N; i++ {
		pts := bench.Figure4(int64(i+1), []int{10, 20}, 2*time.Second, 10*time.Second)
		low := pts[0].Results[bench.ProtoMDCC]
		high := pts[1].Results[bench.ProtoMDCC]
		b.ReportMetric(high.WriteTPS/low.WriteTPS, "scaleup_2x")
		lastHigh = high
	}
	reportRun(b, lastHigh)
}

// ---- Figure 5: micro-benchmark CDF, one bench per configuration ----

func microRunB(b *testing.B, proto bench.Protocol, mut func(*microbench.Options)) {
	sc := benchScale()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		w := bench.NewWorld(bench.Options{
			Protocol:    proto,
			NodesPerDC:  2,
			Clients:     sc.Clients,
			ClientDC:    -1,
			Seed:        int64(i + 1),
			Constraints: []record.Constraint{microbench.Constraint()},
		})
		opts := microbench.Defaults()
		opts.Items = sc.Items
		if mut != nil {
			mut(&opts)
		}
		last = bench.Run(w, microbench.New(opts),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	reportRun(b, last)
}

func BenchmarkFig5Micro_MDCC(b *testing.B)  { microRunB(b, bench.ProtoMDCC, nil) }
func BenchmarkFig5Micro_Fast(b *testing.B)  { microRunB(b, bench.ProtoFast, nil) }
func BenchmarkFig5Micro_Multi(b *testing.B) { microRunB(b, bench.ProtoMulti, nil) }
func BenchmarkFig5Micro_2PC(b *testing.B)   { microRunB(b, bench.Proto2PC, nil) }

// ---- Figure 6: conflict-rate sweep (one hot and one cold point) ----

func BenchmarkFig6Conflict(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts := bench.Figure6(int64(i+1), sc, []int{2, 90})
		hot := pts[0].Results[bench.ProtoMDCC]
		cold := pts[1].Results[bench.ProtoMDCC]
		b.ReportMetric(float64(hot.Commits), "hot_commits")
		b.ReportMetric(float64(hot.Aborts), "hot_aborts")
		b.ReportMetric(float64(cold.Commits), "cold_commits")
	}
}

// ---- Figure 7: master locality ----

func BenchmarkFig7Locality(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		pts := bench.Figure7(int64(i+1), sc, []int{100, 20})
		b.ReportMetric(pts[0].Results[bench.ProtoMulti].WriteLat.Median(), "multi_local_p50")
		b.ReportMetric(pts[1].Results[bench.ProtoMulti].WriteLat.Median(), "multi_remote_p50")
		b.ReportMetric(pts[1].Results[bench.ProtoMDCC].WriteLat.Median(), "mdcc_remote_p50")
	}
}

// ---- Figure 8: data-center failure ----

func BenchmarkFig8Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fr := bench.Figure8(int64(i+1), 10, 15*time.Second, 35*time.Second)
		b.ReportMetric(fr.PreMean, "pre_ms")
		b.ReportMetric(fr.PostMean, "post_ms")
		b.ReportMetric(float64(fr.PostCount), "post_commits")
	}
}

// ---- Ablations (design choices from DESIGN.md) ----

// AblationCommutative: MDCC vs Fast on a contended commutative
// workload — the value of Generalized Paxos commutativity.
func BenchmarkAblationCommutative_MDCC(b *testing.B) {
	microRunB(b, bench.ProtoMDCC, func(o *microbench.Options) {
		o.HotspotFrac = 0.05
		o.InitialStockMin, o.InitialStockMax = 1_000_000, 1_000_000
	})
}

// BenchmarkAblationCommutative_Fast is the same workload without
// commutative support (physical read-modify-writes conflict).
func BenchmarkAblationCommutative_Fast(b *testing.B) {
	microRunB(b, bench.ProtoFast, func(o *microbench.Options) {
		o.HotspotFrac = 0.05
		o.InitialStockMin, o.InitialStockMax = 1_000_000, 1_000_000
	})
}

// AblationFastVsClassic: identical uncontended workload on fast
// ballots vs classic (Multi) — the value of master bypass.
func BenchmarkAblationFastVsClassic_Fast(b *testing.B) {
	microRunB(b, bench.ProtoFast, nil)
}

// BenchmarkAblationFastVsClassic_Classic is the classic-ballot side.
func BenchmarkAblationFastVsClassic_Classic(b *testing.B) {
	microRunB(b, bench.ProtoMulti, nil)
}

// AblationDemarcation: depleting stock under the quorum demarcation
// limit vs plentiful stock — the cost of the safety margin.
func BenchmarkAblationDemarcation_Tight(b *testing.B) {
	microRunB(b, bench.ProtoMDCC, func(o *microbench.Options) {
		o.HotspotFrac = 0.02
		o.InitialStockMin, o.InitialStockMax = 40, 80 // deplete fast
	})
}

// BenchmarkAblationDemarcation_Loose never approaches the limit.
func BenchmarkAblationDemarcation_Loose(b *testing.B) {
	microRunB(b, bench.ProtoMDCC, func(o *microbench.Options) {
		o.HotspotFrac = 0.02
		o.InitialStockMin, o.InitialStockMax = 1_000_000, 1_000_000
	})
}

// AblationGamma: the fast-policy window length after collisions.
func benchGamma(b *testing.B, gamma int) {
	sc := benchScale()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		w := bench.NewWorld(bench.Options{
			Protocol:    bench.ProtoMDCC,
			NodesPerDC:  2,
			Clients:     sc.Clients,
			ClientDC:    -1,
			Seed:        int64(i + 1),
			Constraints: []record.Constraint{microbench.Constraint()},
			Gamma:       gamma,
		})
		opts := microbench.Defaults()
		opts.Items = sc.Items
		opts.HotspotFrac = 0.05
		opts.InitialStockMin, opts.InitialStockMax = 60, 120
		last = bench.Run(w, microbench.New(opts),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	reportRun(b, last)
}

func BenchmarkAblationGamma_10(b *testing.B)  { benchGamma(b, 10) }
func BenchmarkAblationGamma_100(b *testing.B) { benchGamma(b, 100) }
func BenchmarkAblationGamma_500(b *testing.B) { benchGamma(b, 500) }

// AblationQuorumSize: QW-3 vs QW-4 isolates the pure cost of waiting
// for the fourth-closest data center (what MDCC's fast quorum pays
// over an eventually-consistent majority write).
func BenchmarkAblationQuorumWait_3(b *testing.B) {
	sc := benchScale()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		w := bench.NewWorld(bench.Options{Protocol: bench.ProtoQW3, NodesPerDC: 2,
			Clients: sc.Clients, ClientDC: -1, Seed: int64(i + 1)})
		last = bench.Run(w, microbench.New(microbench.Defaults()),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	reportRun(b, last)
}

// BenchmarkAblationQuorumWait_4 waits for the fast-quorum-sized set.
func BenchmarkAblationQuorumWait_4(b *testing.B) {
	sc := benchScale()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		w := bench.NewWorld(bench.Options{Protocol: bench.ProtoQW4, NodesPerDC: 2,
			Clients: sc.Clients, ClientDC: -1, Seed: int64(i + 1)})
		last = bench.Run(w, microbench.New(microbench.Defaults()),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	reportRun(b, last)
}

// ---- Library-level commit path (wall-clock) ----

// BenchmarkSessionCommit measures the real-time public API on an
// in-process cluster with compressed latencies (wall-clock ns/op).
func BenchmarkSessionCommit(b *testing.B) {
	c, err := StartCluster(ClusterConfig{LatencyScale: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := c.Session(USWest)
	if ok, err := s.Commit(Insert("b/1", Value{Attrs: map[string]int64{"n": 0}})); err != nil || !ok {
		b.Fatalf("setup: %v %v", ok, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Commit(Commutative("b/1", map[string]int64{"n": 1})); err != nil {
			b.Fatal(err)
		}
	}
}

// AblationBatching: the §7 batching optimization — proposals and
// visibility grouped per destination node. The signal is messages per
// committed transaction.
func benchBatching(b *testing.B, disable bool) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		w := bench.NewWorld(bench.Options{
			Protocol:        bench.ProtoMDCC,
			NodesPerDC:      2,
			Clients:         sc.Clients,
			ClientDC:        -1,
			Seed:            int64(i + 1),
			Constraints:     []record.Constraint{microbench.Constraint()},
			DisableBatching: disable,
		})
		opts := microbench.Defaults()
		opts.Items = sc.Items
		res := bench.Run(w, microbench.New(opts),
			bench.RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
		if res.Commits > 0 {
			b.ReportMetric(float64(w.Net.Stats().Delivered)/float64(res.Commits), "msgs_per_txn")
		}
		b.ReportMetric(res.WriteLat.Median(), "p50_ms")
	}
}

func BenchmarkAblationBatching_On(b *testing.B)  { benchBatching(b, false) }
func BenchmarkAblationBatching_Off(b *testing.B) { benchBatching(b, true) }
