package core

import (
	"fmt"
	"sort"
	"strings"
)

// Lineage summaries: the exact, compact, retention-free answer to
// "does this committed base already contain the effect of option X?".
//
// MDCC's commutative path lets replicas apply the same committed
// deltas in different orders, so two replicas at the same version can
// hold different applied subsets (a fork). Merging forks used to
// require shipping recently-decided options *with contents* and
// hoping the retention window still covered the divergence
// (DESIGN.md §5's documented safety limitation). A LineageSummary
// replaces the time window with exact bookkeeping:
//
//   - Every option carries a lineage identity: its coordinator lane
//     (the TxID prefix — one lane per coordinator incarnation) and a
//     per-(lane, key) contiguous sequence number (Option.KeySeq),
//     minted at proposal time.
//   - Each record keeps, per lane, the interval set of settled
//     sequence numbers (Done) plus the subset that settled as rejects
//     (Rejected). Because a lane's sequence numbers for one key are
//     contiguous by construction and every proposal eventually
//     settles, Done compacts to a single [1..W] watermark interval
//     per lane at quiescence; exceptions exist only while outcomes
//     are in flight. Rejected stays exact forever (recovery needs the
//     accept/reject split, see onRecoverOpt) and compresses storms of
//     consecutive rejections into single ranges.
//   - Deltas records whether the branch has ever applied a
//     commutative update — the bit adoptBase's physical-containment
//     rule needs (see acceptor.go).
//
// "Summary s contains option X" is then exact set membership, valid
// forever: retention of option *contents* in the decided log becomes
// a cache-eviction knob (see decidedLog), never a correctness input.
//
// Representation invariants (everything below maintains them):
// lanes sorted by name; ranges sorted, disjoint, non-adjacent
// (canonical — two replicas that settled the same set render the
// same summary, which is what makes summary equality a convergence
// proof); Rejected ⊆ Done per lane; sequence 0 never appears (0 is
// the "no lineage identity" sentinel on options).

// SeqRange is an inclusive range of per-lane sequence numbers.
type SeqRange struct{ Lo, Hi uint64 }

// LaneLineage is one coordinator lane's settled set for one record.
type LaneLineage struct {
	Lane     string
	Done     []SeqRange // every settled sequence (accepts and rejects)
	Rejected []SeqRange // the subset that settled as rejects
}

// LineageSummary is a record's exact applied-option summary.
type LineageSummary struct {
	Lanes []LaneLineage
	// Deltas reports whether this branch contains at least one applied
	// commutative update. adoptBase uses it to decide whether a higher
	// incoming version proves supersession of local physical applies
	// (pure-physical version chains do; delta-inflated versions do
	// not).
	Deltas bool
	// Physical mirrors Deltas for non-creating physical rewrites
	// (inserts are class-neutral). Together the two bits let replicas
	// that learned a key wholesale — base adoption, WAL replay of a
	// snapshot — reconstruct the kind-disjoint class lock without
	// having voted on or applied any update themselves.
	Physical bool
}

// laneOf derives an option's coordinator lane from its transaction
// id: everything before the final '#' (TxIDs are minted as
// "<coord>#<seq>" or "<coord>~g<gen>#<seq>", so the prefix identifies
// the coordinator incarnation).
func laneOf(tx TxID) string {
	s := string(tx)
	if i := strings.LastIndexByte(s, '#'); i >= 0 {
		return s[:i]
	}
	return s
}

// addRange inserts seq into a canonical range slice, merging
// neighbors. Returns the updated slice and whether it changed.
func addRange(rs []SeqRange, seq uint64) ([]SeqRange, bool) {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi+1 >= seq })
	if i < len(rs) && rs[i].Lo <= seq && seq <= rs[i].Hi {
		return rs, false // already present
	}
	switch {
	case i < len(rs) && rs[i].Lo == seq+1:
		// Extends rs[i] downward; may bridge to rs[i-1].
		rs[i].Lo = seq
		if i > 0 && rs[i-1].Hi+1 == seq {
			rs[i-1].Hi = rs[i].Hi
			rs = append(rs[:i], rs[i+1:]...)
		}
	case i < len(rs) && rs[i].Hi+1 == seq:
		// Extends rs[i] upward; may bridge to rs[i+1].
		rs[i].Hi = seq
		if i+1 < len(rs) && rs[i+1].Lo == seq+1 {
			rs[i].Hi = rs[i+1].Hi
			rs = append(rs[:i+1], rs[i+2:]...)
		}
	default:
		rs = append(rs, SeqRange{})
		copy(rs[i+1:], rs[i:])
		rs[i] = SeqRange{Lo: seq, Hi: seq}
	}
	return rs, true
}

// rangeContains reports membership in a canonical range slice.
func rangeContains(rs []SeqRange, seq uint64) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].Hi >= seq })
	return i < len(rs) && rs[i].Lo <= seq
}

// rangeUnion merges canonical b into canonical a.
func rangeUnion(a, b []SeqRange) []SeqRange {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]SeqRange(nil), b...)
	}
	merged := make([]SeqRange, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Lo < merged[j].Lo })
	out := merged[:1]
	for _, r := range merged[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 && last.Hi+1 != 0 { // overlap or adjacency
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// rangeSubset reports a ⊆ b for canonical range slices.
func rangeSubset(a, b []SeqRange) bool {
	for _, r := range a {
		i := sort.Search(len(b), func(i int) bool { return b[i].Hi >= r.Lo })
		if i >= len(b) || b[i].Lo > r.Lo || b[i].Hi < r.Hi {
			return false
		}
	}
	return true
}

// rangeCount sums the sequence count of a canonical range slice.
func rangeCount(rs []SeqRange) uint64 {
	var n uint64
	for _, r := range rs {
		n += r.Hi - r.Lo + 1
	}
	return n
}

// lane returns the lane entry (nil if absent).
func (s LineageSummary) lane(lane string) *LaneLineage {
	i := sort.Search(len(s.Lanes), func(i int) bool { return s.Lanes[i].Lane >= lane })
	if i < len(s.Lanes) && s.Lanes[i].Lane == lane {
		return &s.Lanes[i]
	}
	return nil
}

func (s *LineageSummary) laneOrNew(name string) *LaneLineage {
	i := sort.Search(len(s.Lanes), func(i int) bool { return s.Lanes[i].Lane >= name })
	if i < len(s.Lanes) && s.Lanes[i].Lane == name {
		return &s.Lanes[i]
	}
	s.Lanes = append(s.Lanes, LaneLineage{})
	copy(s.Lanes[i+1:], s.Lanes[i:])
	s.Lanes[i] = LaneLineage{Lane: name}
	return &s.Lanes[i]
}

// Add records one settled option. rejected marks reject outcomes;
// applied marks an executed commutative update (sets Deltas). Returns
// whether the summary changed (false for duplicates). seq 0 (no
// lineage identity) is ignored.
func (s *LineageSummary) Add(lane string, seq uint64, rejected, applied bool) bool {
	if seq == 0 {
		return false
	}
	l := s.laneOrNew(lane)
	done, changed := addRange(l.Done, seq)
	l.Done = done
	if rejected {
		l.Rejected, _ = addRange(l.Rejected, seq)
	}
	if applied {
		s.Deltas = true
	}
	return changed
}

// Contains reports whether (lane, seq) settled in this summary.
func (s LineageSummary) Contains(lane string, seq uint64) bool {
	l := s.lane(lane)
	return l != nil && rangeContains(l.Done, seq)
}

// Decision answers a recovery query: the final decision of
// (lane, seq), and whether this summary knows it. Decisions are
// globally consistent (one final outcome per option), so "settled and
// not rejected" is exactly "accepted".
func (s LineageSummary) Decision(lane string, seq uint64) (Decision, bool) {
	l := s.lane(lane)
	if l == nil || !rangeContains(l.Done, seq) {
		return DecUnknown, false
	}
	if rangeContains(l.Rejected, seq) {
		return DecReject, true
	}
	return DecAccept, true
}

// Union merges o into s (set union per lane; the class bits OR).
// Sound whenever the caller's committed value contains-or-supersedes
// every settled effect o reports (see StorageNode.adoptBase).
func (s *LineageSummary) Union(o LineageSummary) {
	for i := range o.Lanes {
		ol := &o.Lanes[i]
		l := s.laneOrNew(ol.Lane)
		l.Done = rangeUnion(l.Done, ol.Done)
		l.Rejected = rangeUnion(l.Rejected, ol.Rejected)
	}
	s.Deltas = s.Deltas || o.Deltas
	s.Physical = s.Physical || o.Physical
}

// ContainsAll reports o ⊆ s (every settled entry of o is settled in
// s; the Rejected split is implied by decision consistency).
func (s LineageSummary) ContainsAll(o LineageSummary) bool {
	for i := range o.Lanes {
		ol := &o.Lanes[i]
		l := s.lane(ol.Lane)
		if l == nil {
			if len(ol.Done) == 0 {
				continue
			}
			return false
		}
		if !rangeSubset(ol.Done, l.Done) {
			return false
		}
	}
	return true
}

// Equal reports canonical equality — the exact-convergence predicate:
// two replicas with equal summaries have settled identical option
// sets, hence (for in-envelope workloads) identical values.
func (s LineageSummary) Equal(o LineageSummary) bool {
	if s.Deltas != o.Deltas || s.Physical != o.Physical || len(s.Lanes) != len(o.Lanes) {
		return false
	}
	for i := range s.Lanes {
		a, b := &s.Lanes[i], &o.Lanes[i]
		if a.Lane != b.Lane || !rangesEqual(a.Done, b.Done) || !rangesEqual(a.Rejected, b.Rejected) {
			return false
		}
	}
	return true
}

func rangesEqual(a, b []SeqRange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the summary.
func (s LineageSummary) Clone() LineageSummary {
	out := LineageSummary{Deltas: s.Deltas, Physical: s.Physical}
	if len(s.Lanes) > 0 {
		out.Lanes = make([]LaneLineage, len(s.Lanes))
		for i, l := range s.Lanes {
			out.Lanes[i] = LaneLineage{
				Lane:     l.Lane,
				Done:     append([]SeqRange(nil), l.Done...),
				Rejected: append([]SeqRange(nil), l.Rejected...),
			}
		}
	}
	return out
}

// IsEmpty reports a summary with no settled entries.
func (s LineageSummary) IsEmpty() bool { return len(s.Lanes) == 0 }

// Spans returns the total settled count and the number of stored
// intervals (the compactness gauge: Spans → #lanes at quiescence).
func (s LineageSummary) Spans() (settled uint64, intervals int) {
	for _, l := range s.Lanes {
		settled += rangeCount(l.Done)
		intervals += len(l.Done) + len(l.Rejected)
	}
	return settled, intervals
}

// String renders the canonical fingerprint, e.g.
// "Δ{c0:[1-7 9]!:[4];c1:[1-3]}". Equal summaries render identically,
// so the string doubles as a convergence fingerprint for packages
// that must not import core's types.
func (s LineageSummary) String() string {
	var b strings.Builder
	if s.Deltas {
		b.WriteString("Δ")
	}
	if s.Physical {
		b.WriteString("Φ")
	}
	b.WriteByte('{')
	for i, l := range s.Lanes {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(l.Lane)
		b.WriteByte(':')
		writeRanges(&b, l.Done)
		if len(l.Rejected) > 0 {
			b.WriteString("!:")
			writeRanges(&b, l.Rejected)
		}
	}
	b.WriteByte('}')
	return b.String()
}

func writeRanges(b *strings.Builder, rs []SeqRange) {
	b.WriteByte('[')
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(' ')
		}
		if r.Lo == r.Hi {
			fmt.Fprintf(b, "%d", r.Lo)
		} else {
			fmt.Fprintf(b, "%d-%d", r.Lo, r.Hi)
		}
	}
	b.WriteByte(']')
}
