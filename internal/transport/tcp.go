package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mdcc/internal/clock"
)

// Codec selects the TCP transport's send-side wire encoding. The read
// side always auto-detects from the connection preamble, so peers
// configured differently still interoperate (the binary preamble
// cannot be mistaken for a gob stream; see codec.go).
type Codec uint8

// Codecs.
const (
	// CodecBinary frames envelopes with the hand-rolled binary codec;
	// message types without a registered wire codec ride gob inside
	// the binary framing. The default.
	CodecBinary Codec = iota
	// CodecGob streams whole envelopes over one persistent gob
	// encoder per connection (the pre-binary wire format).
	CodecGob
)

// ParseCodec maps a flag/topology string to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return CodecBinary, fmt.Errorf("transport: unknown codec %q (want binary or gob)", s)
	}
}

// String renders the codec name.
func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// RegisterMessage registers a concrete message type for the gob wire
// codec. Every protocol package registers its message types in init so
// they can cross TCP transports.
func RegisterMessage(m Message) { gob.Register(m) }

// helloMsg announces a dialing peer's node and reachable address so
// the receiver can route replies back (clients are not in the static
// routing table servers start with).
type helloMsg struct {
	ID   NodeID
	Addr string
}

func init() {
	gob.Register(helloMsg{})
	gob.Register(Batch{})
}

// TCP is a Network whose nodes may live in different processes.
// Locally registered nodes receive messages directly; remote nodes
// are reached via persistent gob-encoded TCP connections using a
// static NodeID→address routing table.
//
// Delivery is best-effort: connection failures and full outbound
// queues drop messages, exactly as the protocol layers expect from a
// WAN. What IS guaranteed is per-pair ordering: messages between one
// (from, to) pair that are delivered arrive in send order — all
// traffic to one peer address flows through a single FIFO queue and
// one writer goroutine (batch envelopes additionally preserve the
// order of their items).
type TCP struct {
	mu       sync.RWMutex
	local    map[NodeID]*mailbox
	routes   map[NodeID]string // node → "host:port"
	conns    map[string]*tcpConn
	accepted map[net.Conn]struct{} // inbound conns, closed with the transport
	ln       net.Listener
	clk      clock.Clock
	closed   bool
	tracer   WireTracer
	codec    Codec
	stats    statCounters

	// hellos remembers each peer's announcements (self node → reply
	// address) so every FRESH dial re-announces them at the head of the
	// new connection: a restarted peer wiped its learned routes, and a
	// reconnecting client whose hello only ever rode the first
	// connection would find its replies silently unroutable.
	hellos map[string][]helloMsg

	// Logf, if set, receives connection diagnostics.
	Logf func(format string, args ...interface{})
}

// SetCodec selects the send-side wire encoding. Call before traffic
// starts; established connections keep the codec they opened with.
func (t *TCP) SetCodec(c Codec) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.codec = c
}

// sendCodec reads the configured codec.
func (t *TCP) sendCodec() Codec {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.codec
}

// SetTracer installs the flight-recorder wire hook: outgoing envelopes
// are stamped with the local Lamport clock and incoming stamps are
// folded back in, so timelines assembled across processes stay
// causally ordered. Call before traffic starts.
func (t *TCP) SetTracer(tr WireTracer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracer = tr
}

// outboundDepth bounds each peer's send queue; overflow drops (WAN
// loss semantics) rather than blocking protocol goroutines.
const outboundDepth = 8192

// tcpConn is one peer's ordered outbound queue. The writer goroutine
// dials lazily, then drains the queue over a single connection, which
// is what preserves per-(from,to) send order.
type tcpConn struct {
	addr string
	ch   chan Envelope
	done chan struct{}
	once sync.Once // closes done exactly once

	mu   sync.Mutex
	conn net.Conn // set by the writer after dialing (for Close)
}

func (c *tcpConn) close() {
	c.once.Do(func() { close(c.done) })
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
}

// countingWriter / countingReader count wire bytes into the shared
// transport stats.
type countingWriter struct {
	w io.Writer
	n *statCounters
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.bytesSent.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *statCounters
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.bytesReceived.Add(int64(n))
	return n, err
}

// NewTCP returns a TCP network with the given routing table (may be
// extended later with AddRoute).
func NewTCP(routes map[NodeID]string) *TCP {
	t := &TCP{
		local:    make(map[NodeID]*mailbox),
		routes:   make(map[NodeID]string),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		hellos:   make(map[string][]helloMsg),
		clk:      clock.NewReal(),
	}
	for id, addr := range routes {
		t.routes[id] = addr
	}
	return t
}

// AddRoute maps a node to a remote address.
func (t *TCP) AddRoute(id NodeID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[id] = addr
}

// Listen starts accepting peer connections on addr and returns the
// bound address (useful with ":0").
func (t *TCP) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	t.ln = ln
	t.mu.Unlock()
	go t.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (t *TCP) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop auto-detects the peer's codec from the connection
// preamble: binary connections open with wireMagic + a version byte
// (which no gob stream can start with), everything else is a legacy
// persistent gob stream. Auto-detection is what keeps mixed-codec
// deployments (a gob-configured sender, a binary receiver) working.
func (t *TCP) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReaderSize(countingReader{r: conn, n: &t.stats}, 32<<10)
	head, err := br.Peek(len(wireMagic))
	if err != nil {
		if err != io.EOF && !errors.Is(err, net.ErrClosed) {
			t.logf("transport: read preamble from %s: %v", conn.RemoteAddr(), err)
		}
		return
	}
	if [4]byte(head) == wireMagic {
		t.readBinary(br, conn)
		return
	}
	dec := gob.NewDecoder(br)
	for {
		var e Envelope
		if err := dec.Decode(&e); err != nil {
			if !errors.Is(err, net.ErrClosed) && err != io.EOF {
				t.logf("transport: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		t.deliverLocal(e)
	}
}

// readBinary drains length-prefixed binary frames. The payload buffer
// is reused across frames (decoders copy what they keep), so a
// steady-state connection reads without per-frame allocation beyond
// the decoded messages themselves.
func (t *TCP) readBinary(br *bufio.Reader, conn net.Conn) {
	var pre [5]byte // magic + version
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return
	}
	if pre[4] != WireVersion {
		t.logf("transport: peer %s speaks wire version %d, want %d; dropping connection",
			conn.RemoteAddr(), pre[4], WireVersion)
		return
	}
	var lenb [4]byte
	payload := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				t.logf("transport: read frame from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > maxFrame {
			t.logf("transport: oversized frame (%d bytes) from %s; dropping connection", n, conn.RemoteAddr())
			return
		}
		if int(n) > len(payload) {
			payload = make([]byte, n)
		}
		if _, err := io.ReadFull(br, payload[:n]); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				t.logf("transport: read frame from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		e, err := DecodeFrame(payload[:n])
		if err != nil {
			t.logf("transport: decode frame from %s: %v; dropping connection", conn.RemoteAddr(), err)
			return
		}
		t.deliverLocal(e)
	}
}

func (t *TCP) deliverLocal(e Envelope) {
	if h, ok := e.Msg.(helloMsg); ok {
		t.AddRoute(h.ID, h.Addr)
		return
	}
	t.mu.RLock()
	mb, ok := t.local[e.To]
	tracer := t.tracer
	t.mu.RUnlock()
	if tracer != nil {
		tracer.ObserveRecv(e.TraceClk)
	}
	if !ok {
		t.logf("transport: no local node %s, dropping %T", e.To, e.Msg)
		return
	}
	t.stats.countReceive(e.Msg)
	select {
	case mb.ch <- func(h Handler) { h(e) }:
	case <-mb.done:
	}
}

// Register installs a handler for a node hosted in this process.
func (t *TCP) Register(id NodeID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if mb, ok := t.local[id]; ok {
		close(mb.done)
	}
	mb := &mailbox{ch: make(chan func(Handler), 4096), done: make(chan struct{})}
	t.local[id] = mb
	go func() {
		for {
			select {
			case f := <-mb.ch:
				f(h)
			case <-mb.done:
				return
			}
		}
	}()
}

// Send routes msg to a local mailbox or over TCP. Remote sends to the
// same destination are FIFO through one per-peer queue, so messages
// of a (from, to) pair never reorder (they may still drop).
func (t *TCP) Send(from, to NodeID, msg Message) {
	e := Envelope{From: from, To: to, Msg: msg}
	t.mu.RLock()
	_, isLocal := t.local[to]
	addr, hasRoute := t.routes[to]
	closed := t.closed
	tracer := t.tracer
	t.mu.RUnlock()
	if closed {
		return
	}
	if tracer != nil {
		e.TraceClk = tracer.StampSend()
	}
	if isLocal {
		t.stats.countSend(msg)
		t.deliverLocal(e)
		return
	}
	if !hasRoute {
		t.stats.droppedNoRoute.Add(1)
		t.logf("transport: no route to %s, dropping %T", to, msg)
		return
	}
	c := t.connTo(addr)
	// Count only what is actually enqueued: a dropped message never
	// reaches the wire, and counting it as sent inflates the /metrics
	// send counters exactly when the transport is failing.
	select {
	case c.ch <- e:
		t.stats.countSend(msg)
	case <-c.done:
		t.stats.droppedConnDown.Add(1)
		t.logf("transport: conn to %s down, dropping %T", addr, msg)
	default:
		t.stats.droppedQueueFull.Add(1)
		t.logf("transport: queue to %s full, dropping %T", addr, msg)
	}
}

// connTo returns the peer's outbound queue, creating it (and its
// writer goroutine) on first use. Returns a dead (done-closed) queue
// when racing Close, so callers simply observe a down connection.
func (t *TCP) connTo(addr string) *tcpConn {
	t.mu.RLock()
	c, ok := t.conns[addr]
	t.mu.RUnlock()
	if ok {
		return c
	}
	t.mu.Lock()
	if exist, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return exist
	}
	c = &tcpConn{addr: addr, ch: make(chan Envelope, outboundDepth), done: make(chan struct{})}
	if t.closed {
		t.mu.Unlock()
		c.close()
		return c
	}
	t.conns[addr] = c
	t.mu.Unlock()
	go t.writeLoop(c)
	return c
}

// writeLoop dials the peer and drains its queue in order. Any dial or
// encode error tears the queue down; queued and future messages drop
// until a new Send re-creates the connection.
//
// Writes are buffered: each envelope lands in a bufio.Writer, flushed
// only when the outbound queue has drained empty — so a burst pays one
// write(2) instead of one (or with gob, several) per message, while an
// idle queue still gets every message onto the wire immediately.
func (t *TCP) writeLoop(c *tcpConn) {
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		t.logf("transport: dial %s: %v", c.addr, err)
		t.dropConn(c.addr, c)
		return
	}
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
	select {
	case <-c.done: // closed while dialing
		conn.Close()
		return
	default:
	}
	// Responses flow over separately dialed connections from the
	// peer; this connection is send-only, but drain it so the peer
	// closing is noticed promptly.
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := conn.Read(buf); err != nil {
				t.dropConn(c.addr, c)
				return
			}
		}
	}()
	bw := bufio.NewWriterSize(countingWriter{w: conn, n: &t.stats}, 64<<10)
	var write func(e Envelope) error
	if t.sendCodec() == CodecGob {
		enc := gob.NewEncoder(bw)
		write = func(e Envelope) error { return enc.Encode(&e) }
	} else {
		if _, err := bw.Write(append(wireMagic[:], WireVersion)); err != nil {
			t.dropConn(c.addr, c)
			return
		}
		// The frame buffer is reused across messages: encode after the
		// 4-byte length slot, then back-fill the length.
		buf := make([]byte, 4, 4096)
		write = func(e Envelope) error {
			var err error
			buf, err = AppendEnvelope(buf[:4], e)
			if err != nil {
				t.logf("transport: encode %T for %s: %v (message dropped)", e.Msg, c.addr, err)
				return nil
			}
			if len(buf)-4 > maxFrame {
				t.logf("transport: %T for %s exceeds max frame (%d bytes), dropped", e.Msg, c.addr, len(buf)-4)
				return nil
			}
			binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
			_, err = bw.Write(buf)
			return err
		}
	}
	// A fresh connection's head re-announces every hello registered for
	// this peer: a restarted peer lost its learned routes, and replies
	// to any locally hosted node would otherwise be unroutable until
	// the process reconnected AND re-called Hello by hand.
	t.mu.RLock()
	hellos := t.hellos[c.addr]
	t.mu.RUnlock()
	for _, h := range hellos {
		if err := write(Envelope{From: h.ID, Msg: h}); err != nil {
			t.logf("transport: send hello to %s: %v", c.addr, err)
			t.dropConn(c.addr, c)
			return
		}
	}
	// Flush the preamble and hellos even if the queue is empty: the
	// peer must learn the reply routes before any request arrives on
	// another connection.
	if err := bw.Flush(); err != nil {
		t.dropConn(c.addr, c)
		return
	}
	for {
		select {
		case e := <-c.ch:
			if err := write(e); err != nil {
				t.logf("transport: send to %s: %v", c.addr, err)
				t.dropConn(c.addr, c)
				return
			}
			if len(c.ch) > 0 {
				continue // more queued: keep filling the buffer
			}
			if err := bw.Flush(); err != nil {
				t.logf("transport: flush to %s: %v", c.addr, err)
				t.dropConn(c.addr, c)
				return
			}
		case <-c.done:
			bw.Flush()
			return
		}
	}
}

func (t *TCP) dropConn(addr string, c *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == c {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	c.close()
}

// DropPeerConns tears down every open outbound connection; the next
// Send to an affected peer dials a fresh one. Test hook for
// reconnect-ordering coverage (per-pair FIFO must survive teardown).
func (t *TCP) DropPeerConns() {
	t.mu.Lock()
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		t.dropConn(c.addr, c)
	}
}

// Hello announces a locally hosted node's listen address to a remote
// peer so the peer can route replies back. Call after Listen, before
// sending requests. The announcement is persistent: every FRESH
// connection to the peer replays it at its head (see writeLoop), so a
// peer that restarted — wiping its learned routes — re-learns the
// reply route the moment this side reconnects.
func (t *TCP) Hello(peerAddr string, self NodeID, selfAddr string) {
	h := helloMsg{ID: self, Addr: selfAddr}
	t.mu.Lock()
	known := false
	for i, old := range t.hellos[peerAddr] {
		if old.ID == self {
			t.hellos[peerAddr][i] = h
			known = true
			break
		}
	}
	if !known {
		t.hellos[peerAddr] = append(t.hellos[peerAddr], h)
	}
	t.mu.Unlock()
	c := t.connTo(peerAddr)
	select {
	case c.ch <- Envelope{From: self, Msg: h}:
	case <-c.done:
	default:
	}
}

// After schedules f serialized with node on's mailbox.
func (t *TCP) After(on NodeID, d time.Duration, f func()) clock.Timer {
	return t.clk.After(d, func() {
		t.mu.RLock()
		mb, ok := t.local[on]
		t.mu.RUnlock()
		if !ok {
			return
		}
		select {
		case mb.ch <- func(Handler) { f() }:
		case <-mb.done:
		}
	})
}

// Now returns wall-clock time.
func (t *TCP) Now() time.Time { return t.clk.Now() }

// Stats snapshots the transport counters (messages, batch envelopes,
// wire bytes) — served by cmd/mdcc-server /metrics.
func (t *TCP) Stats() Stats { return t.stats.snapshot() }

// Close shuts the listener, connections and mailboxes.
func (t *TCP) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	if t.ln != nil {
		t.ln.Close()
	}
	conns := t.conns
	local := t.local
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.local = make(map[NodeID]*mailbox)
	t.conns = make(map[string]*tcpConn)
	t.accepted = make(map[net.Conn]struct{})
	t.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	// Close inbound connections too: a transport that "restarts" (new
	// TCP on the same address) must sever old peers so they redial —
	// and replay their hellos — against the new instance.
	for _, c := range accepted {
		c.Close()
	}
	for _, mb := range local {
		close(mb.done)
	}
}

// logf reports a diagnostic if the owner installed a logger; the
// default is silence because message drops are expected behaviour.
func (t *TCP) logf(format string, args ...interface{}) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}
