package gateway

import (
	"testing"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/core"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// fuzzNet is the minimal transport.Network the headroom-accounting
// methods touch (only Now); the fuzz drives the accounting directly,
// no messages flow.
type fuzzNet struct{}

func (fuzzNet) Register(transport.NodeID, transport.Handler)               {}
func (fuzzNet) Send(transport.NodeID, transport.NodeID, transport.Message) {}
func (fuzzNet) After(transport.NodeID, time.Duration, func()) clock.Timer  { return nil }
func (fuzzNet) Now() time.Time                                             { return time.Unix(0, 0) }

// FuzzDemarcationParity drives the gateway's headroom accounting and
// an acceptor-side oracle (internal/core's DeltaSafe — the exact
// predicate acceptors evaluate) through randomized bases, bounds,
// share factors and delta/resolve/snapshot sequences, and asserts the
// admission contract both ways:
//
//  1. Knowledge parity (always): whenever the gateway admits a delta
//     into a merge window, the acceptor's own predicate evaluated on
//     the gateway's held state (snapshot + its outstanding deltas)
//     must also accept it — the gateway is never *looser* than the
//     acceptor on what it knows.
//  2. Single-writer exactness: with no other gateway feeding the key,
//     the gateway's knowledge is conservative w.r.t. the live
//     acceptor, so an admitted delta must also pass the acceptor's
//     live state.
//
// Run under -race in CI (the seed corpus executes on every `go test
// -race ./...`); the CI fuzz gate additionally explores new inputs.
func FuzzDemarcationParity(f *testing.F) {
	f.Add(uint8(60), false, uint8(0), uint8(4), []byte{0x00, 0x85, 0x02, 0x81, 0x08, 0x00, 0x04, 0x83})
	f.Add(uint8(3), false, uint8(0), uint8(0), []byte{0x00, 0x81, 0x00, 0x81, 0x00, 0x81, 0x02, 0x00})
	f.Add(uint8(10), true, uint8(20), uint8(2), []byte{0x00, 0x05, 0x03, 0x07, 0x08, 0x00, 0x00, 0x84, 0x02, 0x01})
	f.Add(uint8(100), true, uint8(7), uint8(1), []byte{0x03, 0x86, 0x08, 0x00, 0x00, 0x82, 0x02, 0x00, 0x00, 0x81})
	f.Fuzz(func(t *testing.T, base0 uint8, maxOn bool, maxSlack uint8, shareIn uint8, ops []byte) {
		var con record.Constraint
		if maxOn {
			con = record.Bound("u", 0, int64(base0)+int64(maxSlack))
		} else {
			con = record.MinBound("u", 0)
		}
		q := paxos.NewQuorum(5)
		g := &Gateway{
			cfg:  core.Config{Constraints: []record.Constraint{con}},
			q:    q,
			tun:  Tuning{HeadroomShare: int(shareIn%5) + 1}.withDefaults(),
			net:  fuzzNet{},
			keys: make(map[record.Key]*keyState),
		}
		key := record.Key("k")

		// Ground-truth acceptor state.
		type pendEntry struct {
			d      int64
			own    bool
			tracks []outTrack
		}
		trueBase := int64(base0)
		ver := record.Version(1)
		var pend []pendEntry
		othersUsed := false
		pendSums := func() (down, up int64) {
			for _, e := range pend {
				if e.d < 0 {
					down += e.d
				} else {
					up += e.d
				}
			}
			return down, up
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			d := int64(arg&0x7f)%8 + 1
			if arg&0x80 != 0 {
				d = -d
			}
			switch op % 5 {
			case 0, 1: // this gateway proposes d
				up := record.Commutative(key, map[string]int64{"u": d})
				ks := g.ks(key)
				if g.fitsLocked(ks, up) {
					a := ks.acc["u"]
					kDown := a.pendDown + ks.outDown["u"]
					kUp := a.pendUp + ks.outUp["u"]
					if !core.DeltaSafe(a.base, kDown, kUp, d, con, q, true) {
						t.Fatalf("gateway admitted delta %+d but the acceptor predicate rejects it on the gateway's own knowledge (base %d, pend %d/%d, con %s, share %d)",
							d, a.base, kDown, kUp, con, g.tun.HeadroomShare)
					}
					if !othersUsed {
						td, tu := pendSums()
						if !core.DeltaSafe(trueBase, td, tu, d, con, q, true) {
							t.Fatalf("single-writer: gateway admitted delta %+d the live acceptor rejects (true base %d, pend %d/%d, con %s)",
								d, trueBase, td, tu, con)
						}
					}
				}
				// Whether merged or bypassed, the delta is proposed and
				// the acceptor arbitrates; the gateway accounts it
				// outstanding until the outcome resolves.
				td, tu := pendSums()
				tracks := g.trackOutLocked([]record.Update{up})
				if core.DeltaSafe(trueBase, td, tu, d, con, q, true) {
					pend = append(pend, pendEntry{d: d, own: true, tracks: tracks})
				} else {
					// Learned rejected immediately.
					g.resolveTracks(tracks, false)
				}
			case 2: // oldest pending option resolves (commit/abort by bit)
				if len(pend) == 0 {
					continue
				}
				e := pend[0]
				pend = pend[1:]
				commit := arg&1 == 0
				if commit {
					trueBase += e.d
					ver++
				}
				if e.own {
					g.resolveTracks(e.tracks, commit)
				}
			case 3: // another gateway's delta reaches the acceptor
				td, tu := pendSums()
				if core.DeltaSafe(trueBase, td, tu, d, con, q, true) {
					pend = append(pend, pendEntry{d: d, own: false})
					othersUsed = true
				}
			case 4: // a piggybacked snapshot of the current state lands
				td, tu := pendSums()
				g.observeEscrow("", key, core.EscrowSnap{
					Valid: true, Version: ver,
					Attrs: []core.AttrEscrow{{Attr: "u", Base: trueBase, PendDown: td, PendUp: tu}},
				})
			}
			// Escrow safety ground truth: the acceptor's own admissions
			// must keep the constraint safe under every permutation.
			td, tu := pendSums()
			if trueBase+td < 0 {
				t.Fatalf("oracle broke escrow: base %d, pendDown %d", trueBase, td)
			}
			if con.Max != nil && trueBase+tu > *con.Max {
				t.Fatalf("oracle broke upper escrow: base %d, pendUp %d, max %d", trueBase, tu, *con.Max)
			}
		}
	})
}
