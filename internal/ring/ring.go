// Package ring is the keyspace sharding subsystem: a versioned shard
// map over a consistent-hash ring. Each replica group (one storage
// node per data center, the Paxos acceptor set for its shard of the
// keyspace) projects VPoints virtual points onto a 32-bit hash circle;
// a key is owned by the group owning the first point at or clockwise
// of the key's hash. Placement is a pure function of the map — every
// node that holds the same epoch computes the same owner for every key
// — and group membership changes move only the ~1/G slice of keys
// whose nearest point changed, never reshuffling the rest (the
// consistent-hashing property that makes live rebalancing affordable).
//
// Maps are plain gob-encodable data with a monotone Epoch, so a ring
// change is published by value: stage the next map, drain and
// bootstrap the moving shards (see Mover), then install it. Stale
// participants are fenced by epoch — a request routed under an old
// epoch is refused with ErrWrongShard carrying the current one.
package ring

import (
	"fmt"
	"sort"
	"sync"
)

// Epoch versions a shard map. Epochs are strictly monotone per
// cluster; a larger epoch always supersedes a smaller one.
type Epoch uint64

// DefaultVPoints is the virtual-point count per replica group. 64
// points keep the expected placement imbalance between groups within a
// few percent for the group counts a deployment runs (single digits)
// while the compiled ring stays a few hundred entries.
const DefaultVPoints = 64

// Map is a versioned shard map: the active replica groups and the
// virtual-point density they project onto the hash circle. It is pure
// data — gob-stable, comparable by Epoch — and placement is fully
// determined by its contents (see Compile).
type Map struct {
	Epoch   Epoch
	VPoints int
	Groups  []int // active replica-group indices, sorted ascending
}

// New builds the first map (epoch 1) over the given groups.
func New(groups []int, vpoints int) Map {
	if vpoints <= 0 {
		vpoints = DefaultVPoints
	}
	gs := append([]int(nil), groups...)
	sort.Ints(gs)
	return Map{Epoch: 1, VPoints: vpoints, Groups: gs}
}

// Clone deep-copies the map.
func (m Map) Clone() Map {
	out := m
	out.Groups = append([]int(nil), m.Groups...)
	return out
}

// Has reports whether group g is active in the map.
func (m Map) Has(g int) bool {
	i := sort.SearchInts(m.Groups, g)
	return i < len(m.Groups) && m.Groups[i] == g
}

// WithGroup returns the next epoch's map with group g added (a no-op
// membership change still bumps the epoch: epochs version the
// publication, not the diff).
func (m Map) WithGroup(g int) Map {
	out := m.Clone()
	out.Epoch++
	if !out.Has(g) {
		out.Groups = append(out.Groups, g)
		sort.Ints(out.Groups)
	}
	return out
}

// WithoutGroup returns the next epoch's map with group g removed.
func (m Map) WithoutGroup(g int) Map {
	out := m.Clone()
	out.Epoch++
	if i := sort.SearchInts(out.Groups, g); i < len(out.Groups) && out.Groups[i] == g {
		out.Groups = append(out.Groups[:i], out.Groups[i+1:]...)
	}
	return out
}

// Ring is a compiled (immutable) map: the sorted virtual points and
// their owners, ready for O(log points) lookups. Compile is
// deterministic, so two nodes compiling the same Map agree on every
// owner.
type Ring struct {
	m      Map
	points []uint32 // sorted point hashes
	owners []int    // owning group per point
}

// Compile builds the lookup structure for a map.
func Compile(m Map) *Ring {
	m = m.Clone()
	if m.VPoints <= 0 {
		m.VPoints = DefaultVPoints
	}
	type pt struct {
		h uint32
		g int
	}
	pts := make([]pt, 0, len(m.Groups)*m.VPoints)
	for _, g := range m.Groups {
		for v := 0; v < m.VPoints; v++ {
			pts = append(pts, pt{h: hash32(fmt.Sprintf("g%d/v%d", g, v)), g: g})
		}
	}
	// Ties (two groups hashing a point identically) break toward the
	// lower group index — any rule works as long as it is deterministic.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].g < pts[j].g
	})
	r := &Ring{m: m, points: make([]uint32, len(pts)), owners: make([]int, len(pts))}
	for i, p := range pts {
		r.points[i] = p.h
		r.owners[i] = p.g
	}
	return r
}

// Owner returns the replica group owning key: the group of the first
// virtual point at or clockwise of the key's hash. An empty ring owns
// everything at group 0 (a degenerate map should never be installed;
// this keeps lookups total).
func (r *Ring) Owner(key string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := hash32(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.owners[i]
}

// Map returns a copy of the compiled map.
func (r *Ring) Map() Map { return r.m.Clone() }

// Epoch returns the compiled map's epoch.
func (r *Ring) Epoch() Epoch { return r.m.Epoch }

// Groups returns the active group indices.
func (r *Ring) Groups() []int { return append([]int(nil), r.m.Groups...) }

// Table is a cluster's live ring view: the current ring, the previous
// one (so re-homed keys can be enumerated after a publish), and an
// optionally staged next ring while a move is in flight. Reads are
// concurrency-safe; Stage/Install are serialized by the mover.
type Table struct {
	mu     sync.RWMutex
	cur    *Ring
	prev   *Ring
	staged *Ring
}

// NewTable builds a table serving map m.
func NewTable(m Map) *Table {
	return &Table{cur: Compile(m)}
}

// Owner resolves a key's owning group under the current ring.
func (t *Table) Owner(key string) int {
	t.mu.RLock()
	r := t.cur
	t.mu.RUnlock()
	return r.Owner(key)
}

// Epoch returns the current (published) epoch.
func (t *Table) Epoch() Epoch {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cur.Epoch()
}

// Current returns the published ring.
func (t *Table) Current() *Ring {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cur
}

// Stage compiles and remembers the next map without publishing it:
// movers and bootstrap filters resolve prospective owners against the
// staged ring while routing still follows the current one.
func (t *Table) Stage(m Map) *Ring {
	r := Compile(m)
	t.mu.Lock()
	t.staged = r
	t.mu.Unlock()
	return r
}

// Staged returns the staged ring (nil when no move is preparing).
func (t *Table) Staged() *Ring {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.staged
}

// Install publishes map m: the current ring becomes the previous one,
// the staged ring is cleared. A stale install (epoch not above the
// current) is ignored and reported false.
func (t *Table) Install(m Map) bool {
	r := Compile(m)
	t.mu.Lock()
	defer t.mu.Unlock()
	if r.Epoch() <= t.cur.Epoch() {
		return false
	}
	t.prev = t.cur
	t.cur = r
	t.staged = nil
	return true
}

// Moved reports whether key changed owners at the last publish — the
// re-home predicate consumers (gateway interest sets, read tiers) use
// to invalidate per-key routing state after an epoch change.
func (t *Table) Moved(key string) bool {
	t.mu.RLock()
	cur, prev := t.cur, t.prev
	t.mu.RUnlock()
	if prev == nil {
		return false
	}
	return cur.Owner(key) != prev.Owner(key)
}

// ErrWrongShard is the epoch fence: a request routed under a stale (or
// frozen mid-move) ring epoch is refused with the epoch the caller
// must refresh to before retrying. The refusal is issued before the
// request enters the commit protocol, so a retry can never duplicate
// work.
type ErrWrongShard struct {
	Epoch Epoch // the current (or imminently publishing) epoch
}

func (e ErrWrongShard) Error() string {
	return fmt.Sprintf("ring: wrong shard for this key set; refresh to ring epoch %d and retry", e.Epoch)
}

// hash32 is an FNV-1a hash with a murmur3 fmix32 avalanche — FNV's low
// bits correlate for short structured keys and ring placement consumes
// the full 32-bit range, so the finalizer matters (same construction
// the pre-ring hash-mod sharding used).
func hash32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
