// Package kv is the node-local versioned record store each storage
// node runs (the role BDB JE plays in the paper's prototype). It maps
// record keys to (value, version) pairs in an ordered B-tree, with an
// optional write-ahead log so a restarted node recovers its committed
// state. Protocol state (pending options, ballots) lives above this
// layer in internal/core; only *committed* data enters the store.
package kv

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"mdcc/internal/btree"
	"mdcc/internal/record"
	"mdcc/internal/wal"
)

// Entry is a committed record state.
type Entry struct {
	Key     record.Key
	Value   record.Value
	Version record.Version
}

// Store is a versioned key/value store. Safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	tree     *btree.Tree
	log      *wal.Log // nil for memory-only stores
	puts     int64
	replayed int64
}

// NewMemory returns a store without durability (the simulator's
// storage nodes: durability there is modeled, not real).
func NewMemory() *Store {
	return &Store{tree: btree.New()}
}

// Open returns a durable store backed by a WAL in dir, replaying any
// existing log into memory.
func Open(dir string, noSync bool) (*Store, error) {
	return OpenWith(dir, wal.Options{NoSync: noSync}, nil, 0)
}

// OpenWith returns a durable store backed by a WAL in dir with full
// control of the log options (group commit, fault injection). seed
// entries — recovered from a checkpoint snapshot — enter the tree
// without being re-logged, and replay starts at segment fromSeg (the
// snapshot's cut), so recovery is the bounded tail, not the whole log.
// Replaying a tail that overlaps the seed is sound: puts are
// last-write-wins in log order.
func OpenWith(dir string, opts wal.Options, seed []Entry, fromSeg int) (*Store, error) {
	log, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{tree: btree.New(), log: log}
	for _, e := range seed {
		s.tree.Put(string(e.Key), Entry{Key: e.Key, Value: e.Value.Clone(), Version: e.Version})
	}
	err = log.ReplayFrom(fromSeg, func(payload []byte) error {
		var e Entry
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); derr != nil {
			return fmt.Errorf("kv: replay: %w", derr)
		}
		s.tree.Put(string(e.Key), e)
		s.replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

// Get returns the committed value and version for key. ok is false if
// the key has never been written. Tombstoned records are returned
// with ok=true (callers decide how to treat deletes); Exists reports
// presence net of tombstones.
func (s *Store) Get(key record.Key) (record.Value, record.Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(string(key))
	if !ok {
		return record.Value{}, 0, false
	}
	e := v.(Entry)
	return e.Value.Clone(), e.Version, true
}

// Exists reports whether key holds a live (non-tombstoned) record.
func (s *Store) Exists(key record.Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.tree.Get(string(key))
	if !ok {
		return false
	}
	return !v.(Entry).Value.Tombstone
}

// Put replaces the committed state of key.
func (s *Store) Put(key record.Key, value record.Value, version record.Version) error {
	e := Entry{Key: key, Value: value.Clone(), Version: version}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
			return fmt.Errorf("kv: encode: %w", err)
		}
		if err := s.log.Append(buf.Bytes()); err != nil {
			return err
		}
	}
	s.tree.Put(string(key), e)
	s.puts++
	return nil
}

// Scan calls fn for every live entry with from <= key < to (to == ""
// means unbounded) in key order, stopping early if fn returns false.
func (s *Store) Scan(from, to record.Key, fn func(Entry) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.tree.AscendRange(string(from), string(to), func(k string, v interface{}) bool {
		e := v.(Entry)
		if e.Value.Tombstone {
			return true
		}
		return fn(Entry{Key: e.Key, Value: e.Value.Clone(), Version: e.Version})
	})
}

// Entries returns every entry — tombstones included, a checkpoint must
// preserve them — in key order, with cloned values.
func (s *Store) Entries() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Entry, 0, s.tree.Len())
	s.tree.AscendRange("", "", func(k string, v interface{}) bool {
		e := v.(Entry)
		out = append(out, Entry{Key: e.Key, Value: e.Value.Clone(), Version: e.Version})
		return true
	})
	return out
}

// Log exposes the backing WAL (nil for memory stores) for checkpoint
// cuts, truncation, and durability stats.
func (s *Store) Log() *wal.Log {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.log
}

// Replayed returns how many WAL records were replayed at open — the
// recovery tail length when opened from a snapshot.
func (s *Store) Replayed() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replayed
}

// Len returns the number of keys ever written (including tombstones).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Len()
}

// Puts returns the number of Put calls served (monitoring).
func (s *Store) Puts() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts
}

// Close releases the WAL, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}
