// Package qw implements the quorum-writes baseline (QW-3 / QW-4 in
// the paper's evaluation): the standard eventually-consistent
// replication scheme — send every update to all replicas, acknowledge
// the client after W of N respond, read locally (R=1). It provides no
// isolation, no atomicity and no transactions; it exists as the
// latency/throughput floor that MDCC is compared against.
package qw

import (
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Timestamp orders concurrent physical writes (last-writer-wins).
// Client clocks are virtual-time consistent in the simulator; ties
// break by client ID.
type Timestamp struct {
	Nanos  int64
	Client transport.NodeID
}

// after reports whether t is newer than o.
func (t Timestamp) after(o Timestamp) bool {
	if t.Nanos != o.Nanos {
		return t.Nanos > o.Nanos
	}
	return t.Client > o.Client
}

// MsgWrite replicates one update.
type MsgWrite struct {
	ReqID  uint64
	Update record.Update
	TS     Timestamp
}

// MsgWriteAck acknowledges one update.
type MsgWriteAck struct {
	ReqID uint64
	Key   record.Key
}

// MsgRead reads the local replica.
type MsgRead struct {
	ReqID uint64
	Key   record.Key
}

// MsgReadReply answers MsgRead.
type MsgReadReply struct {
	ReqID   uint64
	Key     record.Key
	Value   record.Value
	Version record.Version
	Exists  bool
}

func init() {
	transport.RegisterMessage(MsgWrite{})
	transport.RegisterMessage(MsgWriteAck{})
	transport.RegisterMessage(MsgRead{})
	transport.RegisterMessage(MsgReadReply{})
}

// tsEntry remembers the last-writer-wins timestamp per key.
type tsEntry struct{ ts Timestamp }

// StorageNode is a quorum-writes replica: it applies every write it
// receives (physical writes win by timestamp, deltas always apply)
// and acknowledges.
type StorageNode struct {
	id    transport.NodeID
	net   transport.Network
	store *kv.Store
	ts    map[record.Key]tsEntry
}

// NewStorageNode builds and registers a replica.
func NewStorageNode(id transport.NodeID, net transport.Network, store *kv.Store) *StorageNode {
	n := &StorageNode{id: id, net: net, store: store, ts: make(map[record.Key]tsEntry)}
	net.Register(id, n.handle)
	return n
}

// ID returns the node identity.
func (n *StorageNode) ID() transport.NodeID { return n.id }

// Store exposes the local store.
func (n *StorageNode) Store() *kv.Store { return n.store }

func (n *StorageNode) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgWrite:
		n.onWrite(env.From, m)
	case MsgRead:
		val, ver, ok := n.store.Get(m.Key)
		n.net.Send(n.id, env.From, MsgReadReply{
			ReqID: m.ReqID, Key: m.Key, Value: val, Version: ver,
			Exists: ok && !val.Tombstone,
		})
	}
}

func (n *StorageNode) onWrite(from transport.NodeID, m MsgWrite) {
	key := m.Update.Key
	switch m.Update.Kind {
	case record.KindPhysical:
		cur, ver, _ := n.store.Get(key)
		if last, ok := n.ts[key]; !ok || m.TS.after(last.ts) {
			n.ts[key] = tsEntry{ts: m.TS}
			_ = n.store.Put(key, m.Update.NewValue, ver+1)
		}
		_ = cur
	case record.KindCommutative:
		cur, ver, _ := n.store.Get(key)
		_ = n.store.Put(key, m.Update.Apply(cur), ver+1)
	}
	n.net.Send(n.id, from, MsgWriteAck{ReqID: m.ReqID, Key: key})
}

// Client is the quorum-writes client: W-of-N write acknowledgement,
// local reads.
type Client struct {
	id  transport.NodeID
	dc  topology.DC
	net transport.Network
	cl  *topology.Cluster
	w   int // write quorum (3 or 4 of 5)

	reqSeq uint64
	writes map[uint64]*writeCtx
	reads  map[uint64]*readCtx
}

type writeCtx struct {
	pending map[record.Key]int // key → acks still needed
	done    func(bool)
}

type readCtx struct {
	cb func(record.Value, record.Version, bool)
}

// NewClient builds a client waiting for w acknowledgements per write.
func NewClient(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, w int) *Client {
	c := &Client{
		id: id, dc: dc, net: net, cl: cl, w: w,
		writes: make(map[uint64]*writeCtx),
		reads:  make(map[uint64]*readCtx),
	}
	net.Register(id, c.handle)
	return c
}

func (c *Client) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case MsgWriteAck:
		c.onAck(m)
	case MsgReadReply:
		if rc, ok := c.reads[m.ReqID]; ok {
			delete(c.reads, m.ReqID)
			rc.cb(m.Value, m.Version, m.Exists)
		}
	}
}

// Read reads the local replica (R=1: the fastest configuration, as
// in the paper).
func (c *Client) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	c.reqSeq++
	c.reads[c.reqSeq] = &readCtx{cb: cb}
	c.net.Send(c.id, c.cl.ReplicaIn(key, c.dc), MsgRead{ReqID: c.reqSeq, Key: key})
}

// Commit sends every update to all replicas and reports success once
// each update has W acknowledgements. There is no isolation and no
// atomicity — exactly the baseline's semantics.
func (c *Client) Commit(updates []record.Update, done func(bool)) {
	if len(updates) == 0 {
		done(true)
		return
	}
	c.reqSeq++
	req := c.reqSeq
	wc := &writeCtx{pending: make(map[record.Key]int, len(updates)), done: done}
	c.writes[req] = wc
	ts := Timestamp{Nanos: c.net.Now().UnixNano(), Client: c.id}
	for _, up := range updates {
		wc.pending[up.Key] = c.w
		for _, rep := range c.cl.Replicas(up.Key) {
			c.net.Send(c.id, rep, MsgWrite{ReqID: req, Update: up, TS: ts})
		}
	}
}

func (c *Client) onAck(m MsgWriteAck) {
	wc, ok := c.writes[m.ReqID]
	if !ok {
		return
	}
	left, ok := wc.pending[m.Key]
	if !ok {
		return
	}
	left--
	if left > 0 {
		wc.pending[m.Key] = left
		return
	}
	delete(wc.pending, m.Key)
	if len(wc.pending) == 0 {
		delete(c.writes, m.ReqID)
		wc.done(true)
	}
}

// SupportsCommutative: deltas apply natively (and unconditionally —
// no constraints, which is exactly the baseline's weakness).
func (c *Client) SupportsCommutative() bool { return true }
