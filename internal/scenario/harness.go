package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mdcc/internal/check"
	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/mtx"
	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/simnet"
	"mdcc/internal/stats"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
	"mdcc/internal/wal"
)

// Epilogue pacing: after the traffic window the harness heals every
// fault, waits for in-flight transactions to settle, then lets the
// dangling-option sweep and anti-entropy converge the replicas before
// validating.
const (
	drainBudget   = 4 * time.Minute
	convergeAfter = 30 * time.Second
	sweepTimeout  = 3 * time.Second
	syncInterval  = 750 * time.Millisecond
	// recoveryWallBound is the documented crash-recovery bound: real
	// (wall-clock) time a storage restart may spend reopening its
	// durable state — snapshot load plus bounded tail replay. Checked
	// on every restart by check.ValidateRecovery; generous against CI
	// scheduling noise, far below an unbounded full-log replay at
	// scale.
	recoveryWallBound = 5 * time.Second
)

// Run is one scenario execution. Nemesis functions receive it to
// schedule fault events; everything else is driven by Scenario.Run.
type Run struct {
	Opts    Options
	Net     *simnet.Net
	Cluster *topology.Cluster
	Cfg     core.Config

	scn      *Scenario
	nodes    []*core.StorageNode // parallel to Cluster.Storage
	durables []*core.DurableState
	dirs     []string
	faults   []*wal.Faults        // per-node disk fault handles (parallel to nodes)
	downDC   map[topology.DC]bool // Fail-style outages to undo at heal
	crashed  map[int]bool         // storage index -> awaiting restart

	// Durable-storage observations: the durability gauges captured at
	// each crash (so the restart's replay can be judged against what
	// had actually accumulated), every restart's recovery record, and
	// the injected-fault / wiped-rebuild tallies for the report.
	crashInfo  map[int]core.DurabilityInfo
	recoveries []check.RecoveryRecord
	diskFaults int
	wiped      int
	// Counters of dead storage incarnations (accumulated at crash so a
	// replaced node's checkpoints and degrade latches still show in the
	// report; live incarnations are read at run end).
	deadCheckpoints int64
	deadDegrades    int64
	coords          []*core.Coordinator
	gws             map[topology.DC]*gateway.Gateway // gateway scenarios only
	clients         []mtx.Client
	hist            *check.History
	initial         map[record.Key]record.Value
	cons            []record.Constraint

	// Gateway fault-injection state (gateway scenarios only).
	gwDown         map[topology.DC]bool    // crashed, awaiting restart
	gwGen          map[topology.DC]uint64  // incarnation generation per DC
	gwRetired      []*gateway.Gateway      // dead incarnations (metrics)
	gwSeq          uint64                  // in-flight op token source
	gwTokens       map[uint64]*gwPendingOp // ops the gateway tier holds
	gwUnknownTyped int                     // typed in-process ErrOutcomeUnknown observations

	// Live shard-move state (Scenario.Rebalance and churn QueueMove);
	// see rebalance.go.
	mover      *ring.Mover
	moveQueue  []queuedMove              // pending membership changes, FIFO
	moves      int                       // published moves this run
	rebMoving  func(record.Key) bool     // keys re-homed by the staged epoch
	rebNext    ring.Epoch                // the staged epoch
	rebFrozen  bool                      // freeze fence active (freeze..publish)
	rebIssued  map[int]*core.StorageNode // storage idx -> incarnation a pull chain was issued on
	rebDone    map[int]bool              // storage idx -> bootstrap chain complete
	rebAdopted map[int]int               // storage idx -> keys adopted by its chain
	wrongShard int                       // client commits refused by the fence and retried

	// Session-guarantee floors, one map per client (read workloads
	// only): the minimum version each client may observe per key,
	// raised by floored reads and acknowledged physical writes —
	// mirroring Session.EnableSessionGuarantees, and recomputed
	// independently by check.ValidateSessionReads from the history.
	floors []map[record.Key]record.Version

	// rec is the run's flight recorder (Options.Trace only). The whole
	// simulated cluster is one process, so a single shared Recorder
	// gives every ring one Lamport clock — timelines assemble in true
	// causal order without wire stamps.
	rec *trace.Recorder

	trafficEnd time.Time
	inflight   int
	readFails  int
	lat        *stats.Sample
	events     []string
	tmp        bool // Dir was created by us
}

// Run executes the scenario and returns its validated result.
func (s *Scenario) Run(o Options) (*Result, error) {
	if o.Clients <= 0 {
		o.Clients = s.Clients
	}
	if o.Clients <= 0 {
		o.Clients = 50
	}
	if o.NodesPerDC <= 0 {
		o.NodesPerDC = s.NodesPerDC
	}
	if o.NodesPerDC <= 0 {
		o.NodesPerDC = 1
	}
	if o.Duration <= 0 {
		o.Duration = s.Duration
	}
	if o.Duration <= 0 {
		o.Duration = time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	r, err := build(s, o)
	if err != nil {
		return nil, err
	}
	defer r.close()
	return r.run()
}

func build(s *Scenario, o Options) (*Run, error) {
	cl := topology.NewCluster(topology.Layout{
		NodesPerDC: o.NodesPerDC,
		Groups:     s.Groups,
		Clients:    o.Clients,
		ClientDC:   -1,
	})
	// Gateway scenarios add the gateway nodes (and their coordinator
	// pools) to the latency map, homed in their data centers.
	extra := map[transport.NodeID]topology.DC{}
	if s.Gateway {
		for _, dc := range topology.AllDCs() {
			for _, id := range gateway.NodeIDs(dc, s.GatewayTuning) {
				extra[id] = dc
			}
		}
	}
	net := simnet.New(simnet.Options{
		Latency:     cl.LatencyWith(extra),
		JitterFrac:  0.10,
		ServiceTime: 250 * time.Microsecond,
		DropProb:    o.DropProb,
		Seed:        o.Seed,
	})
	cons := []record.Constraint{
		record.MinBound("bal", 0),
		record.MinBound("units", 0),
	}
	cfg := core.Defaults(core.ModeMDCC)
	cfg.Constraints = cons
	cfg.PendingTimeout = sweepTimeout
	cfg.SyncInterval = syncInterval
	if s.Gamma > 0 {
		cfg.Gamma = s.Gamma
	}
	cfg.MasterDC = s.MasterDC
	cfg.DecidedRetention = s.Retention
	cfg.CheckpointInterval = s.Checkpoint

	var rec *trace.Recorder
	if o.Trace {
		rec = trace.New(trace.Config{
			SlowestN:      o.TraceSlowest,
			SlowThreshold: o.TraceSlow,
		})
		cfg.Tracer = rec
	}

	r := &Run{
		Opts:      o,
		Net:       net,
		Cluster:   cl,
		Cfg:       cfg,
		scn:       s,
		downDC:    make(map[topology.DC]bool),
		crashed:   make(map[int]bool),
		crashInfo: make(map[int]core.DurabilityInfo),
		hist:      check.New(),
		cons:      cons,
		lat:       stats.NewSample(4096),
		gwDown:    make(map[topology.DC]bool),
		gwGen:     make(map[topology.DC]uint64),
		gwTokens:  make(map[uint64]*gwPendingOp),
		rec:       rec,
	}
	if r.Opts.Dir == "" {
		dir, err := os.MkdirTemp("", "mdcc-scenario-")
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		r.Opts.Dir = dir
		r.tmp = true
	}
	for i, n := range cl.Storage {
		dir := filepath.Join(r.Opts.Dir, string(n.ID))
		r.faults = append(r.faults, wal.NewFaults())
		ds, err := core.OpenDurableOpts(dir, r.durOpts(i))
		if err != nil {
			r.close()
			return nil, err
		}
		r.dirs = append(r.dirs, dir)
		r.durables = append(r.durables, ds)
		r.nodes = append(r.nodes, core.NewDurableStorageNode(n.ID, n.DC, net, cl, cfg, ds))
	}
	if s.Gateway {
		// Clients attach to their DC's shared gateway instead of
		// owning coordinators — the serving-tier deployment model. The
		// crash-aware client records outcomes directly so a killed
		// gateway's typed ErrOutcomeUnknown becomes an Orphan entry,
		// never a wrongly recorded abort.
		r.gws = make(map[topology.DC]*gateway.Gateway)
		for _, dc := range topology.AllDCs() {
			r.gws[dc] = gateway.New(dc, net, cl, cfg, s.GatewayTuning)
		}
		for _, c := range cl.Clients {
			r.clients = append(r.clients, gwClient{r: r, dc: c.DC, id: c.Index})
			r.floors = append(r.floors, make(map[record.Key]record.Version))
		}
	} else {
		for _, c := range cl.Clients {
			co := core.NewCoordinator(c.ID, c.DC, net, cl, cfg)
			r.coords = append(r.coords, co)
			r.clients = append(r.clients, r.hist.Client(c.Index, coreClient{co}))
		}
	}
	r.preload()
	return r, nil
}

// coreClient adapts core.Coordinator to mtx.Client.
type coreClient struct{ c *core.Coordinator }

func (cc coreClient) Read(key record.Key, cb mtx.ReadFunc) { cc.c.Read(key, cb) }
func (cc coreClient) Commit(updates []record.Update, done func(bool)) {
	cc.c.Commit(updates, func(res core.CommitResult) { done(res.Committed) })
}
func (cc coreClient) SupportsCommutative() bool { return true }

// gwPendingOp is one client op the gateway tier currently holds; if
// the gateway crashes first, the op is force-settled (commits become
// unknown-outcome history entries, reads fail) so the closed loop
// keeps running and the checker knows what the crash swallowed.
// Exactly-once settlement is the token map's job: claimGw deletes the
// token, so whichever of crash and completion runs first wins. Since
// Gateway.Kill, commits are normally settled by the gateway's own
// typed ErrOutcomeUnknown callback; the token sweep remains the
// backstop for reads.
type gwPendingOp struct {
	dc      topology.DC
	client  int
	updates []record.Update // nil for reads
	settle  func(bool)      // commit path (clientLoop settle)
	readCB  mtx.ReadFunc    // read path
}

// gwClient is the crash-aware client layer: it talks to the DC's
// *current* gateway incarnation (late-bound map lookup, so restarts
// swap the incarnation underneath), records commit outcomes into the
// history, diverts the in-process ErrOutcomeUnknown to Orphan
// entries, and fails fast while the DC's gateway is down (connection
// refused — nothing was submitted, nothing is recorded).
type gwClient struct {
	r  *Run
	dc topology.DC
	id int
}

func (gc gwClient) SupportsCommutative() bool { return true }

// refuse models a connection refused by the dead local gateway: the
// failure surfaces after a short reconnect backoff, never
// synchronously (a synchronous failure would let the closed client
// loop recurse without ever yielding to the simulator).
func (gc gwClient) refuse(f func()) {
	gc.r.Net.After(gc.r.Cluster.Clients[gc.id].ID, 100*time.Millisecond, f)
}

func (gc gwClient) Read(key record.Key, cb mtx.ReadFunc) {
	if gc.r.gwDown[gc.dc] {
		gc.refuse(func() { cb(record.Value{}, 0, false) })
		return
	}
	tok := gc.r.trackGw(&gwPendingOp{dc: gc.dc, client: gc.id, readCB: cb})
	gc.r.gws[gc.dc].Read(key, func(val record.Value, ver record.Version, ok bool) {
		if gc.r.claimGw(tok) {
			cb(val, ver, ok)
		}
	})
}

// ReadFloor is the session-guaranteed read entry: it must never
// return a version below floor that the harness then records (the
// clientLoop ladder escalates through ReadLatest when the gateway's
// best effort falls short). Crash-orphaned reads fail, they do not
// dangle.
func (gc gwClient) ReadFloor(key record.Key, floor record.Version, cb mtx.ReadFunc) {
	if gc.r.gwDown[gc.dc] {
		gc.refuse(func() { cb(record.Value{}, 0, false) })
		return
	}
	tok := gc.r.trackGw(&gwPendingOp{dc: gc.dc, client: gc.id, readCB: cb})
	gc.r.gws[gc.dc].ReadFloor(key, floor, func(val record.Value, ver record.Version, ok bool) {
		if gc.r.claimGw(tok) {
			cb(val, ver, ok)
		}
	})
}

// ReadLatest is the quorum escalation rung of the floored-read ladder.
func (gc gwClient) ReadLatest(key record.Key, cb mtx.ReadFunc) {
	if gc.r.gwDown[gc.dc] {
		gc.refuse(func() { cb(record.Value{}, 0, false) })
		return
	}
	tok := gc.r.trackGw(&gwPendingOp{dc: gc.dc, client: gc.id, readCB: cb})
	gc.r.gws[gc.dc].ReadQuorum(key, func(val record.Value, ver record.Version, ok bool) {
		if gc.r.claimGw(tok) {
			cb(val, ver, ok)
		}
	})
}

func (gc gwClient) Commit(updates []record.Update, done func(bool)) {
	if gc.r.gwDown[gc.dc] {
		gc.refuse(func() { done(false) }) // never submitted, not recorded
		return
	}
	ups := append([]record.Update(nil), updates...)
	tok := gc.r.trackGw(&gwPendingOp{dc: gc.dc, client: gc.id, updates: ups, settle: done})
	sync := true
	gc.r.gws[gc.dc].Commit(updates, func(ok bool, err error) {
		if !gc.r.claimGw(tok) {
			return
		}
		var ws ring.ErrWrongShard
		if errors.As(err, &ws) {
			// Epoch-fence refusal: the transaction touches a shard slice
			// that is frozen for a live move (or was routed under a stale
			// ring epoch). Nothing was admitted, so nothing is recorded —
			// the client refreshes its ring view and retries after a
			// backoff, exactly like the RPC client's retry contract. The
			// retry re-enters Commit, which re-resolves against whatever
			// ring epoch is current by then.
			gc.r.wrongShard++
			gc.refuse(func() { gc.Commit(ups, done) })
			return
		}
		outcome := ok && err == nil
		if errors.Is(err, gateway.ErrOutcomeUnknown) {
			// The typed in-process unknown-outcome signal (a killed
			// gateway): the op's options may still settle either way,
			// so it enters the history as an Orphan, exactly like the
			// RPC client's mdcc.ErrOutcomeUnknown contract.
			gc.r.gwUnknownTyped++
			gc.r.hist.Orphan(gc.id, ups)
		} else {
			gc.r.hist.Record(gc.id, ups, outcome)
		}
		if sync {
			// Admission sheds (ErrOverloaded) — and Kill teardowns —
			// can fire synchronously from Gateway.Commit; surfacing
			// them inline would let the closed client loop recurse
			// without yielding to the simulator — same hazard refuse()
			// defends against on the gwDown path.
			gc.refuse(func() { done(outcome) })
			return
		}
		done(outcome)
	})
	sync = false
}

func (r *Run) trackGw(p *gwPendingOp) uint64 {
	r.gwSeq++
	r.gwTokens[r.gwSeq] = p
	return r.gwSeq
}

func (r *Run) claimGw(tok uint64) bool {
	if _, ok := r.gwTokens[tok]; !ok {
		return false
	}
	delete(r.gwTokens, tok)
	return true
}

// preload bulk-loads the initial database into every replica's store
// (version 1, as internal/check expects for preloaded keys).
func (r *Run) preload() {
	r.initial = make(map[record.Key]record.Value)
	w := r.scn.Workload
	var entries []kv.Entry
	add := func(key record.Key, val record.Value) {
		entries = append(entries, kv.Entry{Key: key, Value: val, Version: 1})
		r.initial[key] = val
	}
	for i := 0; i < w.Accounts; i++ {
		add(acctKey(i), record.Value{Attrs: map[string]int64{"bal": w.InitialBalance}})
	}
	for i := 0; i < w.StockKeys; i++ {
		add(stockKey(i), record.Value{Attrs: map[string]int64{"units": w.InitialStock}})
	}
	for i := 0; i < w.Items; i++ {
		add(itemKey(i), record.Value{Attrs: map[string]int64{"v": 0}})
	}
	for _, e := range entries {
		shard := r.Cluster.Shard(e.Key)
		for i, n := range r.Cluster.Storage {
			if n.Index == shard {
				_ = r.durables[i].Store.Put(e.Key, e.Value, e.Version)
			}
		}
	}
}

func acctKey(i int) record.Key  { return record.Key(fmt.Sprintf("acct/%04d", i)) }
func stockKey(i int) record.Key { return record.Key(fmt.Sprintf("stock/%02d", i)) }
func itemKey(i int) record.Key  { return record.Key(fmt.Sprintf("item/%03d", i)) }

func (r *Run) run() (*Result, error) {
	wallStart := time.Now()
	start := r.Net.Now()
	r.trafficEnd = start.Add(r.Opts.Duration)
	if r.Opts.Faults && r.scn.Nemesis != nil {
		r.scn.Nemesis(r)
	}
	if r.scn.Rebalance != nil {
		// A shard move is an operation, not a fault: it is scheduled
		// regardless of Options.Faults (the nemesis then fires faults
		// into its freeze/bootstrap window when enabled).
		at := time.Duration(float64(r.Opts.Duration) * r.scn.Rebalance.At)
		r.At(at, fmt.Sprintf("begin live shard move: activate group %d", r.scn.Rebalance.AddGroup),
			func() { r.startRebalance() })
	}
	for ci := range r.clients {
		ci := ci
		r.Net.At(0, func() { r.clientLoop(ci) })
	}
	r.Opts.Logf("[%s] traffic window %s, %d clients, seed %d",
		r.scn.Name, r.Opts.Duration, len(r.clients), r.Opts.Seed)
	r.Net.RunFor(r.Opts.Duration)

	// Epilogue 1: heal the world. Every fault the nemesis injected is
	// undone so liveness can be demanded below.
	r.heal()
	// Epilogue 2: drain. Every issued transaction must settle once the
	// network is whole — coordinators keep re-running recovery, so a
	// transaction that cannot settle inside the budget is a liveness
	// violation.
	healedAt := r.Net.Now()
	drained := r.Net.RunUntil(func() bool { return r.inflight == 0 }, drainBudget)
	drainedAt := r.Net.Now()
	// Epilogue 3: converge. Visibility stragglers, the dangling-option
	// sweep and anti-entropy bring all replicas to the same committed
	// state before validation reads it.
	r.Net.RunFor(convergeAfter)

	res := &Result{
		Scenario:  r.scn.Name,
		Seed:      r.Opts.Seed,
		Clients:   len(r.clients),
		Duration:  r.Opts.Duration,
		ReadFails: r.readFails,
		WriteLat:  r.lat,
		Net:       r.Net.Stats(),
		Events:    r.events,
	}
	res.ClusterNodes = len(r.Cluster.Storage) + len(r.Cluster.Clients)
	for _, dc := range topology.AllDCs() {
		res.ClusterNodes += len(r.GatewayIDs(dc))
	}
	res.Converge = drainedAt.Sub(healedAt)
	res.Wall = time.Since(wallStart)
	if res.Wall > 0 {
		res.SimWallRatio = float64(r.Net.Now().Sub(start)) / float64(res.Wall)
	}
	if !drained {
		res.Unresolved = r.inflight
	}
	res.Commits, res.Aborts = r.hist.Summary()
	res.TPS = float64(res.Commits) / r.Opts.Duration.Seconds()
	res.Unknown = r.hist.Unknowns()
	res.UnknownTyped = r.gwUnknownTyped
	for _, c := range r.coords {
		res.Coord.Add(c.Metrics())
	}
	if r.gws != nil {
		var agg gateway.Metrics
		for _, dc := range topology.AllDCs() {
			g := r.gws[dc]
			res.Coord.Add(g.CoordMetrics()) // quiesced: the simulator has stopped
			agg.Add(g.Metrics())
		}
		for _, g := range r.gwRetired { // crashed incarnations' work still counts
			res.Coord.Add(g.CoordMetrics())
			m := g.Metrics()
			// Gauges are point-in-time state of a dead process: its
			// crash-time inflight was orphaned by the harness and its
			// headroom accounts and materialized store died with it —
			// only counters carry over.
			m.Inflight, m.QueueDepth = 0, 0
			m.TrackedKeys, m.MinHeadroom = 0, -1
			m.MaterializedKeys, m.FeedsLive = 0, 0
			agg.Add(m)
		}
		agg.Finalize()
		res.Gateway = &agg
	}
	for _, n := range r.nodes {
		m := n.Metrics()
		res.Nodes.VotesAccept += m.VotesAccept
		res.Nodes.VotesReject += m.VotesReject
		res.Nodes.Forwarded += m.Forwarded
		res.Nodes.Executed += m.Executed
		res.Nodes.Discarded += m.Discarded
		res.Nodes.Phase1 += m.Phase1
		res.Nodes.Phase2 += m.Phase2
		res.Nodes.EnableFast += m.EnableFast
		res.Nodes.DemarcationRejects += m.DemarcationRejects
		res.Nodes.Sweeps += m.Sweeps
		res.Nodes.Synced += m.Synced
		res.Nodes.Grafted += m.Grafted
		res.Nodes.AdoptRefused += m.AdoptRefused
		res.Nodes.DecidedReleased += m.DecidedReleased
		res.Nodes.MixedKindRejects += m.MixedKindRejects
		res.Nodes.ShardMoves += m.ShardMoves
		res.Nodes.MovedKeys += m.MovedKeys
		res.Nodes.DurabilityFailures += m.DurabilityFailures
		res.Nodes.Checkpoints += m.Checkpoints
		if m.RingEpoch > res.Nodes.RingEpoch { // gauge: aggregate with max
			res.Nodes.RingEpoch = m.RingEpoch
		}
	}
	res.Nodes.Checkpoints += r.deadCheckpoints
	res.Nodes.DurabilityFailures += r.deadDegrades
	res.Recoveries = r.recoveries
	res.DiskFaults = r.diskFaults
	res.WipedRebuilds = r.wiped
	// The bounded-recovery contract over every restart the run
	// performed: snapshot-seeded when a checkpoint existed, tail no
	// longer than what accumulated since it, wall time under the
	// documented bound.
	for _, err := range check.ValidateRecovery(r.recoveries, recoveryWallBound) {
		res.Violations = append(res.Violations, err.Error())
	}
	res.RingEpoch = uint64(r.Cluster.Ring().Epoch())
	for _, err := range r.hist.Validate(r.initial, r.finalState, r.cons) {
		res.Violations = append(res.Violations, err.Error())
	}
	// Exact lineage convergence: after heal + quiesce, every replica of
	// every touched key must hold an identical lineage summary AND
	// identical committed state — strictly stronger than the
	// value-accounting checks above (forked branches can coincidentally
	// sum equal; summary equality cannot be faked).
	touched := make(map[record.Key]bool, len(r.initial))
	for k := range r.initial {
		touched[k] = true
	}
	for _, op := range r.hist.Ops() {
		for _, up := range op.Updates {
			touched[up.Key] = true
		}
	}
	keys := make([]record.Key, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		shard := r.Cluster.Shard(key)
		var states []check.ReplicaState
		for i, nd := range r.Cluster.Storage {
			if nd.Index != shard {
				continue
			}
			val, ver, ok := r.durables[i].Store.Get(key)
			states = append(states, check.ReplicaState{
				Replica: string(nd.ID),
				Lineage: r.nodes[i].LineageFingerprint(key),
				Value:   val,
				Version: ver,
				Exists:  ok && !val.Tombstone,
			})
		}
		for _, err := range check.ValidateConvergence(key, states) {
			res.Violations = append(res.Violations, err.Error())
		}
	}
	res.Reads = len(r.hist.Reads())
	// Session guarantees over the consumed reads: monotonic reads and
	// read-your-writes per client (the read tier's contract under feed
	// lag, gaps, partitions and gateway crashes).
	for _, err := range r.hist.ValidateSessionReads() {
		res.Violations = append(res.Violations, err.Error())
	}
	// No fabricated futures: every consumed read must be a version the
	// key actually reached (committed versions are monotone, so the
	// post-convergence final version bounds them all).
	for _, ro := range r.hist.Reads() {
		if !ro.Exists {
			continue
		}
		if _, fv, _ := r.finalState(ro.Key); ro.Version > fv {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"check: client %d read %s at version %d beyond final committed version %d (fabricated state)",
				ro.Client, ro.Key, ro.Version, fv))
		}
	}
	sort.Strings(res.Violations)
	if r.rec != nil {
		res.Phases = r.rec.Phases()
		res.TraceEvents = r.rec.Events()
		res.TraceDropped = r.rec.Dropped()
		res.Timelines = r.assembleTimelines(res.Violations, keys)
	}
	r.Opts.Logf("[%s] done: %d commits, %d aborts, %d violations",
		r.scn.Name, res.Commits, res.Aborts, len(res.Violations))
	return res, nil
}

// assembleTimelines renders the run's diagnosis bundle in a fixed
// order: the N slowest transactions, then every retained trace
// (aborted / outcome-unknown / recovered / wrong-shard / slow), then —
// per invariant violation — up to three transactions whose recorded
// events touch the violation's keys. Deterministic for a fixed seed:
// retention is count/Lamport-based and the rings are in their final,
// quiesced state.
func (r *Run) assembleTimelines(violations []string, touched []record.Key) []string {
	var out []string
	seen := make(map[string]bool)
	emit := func(t *trace.Trace) {
		if t.Tx != "" && t.Tx != "?" {
			if seen[t.Tx] {
				return
			}
			seen[t.Tx] = true
		}
		out = append(out, t.Timeline())
	}
	for _, t := range r.rec.Slowest() {
		emit(t)
	}
	for _, t := range r.rec.Retained() {
		emit(t)
	}
	for _, v := range violations {
		vkeys := check.KeysMentioned(v, touched)
		if len(vkeys) == 0 {
			continue
		}
		ks := make([]string, len(vkeys))
		for i, k := range vkeys {
			ks[i] = string(k)
		}
		block := "violation: " + v + "\n"
		txs := r.rec.TxsTouching(ks, 3)
		if len(txs) == 0 {
			block += "  (no transactions touching its keys remain in the rings)\n"
		}
		for _, tx := range txs {
			block += r.rec.Assemble(tx, ks).Timeline()
		}
		out = append(out, block)
	}
	return out
}

// finalState reads the authoritative end-of-run state of a key: the
// freshest committed version among its replicas (committed state is
// monotone in version, and after convergence all replicas agree).
func (r *Run) finalState(key record.Key) (record.Value, record.Version, bool) {
	shard := r.Cluster.Shard(key)
	var bestVal record.Value
	var bestVer record.Version
	found := false
	for i, n := range r.Cluster.Storage {
		if n.Index != shard {
			continue
		}
		val, ver, ok := r.durables[i].Store.Get(key)
		if ok && (!found || ver > bestVer) {
			bestVal, bestVer, found = val, ver, true
		}
	}
	if !found || bestVal.Tombstone {
		return record.Value{}, bestVer, false
	}
	return bestVal, bestVer, true
}

// floorReader is the session-guaranteed read surface of a harness
// client (gateway runs only): floored reads plus the quorum
// escalation rung.
type floorReader interface {
	ReadFloor(key record.Key, floor record.Version, cb mtx.ReadFunc)
	ReadLatest(key record.Key, cb mtx.ReadFunc)
}

// readKeyFor picks a read target across the hot stock keys (the
// stampede) and the items (read-your-writes after physical updates).
func readKeyFor(rng *rand.Rand, w Workload) record.Key {
	i := rng.Intn(w.StockKeys + w.Items)
	if i < w.StockKeys {
		return stockKey(i)
	}
	return itemKey(i - w.StockKeys)
}

// clientLoop issues one transaction and reschedules itself until the
// traffic window closes. Closed loop, no think time, as in the
// paper's evaluation setup.
func (r *Run) clientLoop(ci int) {
	if !r.Net.Now().Before(r.trafficEnd) {
		return
	}
	rng := r.Net.Rand()
	c := r.clients[ci]
	w := r.scn.Workload
	began := r.Net.Now()
	r.inflight++
	settle := func(committed bool) {
		r.inflight--
		if committed {
			r.lat.Add(float64(r.Net.Now().Sub(began)) / float64(time.Millisecond))
		}
		r.clientLoop(ci)
	}
	p := rng.Float64()
	switch {
	case p < w.ReadFrac && r.floors != nil && w.StockKeys+w.Items > 0:
		// Session-guaranteed read: the ladder mirrors Session.Read —
		// take the gateway's floored read, escalate to quorum reads
		// while the result lags the session floor. Only floor-meeting
		// results are consumed and recorded for
		// check.ValidateSessionReads; a read still below the floor
		// after the retries counts as a failed read, exactly as a
		// partitioned Session.Read deadlines out — a minority-side
		// client whose pre-partition write's visibility was cut off can
		// legitimately find NO reachable replica at its floor, which is
		// in-contract, not a tier violation. (The tier's own floor
		// discipline — memory never served below a floor — is pinned by
		// TestReadTierFloorEscalation and by the recorded reads.)
		fr := c.(floorReader)
		key := readKeyFor(rng, w)
		floor := r.floors[ci][key]
		attempts := 0
		var deliver mtx.ReadFunc
		deliver = func(val record.Value, ver record.Version, exists bool) {
			if exists && ver < floor && attempts < 6 {
				attempts++
				fr.ReadLatest(key, deliver)
				return
			}
			if exists && ver >= floor {
				r.hist.ObserveRead(ci, key, ver, true)
				if ver > r.floors[ci][key] {
					r.floors[ci][key] = ver
				}
			} else {
				r.readFails++
			}
			r.inflight--
			// Pace the loop: a memory-served read completes in zero
			// virtual time, so reschedule through the event queue
			// (modeling the client's own request turnaround) instead of
			// recursing at one instant.
			r.Net.After(r.Cluster.Clients[ci].ID, time.Millisecond, func() { r.clientLoop(ci) })
		}
		fr.ReadFloor(key, floor, deliver)
	case p < w.ReadFrac+w.TransferFrac && w.Accounts >= 2:
		from := rng.Intn(w.Accounts)
		to := rng.Intn(w.Accounts - 1)
		if to >= from {
			to++
		}
		amt := 1 + rng.Int63n(5)
		c.Commit([]record.Update{
			record.Commutative(acctKey(from), map[string]int64{"bal": -amt}),
			record.Commutative(acctKey(to), map[string]int64{"bal": amt}),
		}, settle)
	case p < w.ReadFrac+w.TransferFrac+w.StockFrac && w.StockKeys > 0:
		c.Commit([]record.Update{
			record.Commutative(stockKey(rng.Intn(w.StockKeys)), map[string]int64{"units": -1}),
		}, settle)
	case w.Items > 0:
		key := itemKey(rng.Intn(w.Items))
		c.Read(key, func(val record.Value, ver record.Version, exists bool) {
			if !exists {
				r.readFails++
				settle(false)
				return
			}
			c.Commit([]record.Update{
				record.Physical(key, ver, val.WithAttr("v", val.Attr("v")+1)),
			}, func(ok bool) {
				if ok && r.floors != nil {
					// Read-your-writes: the acknowledged physical write
					// produced version ver+1; later floored reads by this
					// client must observe it.
					if ver+1 > r.floors[ci][key] {
						r.floors[ci][key] = ver + 1
					}
				}
				settle(ok)
			})
		})
	default:
		// Degenerate workload shape; idle briefly instead of spinning.
		r.inflight--
		r.Net.After(r.Cluster.Clients[ci].ID, 100*time.Millisecond, func() { r.clientLoop(ci) })
	}
}

// close releases WALs and the temporary directory.
func (r *Run) close() {
	for _, ds := range r.durables {
		_ = ds.Close()
	}
	if r.tmp {
		_ = os.RemoveAll(r.Opts.Dir)
	}
}

// --- nemesis surface -------------------------------------------------

// At schedules a nemesis action at an offset from the run start and
// records it on the result timeline.
func (r *Run) At(offset time.Duration, what string, f func()) {
	r.events = append(r.events, fmt.Sprintf("t=%-6s %s", offset, what))
	r.Net.At(offset, func() {
		r.Opts.Logf("[%s] t=%s nemesis: %s", r.scn.Name, offset, what)
		f()
	})
}

// StorageIDs returns the IDs of all storage nodes in dc.
func (r *Run) StorageIDs(dc topology.DC) []transport.NodeID {
	var out []transport.NodeID
	for _, n := range r.Cluster.Storage {
		if n.DC == dc {
			out = append(out, n.ID)
		}
	}
	return out
}

// SideIDs returns every node ID (storage, clients, and — in gateway
// runs — the DC's gateway tier) inside the given data centers: one
// side of a partition cut.
func (r *Run) SideIDs(dcs ...topology.DC) []transport.NodeID {
	in := make(map[topology.DC]bool, len(dcs))
	for _, dc := range dcs {
		in[dc] = true
	}
	var out []transport.NodeID
	for _, n := range r.Cluster.Storage {
		if in[n.DC] {
			out = append(out, n.ID)
		}
	}
	for _, n := range r.Cluster.Clients {
		if in[n.DC] {
			out = append(out, n.ID)
		}
	}
	for _, dc := range dcs {
		out = append(out, r.GatewayIDs(dc)...)
	}
	return out
}

// OtherSideIDs returns every node ID outside the given data centers.
func (r *Run) OtherSideIDs(dcs ...topology.DC) []transport.NodeID {
	in := make(map[topology.DC]bool, len(dcs))
	for _, dc := range dcs {
		in[dc] = true
	}
	var out []transport.NodeID
	for _, n := range r.Cluster.Storage {
		if !in[n.DC] {
			out = append(out, n.ID)
		}
	}
	for _, n := range r.Cluster.Clients {
		if !in[n.DC] {
			out = append(out, n.ID)
		}
	}
	for _, dc := range topology.AllDCs() {
		if !in[dc] {
			out = append(out, r.GatewayIDs(dc)...)
		}
	}
	return out
}

// FailDC makes a whole data center unreachable without killing its
// processes (the paper's §5.4 outage: the DC "stops receiving any
// messages"). Undone by RecoverDC or the epilogue heal.
func (r *Run) FailDC(dc topology.DC) {
	for _, id := range r.StorageIDs(dc) {
		r.Net.Fail(id)
	}
	r.downDC[dc] = true
}

// RecoverDC brings a failed data center back.
func (r *Run) RecoverDC(dc topology.DC) {
	for _, id := range r.StorageIDs(dc) {
		r.Net.Recover(id)
	}
	delete(r.downDC, dc)
}

// durOpts is storage node i's durable-engine configuration: NoSync
// (the simulator models durability; injected faults still fire), a
// small segment size so checkpoint truncation spans real segment
// boundaries at scenario scale, and the node's fault handle.
func (r *Run) durOpts(i int) core.DurableOptions {
	return core.DurableOptions{
		NoSync:      true,
		SegmentSize: 64 << 10,
		Faults:      r.faults[i],
	}
}

// CrashStorage kills storage node i (index into Cluster.Storage): its
// queued events die, its volatile Paxos state is lost, and its WALs
// are closed as a crashed process would leave them. The durability
// gauges are captured first so the restart's replay can be validated
// against what had actually accumulated since the last checkpoint.
func (r *Run) CrashStorage(i int) {
	id := r.Cluster.Storage[i].ID
	r.crashInfo[i] = r.nodes[i].Durability()
	m := r.nodes[i].Metrics()
	r.deadCheckpoints += m.Checkpoints
	r.deadDegrades += m.DurabilityFailures
	r.Net.Crash(id)
	r.nodes[i].Halt()
	_ = r.durables[i].Close()
	r.crashed[i] = true
}

// RestartStorage reboots a crashed storage node: reopen its WALs,
// recover from the newest valid checkpoint snapshot plus the log tail
// (full replay when no checkpoint exists), and register the fresh
// incarnation. If no snapshot is usable (every one corrupt), the
// replica's durable state is discarded and it restarts empty — the
// modeled operator response — to be rebuilt from its quorum by
// anti-entropy; the generic convergence checks then demand the
// rebuild completed.
func (r *Run) RestartStorage(i int) {
	if !r.crashed[i] {
		return
	}
	n := r.Cluster.Storage[i]
	pre := r.crashInfo[i]
	rec := check.RecoveryRecord{
		Node:         string(n.ID),
		HadSnapshot:  pre.SnapshotSeq > 0,
		ExpectedTail: pre.AppendsSinceCheckpoint,
	}
	ds, err := core.OpenDurableOpts(r.dirs[i], r.durOpts(i))
	if errors.Is(err, wal.ErrCorrupt) {
		r.events = append(r.events, fmt.Sprintf("restart %s: state unrecoverable (%v); wiped for quorum rebuild", n.ID, err))
		r.wiped++
		rec.Wiped = true
		if rmErr := os.RemoveAll(r.dirs[i]); rmErr != nil {
			r.events = append(r.events, fmt.Sprintf("restart %s: wipe failed: %v", n.ID, rmErr))
			return
		}
		ds, err = core.OpenDurableOpts(r.dirs[i], r.durOpts(i))
	}
	if err != nil {
		r.events = append(r.events, fmt.Sprintf("restart %s failed: %v", n.ID, err))
		return
	}
	rs := ds.RecoveryStats()
	rec.UsedSnapshot = rs.UsedSnapshot
	rec.FellBack = rs.FellBack
	rec.TailRecords = rs.TailStore + rs.TailOplog
	rec.Wall = rs.Duration
	r.recoveries = append(r.recoveries, rec)
	r.durables[i] = ds
	r.Net.Recover(n.ID)
	r.nodes[i] = core.NewDurableStorageNode(n.ID, n.DC, r.Net, r.Cluster, r.Cfg, ds)
	delete(r.crashed, i)
}

// ReplaceStorage swaps storage node i for a brand-new machine at the
// same slot: the old process is crashed (if it isn't already), its
// disks are discarded, and a fresh incarnation boots empty — to be
// rebuilt from its replica quorum by anti-entropy (and, mid-move, by a
// re-issued bootstrap pull chain). This is churn's "replace", distinct
// from RestartStorage (same machine, durable state survives): no WAL
// replay happens, so the recovery record is marked Wiped and exempt
// from the bounded-replay contract.
func (r *Run) ReplaceStorage(i int) {
	if !r.crashed[i] {
		r.CrashStorage(i)
	}
	n := r.Cluster.Storage[i]
	if err := os.RemoveAll(r.dirs[i]); err != nil {
		r.events = append(r.events, fmt.Sprintf("replace %s: wipe failed: %v", n.ID, err))
		return
	}
	r.wiped++
	ds, err := core.OpenDurableOpts(r.dirs[i], r.durOpts(i))
	if err != nil {
		r.events = append(r.events, fmt.Sprintf("replace %s failed: %v", n.ID, err))
		return
	}
	r.recoveries = append(r.recoveries, check.RecoveryRecord{
		Node:  string(n.ID),
		Wiped: true,
		Wall:  ds.RecoveryStats().Duration,
	})
	r.durables[i] = ds
	r.Net.Recover(n.ID)
	r.nodes[i] = core.NewDurableStorageNode(n.ID, n.DC, r.Net, r.Cluster, r.Cfg, ds)
	delete(r.crashed, i)
}

// StorageIdx locates the storage node of a DC and replica group
// (Cluster.Storage index), -1 when absent — the churn nemesis's
// victim picker.
func (r *Run) StorageIdx(dc topology.DC, group int) int {
	for i, n := range r.Cluster.Storage {
		if n.DC == dc && n.Index == group {
			return i
		}
	}
	return -1
}

// --- disk-fault nemesis -----------------------------------------------

// FailDisk makes storage node i's fsyncs fail persistently: the next
// durable write degrades the node (typed core.ErrDurability latched,
// no further acks) until ReplaceDisk. Modeled fsync failures fire even
// under the harness's NoSync logs.
func (r *Run) FailDisk(i int) {
	r.diskFaults++
	r.faults[i].FailSync(true)
}

// TearDisk makes storage node i's next WAL append tear mid-frame (a
// partial write followed by the poisoned-log latch): the node degrades
// and, after ReplaceDisk, replay must drop the torn tail exactly.
func (r *Run) TearDisk(i int) {
	r.diskFaults++
	r.faults[i].TornWrite(0)
}

// FlipDiskBit silently corrupts the payload of storage node i's next
// WAL append (the write and its ack succeed — bit rot): the damage
// must surface as typed corruption at the next replay, never as
// silently wrong state.
func (r *Run) FlipDiskBit(i int) {
	r.diskFaults++
	r.faults[i].BitFlip()
}

// RotWALRecord flips a byte inside the first record of crashed node
// i's newest store-log segment: bit rot guaranteed to land in the
// replay tail. (FlipDiskBit's runtime injection can land in a segment
// a later checkpoint truncates away — harmless by design; this helper
// pins the other outcome.) The restart must surface it as typed
// wal.ErrCorrupt — never silently truncate the valid records behind
// it — driving the wipe + quorum-rebuild path.
func (r *Run) RotWALRecord(i int) {
	id := r.Cluster.Storage[i].ID
	dir := filepath.Join(r.dirs[i], "store")
	segs, err := wal.Segments(dir)
	if err != nil || len(segs) == 0 {
		r.events = append(r.events, fmt.Sprintf("rot WAL on %s: no segments", id))
		return
	}
	path := wal.SegmentPath(dir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil || len(data) < 12 {
		r.events = append(r.events, fmt.Sprintf("rot WAL on %s: segment too small (%v)", id, err))
		return
	}
	r.diskFaults++
	data[10] ^= 0x10 // a payload byte of the segment's first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		r.events = append(r.events, fmt.Sprintf("rot WAL on %s: %v", id, err))
	}
}

// ReplaceDisk is the operator response to a degraded replica: clear
// the injected fault (the new disk works), then crash and restart the
// node so it recovers from its durable state. Also valid on a healthy
// node (a precautionary swap).
func (r *Run) ReplaceDisk(i int) {
	r.faults[i].FailSync(false)
	if !r.crashed[i] {
		r.CrashStorage(i)
	}
	r.RestartStorage(i)
}

// CorruptNewestSnapshot flips a byte in the middle of crashed node i's
// newest checkpoint snapshot, so its restart must detect the
// corruption and fall back to the previous snapshot (whose log tail
// the truncation floor retains).
func (r *Run) CorruptNewestSnapshot(i int) {
	snapDir := filepath.Join(r.dirs[i], "snap")
	seqs, err := wal.ListSnapshots(snapDir)
	if err != nil || len(seqs) == 0 {
		r.events = append(r.events, fmt.Sprintf("corrupt snapshot on %s: none found", r.Cluster.Storage[i].ID))
		return
	}
	r.diskFaults++
	path := wal.SnapshotPath(snapDir, seqs[len(seqs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		r.events = append(r.events, fmt.Sprintf("corrupt snapshot on %s: %v", r.Cluster.Storage[i].ID, err))
		return
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		r.events = append(r.events, fmt.Sprintf("corrupt snapshot on %s: %v", r.Cluster.Storage[i].ID, err))
	}
}

// CrashDC crashes every storage node of a data center.
func (r *Run) CrashDC(dc topology.DC) {
	for i, n := range r.Cluster.Storage {
		if n.DC == dc {
			r.CrashStorage(i)
		}
	}
}

// RestartDC restarts every crashed storage node of a data center.
func (r *Run) RestartDC(dc topology.DC) {
	for i, n := range r.Cluster.Storage {
		if n.DC == dc {
			r.RestartStorage(i)
		}
	}
}

// GatewayIDs returns the transport nodes of a DC's gateway tier (the
// gateway plus its pooled coordinators); empty for non-gateway runs.
func (r *Run) GatewayIDs(dc topology.DC) []transport.NodeID {
	if r.gws == nil {
		return nil
	}
	return gateway.NodeIDs(dc, r.scn.GatewayTuning)
}

// CrashGateway kills a data center's gateway process: the gateway and
// its pooled coordinators stop receiving (their queued events and
// timers die with the incarnation), then Gateway.Kill fails every
// admitted in-flight transaction with the typed in-process
// ErrOutcomeUnknown — the gwClient records those as unknown-outcome
// history entries (the protocol itself still settles any
// already-proposed option via the dangling-option sweep). The token
// sweep remains the backstop for reads and anything Kill could not
// reach. New ops are refused until RestartGateway.
func (r *Run) CrashGateway(dc topology.DC) {
	if r.gws == nil || r.gwDown[dc] {
		return
	}
	for _, id := range r.GatewayIDs(dc) {
		r.Net.Crash(id)
	}
	r.gwDown[dc] = true
	r.gwRetired = append(r.gwRetired, r.gws[dc]) // keep the dead incarnation's counters
	before := r.gwUnknownTyped
	r.gws[dc].Kill()
	r.Opts.Logf("[%s] gateway %s killed: %d in-flight commits surfaced typed outcome-unknown",
		r.scn.Name, dc, r.gwUnknownTyped-before)
	// Backstop: orphan whatever the Kill callbacks did not settle
	// (reads, and ops raced past the pending registry), in
	// deterministic token order.
	toks := make([]uint64, 0, len(r.gwTokens))
	for tok, p := range r.gwTokens {
		if p.dc == dc {
			toks = append(toks, tok)
		}
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, tok := range toks {
		p := r.gwTokens[tok]
		if !r.claimGw(tok) {
			continue
		}
		if p.readCB != nil {
			p.readCB(record.Value{}, 0, false)
			continue
		}
		r.hist.Orphan(p.client, p.updates)
		p.settle(false)
	}
}

// RestartGateway boots a fresh gateway incarnation for the data
// center (gateways hold no durable state; the fresh instance re-learns
// escrow headroom from piggybacked snapshots). The bumped generation
// keeps the new incarnation's transaction ids disjoint from its dead
// predecessor's, so stale in-flight votes cannot alias.
func (r *Run) RestartGateway(dc topology.DC) {
	if r.gws == nil || !r.gwDown[dc] {
		return
	}
	for _, id := range r.GatewayIDs(dc) {
		r.Net.Recover(id)
	}
	r.gwGen[dc]++
	r.gws[dc] = gateway.NewGen(dc, r.Net, r.Cluster, r.Cfg, r.scn.GatewayTuning, r.gwGen[dc])
	delete(r.gwDown, dc)
	if r.rebFrozen {
		// A gateway restarted mid-move must not admit transactions onto
		// the moving slice: re-apply the ambient freeze immediately
		// (the mover's poll would also re-apply it, but only at its next
		// tick — this closes the restart window).
		r.gws[dc].FreezeShards(r.rebMoving, r.rebNext)
	}
}

// heal undoes every outstanding fault: partitions, outages, crashed
// nodes, chaos probabilities, latency distortions and clock drift.
func (r *Run) heal() {
	r.Net.HealAll()
	for dc := range r.downDC {
		for _, id := range r.StorageIDs(dc) {
			r.Net.Recover(id)
		}
	}
	r.downDC = make(map[topology.DC]bool)
	idxs := make([]int, 0, len(r.crashed))
	for i := range r.crashed {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r.RestartStorage(i)
	}
	// Disks the nemesis degraded get replaced: disarm the fault and
	// reboot the node from its durable state. A node that latched a
	// durability failure stopped acking the moment its disk refused a
	// write, so nothing it served is unsynced.
	for i, n := range r.nodes {
		r.faults[i].FailSync(false)
		if n.DurabilityError() != nil && !r.crashed[i] {
			r.Opts.Logf("[%s] replacing degraded disk on %s", r.scn.Name, r.Cluster.Storage[i].ID)
			r.ReplaceDisk(i)
		}
	}
	for _, dc := range topology.AllDCs() {
		if r.gwDown[dc] {
			r.RestartGateway(dc)
		}
	}
	r.Net.SetDropProb(0)
	r.Net.SetDupProb(0)
	r.Net.SetReorder(0, 0)
	r.Net.ScaleLatency(1)
	for _, n := range r.Cluster.Storage {
		r.Net.SetDrift(n.ID, 0)
	}
	for _, n := range r.Cluster.Clients {
		r.Net.SetDrift(n.ID, 0)
	}
	r.Opts.Logf("[%s] healed all faults", r.scn.Name)
}
