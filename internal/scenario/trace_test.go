package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func traceOpts() Options {
	o := smokeOpts()
	o.Trace = true
	return o
}

// TestScenarioTraceTimelines runs a gateway scenario with the flight
// recorder on and checks the diagnosis bundle: per-phase histograms
// covering the pipeline, and assembled cross-node timelines that walk
// admit → vote → ack.
func TestScenarioTraceTimelines(t *testing.T) {
	s, ok := Find("gateway-saturation")
	if !ok {
		t.Fatal("gateway-saturation not registered")
	}
	res, err := s.Run(traceOpts())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("scenario failed:\n%s", res.Report())
	}
	if res.TraceEvents == 0 {
		t.Fatal("flight recorder recorded no events")
	}
	phases := make(map[string]bool)
	for _, p := range res.Phases {
		phases[p.Key.String()] = true
		if p.Hist.N == 0 {
			t.Errorf("phase %s has an empty histogram", p.Key)
		}
	}
	if !phases["quorum"] {
		t.Errorf("phase \"quorum\" missing from result (have %v)", phases)
	}
	// Gateway, vote and visibility phases are split per DC.
	for _, prefix := range []string{"gateway-queue[dc", "end-to-end[dc", "vote[dc", "visibility[dc"} {
		n := 0
		for name := range phases {
			if strings.HasPrefix(name, prefix) {
				n++
			}
		}
		if n == 0 {
			t.Errorf("no per-DC %q phases recorded (have %v)", prefix, phases)
		}
	}
	if len(res.Timelines) == 0 {
		t.Fatal("no timelines assembled (slowest-N should always be kept)")
	}
	all := strings.Join(res.Timelines, "\n")
	for _, want := range []string{"admit", "vote", "ack", "outcome"} {
		if !strings.Contains(all, want) {
			t.Errorf("timelines missing stage %q:\n%s", want, res.Timelines[0])
		}
	}
	// The report renders the phase table and recorder volume.
	rep := res.Report()
	if !strings.Contains(rep, "phase latency") || !strings.Contains(rep, "flight recorder:") {
		t.Errorf("report missing phase-latency table:\n%s", rep)
	}
}

// TestScenarioTraceDeterminism reruns a traced scenario with the same
// seed and demands byte-identical assembled timelines — retention is
// count/Lamport-based, never wall-clock, so the recorder must not
// perturb or diverge from the simulation's determinism.
func TestScenarioTraceDeterminism(t *testing.T) {
	s, ok := Find("gateway-saturation")
	if !ok {
		t.Fatal("gateway-saturation not registered")
	}
	a, err := s.Run(traceOpts())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := s.Run(traceOpts())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Fatalf("same seed, different outcomes: %d/%d commits, %d/%d aborts",
			a.Commits, b.Commits, a.Aborts, b.Aborts)
	}
	if a.TraceEvents != b.TraceEvents {
		t.Errorf("same seed, different event volume: %d vs %d", a.TraceEvents, b.TraceEvents)
	}
	if !reflect.DeepEqual(a.Timelines, b.Timelines) {
		max := len(a.Timelines)
		if len(b.Timelines) < max {
			max = len(b.Timelines)
		}
		for i := 0; i < max; i++ {
			if a.Timelines[i] != b.Timelines[i] {
				t.Fatalf("same seed, timeline %d differs:\n--- a ---\n%s\n--- b ---\n%s",
					i, a.Timelines[i], b.Timelines[i])
			}
		}
		t.Fatalf("same seed, different timeline counts: %d vs %d", len(a.Timelines), len(b.Timelines))
	}
}

// TestScenarioTraceUnknowns checks the gateway-crash case: killed
// in-flight transactions must surface as retained outcome-unknown
// timelines.
func TestScenarioTraceUnknowns(t *testing.T) {
	s, ok := Find("gateway-partition")
	if !ok {
		t.Fatal("gateway-partition not registered")
	}
	res, err := s.Run(traceOpts())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Unknown == 0 {
		t.Skip("no gateway-crash unknowns at this sizing; nothing to assert")
	}
	all := strings.Join(res.Timelines, "\n")
	if !strings.Contains(all, "retained: unknown") {
		t.Errorf("%d unknown-outcome transactions but no retained unknown timeline", res.Unknown)
	}
}
