package tpcw

import (
	"math/rand"
	"testing"
)

func TestMixCoversAllInteractions(t *testing.T) {
	sum := 0
	for i := Interaction(0); i < numInteractions; i++ {
		if orderingMix[i] <= 0 {
			t.Errorf("interaction %v has no weight", i)
		}
		sum += orderingMix[i]
	}
	if sum != 10000 {
		t.Fatalf("ordering mix sums to %d basis points, want 10000", sum)
	}
}

func TestPickDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make(map[Interaction]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[pick(rng)]++
	}
	for i := Interaction(0); i < numInteractions; i++ {
		want := float64(orderingMix[i]) / 10000
		got := float64(counts[i]) / n
		if want > 0.01 && (got < want*0.8 || got > want*1.2) {
			t.Errorf("%v: frequency %.4f, want ≈%.4f", i, got, want)
		}
	}
}

func TestInteractionNames(t *testing.T) {
	for i := Interaction(0); i < numInteractions; i++ {
		if i.String() == "" || i.String()[0] == 'W' && i.String() != "WI(99)" && i != 0 {
			// only the fallback uses WI(n)
		}
	}
	if Interaction(99).String() != "WI(99)" {
		t.Fatalf("fallback name = %q", Interaction(99).String())
	}
}

func TestPreloadScale(t *testing.T) {
	w := New(Options{Items: 500})
	entries := w.Preload(rand.New(rand.NewSource(2)))
	if len(entries) != 500 {
		t.Fatalf("preload = %d entries, want 500", len(entries))
	}
	for _, e := range entries {
		if e.Value.Attr(AttrStock) < 5000 {
			t.Fatalf("item %s stock %d too small", e.Key, e.Value.Attr(AttrStock))
		}
		if e.Value.Attr(AttrPrice) <= 0 {
			t.Fatalf("item %s has no price", e.Key)
		}
	}
}

func TestBrowserStateIsolation(t *testing.T) {
	w := New(Options{Items: 100})
	rng := rand.New(rand.NewSource(3))
	b1 := w.browserFor(1)
	b2 := w.browserFor(2)
	if b1 == b2 {
		t.Fatal("browsers shared across clients")
	}
	if w.browserFor(1) != b1 {
		t.Fatal("browser not stable per client")
	}
	_ = rng
	if CartKey(1) == CartKey(2) {
		t.Fatal("cart keys collide")
	}
	if OrderKey(1, 1) == OrderKey(1, 2) || OrderKey(1, 1) == OrderKey(2, 1) {
		t.Fatal("order keys collide")
	}
}
