package scenario

import (
	"fmt"
	"time"
)

// The scaling sweep: one scenario run per (cluster size × ambient
// drop%) grid point, harvesting the scaling-curve measurements —
// committed tx/s, post-heal convergence time, and the simulator's own
// sim-vs-wall speed ratio. This is how the thousand-node claim is
// checked: cluster size scales by NodesPerDC (five DCs, so storage
// count is 5×N plus the scenario's clients and gateway tiers), and
// the sweep demands every point still passes full invariant
// validation — a scaling curve over broken runs measures nothing.

// SweepPoint is one grid point's harvest.
type SweepPoint struct {
	// NodesPerDC is the storage-shard axis value; ClusterNodes the
	// resulting total simulated process count (storage + gateway tiers
	// + clients).
	NodesPerDC   int
	ClusterNodes int
	// DropPct is the ambient message-drop axis value, in percent.
	DropPct float64

	Commits int
	Aborts  int
	// TPS is committed transactions per virtual second of the traffic
	// window.
	TPS float64
	// ConvergeMS is the virtual time (ms) the post-heal drain needed to
	// settle every in-flight transaction.
	ConvergeMS float64
	// WallMS is real time (ms) the run took; SimWallRatio is virtual
	// elapsed / wall (>1 = faster than real time). These measure the
	// simulator, not the simulated system, and vary run to run.
	WallMS       float64
	SimWallRatio float64
	// EventsPerSec is the simulator's event throughput on this run:
	// (deliveries + timer fires) per wall second.
	EventsPerSec float64
	Passed       bool
	Violations   []string `json:",omitempty"`
}

// SweepConfig shapes a scaling sweep.
type SweepConfig struct {
	// Scenario names the scenario to sweep (default "chaos-mix" — with
	// Faults off it is a plain mixed workload; the drop axis is the
	// fault model, applied ambiently for the whole window).
	Scenario string
	Seed     int64
	// Clients/Duration override the scenario defaults when > 0.
	Clients  int
	Duration time.Duration
	// NodesPerDC are the cluster-size axis values (default 1, 40, 188
	// — 65 / 260 / 1000 total processes at 60 clients).
	NodesPerDC []int
	// DropPcts are the ambient drop-probability axis values in percent
	// (default 0 and 2).
	DropPcts []float64
	// Faults additionally runs the scenario's own nemesis schedule at
	// every point (default off: the drop axis is the only fault, so
	// the curve isolates scale).
	Faults bool
	Logf   func(format string, args ...interface{})
}

// Sweep runs the grid and returns one point per (nodes × drop) pair,
// nodes-major. An error from any run aborts the sweep.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	if cfg.Scenario == "" {
		cfg.Scenario = "chaos-mix"
	}
	s, ok := Find(cfg.Scenario)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown scenario %q", cfg.Scenario)
	}
	if len(cfg.NodesPerDC) == 0 {
		cfg.NodesPerDC = []int{1, 40, 188}
	}
	if len(cfg.DropPcts) == 0 {
		cfg.DropPcts = []float64{0, 2}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	var out []SweepPoint
	for _, npd := range cfg.NodesPerDC {
		for _, drop := range cfg.DropPcts {
			res, err := s.Run(Options{
				Seed:       cfg.Seed,
				Clients:    cfg.Clients,
				NodesPerDC: npd,
				Duration:   cfg.Duration,
				Faults:     cfg.Faults,
				DropProb:   drop / 100,
			})
			if err != nil {
				return nil, fmt.Errorf("sweep: %s at %d nodes/DC: %w", cfg.Scenario, npd, err)
			}
			pt := SweepPoint{
				NodesPerDC:   npd,
				ClusterNodes: res.ClusterNodes,
				DropPct:      drop,
				Commits:      res.Commits,
				Aborts:       res.Aborts,
				TPS:          res.TPS,
				ConvergeMS:   float64(res.Converge) / float64(time.Millisecond),
				WallMS:       float64(res.Wall) / float64(time.Millisecond),
				SimWallRatio: res.SimWallRatio,
				Passed:       res.Passed(),
				Violations:   res.Violations,
			}
			if res.Wall > 0 {
				pt.EventsPerSec = float64(res.Net.Delivered+res.Net.Timers) / res.Wall.Seconds()
			}
			cfg.Logf("sweep %s: %4d nodes (%d/DC) drop %.0f%%: %6.1f tx/s, converge %6.0fms, wall %7.0fms, %5.0fx real time, pass=%v",
				cfg.Scenario, pt.ClusterNodes, npd, drop, pt.TPS, pt.ConvergeMS, pt.WallMS, pt.SimWallRatio, pt.Passed)
			out = append(out, pt)
		}
	}
	return out, nil
}
