package scenario

import (
	"fmt"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Live shard move: the harness is the move's control plane. It drives
// a ring.Mover through freeze → bootstrap → publish with poll loops
// that survive every fault the nemesis throws at the window — crashed
// and restarted storage nodes (pull chains re-issue per incarnation),
// crashed and restarted gateways (the freeze fence re-applies every
// tick, and RestartGateway re-applies it immediately), partitions and
// drops (the drain gate simply passes later; pulls retry internally).
// Control decisions run in-process — an out-of-band operator — but
// every byte of shard data moves over the simulated network through
// the same anti-entropy path background sync uses.
const (
	rebFreezePoll    = 250 * time.Millisecond
	rebBootstrapPoll = 500 * time.Millisecond
)

// ctrl is the node whose event queue carries the mover's poll timers.
// Clients are never crashed by the nemesis, so the control loop cannot
// die mid-move.
func (r *Run) ctrl() transport.NodeID { return r.Cluster.Clients[0].ID }

// startRebalance stages the scenario's move and kicks off the mover.
// Only add-group moves are supported here — that is the capacity-growth
// operation the scenario exercises (the ring package itself handles
// arbitrary remaps).
func (r *Run) startRebalance() {
	rb := r.scn.Rebalance
	if r.gws == nil {
		r.events = append(r.events, "shard move skipped: rebalance requires the gateway tier")
		return
	}
	if rb.AddGroup <= 0 || rb.AddGroup >= r.Opts.NodesPerDC {
		r.events = append(r.events, fmt.Sprintf(
			"shard move skipped: group %d not provisioned (nodes per DC: %d)", rb.AddGroup, r.Opts.NodesPerDC))
		return
	}
	tbl := r.Cluster.Ring()
	if tbl.Current().Map().Has(rb.AddGroup) {
		r.events = append(r.events, fmt.Sprintf("shard move skipped: group %d already active", rb.AddGroup))
		return
	}
	next := tbl.Current().Map().WithGroup(rb.AddGroup)
	r.rebIssued = make(map[int]*core.StorageNode)
	r.rebDone = make(map[int]bool)
	r.rebAdopted = make(map[int]int)
	r.mover = ring.NewMover(tbl, ring.Hooks{
		Freeze:    r.rebFreeze,
		Bootstrap: r.rebBootstrap,
		Publish:   r.rebPublish,
	})
	err := r.mover.Move(next, func(st ring.MoveStats) {
		r.events = append(r.events, fmt.Sprintf(
			"shard move published: epoch %d, group %d bootstrapped %d keys, %d wrong-shard refusals retried",
			st.Epoch, rb.AddGroup, st.MovedKeys, r.wrongShard))
		r.Opts.Logf("[%s] shard move published: epoch %d, %d keys", r.scn.Name, st.Epoch, st.MovedKeys)
	})
	if err != nil {
		r.events = append(r.events, fmt.Sprintf("shard move failed to start: %v", err))
	}
}

// rebFreeze fences admission for moving keys at every gateway, then
// polls the two-part drain gate: no live gateway holds an in-flight
// transaction touching a moving key, and no live source replica holds
// an unsettled vote on one. Votes held only by crashed replicas are
// fine — gate soundness needs every *decided* option applied on the
// live copies the bootstrap pulls from; a crashed replica's replayed
// vote re-settles through the sweep and reconciles among the new
// owners' own anti-entropy after publish.
func (r *Run) rebFreeze(next *ring.Ring, ready func()) {
	cur := r.Cluster.Ring().Current()
	r.rebMoving = func(k record.Key) bool { return next.Owner(string(k)) != cur.Owner(string(k)) }
	r.rebNext = next.Epoch()
	r.rebFrozen = true
	var poll func()
	poll = func() {
		if r.mover == nil || r.mover.Phase() != ring.PhaseFreeze {
			return
		}
		// Re-apply every tick: a gateway restarted since the last tick
		// has a fresh, unfenced incarnation (FreezeShards is idempotent).
		r.rebApplyFreeze()
		if r.rebDrained() {
			ready()
			return
		}
		r.Net.After(r.ctrl(), rebFreezePoll, poll)
	}
	poll()
}

// rebApplyFreeze (re-)fences every live gateway.
func (r *Run) rebApplyFreeze() {
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] {
			g.FreezeShards(r.rebMoving, r.rebNext)
		}
	}
}

// rebDrained is the freeze gate.
func (r *Run) rebDrained() bool {
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] && g.InflightMoving() > 0 {
			return false
		}
	}
	for i, n := range r.nodes {
		if r.crashed[i] {
			continue
		}
		if n.Unsettled(r.rebMoving) > 0 {
			return false
		}
	}
	return true
}

// rebBootstrap brings every destination replica (the added group's
// node in each DC) to the moving shards' settled state by pulling a
// full directed anti-entropy walk — filtered to re-homing keys — from
// EVERY replica of every source group, across all five DCs. The union
// matters for soundness: the drain gate proves every live source
// settled its votes, but a write decided by a 3-of-5 classic quorum
// leaves up to two non-voting sources stale with no votes to gate on,
// and partitions/crashes can widen that set. Any committed write is
// applied on at least a quorum of sources, so the union of all five
// walks always contains it (adoption takes the max version per key and
// grafts lineage, so stale walks can never roll a fresher one back).
// Chains are re-issued from scratch whenever a destination node
// restarts as a fresh incarnation (adoption is WAL-durable, so a
// completed chain survives later crashes); pulls to a crashed source
// simply retry until it returns.
func (r *Run) rebBootstrap(next *ring.Ring, ready func(moved int)) {
	add := r.scn.Rebalance.AddGroup
	cur := r.Cluster.Ring().Current() // still the pre-move ring: Install runs at publish
	accept := func(k record.Key) bool {
		return next.Owner(string(k)) == add && cur.Owner(string(k)) != add
	}
	var srcGroups []int
	for _, g := range cur.Groups() {
		if g != add {
			srcGroups = append(srcGroups, g)
		}
	}
	var poll func()
	poll = func() {
		if r.mover == nil || r.mover.Phase() != ring.PhaseBootstrap {
			return
		}
		r.rebApplyFreeze() // keep restarted gateways fenced through bootstrap
		allDone := true
		for i, sn := range r.Cluster.Storage {
			if sn.Index != add {
				continue
			}
			if r.rebDone[i] {
				continue
			}
			allDone = false
			if r.crashed[i] || r.rebIssued[i] == r.nodes[i] {
				continue
			}
			r.rebIssued[i] = r.nodes[i]
			r.rebIssueChain(i, srcGroups, accept)
		}
		if allDone {
			total := 0
			for _, a := range r.rebAdopted {
				total += a
			}
			ready(total)
			return
		}
		r.Net.After(r.ctrl(), rebBootstrapPoll, poll)
	}
	poll()
}

// rebIssueChain walks destination node i through one AdoptShard pull
// per source replica (every source group in every DC, own DC first),
// sequentially. The chain belongs to one storage incarnation: if that
// incarnation crashes its callbacks die with it (halted nodes process
// nothing), and the bootstrap poll issues a fresh chain on the
// restarted node.
func (r *Run) rebIssueChain(i int, srcGroups []int, accept func(record.Key) bool) {
	node := r.nodes[i]
	own := r.Cluster.Storage[i].DC
	var srcs []transport.NodeID
	for _, g := range srcGroups {
		srcs = append(srcs, topology.StorageID(own, g))
		for _, dc := range topology.AllDCs() {
			if dc != own {
				srcs = append(srcs, topology.StorageID(dc, g))
			}
		}
	}
	var step func(si, total int)
	step = func(si, total int) {
		if si >= len(srcs) {
			r.rebDone[i] = true
			r.rebAdopted[i] = total
			return
		}
		node.AdoptShard(srcs[si], accept, func(adopted int) { step(si+1, total+adopted) })
	}
	step(0, 0)
}

// rebPublish lifts the freeze and re-homes per-key routing state at
// every live gateway. The mover has already installed the next map in
// the shared ring table, so Shard() answers with the new owners from
// here on; a gateway restarted after publish starts fresh against the
// new ring and needs nothing.
func (r *Run) rebPublish(next *ring.Ring) {
	r.rebFrozen = false
	for _, dc := range topology.AllDCs() {
		if g := r.gws[dc]; g != nil && !r.gwDown[dc] {
			g.RingPublished()
		}
	}
}
