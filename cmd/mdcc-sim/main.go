// mdcc-sim runs deterministic fault-injection scenarios against the
// full MDCC stack on the simulated five-data-center WAN and prints a
// pass/fail invariant report (internal/check: no lost updates,
// version accounting, delta conservation, constraint safety) plus
// commit/abort and latency statistics.
//
// Usage:
//
//	mdcc-sim -scenario dc-outage -seed 1
//	mdcc-sim -scenario all -clients 200 -duration 2m
//	mdcc-sim -list
//
// Runs are reproducible: the same scenario, seed and sizing always
// produce the same commits, aborts and verdict, so any failure can be
// replayed from its report line alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mdcc/internal/scenario"
)

var (
	name     = flag.String("scenario", "all", "scenario name, or \"all\"")
	seed     = flag.Int64("seed", 1, "simulation seed (reproducible)")
	clients  = flag.Int("clients", 0, "simulated clients (0 = scenario default)")
	nodes    = flag.Int("nodes-per-dc", 0, "storage nodes per data center (0 = scenario default)")
	scnNodes = flag.Int("scenario.nodes", 0, "alias for -nodes-per-dc (takes precedence when set)")
	scnDrop  = flag.Float64("scenario.drop", 0, "ambient uniform message-drop probability for the whole traffic window")
	duration = flag.Duration("duration", 0, "virtual traffic window (0 = scenario default)")
	noFaults = flag.Bool("no-faults", false, "skip the nemesis schedule (happy-path run)")
	list     = flag.Bool("list", false, "list scenarios and exit")
	verbose  = flag.Bool("v", false, "log nemesis events as they fire")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mdcc-sim [-scenario name|all] [-seed N] [-clients N] [-duration D] [-no-faults] [-v]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			fmt.Printf("%-24s %s\n", s.Name, s.Description)
		}
		return
	}

	var torun []*scenario.Scenario
	if *name == "all" {
		torun = scenario.All()
	} else {
		s, ok := scenario.Find(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "mdcc-sim: unknown scenario %q; known: %v\n", *name, scenario.Names())
			os.Exit(2)
		}
		torun = []*scenario.Scenario{s}
	}

	opts := scenario.Options{
		Seed:       *seed,
		Clients:    *clients,
		NodesPerDC: *nodes,
		Duration:   *duration,
		Faults:     !*noFaults,
		DropProb:   *scnDrop,
	}
	if *scnNodes > 0 {
		opts.NodesPerDC = *scnNodes
	}
	if *verbose {
		opts.Logf = func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		}
	}

	failed := 0
	for _, s := range torun {
		start := time.Now()
		res, err := s.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdcc-sim: %s: %v\n", s.Name, err)
			failed++
			continue
		}
		fmt.Print(res.Report())
		fmt.Printf("  wall time: %s\n\n", time.Since(start).Round(time.Millisecond))
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mdcc-sim: %d of %d scenarios FAILED\n", failed, len(torun))
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios passed\n", len(torun))
}
