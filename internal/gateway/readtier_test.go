package gateway

import (
	"testing"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// readOnce drives one ReadFloor to completion on the simulated net.
func readOnce(w *testWorld, key record.Key, floor record.Version) (val record.Value, ver record.Version, exists bool, served bool) {
	w.net.At(0, func() {
		w.gw.ReadFloor(key, floor, func(v record.Value, vr record.Version, ok bool) {
			val, ver, exists, served = v, vr, ok, true
		})
	})
	w.net.RunFor(5 * time.Second)
	return
}

// TestReadTierServesFromMemory pins the tentpole behavior: after one
// cold-miss RPC fill, steady-state reads are served from the
// gateway's feed-materialized memory with zero additional RPCs, and
// a committed write becomes visible to those memory reads through the
// visibility feed alone.
func TestReadTierServesFromMemory(t *testing.T) {
	key := record.Key("stock/read")
	w := newTestWorld(t, Tuning{}, []record.Constraint{record.MinBound("units", 0)})
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 100}})
	w.net.RunFor(3 * time.Second) // feeds subscribe, hellos land

	if _, ver, exists, served := readOnce(w, key, 0); !served || !exists || ver != 1 {
		t.Fatalf("cold read: served=%v exists=%v ver=%d", served, exists, ver)
	}
	m := w.gw.Metrics()
	if m.ReadRPCs != 1 {
		t.Fatalf("cold read should cost exactly one RPC fill, got %+v", m)
	}

	// Steady state: every further read is a memory hit.
	const n = 50
	hits := 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.ReadFloor(key, 0, func(_ record.Value, ver record.Version, ok bool) {
				if ok && ver == 1 {
					hits++
				}
			})
		}
	})
	w.net.RunFor(time.Second)
	if hits != n {
		t.Fatalf("served %d of %d steady-state reads", hits, n)
	}
	m = w.gw.Metrics()
	if m.ReadRPCs != 1 || m.LocalReads < n {
		t.Fatalf("steady-state reads still cost RPCs: %+v", m)
	}
	if m.FeedsLive == 0 || m.MaterializedKeys == 0 {
		t.Fatalf("gauges claim a dead tier under a live feed: %+v", m)
	}

	// A committed write must reach memory readers via the feed alone.
	w.net.At(0, func() {
		w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -5})},
			func(ok bool, err error) {
				if !ok || err != nil {
					t.Errorf("commit: ok=%v err=%v", ok, err)
				}
			})
	})
	w.net.RunFor(5 * time.Second)
	rpcsBefore := w.gw.Metrics().ReadRPCs
	val, ver, exists, served := readOnce(w, key, 0)
	if !served || !exists || ver != 2 || val.Attr("units") != 95 {
		t.Fatalf("post-write read: served=%v exists=%v ver=%d units=%d", served, exists, ver, val.Attr("units"))
	}
	if w.gw.Metrics().ReadRPCs != rpcsBefore {
		t.Fatalf("post-write read paid an RPC despite the feed")
	}
}

// TestReadTierSingleFlightCoalescing pins the cold-miss stampede:
// concurrent reads of one unmaterialized key share a single MsgRead.
func TestReadTierSingleFlightCoalescing(t *testing.T) {
	const n = 40
	key := record.Key("stock/coal")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 7}})
	w.net.RunFor(3 * time.Second)

	served := 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.ReadFloor(key, 0, func(_ record.Value, ver record.Version, ok bool) {
				if ok && ver == 1 {
					served++
				}
			})
		}
	})
	w.net.RunFor(5 * time.Second)
	if served != n {
		t.Fatalf("served %d of %d stampede reads", served, n)
	}
	m := w.gw.Metrics()
	if m.ReadRPCs != 1 || m.ReadCoalesced != n-1 {
		t.Fatalf("stampede cost %d RPCs (%d coalesced), want 1 (%d)", m.ReadRPCs, m.ReadCoalesced, n-1)
	}
}

// TestReadTierFloorEscalation pins the fallback ladder's quorum rung:
// a floor above everything the local replica has must escalate to a
// quorum read rather than serve below the floor.
func TestReadTierFloorEscalation(t *testing.T) {
	key := record.Key("stock/floor")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 1}})
	w.net.RunFor(3 * time.Second)

	// Warm the memory copy (version 1).
	readOnce(w, key, 0)
	// A floor of 99 can be met by nobody; the ladder must walk memory
	// -> RPC -> quorum and return the best available rather than the
	// (equally stale) memory copy without trying.
	_, ver, exists, served := readOnce(w, key, 99)
	if !served || !exists || ver != 1 {
		t.Fatalf("floored read: served=%v exists=%v ver=%d", served, exists, ver)
	}
	m := w.gw.Metrics()
	if m.ReadQuorums != 1 {
		t.Fatalf("floor outrun did not escalate to a quorum read: %+v", m)
	}
	// The memory path must never have served it (floor > memory ver).
	if m.LocalReads != 0 {
		t.Fatalf("memory served a read below its floor: %+v", m)
	}
}

// TestReadTierFeedGapResync forces a sequence hole — the gateway node
// is partitioned from its local shard for less than FeedTTL while
// commits keep dirtying the key, so messages are lost but no
// resubscription happens in between — and requires the gap to be
// detected on the first post-heal message and resynced with catch-up,
// after which memory reads serve the post-partition state with no
// extra RPC.
func TestReadTierFeedGapResync(t *testing.T) {
	key := record.Key("stock/gap")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 50}})
	w.net.RunFor(3 * time.Second)
	readOnce(w, key, 0) // materialize

	// Cut ONLY the gateway node off from the key's local shard: the
	// pooled coordinators still commit (all five replicas vote), the
	// shard still executes visibility and streams it — onto the floor.
	shard := w.cl.ReplicaIn(key, topology.USWest)
	cut := func() {
		w.net.Partition([]transport.NodeID{w.gw.ID()}, []transport.NodeID{shard})
	}
	commit := func(delta int64) {
		w.net.At(0, func() {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": delta})},
				func(ok bool, err error) {
					if !ok || err != nil {
						t.Errorf("commit: ok=%v err=%v", ok, err)
					}
				})
		})
	}
	w.net.At(0, cut)
	commit(-1)
	commit(-1)
	// 1s < FeedTTL (2s): keepalives and the two feed updates are
	// lost, but the liveness probe does not resubscribe yet — the hole
	// must be found by sequence numbers, not by the silence timer.
	w.net.RunFor(1000 * time.Millisecond)
	w.net.HealAll()
	commit(-1)
	w.net.RunFor(5 * time.Second)

	m := w.gw.Metrics()
	if m.FeedGaps == 0 {
		t.Fatalf("lost feed messages went undetected: %+v", m)
	}
	rpcs := m.ReadRPCs
	val, ver, exists, served := readOnce(w, key, 0)
	if !served || !exists || ver != 4 || val.Attr("units") != 47 {
		t.Fatalf("post-resync read: served=%v exists=%v ver=%d units=%d", served, exists, ver, val.Attr("units"))
	}
	if got := w.gw.Metrics().ReadRPCs; got != rpcs {
		t.Fatalf("post-resync read paid an RPC (%d -> %d); catch-up did not rematerialize", rpcs, got)
	}
}

// TestReadTierSubscriberRestart models a gateway restart: a fresh
// incarnation (same node ids, bumped generation) starts with an empty
// store, must resubscribe under a fresh epoch, and must not consume
// the dead incarnation's stream state.
func TestReadTierSubscriberRestart(t *testing.T) {
	key := record.Key("stock/restart")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 9}})
	w.net.RunFor(3 * time.Second)
	readOnce(w, key, 0)

	// Stop the old incarnation (its timers must die with it — the
	// hard-crash variant is covered by the read-storm scenario's
	// CrashGateway nemesis) and boot a replacement under a fresh
	// generation on the same node ids.
	w.gw.Close()
	w.gw = NewGen(topology.USWest, w.net, w.cl, w.cfg, Tuning{}, 1)
	w.net.RunFor(3 * time.Second) // hellos under the new epoch land

	m := w.gw.Metrics()
	if m.FeedsLive == 0 {
		t.Fatalf("restarted gateway never re-established its feeds: %+v", m)
	}
	// Cold store: first read pays one RPC fill, then memory serves.
	if _, ver, exists, served := readOnce(w, key, 0); !served || !exists || ver != 1 {
		t.Fatalf("post-restart read: served=%v exists=%v ver=%d", served, exists, ver)
	}
	if _, _, _, served := readOnce(w, key, 0); !served {
		t.Fatal("second post-restart read not served")
	}
	m = w.gw.Metrics()
	if m.ReadRPCs != 1 || m.LocalReads == 0 {
		t.Fatalf("restarted tier not serving from memory after one fill: %+v", m)
	}
}

// TestReadTierPublisherRestartDetected pins the sequence-aliasing
// hazard: a restarted storage node loses its subscriber table, and a
// same-epoch re-registration restarts its stream at Seq 1 — whose low
// numbers alias the gateway's already-consumed ones and would be
// discarded as duplicates, silently losing the fresh incarnation's
// messages. The publisher boot id must turn that into a detected gap
// and a resync.
func TestReadTierPublisherRestartDetected(t *testing.T) {
	key := record.Key("stock/boot")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 3}})
	w.net.RunFor(3 * time.Second)
	readOnce(w, key, 0) // stream consumed: boot pinned

	shard := w.cl.ReplicaIn(key, topology.USWest)
	w.gw.mu.Lock()
	fs := w.gw.feeds[shard]
	epoch, seq, boot := fs.epoch, fs.expect, fs.boot
	w.gw.mu.Unlock()
	if boot == 0 {
		t.Fatal("no boot id pinned after consuming the stream")
	}
	gaps := w.gw.Metrics().FeedGaps
	// A "restarted publisher": same epoch, a perfectly in-order
	// sequence number, different boot. Without the boot check this is
	// consumed as contiguous — with it, it must resync.
	w.net.At(0, func() {
		w.net.Send(shard, w.gw.ID(), core.MsgVisibilityFeed{Epoch: epoch, Seq: seq, Boot: boot + 1})
	})
	w.net.RunFor(3 * time.Second)
	m := w.gw.Metrics()
	if m.FeedGaps == gaps {
		t.Fatalf("publisher restart not detected as a gap: %+v", m)
	}
	if m.FeedsLive == 0 {
		t.Fatalf("stream did not recover after the resync: %+v", m)
	}
}

// TestReadTierSurvivesDupReorder runs the feed under heavy message
// duplication and reordering: duplicates must be discarded by
// sequence (never applied twice, never mistaken for gaps that wedge
// the stream), reorder-induced holes must resync, and the tier must
// end live and correct.
func TestReadTierSurvivesDupReorder(t *testing.T) {
	key := record.Key("stock/dup")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 1000}})
	w.net.RunFor(3 * time.Second)
	readOnce(w, key, 0)

	w.net.SetDupProb(0.25)
	w.net.SetReorder(0.25, 80*time.Millisecond)
	const n = 30
	committed := 0
	w.net.At(0, func() {
		for i := 0; i < n; i++ {
			w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -1})},
				func(ok bool, err error) {
					if ok && err == nil {
						committed++
					}
				})
		}
	})
	w.net.RunFor(20 * time.Second)
	w.net.SetDupProb(0)
	w.net.SetReorder(0, 0)
	w.net.RunFor(5 * time.Second) // stream settles, keepalives resume

	val, ver, exists, served := readOnce(w, key, 0)
	if !served || !exists {
		t.Fatal("read not served after chaos")
	}
	if want := int64(1000 - committed); val.Attr("units") != want {
		t.Fatalf("units = %d, want %d (%d committed)", val.Attr("units"), want, committed)
	}
	if want := record.Version(1 + committed); ver != want {
		t.Fatalf("version = %d, want %d", ver, want)
	}
	m := w.gw.Metrics()
	if m.FeedStaleMsgs == 0 && m.FeedGaps == 0 {
		t.Fatalf("chaos produced neither discarded duplicates nor resynced gaps: %+v", m)
	}
	if m.FeedsLive == 0 {
		t.Fatalf("stream wedged after chaos: %+v", m)
	}
}

// TestReadTierPublisherChurnedOut pins feed recovery under node
// churn: the gateway's feed publisher (its DC's shard replica) is not
// restarted but *replaced* — a brand-new machine at the same slot
// with empty disks, a fresh subscriber table and a fresh boot id. The
// gateway must notice the publisher's death and resubscribe to the
// replacement; the replacement must rebuild the committed state it
// never had from its quorum over anti-entropy; and a post-churn
// commit must reach memory readers through the NEW feed alone.
func TestReadTierPublisherChurnedOut(t *testing.T) {
	key := record.Key("stock/churned")
	w := newTestWorld(t, Tuning{}, nil)
	w.preload(key, record.Value{Attrs: map[string]int64{"units": 500}})
	w.net.RunFor(3 * time.Second)
	readOnce(w, key, 0) // materialize; feed live, boot pinned

	shard := w.cl.ReplicaIn(key, topology.USWest)
	idx := -1
	for i, n := range w.cl.Storage {
		if n.ID == shard {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("no us-west replica for the key")
	}
	resubs := w.gw.Metrics().FeedResubs

	// Churn the publisher out: crash it, then boot the replacement on
	// wiped disks. The replacement syncs so its quorum can rebuild the
	// state the new machine never held.
	w.net.Crash(shard)
	w.nodes[idx].Halt()
	w.net.RunFor(time.Second)
	w.stores[idx] = kv.NewMemory()
	cfg := w.cfg
	cfg.SyncInterval = 750 * time.Millisecond
	w.net.Recover(shard)
	w.nodes[idx] = core.NewStorageNode(shard, topology.USWest, w.net, w.cl, cfg, w.stores[idx])
	// The silence passes FeedTTL, the gateway resubscribes to the
	// fresh incarnation, and anti-entropy pulls the key back.
	w.net.RunFor(8 * time.Second)

	m := w.gw.Metrics()
	if m.FeedResubs == resubs {
		t.Fatalf("no resubscription after the publisher was churned out: %+v", m)
	}
	if m.FeedsLive == 0 {
		t.Fatalf("feed not live on the replacement publisher: %+v", m)
	}
	if _, ver, ok := w.stores[idx].Get(key); !ok || ver != 1 {
		t.Fatalf("replacement did not rebuild %s from its quorum: ok=%v ver=%d", key, ok, ver)
	}

	// The resubscription's catch-up asked an empty machine, so the old
	// memory copy is rightly unconfirmed: the first post-churn read is
	// a single RPC refill that re-registers the key with the new feed.
	if _, ver, exists, served := readOnce(w, key, 0); !served || !exists || ver != 1 {
		t.Fatalf("post-churn refill read: served=%v exists=%v ver=%d", served, exists, ver)
	}

	// From here the replacement's feed owns visibility: a commit must
	// reach memory readers through it alone — no further RPCs.
	w.net.At(0, func() {
		w.gw.Commit([]record.Update{record.Commutative(key, map[string]int64{"units": -5})},
			func(ok bool, err error) {
				if !ok || err != nil {
					t.Errorf("post-churn commit: ok=%v err=%v", ok, err)
				}
			})
	})
	w.net.RunFor(5 * time.Second)
	rpcs := w.gw.Metrics().ReadRPCs
	val, ver, exists, served := readOnce(w, key, 0)
	if !served || !exists || ver != 2 || val.Attr("units") != 495 {
		t.Fatalf("post-churn read: served=%v exists=%v ver=%d units=%d", served, exists, ver, val.Attr("units"))
	}
	if got := w.gw.Metrics().ReadRPCs; got != rpcs {
		t.Fatalf("post-churn read paid an RPC (%d -> %d): the replacement's feed is not feeding memory", rpcs, got)
	}
}
