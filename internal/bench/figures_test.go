package bench

import (
	"testing"
	"time"

	"mdcc/internal/topology"
)

func TestFigure3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure test skipped in -short")
	}
	res := Figure3(1, QuickScale())
	if len(res) != 5 {
		t.Fatalf("figure 3 covers %d protocols, want 5", len(res))
	}
	med := func(p Protocol) float64 { return res[p].WriteLat.Median() }
	for p, r := range res {
		if r.Commits == 0 {
			t.Fatalf("%s: no commits", p)
		}
		t.Logf("%-10s median %6.0fms tps %6.1f commits %d", p, med(p), r.WriteTPS, r.Commits)
	}
	// Paper ordering: QW-3 < QW-4 ≈ MDCC < 2PC << Megastore*.
	if !(med(ProtoQW3) < med(ProtoQW4)) {
		t.Errorf("QW-3 (%.0f) should beat QW-4 (%.0f)", med(ProtoQW3), med(ProtoQW4))
	}
	if !(med(ProtoMDCC) < med(Proto2PC)) {
		t.Errorf("MDCC (%.0f) should beat 2PC (%.0f)", med(ProtoMDCC), med(Proto2PC))
	}
	if !(med(Proto2PC) < med(ProtoMegastore)) {
		t.Errorf("2PC (%.0f) should beat Megastore* (%.0f)", med(Proto2PC), med(ProtoMegastore))
	}
	// MDCC within 2x of the eventually-consistent floor.
	if med(ProtoMDCC) > 2*med(ProtoQW4) {
		t.Errorf("MDCC (%.0f) too far above QW-4 (%.0f)", med(ProtoMDCC), med(ProtoQW4))
	}
}

func TestFigure6DepletionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure test skipped in -short")
	}
	sc := QuickScale()
	pts := Figure6(2, sc, []int{2, 90})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	hot, cold := pts[0], pts[1]
	for _, proto := range []Protocol{ProtoMDCC, ProtoFast, ProtoMulti, Proto2PC} {
		h, c := hot.Results[proto], cold.Results[proto]
		t.Logf("%-6s hot2%%: %d/%d  cold90%%: %d/%d",
			proto, h.Commits, h.Aborts, c.Commits, c.Aborts)
		if c.Commits == 0 {
			t.Errorf("%s: no commits at 90%% hotspot", proto)
		}
		// Contention must hurt: more aborts (relatively) at 2%.
		hRate := float64(h.Aborts) / float64(h.Commits+h.Aborts+1)
		cRate := float64(c.Aborts) / float64(c.Commits+c.Aborts+1)
		if proto != ProtoMDCC && hRate < cRate {
			t.Errorf("%s: abort rate did not increase with conflict (%.3f vs %.3f)", proto, hRate, cRate)
		}
	}
}

func TestFigure7LocalityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure test skipped in -short")
	}
	sc := QuickScale()
	pts := Figure7(3, sc, []int{100, 20})
	multi100 := pts[0].Results[ProtoMulti].WriteLat.Median()
	multi20 := pts[1].Results[ProtoMulti].WriteLat.Median()
	mdcc100 := pts[0].Results[ProtoMDCC].WriteLat.Median()
	mdcc20 := pts[1].Results[ProtoMDCC].WriteLat.Median()
	t.Logf("Multi: 100%%=%.0fms 20%%=%.0fms   MDCC: 100%%=%.0fms 20%%=%.0fms",
		multi100, multi20, mdcc100, mdcc20)
	// Multi's latency degrades as masters become remote; MDCC stays flat.
	if !(multi20 > multi100*1.3) {
		t.Errorf("Multi should degrade with remote masters: %.0f -> %.0f", multi100, multi20)
	}
	spread := mdcc20 - mdcc100
	if spread < 0 {
		spread = -spread
	}
	if spread > mdcc100*0.35 {
		t.Errorf("MDCC should be locality-insensitive: %.0f vs %.0f", mdcc100, mdcc20)
	}
	// At full locality Multi beats (or matches) MDCC; at 20% MDCC wins.
	if !(mdcc20 < multi20) {
		t.Errorf("MDCC (%.0f) should beat Multi (%.0f) at 20%% locality", mdcc20, multi20)
	}
}

func TestFigure8FailureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure test skipped in -short")
	}
	fr := Figure8(4, 20, 30*time.Second, 60*time.Second)
	if fr.PreCount == 0 || fr.PostCount == 0 {
		t.Fatalf("no samples around the outage: pre=%d post=%d", fr.PreCount, fr.PostCount)
	}
	t.Logf("pre-failure mean %.1fms (n=%d), post %.1fms (n=%d)",
		fr.PreMean, fr.PreCount, fr.PostMean, fr.PostCount)
	// Commits continue; latency rises (us-east was the nearest DC).
	if fr.PostMean <= fr.PreMean {
		t.Errorf("latency should rise after losing the closest DC: %.1f -> %.1f", fr.PreMean, fr.PostMean)
	}
	// Seamless: the post-outage window must keep committing steadily.
	if float64(fr.PostCount) < 0.3*float64(fr.PreCount) {
		t.Errorf("commit rate collapsed after the outage: %d vs %d", fr.PostCount, fr.PreCount)
	}
	_ = topology.USEast
}

func TestFigure4QuickScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("figure test skipped in -short")
	}
	pts := Figure4(5, []int{10, 20}, 5*time.Second, 20*time.Second)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		for proto, r := range p.Results {
			t.Logf("clients=%d %-10s tps=%.1f", p.Clients, proto, r.WriteTPS)
			if proto != ProtoMegastore && r.WriteTPS <= 0 {
				t.Errorf("%s at %d clients: no throughput", proto, p.Clients)
			}
		}
	}
	// Scalable protocols roughly double; Megastore* must not.
	for _, proto := range []Protocol{ProtoQW3, ProtoMDCC} {
		t0 := pts[0].Results[proto].WriteTPS
		t1 := pts[1].Results[proto].WriteTPS
		if t1 < t0*1.4 {
			t.Errorf("%s did not scale: %.1f -> %.1f tps", proto, t0, t1)
		}
	}
	ms0 := pts[0].Results[ProtoMegastore].WriteTPS
	ms1 := pts[1].Results[ProtoMegastore].WriteTPS
	if ms1 > ms0*1.4 {
		t.Errorf("Megastore* should not scale with clients: %.1f -> %.1f tps", ms0, ms1)
	}
}
