// Package clock abstracts time so protocol code runs unchanged on the
// real clock (examples, TCP servers) and on the discrete-event virtual
// clock in internal/simnet (benchmarks, deterministic tests).
package clock

import (
	"sync"
	"time"
)

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer. It reports whether the callback was
	// prevented from running (false if it already ran or was stopped).
	Stop() bool
}

// Clock provides current time and deferred execution.
//
// After schedules f to run once d has elapsed. Callbacks scheduled on a
// virtual clock run on the simulator loop; callbacks on the real clock
// run on their own goroutine, exactly like time.AfterFunc.
type Clock interface {
	Now() time.Time
	After(d time.Duration, f func()) Timer
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// NewReal returns the wall-clock Clock.
func NewReal() Real { return Real{} }

// Now returns the current wall-clock time.
func (Real) Now() time.Time { return time.Now() }

// After schedules f on the wall clock via time.AfterFunc.
func (Real) After(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// Manual is a hand-advanced clock for unit tests that do not need the
// full simulator: Advance runs due callbacks synchronously.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	pending []*manualTimer
	seq     int
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the current manual time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After registers f to run when the clock is advanced past d from now.
func (m *Manual) After(d time.Duration, f func()) Timer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &manualTimer{clk: m, at: m.now.Add(d), f: f, seq: m.seq}
	m.seq++
	m.pending = append(m.pending, t)
	return t
}

// Advance moves the clock forward by d, firing due callbacks in
// timestamp order. Callbacks run synchronously on the caller's
// goroutine, and may themselves schedule further timers.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		t := m.popDueLocked(target)
		if t == nil {
			break
		}
		m.now = t.at
		m.mu.Unlock()
		t.f()
		m.mu.Lock()
	}
	m.now = target
	m.mu.Unlock()
}

// popDueLocked removes and returns the earliest pending timer at or
// before target, or nil.
func (m *Manual) popDueLocked(target time.Time) *manualTimer {
	best := -1
	for i, t := range m.pending {
		if t.stopped || t.at.After(target) {
			continue
		}
		if best == -1 || t.at.Before(m.pending[best].at) ||
			(t.at.Equal(m.pending[best].at) && t.seq < m.pending[best].seq) {
			best = i
		}
	}
	if best == -1 {
		// Garbage-collect stopped timers opportunistically.
		live := m.pending[:0]
		for _, t := range m.pending {
			if !t.stopped && t.at.After(target) {
				live = append(live, t)
			}
		}
		m.pending = live
		return nil
	}
	t := m.pending[best]
	m.pending = append(m.pending[:best], m.pending[best+1:]...)
	return t
}

type manualTimer struct {
	clk     *Manual
	at      time.Time
	f       func()
	seq     int
	stopped bool
}

func (t *manualTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}
