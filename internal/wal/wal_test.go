package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, dir
}

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(p []byte) error {
		cp := make([]byte, len(p))
		copy(cp, p)
		out = append(out, cp)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	defer l.Close()
	want := [][]byte{[]byte("one"), []byte("two"), []byte(""), []byte("four")}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if l.Appends() != int64(len(want)) {
		t.Fatalf("Appends = %d, want %d", l.Appends(), len(want))
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 10 {
		t.Fatalf("after reopen replayed %d records, want 10", len(got))
	}
	// And appends continue to work.
	if err := l2.Append([]byte("rec-10")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != 11 {
		t.Fatalf("after reopen+append replayed %d records, want 11", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(bytes.Repeat([]byte{'x'}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	l2, err := Open(dir, Options{SegmentSize: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-write: append garbage half-record bytes.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x00, 0x12})
	f.Close()

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 5 {
		t.Fatalf("torn tail: replayed %d records, want 5", len(got))
	}
	// New appends after truncation must be replayable.
	if err := l2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l2)
	if len(got) != 6 || string(got[5]) != "after-crash" {
		t.Fatalf("post-crash append lost: %q", got)
	}
}

func TestCorruptPayloadTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("good"))
	l.Append([]byte("will-be-corrupted"))
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a bit in the last payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("corrupt tail: replayed %v, want just [good]", got)
	}
}

func TestTruncate(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	defer l.Close()
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("after Truncate replayed %d records, want 0", len(got))
	}
	if err := l.Append([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != 1 {
		t.Fatalf("append after Truncate replayed %d records, want 1", len(got))
	}
}

func TestClosedErrors(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		dir, err := os.MkdirTemp("", "walq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l, err := Open(dir, Options{SegmentSize: 256, NoSync: true})
		if err != nil {
			return false
		}
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				return false
			}
		}
		l.Close()
		l2, err := Open(dir, Options{SegmentSize: 256, NoSync: true})
		if err != nil {
			return false
		}
		defer l2.Close()
		var got [][]byte
		if err := l2.Replay(func(p []byte) error {
			cp := make([]byte, len(p))
			copy(cp, p)
			got = append(got, cp)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !bytes.Equal(got[i], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppendNoSync(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{'p'}, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMiddleSegmentCorruptionFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 32, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(bytes.Repeat([]byte{'a'}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// Corrupt a NON-final segment: replay must fail loudly (this is
	// not a torn tail; it is data loss).
	path := filepath.Join(dir, segName(segs[0]))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Options{SegmentSize: 32, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func([]byte) error { return nil })
	if err == nil {
		t.Fatal("corrupt middle segment replayed silently")
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	defer l.Close()
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	wantErr := fmt.Errorf("stop")
	n := 0
	err := l.Replay(func([]byte) error { n++; return wantErr })
	if err != wantErr || n != 1 {
		t.Fatalf("Replay error propagation: err=%v n=%d", err, n)
	}
}

func TestTruncateAfterCloseErrors(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	l.Close()
	if err := l.Truncate(); err != ErrClosed {
		t.Fatalf("Truncate after close = %v, want ErrClosed", err)
	}
}

func TestAppendsCounter(t *testing.T) {
	l, _ := openTemp(t, Options{NoSync: true})
	defer l.Close()
	for i := 0; i < 7; i++ {
		l.Append([]byte{byte(i)})
	}
	if l.Appends() != 7 {
		t.Fatalf("Appends = %d", l.Appends())
	}
}

func TestSyncedAppend(t *testing.T) {
	// Exercise the fsync path (NoSync=false).
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) != 1 || string(got[0]) != "durable" {
		t.Fatalf("synced append lost: %q", got)
	}
}
