package core

import (
	"testing"
	"time"

	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

func TestReadQuorumReturnsFreshest(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 60)
	if !w.commit(0, record.Insert("q/1", record.Value{Attrs: map[string]int64{"x": 1}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Make one replica stale by failing it through an update.
	victim := topology.StorageID(topology.USWest, 0) // the client's local replica
	val, ver, _ := w.read(0, "q/1")
	w.net.Fail(victim)
	if !w.commit(0, record.Physical("q/1", ver, val.WithAttr("x", 2))).Committed {
		t.Fatal("update failed")
	}
	w.net.RunFor(3 * time.Second)
	w.net.Recover(victim)
	// Local read (us-west) may see the stale version 1; quorum read
	// must see version 2.
	var qval record.Value
	var qver record.Version
	var qok, done bool
	w.coords[0].ReadQuorum("q/1", func(v record.Value, vr record.Version, ok bool) {
		qval, qver, qok, done = v, vr, ok, true
	})
	if !w.net.RunUntil(func() bool { return done }, time.Minute) {
		t.Fatal("quorum read never settled")
	}
	if !qok || qver != 2 || qval.Attr("x") != 2 {
		t.Fatalf("quorum read = %v v%d %v, want x=2 v2", qval, qver, qok)
	}
}

func TestReadQuorumAbsentKey(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 61)
	var done, exists bool
	w.coords[0].ReadQuorum("q/none", func(_ record.Value, _ record.Version, ok bool) {
		exists, done = ok, true
	})
	if !w.net.RunUntil(func() bool { return done }, time.Minute) {
		t.Fatal("quorum read never settled")
	}
	if exists {
		t.Fatal("phantom record from quorum read")
	}
}

func TestReadRetriesAcrossDCs(t *testing.T) {
	// Local replica dead: the plain read must fail over to the next
	// data center after its timeout.
	cfg := cfgNoSweep(ModeMDCC)
	cfg.ReadTimeout = 300 * time.Millisecond
	w := newWorld(t, cfg, 1, 1, 62)
	if !w.commit(0, record.Insert("q/2", record.Value{Attrs: map[string]int64{"x": 5}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	w.net.Fail(topology.StorageID(topology.USWest, 0)) // client 0 is us-west
	val, _, ok := w.read(0, "q/2")
	if !ok || val.Attr("x") != 5 {
		t.Fatalf("failover read = %v %v", val, ok)
	}
	if m := w.coords[0].Metrics(); m.ReadRetries == 0 {
		t.Fatalf("expected read retries, got %+v", m)
	}
}

func TestReadFailsWhenAllDCsDead(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.ReadTimeout = 200 * time.Millisecond
	w := newWorld(t, cfg, 1, 1, 63)
	for _, dc := range topology.AllDCs() {
		w.net.Fail(topology.StorageID(dc, 0))
	}
	_, _, ok := w.read(0, "q/3")
	if ok {
		t.Fatal("read succeeded with every replica dead")
	}
	if m := w.coords[0].Metrics(); m.ReadFails == 0 {
		t.Fatalf("ReadFails not counted: %+v", m)
	}
}

func TestAbandonLeadershipOnPreemption(t *testing.T) {
	// A leader with in-flight Phase2a gets preempted by a higher
	// ballot: it must abandon, requeue, and still settle the option.
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 64)
	if !w.commit(0, record.Insert("ab/1", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	ldr := w.nodes[0] // us-west
	// Promise a very high ballot at a quorum of acceptors so the
	// upcoming Phase2a is refused.
	high := paxos.Classic(99, "usurper")
	for i := 0; i < 3; i++ {
		w.nodes[i].onPhase1a("usurper-node", MsgPhase1a{Key: "ab/1", Ballot: high})
	}
	// Now ask us-west to lead an option classically.
	opt := Option{
		Tx:       "tx-preempt",
		Coord:    w.coords[0].ID(),
		Update:   record.Physical("ab/1", 1, record.Value{Attrs: map[string]int64{"x": 1}}),
		WriteSet: []record.Key{"ab/1"},
	}
	var learned *MsgLearned
	w.net.Register(w.coords[0].ID(), func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgLearned); ok && learned == nil {
			learned = &m
		}
	})
	ldr.leaderPropose(opt, true)
	if !w.net.RunUntil(func() bool { return learned != nil }, time.Minute) {
		t.Fatal("preempted leader never settled the option")
	}
}

func TestUpdateKindUnknownRejected(t *testing.T) {
	n, _ := unitNode(t, ModeMDCC, nil)
	opt := Option{Update: record.Update{Kind: record.UpdateKind(99), Key: "k"}}
	if d, _ := n.evalOption(nil, opt, true); d != DecReject {
		t.Fatal("unknown update kind accepted")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {-3, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {10, 5, 2},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOptionStringForms(t *testing.T) {
	id := OptionID{Tx: "t1", Key: "k"}
	if id.String() != "t1@k" {
		t.Fatalf("OptionID.String = %q", id.String())
	}
	if record.ReadCheck("k", 3).String() == "" {
		t.Fatal("ReadCheck String empty")
	}
}

func TestCustomMasterDC(t *testing.T) {
	cfg := cfgNoSweep(ModeMulti)
	cfg.MasterDC = func(record.Key) topology.DC { return topology.APTokyo }
	w := newWorld(t, cfg, 1, 1, 65)
	res := w.commit(0, record.Insert("cm/1", record.Value{Attrs: map[string]int64{"x": 1}}))
	if !res.Committed {
		t.Fatal("commit via custom master failed")
	}
	// The Tokyo node must have acted as leader (phase2 proposals).
	var tokyo *StorageNode
	for _, n := range w.nodes {
		if n.ID() == topology.StorageID(topology.APTokyo, 0) {
			tokyo = n
		}
	}
	if tokyo.lr("cm/1").seq == 0 {
		t.Fatal("custom master never led")
	}
}
