package mdcc

import (
	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/record"
)

// GatewayTuning shapes a data center's gateway tier: coordinator pool
// size, batching and coalescing windows, admission bounds. The zero
// value means defaults (see internal/gateway.Tuning).
type GatewayTuning = gateway.Tuning

// GatewayMetrics is a gateway's operational snapshot: outcome counts,
// coalesce ratio, admission queue depth, batch fan-in.
type GatewayMetrics = gateway.Metrics

// Gateway is a DC-local transaction gateway: many client sessions
// attach to it instead of owning private coordinators. It pools a
// bounded set of coordinators, batches outbound protocol messages
// across transactions, coalesces commutative updates to hot keys into
// merged options, and applies admission control. See Cluster.Gateway.
type Gateway struct {
	dc  DC
	gw  *gateway.Gateway
	cfg core.Config
}

// Session opens a client session backed by this gateway. Gateway
// sessions share the pooled coordinators; their transactions may be
// batched and (when commutative and single-update) coalesced with
// other sessions' transactions.
func (g *Gateway) Session() *Session {
	s := newSession(gatewayBackend{gw: g.gw}, g.cfg)
	s.gwMetrics = g.gw.Metrics
	return s
}

// Metrics snapshots the gateway's operational counters.
func (g *Gateway) Metrics() GatewayMetrics { return g.gw.Metrics() }

// DC returns the gateway's data center.
func (g *Gateway) DC() DC { return g.dc }

// gatewayBackend adapts a gateway to the Session backend.
type gatewayBackend struct {
	gw *gateway.Gateway
}

func (b gatewayBackend) Read(key Key, floor Version, cb func(record.Value, record.Version, bool)) {
	b.gw.ReadFloor(key, floor, cb)
}

func (b gatewayBackend) ReadQuorum(key Key, cb func(record.Value, record.Version, bool)) {
	b.gw.ReadQuorum(key, cb)
}

func (b gatewayBackend) Commit(updates []Update, done func(bool, error)) {
	b.gw.Commit(updates, func(ok bool, err error) {
		switch err {
		case gateway.ErrOverloaded:
			err = ErrOverloaded
		case gateway.ErrClosed:
			err = ErrClosed
		case gateway.ErrOutcomeUnknown:
			// In-process analogue of the RPC client's settle deadline:
			// the gateway was killed with this transaction in flight.
			err = ErrOutcomeUnknown
		}
		done(ok, err)
	})
}

// Metrics reports only the gateway-level outcome counters live; the
// pooled coordinators' protocol internals are read when quiesced via
// Gateway.Metrics / scenario harnesses.
func (b gatewayBackend) Metrics() core.CoordMetrics {
	m := b.gw.Metrics()
	return core.CoordMetrics{Commits: m.Commits, Aborts: m.Aborts}
}
