package simnet

import (
	"testing"
	"time"

	"mdcc/internal/transport"
)

func TestDupProbDeliversTwice(t *testing.T) {
	n := New(Options{Latency: fixedLatency(10 * time.Millisecond), DupProb: 1, Seed: 1})
	got := 0
	n.Register("b", func(e transport.Envelope) { got++ })
	n.Send("a", "b", ping{})
	n.Run()
	if got != 2 {
		t.Fatalf("delivered %d times, want 2 (original + dup)", got)
	}
	s := n.Stats()
	if s.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", s.Duplicated)
	}
	if s.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2", s.Delivered)
	}
}

func TestReorderDelaysWithinWindow(t *testing.T) {
	n := New(Options{
		Latency:       fixedLatency(10 * time.Millisecond),
		ReorderProb:   1,
		ReorderWindow: 50 * time.Millisecond,
		Seed:          2,
	})
	start := n.Now()
	var at time.Duration
	n.Register("b", func(e transport.Envelope) { at = n.Now().Sub(start) })
	n.Send("a", "b", ping{})
	n.Run()
	if at <= 10*time.Millisecond || at > 60*time.Millisecond {
		t.Fatalf("reordered delivery at %v, want in (10ms, 60ms]", at)
	}
	if n.Stats().Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", n.Stats().Reordered)
	}
}

func TestPartitionBlocksBothDirectionsAndHeals(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	got := map[transport.NodeID]int{}
	for _, id := range []transport.NodeID{"a", "b"} {
		id := id
		n.Register(id, func(e transport.Envelope) { got[id]++ })
	}
	n.Partition([]transport.NodeID{"a"}, []transport.NodeID{"b"})
	n.Send("a", "b", ping{})
	n.Send("b", "a", ping{})
	n.Run()
	if got["a"] != 0 || got["b"] != 0 {
		t.Fatalf("messages crossed the cut: %v", got)
	}
	s := n.Stats()
	if s.DroppedPartition != 2 || s.Dropped != 2 {
		t.Fatalf("DroppedPartition = %d (total %d), want 2 (2)", s.DroppedPartition, s.Dropped)
	}
	n.Heal([]transport.NodeID{"a"}, []transport.NodeID{"b"})
	n.Send("a", "b", ping{})
	n.Send("b", "a", ping{})
	n.Run()
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("healed links not delivering: %v", got)
	}
}

func TestOverlappingPartitionsRefcount(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	got := 0
	n.Register("c", func(e transport.Envelope) { got++ })
	// Two cuts share the a<->c link; healing one must keep it blocked.
	n.Partition([]transport.NodeID{"a"}, []transport.NodeID{"b", "c"})
	n.Partition([]transport.NodeID{"a"}, []transport.NodeID{"c", "d"})
	n.Heal([]transport.NodeID{"a"}, []transport.NodeID{"b", "c"})
	n.Send("a", "c", ping{})
	n.Run()
	if got != 0 {
		t.Fatal("link healed while a second cut still covers it")
	}
	n.Heal([]transport.NodeID{"a"}, []transport.NodeID{"c", "d"})
	n.Send("a", "c", ping{})
	n.Run()
	if got != 1 {
		t.Fatal("link still blocked after every covering cut healed")
	}
}

func TestDropCountersDistinguishCauses(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond), DropProb: 1, Seed: 4})
	n.Register("b", func(e transport.Envelope) {})
	n.Send("a", "b", ping{}) // probabilistic drop
	n.Run()
	n.SetDropProb(0)
	n.Fail("b")
	n.Send("a", "b", ping{}) // failed-endpoint drop (at delivery)
	n.Run()
	n.Recover("b")
	n.Partition([]transport.NodeID{"a"}, []transport.NodeID{"b"})
	n.Send("a", "b", ping{}) // partition drop
	n.Run()
	s := n.Stats()
	if s.DroppedProb != 1 || s.DroppedEndpoint != 1 || s.DroppedPartition != 1 {
		t.Fatalf("split counters = prob %d endpoint %d partition %d, want 1/1/1",
			s.DroppedProb, s.DroppedEndpoint, s.DroppedPartition)
	}
	if s.Dropped != 3 {
		t.Fatalf("Dropped total = %d, want 3", s.Dropped)
	}
}

func TestCrashPurgesQueuedEventsAndTimers(t *testing.T) {
	n := New(Options{Latency: fixedLatency(10 * time.Millisecond)})
	delivered, fired := 0, 0
	n.Register("b", func(e transport.Envelope) { delivered++ })
	n.Send("a", "b", ping{})                              // in flight at crash time
	n.After("b", 20*time.Millisecond, func() { fired++ }) // timer of the old incarnation
	n.At(5*time.Millisecond, func() { n.Crash("b") })
	n.Run()
	if delivered != 0 || fired != 0 {
		t.Fatalf("crashed incarnation still ran: delivered=%d fired=%d", delivered, fired)
	}
	// A restarted incarnation gets fresh deliveries and timers.
	n.Recover("b")
	n.Register("b", func(e transport.Envelope) { delivered++ })
	n.After("b", time.Millisecond, func() { fired++ })
	n.Send("a", "b", ping{})
	n.Run()
	if delivered != 1 || fired != 1 {
		t.Fatalf("restarted incarnation dead: delivered=%d fired=%d", delivered, fired)
	}
}

func TestFailKeepsTimersCrashDoesNot(t *testing.T) {
	// Fail models a partition: the node keeps computing.
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	fired := 0
	n.After("b", 10*time.Millisecond, func() { fired++ })
	n.Fail("b")
	n.Run()
	if fired != 1 {
		t.Fatalf("Fail suppressed local timer: fired=%d", fired)
	}
}

func TestLinkLatencyOverrideAndScale(t *testing.T) {
	n := New(Options{Latency: fixedLatency(10 * time.Millisecond)})
	start := n.Now()
	var at time.Duration
	n.Register("b", func(e transport.Envelope) { at = n.Now().Sub(start) })
	n.SetLinkLatency("a", "b", 70*time.Millisecond)
	n.Send("a", "b", ping{})
	n.Run()
	if at != 70*time.Millisecond {
		t.Fatalf("override delivery at %v, want 70ms", at)
	}
	n.SetLinkLatency("a", "b", 0) // clear
	n.ScaleLatency(3)
	start = n.Now()
	n.Send("a", "b", ping{})
	n.Run()
	if at != 30*time.Millisecond {
		t.Fatalf("scaled delivery at %v, want 30ms", at)
	}
}

func TestDriftStretchesTimers(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	n.SetDrift("slow", 1.0)  // timers take twice as long
	n.SetDrift("fast", -0.5) // timers fire in half the time
	start := n.Now()
	var slowAt, fastAt time.Duration
	n.After("slow", 10*time.Millisecond, func() { slowAt = n.Now().Sub(start) })
	n.After("fast", 10*time.Millisecond, func() { fastAt = n.Now().Sub(start) })
	n.Run()
	if slowAt != 20*time.Millisecond || fastAt != 5*time.Millisecond {
		t.Fatalf("drifted timers at %v/%v, want 20ms/5ms", slowAt, fastAt)
	}
}

// TestChaosDeterministicUnderSeed drives every fault primitive at
// once and demands an identical event history for the same seed.
func TestChaosDeterministicUnderSeed(t *testing.T) {
	run := func() (delivered int64, s Stats) {
		n := New(Options{
			Latency:       fixedLatency(5 * time.Millisecond),
			JitterFrac:    0.2,
			DropProb:      0.2,
			DupProb:       0.2,
			ReorderProb:   0.3,
			ReorderWindow: 20 * time.Millisecond,
			Seed:          42,
		})
		for _, id := range []transport.NodeID{"a", "b", "c"} {
			id := id
			n.Register(id, func(e transport.Envelope) {
				p := e.Msg.(ping)
				if p.Seq < 40 {
					n.Send(id, e.From, ping{Seq: p.Seq + 1})
				}
			})
		}
		n.SetDrift("c", 0.25)
		n.At(10*time.Millisecond, func() { n.Partition([]transport.NodeID{"a"}, []transport.NodeID{"c"}) })
		n.At(40*time.Millisecond, func() { n.HealAll() })
		n.At(20*time.Millisecond, func() { n.Crash("b") })
		n.At(50*time.Millisecond, func() {
			n.Recover("b")
			n.Register("b", func(e transport.Envelope) {})
		})
		n.Send("a", "b", ping{})
		n.Send("b", "c", ping{})
		n.Send("c", "a", ping{})
		n.Run()
		return n.Stats().Delivered, n.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if d1 == 0 {
		t.Fatal("nothing delivered")
	}
}
