package core

import (
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// feedWorld is one storage node plus a fake subscriber on the
// deterministic simulator.
type feedWorld struct {
	net  *simnet.Net
	node *StorageNode
	cl   *topology.Cluster

	msgs []MsgVisibilityFeed
}

func newFeedWorld(t *testing.T) *feedWorld {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 0, ClientDC: -1})
	net := simnet.New(simnet.Options{Seed: 1})
	cfg := Defaults(ModeMDCC)
	cfg.Constraints = []record.Constraint{record.MinBound("units", 0)}
	w := &feedWorld{net: net, cl: cl}
	// Only the us-west replica matters; the fake subscriber collects
	// its stream.
	for _, n := range cl.Storage {
		node := NewStorageNode(n.ID, n.DC, net, cl, cfg, kv.NewMemory())
		if n.DC == topology.USWest {
			w.node = node
		}
	}
	net.Register("sub", func(env transport.Envelope) {
		if m, ok := env.Msg.(MsgVisibilityFeed); ok {
			w.msgs = append(w.msgs, m)
		}
	})
	return w
}

func (w *feedWorld) subscribe(epoch uint64, catchUp ...record.Key) {
	w.net.At(0, func() {
		w.net.Send("sub", w.node.ID(), MsgVisibilitySub{Epoch: epoch, CatchUp: catchUp})
	})
	w.net.RunFor(100 * time.Millisecond)
}

// TestFeedHelloAndVisibilityStream pins the publisher basics: the
// hello answers with seq 1 and the requested catch-up state; each
// dispatch that changes committed state produces one in-order feed
// message whose items carry value, version and escrow.
func TestFeedHelloAndVisibilityStream(t *testing.T) {
	w := newFeedWorld(t)
	key := record.Key("stock/feed")
	_ = w.node.Store().Put(key, record.Value{Attrs: map[string]int64{"units": 10}}, 1)
	w.subscribe(7, key)

	if len(w.msgs) != 1 {
		t.Fatalf("hello count = %d", len(w.msgs))
	}
	hello := w.msgs[0]
	if hello.Epoch != 7 || hello.Seq != 1 || len(hello.Items) != 1 {
		t.Fatalf("hello = %+v", hello)
	}
	it := hello.Items[0]
	if it.Key != key || it.Version != 1 || !it.Exists || it.Value.Attr("units") != 10 {
		t.Fatalf("catch-up item = %+v", it)
	}
	if !it.Escrow.Valid || it.Escrow.Attrs[0].Base != 10 {
		t.Fatalf("catch-up escrow = %+v", it.Escrow)
	}

	// A committed option's visibility dirties the key and flushes one
	// in-order message at dispatch end.
	opt := Option{Tx: "t#1", Coord: "", Update: record.Commutative(key, map[string]int64{"units": -3})}
	w.net.At(0, func() {
		w.net.Send("driver", w.node.ID(), MsgProposeFast{Opt: opt})
	})
	w.net.RunFor(100 * time.Millisecond)
	w.net.At(0, func() {
		w.net.Send("driver", w.node.ID(), MsgVisibility{Opt: opt, Commit: true})
	})
	w.net.RunFor(100 * time.Millisecond)

	last := w.msgs[len(w.msgs)-1]
	if last.Seq != hello.Seq+uint64(len(w.msgs)-1) {
		t.Fatalf("stream not contiguous: %+v", w.msgs)
	}
	found := false
	for _, m := range w.msgs[1:] {
		for _, it := range m.Items {
			if it.Key == key && it.Version == 2 && it.Value.Attr("units") == 7 {
				found = true
				if !it.Escrow.Valid {
					t.Fatalf("feed item without escrow under constraints: %+v", it)
				}
			}
		}
	}
	if !found {
		t.Fatalf("committed visibility never reached the feed: %+v", w.msgs)
	}
}

// TestFeedKeepAliveBoundsSilence: with no traffic at all, the
// publisher still proves the stream alive at the keepalive cadence —
// the property the gateway's staleness bound (FeedTTL) rests on.
func TestFeedKeepAliveBoundsSilence(t *testing.T) {
	w := newFeedWorld(t)
	w.subscribe(1)
	n0 := len(w.msgs)
	w.net.RunFor(3 * time.Second) // 6 keepalive intervals, zero traffic
	got := len(w.msgs) - n0
	if got < 4 {
		t.Fatalf("only %d keepalives in 3s of silence (interval 500ms)", got)
	}
	for i := 1; i < len(w.msgs); i++ {
		if w.msgs[i].Seq != w.msgs[i-1].Seq+1 {
			t.Fatalf("keepalive stream not contiguous: %+v", w.msgs)
		}
	}
}

// TestFeedDuplicateSubKeepsStreamContiguous pins the retransmission
// hazard: a duplicated subscription (same epoch) must not reset the
// sequence numbering — renumbering would let a later real item land
// on an already-consumed sequence number and be dropped as stale,
// which is silent staleness the sequence check exists to prevent. The
// duplicate is answered in-stream with fresh catch-up instead.
func TestFeedDuplicateSubKeepsStreamContiguous(t *testing.T) {
	w := newFeedWorld(t)
	key := record.Key("stock/dup")
	_ = w.node.Store().Put(key, record.Value{Attrs: map[string]int64{"units": 5}}, 1)
	w.subscribe(3, key)
	w.subscribe(3, key) // retransmitted duplicate
	if len(w.msgs) != 2 {
		t.Fatalf("msgs = %+v", w.msgs)
	}
	if w.msgs[0].Seq != 1 || w.msgs[1].Seq != 2 {
		t.Fatalf("duplicate sub reset the stream: seqs %d,%d", w.msgs[0].Seq, w.msgs[1].Seq)
	}
	if len(w.msgs[1].Items) != 1 || w.msgs[1].Items[0].Version != 1 {
		t.Fatalf("duplicate sub not answered with catch-up: %+v", w.msgs[1])
	}
	// A NEW epoch (real resubscription) does restart the numbering.
	w.subscribe(4, key)
	last := w.msgs[len(w.msgs)-1]
	if last.Epoch != 4 || last.Seq != 1 {
		t.Fatalf("new-epoch hello = %+v", last)
	}
	// A delayed OLDER-epoch subscription (epochs only ever increase on
	// the subscriber) must be ignored entirely: regressing would wipe
	// the live epoch's interest set and renumber its stream into
	// discard-as-stale territory, silencing the feed until TTL.
	n := len(w.msgs)
	w.subscribe(3, key)
	if len(w.msgs) != n {
		t.Fatalf("stale-epoch subscription was answered: %+v", w.msgs[len(w.msgs)-1])
	}
	w.subscribe(4, key) // the live epoch still serves
	if last := w.msgs[len(w.msgs)-1]; last.Epoch != 4 || last.Seq != 2 {
		t.Fatalf("live epoch disturbed by the stale sub: %+v", last)
	}
}

// TestFeedStreamsOnlyInterestKeys pins the cost model: the feed
// streams the subscriber's registered working set and nothing else —
// a write-only workload (empty interest) costs keepalives only, and
// an in-stream interest-add starts coverage for exactly that key.
func TestFeedStreamsOnlyInterestKeys(t *testing.T) {
	w := newFeedWorld(t)
	hot := record.Key("stock/hot")
	cold := record.Key("stock/cold")
	_ = w.node.Store().Put(hot, record.Value{Attrs: map[string]int64{"units": 10}}, 1)
	_ = w.node.Store().Put(cold, record.Value{Attrs: map[string]int64{"units": 10}}, 1)
	w.subscribe(1, hot) // interest: hot only

	commitVia := func(key record.Key, tx string) {
		opt := Option{Tx: TxID(tx), Update: record.Commutative(key, map[string]int64{"units": -1})}
		w.net.At(0, func() { w.net.Send("driver", w.node.ID(), MsgProposeFast{Opt: opt}) })
		w.net.RunFor(50 * time.Millisecond)
		w.net.At(0, func() { w.net.Send("driver", w.node.ID(), MsgVisibility{Opt: opt, Commit: true}) })
		w.net.RunFor(50 * time.Millisecond)
	}
	commitVia(cold, "t#cold")
	commitVia(hot, "t#hot")
	sawCold, sawHot := false, false
	for _, m := range w.msgs {
		for _, it := range m.Items {
			if it.Key == cold {
				sawCold = true
			}
			if it.Key == hot && it.Version == 2 {
				sawHot = true
			}
		}
	}
	if sawCold {
		t.Fatalf("non-interest key streamed: %+v", w.msgs)
	}
	if !sawHot {
		t.Fatalf("interest key not streamed: %+v", w.msgs)
	}
	// In-stream interest-add (same epoch) starts coverage for cold.
	w.subscribe(1, cold)
	commitVia(cold, "t#cold2")
	sawCold = false
	for _, m := range w.msgs {
		for _, it := range m.Items {
			if it.Key == cold && it.Version == 3 {
				sawCold = true
			}
		}
	}
	if !sawCold {
		t.Fatalf("interest-added key not streamed: %+v", w.msgs)
	}
}

// TestFeedInterestCapRejectsWithoutEcho pins the capacity edge: a
// key arriving past the interest cap must be neither registered nor
// echoed — the echo is the subscriber's proof of stream coverage, so
// echoing an unregistered key would license serving a memory copy the
// stream will never refresh (silent unbounded staleness).
func TestFeedInterestCapRejectsWithoutEcho(t *testing.T) {
	old := feedInterestMax
	feedInterestMax = 2
	defer func() { feedInterestMax = old }()

	w := newFeedWorld(t)
	for _, k := range []record.Key{"cap/a", "cap/b", "cap/c"} {
		_ = w.node.Store().Put(k, record.Value{Attrs: map[string]int64{"units": 1}}, 1)
	}
	w.subscribe(1, "cap/a", "cap/b")
	w.subscribe(1, "cap/c") // over the cap: must be rejected
	last := w.msgs[len(w.msgs)-1]
	for _, it := range last.Items {
		if it.Key == "cap/c" {
			t.Fatalf("over-cap key echoed (would be confirmed but never streamed): %+v", last)
		}
	}
	// Registered keys keep full service, including re-echo on a
	// duplicate add.
	w.subscribe(1, "cap/a")
	last = w.msgs[len(w.msgs)-1]
	if len(last.Items) != 1 || last.Items[0].Key != "cap/a" {
		t.Fatalf("registered key not re-echoed at the cap: %+v", last)
	}
}

// TestFeedMessagesSurviveTransports ships a feed message (and a
// floored gateway read request) through gob the way TCP deployments
// do, asserting every field survives.
func TestFeedMessagesSurviveTransports(t *testing.T) {
	payload := func() transport.Message {
		return transport.Batch{Items: []transport.Envelope{
			{From: "store", To: "gw", Msg: MsgVisibilityFeed{
				Epoch: 9, Seq: 42, Boot: 1234,
				Items: []FeedItem{{
					Key:     "stock/1",
					Value:   record.Value{Attrs: map[string]int64{"units": 13}},
					Version: 77,
					Exists:  true,
					Escrow: EscrowSnap{Valid: true, Version: 77,
						Attrs: []AttrEscrow{{Attr: "units", Base: 13, PendDown: -2, PendUp: 1}}},
				}},
			}},
			{From: "gw", To: "store", Msg: MsgVisibilitySub{Epoch: 9, CatchUp: []record.Key{"stock/1", "stock/2"}}},
		}}
	}
	verify := func(t *testing.T, env transport.Envelope) {
		t.Helper()
		b, ok := env.Msg.(transport.Batch)
		if !ok {
			t.Fatalf("expected Batch, got %T", env.Msg)
		}
		feed := b.Items[0].Msg.(MsgVisibilityFeed)
		if feed.Epoch != 9 || feed.Seq != 42 || feed.Boot != 1234 || len(feed.Items) != 1 {
			t.Fatalf("feed mangled: %+v", feed)
		}
		it := feed.Items[0]
		if it.Key != "stock/1" || it.Version != 77 || !it.Exists ||
			it.Value.Attr("units") != 13 || !it.Escrow.Valid || it.Escrow.Attrs[0].PendDown != -2 {
			t.Fatalf("feed item mangled: %+v", it)
		}
		sub := b.Items[1].Msg.(MsgVisibilitySub)
		if sub.Epoch != 9 || len(sub.CatchUp) != 2 || sub.CatchUp[1] != "stock/2" {
			t.Fatalf("sub mangled: %+v", sub)
		}
	}

	t.Run("tcp", func(t *testing.T) {
		recv := transport.NewTCP(nil)
		addr, err := recv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		ch := make(chan transport.Envelope, 1)
		recv.Register("gw", func(env transport.Envelope) { ch <- env })
		send := transport.NewTCP(map[transport.NodeID]string{"gw": addr})
		defer send.Close()
		send.Send("store", "gw", payload())
		select {
		case env := <-ch:
			verify(t, env)
		case <-time.After(5 * time.Second):
			t.Fatal("nothing delivered over TCP")
		}
	})

	t.Run("local", func(t *testing.T) {
		net := transport.NewLocal(nil)
		defer net.Close()
		ch := make(chan transport.Envelope, 1)
		net.Register("gw", func(env transport.Envelope) { ch <- env })
		net.Register("store", func(transport.Envelope) {})
		net.Send("store", "gw", payload())
		select {
		case env := <-ch:
			verify(t, env)
		case <-time.After(5 * time.Second):
			t.Fatal("nothing delivered over Local")
		}
	})
}
