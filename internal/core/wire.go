package core

import (
	"fmt"
	"slices"

	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// Hand-rolled binary wire codecs for the hot protocol messages (see
// internal/transport/codec.go for the framing and the versioning
// rule). The traffic that dominates the wire — fast-path proposals
// and votes, classic Phase2a/2b, visibility, and the gateway read
// tier's feed — encodes by hand; cold messages (Phase1a/1b, recovery,
// anti-entropy) stay on the gob fallback, which also keeps
// RegisterMessage the only obligation for new message types.
//
// Decode-side allocation discipline: every bounded-cardinality string
// on the wire — record keys, node ids, ballot leaders, attribute and
// lane names — decodes through transport's intern table, so in steady
// state only genuinely new data allocates. Transaction ids are the
// deliberate exception (unbounded cardinality, would churn the table).
// The gate is TestWireDecodeSteadyStateAllocs.
//
// Field order is frozen per transport.WireVersion. Conditional fields
// are guarded by the same booleans the consumers check (EscrowSnap
// encodes its contents only when Valid; Phase2a's base only under
// HasBase), so a zero guard with stray populated fields — which no
// producer emits — would not round-trip.

// Core's wire tag block (16..47; see codec.go for the space).
const (
	tagMsgRead uint8 = 16 + iota
	tagMsgReadReply
	tagMsgProposeFast
	tagMsgProposeBatch
	tagMsgVote
	tagMsgVoteBatch
	tagMsgLearned
	tagMsgVisibility
	tagMsgVisibilityBatch
	tagMsgPhase2a
	tagMsgPhase2b
	tagMsgVisibilitySub
	tagMsgVisibilityFeed
)

// ---- shared sub-encoders ----

// appendSortedInt64Map encodes a string→int64 map sorted by key so
// equal maps produce identical bytes (golden vectors and
// cross-replica frame diffing depend on it). The name scratch stays
// on the stack for the typical handful of attributes, keeping the
// encode path allocation-free.
func appendSortedInt64Map(b []byte, m map[string]int64) []byte {
	b = transport.AppendUvarint(b, uint64(len(m)))
	if len(m) == 0 {
		return b
	}
	var arr [16]string
	names := arr[:0]
	if len(m) > len(arr) {
		names = make([]string, 0, len(m))
	}
	for k := range m {
		names = append(names, k)
	}
	slices.Sort(names)
	for _, k := range names {
		b = transport.AppendString(b, k)
		b = transport.AppendVarint(b, m[k])
	}
	return b
}

// appendValue encodes a record.Value.
func appendValue(b []byte, v record.Value) []byte {
	b = appendSortedInt64Map(b, v.Attrs)
	b = transport.AppendBytes(b, v.Blob)
	return transport.AppendBool(b, v.Tombstone)
}

func readValue(r *transport.WireReader) record.Value {
	var v record.Value
	n := r.Uvarint()
	if n > uint64(r.Len()) {
		return v // reader is latched as corrupt by the next read
	}
	if n > 0 {
		v.Attrs = make(map[string]int64, n)
		for i := uint64(0); i < n; i++ {
			k := r.InternString()
			v.Attrs[k] = r.Varint()
		}
	}
	v.Blob = r.Bytes()
	v.Tombstone = r.Bool()
	return v
}

// appendDeltas encodes a commutative update's delta map, sorted.
func appendDeltas(b []byte, deltas map[string]int64) []byte {
	return appendSortedInt64Map(b, deltas)
}

func readDeltas(r *transport.WireReader) map[string]int64 {
	n := r.Uvarint()
	if n == 0 || n > uint64(r.Len()) {
		return nil
	}
	m := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		k := r.InternString()
		m[k] = r.Varint()
	}
	return m
}

// AppendValueWire encodes one record.Value (exported for the gateway
// RPC codec, which ships read replies).
func AppendValueWire(b []byte, v record.Value) []byte { return appendValue(b, v) }

// ReadValueWire decodes one record.Value.
func ReadValueWire(r *transport.WireReader) record.Value { return readValue(r) }

// AppendUpdateWire encodes one record.Update (exported for the
// gateway RPC codec, which ships client write-sets).
func AppendUpdateWire(b []byte, u record.Update) []byte {
	b = append(b, uint8(u.Kind))
	b = transport.AppendString(b, string(u.Key))
	switch u.Kind {
	case record.KindPhysical:
		b = transport.AppendUvarint(b, uint64(u.ReadVersion))
		b = appendValue(b, u.NewValue)
	case record.KindCommutative:
		b = appendDeltas(b, u.Deltas)
		b = transport.AppendUvarint(b, uint64(u.Merged))
	case record.KindReadCheck:
		b = transport.AppendUvarint(b, uint64(u.ReadVersion))
	}
	return b
}

// ReadUpdateWire decodes one record.Update.
func ReadUpdateWire(r *transport.WireReader) record.Update {
	var u record.Update
	u.Kind = record.UpdateKind(r.Byte())
	u.Key = record.Key(r.InternString())
	switch u.Kind {
	case record.KindPhysical:
		u.ReadVersion = record.Version(r.Uvarint())
		u.NewValue = readValue(r)
	case record.KindCommutative:
		u.Deltas = readDeltas(r)
		u.Merged = int(r.Uvarint())
	case record.KindReadCheck:
		u.ReadVersion = record.Version(r.Uvarint())
	}
	return u
}

func appendOption(b []byte, o Option) []byte {
	b = transport.AppendString(b, string(o.Tx))
	b = transport.AppendString(b, string(o.Coord))
	b = AppendUpdateWire(b, o.Update)
	b = transport.AppendUvarint(b, uint64(len(o.WriteSet)))
	for _, k := range o.WriteSet {
		b = transport.AppendString(b, string(k))
	}
	b = transport.AppendUvarint(b, o.KeySeq)
	b = transport.AppendUvarint(b, uint64(len(o.WriteSeqs)))
	for _, s := range o.WriteSeqs {
		b = transport.AppendUvarint(b, s)
	}
	return b
}

func readOption(r *transport.WireReader) Option {
	var o Option
	o.Tx = TxID(r.String())
	o.Coord = transport.NodeID(r.InternString())
	o.Update = ReadUpdateWire(r)
	if n := r.Uvarint(); n > 0 && n <= uint64(r.Len()) {
		o.WriteSet = make([]record.Key, 0, n)
		for i := uint64(0); i < n; i++ {
			o.WriteSet = append(o.WriteSet, record.Key(r.InternString()))
		}
	}
	o.KeySeq = r.Uvarint()
	if n := r.Uvarint(); n > 0 && n <= uint64(r.Len()) {
		o.WriteSeqs = make([]uint64, 0, n)
		for i := uint64(0); i < n; i++ {
			o.WriteSeqs = append(o.WriteSeqs, r.Uvarint())
		}
	}
	return o
}

func appendBallot(b []byte, bal paxos.Ballot) []byte {
	b = transport.AppendUvarint(b, bal.N)
	b = transport.AppendBool(b, bal.Fast)
	return transport.AppendString(b, bal.Leader)
}

func readBallot(r *transport.WireReader) paxos.Ballot {
	var bal paxos.Ballot
	bal.N = r.Uvarint()
	bal.Fast = r.Bool()
	bal.Leader = r.InternString()
	return bal
}

func appendEscrow(b []byte, e EscrowSnap) []byte {
	b = transport.AppendBool(b, e.Valid)
	if !e.Valid {
		return b
	}
	b = transport.AppendUvarint(b, uint64(e.Version))
	b = transport.AppendUvarint(b, uint64(e.Contenders))
	b = transport.AppendUvarint(b, uint64(len(e.Attrs)))
	for _, a := range e.Attrs {
		b = transport.AppendString(b, a.Attr)
		b = transport.AppendVarint(b, a.Base)
		b = transport.AppendVarint(b, a.PendDown)
		b = transport.AppendVarint(b, a.PendUp)
	}
	return b
}

func readEscrow(r *transport.WireReader) EscrowSnap {
	var e EscrowSnap
	e.Valid = r.Bool()
	if !e.Valid {
		return e
	}
	e.Version = record.Version(r.Uvarint())
	e.Contenders = int(r.Uvarint())
	if n := r.Uvarint(); n > 0 && n <= uint64(r.Len()) {
		e.Attrs = make([]AttrEscrow, 0, n)
		for i := uint64(0); i < n; i++ {
			e.Attrs = append(e.Attrs, AttrEscrow{
				Attr: r.InternString(), Base: r.Varint(),
				PendDown: r.Varint(), PendUp: r.Varint(),
			})
		}
	}
	return e
}

func appendRanges(b []byte, rs []SeqRange) []byte {
	b = transport.AppendUvarint(b, uint64(len(rs)))
	for _, sr := range rs {
		b = transport.AppendUvarint(b, sr.Lo)
		b = transport.AppendUvarint(b, sr.Hi)
	}
	return b
}

func readRanges(r *transport.WireReader) []SeqRange {
	n := r.Uvarint()
	if n == 0 || n > uint64(r.Len()) {
		return nil
	}
	rs := make([]SeqRange, 0, n)
	for i := uint64(0); i < n; i++ {
		rs = append(rs, SeqRange{Lo: r.Uvarint(), Hi: r.Uvarint()})
	}
	return rs
}

func appendLineage(b []byte, s LineageSummary) []byte {
	b = transport.AppendUvarint(b, uint64(len(s.Lanes)))
	for _, l := range s.Lanes {
		b = transport.AppendString(b, l.Lane)
		b = appendRanges(b, l.Done)
		b = appendRanges(b, l.Rejected)
	}
	b = transport.AppendBool(b, s.Deltas)
	return transport.AppendBool(b, s.Physical)
}

func readLineage(r *transport.WireReader) LineageSummary {
	var s LineageSummary
	if n := r.Uvarint(); n > 0 && n <= uint64(r.Len()) {
		s.Lanes = make([]LaneLineage, 0, n)
		for i := uint64(0); i < n; i++ {
			s.Lanes = append(s.Lanes, LaneLineage{
				Lane: r.InternString(), Done: readRanges(r), Rejected: readRanges(r),
			})
		}
	}
	s.Deltas = r.Bool()
	s.Physical = r.Bool()
	return s
}

// Vote flags byte.
const (
	voteFlagForwarded  = 1 << 0
	voteFlagWrongGroup = 1 << 1
)

func appendVote(b []byte, v MsgVote) []byte {
	b = transport.AppendString(b, string(v.OptID.Tx))
	b = transport.AppendString(b, string(v.OptID.Key))
	b = appendBallot(b, v.Ballot)
	b = append(b, uint8(v.Decision), uint8(v.Reason))
	var flags uint8
	if v.Forwarded {
		flags |= voteFlagForwarded
	}
	if v.WrongGroup {
		flags |= voteFlagWrongGroup
	}
	b = append(b, flags)
	b = transport.AppendString(b, string(v.Leader))
	return appendEscrow(b, v.Escrow)
}

func readVote(r *transport.WireReader) MsgVote {
	var v MsgVote
	v.OptID.Tx = TxID(r.String())
	v.OptID.Key = record.Key(r.InternString())
	v.Ballot = readBallot(r)
	v.Decision = Decision(r.Byte())
	v.Reason = RejectReason(r.Byte())
	flags := r.Byte()
	v.Forwarded = flags&voteFlagForwarded != 0
	v.WrongGroup = flags&voteFlagWrongGroup != 0
	v.Leader = transport.NodeID(r.InternString())
	v.Escrow = readEscrow(r)
	return v
}

func appendVoted(b []byte, v VotedOption) []byte {
	b = appendOption(b, v.Opt)
	return append(b, uint8(v.Decision), uint8(v.Reason))
}

func readVoted(r *transport.WireReader) VotedOption {
	var v VotedOption
	v.Opt = readOption(r)
	v.Decision = Decision(r.Byte())
	v.Reason = RejectReason(r.Byte())
	return v
}

func appendDecided(b []byte, d DecidedOption) []byte {
	b = transport.AppendString(b, string(d.ID.Tx))
	b = transport.AppendString(b, string(d.ID.Key))
	b = append(b, uint8(d.Decision))
	b = transport.AppendBool(b, d.HasOpt)
	if d.HasOpt {
		b = appendOption(b, d.Opt)
	}
	return b
}

func readDecided(r *transport.WireReader) DecidedOption {
	var d DecidedOption
	d.ID.Tx = TxID(r.String())
	d.ID.Key = record.Key(r.InternString())
	d.Decision = Decision(r.Byte())
	d.HasOpt = r.Bool()
	if d.HasOpt {
		d.Opt = readOption(r)
	}
	return d
}

func appendFeedItem(b []byte, it FeedItem) []byte {
	b = transport.AppendString(b, string(it.Key))
	b = appendValue(b, it.Value)
	b = transport.AppendUvarint(b, uint64(it.Version))
	b = transport.AppendBool(b, it.Exists)
	return appendEscrow(b, it.Escrow)
}

func readFeedItem(r *transport.WireReader) FeedItem {
	var it FeedItem
	it.Key = record.Key(r.InternString())
	it.Value = readValue(r)
	it.Version = record.Version(r.Uvarint())
	it.Exists = r.Bool()
	it.Escrow = readEscrow(r)
	return it
}

// ---- per-message WireMessage implementations ----

// WireTag implements transport.WireMessage.
func (m MsgRead) WireTag() uint8 { return tagMsgRead }

// AppendWire implements transport.WireMessage.
func (m MsgRead) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	return transport.AppendString(b, string(m.Key))
}

// WireTag implements transport.WireMessage.
func (m MsgReadReply) WireTag() uint8 { return tagMsgReadReply }

// AppendWire implements transport.WireMessage.
func (m MsgReadReply) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.ReqID)
	b = transport.AppendString(b, string(m.Key))
	b = appendValue(b, m.Value)
	b = transport.AppendUvarint(b, uint64(m.Version))
	b = transport.AppendBool(b, m.Exists)
	return appendEscrow(b, m.Escrow)
}

// WireTag implements transport.WireMessage.
func (m MsgProposeFast) WireTag() uint8 { return tagMsgProposeFast }

// AppendWire implements transport.WireMessage.
func (m MsgProposeFast) AppendWire(b []byte) []byte { return appendOption(b, m.Opt) }

// WireTag implements transport.WireMessage.
func (m MsgProposeBatch) WireTag() uint8 { return tagMsgProposeBatch }

// AppendWire implements transport.WireMessage.
func (m MsgProposeBatch) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, uint64(len(m.Opts)))
	for _, o := range m.Opts {
		b = appendOption(b, o)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgVote) WireTag() uint8 { return tagMsgVote }

// AppendWire implements transport.WireMessage.
func (m MsgVote) AppendWire(b []byte) []byte { return appendVote(b, m) }

// WireTag implements transport.WireMessage.
func (m MsgVoteBatch) WireTag() uint8 { return tagMsgVoteBatch }

// AppendWire implements transport.WireMessage.
func (m MsgVoteBatch) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, uint64(len(m.Votes)))
	for _, v := range m.Votes {
		b = appendVote(b, v)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgLearned) WireTag() uint8 { return tagMsgLearned }

// AppendWire implements transport.WireMessage.
func (m MsgLearned) AppendWire(b []byte) []byte {
	b = transport.AppendString(b, string(m.OptID.Tx))
	b = transport.AppendString(b, string(m.OptID.Key))
	b = append(b, uint8(m.Decision), uint8(m.Reason))
	return appendEscrow(b, m.Escrow)
}

// WireTag implements transport.WireMessage.
func (m MsgVisibility) WireTag() uint8 { return tagMsgVisibility }

// AppendWire implements transport.WireMessage.
func (m MsgVisibility) AppendWire(b []byte) []byte {
	b = appendOption(b, m.Opt)
	return transport.AppendBool(b, m.Commit)
}

// WireTag implements transport.WireMessage.
func (m MsgVisibilityBatch) WireTag() uint8 { return tagMsgVisibilityBatch }

// AppendWire implements transport.WireMessage.
func (m MsgVisibilityBatch) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendOption(b, it.Opt)
		b = transport.AppendBool(b, it.Commit)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgPhase2a) WireTag() uint8 { return tagMsgPhase2a }

// AppendWire implements transport.WireMessage.
func (m MsgPhase2a) AppendWire(b []byte) []byte {
	b = transport.AppendString(b, string(m.Key))
	b = appendBallot(b, m.Ballot)
	b = transport.AppendUvarint(b, m.Seq)
	b = transport.AppendUvarint(b, uint64(len(m.CStruct)))
	for _, v := range m.CStruct {
		b = appendVoted(b, v)
	}
	b = transport.AppendBool(b, m.HasBase)
	if m.HasBase {
		b = transport.AppendUvarint(b, uint64(m.BaseVersion))
		b = appendValue(b, m.BaseValue)
		b = transport.AppendBool(b, m.BaseExists)
		b = appendLineage(b, m.BaseLineage)
	}
	b = transport.AppendUvarint(b, uint64(len(m.LegacyDecided)))
	for _, d := range m.LegacyDecided {
		b = appendDecided(b, d)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgPhase2b) WireTag() uint8 { return tagMsgPhase2b }

// AppendWire implements transport.WireMessage.
func (m MsgPhase2b) AppendWire(b []byte) []byte {
	b = transport.AppendString(b, string(m.Key))
	b = appendBallot(b, m.Ballot)
	b = transport.AppendUvarint(b, m.Seq)
	b = transport.AppendBool(b, m.OK)
	if !m.OK {
		b = appendBallot(b, m.Promised)
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgVisibilitySub) WireTag() uint8 { return tagMsgVisibilitySub }

// AppendWire implements transport.WireMessage.
func (m MsgVisibilitySub) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Epoch)
	b = transport.AppendUvarint(b, uint64(len(m.CatchUp)))
	for _, k := range m.CatchUp {
		b = transport.AppendString(b, string(k))
	}
	return b
}

// WireTag implements transport.WireMessage.
func (m MsgVisibilityFeed) WireTag() uint8 { return tagMsgVisibilityFeed }

// AppendWire implements transport.WireMessage.
func (m MsgVisibilityFeed) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Epoch)
	b = transport.AppendUvarint(b, m.Seq)
	b = transport.AppendUvarint(b, m.Boot)
	b = transport.AppendUvarint(b, uint64(len(m.Items)))
	for _, it := range m.Items {
		b = appendFeedItem(b, it)
	}
	return b
}

// countGuard rejects a wire count that cannot fit in the remaining
// frame (each element costs at least one byte), so a corrupt length
// cannot drive a huge allocation before the decode fails.
func countGuard(r *transport.WireReader, n uint64, what string) error {
	if n > uint64(r.Len()) {
		return fmt.Errorf("core: wire %s count %d exceeds frame", what, n)
	}
	return nil
}

func init() {
	transport.RegisterWire(tagMsgRead, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgRead
		m.ReqID = r.Uvarint()
		m.Key = record.Key(r.InternString())
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgReadReply, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgReadReply
		m.ReqID = r.Uvarint()
		m.Key = record.Key(r.InternString())
		m.Value = readValue(r)
		m.Version = record.Version(r.Uvarint())
		m.Exists = r.Bool()
		m.Escrow = readEscrow(r)
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgProposeFast, func(r *transport.WireReader) (transport.Message, error) {
		return MsgProposeFast{Opt: readOption(r)}, r.Err()
	})
	transport.RegisterWire(tagMsgProposeBatch, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgProposeBatch
		n := r.Uvarint()
		if err := countGuard(r, n, "propose"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.Opts = make([]Option, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Opts = append(m.Opts, readOption(r))
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgVote, func(r *transport.WireReader) (transport.Message, error) {
		return readVote(r), r.Err()
	})
	transport.RegisterWire(tagMsgVoteBatch, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgVoteBatch
		n := r.Uvarint()
		if err := countGuard(r, n, "vote"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.Votes = make([]MsgVote, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Votes = append(m.Votes, readVote(r))
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgLearned, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgLearned
		m.OptID.Tx = TxID(r.String())
		m.OptID.Key = record.Key(r.InternString())
		m.Decision = Decision(r.Byte())
		m.Reason = RejectReason(r.Byte())
		m.Escrow = readEscrow(r)
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgVisibility, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgVisibility
		m.Opt = readOption(r)
		m.Commit = r.Bool()
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgVisibilityBatch, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgVisibilityBatch
		n := r.Uvarint()
		if err := countGuard(r, n, "visibility"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.Items = make([]MsgVisibility, 0, n)
			for i := uint64(0); i < n; i++ {
				var it MsgVisibility
				it.Opt = readOption(r)
				it.Commit = r.Bool()
				m.Items = append(m.Items, it)
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgPhase2a, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgPhase2a
		m.Key = record.Key(r.InternString())
		m.Ballot = readBallot(r)
		m.Seq = r.Uvarint()
		n := r.Uvarint()
		if err := countGuard(r, n, "cstruct"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.CStruct = make([]VotedOption, 0, n)
			for i := uint64(0); i < n; i++ {
				m.CStruct = append(m.CStruct, readVoted(r))
			}
		}
		m.HasBase = r.Bool()
		if m.HasBase {
			m.BaseVersion = record.Version(r.Uvarint())
			m.BaseValue = readValue(r)
			m.BaseExists = r.Bool()
			m.BaseLineage = readLineage(r)
		}
		n = r.Uvarint()
		if err := countGuard(r, n, "decided"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.LegacyDecided = make([]DecidedOption, 0, n)
			for i := uint64(0); i < n; i++ {
				m.LegacyDecided = append(m.LegacyDecided, readDecided(r))
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgPhase2b, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgPhase2b
		m.Key = record.Key(r.InternString())
		m.Ballot = readBallot(r)
		m.Seq = r.Uvarint()
		m.OK = r.Bool()
		if !m.OK {
			m.Promised = readBallot(r)
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgVisibilitySub, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgVisibilitySub
		m.Epoch = r.Uvarint()
		n := r.Uvarint()
		if err := countGuard(r, n, "catchup"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.CatchUp = make([]record.Key, 0, n)
			for i := uint64(0); i < n; i++ {
				m.CatchUp = append(m.CatchUp, record.Key(r.InternString()))
			}
		}
		return m, r.Err()
	})
	transport.RegisterWire(tagMsgVisibilityFeed, func(r *transport.WireReader) (transport.Message, error) {
		var m MsgVisibilityFeed
		m.Epoch = r.Uvarint()
		m.Seq = r.Uvarint()
		m.Boot = r.Uvarint()
		n := r.Uvarint()
		if err := countGuard(r, n, "feed"); err != nil {
			return nil, err
		}
		if n > 0 {
			m.Items = make([]FeedItem, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Items = append(m.Items, readFeedItem(r))
			}
		}
		return m, r.Err()
	})
}
