package bench

import (
	"math/rand"
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/mtx"
	"mdcc/internal/topology"
)

// syntheticWorkload issues transactions that "complete" after a fixed
// simulated delay via a timer — no protocol involved — so the runner's
// accounting can be verified exactly.
type syntheticWorkload struct {
	delay  time.Duration
	write  bool
	commit bool
	world  *World
}

func (s *syntheticWorkload) Name() string                  { return "synthetic" }
func (s *syntheticWorkload) Preload(*rand.Rand) []kv.Entry { return nil }
func (s *syntheticWorkload) Next(client int, dc topology.DC, rng *rand.Rand) mtx.Txn {
	return func(c mtx.Client, rng *rand.Rand, done func(mtx.TxnResult)) {
		id := s.world.Cluster.Clients[client].ID
		s.world.Net.After(id, s.delay, func() {
			done(mtx.TxnResult{Committed: s.commit, Write: s.write})
		})
	}
}

func TestRunAccounting(t *testing.T) {
	w := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 1, Clients: 4, ClientDC: -1, Seed: 1})
	wl := &syntheticWorkload{delay: 100 * time.Millisecond, write: true, commit: true, world: w}
	res := Run(w, wl, RunConfig{Warmup: time.Second, Measure: 10 * time.Second})
	// Each client completes one txn per 100ms: 4 clients × 10s = 400
	// commits in the window (±1 per client boundary effects).
	if res.Commits < 390 || res.Commits > 404 {
		t.Fatalf("commits = %d, want ≈400", res.Commits)
	}
	if res.Aborts != 0 || res.Reads != 0 {
		t.Fatalf("unexpected aborts/reads: %d/%d", res.Aborts, res.Reads)
	}
	if res.WriteTPS < 39 || res.WriteTPS > 41 {
		t.Fatalf("WriteTPS = %.1f, want ≈40", res.WriteTPS)
	}
	med := res.WriteLat.Median()
	if med < 99 || med > 101 {
		t.Fatalf("median latency = %.1f, want 100", med)
	}
}

func TestRunSeparatesReadsAndAborts(t *testing.T) {
	w := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 1, Clients: 2, ClientDC: -1, Seed: 2})
	wl := &syntheticWorkload{delay: 50 * time.Millisecond, write: true, commit: false, world: w}
	res := Run(w, wl, RunConfig{Warmup: time.Second, Measure: 5 * time.Second})
	if res.Commits != 0 || res.Aborts == 0 {
		t.Fatalf("abort accounting wrong: %d commits %d aborts", res.Commits, res.Aborts)
	}
	if res.AbortLat.N() != int(res.Aborts) {
		t.Fatalf("abort latencies %d != aborts %d", res.AbortLat.N(), res.Aborts)
	}

	w2 := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 1, Clients: 2, ClientDC: -1, Seed: 3})
	rl := &syntheticWorkload{delay: 50 * time.Millisecond, write: false, commit: true, world: w2}
	res2 := Run(w2, rl, RunConfig{Warmup: time.Second, Measure: 5 * time.Second})
	if res2.Reads == 0 || res2.Commits != 0 {
		t.Fatalf("read accounting wrong: %d reads %d commits", res2.Reads, res2.Commits)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	w := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 1, Clients: 1, ClientDC: -1, Seed: 4})
	wl := &syntheticWorkload{delay: time.Second, write: true, commit: true, world: w}
	res := Run(w, wl, RunConfig{Warmup: 5 * time.Second, Measure: 10 * time.Second})
	// 15s total at 1 txn/s: ~5 warmup txns excluded, ~10 counted.
	if res.Commits < 9 || res.Commits > 11 {
		t.Fatalf("commits = %d, want ≈10 (warmup excluded)", res.Commits)
	}
	// The series covers the whole run including warmup.
	pts := res.Series.Points()
	if len(pts) == 0 || pts[0].Start >= 5*time.Second {
		t.Fatalf("series should include warmup buckets: %+v", pts)
	}
}

func TestRunEventFires(t *testing.T) {
	w := NewWorld(Options{Protocol: ProtoMDCC, NodesPerDC: 1, Clients: 1, ClientDC: -1, Seed: 5})
	wl := &syntheticWorkload{delay: 100 * time.Millisecond, write: true, commit: true, world: w}
	fired := false
	Run(w, wl, RunConfig{
		Warmup:  time.Second,
		Measure: 3 * time.Second,
		Events:  []Event{{At: 2 * time.Second, Do: func(*World) { fired = true }}},
	})
	if !fired {
		t.Fatal("scheduled event never fired")
	}
}

func TestAllProtocolsAndQuorums(t *testing.T) {
	// Construction sanity for every protocol (panics, wiring).
	for _, p := range append(AllProtocols(), ProtoFast, ProtoMulti) {
		w := NewWorld(Options{Protocol: p, NodesPerDC: 1, Clients: 2, ClientDC: -1, Seed: 6})
		if len(w.Clients) != 2 {
			t.Fatalf("%s: %d clients", p, len(w.Clients))
		}
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol should panic")
		}
	}()
	NewWorld(Options{Protocol: "nonsense", Clients: 1})
}
