package core

import (
	"sort"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// Dangling-transaction recovery (§3.2.3). An app-server can die after
// its options were accepted but before sending visibility, leaving
// outstanding options that block the records forever. Every option
// carries its transaction id and the full write-set key list, so any
// storage node can reconstruct the transaction: it asks the leader of
// every written key for the final decision of that transaction's
// option on that key (forcing a classic round if undecided), then
// commits iff every option was accepted, broadcasting the visibility
// the dead coordinator never sent.

// txRecovery tracks one in-flight reconstruction.
type txRecovery struct {
	tx        TxID
	keys      []record.Key
	seqs      map[record.Key]uint64 // lineage identities from the stuck option's WriteSeqs
	decisions map[record.Key]Decision
	opts      map[record.Key]Option
	hasOpt    map[record.Key]bool
	deadline  time.Time
}

// scheduleSweep arms the periodic stale-option scan.
func (n *StorageNode) scheduleSweep() {
	period := n.cfg.PendingTimeout / 2
	if period <= 0 {
		period = n.cfg.PendingTimeout
	}
	n.net.After(n.id, period, func() {
		if n.halted {
			return
		}
		n.sweepPending()
		n.scheduleSweep()
	})
}

// sweepPending starts recovery for every accepted option that has
// been outstanding longer than PendingTimeout.
func (n *StorageNode) sweepPending() {
	now := n.net.Now()
	n.nSweeps++
	// Deterministic scan order (map iteration would reorder recovery
	// sends between same-seed runs).
	keys := make([]record.Key, 0, len(n.recs))
	for k := range n.recs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var stale []Option
	for _, k := range keys {
		r := n.recs[k]
		n.compactDecided(k, r, true)
		// Release votes for options the lineage summary already knows
		// settled (the settle arrived via a base adoption, so no
		// visibility message ever pruned them): recovering those would
		// re-force a decision that is already final.
		live := r.votes[:0]
		for _, v := range r.votes {
			if v.Opt.KeySeq > 0 {
				if _, ok := r.summary.Decision(laneOf(v.Opt.Tx), v.Opt.KeySeq); ok {
					delete(r.votedAt, v.Opt.ID())
					continue
				}
			}
			live = append(live, v)
		}
		r.votes = live
		for _, v := range r.votes {
			if v.Decision != DecAccept {
				continue
			}
			at, ok := r.votedAt[v.Opt.ID()]
			if !ok || now.Sub(at) < n.cfg.PendingTimeout {
				continue
			}
			stale = append(stale, v.Opt)
		}
	}
	started := make(map[TxID]bool)
	for _, opt := range stale {
		if started[opt.Tx] || n.txRecoveryInFlight(opt.Tx) {
			continue
		}
		started[opt.Tx] = true
		n.startTxRecovery(opt)
	}
}

func (n *StorageNode) txRecoveryInFlight(tx TxID) bool {
	for _, rec := range n.recoveries {
		if rec.tx == tx {
			return true
		}
	}
	return false
}

// startTxRecovery reconstructs the transaction that owns opt.
func (n *StorageNode) startTxRecovery(opt Option) {
	keys := opt.WriteSet
	if len(keys) == 0 {
		keys = []record.Key{opt.Update.Key}
	}
	n.reqSeq++
	reqID := n.reqSeq
	rec := &txRecovery{
		tx:        opt.Tx,
		keys:      keys,
		seqs:      make(map[record.Key]uint64, len(keys)),
		decisions: make(map[record.Key]Decision, len(keys)),
		opts:      make(map[record.Key]Option, len(keys)),
		hasOpt:    make(map[record.Key]bool, len(keys)),
		deadline:  n.net.Now().Add(n.cfg.OptionTimeout),
	}
	n.recoveries[reqID] = rec
	if n.tr != nil {
		n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Tx: string(opt.Tx),
			Key: string(opt.Update.Key), Stage: trace.StageTxRecover, Arg: int64(len(keys))})
	}
	for i, k := range keys {
		m := MsgRecoverOpt{ReqID: reqID, Tx: opt.Tx, Key: k}
		// The stuck option carries its siblings' lineage identities
		// (WriteSeqs, parallel to WriteSet), so every per-key query
		// names its option exactly — leaders can then answer from
		// their summaries even after the decided-log entry aged out.
		if i < len(opt.WriteSeqs) {
			m.KeySeq = opt.WriteSeqs[i]
		}
		if k == opt.Update.Key {
			m.Opt, m.HasOpt = opt, true
			m.KeySeq = opt.KeySeq
		}
		rec.seqs[k] = m.KeySeq
		n.net.Send(n.id, n.leaderFor(k), m)
	}
	// Garbage-collect if the leaders never all answer; the sweep will
	// retry on the next pass.
	n.net.After(n.id, n.cfg.OptionTimeout, func() {
		delete(n.recoveries, reqID)
	})
}

// onRecoverOpt (leader side) forces and reports the decision for one
// transaction's option on one of this leader's records.
func (n *StorageNode) onRecoverOpt(from transport.NodeID, m MsgRecoverOpt) {
	id := OptionID{Tx: m.Tx, Key: m.Key}
	r := n.rs(m.Key)
	l := n.lr(m.Key)
	if e, ok := r.decided.entry(id); ok {
		n.net.Send(n.id, from, MsgOptDecided{
			ReqID: m.ReqID, Tx: m.Tx, Key: m.Key,
			Decision: e.Decision, Opt: e.Opt, HasOpt: e.HasOpt,
		})
		return
	}
	if e, ok := l.learned.entry(id); ok {
		n.net.Send(n.id, from, MsgOptDecided{
			ReqID: m.ReqID, Tx: m.Tx, Key: m.Key,
			Decision: e.Decision, Opt: e.Opt, HasOpt: e.HasOpt,
		})
		return
	}
	if m.KeySeq > 0 {
		// The lineage summary answers exactly, forever — even after
		// the decided-log entry was released. Contents are only ever
		// released once every replica settled the option, so an
		// accept answered without contents needs no re-broadcast
		// (every replica already applied it); the fiat path below
		// would instead re-force — and could contradict — a decision
		// that was already made.
		if d, ok := r.summary.Decision(laneOf(m.Tx), m.KeySeq); ok {
			n.net.Send(n.id, from, MsgOptDecided{
				ReqID: m.ReqID, Tx: m.Tx, Key: m.Key, Decision: d,
			})
			return
		}
	}
	l.waiters[id] = append(l.waiters[id], optWaiter{reqID: m.ReqID, from: from, keySeq: m.KeySeq})
	if m.HasOpt {
		n.leaderPropose(m.Opt, true)
		return
	}
	// No copy of the option: run recovery; Phase 1 either surfaces it
	// from other replicas or proves it unchosen (then rejected by fiat
	// in finishPhase1).
	l.resetGamma(n.cfg)
	if !l.owned && l.phase1 == nil {
		n.startPhase1(m.Key, l)
		return
	}
	for _, v := range l.cstruct {
		if v.Opt.ID() == id {
			return // already being settled by an in-flight round
		}
	}
	if l.owned {
		// We lead the record and the option is nowhere in our cstruct:
		// it is not chosen in this ballot — but "rejected by fiat"
		// answered out-of-band is unsafe, because once the γ window
		// drains EnableFast reopens fast ballots and a late re-propose
		// could still assemble a fast quorum, leaving the recoverer
		// discarding an option whose coordinator learns it accepted.
		// Settle the rejection through the classic round itself: every
		// acceptor adopts the reject vote before fast proposals can
		// reopen, and the waiter is answered when the round learns.
		// The requester's lineage identity rides along so the settled
		// reject enters summaries and is remembered forever — without
		// it the decision would age out of the decided logs and a late
		// re-propose could be answered the opposite way.
		l.cstruct = append(l.cstruct, VotedOption{
			Opt:      Option{Tx: m.Tx, Update: record.Update{Key: m.Key}, KeySeq: m.KeySeq},
			Decision: DecReject,
		})
		n.sendPhase2a(m.Key, l)
	}
}

// onOptDecided (recovering node side) collects per-key decisions and,
// once complete, finishes the transaction exactly as its coordinator
// would have.
func (n *StorageNode) onOptDecided(m MsgOptDecided) {
	rec, ok := n.recoveries[m.ReqID]
	if !ok || rec.tx != m.Tx {
		return
	}
	if _, dup := rec.decisions[m.Key]; dup {
		return
	}
	rec.decisions[m.Key] = m.Decision
	if m.HasOpt {
		rec.opts[m.Key], rec.hasOpt[m.Key] = m.Opt, true
	}
	if len(rec.decisions) < len(rec.keys) {
		return
	}
	delete(n.recoveries, m.ReqID)
	commit := true
	for _, k := range rec.keys {
		if rec.decisions[k] != DecAccept {
			commit = false
			break
		}
	}
	for _, k := range rec.keys {
		opt, has := rec.opts[k], rec.hasOpt[k]
		if !has {
			if commit {
				// No contents to apply. A summary-answered accept means
				// the option was released after all-peer ack — every
				// replica already applied it, so no visibility is
				// needed (and none could be built).
				continue
			}
			// Abort visibility for a key whose option no replica holds:
			// carry the lineage identity so the settled reject enters
			// summaries and is remembered forever.
			opt = Option{Tx: rec.tx, Update: record.Update{Key: k}, KeySeq: rec.seqs[k]}
		}
		vis := MsgVisibility{Opt: opt, Commit: commit}
		for _, rep := range n.cl.Replicas(k) {
			n.net.Send(n.id, rep, vis)
		}
	}
}

// Metrics reports protocol counters for benchmarks and ablations.
type Metrics struct {
	VotesAccept, VotesReject int64
	Forwarded                int64
	Executed, Discarded      int64
	Phase1, Phase2           int64
	EnableFast               int64
	DemarcationRejects       int64
	Sweeps                   int64
	Synced                   int64
	// BatchEnvelopes counts gateway-coalesced transport.Batch
	// envelopes received, BatchItems the messages inside them (the
	// cross-transaction batching fan-in is BatchItems/BatchEnvelopes).
	BatchEnvelopes int64
	BatchItems     int64
	// VoteBatchEnvelopes counts acceptor→coordinator transport.Batch
	// envelopes sent, VoteBatchItems the vote messages inside them
	// (the vote-direction batching fan-in).
	VoteBatchEnvelopes int64
	VoteBatchItems     int64
	// FeedMsgs counts committed-visibility feed messages sent
	// (including keepalives), FeedItems the key states inside them.
	FeedMsgs  int64
	FeedItems int64
	// Lineage counters. Grafted counts commutative applies re-applied
	// onto adopted bases (fork merges); AdoptRefused base adoptions
	// declined because the incoming summary was missing a local
	// physical apply (convergence then flows the other way);
	// DecidedReleased decided-log entries released after all-peer
	// acknowledgement; MixedKindRejects options rejected by the
	// kind-disjoint rule.
	Grafted          int64
	AdoptRefused     int64
	DecidedReleased  int64
	MixedKindRejects int64
	// Shard-ring counters. ShardMoves counts completed shard bootstrap
	// walks this node ran as a move destination (AdoptShard); MovedKeys
	// the entries those walks adopted; RingEpoch is a gauge — the
	// cluster ring epoch this node currently routes under (aggregate
	// with max, not sum).
	// WrongGroupRefusals counts proposals this node refused to act on
	// because a shard move re-homed the key away from its group.
	ShardMoves         int64
	MovedKeys          int64
	RingEpoch          int64
	WrongGroupRefusals int64
	// Durable-storage counters. DurabilityFailures counts refused disk
	// writes that degraded the node (any nonzero value means the node
	// halted rather than ack unsynced state); Checkpoints the full-state
	// snapshots this incarnation wrote.
	DurabilityFailures int64
	Checkpoints        int64
}

// Metrics returns a snapshot of this node's counters.
func (n *StorageNode) Metrics() Metrics {
	return Metrics{
		VotesAccept:        n.nVotesAccept,
		VotesReject:        n.nVotesReject,
		Forwarded:          n.nForwarded,
		Executed:           n.nExecuted,
		Discarded:          n.nDiscarded,
		Phase1:             n.nPhase1,
		Phase2:             n.nPhase2,
		EnableFast:         n.nEnableFast,
		DemarcationRejects: n.nDemarcationRejects,
		Sweeps:             n.nSweeps,
		Synced:             n.nSynced,
		BatchEnvelopes:     n.nBatchEnvelopes,
		BatchItems:         n.nBatchItems,
		VoteBatchEnvelopes: n.nVoteBatchEnvelopes,
		VoteBatchItems:     n.nVoteBatchItems,
		FeedMsgs:           n.nFeedMsgs,
		FeedItems:          n.nFeedItems,
		Grafted:            n.nGrafted,
		AdoptRefused:       n.nAdoptRefused,
		DecidedReleased:    n.nDecidedReleased,
		MixedKindRejects:   n.nMixedKindRejects,
		ShardMoves:         n.nShardMoves,
		MovedKeys:          n.nMovedKeys,
		RingEpoch:          int64(n.cl.Ring().Epoch()),
		WrongGroupRefusals: n.nWrongGroupRefusals,
		DurabilityFailures: n.nDurabilityFailures,
		Checkpoints:        n.nCheckpoints,
	}
}
