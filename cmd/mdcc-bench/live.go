package main

// The live arm: the first real-clock measurement in the repo. Where
// every other subcommand runs in virtual time on the simulator, `live`
// builds cmd/mdcc-server, boots the full 5-process `-gateway` TCP
// deployment on loopback, and drives it OPEN-LOOP at fixed offered
// arrival rates — the coordinated-omission-safe way: every arrival has
// a scheduled time t_i = start + i/rate, latency is measured from the
// *schedule*, never from when a backed-up client actually got around
// to issuing, so server stalls surface as tail latency instead of
// silently thinning the offered load.
//
// Each rate runs once per codec (hand-rolled binary vs legacy gob),
// which yields the headline table BENCH_live.json commits: p50/p99/p999
// vs offered load per codec, achieved tx/s, and the wire bytes/message
// scraped from the servers' /metrics deltas. A static per-message-type
// gob-vs-binary size table rides along (same encoders the transports
// use).

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mdcc"
	"mdcc/internal/core"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/stats"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

var (
	liveRates    = flag.String("live.rates", "200,500,1000,2000", "offered arrival rates (tx/s) to sweep")
	liveWarm     = flag.Duration("live.warmup", 3*time.Second, "per-rate warmup before the measured window")
	liveMeasure  = flag.Duration("live.measure", 8*time.Second, "per-rate measured window")
	liveInflight = flag.Int("live.inflight", 512, "max concurrently outstanding transactions (arrivals past this queue, CO-safely)")
	liveConns    = flag.Int("live.conns", 4, "client connections per data center")
	liveKeys     = flag.Int("live.keys", 64, "hot keys the workload decrements")
	liveCodecs   = flag.String("live.codecs", "binary,gob", "codecs to compare")
	liveServer   = flag.String("live.server-bin", "", "prebuilt mdcc-server binary (default: go build it)")
	liveOut      = flag.String("live.out", "BENCH_live.json", "JSON output path")
)

// liveRun is one (codec, offered rate) cell of the sweep.
type liveRun struct {
	Codec       string  `json:"codec"`
	OfferedTPS  float64 `json:"offeredTPS"`
	AchievedTPS float64 `json:"achievedTPS"` // committed tx/s in the measured window
	Commits     int64   `json:"commits"`
	Aborts      int64   `json:"aborts"`
	Errors      int64   `json:"errors"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	P999Ms      float64 `json:"p999Ms"`
	MeanMs      float64 `json:"meanMs"`
	MaxMs       float64 `json:"maxMs"`
	// Wire totals across all five servers over the measured window
	// (scraped from /metrics deltas).
	WireMsgs     int64   `json:"wireMsgs"`
	WireBytes    int64   `json:"wireBytes"`
	BytesPerMsg  float64 `json:"bytesPerMsg"`
	DroppedMsgs  int64   `json:"droppedMsgs"`
	MsgsPerTx    float64 `json:"msgsPerTx"`
	WallSeconds  float64 `json:"wallSeconds"`
	QueueMaxWait float64 `json:"queueMaxWaitMs"` // largest schedule lag observed at issue time
}

// liveTypeSize is one row of the static per-type codec comparison.
type liveTypeSize struct {
	Type     string  `json:"type"`
	GobBytes int     `json:"gobBytes"`
	BinBytes int     `json:"binBytes"`
	Ratio    float64 `json:"ratio"`
}

type liveReport struct {
	GeneratedBy string         `json:"generatedBy"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	CPUs        int            `json:"cpus"`
	Mode        string         `json:"mode"`
	Keys        int            `json:"keys"`
	Inflight    int            `json:"maxInflight"`
	Warmup      string         `json:"warmup"`
	Measure     string         `json:"measure"`
	Runs        []liveRun      `json:"runs"`
	TypeSizes   []liveTypeSize `json:"perTypeBytes"`
}

// liveBench orchestrates the whole sweep.
func liveBench() {
	header("Live bench — real-clock open-loop latency over the 5-process TCP deployment",
		"first hardware measurement: p50/p99/p999 vs offered load, binary vs gob wire codec")

	bin := *liveServer
	if bin == "" {
		var err error
		bin, err = buildServer()
		if err != nil {
			fatalf("build mdcc-server: %v", err)
		}
	}
	rates := parseRates(*liveRates)
	codecs := strings.Split(*liveCodecs, ",")

	report := liveReport{
		GeneratedBy: "mdcc-bench live",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Mode:        "mdcc",
		Keys:        *liveKeys,
		Inflight:    *liveInflight,
		Warmup:      liveWarm.String(),
		Measure:     liveMeasure.String(),
		TypeSizes:   typeSizeTable(),
	}

	fmt.Printf("\nper-type wire bytes (envelope incl. framing):\n")
	fmt.Printf("%-22s %10s %10s %8s\n", "message", "gob B", "binary B", "ratio")
	for _, ts := range report.TypeSizes {
		fmt.Printf("%-22s %10d %10d %7.2fx\n", ts.Type, ts.GobBytes, ts.BinBytes, ts.Ratio)
	}

	fmt.Printf("\n%-8s %9s %10s %8s %8s %8s %8s %12s %10s\n",
		"codec", "offered", "achieved", "p50ms", "p99ms", "p999ms", "aborts", "bytes/msg", "msgs/tx")
	for _, codec := range codecs {
		codec = strings.TrimSpace(codec)
		dep, err := startDeployment(bin, codec)
		if err != nil {
			fatalf("start %s deployment: %v", codec, err)
		}
		for _, rate := range rates {
			run, err := dep.drive(codec, rate)
			if err != nil {
				dep.stop()
				fatalf("drive %s @ %d tx/s: %v", codec, rate, err)
			}
			report.Runs = append(report.Runs, run)
			fmt.Printf("%-8s %9.0f %10.1f %8.1f %8.1f %8.1f %8d %12.1f %10.1f\n",
				run.Codec, run.OfferedTPS, run.AchievedTPS, run.P50Ms, run.P99Ms, run.P999Ms,
				run.Aborts, run.BytesPerMsg, run.MsgsPerTx)
		}
		dep.stop()
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*liveOut, append(blob, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s\n", *liveOut)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mdcc-bench live: "+format+"\n", args...)
	os.Exit(1)
}

func parseRates(s string) []int {
	var rates []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fatalf("bad -live.rates entry %q", f)
		}
		rates = append(rates, n)
	}
	return rates
}

// buildServer compiles cmd/mdcc-server into a temp dir.
func buildServer() (string, error) {
	dir, err := os.MkdirTemp("", "mdcc-live")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "mdcc-server")
	cmd := exec.Command("go", "build", "-o", bin, "mdcc/cmd/mdcc-server")
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return "", err
	}
	return bin, nil
}

// deployment is the running 5-process cluster plus the client fabric.
type deployment struct {
	procs    []*exec.Cmd
	logs     []*os.File
	tmpDir   string
	httpURLs []string
	topo     *mdcc.RemoteTopology
	sessions []*mdcc.RemoteSession
	hot      []mdcc.Key
}

// freePorts reserves n distinct loopback ports.
func freePorts(n int) ([]int, error) {
	ports := make([]int, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	return ports, nil
}

// startDeployment boots the five mdcc-server -gateway processes with
// the given send-side codec and waits until every listener accepts.
func startDeployment(bin, codec string) (*deployment, error) {
	dcs := topology.AllDCs()
	ports, err := freePorts(2 * len(dcs))
	if err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "mdcc-live-run")
	if err != nil {
		return nil, err
	}
	d := &deployment{tmpDir: tmp}

	addrs := make(map[string]string, len(dcs))
	for i, dc := range dcs {
		addrs[dc.String()] = fmt.Sprintf("127.0.0.1:%d", ports[i])
	}
	min := int64(0)
	topo := &mdcc.RemoteTopology{
		NodesPerDC: 1,
		Mode:       "mdcc",
		Codec:      codec,
		Addrs:      addrs,
		Constraints: []struct {
			Attr string `json:"attr"`
			Min  *int64 `json:"min"`
			Max  *int64 `json:"max"`
		}{{Attr: "stock", Min: &min}},
	}
	d.topo = topo
	blob, err := json.Marshal(topo)
	if err != nil {
		return nil, err
	}
	topoPath := filepath.Join(tmp, "topology.json")
	if err := os.WriteFile(topoPath, blob, 0o644); err != nil {
		return nil, err
	}

	for i, dc := range dcs {
		httpAddr := fmt.Sprintf("127.0.0.1:%d", ports[len(dcs)+i])
		d.httpURLs = append(d.httpURLs, "http://"+httpAddr+"/metrics")
		logf, err := os.Create(filepath.Join(tmp, dc.String()+".log"))
		if err != nil {
			d.stop()
			return nil, err
		}
		d.logs = append(d.logs, logf)
		cmd := exec.Command(bin,
			"-topology", topoPath,
			"-dc", dc.String(),
			"-gateway",
			"-http", httpAddr,
		)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			d.stop()
			return nil, fmt.Errorf("start %s: %v", dc, err)
		}
		d.procs = append(d.procs, cmd)
	}
	// Readiness: every server listener accepting.
	deadline := time.Now().Add(15 * time.Second)
	for _, dc := range dcs {
		addr := addrs[dc.String()]
		for {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				d.stop()
				return nil, fmt.Errorf("server %s never came up on %s", dc, addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Client fabric: a few gateway connections per DC; arrivals fan out
	// over them round-robin so no single client transport bottlenecks.
	for _, dc := range dcs {
		for c := 0; c < *liveConns; c++ {
			sess, err := mdcc.DialGateway(topo, mustDC(dc.String()), fmt.Sprintf("live-%s-%d", dc, c), "127.0.0.1:0")
			if err != nil {
				d.stop()
				return nil, err
			}
			d.sessions = append(d.sessions, sess)
		}
	}

	// Preload the hot keys with effectively unlimited stock so the
	// escrow constraint never rejects (the point is wire speed, not
	// contention collapse).
	seed := d.sessions[0]
	for i := 0; i < *liveKeys; i++ {
		key := mdcc.Key(fmt.Sprintf("live/item%d", i))
		d.hot = append(d.hot, key)
		ok := false
		for attempt := 0; attempt < 10 && !ok; attempt++ {
			ok, err = seed.Commit(mdcc.Insert(key, mdcc.Value{Attrs: map[string]int64{"stock": 1 << 40}}))
			if err != nil {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if !ok {
			d.stop()
			return nil, fmt.Errorf("preload %s: ok=%v err=%v", key, ok, err)
		}
	}
	return d, nil
}

func mustDC(name string) mdcc.DC {
	dc, err := mdcc.ParseDC(name)
	if err != nil {
		panic(err)
	}
	return dc
}

func (d *deployment) stop() {
	for _, s := range d.sessions {
		s.Close()
	}
	for _, p := range d.procs {
		if p.Process != nil {
			_ = p.Process.Signal(os.Interrupt)
		}
	}
	for _, p := range d.procs {
		done := make(chan struct{})
		go func(c *exec.Cmd) { c.Wait(); close(done) }(p)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = p.Process.Kill()
			<-done
		}
	}
	for _, f := range d.logs {
		f.Close()
	}
	d.procs, d.sessions, d.logs = nil, nil, nil
}

// wireTotals sums the transport counters across all servers.
type wireTotals struct {
	msgs, bytes, dropped int64
}

func (d *deployment) scrape() (wireTotals, error) {
	var tot wireTotals
	client := &http.Client{Timeout: 2 * time.Second}
	for _, url := range d.httpURLs {
		resp, err := client.Get(url)
		if err != nil {
			return tot, err
		}
		var m struct {
			Transport transport.Stats `json:"transport"`
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			return tot, err
		}
		tot.msgs += m.Transport.MsgsSent
		tot.bytes += m.Transport.BytesSent
		tot.dropped += m.Transport.DroppedNoRoute + m.Transport.DroppedQueueFull + m.Transport.DroppedConnDown
	}
	return tot, nil
}

// drive runs one open-loop window at the offered rate and returns the
// measured cell.
func (d *deployment) drive(codec string, rate int) (liveRun, error) {
	interval := time.Second / time.Duration(rate)
	warmN := int(liveWarm.Seconds() * float64(rate))
	measureN := int(liveMeasure.Seconds() * float64(rate))
	totalN := warmN + measureN

	var (
		mu        sync.Mutex
		hist      = stats.NewHistogram(0)
		commits   int64
		aborts    int64
		errors    int64
		maxLag    time.Duration
		wStart    wireTotals
		scrapeErr error
	)
	sem := make(chan struct{}, *liveInflight)
	var wg sync.WaitGroup

	start := time.Now().Add(50 * time.Millisecond)
	for i := 0; i < totalN; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		if i == warmN {
			// Measured window opens exactly at this arrival's schedule:
			// snapshot the wire counters for the window delta.
			wStart, scrapeErr = d.scrape()
			if scrapeErr != nil {
				return liveRun{}, scrapeErr
			}
		}
		measured := i >= warmN
		sess := d.sessions[i%len(d.sessions)]
		key := d.hot[i%len(d.hot)]
		wg.Add(1)
		sem <- struct{}{} // open-loop backlog bounded by maxInflight; the
		// arrival keeps its ORIGINAL schedule, so time spent waiting here
		// is part of its measured latency (no coordinated omission).
		go func(sched time.Time, measured bool) {
			defer wg.Done()
			defer func() { <-sem }()
			ok, err := sess.Commit(mdcc.Commutative(key, map[string]int64{"stock": -1}))
			lat := time.Since(sched)
			if !measured {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			hist.Add(lat.Microseconds())
			switch {
			case err != nil:
				errors++
			case ok:
				commits++
			default:
				aborts++
			}
			if lag := lat; lag > maxLag {
				maxLag = lag
			}
		}(sched, measured)
	}
	wg.Wait()
	wEnd, err := d.scrape()
	if err != nil {
		return liveRun{}, err
	}

	wall := liveMeasure.Seconds()
	run := liveRun{
		Codec:        codec,
		OfferedTPS:   float64(rate),
		AchievedTPS:  float64(commits) / wall,
		Commits:      commits,
		Aborts:       aborts,
		Errors:       errors,
		P50Ms:        float64(hist.Quantile(0.50)) / 1000,
		P99Ms:        float64(hist.Quantile(0.99)) / 1000,
		P999Ms:       float64(hist.Quantile(0.999)) / 1000,
		MeanMs:       hist.Mean() / 1000,
		MaxMs:        float64(hist.Max) / 1000,
		WireMsgs:     wEnd.msgs - wStart.msgs,
		WireBytes:    wEnd.bytes - wStart.bytes,
		DroppedMsgs:  wEnd.dropped - wStart.dropped,
		WallSeconds:  wall,
		QueueMaxWait: float64(maxLag.Milliseconds()),
	}
	if run.WireMsgs > 0 {
		run.BytesPerMsg = float64(run.WireBytes) / float64(run.WireMsgs)
	}
	if commits > 0 {
		run.MsgsPerTx = float64(run.WireMsgs) / float64(commits)
	}
	return run, nil
}

// typeSizeTable sizes representative hot messages under both codecs
// with the same encoders the transports use. The samples mirror the
// live workload: commutative single-attribute options with escrow
// piggybacks.
func typeSizeTable() []liveTypeSize {
	opt := core.Option{
		Tx:    "gw/us-west/0#12345",
		Coord: "gw/us-west/0",
		Update: record.Update{
			Kind:   record.KindCommutative,
			Key:    "live/item12",
			Deltas: map[string]int64{"stock": -1},
		},
		WriteSet:  []record.Key{"live/item12"},
		KeySeq:    12345,
		WriteSeqs: []uint64{12345},
	}
	escrow := core.EscrowSnap{
		Valid: true, Version: 12345, Contenders: 3,
		Attrs: []core.AttrEscrow{{Attr: "stock", Base: 1 << 40, PendDown: -37, PendUp: 0}},
	}
	vote := core.MsgVote{
		OptID:  core.OptionID{Tx: opt.Tx, Key: "live/item12"},
		Ballot: paxos.Ballot{Fast: true},
		Escrow: escrow,
	}
	phase2a := core.MsgPhase2a{
		Key:     "live/item12",
		Ballot:  paxos.Ballot{N: 3, Leader: "dc1/store0"},
		Seq:     12345,
		CStruct: []core.VotedOption{{Opt: opt, Decision: core.DecAccept}},
		HasBase: true, BaseVersion: 12344,
		BaseValue:  record.Value{Attrs: map[string]int64{"stock": 1 << 40}},
		BaseExists: true,
		BaseLineage: core.LineageSummary{
			Lanes:  []core.LaneLineage{{Lane: "gw/us-west/0", Done: []core.SeqRange{{Lo: 1, Hi: 12344}}}},
			Deltas: true,
		},
	}
	feed := core.MsgVisibilityFeed{
		Epoch: 1, Seq: 999, Boot: 1,
		Items: []core.FeedItem{{
			Key: "live/item12", Value: record.Value{Attrs: map[string]int64{"stock": 1 << 40}},
			Version: 12345, Exists: true, Escrow: escrow,
		}},
	}
	batch := transport.Batch{Items: []transport.Envelope{
		{From: "dc1/store0", To: "gw/us-west/0", Msg: vote},
		{From: "dc1/store0", To: "gw/us-west/0", Msg: core.MsgVoteBatch{Votes: []core.MsgVote{vote, vote}}},
	}}

	rows := []struct {
		name string
		msg  transport.Message
	}{
		{"MsgProposeFast", core.MsgProposeFast{Opt: opt}},
		{"MsgVote", vote},
		{"MsgVoteBatch", core.MsgVoteBatch{Votes: []core.MsgVote{vote, vote, vote}}},
		{"MsgPhase2a", phase2a},
		{"MsgPhase2b", core.MsgPhase2b{Key: "live/item12", Ballot: phase2a.Ballot, Seq: 12345, OK: true}},
		{"MsgVisibilityFeed", feed},
		{"transport.Batch", batch},
	}
	out := make([]liveTypeSize, 0, len(rows))
	for _, r := range rows {
		gobN, err := transport.GobEncodedSize(r.msg)
		if err != nil {
			fatalf("gob size %s: %v", r.name, err)
		}
		binN, err := transport.EncodedSize(r.msg)
		if err != nil {
			fatalf("binary size %s: %v", r.name, err)
		}
		out = append(out, liveTypeSize{
			Type: r.name, GobBytes: gobN, BinBytes: binN,
			Ratio: float64(gobN) / float64(binN),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}
