package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/transport"
)

// sampleVote builds a Phase2b vote with every piggyback field set to
// a distinctive value.
func sampleVote(seq int) MsgVote {
	return MsgVote{
		OptID:    OptionID{Tx: TxID(fmt.Sprintf("tx#%d", seq)), Key: "stock/1"},
		Decision: DecAccept,
		Escrow: EscrowSnap{
			Valid:      true,
			Version:    record.Version(100 + seq),
			Contenders: 2 + seq%3,
			Attrs: []AttrEscrow{
				{Attr: "units", Base: int64(500 + seq), PendDown: -7, PendUp: 3},
				{Attr: "bal", Base: 42, PendDown: 0, PendUp: 11},
			},
		},
	}
}

func checkVote(t *testing.T, got MsgVote, seq int) {
	t.Helper()
	want := sampleVote(seq)
	if got.OptID != want.OptID || got.Decision != want.Decision {
		t.Fatalf("vote identity mangled: got %+v want %+v", got, want)
	}
	e := got.Escrow
	if !e.Valid || e.Version != want.Escrow.Version || len(e.Attrs) != 2 ||
		e.Contenders != want.Escrow.Contenders {
		t.Fatalf("escrow snapshot mangled: %+v", e)
	}
	for i, a := range want.Escrow.Attrs {
		if e.Attrs[i] != a {
			t.Fatalf("escrow attr %d: got %+v want %+v", i, e.Attrs[i], a)
		}
	}
}

// TestEscrowPiggybackSurvivesTransports ships a vote batch inside a
// transport.Batch envelope — the exact shape the acceptor's vote
// batching produces — through all three transports and asserts every
// piggyback field survives, including TCP's gob round-trip.
func TestEscrowPiggybackSurvivesTransports(t *testing.T) {
	payload := func() transport.Message {
		return transport.Batch{Items: []transport.Envelope{
			{From: "acceptor", To: "coord", Msg: sampleVote(1)},
			{From: "acceptor", To: "coord", Msg: MsgVoteBatch{Votes: []MsgVote{sampleVote(2), sampleVote(3)}}},
			{From: "acceptor", To: "coord", Msg: MsgReadReply{
				ReqID: 9, Key: "stock/1", Version: 77, Exists: true,
				Escrow: sampleVote(4).Escrow,
			}},
		}}
	}
	verify := func(t *testing.T, env transport.Envelope) {
		b, ok := env.Msg.(transport.Batch)
		if !ok {
			t.Fatalf("expected Batch, got %T", env.Msg)
		}
		if len(b.Items) != 3 {
			t.Fatalf("batch carried %d items, want 3", len(b.Items))
		}
		checkVote(t, b.Items[0].Msg.(MsgVote), 1)
		vb := b.Items[1].Msg.(MsgVoteBatch)
		checkVote(t, vb.Votes[0], 2)
		checkVote(t, vb.Votes[1], 3)
		rr := b.Items[2].Msg.(MsgReadReply)
		if !rr.Escrow.Valid || rr.Escrow.Version != 104 || rr.Escrow.Attrs[0].Base != 504 {
			t.Fatalf("read-reply escrow mangled: %+v", rr.Escrow)
		}
	}

	t.Run("simnet", func(t *testing.T) {
		net := simnet.New(simnet.Options{Seed: 1})
		var got *transport.Envelope
		net.Register("coord", func(env transport.Envelope) { got = &env })
		net.At(0, func() { net.Send("acceptor", "coord", payload()) })
		net.RunFor(time.Second)
		if got == nil {
			t.Fatal("nothing delivered")
		}
		verify(t, *got)
	})

	t.Run("local", func(t *testing.T) {
		net := transport.NewLocal(nil)
		defer net.Close()
		ch := make(chan transport.Envelope, 1)
		net.Register("coord", func(env transport.Envelope) { ch <- env })
		net.Register("acceptor", func(transport.Envelope) {})
		net.Send("acceptor", "coord", payload())
		select {
		case env := <-ch:
			verify(t, env)
		case <-time.After(5 * time.Second):
			t.Fatal("nothing delivered")
		}
	})

	t.Run("tcp", func(t *testing.T) {
		recv := transport.NewTCP(nil)
		addr, err := recv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		ch := make(chan transport.Envelope, 1)
		recv.Register("coord", func(env transport.Envelope) { ch <- env })
		send := transport.NewTCP(map[transport.NodeID]string{"coord": addr})
		defer send.Close()
		send.Send("acceptor", "coord", payload())
		select {
		case env := <-ch:
			verify(t, env)
		case <-time.After(5 * time.Second):
			t.Fatal("nothing delivered over TCP")
		}
	})
}

// TestTCPBatchedVoteOrderingAfterReconnect extends the transport
// ordering checks to batched Phase2b votes: interleaved single votes,
// vote batches and batch envelopes from one acceptor must arrive in
// send order even when the connection is torn down mid-stream (a
// reordered or replayed vote stream is exactly what the acceptor's
// proposal-sequence and the coordinator's dedup guard against — the
// transport must not manufacture such streams).
func TestTCPBatchedVoteOrderingAfterReconnect(t *testing.T) {
	recv := transport.NewTCP(nil)
	addr, err := recv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	var mu sync.Mutex
	var seqs []int
	var escrowSeen int
	record1 := func(v MsgVote) {
		var n int
		fmt.Sscanf(string(v.OptID.Tx), "tx#%d", &n)
		seqs = append(seqs, n)
		if v.Escrow.Valid {
			escrowSeen++
		}
	}
	recv.Register("coord", func(env transport.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		switch m := env.Msg.(type) {
		case transport.Batch:
			for _, item := range m.Items {
				switch im := item.Msg.(type) {
				case MsgVote:
					record1(im)
				case MsgVoteBatch:
					for _, v := range im.Votes {
						record1(v)
					}
				}
			}
		case MsgVote:
			record1(m)
		case MsgVoteBatch:
			for _, v := range m.Votes {
				record1(v)
			}
		}
	})

	send := transport.NewTCP(map[transport.NodeID]string{"coord": addr})
	defer send.Close()

	const total = 300
	seq := 0
	sendSome := func(n int) {
		for sent := 0; sent < n && seq < total; {
			switch seq % 3 {
			case 0:
				send.Send("acceptor", "coord", sampleVote(seq))
				seq++
				sent++
			case 1:
				vb := MsgVoteBatch{Votes: []MsgVote{sampleVote(seq), sampleVote(seq + 1)}}
				send.Send("acceptor", "coord", vb)
				seq += 2
				sent += 2
			default:
				b := transport.Batch{Items: []transport.Envelope{
					{From: "acceptor", To: "coord", Msg: sampleVote(seq)},
					{From: "acceptor", To: "coord", Msg: MsgVoteBatch{Votes: []MsgVote{sampleVote(seq + 1)}}},
				}}
				send.Send("acceptor", "coord", b)
				seq += 2
				sent += 2
			}
		}
	}

	count := func() int { mu.Lock(); defer mu.Unlock(); return len(seqs) }
	waitAtLeast := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		for count() < n {
			if time.Now().After(deadline) {
				t.Fatalf("delivered %d, want >= %d", count(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	sendSome(100)
	waitAtLeast(100)
	send.DropPeerConns() // connection teardown mid-stream
	sendSome(100)
	waitAtLeast(200)
	send.DropPeerConns()
	sendSome(total - seq)
	waitAtLeast(total)

	mu.Lock()
	defer mu.Unlock()
	last := -1
	for i, s := range seqs {
		if s <= last {
			t.Fatalf("vote stream reordered at %d: seq %d after %d", i, s, last)
		}
		last = s
	}
	if len(seqs) != total {
		t.Fatalf("delivered %d of %d votes", len(seqs), total)
	}
	if escrowSeen != total {
		t.Fatalf("escrow piggyback lost on %d of %d votes", total-escrowSeen, total)
	}
}

// TestAcceptorVoteBatchingAndEscrow drives a gateway-style coalesced
// envelope (several fast proposals from one coordinator, different
// keys) into one acceptor and asserts (a) the piggybacked escrow
// snapshots carry the acceptor's real base and pending sums, and (b)
// all votes of the dispatch leave in a single transport.Batch
// envelope back to the coordinator, counted by the vote-batching
// metrics.
func TestAcceptorVoteBatchingAndEscrow(t *testing.T) {
	n, net := unitNode(t, ModeMDCC, []record.Constraint{record.MinBound("units", 0)})
	// unitNode's cluster replicates each key on this node's shard only
	// at NodesPerDC=1; preload two keys it owns.
	_ = n.store.Put("a", record.Value{Attrs: map[string]int64{"units": 50}}, 1)
	_ = n.store.Put("b", record.Value{Attrs: map[string]int64{"units": 9}}, 1)

	var got []transport.Envelope
	net.Register("coord", func(env transport.Envelope) { got = append(got, env) })

	opt := func(tx, key string, d int64) Option {
		return Option{
			Tx: TxID(tx), Coord: "coord",
			Update:   record.Commutative(record.Key(key), map[string]int64{"units": d}),
			WriteSet: []record.Key{record.Key(key)},
		}
	}
	env := transport.Batch{Items: []transport.Envelope{
		{From: "coord", To: n.ID(), Msg: MsgProposeFast{Opt: opt("t1", "a", -2)}},
		{From: "coord", To: n.ID(), Msg: MsgProposeFast{Opt: opt("t2", "a", -3)}},
		{From: "coord", To: n.ID(), Msg: MsgProposeFast{Opt: opt("t3", "b", -1)}},
	}}
	net.At(0, func() { net.Send("gw", n.ID(), env) })
	net.RunFor(time.Second)

	if len(got) != 1 {
		t.Fatalf("acceptor sent %d envelopes, want 1 batched", len(got))
	}
	b, ok := got[0].Msg.(transport.Batch)
	if !ok {
		t.Fatalf("votes not batched: %T", got[0].Msg)
	}
	if len(b.Items) != 3 {
		t.Fatalf("vote batch carried %d items, want 3", len(b.Items))
	}
	// Third vote: key b, base 9, and its own delta pending (snapshots
	// are taken after the vote is cast).
	v3 := b.Items[2].Msg.(MsgVote)
	if v3.Decision != DecAccept || !v3.Escrow.Valid {
		t.Fatalf("vote 3: %+v", v3)
	}
	var units *AttrEscrow
	for i := range v3.Escrow.Attrs {
		if v3.Escrow.Attrs[i].Attr == "units" {
			units = &v3.Escrow.Attrs[i]
		}
	}
	if units == nil || units.Base != 9 || units.PendDown != -1 || units.PendUp != 0 {
		t.Fatalf("vote 3 escrow: %+v", v3.Escrow)
	}
	// Second vote on key a saw the first one pending.
	v2 := b.Items[1].Msg.(MsgVote)
	for _, a := range v2.Escrow.Attrs {
		if a.Attr == "units" && (a.Base != 50 || a.PendDown != -5) {
			t.Fatalf("vote 2 escrow: %+v", v2.Escrow)
		}
	}
	m := n.Metrics()
	if m.VoteBatchEnvelopes != 1 || m.VoteBatchItems != 3 {
		t.Fatalf("vote batching counters: %+v", m)
	}
}
