package mtx

import (
	"math/rand"

	"mdcc/internal/kv"
	"mdcc/internal/topology"
)

// TxnResult is what a workload transaction reports when it finishes.
type TxnResult struct {
	Committed bool
	Write     bool // write transactions are what figure 3 reports
}

// Txn executes one transaction against a client, calling done exactly
// once. It runs entirely inside the driving network's handler context.
type Txn func(c Client, rng *rand.Rand, done func(TxnResult))

// Workload generates transactions and initial data for the harness.
type Workload interface {
	// Name labels result rows.
	Name() string
	// Preload produces the initial database (bulk-loaded before the
	// run, outside the measured window).
	Preload(rng *rand.Rand) []kv.Entry
	// Next returns the next transaction for one client (closed loop,
	// no think time — as in the paper's setup).
	Next(client int, dc topology.DC, rng *rand.Rand) Txn
}
