package gateway

import (
	"sort"
	"time"

	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// Learned-replica read tier: the gateway materializes the committed
// state its DC's storage shards stream to it (core.MsgVisibilityFeed)
// and serves reads straight from memory — zero RPCs at steady state,
// which is exactly what MDCC's read-committed guarantee (§4.1)
// licenses: any committed version is a legal answer, so a local copy
// kept fresh by the commit stream (Megastore's trick) can stand in
// for the replica.
//
// The tier is a cache with explicit staleness bounds, never a
// correctness mechanism:
//
//   - Every served value is a committed (value, version) pair that
//     some storage replica held — read committed by construction.
//   - Staleness is bounded by feed liveness: each shard's stream
//     carries contiguous sequence numbers per subscription epoch and
//     keepalives through quiet periods; a gap or FeedTTL of silence
//     marks the feed dead and reads fall back to RPC until a
//     resubscription (with snapshot catch-up for the materialized
//     keys) restores the stream.
//   - Session-guarantee floors (monotonic reads, read-your-writes)
//     are honored through the fallback ladder: a memory copy below
//     the caller's floor is never served; the read falls back to a
//     single-flight RPC (concurrent same-key misses share one
//     MsgRead), and if even the local replica lags the floor, to an
//     up-to-date quorum read.
//
// Memory is bounded by demand, not by the write stream: feed items
// refresh only keys the gateway already tracks (previously read
// through it, or holding escrow accounts); unknown keys are ignored
// and materialize on first read via the RPC fallback, whose reply is
// installed for the next reader. The idle sweep retires keys that
// stop being read.

// feedTTLDefault is how long a feed may go silent before the gateway
// stops serving reads from its shard's materialized state. Paired
// with the storage-side keepalive (core.Config.FeedKeepAlive, default
// 500ms), it is the read tier's staleness bound: a served value lags
// its local replica by at most the flush latency of one dispatch at
// steady state, and by at most FeedTTL across failures.
const feedTTLDefault = 2 * time.Second

// feedState tracks one local shard's visibility stream.
type feedState struct {
	epoch   uint64 // current subscription epoch
	expect  uint64 // next sequence number the stream owes us
	boot    uint64 // publisher incarnation (0 = none consumed yet)
	added   int    // interest registrations sent this epoch (GC trigger)
	lastMsg time.Time
	lastSub time.Time
	live    bool
}

// feedRenewEvery is how often a healthy subscription is renewed (a
// same-epoch empty subscription, answered in-stream): the node-side
// proof this subscriber is still alive. Must be well under the node's
// subscription TTL (core: 2 minutes) so live streams never expire.
const feedRenewEvery = 30 * time.Second

// interestSlack is how much the shard-side interest set may exceed
// the gateway's live materialized set before the subscription is
// rotated to a fresh epoch (whose interest is exactly the current
// materialized set). Without rotation the interest set only ever
// grows within an epoch — evicted keys keep streaming and, at the
// shard's capacity cap, new keys would be pinned to the RPC path
// forever in a perfectly healthy steady state.
const interestSlack = 1024

// readWaiter is one caller parked on a single-flight read.
type readWaiter struct {
	floor record.Version
	cb    func(record.Value, record.Version, bool)
}

// readFlight is one in-flight fallback read shared by every
// concurrent reader of the key.
type readFlight struct {
	waiters []readWaiter
}

// subscribeFeedsLocked (re)subscribes to every local shard.
func (g *Gateway) subscribeFeedsLocked() {
	for _, shard := range g.shards {
		g.resubscribeLocked(shard, g.feeds[shard])
	}
}

// resubscribeLocked starts a fresh subscription epoch on one shard,
// asking for snapshot catch-up of the keys currently materialized
// from it. The old epoch's in-flight messages are dead on arrival.
func (g *Gateway) resubscribeLocked(shard transport.NodeID, fs *feedState) {
	g.subEpoch++
	fs.epoch = g.subEpoch
	fs.expect = 1
	fs.boot = 0
	fs.live = false
	fs.lastSub = g.net.Now()
	g.m.FeedResubs++
	// The catch-up list doubles as the fresh epoch's interest set: the
	// shard will stream exactly these keys. Every materialized key is
	// unconfirmed until the new stream echoes it back (keys beyond the
	// cap stay unconfirmed — and therefore unserved — until a read
	// re-registers them). Sorted before capping: map iteration order
	// must not decide WHICH keys make the cut, or a seeded replay
	// diverges on which keys end up memory-served (the determinism
	// guarantee every other send path here preserves).
	var catchUp []record.Key
	for key, ks := range g.keys {
		if g.cl.ReplicaIn(key, g.dc) != shard {
			continue
		}
		ks.confirmed = false
		ks.askTries = 0
		if ks.hasVal {
			catchUp = append(catchUp, key)
		}
	}
	sort.Slice(catchUp, func(i, j int) bool { return catchUp[i] < catchUp[j] })
	if len(catchUp) > core.FeedCatchUpMax {
		catchUp = catchUp[:core.FeedCatchUpMax]
	}
	fs.added = len(catchUp)
	g.net.Send(g.id, shard, core.MsgVisibilitySub{Epoch: fs.epoch, CatchUp: catchUp})
}

// askInterestLocked registers a newly materialized key in its shard's
// interest set: a same-epoch subscription carrying just this key,
// which the shard answers in-stream (the echo sets ks.confirmed and
// unlocks memory serving). Lost adds self-heal — the key keeps
// falling back to RPC and each fill re-asks — but with exponential
// backoff: an add the shard REJECTED (interest set at capacity) is
// never echoed either, and without backoff every read of such a key
// would keep a doomed subscription message in flight forever.
func (g *Gateway) askInterestLocked(key record.Key, ks *keyState) {
	if g.tun.DisableReadTier || ks.confirmed {
		return
	}
	now := g.net.Now()
	backoff := g.tun.FeedTTL / 4 << min(ks.askTries, 6)
	if !ks.askedAt.IsZero() && now.Sub(ks.askedAt) < backoff {
		return
	}
	ks.askedAt = now
	ks.askTries++
	shard := g.cl.ReplicaIn(key, g.dc)
	fs, ok := g.feeds[shard]
	if !ok {
		return
	}
	fs.added++
	g.net.Send(g.id, shard, core.MsgVisibilitySub{Epoch: fs.epoch, CatchUp: []record.Key{key}})
}

// scheduleFeedCheck arms the periodic liveness probe: feeds silent
// past FeedTTL are marked dead (reads fall back to RPC) and
// resubscribed — this is also how the tier recovers from storage-node
// crashes and healed partitions, whose fresh incarnations hold no
// subscriber state.
func (g *Gateway) scheduleFeedCheck() {
	g.net.After(g.id, g.tun.FeedTTL/2, func() {
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return
		}
		now := g.net.Now()
		for _, shard := range g.shards {
			fs := g.feeds[shard]
			if now.Sub(fs.lastMsg) > g.tun.FeedTTL {
				if fs.live {
					fs.live = false
					g.m.FeedDrops++
				}
				if now.Sub(fs.lastSub) >= g.tun.FeedTTL/2 {
					g.resubscribeLocked(shard, fs)
				}
				continue
			}
			// Healthy stream: renew the subscription periodically so the
			// node's subscriber-expiry (its defense against gateways that
			// died for good) never reaps a live one.
			if now.Sub(fs.lastSub) >= feedRenewEvery {
				fs.lastSub = now
				g.net.Send(g.id, shard, core.MsgVisibilitySub{Epoch: fs.epoch})
			}
			// Interest garbage collection: evictions never shrink the
			// shard-side interest set within an epoch, so once the
			// registrations sent this epoch far exceed what is still
			// materialized, rotate to a fresh epoch whose interest is
			// exactly the live set (also unpinning any keys a full
			// interest table rejected).
			if fs.added > interestSlack {
				materialized := 0
				for key, ks := range g.keys {
					if ks.hasVal && g.cl.ReplicaIn(key, g.dc) == shard {
						materialized++
					}
				}
				if fs.added > 2*materialized+interestSlack {
					g.resubscribeLocked(shard, fs)
				}
			}
		}
		g.mu.Unlock()
		g.scheduleFeedCheck()
	})
}

// onFeed folds one visibility-feed message into the materialized
// store. Sequence holes mean the stream lost messages (drop, crash,
// partition): the feed is declared dead and resubscribed with
// catch-up; until the new epoch's hello arrives, reads on this
// shard's keys fall back to RPC.
func (g *Gateway) onFeed(from transport.NodeID, m core.MsgVisibilityFeed) {
	g.mu.Lock()
	fs, ok := g.feeds[from]
	if !ok || g.closed {
		g.mu.Unlock()
		return
	}
	switch {
	case m.Epoch != fs.epoch:
		g.m.FeedStaleMsgs++ // an older (or dead incarnation's) stream
		g.mu.Unlock()
		return
	case fs.boot != 0 && m.Boot != fs.boot:
		// The publisher restarted under our feet: its volatile
		// subscriber table is gone and a same-epoch (re)registration
		// restarted the sequence at 1, whose low numbers would alias
		// our already-consumed ones and be discarded as duplicates —
		// losing the fresh incarnation's messages without ever
		// detecting a gap. A boot change is a gap. Resync.
		g.m.FeedGaps++
		g.resubscribeLocked(from, fs)
		g.mu.Unlock()
		return
	case m.Seq < fs.expect:
		g.m.FeedStaleMsgs++ // duplicate of an already-consumed message
		g.mu.Unlock()
		return
	case m.Seq > fs.expect:
		// Hole in the stream: something between expect and Seq is lost
		// (or still in reordered flight — equally unusable, the stream
		// must be contiguous to bound staleness). Resync.
		g.m.FeedGaps++
		g.resubscribeLocked(from, fs)
		g.mu.Unlock()
		return
	}
	fs.expect++
	fs.boot = m.Boot
	fs.lastMsg = g.net.Now()
	fs.live = true
	g.m.FeedMsgs++
	g.m.FeedItems += int64(len(m.Items))
	now := g.net.Now()
	for _, it := range m.Items {
		// Refresh only keys already tracked: the feed fills the cache,
		// it does not decide its working set (see package comment).
		ks, tracked := g.keys[it.Key]
		if !tracked {
			continue
		}
		// The stream echoing the key proves it is in the shard's
		// interest set — memory serving is licensed from here on.
		ks.confirmed = true
		g.installLocked(ks, it.Value, it.Version, it.Exists)
		g.foldEscrowLocked(ks, it.Escrow, now)
	}
	g.mu.Unlock()
}

// installLocked folds a committed (value, version) observation into a
// key's materialized state; versions only move forward.
func (g *Gateway) installLocked(ks *keyState, val record.Value, ver record.Version, exists bool) {
	if ks.hasVal && ver < ks.valVer {
		return
	}
	ks.hasVal = true
	ks.val = val
	ks.valVer = ver
	ks.valExists = exists
}

// feedLiveLocked reports whether the feed covering key currently
// bounds staleness (subscribed, gapless, heard from within FeedTTL).
func (g *Gateway) feedLiveLocked(key record.Key) bool {
	fs, ok := g.feeds[g.cl.ReplicaIn(key, g.dc)]
	return ok && fs.live && g.net.Now().Sub(fs.lastMsg) <= g.tun.FeedTTL
}

// ReadFloor serves a read that must not observe a version below
// floor (0 = any committed version). The ladder:
//
//  1. materialized local state — zero RPCs — when the key's feed is
//     live and the copy meets the floor;
//  2. a single-flight RPC read of the nearest replica (concurrent
//     same-key misses share one MsgRead), whose reply is installed
//     for the next reader;
//  3. an up-to-date quorum read when even the local replica lags the
//     floor (one per flight, shared by every floor-outrun waiter).
//
// The callback may fire synchronously (memory hit) or on a pooled
// coordinator's goroutine (fallbacks). The result can still lag the
// floor when no reachable replica has caught up; callers holding
// session guarantees retry as Session.Read does.
func (g *Gateway) ReadFloor(key record.Key, floor record.Version, cb func(val record.Value, ver record.Version, exists bool)) {
	if g.tun.DisableReadTier {
		g.Read(key, cb)
		return
	}
	g.mu.Lock()
	if ks, ok := g.keys[key]; ok && ks.hasVal && ks.confirmed && ks.valVer >= floor && g.feedLiveLocked(key) {
		val, ver, exists := ks.val, ks.valVer, ks.valExists
		ks.readAt = g.net.Now()
		g.m.LocalReads++
		if g.tr != nil {
			// Floored reads trace too: a memory hit is one event, so a
			// stale-read diagnosis can see which tier answered.
			g.tr.Add(trace.Event{At: ks.readAt.UnixNano(), Key: string(key),
				Stage: trace.StageRead, Arg: int64(ver)})
		}
		g.mu.Unlock()
		cb(val, ver, exists)
		return
	}
	if fl, ok := g.flights[key]; ok {
		fl.waiters = append(fl.waiters, readWaiter{floor: floor, cb: cb})
		g.m.ReadCoalesced++
		g.mu.Unlock()
		return
	}
	fl := &readFlight{waiters: []readWaiter{{floor: floor, cb: cb}}}
	g.flights[key] = fl
	g.m.ReadRPCs++
	co := g.nextCoordLocked()
	g.mu.Unlock()
	g.net.After(co.ID(), 0, func() {
		co.Read(key, func(val record.Value, ver record.Version, exists bool) {
			g.settleFlight(key, fl, val, ver, exists)
		})
	})
}

// settleFlight installs a fallback read's result and answers the
// waiters: floors met by the local replica are served directly; the
// rest share one escalated quorum read.
func (g *Gateway) settleFlight(key record.Key, fl *readFlight, val record.Value, ver record.Version, exists bool) {
	g.mu.Lock()
	if cur, ok := g.flights[key]; ok && cur == fl {
		delete(g.flights, key)
	}
	ks := g.ks(key)
	g.installLocked(ks, val, ver, exists)
	ks.readAt = g.net.Now()
	g.askInterestLocked(key, ks)
	var met, unmet []readWaiter
	for _, w := range fl.waiters {
		if ver >= w.floor {
			met = append(met, w)
		} else {
			unmet = append(unmet, w)
		}
	}
	var co *core.Coordinator
	if len(unmet) > 0 {
		g.m.ReadQuorums++
		co = g.nextCoordLocked()
	}
	g.mu.Unlock()
	for _, w := range met {
		w.cb(val, ver, exists)
	}
	if co == nil {
		return
	}
	g.net.After(co.ID(), 0, func() {
		co.ReadQuorum(key, func(qval record.Value, qver record.Version, qexists bool) {
			g.mu.Lock()
			qks := g.ks(key)
			g.installLocked(qks, qval, qver, qexists)
			qks.readAt = g.net.Now()
			g.askInterestLocked(key, qks)
			g.mu.Unlock()
			for _, w := range unmet {
				w.cb(qval, qver, qexists)
			}
		})
	})
}

// readTierGaugesLocked reports the materialized-key count and how
// many shard feeds are currently live.
func (g *Gateway) readTierGaugesLocked() (materialized, feedsLive int64) {
	for _, ks := range g.keys {
		if ks.hasVal {
			materialized++
		}
	}
	now := g.net.Now()
	for _, shard := range g.shards {
		if fs := g.feeds[shard]; fs != nil && fs.live && now.Sub(fs.lastMsg) <= g.tun.FeedTTL {
			feedsLive++
		}
	}
	return materialized, feedsLive
}
