package mdcc

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func startTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.LatencyScale == 0 {
		cfg.LatencyScale = 0.002 // ~0.3ms max one-way: fast tests
	}
	c, err := StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitFor polls cond with a real-time deadline instead of a fixed
// iteration count: on a loaded machine (the -race CI runner) a
// "spin N times" wait can exhaust its iterations before asynchronous
// visibility lands, which is a harness flake, not a protocol bug.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSessionInsertReadUpdate(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	// Read-your-writes so the post-commit reads cannot race the
	// asynchronous visibility notifications.
	s.EnableSessionGuarantees()

	ok, err := s.Commit(Insert("item/1", Value{Attrs: map[string]int64{"stock": 10}}))
	if err != nil || !ok {
		t.Fatalf("insert: ok=%v err=%v", ok, err)
	}
	val, ver, exists, err := s.Read("item/1")
	if err != nil || !exists || ver != 1 || val.Attr("stock") != 10 {
		t.Fatalf("read: %v v%d %v %v", val, ver, exists, err)
	}
	ok, err = s.Commit(Physical("item/1", ver, val.WithAttr("stock", 9)))
	if err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	val, ver, _, _ = s.Read("item/1")
	if ver != 2 || val.Attr("stock") != 9 {
		t.Fatalf("after update: %v v%d", val, ver)
	}
}

func TestSessionsFromDifferentDCs(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	west := c.Session(USWest)
	tokyo := c.Session(APTokyo)

	if ok, err := west.Commit(Insert("geo/1", Value{Attrs: map[string]int64{"x": 1}})); err != nil || !ok {
		t.Fatalf("west insert: %v %v", ok, err)
	}
	// Tokyo's local replica converges once visibility lands.
	var val Value
	var exists bool
	for i := 0; i < 50; i++ {
		var err error
		val, _, exists, err = tokyo.Read("geo/1")
		if err != nil {
			t.Fatal(err)
		}
		if exists {
			break
		}
	}
	if !exists || val.Attr("x") != 1 {
		t.Fatalf("tokyo read: %v %v", val, exists)
	}
}

func TestConflictDetectedAcrossSessions(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	a := c.Session(USWest)
	b := c.Session(USEast)
	if ok, _ := a.Commit(Insert("c/1", Value{Attrs: map[string]int64{"x": 0}})); !ok {
		t.Fatal("insert failed")
	}
	// Event-driven wait: a read racing the insert's asynchronous
	// visibility returns version 0, which would turn every retry below
	// into an insert-semantics proposal that can never succeed.
	var verA Version
	waitFor(t, "insert visibility", func() bool {
		var exists bool
		_, verA, exists, _ = a.Read("c/1")
		return exists && verA >= 1
	})
	// Visibility of a's insert is asynchronous; under load a replica
	// quorum can still be at version 0 for a moment. Retry until the
	// write lands (each attempt is a fresh option, so a rejected try
	// leaves no state behind).
	okB := false
	for attempt := 0; attempt < 20 && !okB; attempt++ {
		okB, _ = b.Commit(Physical("c/1", verA, Value{Attrs: map[string]int64{"x": 5}}))
		if !okB {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !okB {
		t.Fatal("b's update failed")
	}
	// a's stale write must abort.
	if ok, _ := a.Commit(Physical("c/1", verA, Value{Attrs: map[string]int64{"x": 9}})); ok {
		t.Fatal("stale write committed (lost update)")
	}
}

func TestCommutativeWithConstraint(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{
		Constraints: []Constraint{MinBound("stock", 0)},
	})
	s := c.Session(EUIreland)
	if ok, _ := s.Commit(Insert("inv/1", Value{Attrs: map[string]int64{"stock": 3}})); !ok {
		t.Fatal("insert failed")
	}
	committed := 0
	for i := 0; i < 6; i++ {
		if ok, err := s.Commit(Commutative("inv/1", map[string]int64{"stock": -1})); err != nil {
			t.Fatal(err)
		} else if ok {
			committed++
		}
	}
	if committed > 3 {
		t.Fatalf("%d decrements committed against stock 3", committed)
	}
	val, _, _, _ := s.Read("inv/1")
	if val.Attr("stock") < 0 {
		t.Fatalf("constraint violated: %d", val.Attr("stock"))
	}
}

func TestTransactRetryLoop(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("t/1", Value{Attrs: map[string]int64{"n": 0}})); !ok {
		t.Fatal("insert failed")
	}
	// Event-driven wait: a Transact read racing the insert's async
	// visibility sees version 0 and proposes with insert semantics,
	// burning retry attempts on a race that is not under test.
	waitFor(t, "insert visibility", func() bool {
		_, ver, exists, _ := s.Read("t/1")
		return exists && ver >= 1
	})
	ok, err := s.Transact(3, func(tx *TxView) error {
		v, ver, _ := tx.Read("t/1")
		tx.Write("t/1", ver, v.WithAttr("n", v.Attr("n")+1))
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("transact: %v %v", ok, err)
	}
	// The committed write's visibility is asynchronous too.
	waitFor(t, "transact visibility", func() bool {
		v, _, _, _ := s.Read("t/1")
		return v.Attr("n") == 1
	})
}

func TestTransactUserError(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	wantErr := fmt.Errorf("business rule")
	ok, err := s.Transact(3, func(tx *TxView) error { return wantErr })
	if ok || err != wantErr {
		t.Fatalf("Transact = %v, %v", ok, err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("cc/1", Value{Attrs: map[string]int64{"n": 0}})); !ok {
		t.Fatal("insert failed")
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		dc := DC(g % 5)
		go func() {
			defer wg.Done()
			sess := c.Session(dc)
			ok, err := sess.Transact(10, func(tx *TxView) error {
				v, ver, _ := tx.Read("cc/1")
				tx.Write("cc/1", ver, v.WithAttr("n", v.Attr("n")+1))
				return nil
			})
			if err != nil {
				t.Errorf("transact: %v", err)
				return
			}
			if ok {
				mu.Lock()
				commits++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	var final int64
	for i := 0; i < 100; i++ {
		v, _, _, err := s.Read("cc/1")
		if err != nil {
			t.Fatal(err)
		}
		final = v.Attr("n")
		if final == int64(commits) {
			break
		}
	}
	if final != int64(commits) {
		t.Fatalf("counter %d != %d commits (lost update)", final, commits)
	}
}

func TestReadMany(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(APSingapore)
	var ups []Update
	for i := 0; i < 5; i++ {
		ups = append(ups, Insert(Key(fmt.Sprintf("m/%d", i)), Value{Attrs: map[string]int64{"i": int64(i)}}))
	}
	if ok, _ := s.Commit(ups...); !ok {
		t.Fatal("bulk insert failed")
	}
	keys := []Key{"m/0", "m/1", "m/2", "m/3", "m/4", "m/none"}
	// Visibility is asynchronous: the local replica may lag the
	// commit acknowledgement briefly (read committed, not
	// read-your-writes). Retry until it converges.
	var vals []Value
	var exist []bool
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		vals, _, exist, err = s.ReadMany(keys)
		if err != nil {
			t.Fatal(err)
		}
		all := true
		for i := 0; i < 5; i++ {
			if !exist[i] {
				all = false
			}
		}
		if all {
			break
		}
	}
	for i := 0; i < 5; i++ {
		if !exist[i] || vals[i].Attr("i") != int64(i) {
			t.Fatalf("m/%d = %v %v", i, vals[i], exist[i])
		}
	}
	if exist[5] {
		t.Fatal("phantom record")
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USEast)
	if ok, _ := s.Commit(Insert("d/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	// Wait for the insert's asynchronous visibility to reach the
	// local replica (read committed, not read-your-writes).
	for i := 0; i < 100; i++ {
		if _, _, exists, _ := s.Read("d/1"); exists {
			break
		}
	}
	// A write racing the previous commit's visibility can
	// legitimately abort; the standard OCC retry loop absorbs it.
	ok, err := s.Transact(20, func(tx *TxView) error {
		_, ver, exists := tx.Read("d/1")
		if !exists {
			t.Fatal("record vanished before delete")
		}
		tx.Delete("d/1", ver)
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	var ver2 Version
	for i := 0; i < 100; i++ {
		var exists bool
		_, ver2, exists, _ = s.Read("d/1")
		if !exists && ver2 >= 2 {
			break
		}
	}
	if _, _, exists, _ := s.Read("d/1"); exists {
		t.Fatal("deleted record still exists")
	}
	// Re-insert on top of the tombstone version.
	ok, err = s.Transact(20, func(tx *TxView) error {
		_, ver, _ := tx.Read("d/1")
		tx.Write("d/1", ver, Value{Attrs: map[string]int64{"x": 2}})
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("re-insert: %v %v", ok, err)
	}
	var v Value
	var exists bool
	for i := 0; i < 100; i++ {
		v, _, exists, _ = s.Read("d/1")
		if exists {
			break
		}
	}
	if !exists || v.Attr("x") != 2 {
		t.Fatalf("after re-insert: %v %v", v, exists)
	}
}

func TestFailDCContinues(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("f/1", Value{Attrs: map[string]int64{"x": 0}})); !ok {
		t.Fatal("insert failed")
	}
	// Event-driven wait: visibility is asynchronous, so read until the
	// insert lands before taking the DC down (a read racing visibility
	// returns version 0 and the update below would be rejected for the
	// wrong reason).
	waitFor(t, "insert visibility", func() bool {
		_, _, exists, err := s.Read("f/1")
		return err == nil && exists
	})
	c.FailDC(USEast)
	defer c.RecoverDC(USEast)
	// The claim under test is liveness during the outage (§5.4): one
	// DC down still leaves a fast quorum of 4. Retry the
	// read-modify-write until it commits — a single attempt can lose
	// to a stale read version or a transient recovery under load,
	// neither of which is the outage stalling commits.
	waitFor(t, "commit during outage", func() bool {
		_, ver, _, err := s.Read("f/1")
		if err != nil {
			return false
		}
		ok, err := s.Commit(Physical("f/1", ver, Value{Attrs: map[string]int64{"x": 1}}))
		return err == nil && ok
	})
}

func TestDurableCluster(t *testing.T) {
	dir := t.TempDir()
	c := startTestCluster(t, ClusterConfig{DataDir: dir})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("dur/1", Value{Attrs: map[string]int64{"x": 7}})); !ok {
		t.Fatal("insert failed")
	}
	// Give visibility a moment, then restart the whole cluster from disk.
	for i := 0; i < 50; i++ {
		if v, _, ok, _ := s.Read("dur/1"); ok && v.Attr("x") == 7 {
			break
		}
	}
	c.Close()

	c2, err := StartCluster(ClusterConfig{DataDir: dir, LatencyScale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, _, exists, err := c2.Session(USWest).Read("dur/1")
	if err != nil || !exists || v.Attr("x") != 7 {
		t.Fatalf("after restart: %v %v %v", v, exists, err)
	}
}

func TestModeVariants(t *testing.T) {
	for _, mode := range []Mode{ModeMDCC, ModeFast, ModeMulti} {
		c := startTestCluster(t, ClusterConfig{Mode: mode})
		s := c.Session(USWest)
		if ok, err := s.Commit(Insert("mv/1", Value{Attrs: map[string]int64{"x": 1}})); err != nil || !ok {
			t.Fatalf("mode %v: insert ok=%v err=%v", mode, ok, err)
		}
		// Visibility is asynchronous: a nearest-replica read can race
		// the execute message, so poll briefly.
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, _, exists, _ := s.Read("mv/1")
			if exists && v.Attr("x") == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mode %v: read %v %v", mode, v, exists)
			}
			time.Sleep(10 * time.Millisecond)
		}
		c.Close()
	}
}

func TestReadLatestSeesFresh(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("rl/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	// A quorum read right after commit must observe the committed
	// write: the commit reached a fast quorum (4/5), which intersects
	// every majority (3/5) in at least 2 replicas, at least one of
	// which has applied visibility once it lands. Retry briefly for
	// the visibility race, but require far fewer retries than the
	// local-replica path might need after a failure.
	var ver Version
	var exists bool
	for i := 0; i < 100; i++ {
		var err error
		_, ver, exists, err = s.ReadLatest("rl/1")
		if err != nil {
			t.Fatal(err)
		}
		if exists && ver == 1 {
			return
		}
	}
	t.Fatalf("quorum read never observed the commit: v%d exists=%v", ver, exists)
}

func TestReadLatestSurvivesLocalDCFailure(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("rl/2", Value{Attrs: map[string]int64{"x": 7}})); !ok {
		t.Fatal("insert failed")
	}
	for i := 0; i < 100; i++ {
		if _, _, ok, _ := s.Read("rl/2"); ok {
			break
		}
	}
	// Kill the local DC: plain Read falls back to other DCs after a
	// timeout; ReadLatest keeps working because it only needs any
	// majority.
	c.FailDC(USWest)
	defer c.RecoverDC(USWest)
	v, _, exists, err := s.ReadLatest("rl/2")
	if err != nil || !exists || v.Attr("x") != 7 {
		t.Fatalf("quorum read during local outage: %v %v %v", v, exists, err)
	}
}

func TestClusterAntiEntropyCatchUp(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{SyncInterval: 30 * time.Millisecond})
	s := c.Session(USWest)
	if ok, _ := s.Commit(Insert("sync/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	for i := 0; i < 100; i++ {
		if _, _, ok, _ := s.Read("sync/1"); ok {
			break
		}
	}
	// Partition Tokyo, update, recover, and read from Tokyo: the
	// anti-entropy background sync must deliver the new value without
	// further writes.
	c.FailDC(APTokyo)
	_, ver, _, _ := s.Read("sync/1")
	if ok, _ := s.Commit(Physical("sync/1", ver, Value{Attrs: map[string]int64{"x": 2}})); !ok {
		t.Fatal("update during partition failed")
	}
	c.RecoverDC(APTokyo)
	tokyo := c.Session(APTokyo)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, _, ok, err := tokyo.Read("sync/1")
		if err != nil {
			t.Fatal(err)
		}
		if ok && v.Attr("x") == 2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("tokyo replica never caught up via anti-entropy")
}

func TestSessionGuaranteesReadYourWrites(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	s := c.Session(USWest)
	s.EnableSessionGuarantees()
	if ok, _ := s.Commit(Insert("ryw/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	// The very next read must observe the insert — no retry loop.
	v, ver, exists, err := s.Read("ryw/1")
	if err != nil || !exists || ver < 1 || v.Attr("x") != 1 {
		t.Fatalf("read-your-writes violated: %v v%d %v %v", v, ver, exists, err)
	}
	// Update and read again.
	ok, err := s.Transact(10, func(tx *TxView) error {
		val, vr, _ := tx.Read("ryw/1")
		tx.Write("ryw/1", vr, val.WithAttr("x", 2))
		return nil
	})
	if err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	v, _, _, _ = s.Read("ryw/1")
	if v.Attr("x") != 2 {
		t.Fatalf("own update not visible: %v", v)
	}
}

func TestSessionGuaranteesMonotonic(t *testing.T) {
	c := startTestCluster(t, ClusterConfig{})
	writer := c.Session(USEast)
	reader := c.Session(USWest)
	reader.EnableSessionGuarantees()
	if ok, _ := writer.Commit(Insert("mono/1", Value{Attrs: map[string]int64{"x": 1}})); !ok {
		t.Fatal("insert failed")
	}
	// Reader observes some version; subsequent reads must never
	// return an older one even across many reads racing visibility.
	var maxSeen Version
	for i := 0; i < 50; i++ {
		_, ver, _, err := reader.Read("mono/1")
		if err != nil {
			t.Fatal(err)
		}
		if ver < maxSeen {
			t.Fatalf("monotonic reads violated: saw v%d after v%d", ver, maxSeen)
		}
		if ver > maxSeen {
			maxSeen = ver
		}
		if i == 20 {
			val, wver, _, _ := writer.Read("mono/1")
			writer.Commit(Physical("mono/1", wver, val.WithAttr("x", 9)))
		}
	}
}
