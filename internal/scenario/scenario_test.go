package scenario

import (
	"flag"
	"testing"
	"time"
)

// Smoke sizing keeps CI runs to a few seconds of wall clock per
// scenario; the flags let developers rerun any scenario bigger,
// longer, or with a different fault schedule without touching code:
//
//	go test ./internal/scenario -run Smoke -scenario.seed=7 \
//	    -scenario.clients=200 -scenario.duration=1m
var (
	seedFlag     = flag.Int64("scenario.seed", 1, "scenario harness seed")
	clientsFlag  = flag.Int("scenario.clients", 12, "simulated clients per scenario run")
	durationFlag = flag.Duration("scenario.duration", 12*time.Second, "virtual traffic window")
	faultsFlag   = flag.Bool("scenario.faults", true, "run the nemesis schedule")
)

func smokeOpts() Options {
	return Options{
		Seed:     *seedFlag,
		Clients:  *clientsFlag,
		Duration: *durationFlag,
		Faults:   *faultsFlag,
	}
}

// TestScenarioSmoke runs every registered scenario at smoke scale and
// requires every invariant to hold and commits to have happened.
func TestScenarioSmoke(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := s.Run(smokeOpts())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("\n%s", res.Report())
			if !res.Passed() {
				t.Errorf("scenario %s failed: %d violations, %d unresolved",
					s.Name, len(res.Violations), res.Unresolved)
				for _, v := range res.Violations {
					t.Errorf("  %s", v)
				}
			}
			if res.Commits == 0 {
				t.Errorf("scenario %s committed nothing", s.Name)
			}
			// Read workloads must actually consume validated reads —
			// otherwise the session-guarantee invariants pass vacuously.
			if s.Workload.ReadFrac > 0 && res.Reads == 0 {
				t.Errorf("scenario %s consumed no session-guaranteed reads", s.Name)
			}
		})
	}
}

// TestScenarioCommitsDuringOutage checks the paper's headline §5.4
// claim on the harness: transactions keep committing while a full
// data center is down.
func TestScenarioCommitsDuringOutage(t *testing.T) {
	s, ok := Find("dc-outage")
	if !ok {
		t.Fatal("dc-outage not registered")
	}
	res, err := s.Run(smokeOpts())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("dc-outage failed:\n%s", res.Report())
	}
	// The outage spans 35% of the window; with commits flowing
	// throughout, the commit count cannot be explained by the healthy
	// 65% alone unless throughput is at least maintained.
	if res.Commits < 50 {
		t.Errorf("suspiciously few commits through the outage: %d", res.Commits)
	}
}

// TestScenarioDeterminism reruns one fault-heavy scenario with the
// same seed and demands an identical outcome — the property that
// makes any scenario failure reproducible from its seed alone.
func TestScenarioDeterminism(t *testing.T) {
	s, ok := Find("chaos-mix")
	if !ok {
		t.Fatal("chaos-mix not registered")
	}
	opts := smokeOpts()
	a, err := s.Run(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := s.Run(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Errorf("same seed, different outcomes: %d/%d commits, %d/%d aborts",
			a.Commits, b.Commits, a.Aborts, b.Aborts)
	}
	if a.Net.Delivered != b.Net.Delivered || a.Net.Dropped != b.Net.Dropped {
		t.Errorf("same seed, different network history: delivered %d/%d dropped %d/%d",
			a.Net.Delivered, b.Net.Delivered, a.Net.Dropped, b.Net.Dropped)
	}
	if len(a.Violations) != len(b.Violations) {
		t.Errorf("same seed, different violations: %d vs %d", len(a.Violations), len(b.Violations))
	}
}

// TestScenarioSeedSensitivity is a cheap sanity check that the seed
// actually steers the run (a frozen RNG would make the determinism
// test vacuous).
func TestScenarioSeedSensitivity(t *testing.T) {
	s, _ := Find("dc-outage")
	o1 := smokeOpts()
	o2 := smokeOpts()
	o2.Seed = o1.Seed + 1
	a, err := s.Run(o1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := s.Run(o2)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Net.Delivered == b.Net.Delivered && a.Commits == b.Commits && a.Aborts == b.Aborts {
		t.Errorf("different seeds produced identical runs (delivered=%d commits=%d aborts=%d)",
			a.Commits, a.Net.Delivered, a.Aborts)
	}
}
