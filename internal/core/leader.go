package core

import (
	"sort"
	"time"

	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// leaderRec is the master-role state for one record on the node that
// acts (or is asked to act) as its leader. In Multi mode the
// designated master owns classic ballot 1 implicitly — the
// Multi-Paxos mastership reservation over all instances (§3.1.2) —
// and skips Phase 1. Otherwise leadership is acquired on demand for
// collision/timeout recovery (§3.3.1).
type leaderRec struct {
	ballot paxos.Ballot
	owned  bool
	phase1 *phase1Ctx

	seq   uint64
	props map[uint64]*proposalCtx

	// cstruct mirrors the unresolved options of the owned ballot;
	// every Phase2a ships the full cstruct so replicas stay identical.
	cstruct []VotedOption

	// learned records Paxos decisions this leader made (distinct from
	// the acceptor's decided log, which records execution outcomes).
	learned *decidedLog

	// classicLeft counts learned instances until fast ballots are
	// re-enabled (the γ fast-policy, §3.3.2). -1 means "classic
	// forever" (Multi mode).
	classicLeft int

	queue   []Option
	waiters map[OptionID][]optWaiter
}

type phase1Ctx struct {
	ballot  paxos.Ballot
	replies map[transport.NodeID]MsgPhase1b
}

type proposalCtx struct {
	ballot   paxos.Ballot
	snapshot []VotedOption
	acks     map[transport.NodeID]bool
	done     bool
}

// optWaiter is a dangling-transaction recovery request awaiting this
// leader's decision on one option. keySeq carries the queried
// option's lineage identity (when the requester knew it) so the
// waiter can be answered exactly from a summary.
type optWaiter struct {
	reqID  uint64
	from   transport.NodeID
	keySeq uint64
}

// lr returns (creating lazily) the leader state for a key.
func (n *StorageNode) lr(key record.Key) *leaderRec {
	l, ok := n.ldrs[key]
	if !ok {
		l = &leaderRec{
			props:       make(map[uint64]*proposalCtx),
			learned:     newDecidedLog(0, n.cfg.DecidedRetention),
			waiters:     make(map[OptionID][]optWaiter),
			classicLeft: n.cfg.Gamma,
		}
		if n.cfg.Mode == ModeMulti {
			if n.leaderFor(key) == n.id {
				l.owned = true
				l.ballot = paxos.Classic(1, string(n.id))
			}
			l.classicLeft = -1
		}
		n.ldrs[key] = l
	}
	return l
}

// onStartRecovery handles a coordinator's collision/timeout recovery
// request: take (or retake) leadership classically and force every
// unresolved option — including the requester's, which it attaches so
// the option cannot be lost even if no acceptor remembers it.
func (n *StorageNode) onStartRecovery(m MsgStartRecovery) {
	if m.HasOpt {
		n.leaderPropose(m.Opt, true)
		return
	}
	l := n.lr(m.Key)
	l.resetGamma(n.cfg)
	if !l.owned && l.phase1 == nil {
		n.startPhase1(m.Key, l)
	}
}

// leaderPropose runs an option through a classic ballot this node
// leads. recovery marks collision recovery, which (re)opens the γ
// classic window.
func (n *StorageNode) leaderPropose(opt Option, recovery bool) {
	key := opt.Update.Key
	id := opt.ID()
	r := n.rs(key)
	l := n.lr(key)

	if recovery {
		l.resetGamma(n.cfg)
	}

	comm := opt.Update.Kind == record.KindCommutative
	// Already settled? Answer immediately. The summary answers for
	// options whose decided-log entry was released.
	if d, ok := r.decided.get(id); ok {
		n.notifyLearned(opt.Coord, id, d, ReasonNone, comm)
		n.resolveWaiters(l, id, d)
		return
	}
	if d, ok := l.learned.get(id); ok {
		n.notifyLearned(opt.Coord, id, d, ReasonNone, comm)
		n.resolveWaiters(l, id, d)
		return
	}
	if opt.KeySeq > 0 {
		if d, ok := r.summary.Decision(laneOf(opt.Tx), opt.KeySeq); ok {
			n.notifyLearned(opt.Coord, id, d, ReasonNone, comm)
			n.resolveWaiters(l, id, d)
			return
		}
	}
	// Ring fence: a shard move re-homed the key and this node's group
	// no longer owns it. Leading a classic round here — even one the γ
	// window says we still "own" — would decide options against a stale
	// base while the key's new replica group decides independently.
	// Tell the coordinator to re-route under the current ring.
	if !n.owns(key) {
		n.nWrongGroupRefusals++
		n.net.Send(n.id, opt.Coord, MsgVote{OptID: id, WrongGroup: true})
		return
	}

	// Already in flight (duplicate propose / concurrent recovery)?
	for _, v := range l.cstruct {
		if v.Opt.ID() == id {
			return
		}
	}
	for _, q := range l.queue {
		if q.ID() == id {
			return
		}
	}

	if !l.owned {
		l.queue = append(l.queue, opt)
		if l.phase1 == nil {
			n.startPhase1(key, l)
		}
		return
	}

	dec, reason := n.evalOption(l.cstruct, opt, false)
	l.cstruct = append(l.cstruct, VotedOption{Opt: opt, Decision: dec, Reason: reason})
	n.sendPhase2a(key, l)
}

// resetGamma (re)opens the classic window after a collision.
func (l *leaderRec) resetGamma(cfg Config) {
	if cfg.Mode == ModeMulti {
		return // always classic anyway
	}
	if g := cfg.Gamma; l.classicLeft < g {
		l.classicLeft = g
	}
}

// startPhase1 opens a new classic ballot above everything this node
// has seen for the record.
func (n *StorageNode) startPhase1(key record.Key, l *leaderRec) {
	// Ring fence: never campaign for a key this group no longer owns.
	// Queued options are dropped; their coordinators' option timers
	// recover them through the key's current replica group.
	if !n.owns(key) {
		l.queue = nil
		return
	}
	r := n.rs(key)
	base := l.ballot
	if base.Less(r.promised) {
		base = r.promised
	}
	ballot := base.Next(string(n.id))
	l.phase1 = &phase1Ctx{ballot: ballot, replies: make(map[transport.NodeID]MsgPhase1b)}
	if n.tr != nil {
		// Node-scoped (tx-less) event: the ballot takeover serves every
		// queued option on the record; timelines pick it up by key.
		n.tr.Add(trace.Event{At: n.net.Now().UnixNano(), Key: string(key),
			Stage: trace.StagePhase1, Arg: int64(len(l.queue))})
	}
	for _, rep := range n.cl.Replicas(key) {
		n.net.Send(n.id, rep, MsgPhase1a{Key: key, Ballot: ballot})
	}
}

// onPhase1b collects promises. A higher promise in the reply means
// another leader outranks us: back off briefly and retry higher.
func (n *StorageNode) onPhase1b(from transport.NodeID, m MsgPhase1b) {
	l := n.lr(m.Key)
	p1 := l.phase1
	if p1 == nil {
		return
	}
	if p1.ballot.Less(m.Ballot) {
		// Preempted. Retry above the observed ballot after a beat.
		l.phase1 = nil
		key := m.Key
		seen := m.Ballot
		n.net.After(n.id, 50*time.Millisecond, func() {
			if n.halted {
				return
			}
			l2 := n.lr(key)
			if l2.owned || l2.phase1 != nil {
				return
			}
			r := n.rs(key)
			if r.promised.Less(seen) {
				r.promised = seen
			}
			if len(l2.queue) > 0 || len(l2.waiters) > 0 {
				n.startPhase1(key, l2)
			}
		})
		return
	}
	if m.Ballot.Cmp(p1.ballot) != 0 {
		return // stale reply for an older attempt
	}
	p1.replies[from] = m
	if len(p1.replies) < n.q.Classic {
		return
	}
	n.finishPhase1(m.Key, l, p1)
}

// finishPhase1 is the Generalized Paxos ProvedSafe step (algorithm 2
// lines 49-57), adapted to options: adopt the freshest committed
// base, carry forward every decision that may already have been
// chosen by a fast quorum, re-evaluate the rest deterministically,
// and propose the combined cstruct in the new ballot.
func (n *StorageNode) finishPhase1(key record.Key, l *leaderRec, p1 *phase1Ctx) {
	l.phase1 = nil
	l.owned = true
	l.ballot = p1.ballot

	// Adopt the freshest committed state among the quorum (a lagging
	// leader must not re-evaluate against stale data; Phase2a then
	// pushes this base to lagging replicas). Only the single freshest
	// reply is adopted, with its lineage summary: adoptBase merges via
	// summary diff, grafting this replica's own applies the incoming
	// base is missing. Every reply also feeds the peer-ack ledger.
	r := n.rs(key)
	_, localVer, _ := n.store.Get(key)
	// Deterministic reply order (ties on Version must not depend on
	// map iteration).
	froms := make([]transport.NodeID, 0, len(p1.replies))
	for from := range p1.replies {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	var freshest *MsgPhase1b
	for _, from := range froms {
		rep := p1.replies[from]
		n.notePeerLineage(r, from, rep.Lineage)
		if rep.Version > localVer && (freshest == nil || rep.Version > freshest.Version) {
			freshest = &rep
		}
	}
	if freshest != nil {
		n.adoptBase(key, freshest.Value, freshest.Version, freshest.Lineage, "phase1")
	}

	// Gather votes and known decisions.
	type tally struct {
		opt        Option
		accepts    int      // fast-ballot accept votes
		rejects    int      // fast-ballot reject votes
		carried    bool     // present in the highest classic cstruct
		carriedDec Decision // its decision there
		stale      bool     // seen only in a superseded classic cstruct
		decision   Decision // from decided logs, if any
		decided    bool
	}
	tallies := make(map[OptionID]*tally)
	get := func(opt Option) *tally {
		t, ok := tallies[opt.ID()]
		if !ok {
			t = &tally{opt: opt}
			tallies[opt.ID()] = t
		} else if t.opt.Update.Kind == 0 {
			// Entry was created from a decided log (no contents); a
			// vote carries the full option — backfill so downstream
			// consumers see the contents regardless of reply order.
			t.opt = opt
		}
		return t
	}
	responded := len(p1.replies)
	// Classic Paxos value selection: votes accepted in a classic
	// ballot are a leader-built cstruct replicated verbatim, so the
	// cstruct at the HIGHEST accepted classic ballot among the replies
	// must be adopted as-is — even if only one responder reports it (a
	// competing leader's Phase2a may have reached just one member of
	// our quorum, yet completed a full quorum elsewhere and been
	// learned). Counting classic votes against the fast-quorum
	// threshold instead lets two overlapping classic rounds decide
	// conflicting options — observed as two acknowledged commits
	// sharing one read version. Fast-ballot votes keep the Fast Paxos
	// possibly-chosen analysis below.
	var maxClassic paxos.Ballot
	haveClassic := false
	for _, from := range froms {
		rep := p1.replies[from]
		if !rep.Bal.Fast && (!haveClassic || maxClassic.Less(rep.Bal)) {
			maxClassic, haveClassic = rep.Bal, true
		}
	}
	for _, from := range froms {
		rep := p1.replies[from]
		atMax := haveClassic && !rep.Bal.Fast && rep.Bal.Cmp(maxClassic) == 0
		for _, v := range rep.Votes {
			t := get(v.Opt)
			switch {
			case atMax:
				t.carried, t.carriedDec = true, v.Decision
			case rep.Bal.Fast:
				if v.Decision == DecAccept {
					t.accepts++
				} else {
					t.rejects++
				}
			default:
				// Superseded lower classic ballot: its decisions were
				// never (and can no longer be) chosen; re-evaluate the
				// option freshly so it is not silently lost.
				t.stale = true
			}
		}
	}
	// Settled-option detection: a tallied option may already be
	// executed or discarded somewhere. The local decided log, the
	// local summary, and every reply's lineage summary answer exactly
	// — including for options settled long before any retention
	// window, which the old decided-list exchange could not see.
	for id, t := range tallies {
		if d, ok := r.decided.get(id); ok {
			t.decided, t.decision = true, d
			continue
		}
		if t.opt.KeySeq == 0 {
			continue
		}
		lane := laneOf(id.Tx)
		if d, ok := r.summary.Decision(lane, t.opt.KeySeq); ok {
			t.decided, t.decision = true, d
			continue
		}
		for _, from := range froms {
			if d, ok := p1.replies[from].Lineage.Decision(lane, t.opt.KeySeq); ok {
				t.decided, t.decision = true, d
				break
			}
		}
	}

	// Deterministic processing order.
	ids := make([]OptionID, 0, len(tallies))
	for id := range tallies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Tx != ids[j].Tx {
			return ids[i].Tx < ids[j].Tx
		}
		return ids[i].Key < ids[j].Key
	})

	// First pass: carry possibly-chosen decisions (they may already
	// be learned by some coordinator and must survive).
	newCStruct := make([]VotedOption, 0, len(tallies))
	var free []Option
	for _, id := range ids {
		t := tallies[id]
		if traceOn(id.Key) {
			tracef("%v %s phase1-tally tx=%s acc=%d rej=%d carried=%v/%v stale=%v responded=%d decided=%v/%v",
				n.net.Now().Unix(), n.id, id.Tx, t.accepts, t.rejects, t.carried, t.carriedDec, t.stale, responded, t.decided, t.decision)
		}
		if t.decided {
			// Settled (executed/discarded) at some replica: nothing to
			// carry; make sure recovery requesters hear the outcome.
			n.resolveWaiters(l, id, t.decision)
			l.learned.record(id, t.decision, t.opt, t.opt.Update.Kind != 0, n.net.Now())
			if t.opt.Update.Kind != 0 {
				// Some replica still holds an unresolved vote for this
				// settled option — its visibility was lost (e.g. dropped
				// crossing a partition). Re-broadcast it: replicas that
				// executed it skip idempotently, the rest apply/discard.
				// Without this, the Phase2a below wipes those votes and
				// with them the sweep trigger that would eventually have
				// recovered the update, and an acknowledged commit whose
				// effect lives only on soon-to-be-overwritten stale
				// replicas is lost for good.
				vis := MsgVisibility{Opt: t.opt, Commit: t.decision == DecAccept}
				for _, rep := range n.cl.Replicas(key) {
					n.net.Send(n.id, rep, vis)
				}
			}
			continue
		}
		switch {
		case t.carried:
			newCStruct = append(newCStruct, VotedOption{Opt: t.opt, Decision: t.carriedDec})
		case n.q.PossiblyChosen(t.accepts, responded):
			newCStruct = append(newCStruct, VotedOption{Opt: t.opt, Decision: DecAccept})
		case n.q.PossiblyChosen(t.rejects, responded):
			newCStruct = append(newCStruct, VotedOption{Opt: t.opt, Decision: DecReject})
		default:
			free = append(free, t.opt)
		}
	}
	// Queued proposals that surfaced nowhere else are free options.
	for _, q := range l.queue {
		if _, ok := tallies[q.ID()]; !ok {
			if _, done := r.decided.get(q.ID()); done {
				continue
			}
			if _, done := l.learned.get(q.ID()); done {
				continue
			}
			free = append(free, q)
		}
	}
	l.queue = nil

	// Second pass: evaluate free options in order against the carried
	// set — deterministic, so every replica adopting this cstruct
	// agrees (the paper's requirement that all storage nodes make the
	// same decision).
	sort.Slice(free, func(i, j int) bool {
		if free[i].Tx != free[j].Tx {
			return free[i].Tx < free[j].Tx
		}
		return free[i].Update.Key < free[j].Update.Key
	})
	for _, opt := range free {
		dec, reason := n.evalOption(newCStruct, opt, false)
		if traceOn(opt.Update.Key) {
			tracef("%v %s phase1-free tx=%s dec=%v", n.net.Now().Unix(), n.id, opt.Tx, dec)
		}
		newCStruct = append(newCStruct, VotedOption{Opt: opt, Decision: dec, Reason: reason})
	}

	l.cstruct = newCStruct
	// Recovery requests for options that vanished entirely: nobody
	// voted for them and the requester had no copy — not chosen up to
	// this ballot. Answering "rejected" out-of-band would be unsafe
	// (a later fast ballot could still choose them; see onRecoverOpt),
	// so the rejection is settled through this round's cstruct and the
	// waiters are answered when it learns. Sorted for determinism.
	wids := make([]OptionID, 0, len(l.waiters))
	for id := range l.waiters {
		wids = append(wids, id)
	}
	sort.Slice(wids, func(i, j int) bool {
		if wids[i].Tx != wids[j].Tx {
			return wids[i].Tx < wids[j].Tx
		}
		return wids[i].Key < wids[j].Key
	})
	for _, id := range wids {
		if _, ok := tallies[id]; ok {
			continue
		}
		inC := false
		for _, v := range l.cstruct {
			if v.Opt.ID() == id {
				inC = true
				break
			}
		}
		if inC {
			continue
		}
		// Settled knowledge first: the local log/summary or any reply's
		// summary may know the outcome of an option that has no votes
		// left anywhere (settled and fully pruned). Answering from it
		// is exact; the fiat-reject below is only for options that
		// provably never settled up to this ballot.
		if d, ok := r.decided.get(id); ok {
			n.resolveWaiters(l, id, d)
			continue
		}
		if d, ok := n.waiterSummaryDecision(r, l, p1, froms, id); ok {
			n.resolveWaiters(l, id, d)
			continue
		}
		// Stamp the requester's lineage identity onto the fiat reject
		// (when known) so the settled decision enters summaries and
		// outlives every cache (see onRecoverOpt).
		var keySeq uint64
		for _, w := range l.waiters[id] {
			if w.keySeq > 0 {
				keySeq = w.keySeq
				break
			}
		}
		l.cstruct = append(l.cstruct, VotedOption{
			Opt:      Option{Tx: id.Tx, Update: record.Update{Key: id.Key}, KeySeq: keySeq},
			Decision: DecReject,
		})
	}

	if len(l.cstruct) > 0 {
		n.sendPhase2a(key, l)
	} else {
		n.maybeEnableFast(key, l)
	}
}

// waiterSummaryDecision answers a recovery waiter's option from exact
// settled knowledge: the waiter's lineage identity (if the requester
// knew it) looked up in the local summary and in every Phase1b
// reply's summary.
func (n *StorageNode) waiterSummaryDecision(r *recState, l *leaderRec, p1 *phase1Ctx,
	froms []transport.NodeID, id OptionID) (Decision, bool) {
	var keySeq uint64
	for _, w := range l.waiters[id] {
		if w.keySeq > 0 {
			keySeq = w.keySeq
			break
		}
	}
	if keySeq == 0 {
		return DecUnknown, false
	}
	lane := laneOf(id.Tx)
	if d, ok := r.summary.Decision(lane, keySeq); ok {
		return d, true
	}
	for _, from := range froms {
		if d, ok := p1.replies[from].Lineage.Decision(lane, keySeq); ok {
			return d, true
		}
	}
	return DecUnknown, false
}

// sendPhase2a broadcasts the full current cstruct with the leader's
// committed base piggybacked.
func (n *StorageNode) sendPhase2a(key record.Key, l *leaderRec) {
	// Ring fence: a deposed-by-move leader must not push its cstruct at
	// the key's new replica group (Replicas routes by the current ring,
	// so the Phase2a would land there and be adopted verbatim).
	if !n.owns(key) {
		l.owned = false
		l.cstruct = nil
		return
	}
	l.seq++
	snap := append([]VotedOption(nil), l.cstruct...)
	l.props[l.seq] = &proposalCtx{
		ballot:   l.ballot,
		snapshot: snap,
		acks:     make(map[transport.NodeID]bool),
	}
	val, ver, ok := n.store.Get(key)
	// Snapshot the leader's lineage summary together with its base:
	// the base contains exactly these options' effects (same handler
	// context, so store and summary are mutually consistent).
	r := n.rs(key)
	msg := MsgPhase2a{
		Key: key, Ballot: l.ballot, Seq: l.seq, CStruct: snap,
		HasBase: true, BaseVersion: ver, BaseValue: val, BaseExists: ok && !val.Tombstone,
		BaseLineage: r.summary.Clone(),
	}
	if n.cfg.ShipFullLineage {
		msg.LegacyDecided = decidedList(r.decided)
	}
	if n.tr != nil {
		// One event per option in the broadcast cstruct, so each
		// transaction's timeline shows its classic-ordering hop.
		at := n.net.Now().UnixNano()
		for _, v := range snap {
			n.tr.Add(trace.Event{At: at, Tx: string(v.Opt.Tx), Key: string(key),
				Stage: trace.StagePhase2a, Arg: int64(len(snap))})
		}
	}
	for _, rep := range n.cl.Replicas(key) {
		n.net.Send(n.id, rep, msg)
	}
}

// onPhase2b counts acknowledgements; a classic quorum learns every
// option in the acknowledged snapshot.
func (n *StorageNode) onPhase2b(from transport.NodeID, m MsgPhase2b) {
	l := n.lr(m.Key)
	prop, ok := l.props[m.Seq]
	if !ok || prop.done {
		return
	}
	if !m.OK {
		// Preempted by a higher ballot: drop ownership and retry.
		delete(l.props, m.Seq)
		n.abandonLeadership(m.Key, l, m.Promised)
		return
	}
	if m.Ballot.Cmp(prop.ballot) != 0 {
		return
	}
	prop.acks[from] = true
	if len(prop.acks) < n.q.Classic {
		return
	}
	prop.done = true
	delete(l.props, m.Seq)
	for _, v := range prop.snapshot {
		id := v.Opt.ID()
		if _, done := l.learned.get(id); done {
			continue
		}
		r := n.rs(m.Key)
		if _, done := r.decided.get(id); done {
			continue
		}
		l.learned.record(id, v.Decision, v.Opt, true, n.net.Now())
		l.learned.compactLegacy(n.net.Now())
		n.notifyLearned(v.Opt.Coord, id, v.Decision, v.Reason,
			v.Opt.Update.Kind == record.KindCommutative)
		n.resolveWaiters(l, id, v.Decision)
		if v.Decision == DecReject {
			// Rejected options never execute; drop them from the
			// leader's cstruct now (acceptors prune on the abort
			// visibility from the coordinator).
			n.dropFromCStruct(l, id)
		}
		if l.classicLeft > 0 {
			l.classicLeft--
		}
	}
	n.maybeEnableFast(m.Key, l)
}

// abandonLeadership reacts to preemption: requeue unresolved options
// and retry Phase 1 above the observed ballot.
func (n *StorageNode) abandonLeadership(key record.Key, l *leaderRec, seen paxos.Ballot) {
	l.owned = false
	for _, v := range l.cstruct {
		l.queue = append(l.queue, v.Opt)
	}
	l.cstruct = nil
	for s := range l.props {
		delete(l.props, s)
	}
	r := n.rs(key)
	if r.promised.Less(seen) {
		r.promised = seen
	}
	if l.phase1 == nil && (len(l.queue) > 0 || len(l.waiters) > 0) {
		n.net.After(n.id, 50*time.Millisecond, func() {
			if n.halted {
				return
			}
			l2 := n.lr(key)
			if !l2.owned && l2.phase1 == nil && (len(l2.queue) > 0 || len(l2.waiters) > 0) {
				n.startPhase1(key, l2)
			}
		})
	}
}

// maybeEnableFast re-opens fast ballots once the γ classic window has
// drained and nothing is unresolved (the fast-policy probe, §3.3.2).
func (n *StorageNode) maybeEnableFast(key record.Key, l *leaderRec) {
	if n.cfg.Mode == ModeMulti || !l.owned || l.classicLeft != 0 || !n.owns(key) {
		return
	}
	for _, v := range l.cstruct {
		if _, done := l.learned.get(v.Opt.ID()); !done {
			return // proposals still in flight
		}
	}
	if len(l.props) > 0 {
		return
	}
	fast := l.ballot.NextFast()
	for _, rep := range n.cl.Replicas(key) {
		n.net.Send(n.id, rep, MsgEnableFast{Key: key, Ballot: fast})
	}
	l.owned = false
	l.ballot = fast
	l.classicLeft = n.cfg.Gamma // next collision re-enters classic with a full window
	n.nEnableFast++
}

// dropFromCStruct removes a settled option from the leader mirror.
func (n *StorageNode) dropFromCStruct(l *leaderRec, id OptionID) {
	for i, v := range l.cstruct {
		if v.Opt.ID() == id {
			l.cstruct = append(l.cstruct[:i], l.cstruct[i+1:]...)
			return
		}
	}
}

// leaderObserveVisibility prunes leader state when an option
// executes or aborts on this node.
func (n *StorageNode) leaderObserveVisibility(key record.Key, id OptionID) {
	l, ok := n.ldrs[key]
	if !ok {
		return
	}
	n.dropFromCStruct(l, id)
	if d, known := n.rs(key).decided.get(id); known {
		n.resolveWaiters(l, id, d)
	}
	n.maybeEnableFast(key, l)
}

// notifyLearned tells a coordinator an option's decision.
// commutative selects the escrow piggyback: classic-path learns are
// the only freshness channel a record inside a γ window has (it
// produces no fast-path votes), so the leader attaches its own
// demarcation snapshot exactly as acceptors do on Phase2b votes.
func (n *StorageNode) notifyLearned(coord transport.NodeID, id OptionID, d Decision, reason RejectReason, commutative bool) {
	if coord == "" {
		return
	}
	msg := MsgLearned{OptID: id, Decision: d, Reason: reason}
	if commutative && len(n.cfg.Constraints) > 0 {
		val, ver, _ := n.store.Get(id.Key)
		msg.Escrow = n.escrowSnap(id.Key, val, ver, coord)
	}
	n.net.Send(n.id, coord, msg)
}

// resolveWaiters answers dangling-recovery requests for an option.
func (n *StorageNode) resolveWaiters(l *leaderRec, id OptionID, d Decision) {
	ws, ok := l.waiters[id]
	if !ok {
		return
	}
	delete(l.waiters, id)
	opt, hasOpt := Option{}, false
	if e, found := l.learned.entry(id); found && e.HasOpt {
		opt, hasOpt = e.Opt, true
	}
	for _, w := range ws {
		n.net.Send(n.id, w.from, MsgOptDecided{
			ReqID: w.reqID, Tx: id.Tx, Key: id.Key, Decision: d, Opt: opt, HasOpt: hasOpt,
		})
	}
}
