package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type ping struct{ Seq int }
type pong struct{ Seq int }

func init() {
	RegisterMessage(ping{})
	RegisterMessage(pong{})
}

func TestLocalRoundTrip(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	done := make(chan int, 1)
	n.Register("b", func(e Envelope) {
		p := e.Msg.(ping)
		n.Send("b", e.From, pong{Seq: p.Seq})
	})
	n.Register("a", func(e Envelope) {
		done <- e.Msg.(pong).Seq
	})
	n.Send("a", "b", ping{Seq: 7})
	select {
	case seq := <-done:
		if seq != 7 {
			t.Fatalf("round trip seq = %d, want 7", seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("round trip timed out")
	}
}

func TestLocalSerializesPerNode(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	var inHandler atomic.Int32
	var overlapped atomic.Bool
	var count atomic.Int32
	done := make(chan struct{})
	n.Register("sink", func(e Envelope) {
		if inHandler.Add(1) > 1 {
			overlapped.Store(true)
		}
		time.Sleep(time.Microsecond)
		inHandler.Add(-1)
		if count.Add(1) == 100 {
			close(done)
		}
	})
	for i := 0; i < 100; i++ {
		n.Send("src", "sink", ping{Seq: i})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("messages not delivered")
	}
	if overlapped.Load() {
		t.Fatal("handler invocations overlapped for one node")
	}
}

func TestLocalLatency(t *testing.T) {
	n := NewLocal(func(from, to NodeID) time.Duration { return 30 * time.Millisecond })
	defer n.Close()
	got := make(chan time.Time, 1)
	n.Register("b", func(e Envelope) { got <- time.Now() })
	start := time.Now()
	n.Send("a", "b", ping{})
	select {
	case at := <-got:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~30ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestLocalSendToUnknownDropped(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	n.Send("a", "ghost", ping{}) // must not panic or block
	time.Sleep(10 * time.Millisecond)
}

func TestLocalAfterSerialized(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	n.Register("a", func(e Envelope) {
		mu.Lock()
		order = append(order, "msg")
		mu.Unlock()
	})
	n.After("a", 20*time.Millisecond, func() {
		mu.Lock()
		order = append(order, "timer")
		mu.Unlock()
		close(done)
	})
	n.Send("x", "a", ping{})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "msg" || order[1] != "timer" {
		t.Fatalf("order = %v, want [msg timer]", order)
	}
}

func TestLocalAfterStop(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	n.Register("a", func(Envelope) {})
	var fired atomic.Bool
	tm := n.After("a", 30*time.Millisecond, func() { fired.Store(true) })
	tm.Stop()
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Fatal("stopped timer fired")
	}
}

func TestUniformJitter(t *testing.T) {
	base := func(from, to NodeID) time.Duration { return 100 * time.Millisecond }
	j := UniformJitter(base, 0.1, rand.New(rand.NewSource(1)))
	for i := 0; i < 100; i++ {
		d := j("a", "b")
		if d < 90*time.Millisecond || d > 110*time.Millisecond {
			t.Fatalf("jittered latency %v outside ±10%%", d)
		}
	}
	if UniformJitter(nil, 0.1, nil) != nil {
		t.Fatal("nil base should pass through")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	// Two "processes": server hosts node srv, client hosts node cli.
	srvNet := NewTCP(nil)
	defer srvNet.Close()
	srvAddr, err := srvNet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cliNet := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cliNet.Close()
	cliAddr, err := cliNet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvNet.AddRoute("cli", cliAddr)

	srvNet.Register("srv", func(e Envelope) {
		srvNet.Send("srv", e.From, pong{Seq: e.Msg.(ping).Seq * 2})
	})
	done := make(chan int, 1)
	cliNet.Register("cli", func(e Envelope) { done <- e.Msg.(pong).Seq })

	cliNet.Send("cli", "srv", ping{Seq: 21})
	select {
	case seq := <-done:
		if seq != 42 {
			t.Fatalf("TCP round trip = %d, want 42", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TCP round trip timed out")
	}
}

func TestTCPNoRouteDropped(t *testing.T) {
	n := NewTCP(nil)
	defer n.Close()
	dropped := make(chan string, 1)
	n.Logf = func(format string, args ...interface{}) {
		select {
		case dropped <- format:
		default:
		}
	}
	n.Send("a", "nowhere", ping{})
	select {
	case <-dropped:
	case <-time.After(time.Second):
		t.Fatal("expected a drop diagnostic")
	}
}

func TestTCPManyMessages(t *testing.T) {
	srvNet := NewTCP(nil)
	defer srvNet.Close()
	srvAddr, err := srvNet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cliNet := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cliNet.Close()

	const total = 500
	var got atomic.Int32
	done := make(chan struct{})
	srvNet.Register("srv", func(e Envelope) {
		if got.Add(1) == total {
			close(done)
		}
	})
	for i := 0; i < total; i++ {
		cliNet.Send("cli", "srv", ping{Seq: i})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("received %d of %d messages", got.Load(), total)
	}
}

func TestTCPHelloRegistersRoute(t *testing.T) {
	// A server with no static route back to the client can still
	// reply after the client's hello announces its address.
	srv := NewTCP(nil)
	defer srv.Close()
	srvAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Register("srv", func(e Envelope) {
		srv.Send("srv", e.From, pong{Seq: e.Msg.(ping).Seq + 1})
	})

	cli := NewTCP(map[NodeID]string{"srv": srvAddr})
	defer cli.Close()
	cliAddr, err := cli.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	cli.Register("dynamic-client", func(e Envelope) { done <- e.Msg.(pong).Seq })

	cli.Hello(srvAddr, "dynamic-client", cliAddr)
	cli.Send("dynamic-client", "srv", ping{Seq: 41})
	select {
	case seq := <-done:
		if seq != 42 {
			t.Fatalf("round trip after hello = %d", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server could not route a reply despite hello")
	}
}

func TestLocalFailRecover(t *testing.T) {
	n := NewLocal(nil)
	defer n.Close()
	var got atomic.Int32
	n.Register("b", func(Envelope) { got.Add(1) })

	n.Fail("b")
	n.Send("a", "b", ping{})
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("failed node received a message")
	}
	n.Recover("b")
	n.Send("a", "b", ping{})
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 1 {
		t.Fatal("recovered node did not receive")
	}
	// Failed senders drop too.
	n.Fail("a")
	n.Send("a", "b", ping{})
	time.Sleep(20 * time.Millisecond)
	if got.Load() != 1 {
		t.Fatal("failed sender's message delivered")
	}
}
