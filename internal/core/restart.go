package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"path/filepath"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
	"mdcc/internal/wal"
)

// Crash/restart support. A storage node's durable footprint is two
// WALs under one directory: the committed record store (what BDB
// persists in the paper's prototype) and the decision log — the final
// accept/reject outcome of every option whose effect entered the
// store. Replaying both on restart makes the new incarnation
// idempotent against late or duplicated visibility messages for
// options it executed before the crash; without the decision log a
// replayed commutative delta would be applied twice.
//
// Paxos promises and unresolved votes are deliberately volatile, as
// in the rest of this codebase's durability model: a restarted
// acceptor rejoins with an empty cstruct and catches up through
// Phase 1, the dangling-option sweep, and anti-entropy.

// oplogEntry is one persisted oplog record: either one decision
// (Up/HasUp carry the executed update's contents when known, so a
// restarted node can still graft its own applies onto diverged peers'
// bases — see adoptBase) or a lineage-summary snapshot (written on
// every base adoption, whose wholesale summary union has no
// per-decision records to replay). KeySeq preserves the option's
// lineage identity so replay rebuilds the record's summary exactly.
type oplogEntry struct {
	Key      record.Key
	Tx       TxID
	Decision Decision
	Up       record.Update
	HasUp    bool
	KeySeq   uint64
	// Snapshot, when non-nil, makes this a summary-snapshot record;
	// the decision fields are unused then.
	Snapshot *LineageSummary
}

// DurableState is a storage node's on-disk state, opened before the
// node (re)starts and handed to NewDurableStorageNode.
type DurableState struct {
	// Store is the WAL-backed committed record store.
	Store *kv.Store

	oplog   *wal.Log
	decided []oplogEntry
}

// OpenDurable opens (creating on first boot, replaying after a crash)
// the durable state rooted at dir. noSync skips fsync (simulation
// harnesses model durability; they do not need it to be real).
func OpenDurable(dir string, noSync bool) (*DurableState, error) {
	store, err := kv.Open(filepath.Join(dir, "store"), noSync)
	if err != nil {
		return nil, err
	}
	oplog, err := wal.Open(filepath.Join(dir, "oplog"), wal.Options{NoSync: noSync})
	if err != nil {
		store.Close()
		return nil, err
	}
	ds := &DurableState{Store: store, oplog: oplog}
	err = oplog.Replay(func(payload []byte) error {
		var e oplogEntry
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); derr != nil {
			return fmt.Errorf("core: oplog replay: %w", derr)
		}
		ds.decided = append(ds.decided, e)
		return nil
	})
	if err != nil {
		oplog.Close()
		store.Close()
		return nil, err
	}
	return ds, nil
}

// Close releases both logs (call when the node crashes or shuts down).
func (ds *DurableState) Close() error {
	err := ds.oplog.Close()
	if serr := ds.Store.Close(); err == nil {
		err = serr
	}
	return err
}

// NewDurableStorageNode builds a storage node whose committed store
// and decision log live in ds, seeding the per-record decided logs
// from the replayed decisions. Registering the handler replaces any
// previous incarnation's registration on the network.
func NewDurableStorageNode(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config, ds *DurableState) *StorageNode {
	n := NewStorageNode(id, dc, net, cl, cfg, ds.Store)
	n.oplog = ds.oplog
	for _, e := range ds.decided {
		r := n.rs(e.Key)
		if e.Snapshot != nil {
			// A base adoption's summary snapshot: union in replay order
			// (summaries are monotone, so the final union matches the
			// pre-crash state exactly, in lockstep with the kv WAL's
			// final value).
			r.summary.Union(*e.Snapshot)
			r.noteKindFromSummary()
			continue
		}
		opt, hasOpt := Option{}, false
		if e.HasUp {
			opt = Option{Tx: e.Tx, Update: e.Up}
			opt.KeySeq = e.KeySeq
			hasOpt = true
		}
		id := OptionID{Tx: e.Tx, Key: e.Key}
		if r.decided.record(id, e.Decision, opt, hasOpt, net.Now()) {
			r.noteSettled(id, e.Decision, opt, hasOpt)
		}
	}
	return n
}

// Halt makes this incarnation inert: its handler ignores every
// message and its periodic timers stop rescheduling. Used when a node
// is crashed so the dead instance cannot race a restarted one (the
// simulator also purges its queued events; Halt is the
// transport-independent guarantee).
func (n *StorageNode) Halt() { n.halted = true }

// logDecision persists a settled option's outcome (with contents when
// known), if this node is durable. Append errors are swallowed like
// store-put errors: the simulation's durability is modeled, and a
// lost decision record only costs idempotence after a crash, which
// recovery tolerates.
func (n *StorageNode) logDecision(id OptionID, d Decision, opt Option, hasOpt bool) {
	if n.oplog == nil {
		return
	}
	e := oplogEntry{Key: id.Key, Tx: id.Tx, Decision: d}
	if hasOpt {
		e.Up, e.HasUp = opt.Update, true
		e.KeySeq = opt.KeySeq
	}
	n.appendOplog(&e)
}

// logLineage persists a record's lineage summary snapshot. Written on
// every base adoption: the adopted union has no per-decision records
// to replay, so without the snapshot a restarted replica's rebuilt
// summary would miss everything it learned wholesale from peers —
// and its value (replayed exactly by the kv WAL) would claim applies
// its summary could not account for.
func (n *StorageNode) logLineage(key record.Key, s LineageSummary) {
	if n.oplog == nil {
		return
	}
	snap := s.Clone()
	n.appendOplog(&oplogEntry{Key: key, Snapshot: &snap})
}

func (n *StorageNode) appendOplog(e *oplogEntry) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return
	}
	_ = n.oplog.Append(buf.Bytes())
}
