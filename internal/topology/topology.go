// Package topology describes the geo-distributed deployment: the five
// EC2 regions of the paper's evaluation, a one-way latency matrix
// between them, and the cluster layout (storage nodes per data
// center, range partitions, replica groups, quorum sizes).
package topology

import (
	"fmt"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/transport"
)

// DC identifies a data center.
type DC int

// The paper's five Amazon EC2 regions.
const (
	USWest DC = iota // N. California
	USEast           // Virginia
	EUIreland
	APSingapore
	APTokyo
	numDCs
)

// NumDCs is the replica count N used throughout the paper (every data
// center holds a full replica).
const NumDCs = int(numDCs)

// String returns the region short name.
func (d DC) String() string {
	switch d {
	case USWest:
		return "us-west"
	case USEast:
		return "us-east"
	case EUIreland:
		return "eu-ie"
	case APSingapore:
		return "ap-sg"
	case APTokyo:
		return "ap-tk"
	default:
		return fmt.Sprintf("dc%d", int(d))
	}
}

// AllDCs lists every data center.
func AllDCs() []DC {
	out := make([]DC, NumDCs)
	for i := range out {
		out[i] = DC(i)
	}
	return out
}

// oneWayMS is the one-way inter-DC latency matrix in milliseconds,
// modeled on published EC2 inter-region RTTs circa 2012 (see
// DESIGN.md §6). Intra-DC hops cost 0.5 ms.
var oneWayMS = [NumDCs][NumDCs]float64{
	//          W     E     EU    SG    TK
	USWest:      {0.5, 40, 85, 90, 60},
	USEast:      {40, 0.5, 45, 130, 85},
	EUIreland:   {85, 45, 0.5, 135, 120},
	APSingapore: {90, 130, 135, 0.5, 45},
	APTokyo:     {60, 85, 120, 45, 0.5},
}

// OneWay returns the base one-way latency between two data centers.
func OneWay(a, b DC) time.Duration {
	return time.Duration(oneWayMS[a][b] * float64(time.Millisecond))
}

// RTT returns the base round-trip latency between two data centers.
func RTT(a, b DC) time.Duration { return OneWay(a, b) + OneWay(b, a) }

// Quorums returns the classic and fast quorum sizes for n replicas
// per the Fast Paxos requirements used in the paper (§3.3.1): classic
// = majority, fast = ceil(3n/4) — for n=5 that is 3 and 4, the
// "typical setting" the paper uses.
func Quorums(n int) (classic, fast int) {
	classic = n/2 + 1
	fast = (3*n + 3) / 4 // ceil(3n/4)
	if fast > n {
		fast = n
	}
	return classic, fast
}

// NodeKind distinguishes the roles a simulated host can play.
type NodeKind int

// Host roles.
const (
	KindStorage NodeKind = iota
	KindClient
)

// Node describes one simulated host.
type Node struct {
	ID   transport.NodeID
	DC   DC
	Kind NodeKind
	// Index is the per-DC storage node index (partition shard) or
	// the global client index.
	Index int
}

// Cluster is a full deployment: per-DC storage nodes plus clients.
type Cluster struct {
	StorageDCs    []DC // usually all 5
	NodesPerDC    int  // storage nodes (replica groups) per DC
	Storage       []Node
	Clients       []Node
	Constraints   []record.Constraint
	classicQuorum int
	fastQuorum    int
	// shardRing maps keys to replica groups. Every provisioned group
	// (0..NodesPerDC-1) is a candidate; the ring's active set says who
	// owns keys right now, and live moves republish it (see ring.Mover).
	shardRing *ring.Table
}

// Layout describes how to build a Cluster.
type Layout struct {
	NodesPerDC int // storage nodes (replica groups) per data center (≥1)
	Clients    int // total clients, assigned round-robin across DCs
	// ClientDC pins all clients to one DC (used by the figure-8
	// failure experiment and Megastore*'s in-paper favor). Negative
	// means geo-distributed round-robin.
	ClientDC int
	// Groups is the number of replica groups active in the initial
	// shard ring. Zero or out-of-range means all NodesPerDC groups.
	// A cluster provisioned with more groups than are active can grow
	// live: a shard move activates a spare group and re-homes its
	// slice of the keyspace.
	Groups int
}

// NewCluster builds the node catalogue for a layout.
func NewCluster(l Layout) *Cluster {
	if l.NodesPerDC < 1 {
		l.NodesPerDC = 1
	}
	c := &Cluster{StorageDCs: AllDCs(), NodesPerDC: l.NodesPerDC}
	active := l.Groups
	if active <= 0 || active > l.NodesPerDC {
		active = l.NodesPerDC
	}
	groups := make([]int, active)
	for i := range groups {
		groups[i] = i
	}
	c.shardRing = ring.NewTable(ring.New(groups, ring.DefaultVPoints))
	for _, dc := range c.StorageDCs {
		for i := 0; i < l.NodesPerDC; i++ {
			c.Storage = append(c.Storage, Node{
				ID:    StorageID(dc, i),
				DC:    dc,
				Kind:  KindStorage,
				Index: i,
			})
		}
	}
	for i := 0; i < l.Clients; i++ {
		dc := DC(i % NumDCs)
		if l.ClientDC >= 0 {
			dc = DC(l.ClientDC)
		}
		c.Clients = append(c.Clients, Node{
			ID:    ClientID(i),
			DC:    dc,
			Kind:  KindClient,
			Index: i,
		})
	}
	c.classicQuorum, c.fastQuorum = Quorums(NumDCs)
	return c
}

// StorageID names a storage node.
func StorageID(dc DC, index int) transport.NodeID {
	return transport.NodeID(fmt.Sprintf("%s/store%d", dc, index))
}

// ClientID names a client (app-server running the DB library).
func ClientID(i int) transport.NodeID {
	return transport.NodeID(fmt.Sprintf("client%d", i))
}

// ClassicQuorum returns the majority quorum size (3 of 5).
func (c *Cluster) ClassicQuorum() int { return c.classicQuorum }

// FastQuorum returns the fast quorum size (4 of 5).
func (c *Cluster) FastQuorum() int { return c.fastQuorum }

// ReplicationFactor returns N (one replica per DC).
func (c *Cluster) ReplicationFactor() int { return len(c.StorageDCs) }

// Shard maps a record key to its owning replica group (the per-DC
// storage node index) under the cluster's current shard ring.
// Placement is a pure function of the published ring epoch, so every
// node holding the same epoch routes the key identically; a live move
// republishing the ring re-homes exactly the moved slice.
func (c *Cluster) Shard(key record.Key) int {
	return c.shardRing.Owner(string(key))
}

// Ring exposes the cluster's shard ring table: current/staged epochs
// for routing and fencing, Install for publication by a mover.
func (c *Cluster) Ring() *ring.Table { return c.shardRing }

// Replicas returns the storage node IDs (one per DC) responsible for
// a key — the Paxos acceptors for that record.
func (c *Cluster) Replicas(key record.Key) []transport.NodeID {
	shard := c.Shard(key)
	out := make([]transport.NodeID, 0, len(c.StorageDCs))
	for _, dc := range c.StorageDCs {
		out = append(out, StorageID(dc, shard))
	}
	return out
}

// ReplicaIn returns the key's storage node in one specific DC (the
// "local replica" for reads).
func (c *Cluster) ReplicaIn(key record.Key, dc DC) transport.NodeID {
	return StorageID(dc, c.Shard(key))
}

// NodeDC looks up the DC a node belongs to; ok is false for unknown
// IDs.
func (c *Cluster) NodeDC(id transport.NodeID) (DC, bool) {
	for _, n := range c.Storage {
		if n.ID == id {
			return n.DC, true
		}
	}
	for _, n := range c.Clients {
		if n.ID == id {
			return n.DC, true
		}
	}
	return 0, false
}

// Latency builds the base (jitter-free) latency function between
// nodes of this cluster for use by transports.
func (c *Cluster) Latency() transport.LatencyFunc {
	return c.LatencyWith(nil)
}

// LatencyWith builds the latency function with additional nodes that
// are not part of the regular storage/client catalogue (e.g. the
// Megastore* entity-group replicas).
func (c *Cluster) LatencyWith(extra map[transport.NodeID]DC) transport.LatencyFunc {
	dcOf := make(map[transport.NodeID]DC, len(c.Storage)+len(c.Clients)+len(extra))
	for _, n := range c.Storage {
		dcOf[n.ID] = n.DC
	}
	for _, n := range c.Clients {
		dcOf[n.ID] = n.DC
	}
	for id, dc := range extra {
		dcOf[id] = dc
	}
	return func(from, to transport.NodeID) time.Duration {
		return OneWay(dcOf[from], dcOf[to])
	}
}
