package simnet

import (
	"fmt"
	"testing"
	"time"

	"mdcc/internal/transport"
)

// chaosTrace drives every fault primitive at once — jitter, drops,
// dups, reorders, partitions, crash/restart churn, drift, service-time
// queueing, timer cancellation, and RunFor/RunUntil slicing (whose
// deadline checks observe the effective head: the next runnable
// event's run time) — and records the exact delivery/timer schedule.
func chaosTrace(t *testing.T, eng string) ([]string, Stats) {
	t.Helper()
	n := New(Options{
		Latency:       fixedLatency(5 * time.Millisecond),
		JitterFrac:    0.2,
		ServiceTime:   2 * time.Millisecond, // deep queues: exercises the busy-node clamp path
		DropProb:      0.1,
		DupProb:       0.1,
		ReorderProb:   0.2,
		ReorderWindow: 20 * time.Millisecond,
		Seed:          99,
		Engine:        eng,
	})
	var trace []string
	ids := make([]transport.NodeID, 8)
	reg := func(i int) {
		id := ids[i]
		n.Register(id, func(e transport.Envelope) {
			trace = append(trace, fmt.Sprintf("%s<-%s@%d seq=%d", id, e.From, n.Now().UnixNano(), e.Msg.(ping).Seq))
			p := e.Msg.(ping)
			if p.Seq < 30 {
				n.Send(id, ids[(i+1)%len(ids)], ping{Seq: p.Seq + 1})
				if p.Seq%10 == 0 {
					// Hot-spot fan-in keeps node 0 busy so clamped
					// events interleave with deadline peeks.
					n.Send(id, ids[0], ping{Seq: p.Seq + 1})
				}
			}
		})
	}
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i))
		reg(i)
	}
	n.SetDrift(ids[3], 0.5)
	n.SetDrift(ids[4], -0.25)
	for i := 0; i < 4; i++ {
		i := i
		n.After(ids[i], time.Duration(3+i)*time.Millisecond, func() {
			trace = append(trace, fmt.Sprintf("timer%d@%d", i, n.Now().UnixNano()))
			n.Send(ids[i], ids[7-i], ping{Seq: 0})
		})
	}
	stopped := n.After(ids[5], 8*time.Millisecond, func() { trace = append(trace, "SHOULD NOT FIRE") })
	n.At(2*time.Millisecond, func() { stopped.Stop() })
	n.At(10*time.Millisecond, func() { n.Partition(ids[:2], ids[2:4]) })
	n.At(25*time.Millisecond, func() { n.Crash(ids[6]) })
	n.At(40*time.Millisecond, func() { n.HealAll() })
	n.At(55*time.Millisecond, func() {
		n.Recover(ids[6])
		reg(6)
		n.After(ids[6], time.Millisecond, func() { trace = append(trace, fmt.Sprintf("reborn@%d", n.Now().UnixNano())) })
	})
	n.Send(ids[0], ids[1], ping{})
	n.Send(ids[5], ids[6], ping{})
	n.Send(ids[7], ids[0], ping{})
	n.RunFor(30 * time.Millisecond)
	n.RunUntil(func() bool { return false }, 20*time.Millisecond)
	n.Run()
	return trace, n.Stats()
}

// TestEngineEquivalence is the cross-engine determinism pin: the
// sharded engine must replay the legacy global heap's schedule
// bit-exactly — same deliveries, same virtual timestamps, same order,
// same drop accounting.
func TestEngineEquivalence(t *testing.T) {
	heapTrace, heapStats := chaosTrace(t, "heap")
	shardTrace, shardStats := chaosTrace(t, "sharded")
	if len(heapTrace) == 0 {
		t.Fatal("empty trace; chaos workload produced no events")
	}
	if heapStats != shardStats {
		t.Fatalf("engines diverged on stats:\nheap:    %+v\nsharded: %+v", heapStats, shardStats)
	}
	if len(heapTrace) != len(shardTrace) {
		t.Fatalf("engines diverged on trace length: heap %d vs sharded %d", len(heapTrace), len(shardTrace))
	}
	for i := range heapTrace {
		if heapTrace[i] != shardTrace[i] {
			t.Fatalf("engines diverged at trace[%d]:\nheap:    %s\nsharded: %s", i, heapTrace[i], shardTrace[i])
		}
	}
}

// TestReapBoundsNodeStateUnderChurn pins the churn-state bound: a
// long run of crash/replace cycles over a fixed id catalogue must
// hold the per-node state count flat — dead incarnations' structs are
// reaped once their queues drain, instead of accumulating
// freeAt/drift/epoch entries forever.
func TestReapBoundsNodeStateUnderChurn(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond), ServiceTime: 100 * time.Microsecond, Seed: 5})
	const catalogue = 20
	ids := make([]transport.NodeID, catalogue)
	reg := func(i int) {
		id := ids[i]
		n.Register(id, func(e transport.Envelope) {
			p := e.Msg.(ping)
			if p.Seq < 3 {
				n.Send(id, ids[(i+1)%catalogue], ping{Seq: p.Seq + 1})
			}
		})
	}
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("c%02d", i))
		reg(i)
	}
	for round := 0; round < 200; round++ {
		victim := round % catalogue
		for i := 0; i < 4; i++ {
			n.Send(ids[(victim+i)%catalogue], ids[(victim+i+1)%catalogue], ping{})
		}
		n.After(ids[victim], 500*time.Microsecond, func() {})
		n.Crash(ids[victim])
		n.RunFor(5 * time.Millisecond)
		if got := n.NodeStates(); got > catalogue {
			t.Fatalf("round %d: %d node states live, want <= %d (reaping leaked)", round, got, catalogue)
		}
		n.Recover(ids[victim])
		reg(victim)
	}
	n.Run()
	if got := n.NodeStates(); got > catalogue {
		t.Fatalf("final node-state count %d, want <= %d", got, catalogue)
	}
	// Replaced incarnations must still work end to end.
	seen := n.Stats().Delivered
	if seen == 0 {
		t.Fatal("churn run delivered nothing")
	}
}

// TestReapPreservesObservables: Failed() and DeliveredTo() must
// survive a reap — the bookkeeping moves to side maps, it doesn't
// vanish.
func TestReapPreservesObservables(t *testing.T) {
	n := New(Options{Latency: fixedLatency(time.Millisecond)})
	n.Register("b", func(e transport.Envelope) {})
	n.Send("a", "b", ping{})
	n.Run()
	if n.DeliveredTo("b") != 1 {
		t.Fatalf("DeliveredTo before crash = %d", n.DeliveredTo("b"))
	}
	n.Crash("b") // queue empty → reaped immediately
	if n.NodeStates() != 0 {
		t.Fatalf("crashed idle node not reaped: %d states", n.NodeStates())
	}
	if !n.Failed("b") {
		t.Fatal("reap lost the failed bit")
	}
	if n.DeliveredTo("b") != 1 {
		t.Fatalf("reap lost delivery count: %d", n.DeliveredTo("b"))
	}
	n.Recover("b")
	if n.Failed("b") {
		t.Fatal("Recover did not clear the preserved failed bit")
	}
	got := 0
	n.Register("b", func(e transport.Envelope) { got++ })
	n.Send("a", "b", ping{})
	n.Run()
	if got != 1 || n.DeliveredTo("b") != 2 {
		t.Fatalf("restarted node got=%d DeliveredTo=%d, want 1 and 2", got, n.DeliveredTo("b"))
	}
}
