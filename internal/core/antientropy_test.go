package core

import (
	"fmt"
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

func newSyncWorld(t *testing.T, syncInterval time.Duration, seed int64) *world {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: 1, Clients: 2, ClientDC: -1})
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.05,
		ServiceTime: 100 * time.Microsecond,
		Seed:        seed,
	})
	cfg := Defaults(ModeMDCC)
	cfg.PendingTimeout = 0
	cfg.SyncInterval = syncInterval
	w := &world{t: t, net: net, cl: cl}
	for _, n := range cl.Storage {
		w.nodes = append(w.nodes, NewStorageNode(n.ID, n.DC, net, cl, cfg, kv.NewMemory()))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, cfg))
	}
	return w
}

// A replica that slept through writes converges via anti-entropy
// without any new writes to the stale records.
func TestAntiEntropyCatchUp(t *testing.T) {
	w := newSyncWorld(t, 500*time.Millisecond, 1)
	// Seed records while everyone is healthy.
	for i := 0; i < 10; i++ {
		if !w.commit(0, record.Insert(record.Key(fmt.Sprintf("ae/%02d", i)),
			record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
			t.Fatal("seed insert failed")
		}
	}
	w.settle()

	// Take Tokyo down and write through the outage.
	victim := topology.StorageID(topology.APTokyo, 0)
	w.net.Fail(victim)
	for i := 0; i < 10; i++ {
		key := record.Key(fmt.Sprintf("ae/%02d", i))
		val, ver, _ := w.read(0, key)
		if !w.commit(0, record.Physical(key, ver, val.WithAttr("x", int64(100+i)))).Committed {
			t.Fatalf("outage write %d failed", i)
		}
		w.settle()
	}

	// Recover Tokyo: it missed every visibility. Without anti-entropy
	// it would stay stale until the records are written again.
	w.net.Recover(victim)
	var tokyo *StorageNode
	for _, n := range w.nodes {
		if n.ID() == victim {
			tokyo = n
		}
	}
	deadline := 60 * time.Second
	ok := w.net.RunUntil(func() bool {
		for i := 0; i < 10; i++ {
			v, _, found := tokyo.Store().Get(record.Key(fmt.Sprintf("ae/%02d", i)))
			if !found || v.Attr("x") != int64(100+i) {
				return false
			}
		}
		return true
	}, deadline)
	if !ok {
		for i := 0; i < 10; i++ {
			v, ver, _ := tokyo.Store().Get(record.Key(fmt.Sprintf("ae/%02d", i)))
			t.Logf("ae/%02d at tokyo: %v v%d", i, v, ver)
		}
		t.Fatal("recovered replica never caught up via anti-entropy")
	}
	if tokyo.Metrics().Synced == 0 {
		t.Fatal("catch-up happened but Synced counter is zero")
	}
}

// Anti-entropy must never regress: a fresh replica syncing with a
// stale one keeps its newer state.
func TestAntiEntropyNeverRegresses(t *testing.T) {
	w := newSyncWorld(t, 300*time.Millisecond, 2)
	if !w.commit(0, record.Insert("ae/r", record.Value{Attrs: map[string]int64{"x": 1}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Several updates so versions diverge from 1.
	for i := 0; i < 5; i++ {
		val, ver, _ := w.read(0, "ae/r")
		if !w.commit(0, record.Physical("ae/r", ver, val.WithAttr("x", int64(10+i)))).Committed {
			t.Fatalf("update %d failed", i)
		}
		w.settle()
	}
	// Let anti-entropy churn for a long while; all replicas must hold
	// the final value.
	w.net.RunFor(20 * time.Second)
	for i, n := range w.nodes {
		v, ver, _ := n.Store().Get("ae/r")
		if v.Attr("x") != 14 || ver != 6 {
			t.Fatalf("node %d regressed or lagged: %v v%d, want x=14 v6", i, v, ver)
		}
	}
}

// Sync replies are paginated; the cursor walks the whole key space.
func TestAntiEntropyPagination(t *testing.T) {
	w := newSyncWorld(t, 0, 3) // manual stepping, no timer
	node := w.nodes[0]
	for i := 0; i < 300; i++ {
		_ = node.Store().Put(record.Key(fmt.Sprintf("pg/%04d", i)),
			record.Value{Attrs: map[string]int64{"x": int64(i)}}, 1)
	}
	var replies []MsgSyncReply
	w.net.Register("probe", func(e transport.Envelope) {
		if m, ok := e.Msg.(MsgSyncReply); ok {
			replies = append(replies, m)
		}
	})
	cursor := record.Key("")
	for round := 0; round < 10; round++ {
		w.net.Send("probe", node.ID(), MsgSyncReq{ReqID: uint64(round), From: cursor, Limit: 128})
		want := round + 1
		if !w.net.RunUntil(func() bool { return len(replies) == want }, time.Minute) {
			t.Fatal("no sync reply")
		}
		last := replies[len(replies)-1]
		if last.Next == "" {
			break
		}
		cursor = last.Next
	}
	total := 0
	for _, r := range replies {
		total += len(r.Entries)
	}
	if total != 300 {
		t.Fatalf("pagination visited %d entries, want 300", total)
	}
}
