// HTTP operational endpoints.
//
//	GET /healthz  — liveness probe ("ok")
//	GET /metrics  — JSON snapshot of this server's counters
//
// /metrics schema (fields are stable; additions are
// backwards-compatible):
//
//	{
//	  "dc": "us-west",                    // this server's data center
//	  "ringEpoch": 1,                     // published shard-ring epoch this
//	                                      // server routes under (bumps on
//	                                      // every live shard move)
//	  "shards": [{                        // one entry per hosted shard
//	    "node": "us-west/store0",         // storage node ID
//	    "keys": 123,                      // records in the committed store
//	    "puts": 456,                      // store writes since boot
//	    "protocol": { ... }               // core.Metrics: votes, Phase1/2,
//	                                      // executed/discarded options,
//	                                      // demarcation rejects, sweeps,
//	                                      // BatchEnvelopes/BatchItems
//	                                      // (gateway batch fan-in),
//	                                      // VoteBatchEnvelopes/Items
//	                                      // (acceptor→coordinator vote
//	                                      // batching fan-in),
//	                                      // FeedMsgs/FeedItems (visibility
//	                                      // feed published to the DC's
//	                                      // gateway read tier)
//	  }],
//	  "transport": {                      // transport.Stats, whole process
//	    "msgsSent": 0, "msgsReceived": 0, // envelopes in/out (TCP+local)
//	    "batchesSent": 0,                 // batch envelopes sent
//	    "batchesReceived": 0,
//	    "batchedSent": 0,                 // messages carried inside them
//	    "batchedReceived": 0,
//	    "bytesSent": 0,                   // wire bytes (gob-encoded)
//	    "bytesReceived": 0
//	  },
//	  "gateway": {                        // present only with -gateway:
//	    "commits": 0, "aborts": 0,        // settled client transactions
//	    "submitted": 0,                   // transactions entering the tier
//	    "passthrough": 0,                 // dispatched unmodified
//	    "coalesced": 0,                   // updates that joined a window
//	    "mergedOptions": 0,               // merged proposals issued
//	    "mergedUpdates": 0,               // client updates inside them
//	    "mergeSplits": 0,                 // rejected merges re-run singly
//	    "coalesceRatio": 0.0,             // mergedUpdates / submitted
//	    "escrowUpdates": 0,               // piggybacked escrow snapshots
//	                                      // folded into headroom accounts
//	    "escrowStale": 0,                 // snapshots dropped as stale
//	    "trackedKeys": 0,                 // gauge: keys with a live
//	                                      // headroom account
//	    "minHeadroom": -1,                // gauge: tightest remaining
//	                                      // shared demarcation headroom
//	                                      // (-1 = none tracked; 0 = merge
//	                                      // admission currently bypassing)
//	    "localReads": 0,                  // read tier: reads served from
//	                                      // feed-materialized memory
//	                                      // (zero RPCs)
//	    "readRPCs": 0,                    // single-flight fallback reads
//	                                      // (cold keys, dead feeds,
//	                                      // floor outruns)
//	    "readCoalesced": 0,               // readers who shared an
//	                                      // in-flight fallback
//	    "readQuorums": 0,                 // quorum escalations for
//	                                      // session floors the local
//	                                      // replica lagged
//	    "localReadFrac": 0.0,             // localReads / all reads served
//	    "feedMsgs": 0, "feedItems": 0,    // consumed in-order visibility
//	                                      // feed messages / key states
//	    "feedGaps": 0,                    // sequence holes detected (each
//	                                      // triggers a catch-up resync)
//	    "feedDrops": 0,                   // feeds marked dead after
//	                                      // FeedTTL of silence
//	    "feedResubs": 0,                  // subscriptions sent (initial
//	                                      // + resyncs)
//	    "feedStaleMsgs": 0,               // duplicate / dead-epoch feed
//	                                      // messages discarded
//	    "materializedKeys": 0,            // gauge: keys holding a served
//	                                      // value
//	    "feedsLive": 0,                   // gauge: local shard streams
//	                                      // currently bounding staleness
//	    "admissionRejects": 0,            // shed with ErrOverloaded
//	    "inflight": 0, "queueDepth": 0,   // current admission state
//	    "queuePeak": 0,
//	    "batchEnvelopes": 0,              // outbound cross-txn batching
//	    "batchedMsgs": 0, "batchSingles": 0,
//	    "batchFanIn": 0.0,                // batchedMsgs / batchEnvelopes
//	    "wrongShardRetries": 0,           // commits refused with
//	                                      // ErrWrongShard (stale ring
//	                                      // epoch or frozen moving shard)
//	    "ringEpoch": 0                    // gauge: ring epoch the gateway
//	                                      // last observed
//	  }
//	}
package main

import (
	"encoding/json"
	"log"
	"net/http"

	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/kv"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// serveHTTP exposes the operational endpoints documented above.
func serveHTTP(addr string, dc topology.DC, cl *topology.Cluster, nodes []*core.StorageNode,
	stores []*kv.Store, net *transport.TCP, gw *gateway.Gateway) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		type shard struct {
			Node    string       `json:"node"`
			Keys    int          `json:"keys"`
			Puts    int64        `json:"puts"`
			Metrics core.Metrics `json:"protocol"`
		}
		out := struct {
			DC        string           `json:"dc"`
			RingEpoch uint64           `json:"ringEpoch"`
			Shards    []shard          `json:"shards"`
			Transport transport.Stats  `json:"transport"`
			Gateway   *gateway.Metrics `json:"gateway,omitempty"`
		}{DC: dc.String(), RingEpoch: uint64(cl.Ring().Epoch()), Transport: net.Stats()}
		for i, n := range nodes {
			out.Shards = append(out.Shards, shard{
				Node:    string(n.ID()),
				Keys:    stores[i].Len(),
				Puts:    stores[i].Puts(),
				Metrics: n.Metrics(),
			})
		}
		if gw != nil {
			m := gw.Metrics()
			out.Gateway = &m
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	log.Printf("http endpoints on %s (/healthz, /metrics)", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("http: %v", err)
	}
}
