// Package mtx defines the uniform transactional client interface the
// benchmark harness and workloads drive, so TPC-W and the
// micro-benchmark run unchanged over MDCC and every baseline protocol
// (2PC, quorum writes, Megastore*).
package mtx

import "mdcc/internal/record"

// ReadFunc receives a read result: committed value, version, and
// whether the record exists. (Interface methods use the unnamed
// signature so implementations need not import this package.)
type ReadFunc = func(val record.Value, ver record.Version, exists bool)

// Client is a transactional (or, for quorum writes, merely replicated)
// database client. Implementations are callback-based and must be
// driven from their node's transport handler context.
type Client interface {
	// Read fetches one record, read-committed, usually from the
	// nearest replica.
	Read(key record.Key, cb func(val record.Value, ver record.Version, exists bool))

	// Commit applies a write-set atomically (protocols without
	// atomicity, like quorum writes, apply best-effort) and reports
	// whether the transaction committed.
	Commit(updates []record.Update, done func(committed bool))
}

// SupportsCommutative reports whether a client executes commutative
// updates natively; workloads convert deltas to read-modify-writes
// for clients that do not.
type SupportsCommutative interface {
	SupportsCommutative() bool
}

// Commutative returns whether c natively handles record.Commutative
// updates.
func Commutative(c Client) bool {
	if s, ok := c.(SupportsCommutative); ok {
		return s.SupportsCommutative()
	}
	return false
}
