// Shop: a miniature TPC-W-style storefront on the public API — the
// workload the paper's introduction motivates. Geo-distributed
// shoppers browse products, fill carts and buy; the buy decrements
// item stock under a stock >= 0 constraint (the one TPC-W transaction
// that benefits from commutativity, per §5.2) and inserts an order
// atomically with it.
//
// Run with:
//
//	go run ./examples/shop
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mdcc"
)

const (
	products = 50
	shoppers = 8
	visits   = 12 // browse/buy rounds per shopper
)

func itemKey(i int) mdcc.Key { return mdcc.Key(fmt.Sprintf("item/%04d", i)) }

func orderKey(shopper, n int) mdcc.Key {
	return mdcc.Key(fmt.Sprintf("order/%d-%d", shopper, n))
}

func main() {
	cluster, err := mdcc.StartCluster(mdcc.ClusterConfig{
		Mode:         mdcc.ModeMDCC,
		NodesPerDC:   2,
		LatencyScale: 0.02,
		Constraints:  []mdcc.Constraint{mdcc.MinBound("stock", 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Load the catalogue.
	admin := cluster.Session(mdcc.USWest)
	var ups []mdcc.Update
	totalStock := int64(0)
	for i := 0; i < products; i++ {
		stock := int64(5 + i%7)
		totalStock += stock
		ups = append(ups, mdcc.Insert(itemKey(i), mdcc.Value{
			Attrs: map[string]int64{"stock": stock, "price": int64(199 + 50*i)},
			Blob:  []byte(fmt.Sprintf("The Art of Distributed Systems, volume %d", i)),
		}))
	}
	if ok, err := admin.Commit(ups...); err != nil || !ok {
		log.Fatalf("catalogue load: ok=%v err=%v", ok, err)
	}
	fmt.Printf("catalogue: %d products, %d units of stock\n", products, totalStock)

	var wg sync.WaitGroup
	var mu sync.Mutex
	bought := int64(0)
	orders := 0
	soldOut := 0
	for sh := 0; sh < shoppers; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			sess := cluster.Session(mdcc.DC(sh % 5))
			rng := rand.New(rand.NewSource(int64(sh) + 42))
			for v := 0; v < visits; v++ {
				// Browse: read a few product pages (local reads).
				basket := map[int]int64{}
				for b := 0; b < 1+rng.Intn(3); b++ {
					p := rng.Intn(products)
					val, _, ok, err := sess.Read(itemKey(p))
					if err != nil || !ok {
						continue
					}
					if val.Attr("stock") > 0 {
						basket[p] = 1 + rng.Int63n(2)
					}
				}
				if len(basket) == 0 {
					continue
				}
				// Buy: one atomic transaction — stock decrements
				// (commutative, constraint-checked) plus the order row.
				var buy []mdcc.Update
				var qty int64
				for p, q := range basket {
					buy = append(buy, mdcc.Commutative(itemKey(p), map[string]int64{"stock": -q}))
					qty += q
				}
				buy = append(buy, mdcc.Insert(orderKey(sh, v),
					mdcc.Value{Attrs: map[string]int64{"qty": qty}}))
				ok, err := sess.Commit(buy...)
				if err != nil {
					log.Printf("shopper %d: %v", sh, err)
					continue
				}
				mu.Lock()
				if ok {
					bought += qty
					orders++
				} else {
					soldOut++
				}
				mu.Unlock()
			}
		}(sh)
	}
	wg.Wait()
	fmt.Printf("orders placed: %d (%d units); %d buys rejected (stock protection)\n",
		orders, bought, soldOut)

	// Reconcile: remaining stock + sold units == initial stock, and
	// every committed order exists.
	audit := cluster.Session(mdcc.APSingapore)
	deadline := time.Now().Add(10 * time.Second)
	for {
		remaining := int64(0)
		for i := 0; i < products; i++ {
			v, _, ok, err := audit.Read(itemKey(i))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				if v.Attr("stock") < 0 {
					log.Fatal("INVARIANT VIOLATED: negative stock")
				}
				remaining += v.Attr("stock")
			}
		}
		if remaining+bought == totalStock {
			fmt.Printf("audit OK: %d units remaining + %d sold = %d initial\n",
				remaining, bought, totalStock)
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("stock mismatch: %d remaining + %d sold != %d", remaining, bought, totalStock)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
