package wal

import (
	"sync"
	"time"
)

// Faults is a nemesis-drivable fault plan for the file layer under one
// or more Logs (share one Faults between a node's store and oplog to
// model a single failing disk). All methods are safe for concurrent
// use and safe on a nil receiver (no faults).
//
// The fault model, mirroring how real disks fail:
//
//   - FailSync: every sync fails with ErrDiskFault until disarmed.
//     Under NoSync the *modeled* sync fails, so harnesses that never
//     pay for fsync still see the disk refuse durability. The log is
//     poisoned on the first failure (fsyncgate semantics).
//   - TornWrite: one-shot — the next append writes only a prefix of
//     its frame and fails, as if the disk died mid-write. Recovery
//     must truncate the tear (tail) or report it typed (mid-segment).
//   - BitFlip: one-shot — the next append's payload is silently
//     corrupted on its way to the file. The append succeeds; replay
//     must surface ErrCorrupt, never the flipped bytes.
//   - SyncDelay: every sync (or NoSync append) stalls this long —
//     a stuck disk, for latency experiments on the real-clock paths.
type Faults struct {
	mu        sync.Mutex
	failSync  bool
	torn      int // -1 unarmed; else one-shot byte budget for the next frame
	bitFlip   bool
	syncDelay time.Duration

	nSyncFails int64
	nTorn      int64
	nFlips     int64
}

// NewFaults returns an empty fault plan.
func NewFaults() *Faults { return &Faults{torn: -1} }

// FailSync arms (on=true) or disarms persistent sync failure.
func (f *Faults) FailSync(on bool) {
	f.mu.Lock()
	f.failSync = on
	f.mu.Unlock()
}

// TornWrite arms a one-shot torn write: the next appended frame is cut
// to at most n bytes and the append fails.
func (f *Faults) TornWrite(n int) {
	f.mu.Lock()
	f.torn = n
	f.mu.Unlock()
}

// BitFlip arms a one-shot silent payload corruption on the next append.
func (f *Faults) BitFlip() {
	f.mu.Lock()
	f.bitFlip = true
	f.mu.Unlock()
}

// SyncDelay sets a per-sync stall (0 disarms).
func (f *Faults) SyncDelay(d time.Duration) {
	f.mu.Lock()
	f.syncDelay = d
	f.mu.Unlock()
}

// Counters reports how many faults actually fired.
func (f *Faults) Counters() (syncFails, tornWrites, bitFlips int64) {
	if f == nil {
		return 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nSyncFails, f.nTorn, f.nFlips
}

// failSyncNow reports (and counts) whether the current sync must fail.
func (f *Faults) failSyncNow() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failSync {
		f.nSyncFails++
		return true
	}
	return false
}

// takeTorn consumes a one-shot torn write, returning its byte budget.
func (f *Faults) takeTorn() (int, bool) {
	if f == nil {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.torn < 0 {
		return 0, false
	}
	n := f.torn
	f.torn = -1
	f.nTorn++
	return n, true
}

// takeFlip consumes a one-shot bit flip.
func (f *Faults) takeFlip() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.bitFlip {
		return false
	}
	f.bitFlip = false
	f.nFlips++
	return true
}

// delay returns the armed stuck-disk stall.
func (f *Faults) delay() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncDelay
}
