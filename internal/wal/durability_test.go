package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// --- Group commit ---

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("Appends = %d, want %d", st.Appends, workers*per)
	}
	if st.SyncedAppends != workers*per {
		t.Fatalf("SyncedAppends = %d, want %d (every ack must be covered by a sync)", st.SyncedAppends, workers*per)
	}
	if st.Syncs == 0 || st.Syncs > st.SyncedAppends {
		t.Fatalf("Syncs = %d out of range", st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(func([]byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != workers*per {
		t.Fatalf("replayed %d records, want %d", n, workers*per)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	// With a stall armed, concurrent appends must coalesce: strictly
	// fewer syncs than appends.
	l, err := Open(t.TempDir(), Options{GroupCommit: true, MaxStall: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append([]byte{byte(i)}); err != nil {
				t.Errorf("Append: %v", err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Syncs >= n {
		t.Fatalf("no batching: %d syncs for %d appends", st.Syncs, n)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
}

// --- Fault injection ---

func TestFailSyncPoisonsLog(t *testing.T) {
	for _, mode := range []Options{
		{NoSync: true},
		{},
		{GroupCommit: true},
	} {
		f := NewFaults()
		mode.Faults = f
		dir := t.TempDir()
		l, err := Open(dir, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]byte("ok")); err != nil {
			t.Fatal(err)
		}
		f.FailSync(true)
		if err := l.Append([]byte("lost")); !errors.Is(err, ErrDiskFault) {
			t.Fatalf("mode %+v: Append under FailSync = %v, want ErrDiskFault", mode, err)
		}
		f.FailSync(false)
		// Poisoned until reopen, even though the fault is gone.
		if err := l.Append([]byte("still-poisoned")); !errors.Is(err, ErrDiskFault) {
			t.Fatalf("mode %+v: poisoned Append = %v, want ErrDiskFault", mode, err)
		}
		if !l.Stats().Failed {
			t.Fatal("Stats().Failed = false after sync failure")
		}
		l.Close()
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Append([]byte("fresh")); err != nil {
			t.Fatalf("reopened log still failing: %v", err)
		}
		l2.Close()
	}
}

func TestTornWriteTruncatedOnReopen(t *testing.T) {
	f := NewFaults()
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f.TornWrite(5)
	if err := l.Append([]byte("torn-away")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("torn Append = %v, want ErrDiskFault", err)
	}
	// Poisoned like a failed sync.
	if err := l.Append([]byte("after")); !errors.Is(err, ErrDiskFault) {
		t.Fatalf("post-tear Append = %v, want ErrDiskFault", err)
	}
	l.Close()
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open after torn write: %v", err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "rec-2" {
		t.Fatalf("after tear replayed %v, want the 3 acked records", got)
	}
	if _, torn, _ := f.Counters(); torn != 1 {
		t.Fatalf("torn counter = %d", torn)
	}
}

func TestBitFlipSurfacesCorrupt(t *testing.T) {
	f := NewFaults()
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 64, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(bytes.Repeat([]byte{'a'}, 40))
	f.BitFlip()
	// The flipped append itself succeeds: corruption is silent at
	// write time, caught by CRC at replay.
	if err := l.Append(bytes.Repeat([]byte{'b'}, 40)); err != nil {
		t.Fatalf("bit-flipped Append = %v, want nil (silent)", err)
	}
	l.Append(bytes.Repeat([]byte{'c'}, 40)) // push the flip out of the tail
	l.Close()

	l2, err := Open(dir, Options{NoSync: true, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of flipped mid-segment record = %v, want ErrCorrupt", err)
	}
}

// Bit rot mid-way through the ACTIVE segment must surface as typed
// corruption at reopen — never be absorbed by the torn-tail truncation
// (which would silently drop the valid, acknowledged records behind
// it). Only an invalid region running to end-of-file is a torn tail.
func TestBitRotMidActiveSegmentIsCorruptNotTorn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true}) // default segment size: one shared active segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := SegmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+1] ^= 0x01 // payload byte of the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-segment rot = %v, want ErrCorrupt", err)
	}
}

// A corrupt FINAL record is indistinguishable from a crash-torn append
// and is still truncated away quietly.
func TestCorruptFinalRecordTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := SegmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // payload byte of the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open over corrupt final record = %v, want torn-tail truncation", err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != "rec-1" {
		t.Fatalf("replayed %v, want the 2 intact records", got)
	}
}

// --- Cut / TruncateBefore / ReplayFrom ---

func TestCutTruncateReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("old-%d", i)))
	}
	cut, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if cut == 0 {
		t.Fatalf("cut = 0, want a rolled segment")
	}
	// Cut on an empty active segment is idempotent.
	if again, _ := l.Cut(); again != cut {
		t.Fatalf("empty Cut = %d, want %d", again, cut)
	}
	for i := 0; i < 3; i++ {
		l.Append([]byte(fmt.Sprintf("new-%d", i)))
	}
	var tail []string
	if err := l.ReplayFrom(cut, func(p []byte) error { tail = append(tail, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[0] != "new-0" {
		t.Fatalf("ReplayFrom(cut) = %v, want the 3 post-cut records", tail)
	}
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	for _, idx := range segs {
		if idx < cut {
			t.Fatalf("segment %d survived TruncateBefore(%d)", idx, cut)
		}
	}
	var all []string
	if err := l.Replay(func(p []byte) error { all = append(all, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("after truncation full replay = %v", all)
	}
}

// --- Snapshots ---

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 4; seq++ {
		payload := bytes.Repeat([]byte{byte(seq)}, 100*seq)
		if err := WriteSnapshot(dir, seq, payload, true); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[3] != 4 {
		t.Fatalf("ListSnapshots = %v", seqs)
	}
	got, err := ReadSnapshot(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{3}, 300)) {
		t.Fatal("snapshot 3 payload mismatch")
	}
	if err := PruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	seqs, _ = ListSnapshots(dir)
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("after prune ListSnapshots = %v, want [3 4]", seqs)
	}
	if _, err := ReadSnapshot(dir, 1); err == nil {
		t.Fatal("pruned snapshot still readable")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 7, []byte("precious state"), true); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapName(7))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if _, err := ReadSnapshot(dir, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot read = %v, want ErrCorrupt", err)
	}
	// Truncated file: also typed, never a panic.
	os.WriteFile(path, data[:3], 0o644)
	if _, err := ReadSnapshot(dir, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated snapshot read = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotNoTmpLeftBehind(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("x"), false); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("tmp file left behind: %s", e.Name())
		}
	}
}
