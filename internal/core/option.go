// Package core implements the MDCC commit protocol (Kraska et al.,
// EuroSys 2013): per-record Generalized/Fast/Multi-Paxos instances
// that accept *options to execute updates*, an app-server-side
// coordinator that learns options and derives the transaction outcome
// deterministically (no unilateral aborts), quorum demarcation for
// value constraints on commutative updates, the pessimistic
// deadlock-avoidance policy, the fast⇄classic ballot policy (γ), and
// recovery of dangling transactions left by failed app-servers.
//
// Roles and message flow (defaults; §3 of the paper):
//
//	Coordinator (app-server DB library)
//	  ├─ fast path:   Propose ─→ all storage nodes ─ Vote ─→ coordinator
//	  ├─ classic path: Propose ─→ record leader ─ Phase2a ─→ nodes ─→ leader ─ Learned ─→ coordinator
//	  └─ after learning all options: Visibility ─→ storage nodes (async)
//
// Everything runs in transport handler context: one goroutine per
// node, no internal locking (see internal/transport).
package core

import (
	"errors"
	"fmt"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/transport"
)

// TxID uniquely identifies a transaction. Coordinators mint them from
// their node ID plus a sequence number (the paper suggests UUIDs; a
// node-scoped sequence is equally unique and deterministic in the
// simulator).
type TxID string

// Decision is an acceptor's or learner's judgment of an option.
type Decision uint8

// Decision values.
const (
	DecUnknown Decision = iota
	DecAccept           // the paper's ω(up, ✓)
	DecReject           // the paper's ω(up, ✗)
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case DecAccept:
		return "accept"
	case DecReject:
		return "reject"
	default:
		return "unknown"
	}
}

// OptionID identifies one option: a transaction writes each record at
// most once, so (transaction, key) is unique.
type OptionID struct {
	Tx  TxID
	Key record.Key
}

// String renders "tx@key".
func (id OptionID) String() string { return fmt.Sprintf("%s@%s", id.Tx, id.Key) }

// Option is a proposed right to execute one update of a transaction.
// Per §3.2.3 it carries the transaction id and the full write-set key
// list so any node can reconstruct and finish the transaction if the
// app-server dies.
type Option struct {
	Tx       TxID
	Coord    transport.NodeID // coordinator to notify when learned
	Update   record.Update
	WriteSet []record.Key // primary keys of the whole write-set

	// KeySeq is the option's lineage identity within its coordinator
	// lane: the per-(coordinator incarnation, key) contiguous proposal
	// sequence, minted at Commit. Together with the lane (the TxID
	// prefix, see laneOf) it names this option in LineageSummaries
	// forever. 0 means "no lineage identity" (recovery-fiat options).
	KeySeq uint64
	// WriteSeqs carries the KeySeq of every sibling option of the
	// transaction, parallel to WriteSet, so dangling-transaction
	// recovery can ask each key's leader about the sibling by lineage
	// identity even after the leader's decided-log entry was evicted
	// (the summary then answers exactly; see onRecoverOpt).
	WriteSeqs []uint64
}

// ID returns the option's identity.
func (o Option) ID() OptionID { return OptionID{Tx: o.Tx, Key: o.Update.Key} }

// RejectReason refines a reject decision with a typed cause that
// travels back to the application (votes, cstructs, learned
// messages). Most rejects are plain protocol aborts (version
// conflicts, demarcation) and carry ReasonNone.
type RejectReason uint8

// Reject reasons.
const (
	ReasonNone RejectReason = iota
	// ReasonMixedKinds: the option's update kind conflicts with the
	// record's established class — a physical rewrite of a key with
	// commutative history, or a commutative delta on a physically
	// rewritten key (DESIGN.md §5's kind-disjoint rule, enforced at
	// the acceptor instead of silently voiding the merge envelope).
	ReasonMixedKinds
)

// ErrMixedUpdateKinds is the typed error surfaced to clients when an
// option is rejected with ReasonMixedKinds. Record-creating inserts
// (ReadVersion 0) are class-neutral; the class locks on the first
// non-creating update.
var ErrMixedUpdateKinds = errors.New("mdcc/core: update kind conflicts with the key's established class (kind-disjoint rule)")

// VotedOption is an option plus a decision — one element of the
// cstructs acceptors vote on. Reason refines reject decisions.
type VotedOption struct {
	Opt      Option
	Decision Decision
	Reason   RejectReason
}

// decidedEntry is one settled option: its final decision plus, when
// known, the option contents (so lineage merges can graft the update
// onto a diverged base and recovery can re-broadcast visibility for
// transactions whose coordinator died). lane/keySeq mirror the
// option's lineage identity so the entry can be cross-checked against
// summaries even after its contents are released; kind survives
// content release for adoptBase's physical-containment rule.
type decidedEntry struct {
	Decision  Decision
	Opt       Option
	HasOpt    bool
	settledAt time.Time
	lane      string
	keySeq    uint64
	kind      record.UpdateKind
}

// decidedLog remembers decided options per record so votes,
// visibility and recovery are idempotent and diverged lineages can be
// merged. Two eviction regimes share it:
//
//   - Entries WITH a lineage identity (keySeq > 0) are released only
//     once (a) they are older than the retention horizon AND (b)
//     every peer replica's last-known LineageSummary contains them
//     (the acked predicate). The summary carries their settled
//     knowledge forever, and the all-peer-ack guarantee is what makes
//     content release safe: an option every replica has settled can
//     never again be the missing half of a fork, so its contents are
//     never needed for a graft. Retention is therefore a pure cache
//     knob — shrinking it can cost a recovery round trip, never a
//     lost apply (the seed design's §5 limitation, now closed).
//   - Legacy entries (keySeq == 0: recovery-fiat options) keep the
//     old count-capped AND age-gated FIFO rule; they carry no effect
//     to lose.
//
// Unacked entries are retained past the count cap — the log grows
// with the divergence horizon (e.g. a partitioned peer), which is the
// minimum state any exact merge scheme must keep.
type decidedLog struct {
	order     []OptionID
	byID      map[OptionID]decidedEntry
	limit     int
	retention time.Duration

	// lastCompactLen amortizes compaction: a full pass runs only once
	// the log doubles past max(limit, lastCompactLen), so a log with
	// nothing evictable costs O(1) amortized per settle, not O(n).
	lastCompactLen int
}

const (
	defaultDecidedLimit     = 512
	defaultDecidedRetention = 2 * time.Minute
)

func newDecidedLog(limit int, retention time.Duration) *decidedLog {
	if limit <= 0 {
		limit = defaultDecidedLimit
	}
	if retention <= 0 {
		retention = defaultDecidedRetention
	}
	// Maps grow on demand: most records settle only a handful of
	// options, so no capacity hint (pre-sizing 512 slots per record
	// dominated simulator CPU).
	return &decidedLog{
		byID:      make(map[OptionID]decidedEntry),
		limit:     limit,
		retention: retention,
	}
}

// record stores a final decision (first write wins: decisions are
// immutable once made) settled at time now. It reports whether the
// entry was newly inserted (false for already-known decisions), so
// callers can persist each decision exactly once. Eviction is the
// caller's concern (compactLegacy / StorageNode.compactDecided).
func (l *decidedLog) record(id OptionID, d Decision, opt Option, hasOpt bool, now time.Time) bool {
	if _, ok := l.byID[id]; ok {
		return false
	}
	e := decidedEntry{
		Decision: d, Opt: opt, HasOpt: hasOpt, settledAt: now,
		lane: laneOf(id.Tx),
	}
	if hasOpt {
		e.keySeq = opt.KeySeq
		e.kind = opt.Update.Kind
	}
	l.order = append(l.order, id)
	l.byID[id] = e
	return true
}

// compactLegacy applies the pre-lineage eviction rule (count cap +
// age gate); used by the leader's learned log, which has no summary
// backing it.
func (l *decidedLog) compactLegacy(now time.Time) {
	for len(l.order) > l.limit {
		oldest := l.order[0]
		if now.Sub(l.byID[oldest].settledAt) < l.retention {
			break // still inside the re-delivery horizon: keep growing
		}
		l.order = l.order[1:]
		delete(l.byID, oldest)
	}
}

// wantsCompact reports whether the log has doubled past
// max(limit, size after the last pass) — the amortization that keeps
// per-settle compaction O(1) even when nothing is releasable (the
// periodic sweep additionally forces passes on over-limit logs, so a
// log whose entries become releasable later still shrinks).
func (l *decidedLog) wantsCompact() bool {
	threshold := l.limit
	if l.lastCompactLen > threshold {
		threshold = l.lastCompactLen
	}
	return len(l.order) >= 2*threshold
}

// compact releases evictable entries: aged past retention and either
// legacy (keySeq 0) or acked by every peer summary. Returns how many
// entries were released.
func (l *decidedLog) compact(now time.Time, acked func(e decidedEntry) bool) int {
	keep := l.order[:0]
	evicted := 0
	for _, id := range l.order {
		e := l.byID[id]
		if now.Sub(e.settledAt) >= l.retention &&
			(e.keySeq == 0 || acked(e)) {
			delete(l.byID, id)
			evicted++
			continue
		}
		keep = append(keep, id)
	}
	l.order = keep
	l.lastCompactLen = len(l.order)
	return evicted
}

// get looks up a decision.
func (l *decidedLog) get(id OptionID) (Decision, bool) {
	e, ok := l.byID[id]
	return e.Decision, ok
}

// entry looks up the full settled entry.
func (l *decidedLog) entry(id OptionID) (decidedEntry, bool) {
	e, ok := l.byID[id]
	return e, ok
}
