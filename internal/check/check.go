// Package check validates consistency invariants over recorded
// transaction histories: wrap every client of a run in a History
// recorder, then Validate the final database state against what the
// committed operations permit. It machine-checks the guarantees
// DESIGN.md §5 claims — no lost updates, atomic durability,
// constraint safety, conservation of commutative deltas — and is used
// by integration and property tests.
package check

import (
	"fmt"
	"sync"

	"mdcc/internal/mtx"
	"mdcc/internal/record"
)

// Op is one recorded transaction.
type Op struct {
	Seq       int64
	Client    int
	Updates   []record.Update
	Committed bool
	// Unknown marks an op whose outcome was never acknowledged — the
	// client-side process (e.g. a gateway) died with the ack in flight.
	// The protocol still settles the transaction (the dangling-option
	// sweep forces a decision), so the state may or may not contain
	// its effects; Validate bounds the invariants accordingly.
	Unknown bool
}

// History collects operations from all wrapped clients of a run.
// Safe for concurrent use.
type History struct {
	mu  sync.Mutex
	ops []Op
	seq int64
}

// New returns an empty history.
func New() *History { return &History{} }

// Ops returns a copy of the recorded operations.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Client wraps a client so its commits are recorded.
func (h *History) Client(id int, inner mtx.Client) mtx.Client {
	return &recordingClient{h: h, id: id, inner: inner}
}

type recordingClient struct {
	h     *History
	id    int
	inner mtx.Client
}

func (rc *recordingClient) Read(key record.Key, cb func(record.Value, record.Version, bool)) {
	rc.inner.Read(key, cb)
}

func (rc *recordingClient) Commit(updates []record.Update, done func(bool)) {
	ups := append([]record.Update(nil), updates...)
	rc.inner.Commit(updates, func(ok bool) {
		rc.h.mu.Lock()
		rc.h.seq++
		rc.h.ops = append(rc.h.ops, Op{
			Seq: rc.h.seq, Client: rc.id, Updates: ups, Committed: ok,
		})
		rc.h.mu.Unlock()
		done(ok)
	})
}

func (rc *recordingClient) SupportsCommutative() bool { return mtx.Commutative(rc.inner) }

// Orphan records an op whose outcome will never be acknowledged (the
// submitting tier died mid-flight). Harnesses call this instead of
// letting the op vanish from the history, which would make exact
// version/conservation accounting flag the op's possible effects as
// corruption.
func (h *History) Orphan(client int, updates []record.Update) {
	h.mu.Lock()
	h.seq++
	h.ops = append(h.ops, Op{
		Seq: h.seq, Client: client,
		Updates: append([]record.Update(nil), updates...),
		Unknown: true,
	})
	h.mu.Unlock()
}

// Unknowns counts recorded unknown-outcome ops.
func (h *History) Unknowns() int {
	n := 0
	for _, op := range h.Ops() {
		if op.Unknown {
			n++
		}
	}
	return n
}

// FinalState reads the authoritative end-of-run state of a key
// (typically from a storage replica after quiescence).
type FinalState func(key record.Key) (val record.Value, ver record.Version, exists bool)

// Validate checks the history against the final state. initial maps
// preloaded keys to their starting values (version 1); keys created
// during the run start absent. Returned errors describe every
// violated invariant (empty slice = clean).
//
// Checked invariants:
//
//  1. No lost updates: committed physical writes to a key have
//     pairwise distinct read versions (two commits with the same
//     vread would mean one overwrote the other blindly).
//  2. Version accounting: the final version of a key equals its
//     initial version plus the number of committed non-read-check
//     updates to it.
//  3. Conservation: for keys touched only by commutative updates,
//     final = initial + Σ committed deltas.
//  4. Constraint safety: the final value satisfies every declared
//     constraint.
//
// Unknown-outcome ops (see Op.Unknown) relax the exact checks to
// bounds: the final version must fall in [committed, committed +
// unknown writes] and a commutative attribute in [Σ committed +
// Σ unknown decrements, Σ committed + Σ unknown increments] — any
// state outside those envelopes is still corruption no crash can
// explain.
func (h *History) Validate(initial map[record.Key]record.Value, final FinalState, cons []record.Constraint) []error {
	ops := h.Ops()
	var errs []error

	type keyStats struct {
		physVreads    map[record.Version]int
		committed     int // committed writes (physical+commutative)
		deltas        map[string]int64
		sawPhysical   bool
		sawComm       bool
		lastTombstone bool

		// Unknown-outcome bounds.
		unknownWrites int // unknown non-read-check updates touching the key
		unknownPhys   bool
		unknownNeg    map[string]int64 // <= 0, worst-case unapplied/applied split
		unknownPos    map[string]int64 // >= 0
	}
	stats := make(map[record.Key]*keyStats)
	ks := func(k record.Key) *keyStats {
		s, ok := stats[k]
		if !ok {
			s = &keyStats{
				physVreads: make(map[record.Version]int),
				deltas:     make(map[string]int64),
				unknownNeg: make(map[string]int64),
				unknownPos: make(map[string]int64),
			}
			stats[k] = s
		}
		return s
	}
	for _, op := range ops {
		if op.Unknown {
			for _, up := range op.Updates {
				s := ks(up.Key)
				switch up.Kind {
				case record.KindPhysical:
					s.unknownWrites++
					s.unknownPhys = true
				case record.KindCommutative:
					s.unknownWrites++
					for attr, d := range up.Deltas {
						if d < 0 {
							s.unknownNeg[attr] += d
						} else {
							s.unknownPos[attr] += d
						}
					}
				}
			}
			continue
		}
		if !op.Committed {
			continue
		}
		for _, up := range op.Updates {
			s := ks(up.Key)
			switch up.Kind {
			case record.KindPhysical:
				s.physVreads[up.ReadVersion]++
				s.committed++
				s.sawPhysical = true
				s.lastTombstone = up.NewValue.Tombstone
			case record.KindCommutative:
				s.committed++
				s.sawComm = true
				for attr, d := range up.Deltas {
					s.deltas[attr] += d
				}
			case record.KindReadCheck:
				// validation only — no state change
			}
		}
	}

	for key, s := range stats {
		// 1. No lost updates.
		for vread, n := range s.physVreads {
			if n > 1 {
				errs = append(errs, fmt.Errorf(
					"check: %s: %d committed physical writes share read version %d (lost update)", key, n, vread))
			}
		}
		val, ver, exists := final(key)
		init, preloaded := initial[key]
		initVer := record.Version(0)
		if preloaded {
			initVer = 1
		}
		// 2. Version accounting: exact, or bounded when unknown-outcome
		// ops touched the key (each unknown write may or may not have
		// committed).
		lo := initVer + record.Version(s.committed)
		hi := lo + record.Version(s.unknownWrites)
		if ver < lo || ver > hi {
			if lo == hi {
				errs = append(errs, fmt.Errorf(
					"check: %s: final version %d, want %d (initial %d + %d committed writes)",
					key, ver, lo, initVer, s.committed))
			} else {
				errs = append(errs, fmt.Errorf(
					"check: %s: final version %d outside [%d, %d] (initial %d + %d committed + up to %d unknown writes)",
					key, ver, lo, hi, initVer, s.committed, s.unknownWrites))
			}
		}
		// 3. Conservation for purely commutative keys (unknown physical
		// ops void the interval — the key class is no longer delta-only).
		if s.sawComm && !s.sawPhysical && !s.unknownPhys {
			if !exists && preloaded {
				errs = append(errs, fmt.Errorf("check: %s: commutative-only key vanished", key))
			} else {
				for attr, delta := range s.deltas {
					base := init.Attr(attr) + delta
					got := val.Attr(attr)
					aLo := base + s.unknownNeg[attr]
					aHi := base + s.unknownPos[attr]
					if got < aLo || got > aHi {
						if aLo == aHi {
							errs = append(errs, fmt.Errorf(
								"check: %s.%s: final %d, want %d (initial %d + Σdeltas %d)",
								key, attr, got, base, init.Attr(attr), delta))
						} else {
							errs = append(errs, fmt.Errorf(
								"check: %s.%s: final %d outside [%d, %d] (initial %d + Σcommitted %d ± unknown deltas)",
								key, attr, got, aLo, aHi, init.Attr(attr), delta))
						}
					}
				}
			}
		}
		// 4. Constraints.
		if exists {
			for _, con := range cons {
				if x, ok := val.Attrs[con.Attr]; ok && !con.Satisfied(x) {
					errs = append(errs, fmt.Errorf(
						"check: %s: constraint %s violated (value %d)", key, con, x))
				}
			}
		}
		// Tombstone bookkeeping consistency (moot when an unknown
		// physical op may have rewritten the key after the delete).
		if s.sawPhysical && s.lastTombstone && exists && !s.sawComm && !s.unknownPhys {
			errs = append(errs, fmt.Errorf("check: %s: last committed write was a delete but the record exists", key))
		}
	}
	return errs
}

// Summary returns commit/abort counts for reporting.
func (h *History) Summary() (commits, aborts int) {
	for _, op := range h.Ops() {
		switch {
		case op.Unknown:
			// neither: outcome unacknowledged (see Unknowns)
		case op.Committed:
			commits++
		default:
			aborts++
		}
	}
	return commits, aborts
}
