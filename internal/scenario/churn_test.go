package scenario

import (
	"testing"
	"time"

	"mdcc/internal/ring"
	"mdcc/internal/topology"
)

// TestChurnDestinationReplacedMidMove pins the hardest churn × move
// interleaving: a replica of the move's DESTINATION group is replaced
// — crashed, disks wiped, fresh machine — while the bootstrap that is
// populating it is in flight. The epoch fence must hold (no
// transaction admitted onto the moving slice lands on a half-built
// owner), the pull chain must re-issue from scratch on the empty
// incarnation, and the move must still publish with exact lineage
// convergence on the new owners. A second replace after publish
// covers the post-move rebuild path in the same run.
func TestChurnDestinationReplacedMidMove(t *testing.T) {
	s := &Scenario{
		Name:        "churn-dest-replace",
		Description: "test-local: replace bootstrap-destination replicas mid-move and post-publish",
		Gateway:     true,
		Groups:      1,
		NodesPerDC:  2,
		Workload: Workload{
			Accounts:       20,
			InitialBalance: 1000,
			StockKeys:      3,
			InitialStock:   50000,
			Items:          6,
			ReadFrac:       0.15,
			TransferFrac:   0.35,
			StockFrac:      0.25,
		},
		Clients:  12,
		Duration: 15 * time.Second,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.20), "group 1 joins the ring", func() {
				r.QueueMove("join group 1", func(cur ring.Map) ring.Map { return cur.WithGroup(1) })
			})
			// 300ms after the move starts: the freeze is draining or the
			// bootstrap chains have just been issued — either way the
			// us-east destination's chain must re-issue on the wiped
			// replacement before the move can publish.
			r.At(frac(r, 0.22), "replace us-east destination replica mid-bootstrap", func() {
				if i := r.StorageIdx(topology.USEast, 1); i >= 0 {
					r.ReplaceStorage(i)
				}
			})
			r.At(frac(r, 0.60), "replace ap-tk destination replica after publish", func() {
				if i := r.StorageIdx(topology.APTokyo, 1); i >= 0 {
					r.ReplaceStorage(i)
				}
			})
		},
	}
	res, err := s.Run(Options{Seed: 1, Faults: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v (unresolved %d)", res.Violations, res.Unresolved)
	}
	if res.RingEpoch != 2 {
		t.Fatalf("ring epoch %d, want 2: the move did not publish through the destination replace", res.RingEpoch)
	}
	if res.WipedRebuilds < 2 {
		t.Fatalf("wiped rebuilds %d, want 2 (both replaces must boot empty)", res.WipedRebuilds)
	}
	if res.Nodes.ShardMoves == 0 || res.Nodes.MovedKeys == 0 {
		t.Fatalf("no shard adoptions recorded: moves %d keys %d", res.Nodes.ShardMoves, res.Nodes.MovedKeys)
	}
	if res.Commits == 0 {
		t.Fatal("no commits through the churned move")
	}
}
