//go:build !notrace

package trace

// Built reports whether the recorder is compiled in. With the default
// build it is true; `go build -tags notrace` flips it to false, which
// makes every Ring.Add body dead code the compiler removes, leaving
// only the constant test at each call site.
const Built = true
