package ring

import "fmt"

// Phases of a live shard move, in order.
const (
	PhaseIdle      = "idle"
	PhaseFreeze    = "freeze"
	PhaseBootstrap = "bootstrap"
	PhasePublish   = "publish"
	PhaseDone      = "done"
)

// Hooks are the environment-specific executors a Mover drives. The
// ring package owns the sequencing and epoch bookkeeping; the hooks
// own the cluster mechanics (which processes to freeze, which
// anti-entropy paths to pull through). Each hook receives the staged
// next ring and a ready callback it must invoke exactly once when its
// phase's postcondition holds; hooks are free to poll, retry across
// node restarts, and take as long as the cluster needs.
type Hooks struct {
	// Freeze must fence admission at every source gateway for keys
	// whose owner changes under next, then drain: call ready only when
	// no in-flight transaction touches a moving key and every live
	// source replica has settled its outstanding options on them.
	Freeze func(next *Ring, ready func())
	// Bootstrap must bring every destination replica to the moving
	// shards' current value+version+lineage (the anti-entropy adoption
	// path), then call ready with the number of keys adopted.
	Bootstrap func(next *Ring, ready func(moved int))
	// Publish runs after the table has installed the next map: lift
	// the admission freeze and re-home per-key routing state.
	Publish func(next *Ring)
}

// MoveStats summarizes one completed move.
type MoveStats struct {
	Epoch     Epoch // the published epoch
	MovedKeys int   // keys adopted by destination replicas
}

// Mover sequences a live shard move through its three phases:
//
//  1. freeze — admission for moving shards is fenced at the source
//     gateways and in-flight options drain or force-settle;
//  2. bootstrap — destination replicas adopt the moving shards via
//     the anti-entropy value+version+summary path;
//  3. publish — the new epoch is installed in the table and routing
//     state re-homes.
//
// One move runs at a time; Move reports false while one is in flight.
type Mover struct {
	t     *Table
	h     Hooks
	phase string
	next  *Ring
	done  func(MoveStats)
}

// NewMover builds a mover over a cluster's ring table.
func NewMover(t *Table, h Hooks) *Mover {
	return &Mover{t: t, h: h, phase: PhaseIdle}
}

// Phase returns the in-flight move's phase (PhaseIdle when none).
func (mv *Mover) Phase() string { return mv.phase }

// Next returns the staged target ring of the in-flight move, nil when
// idle.
func (mv *Mover) Next() *Ring {
	if mv.phase == PhaseIdle || mv.phase == PhaseDone {
		return nil
	}
	return mv.next
}

// Move stages next and starts the three-phase sequence; done (may be
// nil) fires after publish. Returns an error when a move is already in
// flight or next does not supersede the current epoch.
func (mv *Mover) Move(next Map, done func(MoveStats)) error {
	if mv.phase != PhaseIdle && mv.phase != PhaseDone {
		return fmt.Errorf("ring: move to epoch %d already in phase %s", mv.next.Epoch(), mv.phase)
	}
	if next.Epoch <= mv.t.Epoch() {
		return fmt.Errorf("ring: stale move target epoch %d (current %d)", next.Epoch, mv.t.Epoch())
	}
	mv.next = mv.t.Stage(next)
	mv.done = done
	mv.phase = PhaseFreeze
	mv.h.Freeze(mv.next, mv.frozen)
	return nil
}

func (mv *Mover) frozen() {
	if mv.phase != PhaseFreeze {
		return
	}
	mv.phase = PhaseBootstrap
	mv.h.Bootstrap(mv.next, mv.bootstrapped)
}

func (mv *Mover) bootstrapped(moved int) {
	if mv.phase != PhaseBootstrap {
		return
	}
	mv.phase = PhasePublish
	mv.t.Install(mv.next.Map())
	if mv.h.Publish != nil {
		mv.h.Publish(mv.next)
	}
	mv.phase = PhaseDone
	if mv.done != nil {
		mv.done(MoveStats{Epoch: mv.next.Epoch(), MovedKeys: moved})
	}
}
