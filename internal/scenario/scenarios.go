package scenario

import (
	"time"

	"mdcc/internal/record"
	"mdcc/internal/ring"
	"mdcc/internal/topology"
)

// The scenario library. Each scenario pins a workload shape and a
// nemesis schedule expressed as fractions of the traffic window, so
// the same script runs in CI smoke mode (seconds of virtual time) and
// at cmd/mdcc-sim scale (minutes, hundreds of clients).

// frac returns the offset at fraction f of the run's traffic window.
func frac(r *Run, f float64) time.Duration {
	return time.Duration(f * float64(r.Opts.Duration))
}

var mixedWorkload = Workload{
	Accounts:       40,
	InitialBalance: 1000,
	StockKeys:      5,
	InitialStock:   200,
	Items:          10,
	TransferFrac:   0.5,
	StockFrac:      0.2,
}

var registry = []*Scenario{
	{
		// §5.4 / figure 8: a full data center becomes unreachable
		// mid-run and later returns. MDCC must keep committing (one DC
		// down still leaves a fast quorum of 4 and classic quorums of
		// 3) and the returning replicas must converge.
		Name:        "dc-outage",
		Description: "full data-center outage and return (§5.4); commits must continue throughout",
		Workload:    mixedWorkload,
		Clients:     100,
		Duration:    time.Minute,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.25), "fail all storage in us-east", func() { r.FailDC(topology.USEast) })
			r.At(frac(r, 0.60), "recover us-east", func() { r.RecoverDC(topology.USEast) })
		},
	},
	{
		// Every record is mastered in us-west; the whole master DC
		// crashes (volatile Paxos state lost) and later restarts from
		// its WALs. Classic rounds must fail over to fallback leaders
		// in other DCs, and the restarted replicas must replay and
		// catch up without double-applying anything.
		Name:        "master-failover",
		Description: "crash the DC mastering every record; fallback leaders take over, WAL restart rejoins",
		Workload:    mixedWorkload,
		Clients:     60,
		Duration:    time.Minute,
		MasterDC:    func(record.Key) topology.DC { return topology.USWest },
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.25), "crash all storage in us-west (master DC)", func() { r.CrashDC(topology.USWest) })
			r.At(frac(r, 0.60), "restart us-west from WAL", func() { r.RestartDC(topology.USWest) })
		},
	},
	{
		// Many clients hammering three physical records: fast-path
		// collisions force classic windows, and a small γ makes records
		// cycle fast→classic→fast continuously. A mid-run latency
		// brown-out widens the race windows.
		Name:        "collision-storm",
		Description: "hot physical keys under small γ; fast/classic ballot churn with a latency brown-out",
		Workload: Workload{
			Items: 3,
		},
		Clients:  80,
		Duration: 45 * time.Second,
		Gamma:    5,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.35), "3x WAN latency", func() { r.Net.ScaleLatency(3) })
			r.At(frac(r, 0.65), "latency back to normal", func() { r.Net.ScaleLatency(1) })
		},
	},
	{
		// A 2-DC minority (storage and the clients living there) is cut
		// off mid-traffic. The majority side keeps committing; minority
		// transactions stall and must all settle after the heal with no
		// split-brain in the final state.
		Name:        "partition-during-commit",
		Description: "2|3 WAN partition with traffic on both sides; stalled commits settle after heal",
		Workload:    mixedWorkload,
		Clients:     75,
		Duration:    time.Minute,
		Nemesis: func(r *Run) {
			minority := []topology.DC{topology.APSingapore, topology.APTokyo}
			r.At(frac(r, 0.30), "partition ap-sg+ap-tk from the rest", func() {
				r.Net.Partition(r.SideIDs(minority...), r.OtherSideIDs(minority...))
			})
			r.At(frac(r, 0.65), "heal partition", func() { r.Net.HealAll() })
		},
	},
	{
		// Nearly all traffic is blind commutative decrements against
		// units >= 0 with scarce initial stock: the quorum demarcation
		// limit must reject over-draws on the fast path while light
		// packet loss stresses option recovery. Conservation of deltas
		// and the constraint are the invariants under test.
		Name:        "demarcation-stress",
		Description: "commutative decrements exhaust scarce stock under packet loss; units>=0 must hold",
		Workload: Workload{
			StockKeys:    4,
			InitialStock: 60,
			Items:        2,
			StockFrac:    0.9,
		},
		Clients:  100,
		Duration: 45 * time.Second,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.20), "5% packet loss", func() { r.Net.SetDropProb(0.05) })
			r.At(frac(r, 0.80), "packet loss off", func() { r.Net.SetDropProb(0) })
		},
	},
	{
		// Crash and WAL-restart every storage node in turn while
		// traffic continues: a rolling upgrade. No acknowledged commit
		// may be lost across any restart.
		Name:        "rolling-restarts",
		Description: "crash/WAL-restart every storage node in sequence under load",
		Workload:    mixedWorkload,
		Clients:     60,
		Duration:    75 * time.Second,
		Nemesis: func(r *Run) {
			n := len(r.Cluster.Storage)
			for i := 0; i < n; i++ {
				i := i
				down := 0.10 + 0.80*float64(i)/float64(n)
				up := down + 0.40/float64(n)
				id := r.Cluster.Storage[i].ID
				r.At(frac(r, down), "crash "+string(id), func() { r.CrashStorage(i) })
				r.At(frac(r, up), "restart "+string(id), func() { r.RestartStorage(i) })
			}
		},
	},
	{
		// A flash-sale stampede through the gateway tier: heavy
		// commutative traffic on a handful of hot stock keys flows
		// through per-DC gateways (coordinator pooling, cross-
		// transaction batching, hot-key delta coalescing into merged
		// options) while a DC outage, packet loss and a latency
		// brown-out hit the cluster. Invariants under test: delta
		// conservation and per-client-update version accounting
		// across merged options, units >= 0 under demarcation, and
		// settle-everything liveness with the gateway in the path.
		Name:        "gateway-saturation",
		Description: "hot-key commutative stampede via per-DC gateways (pooling+batching+coalescing) under outage, loss and latency faults",
		Gateway:     true,
		Workload: Workload{
			Accounts:       20,
			InitialBalance: 1000,
			StockKeys:      3,
			InitialStock:   150000,
			Items:          4,
			TransferFrac:   0.15,
			StockFrac:      0.75,
		},
		Clients:  150,
		Duration: time.Minute,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.15), "5% packet loss", func() { r.Net.SetDropProb(0.05) })
			r.At(frac(r, 0.30), "fail all storage in eu-ie", func() { r.FailDC(topology.EUIreland) })
			r.At(frac(r, 0.45), "2x WAN latency", func() { r.Net.ScaleLatency(2) })
			r.At(frac(r, 0.60), "latency back to normal", func() { r.Net.ScaleLatency(1) })
			r.At(frac(r, 0.70), "recover eu-ie", func() { r.RecoverDC(topology.EUIreland) })
			r.At(frac(r, 0.85), "packet loss off", func() { r.Net.SetDropProb(0) })
		},
	},
	{
		// The gateway tier itself becomes the fault target: two DCs'
		// gateways hard-crash (queued events, merge windows and pooled
		// coordinators die with the process; in-flight client acks are
		// lost) and restart mid-stampede, while a third DC is
		// partitioned away entirely — gateway included. Crashed-gateway
		// transactions become unknown-outcome history entries: the
		// dangling-option sweep must settle whatever was proposed, and
		// the final state must stay inside the unknown-op envelope
		// (version range, conservation interval, constraints). Scarcer
		// stock than gateway-saturation keeps demarcation headroom live
		// so the restarted gateways' re-learned escrow accounts are
		// also under test.
		Name:        "gateway-partition",
		Description: "gateway processes crash/restart mid-stampede plus a DC partition; unknown-outcome ops bounded, sweep settles orphans",
		Gateway:     true,
		Workload: Workload{
			Accounts:       20,
			InitialBalance: 1000,
			StockKeys:      3,
			InitialStock:   20000,
			Items:          4,
			TransferFrac:   0.15,
			StockFrac:      0.75,
		},
		Clients:  150,
		Duration: time.Minute,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.15), "crash gateway us-east", func() { r.CrashGateway(topology.USEast) })
			r.At(frac(r, 0.30), "partition eu-ie (gateway included) from the rest", func() {
				r.Net.Partition(r.SideIDs(topology.EUIreland), r.OtherSideIDs(topology.EUIreland))
			})
			r.At(frac(r, 0.40), "restart gateway us-east", func() { r.RestartGateway(topology.USEast) })
			r.At(frac(r, 0.50), "crash gateway ap-sg", func() { r.CrashGateway(topology.APSingapore) })
			r.At(frac(r, 0.60), "heal partition", func() { r.Net.HealAll() })
			r.At(frac(r, 0.75), "restart gateway ap-sg", func() { r.RestartGateway(topology.APSingapore) })
		},
	},
	{
		// A hot-key read stampede through the gateway read tier: 90%
		// of traffic is session-guaranteed floored reads served from
		// the gateways' feed-materialized stores, over a write mix
		// that keeps versions moving (stock decrements + item
		// read-modify-writes). The nemesis attacks every feed failure
		// mode: a full-DC partition (gateway included) starves that
		// DC's feeds and strands its clients' floors; a gateway
		// crash/restart discards a materialized store mid-stampede
		// (the fresh incarnation must re-learn from catch-up + RPC
		// fills without serving anything below a session floor); a
		// storage-node crash kills a feed publisher (subscriber state
		// is volatile — the gateway must detect the silence and
		// resubscribe); and a latency brown-out stretches feed lag.
		// Invariants: monotonic reads + read-your-writes over every
		// consumed read (check.ValidateSessionReads), no fabricated
		// versions, plus the standard conservation/version accounting.
		Name:        "read-storm",
		Description: "hot-key floored-read stampede on the gateway read tier under partition, gateway crash and feed-publisher crash",
		Gateway:     true,
		Workload: Workload{
			StockKeys:    4,
			InitialStock: 50000,
			Items:        6,
			ReadFrac:     0.90,
			StockFrac:    0.05,
		},
		Clients:  150,
		Duration: time.Minute,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.10), "crash one us-west storage node (feed publisher dies)", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.USWest {
						r.CrashStorage(i)
						break
					}
				}
			})
			r.At(frac(r, 0.25), "restart the us-west storage node", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.USWest {
						r.RestartStorage(i)
						break
					}
				}
			})
			r.At(frac(r, 0.30), "partition us-east (gateway included) from the rest", func() {
				r.Net.Partition(r.SideIDs(topology.USEast), r.OtherSideIDs(topology.USEast))
			})
			r.At(frac(r, 0.40), "crash gateway ap-sg mid-stampede", func() { r.CrashGateway(topology.APSingapore) })
			r.At(frac(r, 0.50), "2x WAN latency (feed lag)", func() { r.Net.ScaleLatency(2) })
			r.At(frac(r, 0.55), "restart gateway ap-sg", func() { r.RestartGateway(topology.APSingapore) })
			r.At(frac(r, 0.60), "heal partition", func() { r.Net.HealAll() })
			r.At(frac(r, 0.75), "latency back to normal", func() { r.Net.ScaleLatency(1) })
		},
	},
	{
		// Live capacity growth under fire: the cluster boots with one
		// active replica group per DC (a second is provisioned idle) and
		// 30% into the traffic window the ring activates group 1 — a
		// three-phase shard move (freeze-drain the re-homing ~half of
		// the keyspace at every gateway, bootstrap the new group's
		// replicas over the directed anti-entropy pull, publish the new
		// epoch) while the nemesis throws ambient packet loss, a
		// source-replica crash/restart, a destination-replica
		// crash/restart (the pull chain must re-issue on the fresh
		// incarnation), a DC partition and a gateway crash/restart into
		// the move window. Invariants: everything the other scenarios
		// demand — conservation, version accounting, session reads —
		// plus exact per-shard lineage convergence on the new owners
		// and zero lost or duplicated applies across the move.
		Name:        "shard-rebalance",
		Description: "live shard move onto a new replica group under drops, crashes, a partition and a gateway crash",
		Gateway:     true,
		Groups:      1,
		Rebalance:   &Rebalance{At: 0.30, AddGroup: 1},
		NodesPerDC:  2,
		Workload: Workload{
			Accounts:       30,
			InitialBalance: 1000,
			StockKeys:      4,
			InitialStock:   50000,
			Items:          8,
			ReadFrac:       0.20,
			TransferFrac:   0.35,
			StockFrac:      0.25,
		},
		Clients:  60,
		Duration: 45 * time.Second,
		Nemesis: func(r *Run) {
			crash := func(dc topology.DC, group int) func() {
				return func() {
					for i, n := range r.Cluster.Storage {
						if n.DC == dc && n.Index == group {
							r.CrashStorage(i)
						}
					}
				}
			}
			restart := func(dc topology.DC, group int) func() {
				return func() {
					for i, n := range r.Cluster.Storage {
						if n.DC == dc && n.Index == group {
							r.RestartStorage(i)
						}
					}
				}
			}
			r.At(frac(r, 0.32), "4% packet loss into the move window", func() { r.Net.SetDropProb(0.04) })
			r.At(frac(r, 0.38), "crash us-west source replica (group 0)", crash(topology.USWest, 0))
			r.At(frac(r, 0.42), "partition eu-ie (gateway included) from the rest", func() {
				r.Net.Partition(r.SideIDs(topology.EUIreland), r.OtherSideIDs(topology.EUIreland))
			})
			r.At(frac(r, 0.45), "crash ap-tk destination replica (group 1) mid-bootstrap", crash(topology.APTokyo, 1))
			r.At(frac(r, 0.50), "crash gateway us-east", func() { r.CrashGateway(topology.USEast) })
			r.At(frac(r, 0.55), "restart us-west source replica", restart(topology.USWest, 0))
			r.At(frac(r, 0.58), "restart ap-tk destination replica", restart(topology.APTokyo, 1))
			r.At(frac(r, 0.60), "heal partition", func() { r.Net.HealAll() })
			r.At(frac(r, 0.62), "restart gateway us-east", func() { r.RestartGateway(topology.USEast) })
			r.At(frac(r, 0.70), "packet loss off", func() { r.Net.SetDropProb(0) })
		},
	},
	{
		// Continuous membership churn — the cluster's cast is never
		// fixed. Storage replicas are *replaced* (crash + disk wipe + a
		// fresh machine rebuilt from its quorum), gateways leave and are
		// replaced by new incarnations, and the shard ring itself churns:
		// a spare replica group joins mid-traffic, an original group
		// leaves (its keyspace slice scatters across the survivors, each
		// bootstrapping its share — including from the leaver — before
		// the epoch publishes), and the departed group later rejoins.
		// Ring moves queue FIFO through the same freeze → bootstrap →
		// publish control plane as shard-rebalance; replaces landing on
		// in-flight bootstrap destinations force pull chains to re-issue
		// on the fresh (empty) incarnation. Invariants: everything the
		// other scenarios demand — zero lost acked writes, conservation,
		// version accounting, session reads — plus exact lineage
		// convergence on whatever replica set owns each key at the end.
		Name:        "node-churn",
		Description: "continuous join/leave/replace of storage replicas, gateways and ring groups under load",
		Gateway:     true,
		Groups:      2,
		NodesPerDC:  3,
		Workload: Workload{
			Accounts:       30,
			InitialBalance: 1000,
			StockKeys:      4,
			InitialStock:   50000,
			Items:          8,
			ReadFrac:       0.20,
			TransferFrac:   0.35,
			StockFrac:      0.25,
		},
		Clients:  60,
		Duration: time.Minute,
		Nemesis: func(r *Run) {
			replace := func(dc topology.DC, group int) func() {
				return func() {
					if i := r.StorageIdx(dc, group); i >= 0 {
						r.ReplaceStorage(i)
					}
				}
			}
			r.At(frac(r, 0.08), "replace us-east replica (group 0): new machine, quorum rebuild", replace(topology.USEast, 0))
			r.At(frac(r, 0.12), "gateway us-west leaves (crash)", func() { r.CrashGateway(topology.USWest) })
			r.At(frac(r, 0.18), "gateway us-west replacement joins", func() { r.RestartGateway(topology.USWest) })
			r.At(frac(r, 0.20), "group 2 joins the ring", func() {
				r.QueueMove("join group 2", func(cur ring.Map) ring.Map { return cur.WithGroup(2) })
			})
			r.At(frac(r, 0.30), "replace ap-tk replica (group 1)", replace(topology.APTokyo, 1))
			r.At(frac(r, 0.38), "gateway ap-sg leaves (crash)", func() { r.CrashGateway(topology.APSingapore) })
			r.At(frac(r, 0.45), "group 0 leaves the ring (slice scatters to survivors)", func() {
				r.QueueMove("leave group 0", func(cur ring.Map) ring.Map { return cur.WithoutGroup(0) })
			})
			r.At(frac(r, 0.46), "gateway ap-sg replacement joins", func() { r.RestartGateway(topology.APSingapore) })
			r.At(frac(r, 0.52), "replace eu-ie replica (group 2) mid-churn", replace(topology.EUIreland, 2))
			r.At(frac(r, 0.62), "replace us-west replica (group 1)", replace(topology.USWest, 1))
			r.At(frac(r, 0.70), "group 0 rejoins the ring", func() {
				r.QueueMove("rejoin group 0", func(cur ring.Map) ring.Map { return cur.WithGroup(0) })
			})
			r.At(frac(r, 0.80), "replace ap-sg replica (group 0) during its rejoin", replace(topology.APSingapore, 0))
		},
	},
	{
		// The durable-storage-engine gauntlet. Storage nodes run with
		// periodic full-state checkpoints (snapshot + WAL truncation)
		// while the nemesis attacks the disks themselves: persistent
		// fsync failures (the node must latch typed core.ErrDurability
		// and fall silent — degraded disks shed errors, they never ack
		// unsynced writes), a torn mid-frame write (replay must drop the
		// torn tail exactly), silent bit rot in a logged record (must
		// surface as typed corruption at the next replay — the replica
		// is wiped and rebuilt from its quorum, never silently wrong),
		// a heavy-load crash whose restart must recover from the newest
		// snapshot plus a bounded log tail inside the documented wall
		// bound, and a crash whose newest snapshot is corrupted on disk
		// so recovery must fall back to the previous snapshot. Beyond
		// the standard invariants, check.ValidateRecovery judges every
		// restart: snapshot-seeded when one existed, tail no longer
		// than what accumulated since the last checkpoint, wall time
		// bounded.
		Name:        "recovery-bound",
		Description: "checkpointed WAL recovery under disk faults: fsync failure, torn write, bit rot, snapshot corruption; replay stays snapshot+bounded-tail",
		Workload:    mixedWorkload,
		Clients:     100,
		Duration:    90 * time.Second,
		Checkpoint:  3 * time.Second,
		Nemesis: func(r *Run) {
			byDC := func(dc topology.DC) int {
				for i, n := range r.Cluster.Storage {
					if n.DC == dc {
						return i
					}
				}
				return -1
			}
			r.At(frac(r, 0.15), "arm bit rot on us-west (next WAL append silently corrupted)", func() {
				// This early rot usually lands in a segment a later
				// checkpoint truncates away — which must stay harmless.
				// The rot that must SURFACE is planted at the crash below.
				r.FlipDiskBit(byDC(topology.USWest))
			})
			r.At(frac(r, 0.20), "fsync failures on eu-ie (node must degrade, not ack)", func() {
				r.FailDisk(byDC(topology.EUIreland))
			})
			r.At(frac(r, 0.30), "torn WAL write on ap-tk (partial frame, then degrade)", func() {
				r.TearDisk(byDC(topology.APTokyo))
			})
			r.At(frac(r, 0.35), "replace eu-ie disk (reboot from snapshot + tail)", func() {
				r.ReplaceDisk(byDC(topology.EUIreland))
			})
			r.At(frac(r, 0.42), "replace ap-tk disk (torn tail dropped at replay)", func() {
				r.ReplaceDisk(byDC(topology.APTokyo))
			})
			r.At(frac(r, 0.45), "crash us-east under sustained load", func() {
				r.CrashStorage(byDC(topology.USEast))
			})
			r.At(frac(r, 0.55), "crash us-west, rot a record in its replay tail", func() {
				i := byDC(topology.USWest)
				r.CrashStorage(i)
				r.RotWALRecord(i)
			})
			r.At(frac(r, 0.60), "restart us-east (snapshot + bounded tail)", func() {
				r.RestartStorage(byDC(topology.USEast))
			})
			r.At(frac(r, 0.65), "restart us-west (typed corruption; wiped, quorum rebuild)", func() {
				r.RestartStorage(byDC(topology.USWest))
			})
			r.At(frac(r, 0.68), "crash ap-sg and corrupt its newest snapshot", func() {
				i := byDC(topology.APSingapore)
				r.CrashStorage(i)
				r.CorruptNewestSnapshot(i)
			})
			r.At(frac(r, 0.78), "restart ap-sg (falls back to previous snapshot)", func() {
				r.RestartStorage(byDC(topology.APSingapore))
			})
		},
	},
	{
		// The retention-is-not-a-correctness-input proof. The
		// decided-log content cache is shrunk to 4s while a full data
		// center sits partitioned for ~55% of the run — many multiples
		// of the cache horizon — with packet loss beforehand seeding
		// forked commutative applies (lost visibility messages). Under
		// the seed design this is exactly the documented §5 loss mode:
		// the partitioned replicas' unique applies aged out of the
		// decided log before the heal, and the merge silently dropped
		// them. With exact lineage summaries the merge is
		// retention-free (contents are held until every peer's summary
		// provably contains them, and summaries answer containment
		// forever), so the run must pass conservation, version
		// accounting AND the exact-convergence check (identical
		// summaries on all replicas of every key). A mid-run WAL
		// crash/restart in a second DC additionally proves summaries
		// replay exactly.
		Name:        "long-outage",
		Description: "outage + recovery horizon far beyond the decided-log retention; exact lineage summaries must converge all forks",
		Workload:    mixedWorkload,
		Clients:     100,
		Duration:    90 * time.Second,
		Retention:   4 * time.Second,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.05), "6% packet loss (seed forked applies)", func() { r.Net.SetDropProb(0.06) })
			r.At(frac(r, 0.15), "partition us-east storage from the rest", func() {
				r.Net.Partition(r.StorageIDs(topology.USEast), r.OtherSideIDs(topology.USEast))
			})
			r.At(frac(r, 0.25), "packet loss off", func() { r.Net.SetDropProb(0) })
			r.At(frac(r, 0.40), "crash one ap-tk replica (WAL summaries)", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.APTokyo {
						r.CrashStorage(i)
						break
					}
				}
			})
			r.At(frac(r, 0.60), "restart the ap-tk replica from WAL", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.APTokyo {
						r.RestartStorage(i)
						break
					}
				}
			})
			r.At(frac(r, 0.70), "heal the partition", func() { r.Net.HealAll() })
		},
	},
	{
		// Everything at once: sustained loss, duplication and
		// reordering, clock drift on two replicas, a latency spike, a
		// short partition and one crash/restart. The kitchen-sink
		// regression net for protocol idempotence.
		Name:        "chaos-mix",
		Description: "drops+dups+reorder+drift+spike+partition+crash combined",
		Workload:    mixedWorkload,
		Clients:     60,
		Duration:    time.Minute,
		Nemesis: func(r *Run) {
			r.At(frac(r, 0.10), "8% loss, 8% dup, 15% reorder", func() {
				r.Net.SetDropProb(0.08)
				r.Net.SetDupProb(0.08)
				r.Net.SetReorder(0.15, 100*time.Millisecond)
			})
			r.At(frac(r, 0.15), "clock drift +30%/-30% on two replicas", func() {
				r.Net.SetDrift(r.Cluster.Storage[0].ID, 0.3)
				r.Net.SetDrift(r.Cluster.Storage[len(r.Cluster.Storage)-1].ID, -0.3)
			})
			r.At(frac(r, 0.30), "2x WAN latency", func() { r.Net.ScaleLatency(2) })
			r.At(frac(r, 0.40), "partition eu-ie from the rest", func() {
				r.Net.Partition(r.SideIDs(topology.EUIreland), r.OtherSideIDs(topology.EUIreland))
			})
			r.At(frac(r, 0.50), "heal partition, latency normal", func() {
				r.Net.HealAll()
				r.Net.ScaleLatency(1)
			})
			r.At(frac(r, 0.55), "crash one ap-tk replica", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.APTokyo {
						r.CrashStorage(i)
						break
					}
				}
			})
			r.At(frac(r, 0.75), "restart ap-tk replica, chaos off", func() {
				for i, n := range r.Cluster.Storage {
					if n.DC == topology.APTokyo {
						r.RestartStorage(i)
						break
					}
				}
				r.Net.SetDropProb(0)
				r.Net.SetDupProb(0)
				r.Net.SetReorder(0, 0)
			})
		},
	},
}
