package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if s.CDF(10) != nil {
		t.Fatal("empty sample CDF should be nil")
	}
}

func TestSampleBasics(t *testing.T) {
	s := NewSample(4)
	for _, x := range []float64{4, 1, 3, 2} {
		s.Add(x)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d, want 4", s.N())
	}
	if !almostEqual(s.Mean(), 2.5, 1e-9) {
		t.Fatalf("Mean = %v, want 2.5", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v, want 1/4", s.Min(), s.Max())
	}
	if !almostEqual(s.Median(), 2.5, 1e-9) {
		t.Fatalf("Median = %v, want 2.5", s.Median())
	}
}

func TestSampleAddAfterSortedQuery(t *testing.T) {
	s := NewSample(0)
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Fatalf("Min after late Add = %v, want 1", s.Min())
	}
}

func TestAddDuration(t *testing.T) {
	s := NewSample(0)
	s.AddDuration(250 * time.Millisecond)
	if !almostEqual(s.Max(), 250, 1e-9) {
		t.Fatalf("AddDuration stored %v, want 250", s.Max())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 5; i++ {
		s.Add(float64(i) * 10)
	}
	cases := []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {-5, 10}, {101, 50},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	s := NewSample(0)
	s.Add(42)
	if got := s.Percentile(99); got != 42 {
		t.Fatalf("single-element percentile = %v, want 42", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	s := NewSample(0)
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !almostEqual(s.Stddev(), 2, 1e-9) {
		t.Fatalf("Stddev = %v, want 2", s.Stddev())
	}
}

func TestCDFShape(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF returned %d points, want 10", len(pts))
	}
	last := pts[len(pts)-1]
	if last.X != 100 || !almostEqual(last.Frac, 1, 1e-9) {
		t.Fatalf("last CDF point = %+v, want (100, 1)", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Frac <= pts[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestCDFMorePointsThanSamples(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	s.Add(2)
	pts := s.CDF(100)
	if len(pts) != 2 {
		t.Fatalf("CDF clipped to %d points, want 2", len(pts))
	}
}

func TestFracBelow(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FracBelow(5); !almostEqual(got, 0.5, 1e-9) {
		t.Fatalf("FracBelow(5) = %v, want 0.5", got)
	}
	if got := s.FracBelow(0); got != 0 {
		t.Fatalf("FracBelow(0) = %v, want 0", got)
	}
	if got := s.FracBelow(99); got != 1 {
		t.Fatalf("FracBelow(99) = %v, want 1", got)
	}
}

func TestBoxplot(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 101; i++ {
		s.Add(float64(i))
	}
	b := s.Box()
	if b.Min != 1 || b.Max != 101 || !almostEqual(b.Median, 51, 1e-9) {
		t.Fatalf("boxplot %+v has wrong min/med/max", b)
	}
	if !almostEqual(b.Q1, 26, 1e-9) || !almostEqual(b.Q3, 76, 1e-9) {
		t.Fatalf("boxplot quartiles %+v, want q1=26 q3=76", b)
	}
	if b.String() == "" {
		t.Fatal("boxplot String empty")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Add(0, 10)
	ts.Add(500*time.Millisecond, 20)
	ts.Add(1500*time.Millisecond, 30)
	ts.Add(-time.Second, 999) // dropped
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if !almostEqual(pts[0].Mean, 15, 1e-9) || pts[0].N != 2 {
		t.Fatalf("bucket 0 = %+v, want mean 15 n 2", pts[0])
	}
	if !almostEqual(pts[1].Mean, 30, 1e-9) || pts[1].Start != time.Second {
		t.Fatalf("bucket 1 = %+v, want mean 30 at 1s", pts[1])
	}
}

func TestTimeSeriesMeanBetween(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	for i := 0; i < 10; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i))
	}
	m, n := ts.MeanBetween(0, 5*time.Second)
	if n != 5 || !almostEqual(m, 2, 1e-9) {
		t.Fatalf("MeanBetween(0,5s) = %v,%d want 2,5", m, n)
	}
	m, n = ts.MeanBetween(5*time.Second, 10*time.Second)
	if n != 5 || !almostEqual(m, 7, 1e-9) {
		t.Fatalf("MeanBetween(5s,10s) = %v,%d want 7,5", m, n)
	}
	if _, n := ts.MeanBetween(20*time.Second, 30*time.Second); n != 0 {
		t.Fatalf("MeanBetween on empty range returned n=%d", n)
	}
}

func TestTimeSeriesZeroBucketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeSeries(0) should panic")
		}
	}()
	NewTimeSeries(0)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("commit", 3)
	c.Inc("abort", 1)
	c.Inc("commit", 2)
	if c.Get("commit") != 5 || c.Get("abort") != 1 {
		t.Fatalf("counter values wrong: %s", c)
	}
	if got := c.Names(); len(got) != 2 || got[0] != "abort" || got[1] != "commit" {
		t.Fatalf("Names = %v", got)
	}
	if c.String() != "abort=1 commit=5" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestASCIICDF(t *testing.T) {
	a := NewSample(0)
	b := NewSample(0)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a.Add(100 + 50*r.Float64())
		b.Add(300 + 100*r.Float64())
	}
	out := ASCIICDF(map[string]*Sample{"fast": a, "slow": b}, 60, true)
	if out == "" || out == "(no data)\n" {
		t.Fatalf("ASCIICDF produced no plot:\n%s", out)
	}
	if ASCIICDF(map[string]*Sample{}, 60, false) != "(no data)\n" {
		t.Fatal("empty series should render (no data)")
	}
}

func TestSummaryNonEmpty(t *testing.T) {
	s := NewSample(0)
	s.Add(1)
	if s.Summary() == "" {
		t.Fatal("Summary empty")
	}
}
