package core

import (
	"testing"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/topology"
)

// world wires a full 5-DC cluster plus coordinators onto the
// discrete-event simulator.
type world struct {
	t      *testing.T
	net    *simnet.Net
	cl     *topology.Cluster
	nodes  []*StorageNode
	coords []*Coordinator
}

func newWorld(t *testing.T, cfg Config, nodesPerDC, clients int, seed int64) *world {
	t.Helper()
	cl := topology.NewCluster(topology.Layout{NodesPerDC: nodesPerDC, Clients: clients, ClientDC: -1})
	net := simnet.New(simnet.Options{
		Latency:     cl.Latency(),
		JitterFrac:  0.05,
		ServiceTime: 100 * time.Microsecond,
		Seed:        seed,
	})
	w := &world{t: t, net: net, cl: cl}
	for _, n := range cl.Storage {
		w.nodes = append(w.nodes, NewStorageNode(n.ID, n.DC, net, cl, cfg, kv.NewMemory()))
	}
	for _, c := range cl.Clients {
		w.coords = append(w.coords, NewCoordinator(c.ID, c.DC, net, cl, cfg))
	}
	return w
}

// commit runs one transaction from coordinator ci and returns the
// result once the simulator settles it.
func (w *world) commit(ci int, updates ...record.Update) CommitResult {
	w.t.Helper()
	var res *CommitResult
	w.coords[ci].Commit(updates, func(r CommitResult) { res = &r })
	if !w.net.RunUntil(func() bool { return res != nil }, time.Minute) {
		w.t.Fatal("commit did not settle within a simulated minute")
	}
	return *res
}

// commitAsync launches a transaction without waiting.
func (w *world) commitAsync(ci int, out *[]CommitResult, updates ...record.Update) {
	w.coords[ci].Commit(updates, func(r CommitResult) { *out = append(*out, r) })
}

// read performs a blocking read from coordinator ci.
func (w *world) read(ci int, key record.Key) (record.Value, record.Version, bool) {
	w.t.Helper()
	var val record.Value
	var ver record.Version
	var exists, done bool
	w.coords[ci].Read(key, func(v record.Value, vr record.Version, ex bool) {
		val, ver, exists, done = v, vr, ex, true
	})
	if !w.net.RunUntil(func() bool { return done }, time.Minute) {
		w.t.Fatal("read did not settle")
	}
	return val, ver, exists
}

// settle runs the network until in-flight visibility lands.
func (w *world) settle() { w.net.RunFor(3 * time.Second) }

// storedValues returns the committed (value, version) at every
// replica of key.
func (w *world) storedValues(key record.Key) []kv.Entry {
	var out []kv.Entry
	for _, n := range w.nodes {
		for _, rep := range w.cl.Replicas(key) {
			if n.ID() == rep {
				v, ver, _ := n.Store().Get(key)
				out = append(out, kv.Entry{Key: key, Value: v, Version: ver})
			}
		}
	}
	return out
}

func cfgNoSweep(mode Mode) Config {
	cfg := Defaults(mode)
	cfg.PendingTimeout = 0 // most tests do not want background sweeps
	return cfg
}

func TestFastPathSingleUpdateCommit(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 1)
	res := w.commit(0, record.Insert("item/1", record.Value{Attrs: map[string]int64{"stock": 10}}))
	if !res.Committed {
		t.Fatal("insert did not commit")
	}
	w.settle()
	for _, e := range w.storedValues("item/1") {
		if e.Version != 1 || e.Value.Attr("stock") != 10 {
			t.Fatalf("replica state = %v v%d, want stock=10 v1", e.Value, e.Version)
		}
	}
	m := w.coords[0].Metrics()
	if m.Commits != 1 || m.FastLearns != 1 || m.Recoveries != 0 {
		t.Fatalf("metrics = %+v, want one fast-learned commit", m)
	}
}

func TestFastPathOneRoundTripLatency(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 2)
	// Client 0 is in us-west. The 4th-closest DC from us-west is
	// eu-ie at 85ms one-way, so a fast commit should take ~170ms —
	// and certainly well under two wide-area round trips (>=340ms).
	start := w.net.Now()
	res := w.commit(0, record.Insert("item/lat", record.Value{}))
	elapsed := w.net.Now().Sub(start)
	if !res.Committed {
		t.Fatal("commit failed")
	}
	if elapsed < 150*time.Millisecond || elapsed > 250*time.Millisecond {
		t.Fatalf("fast commit took %v, want ~170-190ms (one round trip to fast quorum)", elapsed)
	}
}

func TestInsertThenUpdateThenRead(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 3)
	if !w.commit(0, record.Insert("item/2", record.Value{Attrs: map[string]int64{"stock": 5}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	val, ver, ok := w.read(0, "item/2")
	if !ok || ver != 1 || val.Attr("stock") != 5 {
		t.Fatalf("read after insert = %v v%d %v", val, ver, ok)
	}
	if !w.commit(0, record.Physical("item/2", ver, val.WithAttr("stock", 7))).Committed {
		t.Fatal("update failed")
	}
	w.settle()
	val, ver, ok = w.read(0, "item/2")
	if !ok || ver != 2 || val.Attr("stock") != 7 {
		t.Fatalf("read after update = %v v%d %v", val, ver, ok)
	}
}

func TestStaleReadVersionRejected(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 2, 4)
	if !w.commit(0, record.Insert("item/3", record.Value{Attrs: map[string]int64{"x": 1}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Writer 1 updates v1 -> v2.
	if !w.commit(1, record.Physical("item/3", 1, record.Value{Attrs: map[string]int64{"x": 2}})).Committed {
		t.Fatal("first update failed")
	}
	w.settle()
	// Writer 0 still believes version 1: must abort (no lost update).
	if w.commit(0, record.Physical("item/3", 1, record.Value{Attrs: map[string]int64{"x": 99}})).Committed {
		t.Fatal("stale write committed — lost update")
	}
	w.settle()
	val, _, _ := w.read(0, "item/3")
	if val.Attr("x") != 2 {
		t.Fatalf("value = %d, want 2 (stale write must not apply)", val.Attr("x"))
	}
}

func TestConcurrentConflictAtMostOneCommits(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 2, 100+seed)
		if !w.commit(0, record.Insert("item/c", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
			t.Fatal("insert failed")
		}
		w.settle()
		var results []CommitResult
		// Both writers read version 1 and race.
		w.commitAsync(0, &results, record.Physical("item/c", 1, record.Value{Attrs: map[string]int64{"x": 10}}))
		w.commitAsync(1, &results, record.Physical("item/c", 1, record.Value{Attrs: map[string]int64{"x": 20}}))
		if !w.net.RunUntil(func() bool { return len(results) == 2 }, time.Minute) {
			t.Fatalf("seed %d: racing transactions did not both settle", seed)
		}
		commits := 0
		for _, r := range results {
			if r.Committed {
				commits++
			}
		}
		if commits > 1 {
			t.Fatalf("seed %d: both conflicting writers committed", seed)
		}
		w.settle()
		// All replicas agree on one final state.
		vals := w.storedValues("item/c")
		for _, e := range vals[1:] {
			if !e.Value.Equal(vals[0].Value) || e.Version != vals[0].Version {
				t.Fatalf("seed %d: replica divergence: %v v%d vs %v v%d",
					seed, vals[0].Value, vals[0].Version, e.Value, e.Version)
			}
		}
	}
}

func TestMultiRecordAtomicity(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 2, 2, 5)
	if !w.commit(0,
		record.Insert("acct/a", record.Value{Attrs: map[string]int64{"bal": 100}}),
		record.Insert("acct/b", record.Value{Attrs: map[string]int64{"bal": 100}}),
	).Committed {
		t.Fatal("setup failed")
	}
	w.settle()
	// A transaction with one valid and one stale update must abort
	// entirely: the valid update must not apply.
	res := w.commit(0,
		record.Physical("acct/a", 1, record.Value{Attrs: map[string]int64{"bal": 50}}),
		record.Physical("acct/b", 99, record.Value{Attrs: map[string]int64{"bal": 150}}), // stale vread
	)
	if res.Committed {
		t.Fatal("transaction with a rejected option committed")
	}
	w.settle()
	a, _, _ := w.read(0, "acct/a")
	b, _, _ := w.read(0, "acct/b")
	if a.Attr("bal") != 100 || b.Attr("bal") != 100 {
		t.Fatalf("atomicity violated: a=%d b=%d, want 100/100", a.Attr("bal"), b.Attr("bal"))
	}
}

func TestReadCommittedNeverSeesPending(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	w := newWorld(t, cfg, 1, 2, 6)
	if !w.commit(0, record.Insert("item/rc", record.Value{Attrs: map[string]int64{"x": 1}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Start an update and probe a read mid-flight: it must return the
	// old committed value, never the option's payload.
	var results []CommitResult
	w.commitAsync(0, &results, record.Physical("item/rc", 1, record.Value{Attrs: map[string]int64{"x": 2}}))
	w.net.RunFor(40 * time.Millisecond) // proposals in flight, nothing learned yet
	val, _, ok := w.read(1, "item/rc")
	if !ok || (val.Attr("x") != 1 && val.Attr("x") != 2) {
		t.Fatalf("read mid-commit = %v %v", val, ok)
	}
	if val.Attr("x") == 2 {
		// Only allowed if the commit already became visible at the
		// replica serving the read — 40ms is too short for a learn
		// plus visibility round trip from us-west to anywhere.
		t.Fatal("read returned uncommitted option payload")
	}
	if !w.net.RunUntil(func() bool { return len(results) == 1 }, time.Minute) {
		t.Fatal("commit did not settle")
	}
}

func TestCommutativeDecrementsCommute(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.Constraints = []record.Constraint{record.MinBound("stock", 0)}
	w := newWorld(t, cfg, 1, 5, 7)
	if !w.commit(0, record.Insert("item/s", record.Value{Attrs: map[string]int64{"stock": 100}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Five concurrent decrements from five DCs: all commute, all
	// should commit without collisions.
	var results []CommitResult
	for ci := 0; ci < 5; ci++ {
		w.commitAsync(ci, &results, record.Commutative("item/s", map[string]int64{"stock": -2}))
	}
	if !w.net.RunUntil(func() bool { return len(results) == 5 }, time.Minute) {
		t.Fatal("decrements did not settle")
	}
	for _, r := range results {
		if !r.Committed {
			t.Fatalf("commutative decrement aborted: %+v", r)
		}
	}
	w.settle()
	val, _, _ := w.read(0, "item/s")
	if val.Attr("stock") != 90 {
		t.Fatalf("stock = %d, want 90", val.Attr("stock"))
	}
	// No collisions should have been triggered.
	for _, c := range w.coords {
		if m := c.Metrics(); m.Collisions != 0 {
			t.Fatalf("commutative workload caused collisions: %+v", m)
		}
	}
}

func TestConstraintNeverViolated(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.Constraints = []record.Constraint{record.MinBound("stock", 0)}
	w := newWorld(t, cfg, 1, 5, 8)
	if !w.commit(0, record.Insert("item/t", record.Value{Attrs: map[string]int64{"stock": 4}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// 10 concurrent decrements of 1 against stock 4: at most 4 may
	// commit, and stock must never go negative.
	var results []CommitResult
	for i := 0; i < 10; i++ {
		w.commitAsync(i%5, &results, record.Commutative("item/t", map[string]int64{"stock": -1}))
	}
	if !w.net.RunUntil(func() bool { return len(results) == 10 }, 2*time.Minute) {
		t.Fatalf("decrements did not settle (%d done)", len(results))
	}
	commits := 0
	for _, r := range results {
		if r.Committed {
			commits++
		}
	}
	if commits > 4 {
		t.Fatalf("%d decrements committed against stock 4", commits)
	}
	w.settle()
	w.settle()
	for _, e := range w.storedValues("item/t") {
		if e.Value.Attr("stock") < 0 {
			t.Fatalf("constraint violated at a replica: stock=%d", e.Value.Attr("stock"))
		}
	}
	val, _, _ := w.read(0, "item/t")
	if got := val.Attr("stock"); got != 4-int64(commits) {
		t.Fatalf("final stock %d inconsistent with %d commits", got, commits)
	}
}

func TestMultiModeCommit(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMulti), 1, 2, 9)
	res := w.commit(0, record.Insert("item/m", record.Value{Attrs: map[string]int64{"x": 1}}))
	if !res.Committed {
		t.Fatal("multi-mode insert failed")
	}
	w.settle()
	val, ver, ok := w.read(1, "item/m")
	if !ok || ver != 1 || val.Attr("x") != 1 {
		t.Fatalf("multi-mode read = %v v%d %v", val, ver, ok)
	}
	m := w.coords[0].Metrics()
	if m.LeaderLearns != 1 || m.FastLearns != 0 {
		t.Fatalf("multi mode should learn via leader: %+v", m)
	}
}

func TestMultiModeConflictAborts(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMulti), 1, 2, 10)
	if !w.commit(0, record.Insert("item/mc", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	var results []CommitResult
	w.commitAsync(0, &results, record.Physical("item/mc", 1, record.Value{Attrs: map[string]int64{"x": 1}}))
	w.commitAsync(1, &results, record.Physical("item/mc", 1, record.Value{Attrs: map[string]int64{"x": 2}}))
	if !w.net.RunUntil(func() bool { return len(results) == 2 }, time.Minute) {
		t.Fatal("conflicting multi-mode txs did not settle")
	}
	commits := 0
	for _, r := range results {
		if r.Committed {
			commits++
		}
	}
	if commits != 1 {
		t.Fatalf("multi-mode conflict: %d commits, want exactly 1", commits)
	}
}

func TestDeadlockAvoidance(t *testing.T) {
	// Two transactions write the same two records in opposite order.
	// Without the reject-on-pending policy they could deadlock; with
	// it, both settle and at most one commits.
	for seed := int64(0); seed < 5; seed++ {
		w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 2, 200+seed)
		if !w.commit(0,
			record.Insert("dl/a", record.Value{Attrs: map[string]int64{"x": 0}}),
			record.Insert("dl/b", record.Value{Attrs: map[string]int64{"x": 0}}),
		).Committed {
			t.Fatal("setup failed")
		}
		w.settle()
		var results []CommitResult
		w.commitAsync(0, &results,
			record.Physical("dl/a", 1, record.Value{Attrs: map[string]int64{"x": 1}}),
			record.Physical("dl/b", 1, record.Value{Attrs: map[string]int64{"x": 1}}),
		)
		w.commitAsync(1, &results,
			record.Physical("dl/b", 1, record.Value{Attrs: map[string]int64{"x": 2}}),
			record.Physical("dl/a", 1, record.Value{Attrs: map[string]int64{"x": 2}}),
		)
		if !w.net.RunUntil(func() bool { return len(results) == 2 }, 2*time.Minute) {
			t.Fatalf("seed %d: deadlock — transactions never settled", seed)
		}
		commits := 0
		for _, r := range results {
			if r.Committed {
				commits++
			}
		}
		if commits > 1 {
			t.Fatalf("seed %d: both deadlocking transactions committed", seed)
		}
		w.settle()
		a, _, _ := w.read(0, "dl/a")
		b, _, _ := w.read(0, "dl/b")
		if a.Attr("x") != b.Attr("x") {
			t.Fatalf("seed %d: atomicity violated across records: a=%d b=%d", seed, a.Attr("x"), b.Attr("x"))
		}
	}
}

func TestDataCenterFailureFastPath(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 11)
	if !w.commit(0, record.Insert("item/f", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Kill us-east entirely.
	w.net.Fail(topology.StorageID(topology.USEast, 0))
	// A fast commit needs 4 of 5 — exactly the survivors.
	res := w.commit(0, record.Physical("item/f", 1, record.Value{Attrs: map[string]int64{"x": 1}}))
	if !res.Committed {
		t.Fatal("commit failed with one DC down")
	}
	w.settle()
	val, _, _ := w.read(0, "item/f")
	if val.Attr("x") != 1 {
		t.Fatalf("value after failover commit = %d", val.Attr("x"))
	}
}

func TestDataCenterFailureClassicFallback(t *testing.T) {
	// With TWO DCs down a fast quorum (4) is impossible, but a
	// classic quorum (3) still is: recovery must drive commits.
	cfg := cfgNoSweep(ModeMDCC)
	cfg.OptionTimeout = 400 * time.Millisecond
	w := newWorld(t, cfg, 1, 1, 12)
	if !w.commit(0, record.Insert("item/g", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	w.net.Fail(topology.StorageID(topology.APSingapore, 0))
	w.net.Fail(topology.StorageID(topology.APTokyo, 0))
	res := w.commit(0, record.Physical("item/g", 1, record.Value{Attrs: map[string]int64{"x": 1}}))
	if !res.Committed {
		t.Fatal("classic fallback did not commit with 3 of 5 DCs alive")
	}
	m := w.coords[0].Metrics()
	if m.Recoveries == 0 {
		t.Fatalf("expected recovery to drive the commit: %+v", m)
	}
}

func TestCollisionRecoveryResolvesMixedVotes(t *testing.T) {
	// Two physical updates racing with the same vread produce mixed
	// votes at the acceptors; whichever cannot reach a fast quorum
	// must be settled by the master via a classic ballot.
	settled := 0
	for seed := int64(0); seed < 8; seed++ {
		w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 5, 300+seed)
		if !w.commit(0, record.Insert("item/x", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
			t.Fatal("insert failed")
		}
		w.settle()
		var results []CommitResult
		for ci := 0; ci < 5; ci++ {
			w.commitAsync(ci, &results, record.Physical("item/x", 1,
				record.Value{Attrs: map[string]int64{"x": int64(ci + 1)}}))
		}
		if !w.net.RunUntil(func() bool { return len(results) == 5 }, 2*time.Minute) {
			t.Fatalf("seed %d: racing writers never settled (%d/5)", seed, len(results))
		}
		commits := 0
		for _, r := range results {
			if r.Committed {
				commits++
			}
		}
		if commits > 1 {
			t.Fatalf("seed %d: %d of 5 racing writers committed", seed, commits)
		}
		settled++
		w.settle()
		vals := w.storedValues("item/x")
		for _, e := range vals[1:] {
			if !e.Value.Equal(vals[0].Value) {
				t.Fatalf("seed %d: replica divergence after recovery", seed)
			}
		}
	}
	if settled != 8 {
		t.Fatalf("only %d/8 seeds settled", settled)
	}
}

func TestGammaClassicWindowThenFastAgain(t *testing.T) {
	cfg := cfgNoSweep(ModeMDCC)
	cfg.Gamma = 2 // tiny window so the test can cross it
	w := newWorld(t, cfg, 1, 2, 13)
	if !w.commit(0, record.Insert("item/y", record.Value{Attrs: map[string]int64{"x": 0}})).Committed {
		t.Fatal("insert failed")
	}
	w.settle()
	// Force a collision.
	var results []CommitResult
	w.commitAsync(0, &results, record.Physical("item/y", 1, record.Value{Attrs: map[string]int64{"x": 1}}))
	w.commitAsync(1, &results, record.Physical("item/y", 1, record.Value{Attrs: map[string]int64{"x": 2}}))
	if !w.net.RunUntil(func() bool { return len(results) == 2 }, time.Minute) {
		t.Fatal("collision did not settle")
	}
	w.settle()
	// Drive sequential updates to burn through the classic window.
	for i := 0; i < 4; i++ {
		val, ver, _ := w.read(0, "item/y")
		res := w.commit(0, record.Physical("item/y", ver, val.WithAttr("x", int64(10+i))))
		if !res.Committed {
			t.Fatalf("sequential update %d aborted", i)
		}
		w.settle()
	}
	// After γ learned instances the record must be fast again:
	// a fresh commit should fast-learn without leader involvement.
	before := w.coords[0].Metrics().FastLearns
	val, ver, _ := w.read(0, "item/y")
	if !w.commit(0, record.Physical("item/y", ver, val.WithAttr("x", 99))).Committed {
		t.Fatal("post-window update aborted")
	}
	if w.coords[0].Metrics().FastLearns <= before {
		t.Fatal("record did not return to fast ballots after the γ window")
	}
}

func TestDanglingTransactionRecovery(t *testing.T) {
	// A coordinator proposes and its options are accepted, but it
	// dies before sending visibility. The storage-node sweep must
	// finish the transaction.
	cfg := Defaults(ModeMDCC)
	cfg.PendingTimeout = 2 * time.Second
	w := newWorld(t, cfg, 1, 2, 14)
	if !w.commit(0,
		record.Insert("dang/a", record.Value{Attrs: map[string]int64{"x": 0}}),
		record.Insert("dang/b", record.Value{Attrs: map[string]int64{"x": 0}}),
	).Committed {
		t.Fatal("setup failed")
	}
	w.settle()
	// Coordinator 1 proposes, then we kill it the moment it learns
	// (before visibility goes out we fail its node: visibility sends
	// are dropped by the simulator for failed senders).
	victim := w.coords[1]
	victimID := victim.ID()
	done := false
	victim.Commit([]record.Update{
		record.Physical("dang/a", 1, record.Value{Attrs: map[string]int64{"x": 7}}),
		record.Physical("dang/b", 1, record.Value{Attrs: map[string]int64{"x": 7}}),
	}, func(r CommitResult) {
		done = true
		w.net.Fail(victimID)
	})
	// The failure fires inside the callback — before finish() sends
	// visibility? No: finish sends visibility then calls done. So
	// instead kill the client while proposals are still in flight.
	w.net.RunFor(30 * time.Millisecond)
	w.net.Fail(victimID)
	w.net.RunFor(30 * time.Second) // let votes land, sweep fire, recovery run
	_ = done
	// All replicas must converge: either both records updated (tx
	// recovered as committed) or neither (recovered as aborted), and
	// no record may keep an outstanding option forever.
	a := w.storedValues("dang/a")
	b := w.storedValues("dang/b")
	for _, e := range a[1:] {
		if !e.Value.Equal(a[0].Value) {
			t.Fatalf("dang/a replicas diverged")
		}
	}
	for _, e := range b[1:] {
		if !e.Value.Equal(b[0].Value) {
			t.Fatalf("dang/b replicas diverged")
		}
	}
	if a[0].Value.Attr("x") != b[0].Value.Attr("x") {
		t.Fatalf("atomicity violated by recovery: a=%d b=%d", a[0].Value.Attr("x"), b[0].Value.Attr("x"))
	}
	// And the records must be writable again by a live coordinator.
	val, ver, _ := w.read(0, "dang/a")
	if !w.commit(0, record.Physical("dang/a", ver, val.WithAttr("x", 42))).Committed {
		t.Fatal("record still blocked after dangling-tx recovery")
	}
}

func TestEmptyTransactionCommits(t *testing.T) {
	w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 1, 15)
	if !w.commit(0).Committed {
		t.Fatal("empty transaction should trivially commit")
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	run := func() (int64, int64) {
		w := newWorld(t, cfgNoSweep(ModeMDCC), 1, 5, 77)
		w.commit(0, record.Insert("d/1", record.Value{Attrs: map[string]int64{"x": 0}}))
		w.settle()
		var results []CommitResult
		for ci := 0; ci < 5; ci++ {
			w.commitAsync(ci, &results, record.Physical("d/1", 1,
				record.Value{Attrs: map[string]int64{"x": int64(ci)}}))
		}
		w.net.RunUntil(func() bool { return len(results) == 5 }, time.Minute)
		var commits, aborts int64
		for _, c := range w.coords {
			m := c.Metrics()
			commits += m.Commits
			aborts += m.Aborts
		}
		return commits, aborts
	}
	c1, a1 := run()
	c2, a2 := run()
	if c1 != c2 || a1 != a2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", c1, a1, c2, a2)
	}
}
