// Package mdcc is a from-scratch implementation of MDCC — Multi-Data
// Center Consistency (Kraska, Pang, Franklin, Madden, Fekete;
// EuroSys 2013) — an optimistic commit protocol for geo-replicated
// transactions that commits in one wide-area round trip in the common
// case, without a master and without static partitioning, at a cost
// comparable to eventually consistent protocols.
//
// The public API offers two deployment styles:
//
//   - StartCluster: an in-process five-data-center cluster over the
//     real-time transport with (optionally scaled) WAN latencies —
//     for experimentation, examples, and tests.
//   - Dial / cmd/mdcc-server: real TCP servers and clients.
//
// In both styles a session either owns a private coordinator (the
// paper's per-app-server library: Cluster.Session, Dial) or attaches
// to its data center's shared transaction gateway
// (Cluster.Gateway(dc).Session(), DialGateway, mdcc-server -gateway),
// which pools coordinators, batches protocol messages across
// transactions, coalesces hot-key commutative updates into merged
// options, and applies admission control — the serving tier for
// high-fan-in deployments.
//
// Transactions follow the paper's model: read whatever you need
// (read committed), collect a write-set of physical updates
// (validated against the versions you read — no lost updates) and/or
// commutative delta updates (subject to declared value constraints,
// enforced by quorum demarcation), then Commit. The commit either
// applies all updates or none (atomic durability).
//
//	sess := cluster.Session(mdcc.USWest)
//	val, ver, _, _ := sess.Read("item/42")
//	ok, _ := sess.Commit(
//	    mdcc.Physical("item/42", ver, val.WithAttr("price", 1999)),
//	    mdcc.Commutative("item/42/stock", map[string]int64{"stock": -1}),
//	)
//
// The benchmark harness that regenerates every figure of the paper's
// evaluation lives in internal/bench and cmd/mdcc-bench.
package mdcc

import (
	"mdcc/internal/core"
	"mdcc/internal/record"
	"mdcc/internal/topology"
)

// Re-exported data-model types: see internal/record.
type (
	// Key identifies a record.
	Key = record.Key
	// Value is a record's contents: numeric attributes plus a blob.
	Value = record.Value
	// Version is a record's per-update version counter.
	Version = record.Version
	// Update is one element of a transaction's write-set.
	Update = record.Update
	// Constraint bounds a numeric attribute (e.g. stock >= 0).
	Constraint = record.Constraint
	// DC identifies one of the five data centers.
	DC = topology.DC
	// Mode selects the protocol variant (full MDCC, Fast, Multi).
	Mode = core.Mode
)

// The five data centers of the default topology (the paper's EC2
// regions).
const (
	USWest      = topology.USWest
	USEast      = topology.USEast
	EUIreland   = topology.EUIreland
	APSingapore = topology.APSingapore
	APTokyo     = topology.APTokyo
)

// Protocol variants.
const (
	// ModeMDCC enables fast ballots and commutative updates (the
	// full protocol; default).
	ModeMDCC = core.ModeMDCC
	// ModeFast disables commutative support.
	ModeFast = core.ModeFast
	// ModeMulti routes everything through stable per-record masters.
	ModeMulti = core.ModeMulti
)

// Physical builds a whole-value update validated against the version
// the transaction read (vread → vwrite).
func Physical(key Key, readVersion Version, newValue Value) Update {
	return record.Physical(key, readVersion, newValue)
}

// Insert builds a physical update that requires the record to be new.
func Insert(key Key, value Value) Update { return record.Insert(key, value) }

// Delete builds a tombstoning update.
func Delete(key Key, readVersion Version) Update { return record.Delete(key, readVersion) }

// Commutative builds an attribute-delta update (e.g. decrement
// stock), which commutes with other commutative updates and is
// validated against declared constraints via quorum demarcation.
func Commutative(key Key, deltas map[string]int64) Update {
	return record.Commutative(key, deltas)
}

// ReadCheck builds a read-set validation: the transaction commits
// only if key is still at readVersion. Adding read checks for every
// record a transaction read (see Session.TransactSerializable)
// upgrades isolation towards serializability — the §4.4 extension.
func ReadCheck(key Key, readVersion Version) Update {
	return record.ReadCheck(key, readVersion)
}

// MinBound declares "attr >= min".
func MinBound(attr string, min int64) Constraint { return record.MinBound(attr, min) }

// MaxBound declares "attr <= max".
func MaxBound(attr string, max int64) Constraint { return record.MaxBound(attr, max) }

// Bound declares "min <= attr <= max".
func Bound(attr string, min, max int64) Constraint { return record.Bound(attr, min, max) }

// AllDCs lists the five data centers.
func AllDCs() []DC { return topology.AllDCs() }
