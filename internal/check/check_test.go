package check

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mdcc/internal/bench"
	"mdcc/internal/kv"
	"mdcc/internal/mtx"
	"mdcc/internal/record"
)

// fake client for unit-testing the validator itself.
type fakeClient struct{ commit bool }

func (f fakeClient) Read(record.Key, func(record.Value, record.Version, bool)) {}
func (f fakeClient) Commit(ups []record.Update, done func(bool))               { done(f.commit) }

func TestRecorderCapturesOutcomes(t *testing.T) {
	h := New()
	ok := h.Client(0, fakeClient{commit: true})
	no := h.Client(1, fakeClient{commit: false})
	ok.Commit([]record.Update{record.Insert("a", record.Value{})}, func(bool) {})
	no.Commit([]record.Update{record.Insert("b", record.Value{})}, func(bool) {})
	c, a := h.Summary()
	if c != 1 || a != 1 {
		t.Fatalf("summary = %d/%d, want 1/1", c, a)
	}
	ops := h.Ops()
	if len(ops) != 2 || ops[0].Client != 0 || ops[1].Client != 1 {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestValidateDetectsLostUpdate(t *testing.T) {
	h := New()
	c := h.Client(0, fakeClient{commit: true})
	// Two committed writes with the same vread: a lost update.
	c.Commit([]record.Update{record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 1}})}, func(bool) {})
	c.Commit([]record.Update{record.Physical("k", 1, record.Value{Attrs: map[string]int64{"x": 2}})}, func(bool) {})
	errs := h.Validate(
		map[record.Key]record.Value{"k": {Attrs: map[string]int64{"x": 0}}},
		func(record.Key) (record.Value, record.Version, bool) {
			return record.Value{Attrs: map[string]int64{"x": 2}}, 3, true
		}, nil)
	found := false
	for _, e := range errs {
		if containsStr(e.Error(), "lost update") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost update not detected: %v", errs)
	}
}

func TestValidateDetectsVersionMismatch(t *testing.T) {
	h := New()
	c := h.Client(0, fakeClient{commit: true})
	c.Commit([]record.Update{record.Physical("k", 1, record.Value{})}, func(bool) {})
	errs := h.Validate(
		map[record.Key]record.Value{"k": {}},
		func(record.Key) (record.Value, record.Version, bool) {
			return record.Value{}, 5, true // should be 2
		}, nil)
	if len(errs) == 0 {
		t.Fatal("version mismatch not detected")
	}
}

func TestValidateDetectsConservationViolation(t *testing.T) {
	h := New()
	c := h.Client(0, fakeClient{commit: true})
	c.Commit([]record.Update{record.Commutative("k", map[string]int64{"x": -3})}, func(bool) {})
	errs := h.Validate(
		map[record.Key]record.Value{"k": {Attrs: map[string]int64{"x": 10}}},
		func(record.Key) (record.Value, record.Version, bool) {
			return record.Value{Attrs: map[string]int64{"x": 9}}, 2, true // should be 7
		}, nil)
	if len(errs) == 0 {
		t.Fatal("conservation violation not detected")
	}
}

func TestValidateCleanHistory(t *testing.T) {
	h := New()
	c := h.Client(0, fakeClient{commit: true})
	c.Commit([]record.Update{record.Commutative("k", map[string]int64{"x": -3})}, func(bool) {})
	errs := h.Validate(
		map[record.Key]record.Value{"k": {Attrs: map[string]int64{"x": 10}}},
		func(record.Key) (record.Value, record.Version, bool) {
			return record.Value{Attrs: map[string]int64{"x": 7}}, 2, true
		},
		[]record.Constraint{record.MinBound("x", 0)})
	if len(errs) != 0 {
		t.Fatalf("clean history flagged: %v", errs)
	}
}

// End-to-end: drive a contended commutative workload through MDCC on
// the simulator with recorded clients, then machine-check every
// invariant against a storage replica's final state.
func TestMDCCHistoryValidates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w := bench.NewWorld(bench.Options{
			Protocol:    bench.ProtoMDCC,
			NodesPerDC:  1,
			Clients:     5,
			ClientDC:    -1,
			Seed:        seed,
			Constraints: []record.Constraint{record.MinBound("stock", 0)},
		})
		// Preload a small hot table.
		const items = 8
		initial := make(map[record.Key]record.Value, items)
		entries := make([]kv.Entry, 0, items)
		for i := 0; i < items; i++ {
			k := record.Key(fmt.Sprintf("h/%02d", i))
			v := record.Value{Attrs: map[string]int64{"stock": 30}}
			initial[k] = v
			entries = append(entries, kv.Entry{Key: k, Value: v, Version: 1})
		}
		w.Preload(entries)

		h := New()
		clients := make([]mtx.Client, len(w.Clients))
		for i := range w.Clients {
			clients[i] = h.Client(i, w.Clients[i])
		}
		// 60 contended decrements, staggered.
		rng := rand.New(rand.NewSource(seed))
		done := 0
		for i := 0; i < 60; i++ {
			ci := rng.Intn(len(clients))
			k := record.Key(fmt.Sprintf("h/%02d", rng.Intn(items)))
			amt := 1 + rng.Int63n(3)
			at := time.Duration(rng.Intn(8000)) * time.Millisecond
			c, key, a := clients[ci], k, amt
			w.Net.At(at, func() {
				c.Commit([]record.Update{record.Commutative(key, map[string]int64{"stock": -a})},
					func(bool) { done++ })
			})
		}
		if !w.Net.RunUntil(func() bool { return done == 60 }, 5*time.Minute) {
			t.Fatalf("seed %d: only %d/60 settled", seed, done)
		}
		w.Net.RunFor(20 * time.Second) // drain visibility

		final := func(key record.Key) (record.Value, record.Version, bool) {
			return w.StoreOf(key, 0)
		}
		if errs := h.Validate(initial, final, []record.Constraint{record.MinBound("stock", 0)}); len(errs) != 0 {
			for _, e := range errs {
				t.Error(e)
			}
			t.Fatalf("seed %d: history validation failed", seed)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Chaos variant: 2% message drops. Anti-entropy repairs replicas, so
// the final state still validates against the recorded history.
func TestMDCCHistoryValidatesUnderDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short")
	}
	w := bench.NewWorld(bench.Options{
		Protocol:     bench.ProtoMDCC,
		NodesPerDC:   1,
		Clients:      5,
		ClientDC:     -1,
		Seed:         9,
		Constraints:  []record.Constraint{record.MinBound("stock", 0)},
		DropProb:     0.02,
		SyncInterval: time.Second,
	})
	const items = 6
	initial := make(map[record.Key]record.Value, items)
	entries := make([]kv.Entry, 0, items)
	for i := 0; i < items; i++ {
		k := record.Key(fmt.Sprintf("d/%02d", i))
		v := record.Value{Attrs: map[string]int64{"stock": 40}}
		initial[k] = v
		entries = append(entries, kv.Entry{Key: k, Value: v, Version: 1})
	}
	w.Preload(entries)

	h := New()
	clients := make([]mtx.Client, len(w.Clients))
	for i := range w.Clients {
		clients[i] = h.Client(i, w.Clients[i])
	}
	rng := rand.New(rand.NewSource(9))
	done := 0
	const txns = 40
	for i := 0; i < txns; i++ {
		ci := rng.Intn(len(clients))
		k := record.Key(fmt.Sprintf("d/%02d", rng.Intn(items)))
		at := time.Duration(rng.Intn(10000)) * time.Millisecond
		c, key := clients[ci], k
		w.Net.At(at, func() {
			c.Commit([]record.Update{record.Commutative(key, map[string]int64{"stock": -1})},
				func(bool) { done++ })
		})
	}
	if !w.Net.RunUntil(func() bool { return done == txns }, 10*time.Minute) {
		t.Fatalf("only %d/%d settled under drops", done, txns)
	}
	w.Net.RunFor(60 * time.Second) // anti-entropy repair window

	// Validate against every replica: with repair they must all agree
	// with the history.
	for dc := 0; dc < 5; dc++ {
		dc := dc
		final := func(key record.Key) (record.Value, record.Version, bool) {
			return w.StoreOf(key, dc)
		}
		if errs := h.Validate(initial, final, []record.Constraint{record.MinBound("stock", 0)}); len(errs) != 0 {
			for _, e := range errs {
				t.Errorf("dc%d: %v", dc, e)
			}
			t.Fatalf("dc%d failed validation under drops", dc)
		}
	}
}

// Mixed workload: physical read-modify-writes, commutative deltas and
// serializable read checks interleaved on overlapping keys, across
// several seeds — the broadest machine-checked validation in the
// suite.
func TestMDCCMixedWorkloadValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short")
	}
	for seed := int64(20); seed < 24; seed++ {
		w := bench.NewWorld(bench.Options{
			Protocol:    bench.ProtoMDCC,
			NodesPerDC:  1,
			Clients:     5,
			ClientDC:    -1,
			Seed:        seed,
			Constraints: []record.Constraint{record.MinBound("stock", 0)},
		})
		const items = 10
		initial := make(map[record.Key]record.Value, items)
		entries := make([]kv.Entry, 0, items)
		for i := 0; i < items; i++ {
			k := record.Key(fmt.Sprintf("mx/%02d", i))
			v := record.Value{Attrs: map[string]int64{"stock": 50, "price": 100}}
			initial[k] = v
			entries = append(entries, kv.Entry{Key: k, Value: v, Version: 1})
		}
		w.Preload(entries)

		h := New()
		clients := make([]mtx.Client, len(w.Clients))
		for i := range w.Clients {
			clients[i] = h.Client(i, w.Clients[i])
		}
		rng := rand.New(rand.NewSource(seed))
		done := 0
		const txns = 50
		for i := 0; i < txns; i++ {
			ci := rng.Intn(len(clients))
			kind := rng.Intn(3)
			k := record.Key(fmt.Sprintf("mx/%02d", rng.Intn(items)))
			at := time.Duration(rng.Intn(12000)) * time.Millisecond
			c, key := clients[ci], k
			switch kind {
			case 0: // commutative decrement
				w.Net.At(at, func() {
					c.Commit([]record.Update{record.Commutative(key, map[string]int64{"stock": -1})},
						func(bool) { done++ })
				})
			case 1: // read-modify-write of the price
				w.Net.At(at, func() {
					c.Read(key, func(v record.Value, ver record.Version, ok bool) {
						if !ok {
							done++
							return
						}
						c.Commit([]record.Update{record.Physical(key, ver, v.WithAttr("price", v.Attr("price")+1))},
							func(bool) { done++ })
					})
				})
			default: // guarded write on another key (read check)
				k2 := record.Key(fmt.Sprintf("mx/%02d", rng.Intn(items)))
				w.Net.At(at, func() {
					c.Read(k2, func(_ record.Value, gver record.Version, gok bool) {
						if !gok {
							done++
							return
						}
						c.Read(key, func(v record.Value, ver record.Version, ok bool) {
							if !ok || key == k2 {
								done++
								return
							}
							c.Commit([]record.Update{
								record.ReadCheck(k2, gver),
								record.Physical(key, ver, v.WithAttr("price", v.Attr("price")+10)),
							}, func(bool) { done++ })
						})
					})
				})
			}
		}
		if !w.Net.RunUntil(func() bool { return done == txns }, 10*time.Minute) {
			t.Fatalf("seed %d: only %d/%d settled", seed, done, txns)
		}
		w.Net.RunFor(20 * time.Second)

		final := func(key record.Key) (record.Value, record.Version, bool) {
			return w.StoreOf(key, 0)
		}
		if errs := h.Validate(initial, final, []record.Constraint{record.MinBound("stock", 0)}); len(errs) != 0 {
			for _, e := range errs {
				t.Error(e)
			}
			t.Fatalf("seed %d: mixed-workload validation failed", seed)
		}
	}
}

func TestKeysMentioned(t *testing.T) {
	known := []record.Key{"stock/1", "stock/12", "item/a", ""}
	cases := []struct {
		msg  string
		want []record.Key
	}{
		{"check: key stock/12 lost 3 units", []record.Key{"stock/12", "stock/1"}},
		{"check: key stock/1 version regressed", []record.Key{"stock/1"}},
		{"delta conservation broke on item/a and stock/1", []record.Key{"stock/1", "item/a"}},
		{"no keys here", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := KeysMentioned(c.msg, known)
		if len(got) != len(c.want) {
			t.Errorf("KeysMentioned(%q) = %v, want %v", c.msg, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("KeysMentioned(%q)[%d] = %q, want %q", c.msg, i, got[i], c.want[i])
			}
		}
	}
}
