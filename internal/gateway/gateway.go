// Package gateway implements a data-center-local transaction gateway
// tier for MDCC. The paper places a coordinator library in every
// application server; at "millions of users" scale that means a
// per-session coordinator and per-transaction messages melting the
// acceptors. A Gateway instead:
//
//   - pools a bounded set of core.Coordinators and multiplexes all
//     attached client sessions across them (sessions are stateless
//     with respect to the protocol, so any pooled coordinator can
//     carry any transaction);
//   - coalesces outbound protocol messages bound for the same
//     acceptor within a small time/size window into one
//     transport.Batch envelope (cross-transaction batching — the
//     §7 optimization generalized beyond one transaction);
//   - merges *commutative* updates to the same hot key from
//     concurrent transactions into one merged option per coalescing
//     window, so a stock-decrement stampede costs O(windows) Paxos
//     work instead of O(transactions). Each client delta is still
//     individually accounted: admission into a window is checked
//     delta-by-delta against the gateway's view of the quorum
//     demarcation limits, the merged update carries the number of
//     client updates it represents (record.Update.Merged) so version
//     accounting stays exact, and a rejected merge is split and
//     re-run per transaction so over-aggregation can never abort a
//     transaction that would have committed alone;
//   - applies admission control: a bounded in-flight window plus a
//     bounded FIFO backlog, beyond which transactions fail fast with
//     ErrOverloaded instead of stacking unbounded queues onto the
//     acceptors.
//
// Correctness envelope: coalescing is an optimization only. Merged
// options travel the unmodified MDCC commit path (fast ballots,
// demarcation, recovery), acceptors remain the arbiter of every
// constraint, and the gateway's demarcation accounting merely decides
// how much to merge. Atomicity is preserved because only
// single-update commutative transactions are merged; multi-update
// transactions pass through untouched.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/core"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// ErrOverloaded is reported when admission control sheds a
// transaction: the in-flight window and the backlog are both full.
var ErrOverloaded = errors.New("gateway: overloaded, transaction shed")

// ErrClosed is reported for transactions submitted to (or queued in)
// a gateway that has shut down.
var ErrClosed = errors.New("gateway: closed")

// Tuning shapes one gateway. The zero value means defaults.
type Tuning struct {
	// Pool is the number of pooled coordinators (default 4).
	Pool int
	// BatchWindow is how long an outbound message may wait for
	// same-destination company; 0 disables cross-transaction batching.
	// Default 2ms.
	BatchWindow time.Duration
	// BatchMax caps messages per batch envelope (default 64).
	BatchMax int
	// CoalesceWindow is how long a hot-key commutative update may wait
	// to be merged with others; 0 disables coalescing. Default 5ms.
	CoalesceWindow time.Duration
	// CoalesceMax caps client updates merged into one option
	// (default 64).
	CoalesceMax int
	// MaxInflight bounds concurrently executing transactions
	// (default 4096).
	MaxInflight int
	// MaxQueue bounds the backlog beyond MaxInflight; overflow is shed
	// with ErrOverloaded (default 16384).
	MaxQueue int
}

func (t Tuning) withDefaults() Tuning {
	if t.Pool <= 0 {
		t.Pool = 4
	}
	if t.BatchWindow == 0 {
		t.BatchWindow = 2 * time.Millisecond
	}
	if t.BatchMax <= 0 {
		t.BatchMax = 64
	}
	if t.CoalesceWindow == 0 {
		t.CoalesceWindow = 5 * time.Millisecond
	}
	if t.CoalesceMax <= 0 {
		t.CoalesceMax = 64
	}
	if t.MaxInflight <= 0 {
		t.MaxInflight = 4096
	}
	if t.MaxQueue <= 0 {
		t.MaxQueue = 16384
	}
	return t
}

// estTTL bounds how long a cached hot-key base value steers window
// admission before it is re-read (other gateways move the value too).
const estTTL = time.Second

// GatewayID names the gateway node of a data center.
func GatewayID(dc topology.DC) transport.NodeID {
	return transport.NodeID("gw/" + dc.String())
}

func coordID(dc topology.DC, i int) transport.NodeID {
	return transport.NodeID(fmt.Sprintf("gw/%s/c%d", dc, i))
}

// NodeIDs lists every transport node a gateway for dc will register
// (the gateway itself plus its pooled coordinators) so deployments
// can place them in latency maps before the gateway exists.
func NodeIDs(dc topology.DC, t Tuning) []transport.NodeID {
	t = t.withDefaults()
	out := []transport.NodeID{GatewayID(dc)}
	for i := 0; i < t.Pool; i++ {
		out = append(out, coordID(dc, i))
	}
	return out
}

// MaxRoutedPool is the largest coordinator pool whose node IDs peer
// servers pre-install routes for (RouteIDs). Pools are bounded by
// design — the tier's whole point is a small coordinator set — so a
// static cap keeps cross-server routing coordination-free.
const MaxRoutedPool = 64

// RouteIDs lists every transport id a *peer* process must be able to
// route back to a gateway possibly hosted in dc: acceptor votes,
// leader decisions and read replies all flow directly to the pooled
// coordinators, which live on the gateway DC's server. Pool sizes are
// a local tuning choice, so peers route the maximum.
func RouteIDs(dc topology.DC) []transport.NodeID {
	return NodeIDs(dc, Tuning{Pool: MaxRoutedPool})
}

// Metrics is a gateway's operational snapshot.
type Metrics struct {
	// Commits / Aborts count settled client transactions (aborts
	// include admission sheds).
	Commits int64 `json:"commits"`
	Aborts  int64 `json:"aborts"`

	// Submitted counts client transactions entering the gateway;
	// Passthrough those dispatched unmodified; Coalesced the client
	// updates that joined a hot-key merge window; CoalesceBypass the
	// coalescible updates sent individually because the gateway's
	// demarcation view had no headroom for a merge.
	Submitted      int64 `json:"submitted"`
	Passthrough    int64 `json:"passthrough"`
	Coalesced      int64 `json:"coalesced"`
	CoalesceBypass int64 `json:"coalesceBypass"`
	// MergedOptions counts merged proposals issued (windows flushed
	// with >= 2 waiters), MergedUpdates the client updates inside
	// them, MergeSplits merged proposals that were rejected and re-run
	// per transaction.
	MergedOptions int64 `json:"mergedOptions"`
	MergedUpdates int64 `json:"mergedUpdates"`
	MergeSplits   int64 `json:"mergeSplits"`
	// CoalesceRatio is MergedUpdates / Submitted.
	CoalesceRatio float64 `json:"coalesceRatio"`

	// Admission control.
	AdmissionRejects int64 `json:"admissionRejects"`
	Inflight         int64 `json:"inflight"`
	QueueDepth       int64 `json:"queueDepth"`
	QueuePeak        int64 `json:"queuePeak"`

	// Cross-transaction batching (outbound, from the pooled
	// coordinators). BatchFanIn is BatchedMsgs / BatchEnvelopes.
	BatchEnvelopes int64   `json:"batchEnvelopes"`
	BatchedMsgs    int64   `json:"batchedMsgs"`
	BatchSingles   int64   `json:"batchSingles"`
	BatchFanIn     float64 `json:"batchFanIn"`
}

// Add accumulates another gateway's counters into m (QueuePeak takes
// the max, gauges sum); call Finalize after the last Add to recompute
// the derived ratios.
func (m *Metrics) Add(o Metrics) {
	m.Commits += o.Commits
	m.Aborts += o.Aborts
	m.Submitted += o.Submitted
	m.Passthrough += o.Passthrough
	m.Coalesced += o.Coalesced
	m.CoalesceBypass += o.CoalesceBypass
	m.MergedOptions += o.MergedOptions
	m.MergedUpdates += o.MergedUpdates
	m.MergeSplits += o.MergeSplits
	m.AdmissionRejects += o.AdmissionRejects
	m.Inflight += o.Inflight
	m.QueueDepth += o.QueueDepth
	if o.QueuePeak > m.QueuePeak {
		m.QueuePeak = o.QueuePeak
	}
	m.BatchEnvelopes += o.BatchEnvelopes
	m.BatchedMsgs += o.BatchedMsgs
	m.BatchSingles += o.BatchSingles
}

// Finalize recomputes the derived ratios from the summed counters.
func (m *Metrics) Finalize() {
	m.CoalesceRatio = 0
	if m.Submitted > 0 {
		m.CoalesceRatio = float64(m.MergedUpdates) / float64(m.Submitted)
	}
	m.BatchFanIn = 0
	if m.BatchEnvelopes > 0 {
		m.BatchFanIn = float64(m.BatchedMsgs) / float64(m.BatchEnvelopes)
	}
}

// waiter is one client transaction parked in a merge window.
type waiter struct {
	up   record.Update
	done func(committed bool, err error)
}

// mergeWindow accumulates commutative deltas for one hot key.
type mergeWindow struct {
	sum     map[string]int64
	waiters []waiter
	timer   clock.Timer
}

// keyState is the gateway's per-hot-key accounting: the current merge
// window plus the demarcation view (last read base value and the
// deltas admitted but not yet resolved).
type keyState struct {
	win        *mergeWindow
	est        map[string]int64 // last observed attr values
	estValid   bool
	fetched    time.Time
	refreshing bool
	out        map[string]int64 // admitted, unresolved deltas
}

type queuedTx struct {
	updates []record.Update
	done    func(bool, error)
}

// Gateway is one data center's transaction gateway. Entry points
// (Commit, Read, ReadQuorum, Metrics) are safe to call from any
// goroutine; completion callbacks fire on pooled-coordinator handler
// goroutines.
type Gateway struct {
	id   transport.NodeID
	dc   topology.DC
	net  transport.Network // the raw network (RPC, timers, reads)
	bnet *batcher          // what the pooled coordinators send through
	cl   *topology.Cluster
	cfg  core.Config
	tun  Tuning
	q    paxos.Quorum

	mu       sync.Mutex
	coords   []*core.Coordinator
	rr       int
	inflight int
	queue    []queuedTx
	keys     map[record.Key]*keyState
	m        Metrics
	reqSeq   uint64
	closed   bool
}

// New builds a gateway for dc on net and registers its node (and its
// pooled coordinators') handlers. coreCfg is the same protocol config
// the deployment's storage nodes run.
func New(dc topology.DC, net transport.Network, cl *topology.Cluster, coreCfg core.Config, tun Tuning) *Gateway {
	tun = tun.withDefaults()
	g := &Gateway{
		id:   GatewayID(dc),
		dc:   dc,
		net:  net,
		cl:   cl,
		cfg:  coreCfg,
		tun:  tun,
		q:    paxos.NewQuorum(cl.ReplicationFactor()),
		keys: make(map[record.Key]*keyState),
	}
	g.bnet = newBatcher(net, g.id, tun.BatchWindow, tun.BatchMax)
	for i := 0; i < tun.Pool; i++ {
		g.coords = append(g.coords, core.NewCoordinator(coordID(dc, i), dc, g.bnet, cl, coreCfg))
	}
	net.Register(g.id, g.handle)
	return g
}

// ID returns the gateway's transport node identity.
func (g *Gateway) ID() transport.NodeID { return g.id }

// DC returns the gateway's data center.
func (g *Gateway) DC() topology.DC { return g.dc }

// nextCoordLocked round-robins the pool.
func (g *Gateway) nextCoordLocked() *core.Coordinator {
	co := g.coords[g.rr%len(g.coords)]
	g.rr++
	return co
}

// Read serves a nearest-replica read through a pooled coordinator.
// cb may fire on a coordinator goroutine.
func (g *Gateway) Read(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	g.mu.Lock()
	co := g.nextCoordLocked()
	g.mu.Unlock()
	g.net.After(co.ID(), 0, func() { co.Read(key, cb) })
}

// ReadQuorum serves an up-to-date quorum read through a pooled
// coordinator.
func (g *Gateway) ReadQuorum(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	g.mu.Lock()
	co := g.nextCoordLocked()
	g.mu.Unlock()
	g.net.After(co.ID(), 0, func() { co.ReadQuorum(key, cb) })
}

// Commit submits a client transaction. done fires exactly once:
// committed reports the protocol outcome; err is non-nil only for
// gateway-level failures (ErrOverloaded, ErrClosed), never for
// protocol aborts.
func (g *Gateway) Commit(updates []record.Update, done func(committed bool, err error)) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		done(false, ErrClosed)
		return
	}
	g.m.Submitted++
	if g.inflight >= g.tun.MaxInflight {
		if len(g.queue) >= g.tun.MaxQueue {
			g.m.AdmissionRejects++
			g.m.Aborts++
			g.mu.Unlock()
			done(false, ErrOverloaded)
			return
		}
		g.queue = append(g.queue, queuedTx{updates: updates, done: done})
		if d := int64(len(g.queue)); d > g.m.QueuePeak {
			g.m.QueuePeak = d
		}
		g.mu.Unlock()
		return
	}
	g.startLocked(updates, done)
	g.mu.Unlock()
}

// startLocked admits one transaction into the in-flight window and
// routes it (coalescing or passthrough).
func (g *Gateway) startLocked(updates []record.Update, done func(bool, error)) {
	g.inflight++
	if g.coalescible(updates) {
		g.coalesceLocked(updates[0], done)
		return
	}
	g.m.Passthrough++
	g.dispatchLocked(updates, func(ok bool) {
		g.settle(1, ok)
		done(ok, nil)
	})
}

// coalescible: only single-update commutative transactions merge —
// anything else would break atomicity or read-set semantics.
func (g *Gateway) coalescible(updates []record.Update) bool {
	return g.tun.CoalesceWindow > 0 &&
		len(updates) == 1 &&
		updates[0].Kind == record.KindCommutative &&
		updates[0].Merged <= 1
}

// dispatchLocked hands a write-set to a pooled coordinator in its
// handler context; done(ok) fires on that coordinator's goroutine
// without the gateway lock held.
func (g *Gateway) dispatchLocked(updates []record.Update, done func(ok bool)) {
	co := g.nextCoordLocked()
	g.net.After(co.ID(), 0, func() {
		co.Commit(updates, func(r core.CommitResult) { done(r.Committed) })
	})
}

// settle returns n in-flight slots, records outcomes, and drains the
// backlog into freed slots.
func (g *Gateway) settle(n int, committed bool) {
	g.mu.Lock()
	g.inflight -= n
	if committed {
		g.m.Commits += int64(n)
	} else {
		g.m.Aborts += int64(n)
	}
	for g.inflight < g.tun.MaxInflight && len(g.queue) > 0 {
		next := g.queue[0]
		g.queue = g.queue[1:]
		g.startLocked(next.updates, next.done)
	}
	g.m.QueueDepth = int64(len(g.queue))
	g.mu.Unlock()
}

// ---- hot-key delta coalescing ----------------------------------------

func (g *Gateway) ks(key record.Key) *keyState {
	s, ok := g.keys[key]
	if !ok {
		s = &keyState{out: make(map[string]int64)}
		g.keys[key] = s
	}
	return s
}

func (g *Gateway) coalesceLocked(up record.Update, done func(bool, error)) {
	key := up.Key
	ks := g.ks(key)
	if ks.win != nil && (len(ks.win.waiters) >= g.tun.CoalesceMax || !g.fitsLocked(ks, up)) {
		g.flushLocked(key, ks)
	}
	if ks.win == nil {
		if !g.fitsLocked(ks, up) {
			// Even alone this delta exceeds the gateway's demarcation
			// view (usually: a burst of unresolved windows already holds
			// all known headroom). Ship it individually — the acceptors,
			// not the estimate, decide. Keep refreshing the estimate on
			// this path too: a restocked key must regain coalescing once
			// the TTL-aged estimate catches up with reality.
			g.maybeRefreshLocked(key, ks)
			g.m.CoalesceBypass++
			g.m.Passthrough++
			g.dispatchLocked([]record.Update{up}, func(ok bool) {
				g.settle(1, ok)
				done(ok, nil)
			})
			return
		}
		g.maybeRefreshLocked(key, ks)
		win := &mergeWindow{sum: make(map[string]int64)}
		ks.win = win
		win.timer = g.net.After(g.id, g.tun.CoalesceWindow, func() {
			g.mu.Lock()
			if cur, ok := g.keys[key]; ok && cur.win == win {
				g.flushLocked(key, cur)
			}
			g.mu.Unlock()
		})
	}
	g.m.Coalesced++
	for attr, d := range up.Deltas {
		ks.win.sum[attr] += d
		ks.out[attr] += d
	}
	ks.win.waiters = append(ks.win.waiters, waiter{up: up, done: done})
}

// fitsLocked is the individual demarcation accounting: would
// admitting this one delta, on top of every delta already admitted
// and unresolved, push the gateway's view of the value past the
// quorum demarcation limit the acceptors will enforce? With no valid
// estimate the answer is yes-admit — the acceptors arbitrate and the
// estimate refresh is already in flight.
func (g *Gateway) fitsLocked(ks *keyState, up record.Update) bool {
	if !ks.estValid {
		return true
	}
	for attr, d := range up.Deltas {
		con, ok := g.constraintFor(attr)
		if !ok {
			continue
		}
		base := ks.est[attr]
		projected := base + ks.out[attr] + d
		if con.Min != nil && d < 0 && projected < demarcationLow(*con.Min, base, g.q) {
			return false
		}
		if con.Max != nil && d > 0 && projected > demarcationHigh(*con.Max, base, g.q) {
			return false
		}
	}
	return true
}

func (g *Gateway) constraintFor(attr string) (record.Constraint, bool) {
	for _, con := range g.cfg.Constraints {
		if con.Attr == attr {
			return con, true
		}
	}
	return record.Constraint{}, false
}

// demarcationLow / demarcationHigh mirror the acceptor's fast-ballot
// quorum demarcation limits (L = min + ceil(head·(N−Q_F)/N), §3.4.2):
// the gateway admits deltas against the same bound the acceptors will
// apply, so window admission and acceptor judgment agree whenever the
// estimate is fresh.
func demarcationLow(min, base int64, q paxos.Quorum) int64 {
	head := base - min
	if head <= 0 {
		return min
	}
	slack := int64(q.N - q.Fast)
	return min + ceilDiv(head*slack, int64(q.N))
}

func demarcationHigh(max, base int64, q paxos.Quorum) int64 {
	head := max - base
	if head <= 0 {
		return max
	}
	slack := int64(q.N - q.Fast)
	return max - ceilDiv(head*slack, int64(q.N))
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// maybeRefreshLocked keeps the demarcation estimate fresh: one read
// per key at a time, re-issued when the estimate ages past estTTL.
func (g *Gateway) maybeRefreshLocked(key record.Key, ks *keyState) {
	if ks.refreshing {
		return
	}
	if ks.estValid && g.net.Now().Sub(ks.fetched) < estTTL {
		return
	}
	ks.refreshing = true
	co := g.nextCoordLocked()
	g.net.After(co.ID(), 0, func() {
		co.Read(key, func(val record.Value, _ record.Version, exists bool) {
			g.mu.Lock()
			cur := g.ks(key)
			cur.refreshing = false
			cur.fetched = g.net.Now()
			cur.estValid = true
			cur.est = make(map[string]int64, len(val.Attrs))
			if exists {
				for a, x := range val.Attrs {
					cur.est[a] = x
				}
			}
			g.mu.Unlock()
		})
	})
}

// flushLocked closes the key's window and dispatches it: one client
// update passes through unchanged; several become a single merged
// option. A rejected merge is split and re-run per transaction, so
// merging can only ever batch work, never manufacture aborts.
func (g *Gateway) flushLocked(key record.Key, ks *keyState) {
	win := ks.win
	if win == nil {
		return
	}
	ks.win = nil
	if win.timer != nil {
		win.timer.Stop()
	}
	if len(win.waiters) == 1 {
		w := win.waiters[0]
		g.dispatchLocked([]record.Update{w.up}, func(ok bool) {
			g.resolveDeltas(key, w.up.Deltas, ok)
			g.settle(1, ok)
			w.done(ok, nil)
		})
		return
	}
	waiters := win.waiters
	sum := win.sum
	g.m.MergedOptions++
	g.m.MergedUpdates += int64(len(waiters))
	merged := record.MergedCommutative(key, sum, len(waiters))
	g.dispatchLocked([]record.Update{merged}, func(ok bool) {
		g.resolveDeltas(key, sum, ok)
		if ok {
			g.settle(len(waiters), true)
			for _, w := range waiters {
				w.done(true, nil)
			}
			return
		}
		// Merged option rejected (demarcation exhausted, or an
		// outstanding physical write blocked the key): split and re-run
		// each client update alone so transactions that fit on their
		// own still commit. Their in-flight slots are still held.
		g.mu.Lock()
		g.m.MergeSplits++
		cur := g.ks(key)
		cur.estValid = false // the view that admitted this merge was stale
		for _, w := range waiters {
			w := w
			for attr, d := range w.up.Deltas {
				cur.out[attr] += d
			}
			g.dispatchLocked([]record.Update{w.up}, func(ok bool) {
				g.resolveDeltas(key, w.up.Deltas, ok)
				g.settle(1, ok)
				w.done(ok, nil)
			})
		}
		g.mu.Unlock()
	})
}

// resolveDeltas retires admitted deltas from the outstanding account
// and folds committed ones into the estimate.
func (g *Gateway) resolveDeltas(key record.Key, deltas map[string]int64, committed bool) {
	g.mu.Lock()
	ks := g.ks(key)
	for attr, d := range deltas {
		ks.out[attr] -= d
		if committed && ks.estValid {
			ks.est[attr] += d
		}
	}
	g.mu.Unlock()
}

// CoordMetrics sums the pooled coordinators' protocol counters. The
// counters live on the coordinator goroutines; call this from a
// quiesced deployment (after a run, or from the simulator's thread).
func (g *Gateway) CoordMetrics() core.CoordMetrics {
	var total core.CoordMetrics
	for _, c := range g.coords {
		total.Add(c.Metrics())
	}
	return total
}

// Metrics snapshots the gateway's counters.
func (g *Gateway) Metrics() Metrics {
	g.mu.Lock()
	m := g.m
	m.Inflight = int64(g.inflight)
	m.QueueDepth = int64(len(g.queue))
	g.mu.Unlock()
	m.BatchEnvelopes = g.bnet.envelopes.Load()
	m.BatchedMsgs = g.bnet.batched.Load()
	m.BatchSingles = g.bnet.singles.Load()
	m.Finalize()
	return m
}

// Close rejects the backlog and every parked window with ErrClosed
// and flushes the batcher. Pooled coordinators keep draining what was
// already dispatched (their lifecycle belongs to the network).
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	queued := g.queue
	g.queue = nil
	var parked []waiter
	for key, ks := range g.keys {
		if ks.win == nil {
			continue
		}
		if ks.win.timer != nil {
			ks.win.timer.Stop()
		}
		parked = append(parked, ks.win.waiters...)
		ks.win = nil
		_ = key
	}
	n := len(queued) // queued never held inflight slots
	g.inflight -= len(parked)
	g.m.Aborts += int64(n + len(parked))
	g.mu.Unlock()
	for _, q := range queued {
		q.done(false, ErrClosed)
	}
	for _, w := range parked {
		w.done(false, ErrClosed)
	}
	g.bnet.flushAll()
}
