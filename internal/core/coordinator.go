package core

import (
	"fmt"
	"sort"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/paxos"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
	"mdcc/internal/transport"
)

// hintTTL bounds how long a coordinator keeps routing proposals for a
// record through its leader after learning the record is in a classic
// window; afterwards it probes the fast path again (complements the
// leader-side γ policy).
const hintTTL = 2 * time.Second

// CommitResult reports a transaction outcome to the application. Err
// types the cause of a rejection when the protocol knows one (today:
// ErrMixedUpdateKinds, the kind-disjoint rule); it is nil for plain
// conflicts/constraint aborts and for commits.
type CommitResult struct {
	Tx        TxID
	Committed bool
	Err       error
	// Recovered reports that at least one option took a recovery hop
	// (timeout/collision re-propose); Rerouted that at least one was
	// re-dispatched after a wrong-group refusal. The gateway's flight
	// recorder folds both into its completion record.
	Recovered bool
	Rerouted  bool
}

// Coordinator is the stateless DB-library side of MDCC: it executes
// reads against the nearest replica, proposes options for the
// write-set at commit, learns their decisions (acting as the Paxos
// learner on the fast path), derives the transaction outcome, and
// broadcasts visibility. One Coordinator serves one app-server node;
// all methods must be called from that node's handler context (or
// before the network starts).
type Coordinator struct {
	id  transport.NodeID
	dc  topology.DC
	net transport.Network
	cl  *topology.Cluster
	cfg Config
	q   paxos.Quorum
	tr  *trace.Ring // flight-recorder ring, nil when tracing is off

	gen    uint64 // incarnation generation (see NewCoordinatorGen)
	era    uint64 // lane era (see rotateLane)
	txSeq  uint64
	reqSeq uint64
	reads  map[uint64]*readCtx
	txs    map[TxID]*txCtx
	hints  map[record.Key]leaderHint
	// keySeqs mints per-key lineage identities: the count of options
	// this lane (coordinator incarnation + era) has proposed on each
	// key. Together with the lane (this coordinator's TxID prefix) it
	// names every option in LineageSummaries, which is what makes
	// per-record summaries compact — a lane's sequences on one key are
	// contiguous by construction. A counter word can never be evicted
	// individually (reuse would alias identities, a gap would fragment
	// the lane's interval set forever), so the bound works by lane
	// rotation: once the map holds Config.KeySeqWords words the whole
	// lane retires and a fresh era starts minting from scratch (see
	// rotateLane).
	keySeqs map[record.Key]uint64

	// escrowObs, when set, receives every escrow snapshot piggybacked
	// on votes and read replies (the gateway tier's freshness channel).
	escrowObs func(from transport.NodeID, key record.Key, snap EscrowSnap)

	// Counters (see CoordMetrics).
	nCommits, nAborts       int64
	nFastLearns             int64
	nLeaderLearns           int64
	nRecoveries             int64
	nCollisions             int64
	nReadRetries, nReadFail int64
	nWrongGroupReroutes     int64
}

type leaderHint struct {
	leader transport.NodeID
	expiry time.Time
}

type readCtx struct {
	key     record.Key
	cb      func(record.Value, record.Version, bool)
	attempt int
	timer   clock.Timer

	// Quorum-read state (§4.2 up-to-date reads): nil for local reads.
	quorum  int
	replies map[transport.NodeID]MsgReadReply
	best    *MsgReadReply
}

type txCtx struct {
	id        TxID
	opts      map[OptionID]*optCtx
	remaining int
	done      func(CommitResult)
	rejErr    error // typed rejection cause, if any option reported one
	startAt   int64 // propose time (UnixNano), for the flight recorder
}

type optCtx struct {
	opt      Option
	votes    map[transport.NodeID]Decision
	accepts  int
	rejects  int
	reason   RejectReason // typed cause from reject votes/learns
	learned  Decision
	timer    clock.Timer
	attempts int
	rerouted bool // re-dispatched once after a wrong-group refusal
}

// NewCoordinator builds a coordinator on node id (located in dc) and
// registers its handler.
func NewCoordinator(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config) *Coordinator {
	return NewCoordinatorGen(id, dc, net, cl, cfg, 0)
}

// NewCoordinatorGen builds a coordinator whose transaction and read
// identifiers embed an incarnation generation. A restarted process
// that re-registers the same node id MUST pass a fresh generation:
// otherwise it re-mints its dead predecessor's transaction ids from
// zero, and stale votes or read replies still in flight would be
// attributed to the new incarnation's unrelated transactions (a false
// fast-quorum learn — an acked commit whose update never executes).
func NewCoordinatorGen(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config, gen uint64) *Coordinator {
	c := &Coordinator{
		id:      id,
		dc:      dc,
		net:     net,
		cl:      cl,
		cfg:     cfg,
		q:       paxos.NewQuorum(cl.ReplicationFactor()),
		tr:      cfg.Tracer.Ring(string(id), int(dc)),
		gen:     gen,
		reads:   make(map[uint64]*readCtx),
		txs:     make(map[TxID]*txCtx),
		hints:   make(map[record.Key]leaderHint),
		keySeqs: make(map[record.Key]uint64),
	}
	// Read request ids live in a per-generation namespace.
	c.reqSeq = gen << 32
	net.Register(id, c.handle)
	return c
}

// txID mints the next transaction id (node-scoped sequence, plus the
// generation for restarted incarnations and the era for rotated
// lanes). Everything before the '#' is the lineage lane.
func (c *Coordinator) txID() TxID {
	c.txSeq++
	id := string(c.id)
	if c.gen != 0 {
		id = fmt.Sprintf("%s~g%d", id, c.gen)
	}
	if c.era != 0 {
		id = fmt.Sprintf("%s~e%d", id, c.era)
	}
	return TxID(fmt.Sprintf("%s#%d", id, c.txSeq))
}

// keySeqWords resolves the counter-map bound (see Config.KeySeqWords).
func (c *Coordinator) keySeqWords() int {
	if c.cfg.KeySeqWords > 0 {
		return c.cfg.KeySeqWords
	}
	return 4096
}

// rotateLane retires the current lineage lane when its counter map is
// full: the era bumps (changing the TxID prefix, i.e. the lane) and a
// fresh map starts minting per-key sequences from 1 again. The retired
// lane never mints again, so its counter words are dead the moment it
// retires and the whole map is dropped at once — coordinator lineage
// state is O(keys live in the current lane), not O(keys ever written).
// Acceptor-side summaries stay exact and compact: each retired lane's
// intervals are frozen (at quiescence a single [1..W] range per key),
// and the new lane cannot alias them because its TxID prefix differs.
func (c *Coordinator) rotateLane() {
	if len(c.keySeqs) < c.keySeqWords() {
		return
	}
	c.era++
	c.keySeqs = make(map[record.Key]uint64)
}

// ID returns the coordinator's node identity.
func (c *Coordinator) ID() transport.NodeID { return c.id }

// SetEscrowObserver installs a callback for the escrow snapshots
// acceptors piggyback on votes and read replies. Call before the
// network starts delivering to this coordinator; the callback fires
// on the coordinator's handler goroutine for every snapshot, including
// ones on late or duplicate votes (freshness is the point).
func (c *Coordinator) SetEscrowObserver(obs func(from transport.NodeID, key record.Key, snap EscrowSnap)) {
	c.escrowObs = obs
}

func (c *Coordinator) observeEscrow(from transport.NodeID, key record.Key, snap EscrowSnap) {
	if c.escrowObs != nil && snap.Valid {
		c.escrowObs(from, key, snap)
	}
}

func (c *Coordinator) handle(env transport.Envelope) {
	switch m := env.Msg.(type) {
	case transport.Batch:
		for _, item := range m.Items {
			c.cfg.Tracer.ObserveRecv(item.TraceClk)
			c.handle(item)
		}
	case MsgReadReply:
		c.onReadReply(env.From, m)
	case MsgVote:
		c.onVote(env.From, m)
	case MsgVoteBatch:
		for _, v := range m.Votes {
			c.onVote(env.From, v)
		}
	case MsgLearned:
		c.onLearned(m)
	}
}

// Read fetches committed state from the nearest replica (read
// committed, §4.1: uncommitted options are never visible). On
// timeout it retries the next data center; after a full rotation the
// callback reports absence.
func (c *Coordinator) Read(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	c.reqSeq++
	req := c.reqSeq
	rc := &readCtx{key: key, cb: cb}
	c.reads[req] = rc
	c.sendRead(req, rc)
}

func (c *Coordinator) sendRead(req uint64, rc *readCtx) {
	dc := topology.DC((int(c.dc) + rc.attempt) % topology.NumDCs)
	c.net.Send(c.id, c.cl.ReplicaIn(rc.key, dc), MsgRead{ReqID: req, Key: rc.key})
	rc.timer = c.net.After(c.id, c.cfg.ReadTimeout, func() {
		cur, ok := c.reads[req]
		if !ok || cur != rc {
			return
		}
		rc.attempt++
		if rc.attempt >= topology.NumDCs {
			delete(c.reads, req)
			c.nReadFail++
			rc.cb(record.Value{}, 0, false)
			return
		}
		c.nReadRetries++
		c.sendRead(req, rc)
	})
}

func (c *Coordinator) onReadReply(from transport.NodeID, m MsgReadReply) {
	c.observeEscrow(from, m.Key, m.Escrow)
	rc, ok := c.reads[m.ReqID]
	if !ok {
		return
	}
	if rc.quorum > 0 {
		if _, dup := rc.replies[from]; dup {
			return
		}
		rc.replies[from] = m
		if rc.best == nil || m.Version > rc.best.Version {
			cp := m
			rc.best = &cp
		}
		if len(rc.replies) < rc.quorum {
			return
		}
		delete(c.reads, m.ReqID)
		if rc.timer != nil {
			rc.timer.Stop()
		}
		rc.cb(rc.best.Value, rc.best.Version, rc.best.Exists)
		return
	}
	delete(c.reads, m.ReqID)
	if rc.timer != nil {
		rc.timer.Stop()
	}
	rc.cb(m.Value, m.Version, m.Exists)
}

// ReadQuorum performs an up-to-date read (§4.2): it contacts every
// replica, waits for a majority, and returns the freshest committed
// state among them. Any committed version is newer-or-equal to what a
// majority read can miss, because visibility reaches a majority
// before a later version can be chosen by a classic quorum — and a
// fast-quorum commit intersects every majority.
func (c *Coordinator) ReadQuorum(key record.Key, cb func(val record.Value, ver record.Version, exists bool)) {
	c.reqSeq++
	req := c.reqSeq
	rc := &readCtx{
		key: key, cb: cb,
		quorum:  c.q.Classic,
		replies: make(map[transport.NodeID]MsgReadReply, c.q.N),
	}
	c.reads[req] = rc
	for _, rep := range c.cl.Replicas(key) {
		c.net.Send(c.id, rep, MsgRead{ReqID: req, Key: key})
	}
	// One generous deadline: answer with the best seen, or absent.
	rc.timer = c.net.After(c.id, 4*c.cfg.ReadTimeout, func() {
		cur, ok := c.reads[req]
		if !ok || cur != rc {
			return
		}
		delete(c.reads, req)
		c.nReadFail++
		if rc.best != nil {
			rc.cb(rc.best.Value, rc.best.Version, rc.best.Exists)
			return
		}
		rc.cb(record.Value{}, 0, false)
	})
}

// Commit runs the MDCC commit protocol over a write-set (§3.2.1):
// propose an option per update, learn them all, commit iff every
// option is accepted, then make the outcome visible asynchronously.
// The transaction cannot be aborted unilaterally once proposed — the
// outcome is a deterministic function of the learned options.
func (c *Coordinator) Commit(updates []record.Update, done func(CommitResult)) {
	c.rotateLane()
	tx := c.txID()
	if len(updates) == 0 {
		c.nCommits++
		done(CommitResult{Tx: tx, Committed: true})
		return
	}
	writeSet := make([]record.Key, 0, len(updates))
	writeSeqs := make([]uint64, 0, len(updates))
	for _, up := range updates {
		writeSet = append(writeSet, up.Key)
		// Mint the option's lineage identity: the per-(coordinator
		// incarnation, key) proposal sequence (see LineageSummary).
		c.keySeqs[up.Key]++
		writeSeqs = append(writeSeqs, c.keySeqs[up.Key])
	}
	t := &txCtx{
		id:        tx,
		opts:      make(map[OptionID]*optCtx, len(updates)),
		remaining: len(updates),
		done:      done,
	}
	if c.tr != nil {
		t.startAt = c.net.Now().UnixNano()
	}
	c.txs[tx] = t
	// Fast-path proposals for the whole write-set are grouped per
	// destination node (§7's batching optimization) unless disabled.
	var fastByNode map[transport.NodeID][]Option
	for i, up := range updates {
		opt := Option{Tx: tx, Coord: c.id, Update: up, WriteSet: writeSet,
			KeySeq: writeSeqs[i], WriteSeqs: writeSeqs}
		oc := &optCtx{opt: opt, votes: make(map[transport.NodeID]Decision)}
		t.opts[opt.ID()] = oc
		if c.tr != nil {
			var fl uint8
			if dest, viaLeader := c.route(opt.Update.Key); !viaLeader {
				fl = trace.FlagFast
				_ = dest
				if !c.cfg.DisableBatching {
					fl |= trace.FlagBatched
				}
			}
			c.tr.Add(trace.Event{At: t.startAt, Tx: string(tx), Key: string(up.Key),
				Stage: trace.StagePropose, Flags: fl, Arg: int64(c.q.N)})
		}
		if dest, viaLeader := c.route(opt.Update.Key); viaLeader {
			c.net.Send(c.id, dest, MsgProposeLeader{Opt: opt})
		} else if c.cfg.DisableBatching {
			for _, rep := range c.cl.Replicas(opt.Update.Key) {
				c.net.Send(c.id, rep, MsgProposeFast{Opt: opt})
			}
		} else {
			if fastByNode == nil {
				fastByNode = make(map[transport.NodeID][]Option)
			}
			for _, rep := range c.cl.Replicas(opt.Update.Key) {
				fastByNode[rep] = append(fastByNode[rep], opt)
			}
		}
		c.armOptionTimer(t, oc)
	}
	// Deterministic send order for the simulator.
	for _, up := range updates {
		for _, rep := range c.cl.Replicas(up.Key) {
			if opts, ok := fastByNode[rep]; ok {
				delete(fastByNode, rep)
				c.net.Send(c.id, rep, MsgProposeBatch{Opts: opts})
			}
		}
	}
}

// route decides where a key's proposal goes: (leader, true) for the
// master path (Multi mode or a fresh classic-window hint), or
// (_, false) for the fast path.
func (c *Coordinator) route(key record.Key) (transport.NodeID, bool) {
	if c.cfg.Mode == ModeMulti {
		return c.leaderFor(key), true
	}
	if h, ok := c.hints[key]; ok && c.net.Now().Before(h.expiry) {
		return h.leader, true
	}
	return "", false
}

func (c *Coordinator) leaderFor(key record.Key) transport.NodeID {
	return c.cl.ReplicaIn(key, c.cfg.masterDC(key))
}

// armOptionTimer schedules recovery if the option is not learned in
// time. Repeated attempts rotate the leader DC so a failed master
// data center cannot stall the transaction.
func (c *Coordinator) armOptionTimer(t *txCtx, oc *optCtx) {
	delay := c.cfg.OptionTimeout
	if oc.attempts > 0 {
		delay = c.cfg.RecoveryRetry
	}
	oc.timer = c.net.After(c.id, delay, func() {
		cur, ok := c.txs[t.id]
		if !ok || cur != t || oc.learned != DecUnknown {
			return
		}
		c.startRecovery(t, oc)
	})
}

func (c *Coordinator) startRecovery(t *txCtx, oc *optCtx) {
	key := oc.opt.Update.Key
	masterDC := c.cfg.masterDC(key)
	dc := topology.DC((int(masterDC) + oc.attempts) % topology.NumDCs)
	oc.attempts++
	c.nRecoveries++
	if c.tr != nil {
		c.tr.Add(trace.Event{At: c.net.Now().UnixNano(), Tx: string(t.id), Key: string(key),
			Stage: trace.StageRecovery, Arg: int64(oc.attempts)})
	}
	c.net.Send(c.id, c.cl.ReplicaIn(key, dc), MsgStartRecovery{Key: key, Opt: oc.opt, HasOpt: true})
	c.armOptionTimer(t, oc)
}

// onVote tallies fast-path Phase2b votes. An option is learned
// accepted/rejected at a fast quorum of identical votes; if every
// replica has voted and neither decision can reach the fast quorum,
// that is a collision and the master must resolve it classically.
func (c *Coordinator) onVote(from transport.NodeID, m MsgVote) {
	// Escrow snapshots are folded in even when the vote itself is late
	// or duplicated — every vote is a freshness sample.
	c.observeEscrow(from, m.OptID.Key, m.Escrow)
	t, ok := c.txs[m.OptID.Tx]
	if !ok {
		return
	}
	oc, ok := t.opts[m.OptID]
	if !ok || oc.learned != DecUnknown {
		return
	}
	if m.WrongGroup {
		// A shard move re-homed the key: the node we routed to no
		// longer owns it. Drop the stale leader hint and re-dispatch
		// the option under the current ring — once; if the refusal
		// recurs the option timer's recovery path takes over.
		key := m.OptID.Key
		if c.tr != nil {
			c.tr.Add(trace.Event{At: c.net.Now().UnixNano(), Tx: string(t.id), Key: string(key),
				Stage: trace.StageWrongShard})
		}
		delete(c.hints, key)
		if !oc.rerouted {
			oc.rerouted = true
			c.nWrongGroupReroutes++
			if dest, viaLeader := c.route(key); viaLeader {
				c.net.Send(c.id, dest, MsgProposeLeader{Opt: oc.opt})
			} else {
				for _, rep := range c.cl.Replicas(key) {
					c.net.Send(c.id, rep, MsgProposeFast{Opt: oc.opt})
				}
			}
		}
		return
	}
	if m.Forwarded {
		// Record is in a classic window; remember its leader so the
		// next transactions skip the wasted fast round.
		c.hints[m.OptID.Key] = leaderHint{leader: m.Leader, expiry: c.net.Now().Add(hintTTL)}
		return
	}
	if _, dup := oc.votes[from]; dup {
		return
	}
	oc.votes[from] = m.Decision
	if c.tr != nil {
		// Per-DC vote round trip: propose time → this voter's reply.
		if vdc, ok := c.cl.NodeDC(from); ok {
			c.cfg.Tracer.ObservePhase(trace.PhaseVote, int(vdc),
				time.Duration(c.net.Now().UnixNano()-t.startAt))
		}
	}
	if m.Decision == DecAccept {
		oc.accepts++
	} else {
		oc.rejects++
		if oc.reason == ReasonNone {
			oc.reason = m.Reason
		}
	}
	switch {
	case c.q.FastLearned(oc.accepts):
		c.nFastLearns++
		c.learnEvent(t, oc, DecAccept, true)
		c.learn(t, oc, DecAccept)
	case c.q.FastLearned(oc.rejects):
		c.nFastLearns++
		// Algorithm 1 lines 24-26: a commutative option rejected in a
		// fast ballot signals the quorum demarcation limit was hit, so
		// the master must run a classic round to write a fresh base
		// value (and recalculate the limit). The transaction still
		// aborts; the recovery is for the record's sake.
		if oc.opt.Update.Kind == record.KindCommutative {
			key := oc.opt.Update.Key
			c.net.Send(c.id, c.leaderFor(key), MsgStartRecovery{Key: key})
		}
		c.learnEvent(t, oc, DecReject, true)
		c.learn(t, oc, DecReject)
	case len(oc.votes) == c.q.N:
		// Collision: no fast quorum is possible in this ballot.
		c.nCollisions++
		c.startRecovery(t, oc)
	}
}

// onLearned applies a leader's authoritative decision.
func (c *Coordinator) onLearned(m MsgLearned) {
	// Classic-path learns carry the leader replica's escrow snapshot —
	// the only freshness channel for records inside a γ window.
	c.observeEscrow("", m.OptID.Key, m.Escrow)
	t, ok := c.txs[m.OptID.Tx]
	if !ok {
		return
	}
	oc, ok := t.opts[m.OptID]
	if !ok || oc.learned != DecUnknown {
		return
	}
	if m.Decision == DecReject && oc.reason == ReasonNone {
		oc.reason = m.Reason
	}
	c.nLeaderLearns++
	c.learnEvent(t, oc, m.Decision, false)
	c.learn(t, oc, m.Decision)
}

// learnEvent records an option's learned decision in the flight
// recorder, labeled fast (quorum of identical votes) or classic
// (leader's authoritative MsgLearned).
func (c *Coordinator) learnEvent(t *txCtx, oc *optCtx, d Decision, fast bool) {
	if c.tr == nil {
		return
	}
	var fl uint8
	if fast {
		fl = trace.FlagFast
	}
	if d == DecAccept {
		fl |= trace.FlagAccept
	} else {
		fl |= trace.FlagReject
	}
	c.tr.Add(trace.Event{At: c.net.Now().UnixNano(), Tx: string(t.id),
		Key: string(oc.opt.Update.Key), Stage: trace.StageLearn, Flags: fl,
		Arg: int64(len(oc.votes))})
}

// learn finalizes one option and, once the outcome is determined,
// the transaction: commit iff all options accepted (just as in 2PC's
// decision rule, but evaluated over quorum-learned options).
func (c *Coordinator) learn(t *txCtx, oc *optCtx, d Decision) {
	oc.learned = d
	if oc.timer != nil {
		oc.timer.Stop()
	}
	t.remaining--
	if d == DecReject {
		if oc.reason == ReasonMixedKinds && t.rejErr == nil {
			t.rejErr = ErrMixedUpdateKinds
		}
		c.finish(t, false)
		return
	}
	if t.remaining == 0 {
		c.finish(t, true)
	}
}

// finish settles the transaction: visibility to every replica of
// every written record (asynchronous — it does not gate the commit
// response, §3.2.1), then the application callback. Visibility for
// the whole write-set is batched per destination node unless
// batching is disabled.
func (c *Coordinator) finish(t *txCtx, commit bool) {
	delete(c.txs, t.id)
	// Deterministic option order (map iteration would randomize the
	// simulator's jitter stream).
	ids := make([]OptionID, 0, len(t.opts))
	for id := range t.opts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Key < ids[j].Key })
	for _, id := range ids {
		if traceOn(id.Key) {
			tracef("%v %s coord-finish tx=%s commit=%v", c.net.Now().Unix(), c.id, id.Tx, commit)
		}
	}
	byNode := make(map[transport.NodeID][]MsgVisibility)
	var order []transport.NodeID
	for _, id := range ids {
		oc := t.opts[id]
		if oc.timer != nil {
			oc.timer.Stop()
		}
		vis := MsgVisibility{Opt: oc.opt, Commit: commit}
		for _, rep := range c.cl.Replicas(oc.opt.Update.Key) {
			if c.cfg.DisableBatching {
				c.net.Send(c.id, rep, vis)
				continue
			}
			if _, seen := byNode[rep]; !seen {
				order = append(order, rep)
			}
			byNode[rep] = append(byNode[rep], vis)
		}
	}
	for _, rep := range order {
		items := byNode[rep]
		if len(items) == 1 {
			c.net.Send(c.id, rep, items[0])
			continue
		}
		c.net.Send(c.id, rep, MsgVisibilityBatch{Items: items})
	}
	if commit {
		c.nCommits++
	} else {
		c.nAborts++
	}
	res := CommitResult{Tx: t.id, Committed: commit}
	if !commit {
		res.Err = t.rejErr
	}
	for _, id := range ids {
		oc := t.opts[id]
		if oc.attempts > 0 {
			res.Recovered = true
		}
		if oc.rerouted {
			res.Rerouted = true
		}
	}
	if c.tr != nil {
		now := c.net.Now().UnixNano()
		outcome, fl := uint8(trace.FlagCommit), uint8(trace.FlagCommit)
		if !commit {
			outcome, fl = trace.FlagAbort, trace.FlagAbort
		}
		keys := make([]string, 0, len(ids))
		for _, id := range ids {
			keys = append(keys, string(id.Key))
		}
		c.tr.Add(trace.Event{At: now, Tx: string(t.id), Stage: trace.StageCommit,
			Flags: fl, Arg: int64(len(ids))})
		c.cfg.Tracer.ObservePhase(trace.PhaseQuorum, -1, time.Duration(now-t.startAt))
		c.cfg.Tracer.Complete(string(t.id), keys, t.startAt, now, outcome, res.Recovered, res.Rerouted, false)
	}
	t.done(res)
}

// CoordMetrics reports coordinator-side counters.
type CoordMetrics struct {
	Commits, Aborts        int64
	FastLearns             int64
	LeaderLearns           int64
	Recoveries, Collisions int64
	ReadRetries, ReadFails int64
	// WrongGroupReroutes counts proposals re-dispatched after a node
	// refused them because a shard move re-homed the key.
	WrongGroupReroutes int64
}

// Add accumulates another snapshot into m (harnesses sum many
// coordinators into one report).
func (m *CoordMetrics) Add(o CoordMetrics) {
	m.Commits += o.Commits
	m.Aborts += o.Aborts
	m.FastLearns += o.FastLearns
	m.LeaderLearns += o.LeaderLearns
	m.Recoveries += o.Recoveries
	m.Collisions += o.Collisions
	m.ReadRetries += o.ReadRetries
	m.ReadFails += o.ReadFails
	m.WrongGroupReroutes += o.WrongGroupReroutes
}

// Metrics returns a snapshot of this coordinator's counters.
func (c *Coordinator) Metrics() CoordMetrics {
	return CoordMetrics{
		Commits:      c.nCommits,
		Aborts:       c.nAborts,
		FastLearns:   c.nFastLearns,
		LeaderLearns: c.nLeaderLearns,
		Recoveries:   c.nRecoveries,
		Collisions:   c.nCollisions,
		ReadRetries:  c.nReadRetries,
		ReadFails:    c.nReadFail,

		WrongGroupReroutes: c.nWrongGroupReroutes,
	}
}
