package bench

import (
	"testing"
	"time"

	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/tpcw"
)

// End-to-end: run TPC-W on MDCC and on 2PC and verify write
// transactions commit, the buy path decrements stock, and orders
// appear.
func TestTPCWOnProtocols(t *testing.T) {
	for _, proto := range []Protocol{ProtoMDCC, Proto2PC, ProtoQW3} {
		w := NewWorld(Options{
			Protocol:    proto,
			NodesPerDC:  2,
			Clients:     10,
			ClientDC:    -1,
			Seed:        7,
			Constraints: []record.Constraint{tpcw.Constraint()},
		})
		wl := tpcw.New(tpcw.Options{Items: 1000})
		res := Run(w, wl, RunConfig{Warmup: 5 * time.Second, Measure: 30 * time.Second})
		if res.Commits == 0 {
			t.Fatalf("%s: no write commits", proto)
		}
		if res.Reads == 0 {
			t.Fatalf("%s: no read-only interactions", proto)
		}
		if res.WriteLat.N() == 0 {
			t.Fatalf("%s: no write latencies", proto)
		}
		// The mix is roughly half writes.
		frac := float64(res.Commits+res.Aborts) / float64(res.Commits+res.Aborts+res.Reads)
		if frac < 0.3 || frac > 0.7 {
			t.Errorf("%s: write fraction %.2f, want ≈0.5", proto, frac)
		}
		ints := wl.Interactions()
		if ints["BuyConfirm"] == 0 || ints["ShoppingCart"] == 0 {
			t.Errorf("%s: ordering interactions missing: %v", proto, ints)
		}
	}
}

func TestBuyConfirmDecrementsStock(t *testing.T) {
	// Single client repeatedly buying must reduce total stock by the
	// exact committed amount (atomic durability).
	w := NewWorld(Options{
		Protocol:    ProtoMDCC,
		NodesPerDC:  1,
		Clients:     2,
		ClientDC:    int(topology.USWest),
		Seed:        8,
		Constraints: []record.Constraint{tpcw.Constraint()},
	})
	wl := tpcw.New(tpcw.Options{Items: 50})
	res := Run(w, wl, RunConfig{Warmup: 2 * time.Second, Measure: 30 * time.Second})
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	m := w.CoreMetrics()
	if m.Executed == 0 {
		t.Fatal("no options executed")
	}
}
