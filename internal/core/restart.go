package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
	"mdcc/internal/wal"
)

// Crash/restart support. A storage node's durable footprint is two
// WALs under one directory — the committed record store (what BDB
// persists in the paper's prototype) and the decision log (the final
// accept/reject outcome of every option whose effect entered the
// store) — plus periodic checkpoint snapshots of the full state (see
// checkpoint.go), which bound recovery to the newest valid snapshot
// and the log tail since its cut instead of a whole-log replay.
//
// Paxos promises and unresolved votes are deliberately volatile, as
// in the rest of this codebase's durability model: a restarted
// acceptor rejoins with an empty cstruct and catches up through
// Phase 1, the dangling-option sweep, and anti-entropy.

// ErrDurability is the typed error a storage node degrades with when
// its disk refuses a write (WAL append, fsync, store put): the node
// halts — it must never acknowledge state it could not persist — and
// serves again only after its durable state is reopened (the operator
// replaced the disk). Quorum replication carries the keyspace
// meanwhile.
var ErrDurability = errors.New("mdcc/core: durability failure, node degraded")

// oplogEntry is one persisted oplog record: either one decision
// (Up/HasUp carry the executed update's contents when known, so a
// restarted node can still graft its own applies onto diverged peers'
// bases — see adoptBase) or a lineage-summary snapshot (written on
// every base adoption, whose wholesale summary union has no
// per-decision records to replay). KeySeq preserves the option's
// lineage identity so replay rebuilds the record's summary exactly.
// Checkpoint snapshots serialize each record's decided cache in this
// same shape, so restoring a snapshot reuses the replay machinery
// unchanged.
type oplogEntry struct {
	Key      record.Key
	Tx       TxID
	Decision Decision
	Up       record.Update
	HasUp    bool
	KeySeq   uint64
	// Snapshot, when non-nil, makes this a summary-snapshot record;
	// the decision fields are unused then.
	Snapshot *LineageSummary
}

// DurableOptions configures a node's durable state.
type DurableOptions struct {
	// NoSync skips fsync (harnesses that model durability). Injected
	// faults still apply — see wal.Options.NoSync.
	NoSync bool
	// GroupCommit coalesces concurrent appends into one fsync;
	// MaxStall optionally bounds a wait that grows the batches. See
	// wal.Options.
	GroupCommit bool
	MaxStall    time.Duration
	// SegmentSize overrides the WAL segment threshold (0 = default);
	// scenarios shrink it to exercise many-segment recovery.
	SegmentSize int64
	// Faults, when non-nil, injects disk faults under both WALs and is
	// the handle the scenario nemesis drives.
	Faults *wal.Faults
}

func (o DurableOptions) walOptions() wal.Options {
	return wal.Options{
		SegmentSize: o.SegmentSize,
		NoSync:      o.NoSync,
		GroupCommit: o.GroupCommit,
		MaxStall:    o.MaxStall,
		Faults:      o.Faults,
	}
}

// ReplayStats describes one recovery: what it started from and how
// much log it had to replay. The recovery bound rests on TailStore +
// TailOplog staying O(writes since the last checkpoint), not O(writes
// ever).
type ReplayStats struct {
	// UsedSnapshot is true when recovery seeded from a checkpoint;
	// FullReplay when no snapshot existed and the whole log replayed.
	UsedSnapshot bool
	FullReplay   bool
	// SnapshotSeq is the snapshot recovered from; FellBack is true
	// when the newest snapshot was corrupt and an older one was used.
	SnapshotSeq int
	FellBack    bool
	// SeededKeys / SeededDecisions are the snapshot's contents;
	// TailStore / TailOplog the records replayed beyond its cut.
	SeededKeys      int
	SeededDecisions int
	TailStore       int64
	TailOplog       int64
	// Duration is the wall-clock time OpenDurable spent.
	Duration time.Duration
}

// cuts names the first live segment of each WAL as of one snapshot:
// the snapshot covers everything below, the tail is everything from
// the cut on.
type cuts struct {
	Store, Oplog int
}

// snapshotState is a checkpoint's serialized payload: the full kv
// state (values, versions, escrow bases — tombstones included), every
// record's lineage summary and decided cache in oplog-replay shape,
// and the log cuts the snapshot covers.
type snapshotState struct {
	KV       []kv.Entry
	Oplog    []oplogEntry
	StoreCut int
	OplogCut int
}

// DurableState is a storage node's on-disk state, opened before the
// node (re)starts and handed to NewDurableStorageNode.
type DurableState struct {
	// Store is the WAL-backed committed record store.
	Store *kv.Store

	oplog   *wal.Log
	decided []oplogEntry
	dir     string
	opts    DurableOptions

	snapSeq  int  // newest usable snapshot on disk (0 = none yet)
	lastCuts cuts // its cuts: the truncation floor for the next checkpoint
	replay   ReplayStats

	// checkpointAppends is the combined append counter at the last
	// checkpoint, so AppendsSinceCheckpoint is the snapshot-age gauge.
	checkpointAppends int64
	checkpoints       int64
}

// OpenDurable opens (creating on first boot, replaying after a crash)
// the durable state rooted at dir. noSync skips fsync (simulation
// harnesses model durability; they do not need it to be real).
func OpenDurable(dir string, noSync bool) (*DurableState, error) {
	return OpenDurableOpts(dir, DurableOptions{NoSync: noSync})
}

// OpenDurableOpts opens the durable state rooted at dir with full
// control of the WAL layer. Recovery seeds from the newest valid
// checkpoint snapshot and replays only the log tail past its cut,
// falling back to the previous snapshot if the newest is corrupt;
// with no snapshot it replays the whole log (first boot, or
// checkpointing disabled). If snapshots exist but none is usable the
// node's state is gone — the error wraps wal.ErrCorrupt so the
// operator (or harness) can rebuild the replica from its quorum.
func OpenDurableOpts(dir string, o DurableOptions) (*DurableState, error) {
	start := time.Now()
	snapDir := filepath.Join(dir, "snap")
	ds := &DurableState{dir: dir, opts: o}

	seqs, err := wal.ListSnapshots(snapDir)
	if err != nil {
		return nil, err
	}
	var st *snapshotState
	// Only the newest two snapshots are retained, so only they are
	// candidates; anything older was pruned after its cut segments
	// were truncated away.
	tried := 0
	for i := len(seqs) - 1; i >= 0 && tried < 2 && st == nil; i, tried = i-1, tried+1 {
		payload, rerr := wal.ReadSnapshot(snapDir, seqs[i])
		if rerr != nil {
			ds.replay.FellBack = true
			continue
		}
		var cand snapshotState
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cand); derr != nil {
			ds.replay.FellBack = true
			continue
		}
		st = &cand
		ds.snapSeq = seqs[i]
		// Snapshots newer than the one that validated are proven
		// corrupt: remove them so pruning can never prefer them over
		// good ones.
		for j := i + 1; j < len(seqs); j++ {
			if rmerr := wal.RemoveSnapshot(snapDir, seqs[j]); rmerr != nil {
				return nil, rmerr
			}
		}
	}
	if len(seqs) > 0 && st == nil {
		return nil, fmt.Errorf("core: no usable checkpoint snapshot in %s (newest seq %d): %w",
			snapDir, seqs[len(seqs)-1], wal.ErrCorrupt)
	}

	var seed []kv.Entry
	storeFrom, oplogFrom := 0, 0
	if st != nil {
		seed = st.KV
		storeFrom, oplogFrom = st.StoreCut, st.OplogCut
		ds.lastCuts = cuts{Store: st.StoreCut, Oplog: st.OplogCut}
		ds.decided = append(ds.decided, st.Oplog...)
		ds.replay.UsedSnapshot = true
		ds.replay.SnapshotSeq = ds.snapSeq
		ds.replay.SeededKeys = len(st.KV)
		ds.replay.SeededDecisions = len(st.Oplog)
	} else {
		ds.replay.FullReplay = true
		ds.replay.FellBack = false
	}

	store, err := kv.OpenWith(filepath.Join(dir, "store"), o.walOptions(), seed, storeFrom)
	if err != nil {
		return nil, err
	}
	ds.Store = store
	oplog, err := wal.Open(filepath.Join(dir, "oplog"), o.walOptions())
	if err != nil {
		store.Close()
		return nil, err
	}
	ds.oplog = oplog
	err = oplog.ReplayFrom(oplogFrom, func(payload []byte) error {
		var e oplogEntry
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); derr != nil {
			return fmt.Errorf("core: oplog replay: %w", derr)
		}
		ds.decided = append(ds.decided, e)
		ds.replay.TailOplog++
		return nil
	})
	if err != nil {
		oplog.Close()
		store.Close()
		return nil, err
	}
	ds.replay.TailStore = store.Replayed()
	ds.replay.Duration = time.Since(start)
	// The appends-since-checkpoint gauge must count the tail this open
	// just replayed: those records sit past the snapshot cut on disk, so
	// a crash right now would replay them again. Appends() restarts at
	// zero per incarnation; backdating the baseline folds the tail in.
	ds.checkpointAppends = -(ds.replay.TailStore + ds.replay.TailOplog)
	return ds, nil
}

// Checkpoint writes a full-state snapshot (the caller serializes its
// record state into oplogState; kv entries are read here) and
// truncates WAL segments the previous snapshot covers. The last two
// snapshots are kept: recovery may fall back one, and the logs retain
// everything from the older one's cut, so the fallback always has its
// tail. Crashing between any two steps is safe — replaying a tail
// that overlaps a snapshot is idempotent (kv puts are last-write-wins
// in log order, summary unions are monotone, decision records
// deduplicate).
func (ds *DurableState) Checkpoint(oplogState []oplogEntry) error {
	storeCut, err := ds.Store.Log().Cut()
	if err != nil {
		return err
	}
	oplogCut, err := ds.oplog.Cut()
	if err != nil {
		return err
	}
	st := snapshotState{
		KV:       ds.Store.Entries(),
		Oplog:    oplogState,
		StoreCut: storeCut,
		OplogCut: oplogCut,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	snapDir := filepath.Join(ds.dir, "snap")
	seq := ds.snapSeq + 1
	if err := wal.WriteSnapshot(snapDir, seq, buf.Bytes(), ds.opts.NoSync); err != nil {
		return err
	}
	// Truncate below the *previous* snapshot's cuts, never this one's:
	// if this snapshot later reads corrupt, recovery falls back to the
	// previous and needs the log from its cut on.
	floor := ds.lastCuts
	ds.snapSeq = seq
	ds.lastCuts = cuts{Store: storeCut, Oplog: oplogCut}
	ds.checkpointAppends = ds.Store.Log().Appends() + ds.oplog.Appends()
	ds.checkpoints++
	if err := ds.Store.Log().TruncateBefore(floor.Store); err != nil {
		return err
	}
	if err := ds.oplog.TruncateBefore(floor.Oplog); err != nil {
		return err
	}
	return wal.PruneSnapshots(snapDir, 2)
}

// RecoveryStats reports how the last OpenDurable recovered.
func (ds *DurableState) RecoveryStats() ReplayStats { return ds.replay }

// SnapshotSeq is the newest on-disk checkpoint's sequence (0 = none).
func (ds *DurableState) SnapshotSeq() int { return ds.snapSeq }

// AppendsSinceCheckpoint is the snapshot-age gauge: WAL records
// written since the last checkpoint (what a crash right now would
// have to tail-replay). After a restart it counts from the recovery
// point.
func (ds *DurableState) AppendsSinceCheckpoint() int64 {
	return ds.Store.Log().Appends() + ds.oplog.Appends() - ds.checkpointAppends
}

// Close releases both logs (call when the node crashes or shuts down).
func (ds *DurableState) Close() error {
	err := ds.oplog.Close()
	if serr := ds.Store.Close(); err == nil {
		err = serr
	}
	return err
}

// NewDurableStorageNode builds a storage node whose committed store
// and decision log live in ds, seeding the per-record decided logs
// from the snapshot-plus-tail decisions recovery produced. Registering
// the handler replaces any previous incarnation's registration on the
// network.
func NewDurableStorageNode(id transport.NodeID, dc topology.DC, net transport.Network,
	cl *topology.Cluster, cfg Config, ds *DurableState) *StorageNode {
	n := NewStorageNode(id, dc, net, cl, cfg, ds.Store)
	n.oplog = ds.oplog
	n.durable = ds
	for _, e := range ds.decided {
		r := n.rs(e.Key)
		if e.Snapshot != nil {
			// A base adoption's summary snapshot: union in replay order
			// (summaries are monotone, so the final union matches the
			// pre-crash state exactly, in lockstep with the kv WAL's
			// final value).
			r.summary.Union(*e.Snapshot)
			r.noteKindFromSummary()
			continue
		}
		opt, hasOpt := Option{}, false
		if e.HasUp {
			opt = Option{Tx: e.Tx, Update: e.Up}
			opt.KeySeq = e.KeySeq
			hasOpt = true
		}
		id := OptionID{Tx: e.Tx, Key: e.Key}
		if r.decided.record(id, e.Decision, opt, hasOpt, net.Now()) {
			r.noteSettled(id, e.Decision, opt, hasOpt)
		}
	}
	n.scheduleCheckpoint()
	return n
}

// Halt makes this incarnation inert: its handler ignores every
// message and its periodic timers stop rescheduling. Used when a node
// is crashed so the dead instance cannot race a restarted one (the
// simulator also purges its queued events; Halt is the
// transport-independent guarantee).
func (n *StorageNode) Halt() { n.halted = true }

// degrade latches the node's first durability failure: the node halts
// (it must never acknowledge a write its disk refused) and everything
// staged by the failing dispatch — buffered votes, dirty feed keys —
// is dropped so nothing unsynced leaves the node. The failure is
// surfaced typed via DurabilityError; the harness/operator crashes the
// node, replaces the disk, and restarts it from its durable state.
func (n *StorageNode) degrade(err error) {
	if n.degraded != nil {
		return
	}
	n.degraded = fmt.Errorf("%w: %v", ErrDurability, err)
	n.nDurabilityFailures++
	n.halted = true
	for to := range n.voteBuf {
		delete(n.voteBuf, to)
	}
	n.voteOrder = n.voteOrder[:0]
	n.feedDirty = n.feedDirty[:0]
	for k := range n.feedDirtySet {
		delete(n.feedDirtySet, k)
	}
}

// DurabilityError reports the typed failure a degraded node latched
// (nil while healthy). A non-nil value means the node has halted and
// needs its durable state reopened.
func (n *StorageNode) DurabilityError() error { return n.degraded }

// logDecision persists a settled option's outcome (with contents when
// known), if this node is durable. A refused append degrades the node
// (see degrade) — the historical behavior of swallowing the error
// silently lost durability while continuing to acknowledge writes.
func (n *StorageNode) logDecision(id OptionID, d Decision, opt Option, hasOpt bool) {
	if n.oplog == nil {
		return
	}
	e := oplogEntry{Key: id.Key, Tx: id.Tx, Decision: d}
	if hasOpt {
		e.Up, e.HasUp = opt.Update, true
		e.KeySeq = opt.KeySeq
	}
	n.appendOplog(&e)
}

// logLineage persists a record's lineage summary snapshot. Written on
// every base adoption: the adopted union has no per-decision records
// to replay, so without the snapshot a restarted replica's rebuilt
// summary would miss everything it learned wholesale from peers —
// and its value (replayed exactly by the kv WAL) would claim applies
// its summary could not account for.
func (n *StorageNode) logLineage(key record.Key, s LineageSummary) {
	if n.oplog == nil {
		return
	}
	snap := s.Clone()
	n.appendOplog(&oplogEntry{Key: key, Snapshot: &snap})
}

func (n *StorageNode) appendOplog(e *oplogEntry) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		n.degrade(err)
		return
	}
	if err := n.oplog.Append(buf.Bytes()); err != nil {
		n.degrade(err)
	}
}

// storePut writes committed state, degrading the node on a refused
// put: committed state the disk did not take must not be served or
// fed to subscribers as if durable.
func (n *StorageNode) storePut(key record.Key, val record.Value, ver record.Version) {
	if err := n.store.Put(key, val, ver); err != nil {
		n.degrade(err)
	}
}
