package bench

import (
	"time"

	"mdcc/internal/microbench"
	"mdcc/internal/record"
	"mdcc/internal/stats"
	"mdcc/internal/topology"
	"mdcc/internal/tpcw"
)

// Scale sizes an experiment. PaperScale matches §5; QuickScale keeps
// CI fast while preserving shapes approximately.
type Scale struct {
	Clients    int
	Items      int
	NodesPerDC int
	Warmup     time.Duration
	Measure    time.Duration
}

// PaperScale is the evaluation's setup: 100 geo-distributed clients,
// 10k items, 1 min warmup.
func PaperScale() Scale {
	return Scale{Clients: 100, Items: 10000, NodesPerDC: 4,
		Warmup: 30 * time.Second, Measure: 120 * time.Second}
}

// QuickScale shrinks everything ~10x for tests.
func QuickScale() Scale {
	return Scale{Clients: 10, Items: 1000, NodesPerDC: 2,
		Warmup: 5 * time.Second, Measure: 20 * time.Second}
}

// Figure3 — TPC-W write-transaction response-time CDFs for QW-3,
// QW-4, MDCC, 2PC and Megastore*. Megastore* clients (and its master)
// are pinned to US-West, in its favor, exactly as in the paper.
func Figure3(seed int64, sc Scale) map[Protocol]*Result {
	out := make(map[Protocol]*Result)
	for _, proto := range AllProtocols() {
		clientDC := -1
		if proto == ProtoMegastore {
			clientDC = int(topology.USWest)
		}
		w := NewWorld(Options{
			Protocol:    proto,
			NodesPerDC:  sc.NodesPerDC,
			Clients:     sc.Clients,
			ClientDC:    clientDC,
			Seed:        seed,
			Constraints: []record.Constraint{tpcw.Constraint()},
		})
		wl := tpcw.New(tpcw.Options{Items: sc.Items})
		out[proto] = Run(w, wl, RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	return out
}

// Figure4 — TPC-W throughput scale-out: (50 clients, 5k items),
// (100, 10k), (200, 20k) with 2,500 items per storage node.
type Fig4Point struct {
	Clients int
	Results map[Protocol]*Result
}

// Figure4 runs the scale-out sweep. scales lists client counts; items
// and nodes derive from them as in the paper.
func Figure4(seed int64, clientCounts []int, warmup, measure time.Duration) []Fig4Point {
	var out []Fig4Point
	for _, clients := range clientCounts {
		items := clients * 100
		nodesPerDC := items / 2500
		if nodesPerDC < 1 {
			nodesPerDC = 1
		}
		point := Fig4Point{Clients: clients, Results: make(map[Protocol]*Result)}
		for _, proto := range AllProtocols() {
			clientDC := -1
			if proto == ProtoMegastore {
				clientDC = int(topology.USWest)
			}
			w := NewWorld(Options{
				Protocol:    proto,
				NodesPerDC:  nodesPerDC,
				Clients:     clients,
				ClientDC:    clientDC,
				Seed:        seed,
				Constraints: []record.Constraint{tpcw.Constraint()},
			})
			wl := tpcw.New(tpcw.Options{Items: items})
			point.Results[proto] = Run(w, wl, RunConfig{Warmup: warmup, Measure: measure})
		}
		out = append(out, point)
	}
	return out
}

// fig5Protocols are the micro-benchmark configurations of §5.3.1.
func fig5Protocols() []Protocol {
	return []Protocol{ProtoMDCC, ProtoFast, ProtoMulti, Proto2PC}
}

// Figure5 — micro-benchmark response-time CDFs for MDCC, Fast, Multi
// and 2PC (2 storage nodes per DC).
func Figure5(seed int64, sc Scale) map[Protocol]*Result {
	out := make(map[Protocol]*Result)
	for _, proto := range fig5Protocols() {
		w := NewWorld(Options{
			Protocol:    proto,
			NodesPerDC:  2,
			Clients:     sc.Clients,
			ClientDC:    -1,
			Seed:        seed,
			Constraints: []record.Constraint{microbench.Constraint()},
		})
		opts := microbench.Defaults()
		opts.Items = sc.Items
		wl := microbench.New(opts)
		out[proto] = Run(w, wl, RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
	}
	return out
}

// Fig6Point is one hot-spot size's commit/abort tallies.
type Fig6Point struct {
	HotspotPct int
	Results    map[Protocol]*Result
}

// Figure6 — commits and aborts versus conflict rate. The hot-spot
// receives 90% of accesses; its size sweeps 2%..90% of the table.
// Initial stock is sized so the hottest configurations deplete items
// during the run (that is what triggers MDCC's demarcation collisions
// in the paper).
func Figure6(seed int64, sc Scale, hotspotPcts []int) []Fig6Point {
	// Expected stock pressure: roughly one transaction per client per
	// 350ms, 3 items × ~2 units each, 90% into the hot spot.
	expTxns := float64(sc.Clients) * sc.Measure.Seconds() / 0.35
	hotUnits := 0.9 * expTxns * 3 * 2
	var out []Fig6Point
	for _, pct := range hotspotPcts {
		// Half the 2%-hotspot per-item load: the smallest hot spots
		// deplete mid-run, larger ones never do.
		stock := int64(0.5 * hotUnits / (float64(sc.Items) * 0.02))
		if stock < 10 {
			stock = 10
		}
		point := Fig6Point{HotspotPct: pct, Results: make(map[Protocol]*Result)}
		for _, proto := range []Protocol{Proto2PC, ProtoMulti, ProtoFast, ProtoMDCC} {
			w := NewWorld(Options{
				Protocol:    proto,
				NodesPerDC:  2,
				Clients:     sc.Clients,
				ClientDC:    -1,
				Seed:        seed,
				Constraints: []record.Constraint{microbench.Constraint()},
			})
			opts := microbench.Defaults()
			opts.Items = sc.Items
			opts.HotspotFrac = float64(pct) / 100
			opts.HotProb = 0.9
			opts.InitialStockMin = stock
			opts.InitialStockMax = stock * 2
			wl := microbench.New(opts)
			point.Results[proto] = Run(w, wl, RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
		}
		out = append(out, point)
	}
	return out
}

// Fig7Point is one locality setting's latency boxplots.
type Fig7Point struct {
	LocalPct int
	Results  map[Protocol]*Result
}

// Figure7 — response times versus master locality for Multi and MDCC:
// the given percentage of transactions touch only records whose
// master is in the client's own data center.
func Figure7(seed int64, sc Scale, localPcts []int) []Fig7Point {
	var out []Fig7Point
	for _, pct := range localPcts {
		point := Fig7Point{LocalPct: pct, Results: make(map[Protocol]*Result)}
		for _, proto := range []Protocol{ProtoMulti, ProtoMDCC} {
			w := NewWorld(Options{
				Protocol:    proto,
				NodesPerDC:  2,
				Clients:     sc.Clients,
				ClientDC:    -1,
				Seed:        seed,
				Constraints: []record.Constraint{microbench.Constraint()},
			})
			opts := microbench.Defaults()
			opts.Items = sc.Items
			opts.LocalMasterFrac = float64(pct) / 100
			wl := microbench.New(opts)
			point.Results[proto] = Run(w, wl, RunConfig{Warmup: sc.Warmup, Measure: sc.Measure})
		}
		out = append(out, point)
	}
	return out
}

// Fig8Result is the failure-experiment harvest.
type Fig8Result struct {
	Result    *Result
	FailAt    time.Duration
	PreMean   float64 // mean committed latency before the outage (ms)
	PostMean  float64 // after
	PreCount  int
	PostCount int
}

// Figure8 — time series of MDCC response times across a simulated
// US-East outage, with 100 clients in US-West (US-East is their
// closest remote DC, so the failure must actually be tolerated).
func Figure8(seed int64, clients int, failAt, total time.Duration) Fig8Result {
	w := NewWorld(Options{
		Protocol:    ProtoMDCC,
		NodesPerDC:  2,
		Clients:     clients,
		ClientDC:    int(topology.USWest),
		Seed:        seed,
		Constraints: []record.Constraint{microbench.Constraint()},
	})
	wl := microbench.New(microbench.Defaults())
	res := Run(w, wl, RunConfig{
		Warmup:           0,
		Measure:          total,
		TimeSeriesBucket: time.Second,
		Events: []Event{
			{At: failAt, Do: func(w *World) { w.FailDC(topology.USEast) }},
		},
	})
	pre, npre := res.Series.MeanBetween(10*time.Second, failAt)
	post, npost := res.Series.MeanBetween(failAt+5*time.Second, total)
	return Fig8Result{
		Result: res, FailAt: failAt,
		PreMean: pre, PostMean: post, PreCount: npre, PostCount: npost,
	}
}

// SummarizeCDF prints one protocol row of a CDF figure.
func SummarizeCDF(res *Result) string {
	return res.WriteLat.Summary()
}

// CDFSeries converts results to the plotting form used by
// stats.ASCIICDF.
func CDFSeries(results map[Protocol]*Result) map[string]*stats.Sample {
	out := make(map[string]*stats.Sample, len(results))
	for p, r := range results {
		out[string(p)] = r.WriteLat
	}
	return out
}
