package bench

import (
	"time"

	"mdcc/internal/mtx"
	"mdcc/internal/stats"
)

// Event is a scheduled intervention (failures, recoveries).
type Event struct {
	At time.Duration // offset from run start
	Do func(w *World)
}

// RunConfig shapes one experiment run.
type RunConfig struct {
	Warmup  time.Duration
	Measure time.Duration
	// Grace lets transactions that started inside the window finish
	// (default 5s virtual).
	Grace time.Duration
	// TimeSeriesBucket buckets the latency series (default 5s).
	TimeSeriesBucket time.Duration
	Events           []Event
}

// Result is one run's harvest.
type Result struct {
	Protocol Protocol
	Workload string
	Clients  int

	// Committed write-transaction response times, in milliseconds
	// (the paper's primary metric).
	WriteLat *stats.Sample
	// Aborted write-transaction response times.
	AbortLat *stats.Sample
	// ReadLat holds read-only transaction response times.
	ReadLat *stats.Sample

	Commits, Aborts int64 // write transactions in the measure window
	Reads           int64 // read-only transactions in the window
	TPS             float64
	WriteTPS        float64

	// Series is the committed-transaction latency time series across
	// the whole run (warmup included), for figure 8.
	Series *stats.TimeSeries
}

// Run executes the workload on the world and collects results.
func Run(w *World, wl mtx.Workload, rc RunConfig) *Result {
	if rc.Grace == 0 {
		rc.Grace = 5 * time.Second
	}
	if rc.TimeSeriesBucket == 0 {
		rc.TimeSeriesBucket = 5 * time.Second
	}
	rng := w.Net.Rand()
	w.Preload(wl.Preload(rng))

	res := &Result{
		Protocol: w.Opts.Protocol,
		Workload: wl.Name(),
		Clients:  len(w.Clients),
		WriteLat: stats.NewSample(4096),
		AbortLat: stats.NewSample(1024),
		ReadLat:  stats.NewSample(4096),
		Series:   stats.NewTimeSeries(rc.TimeSeriesBucket),
	}

	start := w.Net.Now()
	measureFrom := start.Add(rc.Warmup)
	measureTo := measureFrom.Add(rc.Measure)

	for _, ev := range rc.Events {
		ev := ev
		w.Net.At(ev.At, func() { ev.Do(w) })
	}

	for ci := range w.Clients {
		ci := ci
		client := w.Clients[ci]
		dc := w.ClientDC(ci)
		var loop func()
		loop = func() {
			now := w.Net.Now()
			if !now.Before(measureTo) {
				return // window over: this client retires
			}
			txn := wl.Next(ci, dc, rng)
			txStart := now
			txn(client, rng, func(tr mtx.TxnResult) {
				end := w.Net.Now()
				latMS := float64(end.Sub(txStart)) / float64(time.Millisecond)
				if tr.Committed {
					res.Series.Add(end.Sub(start), latMS)
				}
				if !end.Before(measureFrom) && end.Before(measureTo) {
					switch {
					case !tr.Write:
						res.Reads++
						res.ReadLat.Add(latMS)
					case tr.Committed:
						res.Commits++
						res.WriteLat.Add(latMS)
					default:
						res.Aborts++
						res.AbortLat.Add(latMS)
					}
				}
				loop()
			})
		}
		w.Net.At(0, loop)
	}

	w.Net.RunFor(rc.Warmup + rc.Measure + rc.Grace)

	secs := rc.Measure.Seconds()
	if secs > 0 {
		res.WriteTPS = float64(res.Commits) / secs
		res.TPS = float64(res.Commits+res.Reads) / secs
	}
	return res
}
