package mtx

import (
	"testing"

	"mdcc/internal/record"
)

type plainClient struct{}

func (plainClient) Read(record.Key, func(record.Value, record.Version, bool)) {}
func (plainClient) Commit([]record.Update, func(bool))                        {}

type commClient struct {
	plainClient
	comm bool
}

func (c commClient) SupportsCommutative() bool { return c.comm }

func TestCommutativeDetection(t *testing.T) {
	if Commutative(plainClient{}) {
		t.Fatal("client without the marker reported commutative")
	}
	if !Commutative(commClient{comm: true}) {
		t.Fatal("commutative client not detected")
	}
	if Commutative(commClient{comm: false}) {
		t.Fatal("explicitly non-commutative client misdetected")
	}
}
