// Package trace is the transaction flight recorder: a low-overhead
// event log threaded through the whole MDCC stack (gateway admit →
// coalesce → dispatch → acceptor votes per DC → leader/recovery hops →
// quorum learn → visibility → client ack). Components append fixed-size
// Events into per-node ring buffers; the hot path allocates nothing
// (Event is a flat struct of small fields and string headers), appends
// reserve their slot with one atomic fetch-add and serialize only on a
// striped per-slot lock whose uncontended cost is a single CAS, and
// every entry point is a no-op on a nil receiver — a run without a
// Recorder pays one nil check per site. Building with `-tags notrace`
// turns the package constant Built off and the compiler deletes the
// recording bodies outright.
//
// Retention is tail-based: most transactions complete fast and their
// events simply age out of the rings. Transactions that are slow
// (> Config.SlowThreshold), aborted, recovered, wrong-shard-retried or
// outcome-unknown are assembled — gathered from every ring into one
// causally ordered Trace — at completion time and kept in a bounded
// retained set, plus a separate always-kept list of the N slowest.
// A per-Recorder Lamport clock (shared by all rings) gives events a
// causal total order that is deterministic on the single-threaded
// simulator, so the same seed always assembles the same timeline.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies where in the pipeline an event was recorded.
type Stage uint8

// Pipeline stages, in rough causal order.
const (
	StageAdmit         Stage = iota + 1 // gateway admitted the transaction
	StageQueue                          // gateway queued it behind the inflight cap
	StageCoalesceJoin                   // update joined a hot-key coalesce window
	StageCoalesceFlush                  // merged window flushed as one option
	StageCoalesceSplit                  // rejected merge split and re-run singly
	StageDispatch                       // handed to a pooled coordinator
	StagePropose                        // coordinator proposed the option
	StageForward                        // acceptor forwarded to the record leader (classic window)
	StageVote                           // acceptor cast a vote
	StageLearn                          // coordinator learned the option's decision
	StagePhase1                         // leader opened a classic ballot (takeover)
	StagePhase2a                        // leader broadcast its cstruct
	StageRecovery                       // coordinator recovery hop (option timeout/collision)
	StageTxRecover                      // storage node reconstructed a dangling transaction
	StageWrongShard                     // wrong-group refusal / reroute under a new ring
	StageCommit                         // coordinator settled the transaction outcome
	StageVisibility                     // acceptor executed/discarded the option
	StageFeedPub                        // visibility feed published the key
	StageRead                           // (floored) read served
	StageAck                            // gateway acknowledged the client
)

var stageNames = [...]string{
	StageAdmit:         "admit",
	StageQueue:         "queue",
	StageCoalesceJoin:  "coalesce-join",
	StageCoalesceFlush: "coalesce-flush",
	StageCoalesceSplit: "coalesce-split",
	StageDispatch:      "dispatch",
	StagePropose:       "propose",
	StageForward:       "forward",
	StageVote:          "vote",
	StageLearn:         "learn",
	StagePhase1:        "phase1",
	StagePhase2a:       "phase2a",
	StageRecovery:      "recovery",
	StageTxRecover:     "tx-recover",
	StageWrongShard:    "wrong-shard",
	StageCommit:        "outcome",
	StageVisibility:    "visibility",
	StageFeedPub:       "feed-pub",
	StageRead:          "read",
	StageAck:           "ack",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "stage?"
}

// Event flag bits. Stages reuse bits where meanings cannot collide.
const (
	FlagFast        uint8 = 1 << iota // fast ballot (vs classic/leader path)
	FlagAccept                        // accept vote / learned accept
	FlagReject                        // reject vote / learned reject
	FlagDemarcation                   // demarcation (escrow) verdict involved
	FlagBatched                       // rode a batch envelope (vote-batch / propose-batch)
	FlagCommit                        // transaction committed
	FlagAbort                         // transaction aborted
	FlagUnknown                       // outcome unknown (client-side process died)
)

// Event is one span record. All fields are fixed-size or string
// headers, so appending one allocates nothing.
type Event struct {
	Seq   uint64 // per-Recorder Lamport order (causal total order in-process)
	At    int64  // transport clock, nanoseconds since the Unix epoch
	Node  string // emitting node
	Tx    string // transaction id; "" for node-scoped events (feed, phase1)
	Key   string // record key, when the event concerns one
	Stage Stage
	DC    int8 // emitting node's data center, -1 when unknown
	Flags uint8
	Arg   int64 // stage-specific detail (attempt count, fan-out, headroom, ...)
}

// ringStripes is the slot-lock stripe count (power of two).
const ringStripes = 64

// Ring is one node's event buffer. Appends from the owning node are
// effectively single-writer (transport handlers are serialized per
// node), but the ring stays race-free under arbitrary concurrent
// appenders: slots are reserved with an atomic fetch-add and written
// under a striped lock, so two appenders contend only if they lap onto
// the same stripe.
type Ring struct {
	rec  *Recorder
	node string
	dc   int8
	mask uint64
	widx atomic.Uint64
	lock [ringStripes]sync.Mutex
	buf  []Event
}

// Add records one event, stamping its Lamport sequence, node and DC,
// and returns the assigned sequence (0 when recording is disabled).
// The gateway pins its admit event's sequence as the assembly lower
// bound for tx-less events. Safe on a nil ring (disabled recording).
func (r *Ring) Add(ev Event) uint64 {
	if !Built || r == nil {
		return 0
	}
	ev.Seq = r.rec.clk.Add(1)
	ev.Node = r.node
	ev.DC = r.dc
	i := r.widx.Add(1) - 1
	idx := i & r.mask
	l := &r.lock[idx%ringStripes]
	l.Lock()
	r.buf[idx] = ev
	l.Unlock()
	if r.rec.watchN.Load() != 0 {
		r.rec.observe(ev)
	}
	return ev.Seq
}

// Len reports how many events were ever appended (not the retained
// window size).
func (r *Ring) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.widx.Load()
}

// Snapshot copies the ring's currently retained events (oldest first
// by append order; callers merge-sort by Seq across rings). Events
// appended concurrently with the snapshot may or may not appear.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	n := r.widx.Load()
	size := uint64(len(r.buf))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		idx := i & r.mask
		l := &r.lock[idx%ringStripes]
		l.Lock()
		ev := r.buf[idx]
		l.Unlock()
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	return out
}

// Config sizes a Recorder. The zero value is usable.
type Config struct {
	// RingSize is the per-node event capacity (rounded up to a power
	// of two; 0 means 4096).
	RingSize int
	// SlowThreshold is the completion latency above which a committed,
	// unremarkable transaction is still retained (0 means 1s).
	SlowThreshold time.Duration
	// RetainLimit bounds the retained-trace set (0 means 64).
	RetainLimit int
	// SlowestN is how many slowest transactions are always kept,
	// independent of the retained set (0 means 5).
	SlowestN int
}

func (c Config) withDefaults() Config {
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	// Round up to a power of two for mask indexing.
	s := 1
	for s < c.RingSize {
		s <<= 1
	}
	c.RingSize = s
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	if c.RetainLimit <= 0 {
		c.RetainLimit = 64
	}
	if c.SlowestN <= 0 {
		c.SlowestN = 5
	}
	return c
}

// Recorder is one deployment's (or one process's) flight recorder: it
// owns the per-node rings, the shared Lamport clock, the tail-based
// retained set and the phase-latency histograms. A nil *Recorder is a
// valid, fully disabled recorder.
type Recorder struct {
	cfg Config

	clk     atomic.Uint64 // Lamport clock, shared by all rings and the wire stamps
	watchN  atomic.Int32  // live watch entries (hot-path guard)
	slowBar atomic.Int64  // slowest-N admission bar in ns; -1 while the list isn't full
	gwTop   atomic.Bool   // a gateway tier owns transaction completion

	mu       sync.Mutex
	rings    []*Ring
	byNode   map[string]*Ring
	watch    []watchEnt // retained traces still absorbing trailing events
	retained []*Trace   // bounded, oldest first
	slowest  []*Trace   // sorted by duration descending, ≤ SlowestN
	budget   int        // remaining full assemblies (determinism-safe bound)
	dropped  int        // retain-worthy completions lost to budget exhaustion

	phases phaseSet
}

// New builds a recorder.
func New(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	rec := &Recorder{
		cfg:    cfg,
		byNode: make(map[string]*Ring),
		budget: 4 * cfg.RetainLimit,
	}
	if rec.budget < 256 {
		rec.budget = 256
	}
	rec.slowBar.Store(-1)
	return rec
}

// Ring returns (creating on first use) the event ring for a node in
// data center dc (-1 when the node has none). Nil-safe: a nil recorder
// returns a nil ring, and every Ring method is nil-safe in turn.
func (rec *Recorder) Ring(node string, dc int) *Ring {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if r, ok := rec.byNode[node]; ok {
		return r
	}
	r := &Ring{
		rec:  rec,
		node: node,
		dc:   int8(dc),
		mask: uint64(rec.cfg.RingSize - 1),
		buf:  make([]Event, rec.cfg.RingSize),
	}
	rec.byNode[node] = r
	rec.rings = append(rec.rings, r)
	return r
}

// Events reports the total events recorded across all rings.
func (rec *Recorder) Events() uint64 {
	if rec == nil {
		return 0
	}
	rec.mu.Lock()
	rings := append([]*Ring(nil), rec.rings...)
	rec.mu.Unlock()
	var n uint64
	for _, r := range rings {
		n += r.Len()
	}
	return n
}

// SlowThreshold reports the configured slow-transaction bound.
func (rec *Recorder) SlowThreshold() time.Duration {
	if rec == nil {
		return 0
	}
	return rec.cfg.SlowThreshold
}

// ClaimTop marks that a gateway tier sits above the coordinators:
// coordinator-level completions then only feed histograms, and the
// gateway's completion (which sees admit→ack, including queueing)
// drives retention and the slowest-N list.
func (rec *Recorder) ClaimTop() {
	if rec == nil {
		return
	}
	rec.gwTop.Store(true)
}

// StampSend implements the transport wire-tracer hook: it ticks the
// Lamport clock and returns the stamp for an outgoing envelope.
func (rec *Recorder) StampSend() uint64 {
	if rec == nil {
		return 0
	}
	return rec.clk.Add(1)
}

// ObserveRecv merges a received envelope's Lamport stamp into the
// local clock (clock = max(clock, stamp)), keeping cross-process
// event orders causally consistent.
func (rec *Recorder) ObserveRecv(stamp uint64) {
	if rec == nil || stamp == 0 {
		return
	}
	for {
		cur := rec.clk.Load()
		if cur >= stamp {
			return
		}
		if rec.clk.CompareAndSwap(cur, stamp) {
			return
		}
	}
}
