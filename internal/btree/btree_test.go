package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree found a key")
	}
	if tr.Delete("x") {
		t.Fatal("Delete on empty tree reported success")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	if !tr.Put("a", 1) {
		t.Fatal("first Put not reported as insert")
	}
	if tr.Put("a", 2) {
		t.Fatal("second Put of same key reported as insert")
	}
	v, ok := tr.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("Get = %v,%v want 2,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDegree(1) should panic")
		}
	}()
	NewDegree(1)
}

func TestManyInsertsOrdered(t *testing.T) {
	for _, deg := range []int{2, 3, 8, 32} {
		tr := NewDegree(deg)
		const n = 2000
		for i := 0; i < n; i++ {
			tr.Put(fmt.Sprintf("k%06d", i), i)
		}
		tr.checkInvariants()
		if tr.Len() != n {
			t.Fatalf("deg %d: Len = %d, want %d", deg, tr.Len(), n)
		}
		keys := tr.Keys()
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("deg %d: keys not sorted", deg)
		}
		mn, _ := tr.Min()
		mx, _ := tr.Max()
		if mn != "k000000" || mx != fmt.Sprintf("k%06d", n-1) {
			t.Fatalf("deg %d: Min/Max = %q/%q", deg, mn, mx)
		}
	}
}

func TestRandomInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, deg := range []int{2, 3, 5, 16} {
		tr := NewDegree(deg)
		ref := map[string]int{}
		for step := 0; step < 8000; step++ {
			k := fmt.Sprintf("k%04d", r.Intn(500))
			switch r.Intn(3) {
			case 0, 1:
				tr.Put(k, step)
				ref[k] = step
			case 2:
				got := tr.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("deg %d step %d: Delete(%q) = %v, want %v", deg, step, k, got, want)
				}
				delete(ref, k)
			}
			if step%500 == 0 {
				tr.checkInvariants()
			}
		}
		tr.checkInvariants()
		if tr.Len() != len(ref) {
			t.Fatalf("deg %d: Len = %d, ref = %d", deg, tr.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got.(int) != v {
				t.Fatalf("deg %d: Get(%q) = %v,%v want %v,true", deg, k, got, ok, v)
			}
		}
		// Drain completely.
		for k := range ref {
			if !tr.Delete(k) {
				t.Fatalf("deg %d: drain Delete(%q) failed", deg, k)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("deg %d: tree not empty after drain: %d", deg, tr.Len())
		}
		tr.checkInvariants()
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%03d", i), i)
	}
	var got []string
	tr.AscendRange("k010", "k020", func(k string, _ interface{}) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("AscendRange = %v", got)
	}
	// Open upper bound.
	got = nil
	tr.AscendRange("k095", "", func(k string, _ interface{}) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("open-ended AscendRange returned %d keys, want 5", len(got))
	}
	// Early stop.
	count := 0
	tr.Ascend(func(string, interface{}) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early-stop Ascend visited %d, want 7", count)
	}
}

func TestAscendRangeEmptyWindow(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Put(fmt.Sprintf("k%d", i), i)
	}
	called := false
	tr.AscendRange("z", "zz", func(string, interface{}) bool {
		called = true
		return true
	})
	if called {
		t.Fatal("AscendRange outside key space visited keys")
	}
}

// Property: for random operation sequences the tree agrees with a map
// and iteration order is sorted.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := NewDegree(3)
		ref := map[string]int{}
		for i, op := range ops {
			k := fmt.Sprintf("%03d", op%200)
			if op%3 == 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				tr.Put(k, i)
				ref[k] = i
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := tr.Keys()
		if !sort.StringsAreSorted(keys) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got.(int) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	keys := make([]string, 100000)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%len(keys)], i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	keys := make([]string, 100000)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08d", i)
		tr.Put(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}
