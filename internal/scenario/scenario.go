// Package scenario is a deterministic whole-cluster fault-injection
// harness: it runs the real MDCC stack — coordinators, acceptors,
// leader election, dangling-transaction recovery, WAL-backed storage
// — on simnet's virtual clock while a scripted nemesis schedule
// injects the failures of the paper's evaluation and beyond (full
// data-center outages §5.4, master crashes with WAL-replay restarts,
// partitions, duplicated and reordered messages, latency spikes,
// clock drift). Concurrent simulated clients issue physical and
// commutative transactions whose full history is recorded and, after
// a heal-and-quiesce epilogue, machine-checked against the committed
// state by internal/check.
//
// Runs are reproducible: the same scenario, seed and sizing produce
// identical commit/abort counts and identical histories. Use the
// scenario tests for CI smoke coverage and cmd/mdcc-sim to run any
// scenario at scale.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mdcc/internal/check"
	"mdcc/internal/core"
	"mdcc/internal/gateway"
	"mdcc/internal/record"
	"mdcc/internal/simnet"
	"mdcc/internal/stats"
	"mdcc/internal/topology"
	"mdcc/internal/trace"
)

// Options sizes one scenario run. The zero value is filled with the
// scenario's defaults by Run.
type Options struct {
	// Seed drives every random choice of the run (network jitter,
	// drops, workload key picks). Same seed, same run.
	Seed int64
	// Clients is the number of simulated app-servers (geo-distributed
	// round-robin across the five data centers).
	Clients int
	// NodesPerDC is the number of storage nodes (partition shards)
	// per data center.
	NodesPerDC int
	// Duration is the virtual-time traffic window. The nemesis
	// schedule is scaled to it; healing, drain and anti-entropy
	// convergence run after it.
	Duration time.Duration
	// Faults disables the nemesis schedule when false (smoke runs
	// validate the happy path only).
	Faults bool
	// DropProb, when > 0, applies an ambient uniform message-drop
	// probability for the whole traffic window (on top of whatever the
	// nemesis schedules); the epilogue heal clears it so drain and
	// convergence run on a whole network.
	DropProb float64
	// Dir is where storage-node WALs live; empty means a fresh
	// temporary directory, removed when the run finishes.
	Dir string
	// Logf, when set, receives progress lines (the CLI's -v).
	Logf func(format string, args ...interface{})
	// Trace enables the transaction flight recorder for the run: the
	// result then carries per-phase latency histograms plus assembled
	// cross-node timelines for the N slowest transactions, every
	// retained (aborted / outcome-unknown / recovered / wrong-shard /
	// slow) transaction, and the transactions touching each invariant
	// violation's keys.
	Trace bool
	// TraceSlowest is how many slowest-transaction timelines to keep
	// (0 means 5).
	TraceSlowest int
	// TraceSlow overrides the slow-transaction retention threshold
	// (0 means the recorder default, 1s of virtual time).
	TraceSlow time.Duration
}

// Workload shapes the client traffic of a scenario. Key spaces are
// disjoint by kind so internal/check's conservation invariant applies
// cleanly: accounts and stock see only commutative deltas, items only
// physical read-modify-writes.
type Workload struct {
	// Accounts is the number of balance records (commutative
	// transfers move units between two of them).
	Accounts int
	// InitialBalance preloads each account's "bal" (constraint
	// bal >= 0).
	InitialBalance int64
	// StockKeys is the number of stock records hammered by blind
	// commutative decrements against units >= 0 (quorum demarcation
	// pressure).
	StockKeys int
	// InitialStock preloads each stock record's "units".
	InitialStock int64
	// Items is the number of physical read-modify-write records; few
	// items and many clients is the collision storm.
	Items int
	// ReadFrac, TransferFrac and StockFrac split traffic: a client
	// draw below ReadFrac is a session-guaranteed floored read (hot
	// stock keys + items; gateway scenarios only — it exercises the
	// learned-replica read tier), below ReadFrac+TransferFrac a
	// transfer, below ReadFrac+TransferFrac+StockFrac a stock
	// decrement, the rest are item read-modify-writes.
	ReadFrac     float64
	TransferFrac float64
	StockFrac    float64
}

// Scenario is one named fault schedule plus the workload and protocol
// tuning it runs under.
type Scenario struct {
	// Name is the CLI/flag identifier, e.g. "dc-outage".
	Name string
	// Description is one line for listings.
	Description string
	// Workload shapes client traffic.
	Workload Workload
	// Clients/NodesPerDC/Duration are the scenario's default sizing,
	// used where Options leaves them zero.
	Clients    int
	NodesPerDC int
	Duration   time.Duration
	// Gamma overrides the paper's γ=100 when > 0 (how many classic
	// instances follow a collision).
	Gamma int
	// Retention overrides the decided-log content-cache horizon
	// (core.Config.DecidedRetention) when > 0. The long-outage
	// scenario shrinks it far below its outage window to prove
	// retention is a cache knob, never a correctness input.
	Retention time.Duration
	// MasterDC overrides master placement (nil = uniform by hash).
	MasterDC func(record.Key) topology.DC
	// Gateway routes every client through its data center's
	// transaction gateway (coordinator pooling, cross-transaction
	// batching, hot-key delta coalescing) instead of a private
	// coordinator, validating the gateway tier under faults.
	Gateway bool
	// GatewayTuning overrides the gateway defaults when Gateway is set.
	GatewayTuning gateway.Tuning
	// Groups is the number of replica groups active in the boot-time
	// shard ring (0 = all NodesPerDC). A scenario that provisions more
	// storage nodes than active groups can grow live via Rebalance.
	Groups int
	// Checkpoint enables periodic full-state checkpoints on every
	// storage node (core.Config.CheckpointInterval): recovery after a
	// crash is then the newest valid snapshot plus a bounded WAL tail,
	// and the harness validates that bound on every restart
	// (check.ValidateRecovery). Zero = no checkpoints, full-log replay.
	Checkpoint time.Duration
	// Rebalance schedules a live shard move during the traffic window
	// (gateway scenarios only): freeze-drain the moving slice,
	// bootstrap the destination group over anti-entropy, publish the
	// next ring epoch. The move runs regardless of Options.Faults —
	// it is an operation, not a fault; the nemesis fires faults into it.
	Rebalance *Rebalance
	// Nemesis schedules the fault events on the run; nil or
	// Options.Faults=false runs fault-free.
	Nemesis func(r *Run)
}

// Rebalance describes a scenario's live shard move.
type Rebalance struct {
	// At is the fraction of the traffic window at which the move
	// starts (e.g. 0.3 = 30% in).
	At float64
	// AddGroup is the provisioned-but-inactive replica group the move
	// activates; the ~1/G keyspace slice the ring re-homes onto it is
	// what drains, bootstraps and re-homes.
	AddGroup int
}

// Result is one run's harvest: outcome counts, latency, network
// counters and the validated invariants.
type Result struct {
	Scenario string
	Seed     int64
	Clients  int
	Duration time.Duration

	// Commits and Aborts count acknowledged transactions (from the
	// recorded history). Unknown counts transactions whose gateway
	// crashed before acknowledging — the protocol settled them, the
	// client never learned the outcome; invariants are range-checked
	// over them. ReadFails are transactions abandoned because their
	// read found no replica. Unresolved counts transactions still
	// unacknowledged after the drain epilogue — always a failure:
	// MDCC transactions must settle once the network heals.
	Commits    int
	Aborts     int
	Unknown    int
	ReadFails  int
	Unresolved int
	// UnknownTyped counts the subset of Unknown that the gateway tier
	// itself surfaced in-process as typed outcome-unknown errors
	// (Gateway.Kill), mirroring the RPC client's mdcc.ErrOutcomeUnknown.
	UnknownTyped int
	// Reads counts consumed session-guaranteed reads (ReadFrac
	// workloads), each validated for monotonicity/read-your-writes.
	Reads int

	// WriteLat samples committed-transaction response times (ms).
	WriteLat *stats.Sample

	Net   simnet.Stats
	Coord core.CoordMetrics
	Nodes core.Metrics

	// Gateway aggregates the per-DC gateway metrics (gateway
	// scenarios only; nil otherwise).
	Gateway *gateway.Metrics

	// RingEpoch is the published shard-ring epoch at run end (1 = no
	// move ever ran); ShardMoves/MovedKeys aggregate the storage-node
	// shard-bootstrap counters (see core.Metrics).
	RingEpoch uint64

	// Recoveries records every storage restart's replay (snapshot used,
	// tail length, wall time), each validated against the bounded-
	// recovery contract by check.ValidateRecovery. DiskFaults counts
	// injected disk faults (fsync failures, torn writes, bit flips);
	// WipedRebuilds replicas whose durable state was unrecoverable
	// (every snapshot corrupt) and was discarded for a quorum rebuild.
	Recoveries    []check.RecoveryRecord
	DiskFaults    int
	WipedRebuilds int

	// Scaling-curve instrumentation (the mdcc-bench scale arm and
	// -scenario.sweep plot these against cluster size). ClusterNodes is
	// the number of simulated processes (storage + gateway tiers +
	// clients); TPS is committed transactions per virtual second of the
	// traffic window; Converge is the virtual time the epilogue needed
	// to drain every in-flight transaction after heal; Wall is the real
	// time the whole run took and SimWallRatio how much faster than
	// real time the simulation ran (virtual elapsed / wall). Wall and
	// the ratio are measurements of the simulator, not of the simulated
	// system — they are the only nondeterministic fields in a Result.
	ClusterNodes int
	TPS          float64
	Converge     time.Duration
	Wall         time.Duration
	SimWallRatio float64

	// Events is the human-readable nemesis timeline that actually ran.
	Events []string
	// Violations are the failed internal/check invariants (empty =
	// all invariants hold).
	Violations []string

	// Phases holds the flight recorder's per-stage latency histograms
	// (Options.Trace runs only; nanosecond values).
	Phases []trace.PhaseSnapshot
	// Timelines are the assembled flight-recorder timelines: the N
	// slowest transactions, then every retained trace, then — per
	// violation — the transactions touching its keys. Each entry is a
	// ready-to-print multi-line block.
	Timelines []string
	// TraceEvents/TraceDropped report recorder volume: total events
	// appended and retain-worthy completions lost to the deterministic
	// assembly budget.
	TraceEvents  uint64
	TraceDropped int
}

// Passed reports whether every invariant held and every transaction
// settled.
func (r *Result) Passed() bool {
	return len(r.Violations) == 0 && r.Unresolved == 0
}

// Report renders the pass/fail invariant report the CLI prints.
func (r *Result) Report() string {
	var b strings.Builder
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %-22s seed=%-4d clients=%-4d duration=%s  %s\n",
		r.Scenario, r.Seed, r.Clients, r.Duration, status)
	fmt.Fprintf(&b, "  txns: %d committed, %d aborted, %d unknown (gateway crash; %d typed in-process), %d read-failed, %d unresolved\n",
		r.Commits, r.Aborts, r.Unknown, r.UnknownTyped, r.ReadFails, r.Unresolved)
	if r.WriteLat.N() > 0 {
		fmt.Fprintf(&b, "  commit latency ms: p50=%.0f p95=%.0f p99=%.0f max=%.0f\n",
			r.WriteLat.Percentile(50), r.WriteLat.Percentile(95),
			r.WriteLat.Percentile(99), r.WriteLat.Max())
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "  phase latency (ms):       %8s %8s %8s %10s\n", "p50", "p99", "max", "n")
		ms := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
		for _, p := range r.Phases {
			h := p.Hist
			fmt.Fprintf(&b, "    %-21s %8.2f %8.2f %8.2f %10d\n",
				p.Key.String(), ms(h.Quantile(0.50)), ms(h.Quantile(0.99)), ms(h.Max), h.N)
		}
		fmt.Fprintf(&b, "  flight recorder: %d events, %d timelines retained, %d dropped to assembly budget\n",
			r.TraceEvents, len(r.Timelines), r.TraceDropped)
	}
	fmt.Fprintf(&b, "  net: %d delivered, %d dropped (%d prob, %d endpoint, %d partition), %d dup, %d reordered\n",
		r.Net.Delivered, r.Net.Dropped, r.Net.DroppedProb, r.Net.DroppedEndpoint,
		r.Net.DroppedPartition, r.Net.Duplicated, r.Net.Reordered)
	fmt.Fprintf(&b, "  protocol: %d fast learns, %d leader learns, %d collisions, %d recoveries, %d demarcation rejects, %d phase1\n",
		r.Coord.FastLearns, r.Coord.LeaderLearns, r.Coord.Collisions,
		r.Coord.Recoveries, r.Nodes.DemarcationRejects, r.Nodes.Phase1)
	fmt.Fprintf(&b, "  lineage: %d forked applies grafted, %d adoptions refused (physical containment), %d decided entries released post-ack, %d mixed-kind rejects\n",
		r.Nodes.Grafted, r.Nodes.AdoptRefused, r.Nodes.DecidedReleased, r.Nodes.MixedKindRejects)
	if g := r.Gateway; g != nil {
		fmt.Fprintf(&b, "  gateway: %d submitted, %d merged options carrying %d updates (coalesce ratio %.2f), %d splits, %d shed, batch fan-in %.1f (%d envelopes)\n",
			g.Submitted, g.MergedOptions, g.MergedUpdates, g.CoalesceRatio,
			g.MergeSplits, g.AdmissionRejects, g.BatchFanIn, g.BatchEnvelopes)
		if r.Reads > 0 || g.LocalReads+g.ReadRPCs > 0 {
			fmt.Fprintf(&b, "  read tier: %d reads consumed (%d local, %d rpc, %d shared, %d quorum; local frac %.2f), feed %d msgs/%d items, %d gaps, %d resubs\n",
				r.Reads, g.LocalReads, g.ReadRPCs, g.ReadCoalesced, g.ReadQuorums,
				g.LocalReadFrac, g.FeedMsgs, g.FeedItems, g.FeedGaps, g.FeedResubs)
		}
	}
	if r.Nodes.Checkpoints > 0 || r.Nodes.DurabilityFailures > 0 || len(r.Recoveries) > 0 {
		fmt.Fprintf(&b, "  durability: %d checkpoints, %d disk faults injected, %d degrade latches, %d restarts recovered, %d wiped+rebuilt\n",
			r.Nodes.Checkpoints, r.DiskFaults, r.Nodes.DurabilityFailures, len(r.Recoveries), r.WipedRebuilds)
		for _, rec := range r.Recoveries {
			mode := "full-log replay"
			if rec.Wiped {
				mode = "state unrecoverable, wiped for quorum rebuild"
			} else if rec.FellBack {
				mode = "fell back to previous snapshot"
			} else if rec.UsedSnapshot {
				mode = "snapshot + tail"
			}
			fmt.Fprintf(&b, "    recovery %-14s %-40s tail=%-6d wall=%s\n",
				rec.Node, mode, rec.TailRecords, rec.Wall.Round(time.Microsecond))
		}
	}
	if r.Nodes.ShardMoves > 0 || r.RingEpoch > 1 {
		retries := int64(0)
		if r.Gateway != nil {
			retries = r.Gateway.WrongShardRetries
		}
		fmt.Fprintf(&b, "  ring: epoch %d published, %d shard adoptions moved %d keys, %d wrong-shard refusals\n",
			r.RingEpoch, r.Nodes.ShardMoves, r.Nodes.MovedKeys, retries)
	}
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "  nemesis: %s\n", ev)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "  invariants: no lost updates ok, version accounting ok, delta conservation ok, constraints ok, exact lineage convergence ok\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	if r.Unresolved > 0 {
		fmt.Fprintf(&b, "  VIOLATION: %d transactions never settled after heal\n", r.Unresolved)
	}
	return b.String()
}

// All returns every registered scenario, sorted by name.
func All() []*Scenario {
	out := append([]*Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find looks a scenario up by name.
func Find(name string) (*Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Names lists registered scenario names, sorted.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}
