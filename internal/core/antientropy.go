package core

import (
	"math/rand"
	"time"

	"mdcc/internal/kv"
	"mdcc/internal/record"
	"mdcc/internal/topology"
	"mdcc/internal/transport"
)

// Anti-entropy: §3.2.3 notes that after a data-center outage "only
// records which have been updated during the failure would still be
// impacted by the increased latency until the next update or a
// background process brought them up-to-date", and suggests bulk-copy
// techniques as future work. This is that background process: each
// storage node periodically walks its key space in chunks and
// exchanges committed state with the same shard's replica in another
// data center, adopting anything newer. A replica that slept through
// a failure converges without waiting for fresh writes to each record.

// MsgSyncReq asks a peer for its committed state in a key range.
type MsgSyncReq struct {
	ReqID uint64
	From  record.Key // inclusive cursor ("" = start)
	Limit int
}

// SyncEntry is one record's committed state plus its exact lineage
// summary — the compact description of every option outcome the value
// reflects. The adopter merges via summary diff (StorageNode.adoptBase),
// grafting only its own retained applies, so anti-entropy never ships
// option contents: where the old format carried the whole retention
// window with contents on every exchange of a hot record, the summary
// costs a few interval sets regardless of history length.
type SyncEntry struct {
	Key     record.Key
	Value   record.Value
	Version record.Version
	Lineage LineageSummary
	// LegacyDecided: the pre-summary payload, attached only under
	// Config.ShipFullLineage for the lineage-bytes benchmark; ignored
	// on receipt.
	LegacyDecided []DecidedOption `json:",omitempty"`
}

// MsgSyncReply answers MsgSyncReq. Next is the cursor for the
// following chunk; empty means the key space is exhausted.
type MsgSyncReply struct {
	ReqID   uint64
	Entries []SyncEntry
	Next    record.Key
}

func init() {
	transport.RegisterMessage(MsgSyncReq{})
	transport.RegisterMessage(MsgSyncReply{})
}

// syncChunkSize bounds one anti-entropy exchange.
const syncChunkSize = 128

// scheduleAntiEntropy arms the periodic sync. Called from the
// constructor when cfg.SyncInterval > 0.
func (n *StorageNode) scheduleAntiEntropy(rng *rand.Rand) {
	n.net.After(n.id, n.cfg.SyncInterval, func() {
		if n.halted {
			return
		}
		n.syncStep(rng)
		n.scheduleAntiEntropy(rng)
	})
}

// syncStep requests one chunk from a random peer replica.
func (n *StorageNode) syncStep(rng *rand.Rand) {
	peerDC := topology.DC(rng.Intn(topology.NumDCs))
	if peerDC == n.dc {
		peerDC = topology.DC((int(peerDC) + 1) % topology.NumDCs)
	}
	peer := topology.StorageID(peerDC, n.shardIndex())
	n.reqSeq++
	n.net.Send(n.id, peer, MsgSyncReq{ReqID: n.reqSeq, From: n.syncCursor, Limit: syncChunkSize})
}

// shardIndex parses this node's shard from its catalogue entry.
func (n *StorageNode) shardIndex() int {
	for _, node := range n.cl.Storage {
		if node.ID == n.id {
			return node.Index
		}
	}
	return 0
}

// onSyncReq streams one chunk of committed state to the requester.
func (n *StorageNode) onSyncReq(from transport.NodeID, m MsgSyncReq) {
	limit := m.Limit
	if limit <= 0 || limit > 4*syncChunkSize {
		limit = syncChunkSize
	}
	reply := MsgSyncReply{ReqID: m.ReqID}
	count := 0
	n.store.Scan(m.From, "", func(e kv.Entry) bool {
		if count >= limit {
			// One more key exists: it becomes the next cursor.
			reply.Next = e.Key
			return false
		}
		count++
		entry := SyncEntry{Key: e.Key, Value: e.Value, Version: e.Version}
		if r, ok := n.recs[e.Key]; ok {
			entry.Lineage = r.summary.Clone()
			if n.cfg.ShipFullLineage {
				entry.LegacyDecided = decidedList(r.decided)
			}
		}
		reply.Entries = append(reply.Entries, entry)
		return true
	})
	n.net.Send(n.id, from, reply)
}

// onSyncReply merges anything at least as new as local state (equal
// versions can hide diverged lineages; adoptBase reconciles them via
// summary diff). Every entry also teaches us the responder's summary
// for the key — the ack signal that gates decided-log content
// release.
func (n *StorageNode) onSyncReply(from transport.NodeID, m MsgSyncReply) {
	if n.pullReqs[m.ReqID] {
		// A directed shard-move pull reply (possibly late or
		// duplicated): it must never advance the background sync
		// cursor or adopt keys outside the moving slice.
		delete(n.pullReqs, m.ReqID)
		if p := n.pull; p != nil && m.ReqID == p.reqID {
			n.onPullReply(from, m)
		}
		return
	}
	for _, e := range m.Entries {
		_, ver, _ := n.store.Get(e.Key)
		n.notePeerLineage(n.rs(e.Key), from, e.Lineage)
		if e.Version < ver {
			continue
		}
		if n.adoptBase(e.Key, e.Value, e.Version, e.Lineage, "sync") {
			n.nSynced++
		}
	}
	n.syncCursor = m.Next
}

// Shard-move bootstrap: when a live rebalance re-homes a slice of the
// keyspace onto this node's replica group, the destination replica
// adopts the slice from a source-group peer through the same
// value+version+summary exchange the background sync uses — a directed
// full-keyspace walk with its own request ids and cursor, filtered to
// the moving keys on receipt. Because summaries are exact and
// retention-free (PR 5), a shard bootstraps in O(keys × lanes) bytes
// with no history shipping, and any residue the source settles after
// the pull reconciles through ordinary anti-entropy among the new
// owner group's replicas.

// shardPull is one in-flight directed bootstrap.
type shardPull struct {
	src     transport.NodeID
	accept  func(record.Key) bool
	done    func(adopted int)
	reqID   uint64
	cursor  record.Key
	adopted int
}

// AdoptShard walks src's committed keyspace and adopts every entry
// accept selects (the keys the staged ring re-homes onto this node's
// group). done fires with the adopted-entry count when the walk
// completes. Chunks lost to the network are re-requested on a timer,
// so a pull survives drops and partitions; a pull already in flight
// makes AdoptShard a no-op (the mover re-invokes on fresh node
// incarnations after crashes, not on live ones).
func (n *StorageNode) AdoptShard(src transport.NodeID, accept func(record.Key) bool, done func(adopted int)) {
	if n.halted || n.pull != nil {
		return
	}
	n.pull = &shardPull{src: src, accept: accept, done: done}
	n.pullStep()
}

// pullStep requests the next chunk of the directed walk and arms its
// retry.
func (n *StorageNode) pullStep() {
	p := n.pull
	if p == nil || n.halted {
		return
	}
	n.reqSeq++
	p.reqID = n.reqSeq
	if n.pullReqs == nil {
		n.pullReqs = make(map[uint64]bool)
	}
	n.pullReqs[p.reqID] = true
	n.net.Send(n.id, p.src, MsgSyncReq{ReqID: p.reqID, From: p.cursor, Limit: syncChunkSize})
	retry := 2 * n.cfg.SyncInterval
	if retry <= 0 {
		retry = 2 * time.Second
	}
	reqID := p.reqID
	n.net.After(n.id, retry, func() {
		// Still waiting on the same chunk: the request or its reply
		// was lost — re-issue under a fresh id.
		if n.halted || n.pull != p || p.reqID != reqID {
			return
		}
		delete(n.pullReqs, reqID)
		n.pullStep()
	})
}

// onPullReply consumes one chunk of a directed bootstrap.
func (n *StorageNode) onPullReply(from transport.NodeID, m MsgSyncReply) {
	p := n.pull
	for _, e := range m.Entries {
		if !p.accept(e.Key) {
			continue
		}
		_, ver, _ := n.store.Get(e.Key)
		n.notePeerLineage(n.rs(e.Key), from, e.Lineage)
		if e.Version >= ver && n.adoptBase(e.Key, e.Value, e.Version, e.Lineage, "move") {
			n.nSynced++
		}
		p.adopted++
	}
	if m.Next == "" {
		n.pull = nil
		n.pullReqs = nil
		n.nShardMoves++
		n.nMovedKeys += int64(p.adopted)
		if p.done != nil {
			p.done(p.adopted)
		}
		return
	}
	p.cursor = m.Next
	n.pullStep()
}

// Unsettled counts the accepted-but-undecided option votes this node
// holds on keys sel selects (nil = all keys) — the shard mover's drain
// gate: a moving slice is safe to bootstrap only when no live source
// replica still holds an open option on it, because every decided
// option's effect has then been applied to the committed state the
// bootstrap ships.
func (n *StorageNode) Unsettled(sel func(record.Key) bool) int {
	if n.halted {
		return 0
	}
	total := 0
	for key, r := range n.recs {
		if sel != nil && !sel(key) {
			continue
		}
		total += len(r.votes)
	}
	return total
}
