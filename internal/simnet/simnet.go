// Package simnet is a deterministic discrete-event network simulator
// implementing transport.Network on a virtual clock. It stands in for
// the paper's five-data-center EC2 deployment (netem-style WAN
// emulation): messages experience a configurable one-way latency
// matrix with seeded jitter, nodes process messages serially with a
// per-message service time (so queueing effects emerge naturally),
// and whole nodes or data centers can be failed and recovered at
// chosen virtual times.
//
// Concurrency contract: the simulator is single-threaded. Everything
// — handlers, timer callbacks, workload logic — runs on the event
// loop via Run*/Step. Calling Send/After from inside handlers is the
// intended usage; calling them from other goroutines while the loop
// runs is a data race.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"

	"mdcc/internal/clock"
	"mdcc/internal/transport"
)

// Options configures a simulated network.
type Options struct {
	// Latency returns the base one-way delay between nodes
	// (typically topology.Cluster.Latency()). Nil means 1ms uniform.
	Latency transport.LatencyFunc
	// JitterFrac adds ±frac multiplicative uniform jitter to each
	// message's latency (paper-world WAN variance). 0 disables.
	JitterFrac float64
	// ServiceTime is how long a node is busy per handled message
	// (models storage-node CPU; creates queueing under load).
	ServiceTime time.Duration
	// DropProb uniformly drops messages (0 disables).
	DropProb float64
	// DupProb delivers a message a second time after an extra
	// ReorderWindow-bounded delay (0 disables). Models retransmitting
	// WANs; protocols must stay idempotent.
	DupProb float64
	// ReorderProb holds a message back by a uniform extra delay in
	// (0, ReorderWindow], letting later sends overtake it (0 disables).
	ReorderProb float64
	// ReorderWindow bounds the extra delay of duplicated and reordered
	// deliveries. Zero means 50ms.
	ReorderWindow time.Duration
	// Seed makes runs reproducible.
	Seed int64
	// Start is the virtual epoch; zero means Unix epoch.
	Start time.Time
	// OnDeliver, when set, observes every delivered envelope (after
	// drop/partition filtering, before the handler runs). Pure
	// observation for benchmarks that meter wire costs (e.g. gob
	// sizes per message type); it must not mutate the envelope or
	// touch the simulator.
	OnDeliver func(e transport.Envelope)
}

// Stats counts network-level events.
type Stats struct {
	Delivered int64
	Dropped   int64 // total of the three drop causes below
	// DroppedProb counts uniform DropProb losses, DroppedEndpoint
	// drops at failed/crashed/unregistered endpoints, and
	// DroppedPartition drops on partitioned links — kept separate so
	// chaos tests can assert on the cause, not just the count.
	DroppedProb      int64
	DroppedEndpoint  int64
	DroppedPartition int64
	Duplicated       int64
	Reordered        int64
	Timers           int64
}

// linkKey identifies one directed link.
type linkKey struct{ from, to transport.NodeID }

// Net is the simulated network.
type Net struct {
	opts     Options
	now      time.Time
	events   eventHeap
	seq      int64
	handlers map[transport.NodeID]transport.Handler
	freeAt   map[transport.NodeID]time.Time
	failed   map[transport.NodeID]bool
	epoch    map[transport.NodeID]int64
	blocked  map[linkKey]int // refcount: overlapping cuts may share links
	linkLat  map[linkKey]time.Duration
	latScale float64
	drift    map[transport.NodeID]float64
	rng      *rand.Rand
	stats    Stats
	perNode  map[transport.NodeID]int64 // messages delivered per node
	stopped  bool
}

type event struct {
	at     time.Time
	seq    int64
	node   transport.NodeID
	run    func()
	cancel *bool // non-nil for timers
	// serialize: message/timer events occupy the node's service
	// slot; pure scheduler events (failures) do not.
	serialize bool
	// epoch pins the event to the target node's incarnation; Crash
	// bumps the incarnation so everything queued for the old process
	// (in-flight deliveries, its timers) silently dies with it.
	epoch int64
	// msg marks message deliveries (for drop accounting when an
	// incarnation dies with deliveries queued).
	msg bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) {
	*h = append(*h, x.(*event))
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// New builds a simulated network.
func New(opts Options) *Net {
	if opts.Latency == nil {
		opts.Latency = func(from, to transport.NodeID) time.Duration { return time.Millisecond }
	}
	if opts.Start.IsZero() {
		opts.Start = time.Unix(0, 0)
	}
	if opts.ReorderWindow <= 0 {
		opts.ReorderWindow = 50 * time.Millisecond
	}
	return &Net{
		opts:     opts,
		now:      opts.Start,
		handlers: make(map[transport.NodeID]transport.Handler),
		freeAt:   make(map[transport.NodeID]time.Time),
		failed:   make(map[transport.NodeID]bool),
		epoch:    make(map[transport.NodeID]int64),
		blocked:  make(map[linkKey]int),
		linkLat:  make(map[linkKey]time.Duration),
		latScale: 1,
		drift:    make(map[transport.NodeID]float64),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		perNode:  make(map[transport.NodeID]int64),
	}
}

// Register installs a node handler.
func (n *Net) Register(id transport.NodeID, h transport.Handler) {
	n.handlers[id] = h
}

// Rand exposes the simulator's seeded RNG so workloads share the
// deterministic stream.
func (n *Net) Rand() *rand.Rand { return n.rng }

// Now returns current virtual time.
func (n *Net) Now() time.Time { return n.now }

// Stats returns delivery counters.
func (n *Net) Stats() Stats { return n.stats }

// Send schedules delivery of msg after matrix latency + jitter.
// Messages from or to failed nodes are dropped; so are random drops,
// and messages crossing a partitioned link.
func (n *Net) Send(from, to transport.NodeID, msg transport.Message) {
	if n.failed[from] {
		n.dropEndpoint()
		return
	}
	if n.blocked[linkKey{from, to}] > 0 {
		n.stats.Dropped++
		n.stats.DroppedPartition++
		return
	}
	d, ok := n.linkLat[linkKey{from, to}]
	if !ok {
		d = n.opts.Latency(from, to)
	}
	if n.latScale != 1 {
		d = time.Duration(float64(d) * n.latScale)
	}
	if n.opts.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 + n.opts.JitterFrac*(2*n.rng.Float64()-1)))
	}
	if n.opts.DropProb > 0 && n.rng.Float64() < n.opts.DropProb {
		n.stats.Dropped++
		n.stats.DroppedProb++
		return
	}
	if n.opts.ReorderProb > 0 && n.rng.Float64() < n.opts.ReorderProb {
		n.stats.Reordered++
		d += time.Duration(n.rng.Int63n(int64(n.opts.ReorderWindow))) + 1
	}
	n.deliverAfter(from, to, msg, d)
	if n.opts.DupProb > 0 && n.rng.Float64() < n.opts.DupProb {
		n.stats.Duplicated++
		extra := time.Duration(n.rng.Int63n(int64(n.opts.ReorderWindow))) + 1
		n.deliverAfter(from, to, msg, d+extra)
	}
}

func (n *Net) dropEndpoint() {
	n.stats.Dropped++
	n.stats.DroppedEndpoint++
}

func (n *Net) deliverAfter(from, to transport.NodeID, msg transport.Message, d time.Duration) {
	e := transport.Envelope{From: from, To: to, Msg: msg}
	n.push(&event{
		at:        n.now.Add(d),
		node:      to,
		serialize: true,
		epoch:     n.epoch[to],
		msg:       true,
		run: func() {
			if n.failed[to] {
				n.dropEndpoint()
				return
			}
			h, ok := n.handlers[to]
			if !ok {
				n.dropEndpoint()
				return
			}
			n.stats.Delivered++
			n.perNode[to]++
			if n.opts.OnDeliver != nil {
				n.opts.OnDeliver(e)
			}
			h(e)
		},
	})
}

// DeliveredTo returns how many messages were delivered to one node —
// the physical envelope count, so a batch envelope counts once
// (benchmarks use this to measure per-acceptor message load).
func (n *Net) DeliveredTo(id transport.NodeID) int64 { return n.perNode[id] }

// After schedules f on node `on` after d of virtual time, serialized
// with its handler. Timers keep firing on failed nodes: Fail models a
// network partition (the paper's outage "prevented the data center
// from receiving any messages"), not a crash — the isolated node's
// local processing continues but everything it sends is dropped.
func (n *Net) After(on transport.NodeID, d time.Duration, f func()) clock.Timer {
	if d < 0 {
		d = 0
	}
	if drift, ok := n.drift[on]; ok {
		d = time.Duration(float64(d) * (1 + drift))
		if d < 0 {
			d = 0
		}
	}
	cancelled := false
	ev := &event{
		at:        n.now.Add(d),
		node:      on,
		cancel:    &cancelled,
		serialize: true,
		epoch:     n.epoch[on],
		run: func() {
			n.stats.Timers++
			f()
		},
	}
	n.push(ev)
	return simTimer{&cancelled}
}

type simTimer struct{ cancelled *bool }

func (t simTimer) Stop() bool {
	if *t.cancelled {
		return false
	}
	*t.cancelled = true
	return true
}

// At schedules a scheduler-level callback (failure injection, workload
// phase changes) at an absolute offset from the epoch, not serialized
// with any node.
func (n *Net) At(offset time.Duration, f func()) {
	at := n.opts.Start.Add(offset)
	if at.Before(n.now) {
		at = n.now
	}
	n.push(&event{at: at, run: f})
}

// Fail makes a node unreachable: messages from and to it are dropped
// and its timers are suppressed until Recover.
func (n *Net) Fail(id transport.NodeID) { n.failed[id] = true }

// Recover brings a failed node back (its state is whatever it was;
// storage recovery is the protocol's job).
func (n *Net) Recover(id transport.NodeID) { delete(n.failed, id) }

// Failed reports whether a node is currently failed.
func (n *Net) Failed(id transport.NodeID) bool { return n.failed[id] }

// Crash kills a node's process: unlike Fail (a partition — the node
// keeps computing), Crash discards every queued event bound to the
// node, in-flight deliveries and its own timers alike, by bumping the
// node's incarnation. The node stays unreachable until Recover; a
// restarted incarnation must Register a fresh handler and re-arm its
// own timers (internal/core's restart hooks do both).
func (n *Net) Crash(id transport.NodeID) {
	n.epoch[id]++
	n.failed[id] = true
}

// Partition cuts every link between the two node sets, both
// directions (the paper's data-center outage "prevented the data
// center from receiving any messages"). Nodes keep running; messages
// crossing the cut are dropped and counted as DroppedPartition.
// Links are reference-counted, so overlapping cuts compose: a link
// stays blocked until every cut covering it is healed.
func (n *Net) Partition(a, b []transport.NodeID) {
	for _, x := range a {
		for _, y := range b {
			n.blocked[linkKey{x, y}]++
			n.blocked[linkKey{y, x}]++
		}
	}
}

// Heal removes one cut between two node sets installed by Partition;
// links still covered by another overlapping cut remain blocked.
func (n *Net) Heal(a, b []transport.NodeID) {
	unblock := func(k linkKey) {
		if c := n.blocked[k]; c > 1 {
			n.blocked[k] = c - 1
		} else {
			delete(n.blocked, k)
		}
	}
	for _, x := range a {
		for _, y := range b {
			unblock(linkKey{x, y})
			unblock(linkKey{y, x})
		}
	}
}

// HealAll removes every partition.
func (n *Net) HealAll() { n.blocked = make(map[linkKey]int) }

// SetLinkLatency overrides the base one-way latency of one directed
// link (latency spikes, asymmetric degradation). A non-positive d
// clears the override.
func (n *Net) SetLinkLatency(from, to transport.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.linkLat, linkKey{from, to})
		return
	}
	n.linkLat[linkKey{from, to}] = d
}

// ScaleLatency multiplies every link's base latency by f (a global
// WAN brown-out when f > 1). f <= 0 resets to 1.
func (n *Net) ScaleLatency(f float64) {
	if f <= 0 {
		f = 1
	}
	n.latScale = f
}

// SetDrift skews a node's local clock rate: its timers fire after
// d·(1+frac) instead of d (frac -0.5 halves every timeout, +1 doubles
// them). Only timers armed after the call are affected.
func (n *Net) SetDrift(id transport.NodeID, frac float64) {
	if frac == 0 {
		delete(n.drift, id)
		return
	}
	n.drift[id] = frac
}

// SetDropProb replaces the uniform drop probability at runtime
// (nemesis schedules ramp chaos up and down mid-run).
func (n *Net) SetDropProb(p float64) { n.opts.DropProb = p }

// SetDupProb replaces the duplication probability at runtime.
func (n *Net) SetDupProb(p float64) { n.opts.DupProb = p }

// SetReorder replaces the reorder probability (and window, when
// w > 0) at runtime.
func (n *Net) SetReorder(p float64, w time.Duration) {
	n.opts.ReorderProb = p
	if w > 0 {
		n.opts.ReorderWindow = w
	}
}

// Stop makes the current Run call return after the in-flight event.
func (n *Net) Stop() { n.stopped = true }

func (n *Net) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.events, e)
}

// Step executes the next event; it reports false when no events
// remain. Service-time serialization: if the event's node is still
// busy, the event is re-queued for when the node frees up.
func (n *Net) Step() bool {
	for n.events.Len() > 0 {
		e := heap.Pop(&n.events).(*event)
		if e.cancel != nil && *e.cancel {
			continue
		}
		if e.node != "" && e.epoch != n.epoch[e.node] {
			// Addressed to a crashed incarnation.
			if e.msg {
				n.dropEndpoint()
			}
			continue
		}
		if e.serialize && n.opts.ServiceTime > 0 {
			if free, ok := n.freeAt[e.node]; ok && free.After(e.at) {
				e.at = free
				heap.Push(&n.events, e)
				continue
			}
		}
		if e.at.After(n.now) {
			n.now = e.at
		}
		if e.serialize && n.opts.ServiceTime > 0 {
			n.freeAt[e.node] = n.now.Add(n.opts.ServiceTime)
		}
		e.run()
		return true
	}
	return false
}

// RunFor processes events until `d` of virtual time has elapsed from
// the current instant (or the event queue drains, or Stop is called).
func (n *Net) RunFor(d time.Duration) {
	deadline := n.now.Add(d)
	n.stopped = false
	for !n.stopped && n.events.Len() > 0 {
		next := n.events[0]
		if next.at.After(deadline) {
			break
		}
		n.Step()
	}
	if n.now.Before(deadline) {
		n.now = deadline
	}
}

// Run processes events until the queue drains or Stop is called.
func (n *Net) Run() {
	n.stopped = false
	for !n.stopped && n.Step() {
	}
}

// RunUntil steps until cond() is true, giving up after maxVirtual.
// It reports whether the condition was met.
func (n *Net) RunUntil(cond func() bool, maxVirtual time.Duration) bool {
	deadline := n.now.Add(maxVirtual)
	n.stopped = false
	for !n.stopped {
		if cond() {
			return true
		}
		if n.events.Len() == 0 {
			return cond()
		}
		if n.events[0].at.After(deadline) {
			return false
		}
		n.Step()
	}
	return cond()
}
